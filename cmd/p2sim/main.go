// Command p2sim regenerates the paper's evaluation (§5) on the
// simulated Emulab-style network:
//
//	p2sim -exp fig3  -scale medium    # hop counts, idle bandwidth, latency CDFs
//	p2sim -exp fig4  -scale quick     # churn: bandwidth, consistency, latency
//	p2sim -exp rules                  # specification-complexity table
//	p2sim -exp mem                    # per-node memory footprint
//	p2sim -exp all   -scale paper     # everything at full paper scale
//
// Scales: quick (seconds), medium (minutes), paper (the published
// parameters: 100-500 node static rings, 400-node 20-minute churn).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"time"

	"p2"
	"p2/internal/experiments"
	"p2/internal/harness"
	"p2/internal/overlays"
	"p2/internal/planner"
	"p2/internal/scenario"
	"p2/internal/simnet"
	"p2/internal/trace"
	"p2/internal/workload"
)

func main() {
	exp := flag.String("exp", "all", "experiment: fig3|fig4|rules|mem|ablation|workload|all")
	scale := flag.String("scale", "quick", "scale: quick|medium|paper")
	seed := flag.Int64("seed", 1, "random seed")
	topology := flag.String("topology", "paper",
		"network model: paper (the GT-ITM-style default) | wan (measured-matrix transit-stub with jitter, queuing, and access/transit bandwidth)")
	shards := flag.Int("shards", runtime.NumCPU(),
		"parallel simulation shards (1 = sharded machinery on one core; metrics are identical at every count)")
	placement := flag.Bool("placement", false, "dump the node→shard placement map before running")
	explain := flag.Bool("explain", false, "print the Chord plan as the query optimizer would execute it, then exit")
	replay := flag.String("replay", "", "replay a recorded wire trace (p2 -record) through the simulator and print the ring digest, then exit")
	replayUntil := flag.Float64("replay-until", 0, "virtual seconds to run the replay for (default: the trace's own end)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	if *explain {
		explainChord(os.Stdout)
		return
	}
	if *replay != "" {
		if err := replayTrace(os.Stdout, *replay, *seed, *replayUntil); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		return
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return
			}
			defer f.Close()
			runtime.GC() // flush recently-freed objects out of the profile
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
		}()
	}

	sc, err := experiments.ScaleByName(*scale)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *shards < 1 {
		*shards = 1
	}
	sc.Shards = *shards
	switch *topology {
	case "paper":
		// sc.Net stays nil: each harness builds the default topology.
	case "wan":
		wan := simnet.TransitStubWAN(4, 4, *seed)
		sc.Net = &wan
	default:
		fmt.Fprintf(os.Stderr, "unknown topology %q (paper|wan)\n", *topology)
		os.Exit(2)
	}
	// The ablation and footprint experiments build their own harness
	// options; they pick the shard count up from the environment.
	os.Setenv(harness.EnvShards, strconv.Itoa(*shards))

	if *placement {
		dumpPlacement(sc, *shards)
	}

	run := func(name string, fn func()) {
		start := time.Now()
		fn()
		fmt.Printf("\n[%s completed in %.1fs wall]\n\n", name, time.Since(start).Seconds())
	}

	switch *exp {
	case "fig3":
		run("fig3", func() { experiments.RunFig3(sc, *seed).Print(os.Stdout) })
	case "fig4":
		run("fig4", func() { experiments.RunFig4(sc, *seed).Print(os.Stdout) })
	case "rules":
		experiments.SpecComplexity().Print(os.Stdout)
	case "ablation":
		run("ablation", func() {
			experiments.PrintSuccessorAblation(os.Stdout,
				experiments.RunSuccessorAblation(24, 0.25, []int{1, 2, 4}, *seed))
			fmt.Println()
			experiments.PrintTransportAblation(os.Stdout,
				experiments.RunTransportAblation(16, []float64{0.05, 0.15, 0.30}, 30, *seed))
		})
	case "mem":
		run("mem", func() {
			fmt.Printf("== Memory footprint (paper §1: ~800 kB working set per node) ==\n")
			for _, n := range memSizes(sc) {
				fp := experiments.MeasureFootprint(n, 60)
				fmt.Printf("nodes: %5d   heap/node: %.0f kB   run delta: %.0f kB   control: %.0f kB   interner: %d entries / %.0f kB\n",
					fp.Nodes, float64(fp.BytesPerNode)/1024, float64(fp.TotalHeapDelta)/1024,
					float64(fp.ControlDelta)/1024, fp.InternEntries, float64(fp.InternBytes)/1024)
			}
		})
	case "workload":
		run("workload", func() { runWorkload(os.Stdout, sc, *seed) })
	case "all":
		experiments.SpecComplexity().Print(os.Stdout)
		fmt.Println()
		run("mem", func() {
			fp := experiments.MeasureFootprint(8, 60)
			fmt.Printf("== Memory footprint ==\nnodes: %d   heap/node: %.0f kB\n",
				fp.Nodes, float64(fp.BytesPerNode)/1024)
		})
		run("mem-1k", func() {
			fp := experiments.MeasureFootprint(1000, 30)
			fmt.Printf("== Memory footprint at 1k (scale-out gauge) ==\nnodes: %d   heap/node: %.0f kB\n",
				fp.Nodes, float64(fp.BytesPerNode)/1024)
		})
		run("fig3", func() { experiments.RunFig3(sc, *seed).Print(os.Stdout) })
		run("fig4", func() { experiments.RunFig4(sc, *seed).Print(os.Stdout) })
	default:
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		os.Exit(2)
	}
}

// memSizes picks the footprint-measurement populations for a scale:
// the paper-claim gauge (8 nodes) always, the scale-out gauges as the
// scale affords them.
func memSizes(sc experiments.Scale) []int {
	switch sc.Name {
	case "paper":
		return []int{8, 1000, 10000}
	case "medium":
		return []int{8, 1000}
	}
	return []int{8, 128}
}

// replayTrace re-executes a recorded UDP wire trace (p2 -record)
// offline through the virtual-time simulator and prints each recorded
// node's final best successor — the fault lab's record/replay recipe.
// The trace does not store the spawn order, so the landmark is taken
// to be the first recorded sender; pass the recording run's seed for
// matching node randomness.
func replayTrace(w io.Writer, path string, seed int64, until float64) error {
	tr, err := trace.ReadFile(path)
	if err != nil {
		return err
	}
	addrs := tr.Nodes()
	// Put the first sender first: in a p2-recorded session the landmark
	// is spawned (and speaks) before its joiners.
	for _, rec := range tr.Recs {
		if rec.Dir == trace.Send {
			for i, a := range addrs {
				if a == rec.Src {
					addrs[0], addrs[i] = addrs[i], addrs[0]
				}
			}
			break
		}
	}
	digest, err := scenario.Replay(tr, addrs, seed, until)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "== replay of %s (%d datagrams, %d nodes, %.2fs) ==\n",
		path, len(tr.Recs), len(addrs), tr.End())
	for i, a := range addrs {
		fmt.Fprintf(w, "  n%d = %s\n", i, a)
	}
	fmt.Fprintf(w, "ring digest: %s\n", digest)
	return nil
}

// explainChord prints the Chord plan exactly as a node would execute it
// under the query optimizer at start: each rule annotated with the body
// term order chosen (indices into the textual body) and the estimated
// cost under the catalog statistics. Rules without an annotation are
// frozen (non-deterministic functions pin them to textual order).
func explainChord(w io.Writer) {
	plan := overlays.ChordPlan(nil)
	opt := planner.Optimize(plan, planner.NewCatalogStats(plan), planner.OptimizerConfig{})
	fmt.Fprintf(w, "== Chord plan, optimized (catalog statistics, start-time plans) ==\n\n")
	fmt.Fprintln(w, opt.String())
}

// dumpPlacement prints where every node of the largest configured
// static ring would land. Placement is a pure function of (address,
// topology, shard count) — domain = hash(addr) mod Domains, shard =
// domain mod P — so the map is known before a single node spawns.
func dumpPlacement(sc experiments.Scale, shards int) {
	n := 0
	for _, size := range sc.StaticSizes {
		if size > n {
			n = size
		}
	}
	if sc.ChurnN > n {
		n = sc.ChurnN
	}
	cfg := simnet.DefaultConfig()
	perShard := make([]int, shards)
	fmt.Printf("== node→shard placement (%d nodes, %d domains, %d shards) ==\n",
		n, cfg.Domains, shards)
	for i := 0; i < n; i++ {
		addr := fmt.Sprintf("n%d:p2", i)
		domain := cfg.DomainOf(addr)
		shard := domain % shards
		perShard[shard]++
		fmt.Printf("  %-12s domain %-3d shard %d\n", addr, domain, shard)
	}
	fmt.Printf("per-shard node counts: %v\n\n", perShard)
}

// runWorkload drives the open-loop workload driver against the
// scale's largest static ring and prints its percentile report — the
// lookup stream first (hops + latency + completion), then the
// replicated key-value PUT/GET mix (per-op latency, completion,
// staleness). This is the ROADMAP follow-on that surfaces
// internal/workload's reports through the CLI.
func runWorkload(w io.Writer, sc experiments.Scale, seed int64) {
	n := 0
	for _, size := range sc.StaticSizes {
		if size > n {
			n = size
		}
	}
	rate, dur := 10.0, sc.MeasureTime

	fmt.Fprintf(w, "== Open-loop lookup workload (n=%d, %.0f lookups/s for %.0fs) ==\n", n, rate, dur)
	h := harness.NewChord(harness.Opts{N: n, Seed: seed, JoinSpacing: sc.JoinSpacing, Net: sc.Net, Shards: sc.Shards})
	h.Run(h.JoinDeadline() + sc.SettleTime)
	fmt.Fprintf(w, "ring correctness before load: %.3f\n", h.RingCorrectness())
	rep := workload.Run(h, workload.Opts{Rate: rate, Duration: dur, Seed: seed})
	fmt.Fprintf(w, "issued %d, completed %d (%.1f%%)\n", rep.Issued, rep.Completed, 100*rep.CompletionRate())
	fmt.Fprintf(w, "hops    p50/p99/p999: %.0f / %.0f / %.0f (mean %.2f)\n", rep.HopP50, rep.HopP99, rep.HopP999, rep.MeanHops)
	fmt.Fprintf(w, "latency p50/p99/p999: %.1f / %.1f / %.1f ms\n",
		rep.LatencyP50*1000, rep.LatencyP99*1000, rep.LatencyP999*1000)
	h.Close()

	fmt.Fprintf(w, "\n== Key-value PUT/GET mix (n=%d, %.0f ops/s for %.0fs, R=%d Q=%d) ==\n",
		n, rate, dur, p2.KVReplicas, p2.KVQuorum)
	hk := harness.NewChord(harness.Opts{N: n, Seed: seed, JoinSpacing: sc.JoinSpacing, Net: sc.Net, Shards: sc.Shards, KV: true})
	hk.Run(hk.JoinDeadline() + sc.SettleTime)
	kr := workload.RunKV(hk, workload.KVOpts{Rate: rate, Duration: dur, Seed: seed})
	fmt.Fprintf(w, "puts %d/%d, gets %d/%d completed (%.1f%% overall)\n",
		kr.PutsCompleted, kr.PutsIssued, kr.GetsCompleted, kr.GetsIssued, 100*kr.CompletionRate())
	fmt.Fprintf(w, "put latency p50/p99/p999: %.1f / %.1f / %.1f ms\n",
		kr.PutP50*1000, kr.PutP99*1000, kr.PutP999*1000)
	fmt.Fprintf(w, "get latency p50/p99/p999: %.1f / %.1f / %.1f ms\n",
		kr.GetP50*1000, kr.GetP99*1000, kr.GetP999*1000)
	fmt.Fprintf(w, "stale gets: %d (%.2f%%), misses: %d\n", kr.StaleGets, 100*kr.StalenessRate(), kr.Misses)
	hk.Close()
}
