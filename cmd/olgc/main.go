// Command olgc is the OverLog compiler inspector: it parses and plans a
// specification and dumps what the planner produced — tables, strand
// structure, triggers, PEL programs — without running anything.
//
//	olgc chord                # inspect a shipped overlay by name
//	olgc path/to/spec.olg     # inspect a file
//	olgc -ast chord           # print the parsed program instead
package main

import (
	"flag"
	"fmt"
	"os"

	"p2/internal/overlays"
	"p2/internal/overlog"
	"p2/internal/planner"
)

func main() {
	ast := flag.Bool("ast", false, "print the parsed program, not the plan")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: olgc [-ast] <spec.olg | chord|narada|gossip|linkstate|pingpong>")
		os.Exit(2)
	}
	arg := flag.Arg(0)

	src := overlays.Lookup(arg)
	if src == "" {
		data, err := os.ReadFile(arg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "olgc: %v\n", err)
			os.Exit(1)
		}
		src = string(data)
	}

	prog, err := overlog.Parse(src)
	if err != nil {
		fmt.Fprintf(os.Stderr, "olgc: %v\n", err)
		os.Exit(1)
	}
	if *ast {
		fmt.Print(prog.String())
		return
	}
	plan, err := planner.Compile(prog, nil)
	if err != nil {
		fmt.Fprintf(os.Stderr, "olgc: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("# %d rules, %d facts, %d tables, %d table aggregates\n",
		prog.RuleCount(), len(prog.Facts), len(plan.Tables), len(plan.TableAggs))
	fmt.Print(plan.String())
}
