// Command p2 runs an OverLog overlay specification on a real UDP node —
// the deployable form of the system ("deployable as a service or
// library", §1).
//
//	# terminal 1: create a Chord ring
//	p2 -spec chord -addr 127.0.0.1:7001 \
//	   -fact 'landmark=127.0.0.1:7001,-' -fact 'join=127.0.0.1:7001,boot1' \
//	   -watch bestSucc
//
//	# terminal 2: join it
//	p2 -spec chord -addr 127.0.0.1:7002 \
//	   -fact 'landmark=127.0.0.1:7002,127.0.0.1:7001' \
//	   -fact 'join=127.0.0.1:7002,boot2' -watch bestSucc
//
// Facts are name=field,field,... where the first field is usually the
// node's own address. Watched relations print every event.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"p2"
	"p2/internal/overlays"
)

type factList []string

func (f *factList) String() string     { return strings.Join(*f, ";") }
func (f *factList) Set(s string) error { *f = append(*f, s); return nil }

type watchList []string

func (w *watchList) String() string     { return strings.Join(*w, ",") }
func (w *watchList) Set(s string) error { *w = append(*w, s); return nil }

func main() {
	spec := flag.String("spec", "chord", "overlay: builtin name or .olg file path")
	addr := flag.String("addr", "127.0.0.1:7001", "UDP address to bind (also the node's identity)")
	duration := flag.Duration("duration", 0, "run time (0 = until interrupted)")
	seed := flag.Int64("seed", time.Now().UnixNano(), "random seed")
	var facts factList
	var watches watchList
	flag.Var(&facts, "fact", "startup fact name=f1,f2,... (repeatable)")
	flag.Var(&watches, "watch", "relation to trace (repeatable)")
	flag.Parse()

	src := overlays.Lookup(*spec)
	if src == "" {
		data, err := os.ReadFile(*spec)
		if err != nil {
			fatal("reading spec: %v", err)
		}
		src = string(data)
	}
	plan, err := p2.Compile(src, nil)
	if err != nil {
		fatal("compiling spec: %v", err)
	}

	node, err := p2.NewUDPNode(*addr, plan, p2.NodeOptions{Seed: *seed})
	if err != nil {
		fatal("starting node: %v", err)
	}
	defer node.Close()
	fmt.Printf("p2: node %s running %s (%d rules)\n", *addr, *spec, plan.RuleCount())

	node.Do(func(n *p2.Node) {
		for _, w := range watches {
			w := w
			n.Watch(w, func(ev p2.WatchEvent) {
				fmt.Printf("%8.3f %-9s %s %s\n", ev.Time, ev.Dir, peerArrow(ev), ev.Tuple)
			})
		}
		for _, f := range facts {
			name, fields, err := parseFact(f)
			if err != nil {
				fmt.Fprintf(os.Stderr, "p2: %v\n", err)
				return
			}
			n.AddFact(name, fields...)
		}
	})

	if *duration > 0 {
		time.Sleep(*duration)
		return
	}
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("\np2: shutting down")
}

func peerArrow(ev p2.WatchEvent) string {
	switch ev.Dir {
	case p2.DirSent:
		return "-> " + ev.Peer
	case p2.DirReceived:
		return "<- " + ev.Peer
	}
	return ""
}

// parseFact decodes "name=f1,f2,...". Fields parse as int, then float,
// then string.
func parseFact(s string) (string, []p2.Value, error) {
	name, rest, ok := strings.Cut(s, "=")
	if !ok {
		return "", nil, fmt.Errorf("fact %q: want name=f1,f2,...", s)
	}
	var fields []p2.Value
	if rest != "" {
		for _, part := range strings.Split(rest, ",") {
			fields = append(fields, parseValue(part))
		}
	}
	return name, fields, nil
}

func parseValue(s string) p2.Value {
	if n, err := strconv.ParseInt(s, 10, 64); err == nil {
		return p2.Int(n)
	}
	if f, err := strconv.ParseFloat(s, 64); err == nil {
		return p2.Float(f)
	}
	return p2.Str(s)
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "p2: "+format+"\n", args...)
	os.Exit(1)
}
