// Command p2 runs an OverLog overlay specification on a real UDP node —
// the deployable form of the system ("deployable as a service or
// library", §1).
//
//	# terminal 1: create a Chord ring
//	p2 -spec chord -addr 127.0.0.1:7001 \
//	   -fact 'landmark=127.0.0.1:7001,-' -fact 'join=127.0.0.1:7001,boot1' \
//	   -watch bestSucc
//
//	# terminal 2: join it
//	p2 -spec chord -addr 127.0.0.1:7002 \
//	   -fact 'landmark=127.0.0.1:7002,127.0.0.1:7001' \
//	   -fact 'join=127.0.0.1:7002,boot2' -watch bestSucc
//
// Facts are name=field,field,... where the first field is usually the
// node's own address. Watched relations print every event.
//
// The node's runtime is itself queryable: -top renders a live view of
// the sys* system tables (tables, rule firings, per-peer traffic), and
// -monitor installs extra OverLog rules — e.g. aggregates over
// sysTable — into the node after it starts.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"

	"p2"
	"p2/internal/overlays"
)

type factList []string

func (f *factList) String() string     { return strings.Join(*f, ";") }
func (f *factList) Set(s string) error { *f = append(*f, s); return nil }

type watchList []string

func (w *watchList) String() string     { return strings.Join(*w, ",") }
func (w *watchList) Set(s string) error { *w = append(*w, s); return nil }

func main() {
	spec := flag.String("spec", "chord", "overlay: builtin name or .olg file path")
	addr := flag.String("addr", "127.0.0.1:7001", "UDP address to bind (also the node's identity)")
	duration := flag.Duration("duration", 0, "run time (0 = until interrupted)")
	seed := flag.Int64("seed", time.Now().UnixNano(), "random seed")
	unreliable := flag.Bool("unreliable", false, "compose the short transport chain: no acks, retries, or congestion control")
	noBatch := flag.Bool("nobatch", false, "disable tuple batching: one tuple per datagram")
	ackDelay := flag.Duration("ack-delay", 20*time.Millisecond, "how long to wait for reverse-path data to piggyback acks on")
	monitor := flag.String("monitor", "", "OverLog file to Install into the running node (monitoring rules)")
	metrics := flag.String("metrics", "", "serve Prometheus text metrics at this address (e.g. :9090)")
	record := flag.String("record", "", "record this node's wire traffic to a trace file (replayable with p2sim -replay)")
	faultDrop := flag.Float64("fault-drop", 0, "inject seeded datagram loss at this probability (enables the fault layer)")
	faultDup := flag.Float64("fault-dup", 0, "inject seeded datagram duplication at this probability")
	faultReorder := flag.Float64("fault-reorder", 0, "inject seeded datagram reordering at this probability")
	optimize := flag.Bool("optimize", true, "enable the cost-based query optimizer (sysPlan shows each rule's plan)")
	top := flag.Bool("top", false, "render a live p2top view of the sys* system tables")
	topEvery := flag.Duration("top-interval", 2*time.Second, "refresh period of the -top view")
	var facts factList
	var watches watchList
	flag.Var(&facts, "fact", "startup fact name=f1,f2,... (repeatable)")
	flag.Var(&watches, "watch", "relation to trace (repeatable)")
	flag.Parse()

	src := overlays.Lookup(*spec)
	if src == "" {
		data, err := os.ReadFile(*spec)
		if err != nil {
			fatal("reading spec: %v", err)
		}
		src = string(data)
	}
	plan, err := p2.Compile(src, nil)
	if err != nil {
		fatal("compiling spec: %v", err)
	}

	tcfg := p2.DefaultTransportConfig()
	tcfg.Unreliable = *unreliable
	tcfg.NoBatch = *noBatch
	tcfg.AckDelay = ackDelay.Seconds()
	opts := []p2.Option{p2.WithSeed(*seed), p2.WithTransport(tcfg)}
	if *metrics != "" {
		opts = append(opts, p2.WithMetrics(*metrics))
	}
	if *record != "" {
		opts = append(opts, p2.WithRecord(*record))
	}
	if *faultDrop > 0 || *faultDup > 0 || *faultReorder > 0 {
		opts = append(opts, p2.WithFaults(p2.FaultConfig{
			Seed:        *seed,
			DropRate:    *faultDrop,
			DupRate:     *faultDup,
			ReorderRate: *faultReorder,
		}))
	}
	if *optimize {
		opts = append(opts, p2.WithOptimizer(p2.OptimizerConfig{}))
	}
	dep, err := p2.NewDeployment(p2.UDP, opts...)
	if err != nil {
		fatal("deployment: %v", err)
	}
	defer dep.Close()
	node, err := dep.Spawn(*addr, plan)
	if err != nil {
		fatal("starting node: %v", err)
	}
	fmt.Printf("p2: node %s running %s (%d rules)\n", *addr, *spec, plan.RuleCount())
	if ma := dep.MetricsAddr(); ma != "" {
		fmt.Printf("p2: metrics at http://%s/metrics\n", ma)
	}

	node.Do(func(n *p2.Node) {
		for _, w := range watches {
			w := w
			n.Watch(w, func(ev p2.WatchEvent) {
				fmt.Printf("%8.3f %-9s %s %s\n", ev.Time, ev.Dir, peerArrow(ev), ev.Tuple)
			})
		}
		for _, f := range facts {
			name, fields, err := parseFact(f)
			if err != nil {
				fmt.Fprintf(os.Stderr, "p2: %v\n", err)
				return
			}
			n.AddFact(name, fields...)
		}
	})

	if *monitor != "" {
		src, err := os.ReadFile(*monitor)
		if err != nil {
			fatal("reading monitor rules: %v", err)
		}
		if err := node.Install(string(src)); err != nil {
			fatal("installing monitor rules: %v", err)
		}
		fmt.Printf("p2: installed %s\n", *monitor)
	}

	done := make(chan struct{})
	if *duration > 0 {
		go func() { time.Sleep(*duration); close(done) }()
	} else {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		go func() { <-sig; close(done) }()
	}

	if *top {
		ticker := time.NewTicker(*topEvery)
		defer ticker.Stop()
		for {
			select {
			case <-done:
				fmt.Println("\np2: shutting down")
				return
			case <-ticker.C:
				fmt.Print(renderTop(node))
			}
		}
	}
	<-done
	fmt.Println("\np2: shutting down")
}

// renderTop snapshots the node's system-table counters in one trip to
// its event loop — so every section of a frame reflects the same
// instant — and renders them as a p2top-style dashboard frame.
func renderTop(node *p2.Handle) string {
	type snap struct {
		addr   string
		ns     p2.NodeStat
		tables []p2.TableStat
		rules  []p2.RuleStat
		plans  []p2.PlanStat
		nets   []p2.NetStat
		conds  []p2.Condition
	}
	var s snap
	node.Do(func(n *p2.Node) {
		s = snap{n.Addr(), n.NodeStat(), n.TableStats(), n.RuleStats(), n.PlanStats(), n.NetStats(), n.Conditions()}
	})

	var sb strings.Builder
	sb.WriteString("\033[H\033[2J") // home + clear
	fmt.Fprintf(&sb, "p2top — %s  up %.1fs  events %d  queue %d\n\n",
		s.addr, s.ns.UptimeS, s.ns.Events, s.ns.Queue)
	fmt.Fprintf(&sb, "%-24s %8s %10s %10s %10s\n", "TABLE", "TUPLES", "INSERTS", "DELETES", "REFRESH")
	for _, t := range s.tables {
		fmt.Fprintf(&sb, "%-24s %8d %10d %10d %10d\n", t.Name, t.Tuples, t.Inserts, t.Deletes, t.Refreshes)
	}
	sort.Slice(s.rules, func(i, j int) bool { return s.rules[i].Fires > s.rules[j].Fires })
	if len(s.rules) > 10 {
		s.rules = s.rules[:10]
	}
	fmt.Fprintf(&sb, "\n%-24s %8s\n", "RULE (top 10)", "FIRES")
	for _, r := range s.rules {
		fmt.Fprintf(&sb, "%-24s %8d\n", r.ID, r.Fires)
	}
	sort.Slice(s.plans, func(i, j int) bool { return s.plans[i].Rule < s.plans[j].Rule })
	shown := 0
	for _, p := range s.plans {
		if p.Order == "-" && p.Replans == 0 {
			continue // textual plan, never touched — noise in a dashboard
		}
		if shown == 0 {
			fmt.Fprintf(&sb, "\n%-24s %-12s %10s %8s\n", "PLAN", "ORDER", "COST", "REPLANS")
		}
		if shown++; shown > 10 {
			break
		}
		fmt.Fprintf(&sb, "%-24s %-12s %10.4g %8d\n", p.Rule, p.Order, p.CostEst, p.Replans)
	}
	fmt.Fprintf(&sb, "\n%-24s %8s %8s %10s %8s %6s %7s %7s %6s %6s\n",
		"PEER", "SENT", "RECVD", "BYTES", "RETRY", "CWND", "RTO", "BACKLOG", "FILL", "DROPS")
	for _, d := range s.nets {
		var drops int64
		for _, v := range d.Drops {
			drops += v
		}
		fmt.Fprintf(&sb, "%-24s %8d %8d %10d %8d %6.1f %7.3f %7d %6.1f %6d\n",
			d.Dest, d.Sent, d.Recvd, d.Bytes, d.Retries, d.Cwnd, d.RTO, d.Backlog, d.BatchFill, drops)
	}
	fmt.Fprintf(&sb, "\n%-24s %-8s %s\n", "CONDITION", "STATUS", "REASON")
	for _, c := range s.conds {
		fmt.Fprintf(&sb, "%-24s %-8s %s\n", c.Type, c.Status, c.Reason)
	}
	return sb.String()
}

func peerArrow(ev p2.WatchEvent) string {
	switch ev.Dir {
	case p2.DirSent:
		return "-> " + ev.Peer
	case p2.DirReceived:
		return "<- " + ev.Peer
	}
	return ""
}

// parseFact decodes "name=f1,f2,...". Fields parse as int, then float,
// then string.
func parseFact(s string) (string, []p2.Value, error) {
	name, rest, ok := strings.Cut(s, "=")
	if !ok {
		return "", nil, fmt.Errorf("fact %q: want name=f1,f2,...", s)
	}
	var fields []p2.Value
	if rest != "" {
		for _, part := range strings.Split(rest, ",") {
			fields = append(fields, parseValue(part))
		}
	}
	return name, fields, nil
}

func parseValue(s string) p2.Value {
	if n, err := strconv.ParseInt(s, 10, 64); err == nil {
		return p2.Int(n)
	}
	if f, err := strconv.ParseFloat(s, 64); err == nil {
		return p2.Float(f)
	}
	return p2.Str(s)
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "p2: "+format+"\n", args...)
	os.Exit(1)
}
