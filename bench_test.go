package p2_test

// Benchmarks regenerating the paper's evaluation (§5), one per figure
// or quantified claim. These wrap the generators in
// internal/experiments at smoke scale so `go test -bench=.` finishes in
// minutes; cmd/p2sim runs the same code at the published scale
// (100-500 node static rings, 400-node 20-minute churn).
//
// Figure-shaped results are emitted as custom benchmark metrics
// (hops/lookup, B/s/node, consistency) rather than ns/op, which is
// meaningless for a virtual-time simulation.

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"p2"
	"p2/internal/chordref"
	"p2/internal/eventloop"
	"p2/internal/experiments"
	"p2/internal/harness"
	"p2/internal/id"
	"p2/internal/overlog"
	"p2/internal/planner"
	"p2/internal/simnet"
	"p2/internal/transport"
	"p2/internal/tuple"
	"p2/internal/val"
	"p2/internal/workload"
)

// staticRing builds a converged P2 Chord ring for lookup benchmarks.
func staticRing(b *testing.B, n int) *harness.Chord {
	b.Helper()
	h := harness.NewChord(harness.Opts{N: n, Seed: 1, JoinSpacing: 0.5})
	h.Run(float64(n)*0.5 + 200)
	if rc := h.RingCorrectness(); rc < 0.9 {
		b.Fatalf("ring correctness %.2f", rc)
	}
	return h
}

// BenchmarkFig3iHopCount reproduces Figure 3(i): mean lookup hop count
// on a static ring, expected ≈ log2(N)/2.
func BenchmarkFig3iHopCount(b *testing.B) {
	for _, n := range []int{16, 32} {
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			h := staticRing(b, n)
			b.ResetTimer()
			totalHops, done := 0, 0
			for i := 0; i < b.N; i++ {
				for j := 0; j < 20; j++ {
					lr := h.Lookup(h.RandomLiveAddr(), h.RandomKey())
					h.Run(10)
					if lr.Done {
						totalHops += lr.Hops
						done++
					}
				}
			}
			if done > 0 {
				b.ReportMetric(float64(totalHops)/float64(done), "hops/lookup")
			}
		})
	}
}

// BenchmarkFig3iiMaintenanceBW reproduces Figure 3(ii): idle
// maintenance bandwidth per node, expected well under 1 kB/s.
func BenchmarkFig3iiMaintenanceBW(b *testing.B) {
	for _, n := range []int{16, 32} {
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			h := staticRing(b, n)
			b.ResetTimer()
			var bps float64
			for i := 0; i < b.N; i++ {
				h.ResetTraffic()
				h.Run(30)
				_, maint := h.TrafficBytes()
				bps = float64(maint) / float64(n) / 30
			}
			b.ReportMetric(bps, "B/s/node")
		})
	}
}

// BenchmarkFig3iiiLatency reproduces Figure 3(iii): lookup latency
// distribution on the transit-stub topology.
func BenchmarkFig3iiiLatency(b *testing.B) {
	h := staticRing(b, 32)
	b.ResetTimer()
	var lats []float64
	for i := 0; i < b.N; i++ {
		for j := 0; j < 20; j++ {
			lr := h.Lookup(h.RandomLiveAddr(), h.RandomKey())
			h.Run(10)
			if lr.Done {
				lats = append(lats, lr.Latency())
			}
		}
	}
	cdf := experiments.NewCDF(lats)
	b.ReportMetric(cdf.Percentile(0.5)*1000, "p50-ms")
	b.ReportMetric(cdf.Percentile(0.96)*1000, "p96-ms")
}

// BenchmarkFig4iChurnBW reproduces Figure 4(i): maintenance bandwidth
// under churn.
func BenchmarkFig4iChurnBW(b *testing.B) {
	h := staticRing(b, 24)
	b.ResetTimer()
	var bps float64
	for i := 0; i < b.N; i++ {
		h.StartChurn(8 * 60)
		h.ResetTraffic()
		h.Run(120)
		h.StopChurn()
		_, maint := h.TrafficBytes()
		bps = float64(maint) / 24 / 120
	}
	b.ReportMetric(bps, "B/s/node")
}

// BenchmarkFig4iiConsistency reproduces Figure 4(ii): fraction of
// simultaneous lookups agreeing on an owner under churn.
func BenchmarkFig4iiConsistency(b *testing.B) {
	for _, sessMin := range []float64{2, 16} {
		b.Run(fmt.Sprintf("session=%gmin", sessMin), func(b *testing.B) {
			h := staticRing(b, 24)
			h.StartChurn(sessMin * 60)
			h.Run(30)
			b.ResetTimer()
			sum, probes := 0.0, 0
			for i := 0; i < b.N; i++ {
				for j := 0; j < 5; j++ {
					sum += h.ConsistencyProbe(5, 12)
					probes++
				}
			}
			h.StopChurn()
			b.ReportMetric(sum/float64(probes), "consistent-frac")
		})
	}
}

// BenchmarkFig4iiiChurnLatency reproduces Figure 4(iii): lookup latency
// under churn.
func BenchmarkFig4iiiChurnLatency(b *testing.B) {
	h := staticRing(b, 24)
	h.StartChurn(8 * 60)
	h.Run(30)
	b.ResetTimer()
	var lats []float64
	for i := 0; i < b.N; i++ {
		for j := 0; j < 20; j++ {
			lr := h.Lookup(h.RandomLiveAddr(), h.RandomKey())
			h.Run(12)
			if lr.Done {
				lats = append(lats, lr.Latency())
			}
		}
	}
	h.StopChurn()
	if len(lats) > 0 {
		cdf := experiments.NewCDF(lats)
		b.ReportMetric(cdf.Percentile(0.5)*1000, "p50-ms")
	}
}

// BenchmarkTransportThroughput measures the wire cost of bulk tuple
// traffic toward one destination for the batched and unbatched element
// chains. The figure to read is datagrams/ktuple: MTU-budget batching
// plus cumulative acks piggybacked on data frames must cut the
// datagram count at least 2x at equal delivered-tuple counts (the
// enforcing test is internal/transport's TestBatchingReducesDatagrams).
func BenchmarkTransportThroughput(b *testing.B) {
	const tuples = 1000
	for _, mode := range []struct {
		name    string
		noBatch bool
	}{{"batched", false}, {"unbatched", true}} {
		b.Run(mode.name, func(b *testing.B) {
			var datagrams, wireBytes, delivered int64
			for i := 0; i < b.N; i++ {
				loop := eventloop.NewSim()
				scfg := simnet.DefaultConfig()
				scfg.Domains = 1
				net := simnet.New(loop, scfg)
				cfg := transport.DefaultConfig()
				cfg.NoBatch = mode.noBatch
				var src, dst *transport.Transport
				epA, _ := net.Attach("a", func(from string, p []byte) { src.Deliver(from, p) })
				epB, _ := net.Attach("b", func(from string, p []byte) { dst.Deliver(from, p) })
				src = transport.New(loop, epA, cfg)
				dst = transport.New(loop, epB, cfg)
				got := 0
				dst.OnReceive(func(string, *tuple.Tuple) { got++ })
				// Bulk load in strand-sized bursts, as gossip rounds produce.
				for burst := 0; burst < tuples/50; burst++ {
					at := float64(burst) * 0.05
					loop.At(at, func() {
						for j := 0; j < 50; j++ {
							src.Send("b", tuple.New("g", val.Str("b"), val.Int(int64(j))))
						}
					})
				}
				loop.Run(60)
				if got != tuples {
					b.Fatalf("delivered %d of %d", got, tuples)
				}
				st := net.TotalStats()
				datagrams += st.PacketsSent
				wireBytes += st.BytesSent
				delivered += int64(got)
			}
			b.ReportMetric(float64(datagrams)/float64(delivered)*1000, "datagrams/ktuple")
			b.ReportMetric(float64(wireBytes)/float64(delivered), "wire-B/tuple")
		})
	}
}

// BenchmarkNodeMemoryFootprint checks the §1 claim of ~800 kB working
// set per full Chord node.
func BenchmarkNodeMemoryFootprint(b *testing.B) {
	var fp experiments.Footprint
	for i := 0; i < b.N; i++ {
		fp = experiments.MeasureFootprint(8, 60)
	}
	b.ReportMetric(float64(fp.BytesPerNode)/1024, "kB/node")
}

// BenchmarkFootprint is the scale-out memory gauge CI archives per
// commit: amortized heap bytes per node at the paper's population and
// at 1k, control-run-subtracted and double-GC'd (MeasureFootprint), so
// the BENCH_*.json trajectory records whether per-node cost is drifting
// toward or away from the 100k-in-125GB budget. kB/node is a gated
// lower-is-better metric under tools/benchjson -baseline.
func BenchmarkFootprint(b *testing.B) {
	for _, n := range []int{8, 1000} {
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			var fp experiments.Footprint
			for i := 0; i < b.N; i++ {
				fp = experiments.MeasureFootprint(n, 30)
			}
			b.ReportMetric(float64(fp.BytesPerNode)/1024, "kB/node")
			b.ReportMetric(float64(fp.InternEntries), "intern-entries")
		})
	}
}

// BenchmarkOpenLoopWorkload is the 1k-node open-loop smoke CI archives
// per commit: a ramped-join build of a 1000-node ring on the
// transit-stub WAN, then a 10-virtual-second Poisson lookup stream at
// 100/s, reporting completion-weighted latency percentiles. p50/p99/
// p999-ms are gated lower-is-better metrics under tools/benchjson
// -baseline; the full 60-second 10k soak lives in internal/workload's
// TestScale10k (CI: test-scale job).
func BenchmarkOpenLoopWorkload(b *testing.B) {
	wan := simnet.TransitStubWAN(4, 4, 17)
	h := harness.NewChord(harness.Opts{N: 1000, Seed: 1, JoinSpacing: 0.01,
		JoinRamp: true, Net: &wan})
	b.Cleanup(h.Close)
	h.Run(h.JoinDeadline() + 60)
	if rc := h.RingCorrectness(); rc < 0.99 {
		b.Fatalf("ring correctness %.3f before workload", rc)
	}
	b.ResetTimer()
	var rep workload.Report
	for i := 0; i < b.N; i++ {
		rep = workload.Run(h, workload.Opts{Rate: 100, Duration: 10, Seed: 2})
	}
	b.ReportMetric(rep.LatencyP50*1000, "p50-ms")
	b.ReportMetric(rep.LatencyP99*1000, "p99-ms")
	b.ReportMetric(rep.LatencyP999*1000, "p999-ms")
	b.ReportMetric(rep.MeanHops, "hops/lookup")
	b.ReportMetric(rep.CompletionRate(), "done-frac")
}

// BenchmarkKVWorkload is the KV service's CI gauge: a 256-node KV
// ring on the transit-stub WAN under the open-loop PUT/GET mix,
// archiving throughput (ops/sec of virtual time), the staleness
// fraction, and per-op latency percentiles. ops/sec (higher is
// better) and stale-frac (lower) gate under tools/benchjson -baseline.
func BenchmarkKVWorkload(b *testing.B) {
	wan := simnet.TransitStubWAN(4, 4, 17)
	h := harness.NewChord(harness.Opts{N: 256, Seed: 1, JoinSpacing: 0.05,
		JoinRamp: true, Net: &wan, KV: true})
	b.Cleanup(h.Close)
	h.Run(h.JoinDeadline() + 120)
	if rc := h.RingCorrectness(); rc < 0.99 {
		b.Fatalf("ring correctness %.3f before workload", rc)
	}
	b.ResetTimer()
	var rep workload.KVReport
	const dur = 10.0
	for i := 0; i < b.N; i++ {
		rep = workload.RunKV(h, workload.KVOpts{Rate: 50, Duration: dur, Seed: 2})
	}
	done := float64(rep.PutsCompleted + rep.GetsCompleted)
	b.ReportMetric(done/dur, "ops/sec")
	b.ReportMetric(rep.StalenessRate(), "stale-frac")
	b.ReportMetric(rep.CompletionRate(), "done-frac")
	b.ReportMetric(rep.PutP99*1000, "put-p99-ms")
	b.ReportMetric(rep.GetP99*1000, "get-p99-ms")
}

// BenchmarkLookupDeclarative measures wall-clock simulation cost of
// lookups on the OverLog-driven engine — the "CPU usage comparable to
// C++ implementations" axis, paired with BenchmarkLookupHandcoded.
func BenchmarkLookupDeclarative(b *testing.B) {
	h := staticRing(b, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Lookup(h.RandomLiveAddr(), h.RandomKey())
		h.Run(10)
	}
}

// BenchmarkLookupHandcoded is the imperative baseline under the
// identical workload and network.
func BenchmarkLookupHandcoded(b *testing.B) {
	loop := eventloop.NewSim()
	net := simnet.New(loop, simnet.DefaultConfig())
	rng := rand.New(rand.NewSource(1))
	var nodes []*chordref.Node
	for i := 0; i < 16; i++ {
		addr := fmt.Sprintf("n%d:ref", i)
		nd, err := chordref.NewNode(addr, loop, net, chordref.DefaultConfig(), int64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		nodes = append(nodes, nd)
		if i == 0 {
			nd.Start("")
		} else {
			nd.Start(nodes[0].Addr())
		}
		loop.RunFor(0.5)
	}
	loop.RunFor(200)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nodes[rng.Intn(len(nodes))].Lookup(id.Random(rng), func(string, int) {})
		loop.RunFor(10)
	}
}

// BenchmarkParseChord measures OverLog front-end speed on the full
// 50-rule Chord specification.
func BenchmarkParseChord(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := overlog.Parse(p2.ChordSource); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCompileChord measures the planner on the same spec.
func BenchmarkCompileChord(b *testing.B) {
	prog := overlog.MustParse(p2.ChordSource)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := planner.Compile(prog, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulatedSecond measures how much wall time one virtual
// second of a 32-node Chord network costs — the simulator's speedup
// over real time — and the raw event rate the loop sustains. This is
// the hot-path gauge: strand triggers, equijoin probes, and deferred
// procedure calls all meter through here.
func BenchmarkSimulatedSecond(b *testing.B) {
	h := staticRing(b, 32)
	b.ResetTimer()
	events := 0
	start := time.Now()
	for i := 0; i < b.N; i++ {
		events += h.RunEvents(1)
	}
	if wall := time.Since(start).Seconds(); wall > 0 {
		b.ReportMetric(float64(events)/wall, "events/sec")
	}
}

// totalProbes sums the equijoin probe counters across every live node.
func totalProbes(h *harness.Chord) int64 {
	var total int64
	for _, addr := range h.LiveAddrs() {
		h.Node(addr).Do(func(n *p2.Node) { total += n.Stats().Probes })
	}
	return total
}

// BenchmarkOptimizedSecond is the query-optimizer gauge: one virtual
// second of a converged 128-node Chord ring with the cost-based
// optimizer on (the harness default) against the textual-plan baseline,
// at identical seed and topology. events/sec is the headline;
// probes/event shows where the win comes from — pushed-down selections
// and shared probe caches retire join work before it reaches an index.
func BenchmarkOptimizedSecond(b *testing.B) {
	for _, mode := range []struct {
		name  string
		naive bool
	}{{"optimized", false}, {"naive", true}} {
		b.Run(mode.name, func(b *testing.B) {
			cfg := simnet.DefaultConfig()
			cfg.Domains = 16
			h := harness.NewChord(harness.Opts{N: 128, Seed: 1, JoinSpacing: 0.1,
				Net: &cfg, NoOptimizer: mode.naive})
			b.Cleanup(h.Close)
			h.Run(128*0.1 + 60)
			b.ResetTimer()
			events := 0
			p0 := totalProbes(h)
			start := time.Now()
			for i := 0; i < b.N; i++ {
				events += h.RunEvents(1)
			}
			wall := time.Since(start).Seconds()
			if events > 0 {
				b.ReportMetric(float64(totalProbes(h)-p0)/float64(events), "probes/event")
			}
			if wall > 0 {
				b.ReportMetric(float64(events)/wall, "events/sec")
			}
		})
	}
}

// shardedRing builds a Chord ring for the large simulator-throughput
// benchmarks: tighter join staggering than the figure benchmarks (a
// 512-node ring at paper spacing would spend minutes just joining) and
// a 16-domain topology so common shard counts divide the domains — and
// therefore the load — evenly.
func shardedRing(b *testing.B, n, shards int, spacing, settle float64) *harness.Chord {
	b.Helper()
	cfg := simnet.DefaultConfig()
	cfg.Domains = 16
	h := harness.NewChord(harness.Opts{N: n, Seed: 1, JoinSpacing: spacing, Net: &cfg, Shards: shards})
	b.Cleanup(h.Close)
	h.Run(float64(n)*spacing + settle)
	if rc := h.RingCorrectness(); rc < 0.5 {
		b.Logf("ring correctness only %.2f at N=%d (throughput numbers still valid)", rc, n)
	}
	return h
}

// benchSimulatedSecond meters virtual-second cost at each shard count:
// events/sec is the simulator's throughput, events/sec/core the
// parallel efficiency (identical virtual workload at every shard
// count, so the ratio between shard counts is pure speedup).
func benchSimulatedSecond(b *testing.B, n int, shardCounts []int, spacing, settle float64) {
	for _, shards := range shardCounts {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			h := shardedRing(b, n, shards, spacing, settle)
			b.ResetTimer()
			events := 0
			start := time.Now()
			for i := 0; i < b.N; i++ {
				events += h.RunEvents(1)
			}
			if wall := time.Since(start).Seconds(); wall > 0 {
				eps := float64(events) / wall
				b.ReportMetric(eps, "events/sec")
				b.ReportMetric(eps/float64(shards), "events/sec/core")
				b.ReportMetric(float64(shards), "shards")
			}
		})
	}
}

// BenchmarkSimulatedSecond128 scales the hot-path gauge to a 128-node
// ring and compares single-shard against 4-way sharded execution.
func BenchmarkSimulatedSecond128(b *testing.B) {
	benchSimulatedSecond(b, 128, []int{1, 4}, 0.1, 60)
}

// BenchmarkSimulatedSecond512 is the scale target the sharded simulator
// exists for: a 512-node ring far beyond the paper's 100-node testbed,
// at 1 shard vs 8. On an 8-core runner the 8-shard run should sustain
// well over 2.5x the single-shard events/sec; CI archives both in
// BENCH_<sha>.json so the trajectory is recorded per commit.
func BenchmarkSimulatedSecond512(b *testing.B) {
	benchSimulatedSecond(b, 512, []int{1, 8}, 0.05, 40)
}

// BenchmarkAblationSuccessorList reports ring survival after a 25%
// burst failure for successor-list sizes 1 (MACEDON-style) and 4 — the
// design-choice ablation DESIGN.md calls out.
func BenchmarkAblationSuccessorList(b *testing.B) {
	var rows []experiments.SuccessorAblationRow
	for i := 0; i < b.N; i++ {
		rows = experiments.RunSuccessorAblation(20, 0.25, []int{1, 4}, 5)
	}
	b.ReportMetric(rows[0].RingCorrectness, "correct-s1")
	b.ReportMetric(rows[1].RingCorrectness, "correct-s4")
}

// BenchmarkAblationTransport reports lookup completion at 15% loss with
// and without the reliable transport.
func BenchmarkAblationTransport(b *testing.B) {
	var rows []experiments.TransportAblationRow
	for i := 0; i < b.N; i++ {
		rows = experiments.RunTransportAblation(16, []float64{0.15}, 25, 9)
	}
	for _, r := range rows {
		frac := float64(r.Completed) / float64(r.Issued)
		if r.Reliable {
			b.ReportMetric(frac, "done-reliable")
		} else {
			b.ReportMetric(frac, "done-raw")
		}
	}
}
