package p2_test

// Introspection through the public API, including the UDP deployment
// path: system tables populate over real sockets, and a rule installed
// at runtime with Handle.Install aggregates them into a watchable
// relation — the acceptance scenario for the introspection subsystem.

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"p2"
	"p2/internal/udpnet"
)

const udpPingPong = `
	materialize(seen, infinity, infinity, keys(1,2,3)).
	P1 ping@Y(Y, X, E) :- pingEvent@X(X, Y, E).
	P2 pong@X(X, Y, E) :- ping@Y(Y, X, E).
	P3 seen@X(X, Y, E) :- pong@X(X, Y, E).
`

const monitorRules = `
	materialize(totalTuples, infinity, 1, keys(1)).
	T1 totalTuples@N(N, sum<C>) :- sysTable@N(N, T, C, I, D, R).
`

// peerNetRules joins sysNet's transport control-state columns — the
// UDP-path acceptance check that cwnd/rto/backlog/batch-fill are
// queryable from OverLog.
const peerNetRules = `
	materialize(peerNet, infinity, infinity, keys(1,2)).
	N1 peerNet@N(N, D, W, B, F) :- sysNet@N(N, D, S, R, By, Rt, W, T, B, F, DR, DC, DD, DO).
`

func TestSystemTableCatalog(t *testing.T) {
	defs := p2.SystemTables()
	if len(defs) != 7 {
		t.Fatalf("system tables = %d, want 7", len(defs))
	}
	names := map[string]bool{}
	for _, d := range defs {
		names[d.Name] = true
	}
	for _, want := range []string{p2.SysTable, p2.SysRule, p2.SysPlan, p2.SysNet, p2.SysNode, p2.SysHealth, p2.SysKV} {
		if !names[want] {
			t.Fatalf("catalog missing %s", want)
		}
	}
	// Reserved names are rejected at compile time.
	if _, err := p2.Compile("materialize(sysX, 10, 10, keys(1)).", nil); err == nil {
		t.Fatal("compiling a sys* materialize must fail")
	}
}

// TestUDPInstallAggregatesSystemTable is the UDP-path acceptance test,
// the twin of the engine package's simulated-path test — driven
// entirely through the runtime-agnostic Deployment surface.
func TestUDPInstallAggregatesSystemTable(t *testing.T) {
	plan := p2.MustCompile(udpPingPong, nil)

	addrA, err := udpnet.ReserveAddr()
	if err != nil {
		t.Skipf("no loopback UDP: %v", err)
	}
	addrB, err := udpnet.ReserveAddr()
	if err != nil {
		t.Skipf("no loopback UDP: %v", err)
	}
	d, err := p2.NewDeployment(p2.UDP, p2.WithSeed(1),
		p2.WithNodeDefaults(p2.NodeOptions{IntrospectInterval: 0.1})) // wall-clock; keep the test fast
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	a, err := d.Spawn(addrA, plan)
	if err != nil {
		t.Fatal(err)
	}
	b, err := d.Spawn(addrB, plan)
	if err != nil {
		t.Fatal(err)
	}

	for i := 0; i < 3; i++ {
		a.Inject(p2.NewTuple("pingEvent", p2.Str(addrA), p2.Str(addrB), p2.Str(fmt.Sprintf("e%d", i))))
	}

	if err := a.Install(monitorRules); err != nil {
		t.Fatal(err)
	}
	if err := a.Install(peerNetRules); err != nil {
		t.Fatal(err)
	}
	// Installing rules that are already present must fail loudly, and
	// identically re-declared tables must be shared without error.
	if err := a.Install("materialize(totalTuples, 1, 1, keys(1))."); err == nil {
		t.Fatal("conflicting re-declaration must fail")
	}
	if err := a.Install("materialize(totalTuples, infinity, 1, keys(1))."); err != nil {
		t.Fatalf("identical re-declaration must be shared: %v", err)
	}

	var watched atomic.Int64
	a.Watch("totalTuples", func(ev p2.WatchEvent) {
		if ev.Dir == p2.DirInserted {
			watched.Add(1)
		}
	})

	// Poll until the installed aggregate reflects the ping-pong state:
	// 3 seen tuples on a, plus totalTuples' own row after one more
	// refresh. Wall-clock deadline keeps CI failures bounded.
	deadline := time.Now().Add(10 * time.Second)
	for {
		var total int64
		var sent, recvd int64
		var cwnd, fill float64
		if rows := a.Scan("totalTuples"); len(rows) == 1 {
			total = rows[0].Field(1).AsInt()
		}
		for _, st := range a.NetStats() {
			if st.Dest == addrB {
				sent, recvd = st.Sent, st.Recvd
			}
		}
		// The installed rule must materialize sysNet's control-state
		// columns for the peer.
		for _, row := range a.Scan("peerNet") {
			if row.Field(1).AsStr() == addrB {
				cwnd = row.Field(2).AsFloat()
				fill = row.Field(4).AsFloat()
			}
		}
		if total >= 4 && sent > 0 && recvd > 0 && cwnd >= 1 && fill >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("timed out: totalTuples=%d sent=%d recvd=%d cwnd=%v fill=%v",
				total, sent, recvd, cwnd, fill)
		}
		time.Sleep(50 * time.Millisecond)
	}
	if watched.Load() == 0 {
		t.Fatal("installed relation produced no watch events over UDP")
	}

	// Install after Kill must error promptly, not hang on a dead loop
	// (the Close/Install TOCTOU regression).
	b.Kill()
	if err := b.Install(monitorRules); err == nil {
		t.Fatal("install on killed node must fail")
	}
	if err := b.Do(func(*p2.Node) {}); err == nil {
		t.Fatal("Do on killed node must fail")
	}
}
