package p2_test

// Condition-transition coverage for the operability subsystem, driven
// through the public Deployment API on every runtime.
//
// TestPartitionConditionTransitions* push one node through the full
// Partitioned lifecycle — False on a healthy link, True once traffic
// toward an unreachable peer exhausts its retry budget, False again
// after the suspicion decays — on Simulated shards=1, Simulated
// shards=4, and real UDP loopback (where the peer is killed rather than
// the network cut).
//
// TestHealthSnapshotBitIdentical extends the determinism guarantee to
// the health surface: a churned 64-node Chord deployment's
// HealthSnapshot — every status, reason string, and transition time —
// is bit-identical at 1 and 4 shards.

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"p2"
	"p2/internal/udpnet"
)

// partSpec is fully reactive: node a pings b only when the test injects
// a pingEvent, so the test controls exactly when traffic (and therefore
// drop classification) happens.
const partSpec = `
	P1 ping@Y(Y, X, E) :- pingEvent@X(X, Y, E).
`

// healthNodeOpts tunes node defaults so failure classification and
// suspect decay play out in a few seconds of virtual or wall time: a
// single fast retry before a tuple is abandoned, sub-second
// introspection refreshes, and a short suspicion window.
func healthNodeOpts(suspectWindow float64) p2.NodeOptions {
	tcfg := p2.DefaultTransportConfig()
	tcfg.MaxRetries = 1
	tcfg.InitialRTO, tcfg.MinRTO, tcfg.MaxRTO = 0.3, 0.2, 0.5
	hcfg := p2.HealthConfig{SuspectWindow: suspectWindow}
	return p2.NodeOptions{Transport: &tcfg, Health: &hcfg, IntrospectInterval: 0.5}
}

func condOf(h *p2.Handle, typ p2.ConditionType) (p2.Condition, bool) {
	for _, c := range h.Conditions() {
		if c.Type == typ {
			return c, true
		}
	}
	return p2.Condition{}, false
}

// driveTransitions runs the Partitioned lifecycle on d: healthy link →
// cut() → raised → heal() plus quiet → cleared. The call sequence is
// identical for every runtime; only the deployment and the cut/heal
// actions differ.
func driveTransitions(t *testing.T, d *p2.Deployment, a, b string, cut, heal func()) {
	t.Helper()
	defer d.Close()
	plan := p2.MustCompile(partSpec, nil)
	ha, err := d.Spawn(a, plan)
	if err != nil {
		t.Fatalf("spawn %s: %v", a, err)
	}
	if _, err := d.Spawn(b, plan); err != nil {
		t.Fatalf("spawn %s: %v", b, err)
	}

	eid := 0
	ping := func() {
		eid++
		err := ha.Inject(p2.NewTuple("pingEvent",
			p2.Str(a), p2.Str(b), p2.Str(fmt.Sprintf("e%d", eid))))
		if err != nil {
			t.Fatalf("inject: %v", err)
		}
	}
	// wait steps the deployment (virtual time on Simulated, wall time on
	// UDP) until Partitioned reads want on a, optionally keeping traffic
	// flowing toward b so drops accumulate.
	wait := func(want p2.ConditionStatus, traffic bool) p2.Condition {
		deadline := time.Now().Add(30 * time.Second)
		for i := 0; i < 240; i++ {
			if c, ok := condOf(ha, p2.Partitioned); ok && c.Status == want {
				return c
			}
			if time.Now().After(deadline) {
				break
			}
			if traffic {
				ping()
			}
			d.Run(0.25)
		}
		c, _ := condOf(ha, p2.Partitioned)
		t.Fatalf("Partitioned never became %s on %v (last: %+v)", want, d.Runtime(), c)
		return p2.Condition{}
	}

	// Healthy link: traffic completes, no suspects.
	first := wait(p2.ConditionFalse, true)

	// Cut it. Pings toward b now exhaust their retry budget, the
	// classifier reports RetryExhausted then PeerDead, and the condition
	// raises on the next refresh.
	cut()
	raised := wait(p2.ConditionTrue, true)
	if raised.Reason == "" {
		t.Error("raised Partitioned carries no reason")
	}
	if raised.LastTransition < first.LastTransition {
		t.Errorf("raise transition at %v predates the healthy reading at %v",
			raised.LastTransition, first.LastTransition)
	}

	// Heal and go quiet: with no failure drop advancing inside
	// SuspectWindow the suspicion decays and the condition clears — no
	// restart or respawn required.
	heal()
	healed := wait(p2.ConditionFalse, false)
	if healed.LastTransition <= raised.LastTransition {
		t.Errorf("clear transition at %v not after raise at %v",
			healed.LastTransition, raised.LastTransition)
	}
}

func TestPartitionConditionTransitionsSimulated(t *testing.T) {
	for _, shards := range []int{1, 4} {
		shards := shards
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			d, err := p2.NewDeployment(p2.Simulated, p2.WithSeed(11),
				p2.WithShards(shards), p2.WithNodeDefaults(healthNodeOpts(3)))
			if err != nil {
				t.Fatal(err)
			}
			const a, b = "h0:p2", "h1:p2"
			driveTransitions(t, d, a, b,
				func() {
					if err := d.Partition(a, b, true); err != nil {
						t.Fatalf("partition: %v", err)
					}
				},
				func() {
					if err := d.Partition(a, b, false); err != nil {
						t.Fatalf("heal: %v", err)
					}
				})
		})
	}
}

func TestPartitionConditionTransitionsUDP(t *testing.T) {
	var addrs []string
	for i := 0; i < 2; i++ {
		a, err := udpnet.ReserveAddr()
		if err != nil {
			t.Skipf("no loopback UDP: %v", err)
		}
		addrs = append(addrs, a)
	}
	d, err := p2.NewDeployment(p2.UDP, p2.WithSeed(11),
		p2.WithNodeDefaults(healthNodeOpts(2)))
	if err != nil {
		t.Fatal(err)
	}
	// On UDP the "partition" is a peer death; the heal is pure decay —
	// the survivor stops seeing new failure drops once the test stops
	// sending, and the suspicion ages out.
	driveTransitions(t, d, addrs[0], addrs[1],
		func() { d.Kill(addrs[1]) },
		func() {})
}

// churnedHealthSnapshot builds a 64-node churned Chord deployment via
// the public API and captures its HealthSnapshot from driver context.
func churnedHealthSnapshot(t *testing.T, shards int) p2.HealthSnapshot {
	t.Helper()
	plan := p2.MustCompile(p2.ChordSource, nil)
	d, err := p2.NewDeployment(p2.Simulated, p2.WithSeed(5), p2.WithShards(shards))
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	const landmark = "d0:p2"
	next := 0
	mint := func() string { a := fmt.Sprintf("d%d:p2", next); next++; return a }
	spawn := func(addr string) *p2.Handle {
		h, err := d.Spawn(addr, plan)
		if err != nil {
			t.Fatalf("spawn %s: %v", addr, err)
		}
		lm := "-"
		if addr != landmark {
			lm = landmark
		}
		h.AddFact("landmark", p2.Str(addr), p2.Str(lm))
		h.AddFact("join", p2.Str(addr), p2.Str(addr+"!boot"))
		return h
	}
	for i := 0; i < 64; i++ {
		addr := mint()
		d.At(float64(i)*0.05, func() { spawn(addr) })
	}
	d.Run(12)
	d.EnableChurn(20, func(dep *p2.Deployment, died string) *p2.Handle {
		return spawn(mint())
	}, landmark)
	d.Run(18)
	d.DisableChurn()
	d.Run(6)
	return d.HealthSnapshot()
}

// TestHealthSnapshotBitIdentical extends the sharded-simulation
// determinism guarantee to the operability surface: the whole health
// capture of a churned 64-node deployment — per-node statuses, reason
// strings, transition times, and the overlay rollup — is a pure
// function of (seed, program, virtual time), bit-identical at 1 and 4
// shards.
func TestHealthSnapshotBitIdentical(t *testing.T) {
	s1 := churnedHealthSnapshot(t, 1)
	s4 := churnedHealthSnapshot(t, 4)
	if !reflect.DeepEqual(s1, s4) {
		t.Errorf("health snapshots diverged:\nshards=1: %+v\nshards=4: %+v", s1, s4)
	}
	if len(s1.Nodes) == 0 {
		t.Fatal("snapshot captured no nodes")
	}
	want := len(p2.ConditionTypes())
	for _, n := range s1.Nodes {
		if len(n.Conditions) != want {
			t.Fatalf("node %s reports %d conditions, want the full catalogue of %d",
				n.Addr, len(n.Conditions), want)
		}
	}
	if len(s1.Overlay) != want {
		t.Fatalf("overlay rollup has %d conditions, want %d", len(s1.Overlay), want)
	}
}
