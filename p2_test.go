package p2_test

import (
	"testing"

	"p2"
)

func TestCompileShippedOverlays(t *testing.T) {
	for _, src := range []string{p2.ChordSource, p2.NaradaSource, p2.GossipSource, p2.LinkStateSource, p2.PingPongSource} {
		if _, err := p2.Compile(src, nil); err != nil {
			t.Fatalf("compile: %v", err)
		}
	}
}

func TestParseErrorsSurface(t *testing.T) {
	if _, err := p2.Parse("bogus !!"); err == nil {
		t.Fatal("expected parse error")
	}
	if _, err := p2.Compile("r out@X(X, Z) :- in@X(X).", nil); err == nil {
		t.Fatal("expected compile error")
	}
}

func TestMustCompilePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	p2.MustCompile("r out@X(X, Z) :- in@X(X).", nil)
}

func TestValueConstructors(t *testing.T) {
	if p2.Str("x").AsStr() != "x" || p2.Int(3).AsInt() != 3 || p2.Float(2.5).AsFloat() != 2.5 {
		t.Fatal("constructors wrong")
	}
	if !p2.Bool(true).AsBool() {
		t.Fatal("bool wrong")
	}
	if p2.IDValue(p2.Hash("a")).AsID() != p2.Hash("a") {
		t.Fatal("id wrong")
	}
	tp := p2.NewTuple("t", p2.Str("n1"), p2.Int(1))
	if tp.Loc() != "n1" || tp.Arity() != 2 {
		t.Fatal("tuple wrong")
	}
}

// TestPublicAPIQuickstart runs the doc-comment scenario end to end: a
// two-node Chord ring through nothing but the public Deployment API.
func TestPublicAPIQuickstart(t *testing.T) {
	plan := p2.MustCompile(p2.ChordSource, nil)
	d, err := p2.NewDeployment(p2.Simulated, p2.WithSeed(42))
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	a, err := d.Spawn("a:p2", plan)
	if err != nil {
		t.Fatal(err)
	}
	a.AddFact("landmark", p2.Str("a:p2"), p2.Str("-"))
	a.AddFact("join", p2.Str("a:p2"), p2.Str("boot-a"))

	b, err := d.Spawn("b:p2", plan)
	if err != nil {
		t.Fatal(err)
	}
	b.AddFact("landmark", p2.Str("b:p2"), p2.Str("a:p2"))
	b.AddFact("join", p2.Str("b:p2"), p2.Str("boot-b"))

	d.Run(60)

	// Each node's best successor must be the other.
	for _, pair := range [][2]*p2.Handle{{a, b}, {b, a}} {
		rows := pair[0].Scan("bestSucc")
		if len(rows) != 1 || rows[0].Field(2).AsStr() != pair[1].Addr() {
			t.Fatalf("%s bestSucc = %v, want %s", pair[0].Addr(), rows, pair[1].Addr())
		}
	}
	if len(d.Nodes()) != 2 {
		t.Fatal("node bookkeeping wrong")
	}
	if d.Now() < 60 {
		t.Fatal("clock did not advance")
	}

	// A lookup issued via the public API resolves.
	var owner string
	a.Watch("lookupResults", func(ev p2.WatchEvent) {
		if ev.Dir == p2.DirReceived || ev.Dir == p2.DirDerived {
			owner = ev.Tuple.Field(3).AsStr()
		}
	})
	key := p2.Hash("some key")
	a.Inject(p2.NewTuple("lookup", p2.Str("a:p2"), p2.IDValue(key), p2.Str("a:p2"), p2.Str("q1")))
	d.Run(10)
	if owner == "" {
		t.Fatal("lookup never resolved")
	}
}

func TestSpawnDuplicateAddrFails(t *testing.T) {
	plan := p2.MustCompile(p2.PingPongSource, nil)
	d, err := p2.NewDeployment(p2.Simulated)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if _, err := d.Spawn("dup:1", plan); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Spawn("dup:1", plan); err == nil {
		t.Fatal("duplicate spawn must fail")
	}
}

// TestDeploymentTracksOnlyLiveNodes pins the lifecycle bookkeeping: a
// killed node leaves Nodes/Addrs/Node, its handle turns inert, and a
// Replace brings the address back as a fresh node.
func TestDeploymentTracksOnlyLiveNodes(t *testing.T) {
	plan := p2.MustCompile(p2.PingPongSource, nil)
	d, err := p2.NewDeployment(p2.Simulated, p2.WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	var hs []*p2.Handle
	for _, addr := range []string{"x:1", "x:2", "x:3"} {
		h, err := d.Spawn(addr, plan)
		if err != nil {
			t.Fatal(err)
		}
		hs = append(hs, h)
	}
	d.Run(2)
	d.Kill("x:2")
	if got := d.Addrs(); len(got) != 2 || got[0] != "x:1" || got[1] != "x:3" {
		t.Fatalf("live addrs after kill = %v", got)
	}
	if d.Node("x:2") != nil {
		t.Fatal("killed node still reachable")
	}
	if hs[1].Running() {
		t.Fatal("killed handle reports running")
	}
	if err := hs[1].AddFact("pingPeer", p2.Str("x:2"), p2.Str("x:1")); err == nil {
		t.Fatal("AddFact on killed handle must error")
	}
	// Replace restarts the address as a fresh node.
	h2, err := d.Replace("x:1", nil)
	if err != nil {
		t.Fatal(err)
	}
	if h2 == nil || d.Node("x:1") != h2 {
		t.Fatal("replace did not track the fresh node")
	}
	d.Run(2)
	if !h2.Running() {
		t.Fatal("replacement not running")
	}
}

// TestPerNodeSeedsAreAddressDerived pins the (Seed, addr) seed scheme:
// the engine randomness a node sees must not depend on how many nodes
// spawned before it or on spawn order — only on the master seed and
// its own address.
func TestPerNodeSeedsAreAddressDerived(t *testing.T) {
	plan := p2.MustCompile(p2.PingPongSource, nil)
	// periodic jitter is the first draw from a node's stream; two
	// deployments spawning the same address after different histories
	// must still produce identical event timing for that node.
	trace := func(prior []string) []float64 {
		d, err := p2.NewDeployment(p2.Simulated, p2.WithSeed(9))
		if err != nil {
			t.Fatal(err)
		}
		defer d.Close()
		for _, a := range prior {
			if _, err := d.Spawn(a, plan); err != nil {
				t.Fatal(err)
			}
		}
		h, err := d.Spawn("probe:p2", plan)
		if err != nil {
			t.Fatal(err)
		}
		var times []float64
		h.Watch("pingEvent", func(ev p2.WatchEvent) {
			if ev.Dir == p2.DirDerived {
				times = append(times, ev.Time)
			}
		})
		d.Run(5)
		return times
	}
	a := trace(nil)
	b := trace([]string{"other:1", "other:2", "other:3"})
	if len(a) == 0 {
		t.Fatal("probe node fired no periodics")
	}
	if len(a) != len(b) {
		t.Fatalf("periodic counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("firing %d at %v vs %v: node seed depends on spawn history", i, a[i], b[i])
		}
	}
}

func TestCompileMultiSharesTables(t *testing.T) {
	plan, err := p2.CompileMulti(nil, p2.NaradaSource, p2.MeshMulticastSource)
	if err != nil {
		t.Fatal(err)
	}
	if !plan.IsTable("neighbor") || !plan.IsTable("seenMsg") {
		t.Fatal("merged plan missing tables")
	}
	// Conflicting table declarations across specs must fail loudly.
	if _, err := p2.CompileMulti(nil,
		"materialize(t, 10, 10, keys(1)).",
		"materialize(t, 99, 10, keys(1))."); err == nil {
		t.Fatal("conflicting merge must fail")
	}
	// Parse errors in any spec surface.
	if _, err := p2.CompileMulti(nil, p2.NaradaSource, "!!"); err == nil {
		t.Fatal("parse error must surface")
	}
}
