package p2

import (
	"testing"
)

func TestCompileShippedOverlays(t *testing.T) {
	for _, src := range []string{ChordSource, NaradaSource, GossipSource, LinkStateSource, PingPongSource} {
		if _, err := Compile(src, nil); err != nil {
			t.Fatalf("compile: %v", err)
		}
	}
}

func TestParseErrorsSurface(t *testing.T) {
	if _, err := Parse("bogus !!"); err == nil {
		t.Fatal("expected parse error")
	}
	if _, err := Compile("r out@X(X, Z) :- in@X(X).", nil); err == nil {
		t.Fatal("expected compile error")
	}
}

func TestMustCompilePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustCompile("r out@X(X, Z) :- in@X(X).", nil)
}

func TestValueConstructors(t *testing.T) {
	if Str("x").AsStr() != "x" || Int(3).AsInt() != 3 || Float(2.5).AsFloat() != 2.5 {
		t.Fatal("constructors wrong")
	}
	if !Bool(true).AsBool() {
		t.Fatal("bool wrong")
	}
	if IDValue(Hash("a")).AsID() != Hash("a") {
		t.Fatal("id wrong")
	}
	tp := NewTuple("t", Str("n1"), Int(1))
	if tp.Loc() != "n1" || tp.Arity() != 2 {
		t.Fatal("tuple wrong")
	}
}

// TestPublicAPIQuickstart runs the doc-comment scenario end to end: a
// two-node Chord ring through nothing but the public API.
func TestPublicAPIQuickstart(t *testing.T) {
	plan := MustCompile(ChordSource, nil)
	sim := NewSim(nil, 42)

	a, err := sim.SpawnNode("a:p2", plan)
	if err != nil {
		t.Fatal(err)
	}
	a.AddFact("landmark", Str("a:p2"), Str("-"))
	a.AddFact("join", Str("a:p2"), Str("boot-a"))

	b, err := sim.SpawnNode("b:p2", plan)
	if err != nil {
		t.Fatal(err)
	}
	b.AddFact("landmark", Str("b:p2"), Str("a:p2"))
	b.AddFact("join", Str("b:p2"), Str("boot-b"))

	sim.Run(60)

	// Each node's best successor must be the other.
	for _, pair := range [][2]*Node{{a, b}, {b, a}} {
		rows := pair[0].Table("bestSucc").Scan()
		if len(rows) != 1 || rows[0].Field(2).AsStr() != pair[1].Addr() {
			t.Fatalf("%s bestSucc = %v, want %s", pair[0].Addr(), rows, pair[1].Addr())
		}
	}
	if len(sim.Nodes()) != 2 {
		t.Fatal("node bookkeeping wrong")
	}
	if sim.Now() < 60 {
		t.Fatal("clock did not advance")
	}

	// A lookup issued via the public API resolves.
	var owner string
	a.Watch("lookupResults", func(ev WatchEvent) {
		if ev.Dir == DirReceived || ev.Dir == DirDerived {
			owner = ev.Tuple.Field(3).AsStr()
		}
	})
	key := Hash("some key")
	a.InjectTuple(NewTuple("lookup", Str("a:p2"), IDValue(key), Str("a:p2"), Str("q1")))
	sim.Run(10)
	if owner == "" {
		t.Fatal("lookup never resolved")
	}
}

func TestSpawnDuplicateAddrFails(t *testing.T) {
	plan := MustCompile(PingPongSource, nil)
	sim := NewSim(nil, 1)
	if _, err := sim.SpawnNode("dup:1", plan); err != nil {
		t.Fatal(err)
	}
	if _, err := sim.SpawnNode("dup:1", plan); err == nil {
		t.Fatal("duplicate spawn must fail")
	}
}

func TestCompileMultiSharesTables(t *testing.T) {
	plan, err := CompileMulti(nil, NaradaSource, MeshMulticastSource)
	if err != nil {
		t.Fatal(err)
	}
	if !plan.IsTable("neighbor") || !plan.IsTable("seenMsg") {
		t.Fatal("merged plan missing tables")
	}
	// Conflicting table declarations across specs must fail loudly.
	if _, err := CompileMulti(nil,
		"materialize(t, 10, 10, keys(1)).",
		"materialize(t, 99, 10, keys(1))."); err == nil {
		t.Fatal("conflicting merge must fail")
	}
	// Parse errors in any spec surface.
	if _, err := CompileMulti(nil, NaradaSource, "!!"); err == nil {
		t.Fatal("parse error must surface")
	}
}
