// Package p2 is a declarative overlay runtime: a Go reproduction of
// "Implementing Declarative Overlays" (Loo, Condie, Hellerstein,
// Maniatis, Roscoe, Stoica — SOSP 2005).
//
// Applications hand P2 an overlay specification written in OverLog, a
// Datalog dialect with location specifiers, soft-state tables, and
// aggregates. P2 compiles it into a graph of dataflow elements and
// executes it to build and maintain the overlay: a Narada-style mesh in
// 16 rules, a complete Chord DHT in ~47.
//
// # Quick start
//
//	plan, err := p2.Compile(p2.ChordSource, nil)
//	d, err := p2.NewDeployment(p2.Simulated, p2.WithSeed(1))
//	defer d.Close()
//	n, err := d.Spawn("n0:p2", plan)
//	n.AddFact("landmark", p2.Str("n0:p2"), p2.Str("-"))
//	n.AddFact("join", p2.Str("n0:p2"), p2.Str("boot"))
//	d.Run(60) // advance 60 s of virtual time
//
// A Deployment is the single, runtime-agnostic surface over every
// execution environment: p2.Simulated runs nodes in virtual time over
// a simulated network, partitioned across the shards of a parallel
// conservative-lookahead simulator (p2.WithShards; bit-identical
// results at every shard count), and p2.UDP runs each node over real
// UDP sockets on its own wall-clock loop. The same Spawn / AddFact /
// Install / Watch / Kill call sequence builds the same overlay on
// either. Nodes are reached exclusively through the *Handle values
// Spawn returns, whose methods serialize onto the node's owning
// shard or loop — the simulator's shard-ownership rule, enforced by
// the API. Deployments also carry the structural dynamics first-class:
// Kill and Replace route through the epoch-barrier control lane, At
// schedules driver actions on it, and EnableChurn runs Bamboo-style
// session churn with deterministic per-address session lengths.
//
// # Introspection
//
// Every node materializes its own runtime state as soft-state system
// tables, refreshed periodically on the event loop:
//
//	sysTable(@N, Name, Tuples, Inserts, Deletes, Refreshes)
//	sysRule(@N, Rule, Fires)
//	sysPlan(@N, Rule, Order, CostEst, Replans)
//	sysNet(@N, Dest, Sent, Recvd, Bytes, Retries, Cwnd, RTO, Backlog, BatchFill,
//	       DropsRetry, DropsClosed, DropsDead, DropsOverflow)
//	sysNode(@N, UptimeS, EventsProcessed, QueueLen)
//	sysHealth(@N, Type, Status, Reason, SinceS)
//
// Monitoring queries are just more OverLog: Node.Install compiles
// rules at runtime and grafts them into the live dataflow, where they
// can join system tables, compute aggregates, and gossip health
// summaries across the overlay like any other rules:
//
//	n.Install(`
//		materialize(tupleTotal, infinity, 1, keys(1)).
//		M1 tupleTotal@N(N, sum<C>) :- sysTable@N(N, T, C, I, D, R).
//	`)
//
// The "sys" relation-name prefix is reserved. The same counters are
// available from Go via Node.TableStats, RuleStats, PlanStats,
// NetStats, and NodeStat; cmd/p2's -top flag renders them as a live
// view.
//
// # Query optimizer
//
// WithOptimizer enables a cost-based query optimizer: rule bodies are
// re-ordered (cheapest join first), selections are pushed past joins,
// rules on the same trigger that begin with the same table probe share
// it through one cached lookup, and fully-reorderable min/max/count
// rules fuse their final join with the aggregate into a fold that
// never materializes a per-match tuple. At spawn time plans are costed
// from catalog heuristics; thereafter the introspection refresh doubles
// as an adaptive feedback loop — rules whose live table cardinalities
// drift past OptimizerConfig.DriftFactor from the values their plan was
// costed with are re-planned in place, preserving rule identity.
// Current plans are queryable per rule via the sysPlan system table
// ("@N, Rule, Order, CostEst, Replans"). Optimized and textual plans
// are tuple-equivalent; on a simulated deployment replans are
// deterministic, so bit-identical results at every shard count extend
// to optimized runs.
//
// # Observability
//
// Layered on the system tables is an operability subsystem: every
// introspection refresh also evaluates a catalogue of typed health
// conditions (Converged, Partitioned, ChurnStorm, RetryBudgetExhausted,
// BacklogSaturated) with status/reason/lastTransition semantics,
// queryable from OverLog via the sysHealth table, from Go via
// Handle.Conditions and Deployment.HealthSnapshot, and from the
// outside via the Prometheus /metrics endpoint a UDP deployment serves
// under WithMetrics (cmd/p2 -metrics). Abandoned tuples carry a
// structured DropCause (RetryExhausted, SessionClosed, PeerDead,
// BacklogOverflow), aggregated per peer in sysNet and per cause in the
// p2_drops_total metric. HealthMonitorSource is a shipped OverLog rule
// library over these relations.
//
// # The network stack is dataflow too
//
// Following §3.4 of the paper, the transport is not a monolith but a
// chain of elements assembled per node: Serialize → Batch → CCTx →
// Retry → Frame on the send side, Deframe → Ack → Dedup → Deliver on
// receive. Tuples bound for one destination are coalesced into
// MTU-budget datagrams, acknowledgments are cumulative and piggybacked
// on reverse-path data frames, and TransportConfig selects shorter
// chains (Unreliable drops the reliability elements, NoBatch the
// coalescing). The chain's live state — congestion window, RTO,
// backlog, batch fill — surfaces per peer in sysNet, so OverLog rules
// can observe and react to the stack itself.
//
// The subsystems live in internal packages: the OverLog
// lexer/parser (internal/overlog), the planner that compiles rules to
// dataflow strands (internal/planner), the element library
// (internal/dataflow), soft-state tables (internal/table), the PEL
// expression VM (internal/pel), the transport element chain
// (internal/transport), and the network simulator (internal/simnet).
// This package re-exports what applications need.
package p2

import (
	"p2/internal/engine"
	"p2/internal/id"
	"p2/internal/introspect"
	"p2/internal/netif"
	"p2/internal/overlays"
	"p2/internal/overlog"
	"p2/internal/planner"
	"p2/internal/simnet"
	"p2/internal/transport"
	"p2/internal/tuple"
	"p2/internal/val"
)

// Core data types, re-exported for application use.
type (
	// Value is P2's concrete data type: null, bool, int, float,
	// string, 160-bit identifier, or timestamp.
	Value = val.Value
	// Tuple is a named vector of Values — the unit of data transfer.
	Tuple = tuple.Tuple
	// ID is a 160-bit ring identifier.
	ID = id.ID
	// Program is a parsed OverLog specification.
	Program = overlog.Program
	// Plan is a compiled specification, instantiable on any node.
	Plan = planner.Plan
	// Node is a running P2 participant.
	Node = engine.Node
	// NodeOptions configures node behaviour (seed, transport tuning).
	NodeOptions = engine.Options
	// TransportConfig tunes the transport element chain: reliability,
	// congestion control, tuple batching, and ack policy. Set it via
	// NodeOptions.Transport; its Spec determines which elements the
	// node composes.
	TransportConfig = transport.Config
	// StackSpec names which transport elements a node's chain composes.
	StackSpec = transport.StackSpec
	// WatchEvent is delivered to Watch callbacks.
	WatchEvent = engine.WatchEvent
	// WatchFunc observes watch events (see Handle.Watch).
	WatchFunc = engine.WatchFunc
	// NetConfig describes the simulated network topology.
	NetConfig = simnet.Config
	// SysTableDef describes one system table's schema.
	SysTableDef = introspect.Def
	// TableStat, RuleStat, PlanStat, NetStat, and NodeStat are the
	// Go-level forms of the sys* system-table rows (see Node.TableStats
	// etc.).
	TableStat = introspect.TableStat
	RuleStat  = introspect.RuleStat
	PlanStat  = introspect.PlanStat
	NetStat   = introspect.NetStat
	NodeStat  = introspect.NodeStat
	// OptimizerConfig tunes the cost-based query optimizer (see
	// WithOptimizer); its zero value enables every optimization with
	// the default replanning drift factor.
	OptimizerConfig = planner.OptimizerConfig
	// FaultConfig tunes the seeded datagram-level fault injector a UDP
	// deployment installs with WithFaults: drop, duplicate, reorder, and
	// corrupt rates, all drawn from one deterministic stream per node.
	FaultConfig = netif.FaultConfig
	// FaultStats counts what the fault injector did (see
	// Deployment.FaultStats).
	FaultStats = netif.FaultStats
)

// System table names, re-exported for Watch and Table lookups.
const (
	SysTable  = introspect.TableRelation
	SysRule   = introspect.RuleRelation
	SysPlan   = introspect.PlanRelation
	SysNet    = introspect.NetRelation
	SysNode   = introspect.NodeRelation
	SysHealth = introspect.HealthRelation
)

// SystemTables returns the schema catalog of the sys* system tables.
func SystemTables() []SysTableDef { return introspect.Defs() }

// DefaultTransportConfig returns the production-shaped transport
// tuning: the full reliable chain with batching and 20 ms delayed acks.
func DefaultTransportConfig() TransportConfig { return transport.DefaultConfig() }

// Watch directions, re-exported.
const (
	DirDerived  = engine.DirDerived
	DirSent     = engine.DirSent
	DirReceived = engine.DirReceived
	DirInserted = engine.DirInserted
	DirDeleted  = engine.DirDeleted
)

// Value constructors.

// Str wraps a string value.
func Str(s string) Value { return val.Str(s) }

// Int wraps an integer value.
func Int(v int64) Value { return val.Int(v) }

// Float wraps a float value.
func Float(v float64) Value { return val.Float(v) }

// Bool wraps a boolean value.
func Bool(b bool) Value { return val.Bool(b) }

// IDValue wraps a ring identifier.
func IDValue(x ID) Value { return val.MakeID(x) }

// Hash returns SHA-1(s) as a ring identifier, the way Chord derives
// node and key identifiers.
func Hash(s string) ID { return id.Hash(s) }

// NewTuple builds a tuple; by convention field 0 is the location.
func NewTuple(name string, fields ...Value) *Tuple { return tuple.New(name, fields...) }

// Shipped overlay specifications (see internal/overlays).
const (
	// ChordSource is the full Chord DHT from the paper's Appendix B.
	ChordSource = overlays.ChordSource
	// NaradaSource is the Narada mesh from Appendix A plus §2.3's
	// measurement rules.
	NaradaSource = overlays.NaradaSource
	// GossipSource is a push epidemic.
	GossipSource = overlays.GossipSource
	// LinkStateSource is distance-vector routing over declared links.
	LinkStateSource = overlays.LinkStateSource
	// PingPongSource is the two-node quickstart overlay.
	PingPongSource = overlays.PingPongSource
	// MeshMulticastSource floods messages over any spec that maintains
	// a neighbor table; compose it with NaradaSource via CompileMulti.
	MeshMulticastSource = overlays.MeshMulticastSource
)

// Parse parses OverLog source.
func Parse(src string) (*Program, error) { return overlog.Parse(src) }

// Compile parses and compiles OverLog source into an executable Plan.
// defines supplies or overrides symbolic constants.
func Compile(src string, defines map[string]Value) (*Plan, error) {
	prog, err := overlog.Parse(src)
	if err != nil {
		return nil, err
	}
	return planner.Compile(prog, defines)
}

// MustCompile is Compile for known-good sources; it panics on error.
func MustCompile(src string, defines map[string]Value) *Plan {
	plan, err := Compile(src, defines)
	if err != nil {
		panic(err)
	}
	return plan
}

// CompileMulti merges several OverLog specifications into one plan —
// the paper's multi-overlay sharing (§1): tables declared identically
// by more than one spec are shared, so separately written overlays can
// reuse each other's state (e.g. multicast flooding over the Narada
// mesh's neighbor table).
func CompileMulti(defines map[string]Value, srcs ...string) (*Plan, error) {
	progs := make([]*Program, 0, len(srcs))
	for _, src := range srcs {
		p, err := overlog.Parse(src)
		if err != nil {
			return nil, err
		}
		progs = append(progs, p)
	}
	merged, err := overlog.Merge(progs...)
	if err != nil {
		return nil, err
	}
	return planner.Compile(merged, defines)
}

// Deployments — the runtime-agnostic execution surface — live in
// deployment.go: NewDeployment, Runtime (Simulated, UDP), the
// functional options (WithSeed, WithShards, WithTopology,
// WithTransport, WithDefines, WithNodeDefaults), Deployment, and
// Handle.
