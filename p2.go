// Package p2 is a declarative overlay runtime: a Go reproduction of
// "Implementing Declarative Overlays" (Loo, Condie, Hellerstein,
// Maniatis, Roscoe, Stoica — SOSP 2005).
//
// Applications hand P2 an overlay specification written in OverLog, a
// Datalog dialect with location specifiers, soft-state tables, and
// aggregates. P2 compiles it into a graph of dataflow elements and
// executes it to build and maintain the overlay: a Narada-style mesh in
// 16 rules, a complete Chord DHT in ~47.
//
// # Quick start
//
//	plan, err := p2.Compile(p2.ChordSource, nil)
//	sim := p2.NewSim(nil, 1)
//	n, err := sim.SpawnNode("n0:p2", plan)
//	n.AddFact("landmark", p2.Str("n0:p2"), p2.Str("-"))
//	n.AddFact("join", p2.Str("n0:p2"), p2.Str("boot"))
//	sim.Run(60) // advance 60 s of virtual time
//
// Nodes run either on a shared virtual-time loop over a simulated
// network (NewSim) — deterministic, thousands of protocol-seconds per
// wall second — or over real UDP sockets (NewUDPNode), with identical
// semantics.
//
// # Introspection
//
// Every node materializes its own runtime state as soft-state system
// tables, refreshed periodically on the event loop:
//
//	sysTable(@N, Name, Tuples, Inserts, Deletes, Refreshes)
//	sysRule(@N, Rule, Fires)
//	sysNet(@N, Dest, Sent, Recvd, Bytes, Retries, Cwnd, RTO, Backlog, BatchFill)
//	sysNode(@N, UptimeS, EventsProcessed, QueueLen)
//
// Monitoring queries are just more OverLog: Node.Install compiles
// rules at runtime and grafts them into the live dataflow, where they
// can join system tables, compute aggregates, and gossip health
// summaries across the overlay like any other rules:
//
//	n.Install(`
//		materialize(tupleTotal, infinity, 1, keys(1)).
//		M1 tupleTotal@N(N, sum<C>) :- sysTable@N(N, T, C, I, D, R).
//	`)
//
// The "sys" relation-name prefix is reserved. The same counters are
// available from Go via Node.TableStats, RuleStats, NetStats, and
// NodeStat; cmd/p2's -top flag renders them as a live view.
//
// # The network stack is dataflow too
//
// Following §3.4 of the paper, the transport is not a monolith but a
// chain of elements assembled per node: Serialize → Batch → CCTx →
// Retry → Frame on the send side, Deframe → Ack → Dedup → Deliver on
// receive. Tuples bound for one destination are coalesced into
// MTU-budget datagrams, acknowledgments are cumulative and piggybacked
// on reverse-path data frames, and TransportConfig selects shorter
// chains (Unreliable drops the reliability elements, NoBatch the
// coalescing). The chain's live state — congestion window, RTO,
// backlog, batch fill — surfaces per peer in sysNet, so OverLog rules
// can observe and react to the stack itself.
//
// The subsystems live in internal packages: the OverLog
// lexer/parser (internal/overlog), the planner that compiles rules to
// dataflow strands (internal/planner), the element library
// (internal/dataflow), soft-state tables (internal/table), the PEL
// expression VM (internal/pel), the transport element chain
// (internal/transport), and the network simulator (internal/simnet).
// This package re-exports what applications need.
package p2

import (
	"fmt"
	"sync/atomic"

	"p2/internal/engine"
	"p2/internal/eventloop"
	"p2/internal/id"
	"p2/internal/introspect"
	"p2/internal/overlays"
	"p2/internal/overlog"
	"p2/internal/planner"
	"p2/internal/simnet"
	"p2/internal/transport"
	"p2/internal/tuple"
	"p2/internal/udpnet"
	"p2/internal/val"
)

// Core data types, re-exported for application use.
type (
	// Value is P2's concrete data type: null, bool, int, float,
	// string, 160-bit identifier, or timestamp.
	Value = val.Value
	// Tuple is a named vector of Values — the unit of data transfer.
	Tuple = tuple.Tuple
	// ID is a 160-bit ring identifier.
	ID = id.ID
	// Program is a parsed OverLog specification.
	Program = overlog.Program
	// Plan is a compiled specification, instantiable on any node.
	Plan = planner.Plan
	// Node is a running P2 participant.
	Node = engine.Node
	// NodeOptions configures node behaviour (seed, transport tuning).
	NodeOptions = engine.Options
	// TransportConfig tunes the transport element chain: reliability,
	// congestion control, tuple batching, and ack policy. Set it via
	// NodeOptions.Transport; its Spec determines which elements the
	// node composes.
	TransportConfig = transport.Config
	// StackSpec names which transport elements a node's chain composes.
	StackSpec = transport.StackSpec
	// WatchEvent is delivered to Watch callbacks.
	WatchEvent = engine.WatchEvent
	// NetConfig describes the simulated network topology.
	NetConfig = simnet.Config
	// SysTableDef describes one system table's schema.
	SysTableDef = introspect.Def
	// TableStat, RuleStat, NetStat, and NodeStat are the Go-level forms
	// of the sys* system-table rows (see Node.TableStats etc.).
	TableStat = introspect.TableStat
	RuleStat  = introspect.RuleStat
	NetStat   = introspect.NetStat
	NodeStat  = introspect.NodeStat
)

// System table names, re-exported for Watch and Table lookups.
const (
	SysTable = introspect.TableRelation
	SysRule  = introspect.RuleRelation
	SysNet   = introspect.NetRelation
	SysNode  = introspect.NodeRelation
)

// SystemTables returns the schema catalog of the sys* system tables.
func SystemTables() []SysTableDef { return introspect.Defs() }

// DefaultTransportConfig returns the production-shaped transport
// tuning: the full reliable chain with batching and 20 ms delayed acks.
func DefaultTransportConfig() TransportConfig { return transport.DefaultConfig() }

// Watch directions, re-exported.
const (
	DirDerived  = engine.DirDerived
	DirSent     = engine.DirSent
	DirReceived = engine.DirReceived
	DirInserted = engine.DirInserted
	DirDeleted  = engine.DirDeleted
)

// Value constructors.

// Str wraps a string value.
func Str(s string) Value { return val.Str(s) }

// Int wraps an integer value.
func Int(v int64) Value { return val.Int(v) }

// Float wraps a float value.
func Float(v float64) Value { return val.Float(v) }

// Bool wraps a boolean value.
func Bool(b bool) Value { return val.Bool(b) }

// IDValue wraps a ring identifier.
func IDValue(x ID) Value { return val.MakeID(x) }

// Hash returns SHA-1(s) as a ring identifier, the way Chord derives
// node and key identifiers.
func Hash(s string) ID { return id.Hash(s) }

// NewTuple builds a tuple; by convention field 0 is the location.
func NewTuple(name string, fields ...Value) *Tuple { return tuple.New(name, fields...) }

// Shipped overlay specifications (see internal/overlays).
const (
	// ChordSource is the full Chord DHT from the paper's Appendix B.
	ChordSource = overlays.ChordSource
	// NaradaSource is the Narada mesh from Appendix A plus §2.3's
	// measurement rules.
	NaradaSource = overlays.NaradaSource
	// GossipSource is a push epidemic.
	GossipSource = overlays.GossipSource
	// LinkStateSource is distance-vector routing over declared links.
	LinkStateSource = overlays.LinkStateSource
	// PingPongSource is the two-node quickstart overlay.
	PingPongSource = overlays.PingPongSource
	// MeshMulticastSource floods messages over any spec that maintains
	// a neighbor table; compose it with NaradaSource via CompileMulti.
	MeshMulticastSource = overlays.MeshMulticastSource
)

// Parse parses OverLog source.
func Parse(src string) (*Program, error) { return overlog.Parse(src) }

// Compile parses and compiles OverLog source into an executable Plan.
// defines supplies or overrides symbolic constants.
func Compile(src string, defines map[string]Value) (*Plan, error) {
	prog, err := overlog.Parse(src)
	if err != nil {
		return nil, err
	}
	return planner.Compile(prog, defines)
}

// MustCompile is Compile for known-good sources; it panics on error.
func MustCompile(src string, defines map[string]Value) *Plan {
	plan, err := Compile(src, defines)
	if err != nil {
		panic(err)
	}
	return plan
}

// CompileMulti merges several OverLog specifications into one plan —
// the paper's multi-overlay sharing (§1): tables declared identically
// by more than one spec are shared, so separately written overlays can
// reuse each other's state (e.g. multicast flooding over the Narada
// mesh's neighbor table).
func CompileMulti(defines map[string]Value, srcs ...string) (*Plan, error) {
	progs := make([]*Program, 0, len(srcs))
	for _, src := range srcs {
		p, err := overlog.Parse(src)
		if err != nil {
			return nil, err
		}
		progs = append(progs, p)
	}
	merged, err := overlog.Merge(progs...)
	if err != nil {
		return nil, err
	}
	return planner.Compile(merged, defines)
}

// Sim is a simulated P2 deployment: any number of nodes sharing one
// virtual-time event loop and one simulated network.
type Sim struct {
	Loop *eventloop.Sim
	Net  *simnet.Net

	seed  int64
	nodes []*Node
}

// NewSim creates a simulation. cfg nil uses the paper's Emulab-style
// transit-stub topology (10 domains, 2 ms intra / 100 ms inter-domain,
// 10 Mbps access links).
func NewSim(cfg *NetConfig, seed int64) *Sim {
	loop := eventloop.NewSim()
	c := simnet.DefaultConfig()
	if cfg != nil {
		c = *cfg
	}
	c.Seed = seed
	return &Sim{Loop: loop, Net: simnet.New(loop, c), seed: seed}
}

// SpawnNode creates and starts a node executing plan at addr.
func (s *Sim) SpawnNode(addr string, plan *Plan) (*Node, error) {
	return s.SpawnNodeOpts(addr, plan, NodeOptions{Seed: s.seed + int64(len(s.nodes)) + 1})
}

// SpawnNodeOpts is SpawnNode with explicit options.
func (s *Sim) SpawnNodeOpts(addr string, plan *Plan, opts NodeOptions) (*Node, error) {
	n := engine.NewNode(addr, s.Loop, s.Net, plan, opts)
	if err := n.Start(); err != nil {
		return nil, fmt.Errorf("p2: spawn %s: %w", addr, err)
	}
	s.nodes = append(s.nodes, n)
	return n, nil
}

// Nodes returns every node spawned so far.
func (s *Sim) Nodes() []*Node { return s.nodes }

// Run advances the simulation by d seconds of virtual time.
func (s *Sim) Run(d float64) { s.Loop.RunFor(d) }

// Now returns the current virtual time in seconds.
func (s *Sim) Now() float64 { return s.Loop.Now() }

// UDPNode is a P2 node deployed over real UDP sockets with its own
// wall-clock event loop.
type UDPNode struct {
	*Node
	loop   *eventloop.Real
	closed atomic.Bool
}

// NewUDPNode starts a node executing plan, bound to the UDP address
// addr ("host:port"). The node's event loop runs on its own goroutine;
// use Do to interact with the node safely and Close to shut down.
func NewUDPNode(addr string, plan *Plan, opts NodeOptions) (*UDPNode, error) {
	loop := eventloop.NewReal()
	n := engine.NewNode(addr, loop, udpnet.New(loop), plan, opts)
	errc := make(chan error, 1)
	loop.Post(func() { errc <- n.Start() })
	go loop.Run()
	if err := <-errc; err != nil {
		loop.Stop()
		return nil, err
	}
	return &UDPNode{Node: n, loop: loop}, nil
}

// Do runs fn on the node's event loop — the only safe way to touch
// node state from other goroutines.
func (u *UDPNode) Do(fn func(n *Node)) {
	u.loop.Post(func() { fn(u.Node) })
}

// Install compiles OverLog source and grafts it into the running
// node's dataflow (see Node.Install), serialized onto the node's event
// loop; it returns once installation has completed. Installing on a
// closed node returns an error.
func (u *UDPNode) Install(src string) error {
	if u.closed.Load() {
		return fmt.Errorf("p2: install on closed node %s", u.Addr())
	}
	errc := make(chan error, 1)
	u.loop.Post(func() { errc <- u.Node.Install(src) })
	return <-errc
}

// Close stops the node and its loop. Idempotent.
func (u *UDPNode) Close() {
	if u.closed.Swap(true) {
		return
	}
	u.loop.Post(func() { u.Node.Stop() })
	u.loop.Stop()
}
