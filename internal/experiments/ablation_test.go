package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// TestSuccessorAblation validates the paper's §5.2 criticism of
// single-successor Chord: after a burst failure, a succSize=1 ring
// stays broken while the default bounded list recovers.
func TestSuccessorAblation(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second simulation")
	}
	rows := RunSuccessorAblation(20, 0.25, []int{1, 4}, 5)
	if len(rows) != 2 {
		t.Fatal("missing rows")
	}
	single, list := rows[0], rows[1]
	if single.SuccSize != 1 || list.SuccSize != 4 {
		t.Fatal("row order wrong")
	}
	if list.RingCorrectness < 0.95 {
		t.Fatalf("succSize=4 ring did not recover: %.2f", list.RingCorrectness)
	}
	if single.RingCorrectness > list.RingCorrectness {
		t.Fatalf("single successor should not beat a successor list: %.2f vs %.2f",
			single.RingCorrectness, list.RingCorrectness)
	}
	var buf bytes.Buffer
	PrintSuccessorAblation(&buf, rows)
	if !strings.Contains(buf.String(), "succSize") {
		t.Fatal("print malformed")
	}
}

// TestTransportAblation validates that the reliable transport is what
// keeps multi-hop lookups alive on a lossy network.
func TestTransportAblation(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second simulation")
	}
	rows := RunTransportAblation(16, []float64{0.15}, 25, 9)
	if len(rows) != 2 {
		t.Fatal("missing rows")
	}
	var reliable, raw TransportAblationRow
	for _, r := range rows {
		if r.Reliable {
			reliable = r
		} else {
			raw = r
		}
	}
	if reliable.Completed <= raw.Completed {
		t.Fatalf("reliable (%d/%d) should beat raw (%d/%d) at 15%% loss",
			reliable.Completed, reliable.Issued, raw.Completed, raw.Issued)
	}
	if reliable.Completed < reliable.Issued*8/10 {
		t.Fatalf("reliable transport completed only %d/%d", reliable.Completed, reliable.Issued)
	}
	var buf bytes.Buffer
	PrintTransportAblation(&buf, rows)
	if !strings.Contains(buf.String(), "reliable") {
		t.Fatal("print malformed")
	}
}
