package experiments

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestCDF(t *testing.T) {
	c := NewCDF([]float64{3, 1, 2, 4, 5})
	if c.Percentile(0.5) != 2 && c.Percentile(0.5) != 3 {
		t.Fatalf("median = %v", c.Percentile(0.5))
	}
	if c.Percentile(1.0) != 5 || c.Percentile(0.0) != 1 {
		t.Fatalf("extremes wrong: %v %v", c.Percentile(1.0), c.Percentile(0.0))
	}
	if c.Mean() != 3 {
		t.Fatalf("mean = %v", c.Mean())
	}
	if got := c.FractionBelow(3.5); got != 0.6 {
		t.Fatalf("FractionBelow(3.5) = %v", got)
	}
	empty := NewCDF(nil)
	if !math.IsNaN(empty.Percentile(0.5)) || !math.IsNaN(empty.Mean()) || !math.IsNaN(empty.FractionBelow(1)) {
		t.Fatal("empty CDF should be NaN")
	}
}

func TestScaleByName(t *testing.T) {
	for _, name := range []string{"paper", "medium", "quick"} {
		sc, err := ScaleByName(name)
		if err != nil || sc.Name != name {
			t.Fatalf("%s: %v", name, err)
		}
	}
	if _, err := ScaleByName("bogus"); err == nil {
		t.Fatal("expected error")
	}
}

func TestSpecComplexityShape(t *testing.T) {
	c := SpecComplexity()
	if c.ChordRules < 40 || c.ChordRules > 60 {
		t.Fatalf("chord rules = %d", c.ChordRules)
	}
	if c.NaradaRules < 16 || c.NaradaRules > 25 {
		t.Fatalf("narada rules = %d", c.NaradaRules)
	}
	// The central claim: the declarative spec is dramatically smaller
	// than equivalent imperative code.
	if c.HandcodedLines < 5*c.ChordRules {
		t.Fatalf("handcoded lines (%d) should dwarf rule count (%d)", c.HandcodedLines, c.ChordRules)
	}
	var buf bytes.Buffer
	c.Print(&buf)
	if !strings.Contains(buf.String(), "OverLog") {
		t.Fatal("print output malformed")
	}
}

// TestFig3QuickShapes runs the static experiment at smoke scale and
// validates the paper's qualitative shapes: logarithmic hops, sub-kB/s
// maintenance bandwidth, latency within the same order of magnitude as
// published numbers, and lookups resolving to true owners.
func TestFig3QuickShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second simulation")
	}
	sc := QuickScale()
	res := RunFig3(sc, 77)
	if len(res.PerSize) != len(sc.StaticSizes) {
		t.Fatal("missing sizes")
	}
	for _, s := range res.PerSize {
		if s.RingCorrectness < 0.95 {
			t.Fatalf("N=%d ring correctness %.2f", s.N, s.RingCorrectness)
		}
		if s.Completed < s.Issued*9/10 {
			t.Fatalf("N=%d completed %d/%d", s.N, s.Completed, s.Issued)
		}
		if s.Correct < s.Completed*9/10 {
			t.Fatalf("N=%d correct %d/%d", s.N, s.Correct, s.Completed)
		}
		expect := math.Log2(float64(s.N)) / 2
		if s.MeanHops > expect*2.5+1 {
			t.Fatalf("N=%d mean hops %.1f vs log2(N)/2=%.1f", s.N, s.MeanHops, expect)
		}
		if s.MaintBPSPerNode <= 0 || s.MaintBPSPerNode > 1024 {
			t.Fatalf("N=%d maintenance %.0f B/s/node", s.N, s.MaintBPSPerNode)
		}
		if s.LatencyCDF.Percentile(0.96) > 6 {
			t.Fatalf("N=%d p96 latency %.1fs exceeds the paper's 6 s envelope", s.N, s.LatencyCDF.Percentile(0.96))
		}
	}
	// Hop counts grow with N.
	if res.PerSize[0].MeanHops > res.PerSize[len(res.PerSize)-1].MeanHops+0.5 {
		t.Fatalf("hops should not shrink with N: %v vs %v",
			res.PerSize[0].MeanHops, res.PerSize[len(res.PerSize)-1].MeanHops)
	}
	var buf bytes.Buffer
	res.Print(&buf)
	for _, want := range []string{"Figure 3(i)", "Figure 3(ii)", "Figure 3(iii)", "mean"} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("report missing %q", want)
		}
	}
}

// TestFig4QuickShapes churns a small network and validates the
// qualitative claim of Figure 4(ii): consistency degrades as sessions
// shorten.
func TestFig4QuickShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second simulation")
	}
	sc := QuickScale()
	res := RunFig4(sc, 99)
	if len(res.PerSession) != len(sc.SessionsMin) {
		t.Fatal("missing sessions")
	}
	short, long := res.PerSession[0], res.PerSession[len(res.PerSession)-1]
	if short.SessionMin >= long.SessionMin {
		t.Fatal("sessions must be ordered short to long")
	}
	if long.MeanConsistency < 0.6 {
		t.Fatalf("long-session consistency %.2f too low", long.MeanConsistency)
	}
	if short.MeanConsistency > long.MeanConsistency+0.05 {
		t.Fatalf("consistency should degrade with churn: short=%.2f long=%.2f",
			short.MeanConsistency, long.MeanConsistency)
	}
	if short.MaintBPSPerNode <= 0 || long.MaintBPSPerNode <= 0 {
		t.Fatal("no churn maintenance traffic measured")
	}
	var buf bytes.Buffer
	res.Print(&buf)
	for _, want := range []string{"Figure 4(i)", "Figure 4(ii)", "Figure 4(iii)"} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("report missing %q", want)
		}
	}
}

func TestMemoryFootprint(t *testing.T) {
	if testing.Short() {
		t.Skip("heap measurement")
	}
	fp := MeasureFootprint(8, 60)
	if fp.BytesPerNode == 0 {
		t.Fatal("no footprint measured")
	}
	// The paper reports ~800 kB per C++ node; our Go node should be
	// the same order of magnitude (well under 8 MB).
	if fp.BytesPerNode > 8<<20 {
		t.Fatalf("footprint %d bytes/node is beyond the same order of magnitude as 800 kB", fp.BytesPerNode)
	}
}

func TestRandomKeysDeterministic(t *testing.T) {
	a, b := randomKeys(5, 1), randomKeys(5, 1)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("keys must be deterministic per seed")
		}
	}
}
