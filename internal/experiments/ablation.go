package experiments

import (
	"fmt"
	"io"

	"p2/internal/harness"
	"p2/internal/simnet"
	"p2/internal/val"
)

// Ablations probe the design choices DESIGN.md calls out: the bounded
// successor list (the paper criticises MACEDON's single-successor Chord
// as "highly likely that the ring becomes partitioned", §5.2) and the
// reliable transport layer (§3.4's retransmission elements).

// SuccessorAblationRow reports ring survival for one successor-list
// size after a burst of simultaneous failures.
type SuccessorAblationRow struct {
	SuccSize        int
	KilledFrac      float64
	RingCorrectness float64 // among survivors, after recovery time
	LiveNodes       int
}

// RunSuccessorAblation builds an n-node ring per successor-list size,
// kills killFrac of the nodes at once, waits out the recovery horizon,
// and reports how much of the ring survived. With a single successor
// the ring partitions; with the default list of 4-5 it heals.
func RunSuccessorAblation(n int, killFrac float64, sizes []int, seed int64) []SuccessorAblationRow {
	var rows []SuccessorAblationRow
	for _, size := range sizes {
		h := harness.NewChord(harness.Opts{
			N: n, Seed: seed, JoinSpacing: 0.5,
			Defines: map[string]val.Value{"succSize": val.Int(int64(size))},
		})
		h.Run(float64(n)*0.5 + 300)
		// Kill a random burst (never the landmark).
		live := h.LiveAddrs()
		kill := int(killFrac * float64(len(live)))
		killed := 0
		for _, a := range live {
			if killed >= kill {
				break
			}
			if a == live[0] {
				continue // landmark
			}
			h.Kill(a)
			killed++
		}
		h.Run(240) // failure detection + stabilization horizon
		rows = append(rows, SuccessorAblationRow{
			SuccSize:        size,
			KilledFrac:      killFrac,
			RingCorrectness: h.RingCorrectness(),
			LiveNodes:       len(h.LiveAddrs()),
		})
		h.Close() // per ring: don't hold finished shard workers across iterations
	}
	return rows
}

// PrintSuccessorAblation renders the ablation table.
func PrintSuccessorAblation(w io.Writer, rows []SuccessorAblationRow) {
	fmt.Fprintln(w, "== Ablation: successor-list size vs ring survival after burst failure ==")
	fmt.Fprintf(w, "%-10s %-12s %-14s %-10s\n", "succSize", "killedFrac", "ring-correct", "live")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10d %-12.2f %-14.2f %-10d\n",
			r.SuccSize, r.KilledFrac, r.RingCorrectness, r.LiveNodes)
	}
}

// TransportAblationRow reports lookup completion under packet loss for
// one transport mode.
type TransportAblationRow struct {
	LossRate  float64
	Reliable  bool
	Issued    int
	Completed int
}

// RunTransportAblation measures lookup completion on a lossy network
// with and without the reliable transport. Multi-hop lookups compound
// per-hop loss, so raw UDP collapses where retransmission holds.
func RunTransportAblation(n int, lossRates []float64, lookups int, seed int64) []TransportAblationRow {
	var rows []TransportAblationRow
	for _, loss := range lossRates {
		for _, reliable := range []bool{true, false} {
			cfg := simnet.DefaultConfig()
			cfg.LossRate = loss
			h := harness.NewChord(harness.Opts{
				N: n, Seed: seed, JoinSpacing: 0.5, Net: &cfg,
				Unreliable: !reliable,
			})
			h.Run(float64(n)*0.5 + 250)
			row := TransportAblationRow{LossRate: loss, Reliable: reliable}
			for i := 0; i < lookups; i++ {
				lr := h.Lookup(h.RandomLiveAddr(), h.RandomKey())
				h.Run(12)
				row.Issued++
				if lr.Done {
					row.Completed++
				}
			}
			rows = append(rows, row)
			h.Close() // per ring: don't hold finished shard workers across iterations
		}
	}
	return rows
}

// PrintTransportAblation renders the ablation table.
func PrintTransportAblation(w io.Writer, rows []TransportAblationRow) {
	fmt.Fprintln(w, "== Ablation: reliable transport vs raw datagrams under loss ==")
	fmt.Fprintf(w, "%-10s %-12s %-12s\n", "loss", "transport", "completed")
	for _, r := range rows {
		mode := "raw"
		if r.Reliable {
			mode = "reliable"
		}
		fmt.Fprintf(w, "%-10.2f %-12s %d/%d\n", r.LossRate, mode, r.Completed, r.Issued)
	}
}
