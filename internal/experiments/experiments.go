// Package experiments regenerates every figure and quantified claim in
// the paper's evaluation section (§5). Each Fig* function runs the
// workload the paper describes and returns the series it plots;
// cmd/p2sim prints them and bench_test.go wraps them as benchmarks.
//
// Scale presets let the same code run at paper scale (100-500 nodes,
// 20-minute churn runs) or at smoke-test scale for CI.
package experiments

import (
	"fmt"
	"io"
	"math"
	"sort"

	"p2/internal/harness"
	"p2/internal/id"
	"p2/internal/overlays"
	"p2/internal/overlog"
	"p2/internal/simnet"
)

// Scale selects experiment sizing.
type Scale struct {
	Name string
	// Static experiment (Figure 3).
	StaticSizes []int
	Lookups     int     // lookups per network size
	SettleTime  float64 // seconds after last join before measuring
	MeasureTime float64 // idle window for maintenance bandwidth
	JoinSpacing float64
	LookupWait  float64 // seconds granted per lookup
	// Churn experiment (Figure 4).
	ChurnN        int
	SessionsMin   []float64 // mean session times in minutes
	ChurnDuration float64   // seconds of churned operation
	Probes        int       // consistency probes per session time
	ProbeSample   int       // simultaneous lookups per probe
	ProbeTimeout  float64
	// Execution (orthogonal to sizing): harness shard count. >= 1 runs
	// each network across that many parallel event-loop shards; 0
	// defers to P2_SIM_SHARDS (cmd/p2sim sets it from -shards).
	Shards int
	// Net overrides the network topology for every harness the scale
	// builds; nil keeps the paper's default GT-ITM-style configuration
	// (cmd/p2sim sets it from -topology).
	Net *simnet.Config
}

// PaperScale reproduces the evaluation's parameters: static rings of
// 100/300/500 nodes and a 400-node network churned for 20 minutes at
// mean session times of 8-128 minutes.
func PaperScale() Scale {
	return Scale{
		Name:        "paper",
		StaticSizes: []int{100, 300, 500},
		Lookups:     300, SettleTime: 400, MeasureTime: 120,
		JoinSpacing: 0.5, LookupWait: 12,
		ChurnN: 400, SessionsMin: []float64{8, 16, 32, 64, 128},
		ChurnDuration: 1200, Probes: 60, ProbeSample: 10, ProbeTimeout: 20,
	}
}

// MediumScale is a few-minute variant preserving every qualitative
// shape.
func MediumScale() Scale {
	return Scale{
		Name:        "medium",
		StaticSizes: []int{50, 100, 200},
		Lookups:     150, SettleTime: 300, MeasureTime: 60,
		JoinSpacing: 0.5, LookupWait: 12,
		ChurnN: 100, SessionsMin: []float64{8, 16, 32, 64},
		ChurnDuration: 600, Probes: 30, ProbeSample: 8, ProbeTimeout: 20,
	}
}

// QuickScale is the CI smoke-test variant.
func QuickScale() Scale {
	return Scale{
		Name:        "quick",
		StaticSizes: []int{16, 32},
		Lookups:     40, SettleTime: 200, MeasureTime: 30,
		JoinSpacing: 0.5, LookupWait: 12,
		ChurnN: 24, SessionsMin: []float64{2, 8},
		ChurnDuration: 180, Probes: 10, ProbeSample: 5, ProbeTimeout: 20,
	}
}

// ScaleByName resolves "paper", "medium", or "quick".
func ScaleByName(name string) (Scale, error) {
	switch name {
	case "paper":
		return PaperScale(), nil
	case "medium":
		return MediumScale(), nil
	case "quick":
		return QuickScale(), nil
	}
	return Scale{}, fmt.Errorf("experiments: unknown scale %q (paper|medium|quick)", name)
}

// CDF is a sorted sample set.
type CDF []float64

// NewCDF sorts a copy of samples.
func NewCDF(samples []float64) CDF {
	c := append(CDF(nil), samples...)
	sort.Float64s(c)
	return c
}

// Percentile returns the p-quantile (0..1) by nearest rank.
func (c CDF) Percentile(p float64) float64 {
	if len(c) == 0 {
		return math.NaN()
	}
	i := int(p*float64(len(c))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(c) {
		i = len(c) - 1
	}
	return c[i]
}

// FractionBelow returns the CDF value at x.
func (c CDF) FractionBelow(x float64) float64 {
	if len(c) == 0 {
		return math.NaN()
	}
	n := sort.SearchFloat64s(c, x)
	return float64(n) / float64(len(c))
}

// Mean returns the sample mean.
func (c CDF) Mean() float64 {
	if len(c) == 0 {
		return math.NaN()
	}
	s := 0.0
	for _, v := range c {
		s += v
	}
	return s / float64(len(c))
}

// StaticSizeResult holds Figure 3 measurements for one network size.
type StaticSizeResult struct {
	N               int
	Issued          int
	Completed       int
	Correct         int // owner matched ground truth
	HopHist         map[int]int
	MeanHops        float64
	LatencyCDF      CDF     // seconds
	MaintBPSPerNode float64 // maintenance bytes/s/node while idle
	RingCorrectness float64
}

// Fig3Result aggregates Figure 3(i)-(iii).
type Fig3Result struct {
	Scale   Scale
	PerSize []*StaticSizeResult
}

// RunFig3 builds a static Chord network per size and measures lookup
// hop counts (3i), idle maintenance bandwidth (3ii), and lookup
// latency (3iii) under a uniform lookup workload.
func RunFig3(sc Scale, seed int64) *Fig3Result {
	res := &Fig3Result{Scale: sc}
	for _, n := range sc.StaticSizes {
		res.PerSize = append(res.PerSize, runStaticSize(sc, n, seed))
	}
	return res
}

func runStaticSize(sc Scale, n int, seed int64) *StaticSizeResult {
	h := harness.NewChord(harness.Opts{N: n, Seed: seed, JoinSpacing: sc.JoinSpacing, Shards: sc.Shards, Net: sc.Net})
	defer h.Close()
	h.Run(float64(n)*sc.JoinSpacing + sc.SettleTime)

	out := &StaticSizeResult{N: n, HopHist: make(map[int]int)}

	// Idle maintenance-bandwidth window (Figure 3ii): no lookups.
	h.ResetTraffic()
	h.Run(sc.MeasureTime)
	_, maint := h.TrafficBytes()
	out.MaintBPSPerNode = float64(maint) / float64(n) / sc.MeasureTime

	// Uniform lookup workload (Figures 3i, 3iii).
	var lats []float64
	totalHops := 0
	for i := 0; i < sc.Lookups; i++ {
		key := h.RandomKey()
		lr := h.Lookup(h.RandomLiveAddr(), key)
		h.Run(sc.LookupWait)
		out.Issued++
		if lr.Done {
			out.Completed++
			out.HopHist[lr.Hops]++
			totalHops += lr.Hops
			lats = append(lats, lr.Latency())
			if lr.Owner == h.IdealOwner(key) {
				out.Correct++
			}
		}
	}
	if out.Completed > 0 {
		out.MeanHops = float64(totalHops) / float64(out.Completed)
	}
	out.LatencyCDF = NewCDF(lats)
	// Ring correctness at the end of the measured window, so the value
	// reflects the steady state the lookups actually ran against.
	out.RingCorrectness = h.RingCorrectness()
	return out
}

// ChurnSessionResult holds Figure 4 measurements at one session time.
type ChurnSessionResult struct {
	SessionMin      float64
	MaintBPSPerNode float64
	ConsistencyCDF  CDF // per-probe consistent fraction
	MeanConsistency float64
	LatencyCDF      CDF
	LookupsIssued   int
	LookupsDone     int
}

// Fig4Result aggregates Figure 4(i)-(iii).
type Fig4Result struct {
	Scale      Scale
	PerSession []*ChurnSessionResult
}

// RunFig4 churns an N-node network at each mean session time following
// Bamboo's methodology (exponential sessions, constant population) and
// measures maintenance bandwidth (4i), lookup consistency (4ii), and
// lookup latency (4iii).
func RunFig4(sc Scale, seed int64) *Fig4Result {
	res := &Fig4Result{Scale: sc}
	for _, sessMin := range sc.SessionsMin {
		res.PerSession = append(res.PerSession, runChurnSession(sc, sessMin, seed))
	}
	return res
}

func runChurnSession(sc Scale, sessMin float64, seed int64) *ChurnSessionResult {
	h := harness.NewChord(harness.Opts{N: sc.ChurnN, Seed: seed, JoinSpacing: sc.JoinSpacing, Shards: sc.Shards, Net: sc.Net})
	defer h.Close()
	h.Run(float64(sc.ChurnN)*sc.JoinSpacing + sc.SettleTime)

	out := &ChurnSessionResult{SessionMin: sessMin}
	h.StartChurn(sessMin * 60)
	h.ResetTraffic()
	start := h.Now()

	// Interleave consistency probes across the churn window; each
	// probe advances the clock by its timeout, churn running throughout.
	var fracs []float64
	gap := 0.0
	if sc.Probes > 0 {
		gap = sc.ChurnDuration/float64(sc.Probes) - sc.ProbeTimeout
		if gap < 0 {
			gap = 0
		}
	}
	for i := 0; i < sc.Probes; i++ {
		fracs = append(fracs, h.ConsistencyProbe(sc.ProbeSample, sc.ProbeTimeout))
		h.Run(gap)
	}
	if rem := sc.ChurnDuration - (h.Now() - start); rem > 0 {
		h.Run(rem)
	}
	elapsed := h.Now() - start
	h.StopChurn()

	_, maint := h.TrafficBytes()
	out.MaintBPSPerNode = float64(maint) / float64(sc.ChurnN) / elapsed
	out.ConsistencyCDF = NewCDF(fracs)
	out.MeanConsistency = out.ConsistencyCDF.Mean()

	var lats []float64
	for _, lr := range h.Results {
		out.LookupsIssued++
		if lr.Done {
			out.LookupsDone++
			lats = append(lats, lr.Latency())
		}
	}
	out.LatencyCDF = NewCDF(lats)
	return out
}

// Complexity holds the specification-complexity comparison (§1, §5.2):
// rules per overlay versus lines of conventional code.
type Complexity struct {
	ChordRules     int
	ChordTables    int
	NaradaRules    int
	HandcodedLines int // our imperative Chord, same feature set
}

// SpecComplexity counts the shipped specifications.
func SpecComplexity() Complexity {
	chord := overlog.MustParse(overlays.ChordSource)
	narada := overlog.MustParse(overlays.NaradaSource)
	return Complexity{
		ChordRules:     chord.RuleCount() + len(chord.Facts),
		ChordTables:    len(chord.Materialize),
		NaradaRules:    narada.RuleCount(),
		HandcodedLines: handcodedLines(),
	}
}

// report rendering ---------------------------------------------------------

// Print writes Figure 3's three panels as aligned text tables.
func (r *Fig3Result) Print(w io.Writer) {
	fmt.Fprintf(w, "== Figure 3(i): lookup hop-count distribution (scale=%s) ==\n", r.Scale.Name)
	fmt.Fprintf(w, "%-6s", "hops")
	for _, s := range r.PerSize {
		fmt.Fprintf(w, "%10s", fmt.Sprintf("N=%d", s.N))
	}
	fmt.Fprintln(w)
	maxHops := 0
	for _, s := range r.PerSize {
		for hph := range s.HopHist {
			if hph > maxHops {
				maxHops = hph
			}
		}
	}
	for hc := 0; hc <= maxHops; hc++ {
		fmt.Fprintf(w, "%-6d", hc)
		for _, s := range r.PerSize {
			frac := 0.0
			if s.Completed > 0 {
				frac = float64(s.HopHist[hc]) / float64(s.Completed)
			}
			fmt.Fprintf(w, "%10.3f", frac)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "%-6s", "mean")
	for _, s := range r.PerSize {
		fmt.Fprintf(w, "%10.2f", s.MeanHops)
	}
	fmt.Fprintf(w, "   (log2(N)/2:")
	for _, s := range r.PerSize {
		fmt.Fprintf(w, " %.2f", math.Log2(float64(s.N))/2)
	}
	fmt.Fprintln(w, ")")

	fmt.Fprintf(w, "\n== Figure 3(ii): maintenance bandwidth, no churn ==\n")
	fmt.Fprintf(w, "%-10s %-18s %-14s\n", "N", "bytes/s/node", "ring-correct")
	for _, s := range r.PerSize {
		fmt.Fprintf(w, "%-10d %-18.1f %-14.2f\n", s.N, s.MaintBPSPerNode, s.RingCorrectness)
	}

	fmt.Fprintf(w, "\n== Figure 3(iii): lookup latency CDF ==\n")
	fmt.Fprintf(w, "%-10s", "pct")
	for _, s := range r.PerSize {
		fmt.Fprintf(w, "%10s", fmt.Sprintf("N=%d", s.N))
	}
	fmt.Fprintln(w)
	for _, p := range []float64{0.10, 0.25, 0.50, 0.75, 0.90, 0.96, 0.99} {
		fmt.Fprintf(w, "%-10.2f", p)
		for _, s := range r.PerSize {
			fmt.Fprintf(w, "%9.2fs", s.LatencyCDF.Percentile(p))
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "%-10s", "done")
	for _, s := range r.PerSize {
		fmt.Fprintf(w, "%10s", fmt.Sprintf("%d/%d", s.Completed, s.Issued))
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%-10s", "correct")
	for _, s := range r.PerSize {
		fmt.Fprintf(w, "%10s", fmt.Sprintf("%d/%d", s.Correct, s.Completed))
	}
	fmt.Fprintln(w)
}

// Print writes Figure 4's three panels.
func (r *Fig4Result) Print(w io.Writer) {
	fmt.Fprintf(w, "== Figure 4(i): maintenance bandwidth under churn (N=%d, scale=%s) ==\n",
		r.Scale.ChurnN, r.Scale.Name)
	fmt.Fprintf(w, "%-14s %-16s\n", "session(min)", "bytes/s/node")
	for _, s := range r.PerSession {
		fmt.Fprintf(w, "%-14.0f %-16.1f\n", s.SessionMin, s.MaintBPSPerNode)
	}

	fmt.Fprintf(w, "\n== Figure 4(ii): lookup consistency under churn ==\n")
	fmt.Fprintf(w, "%-14s %-10s %-10s %-10s %-10s\n", "session(min)", "mean", "p25", "p50", "p90")
	for _, s := range r.PerSession {
		fmt.Fprintf(w, "%-14.0f %-10.2f %-10.2f %-10.2f %-10.2f\n",
			s.SessionMin, s.MeanConsistency,
			s.ConsistencyCDF.Percentile(0.25),
			s.ConsistencyCDF.Percentile(0.50),
			s.ConsistencyCDF.Percentile(0.90))
	}

	fmt.Fprintf(w, "\n== Figure 4(iii): lookup latency under churn ==\n")
	fmt.Fprintf(w, "%-14s %-10s %-10s %-10s %-12s\n", "session(min)", "p50", "p90", "p99", "completed")
	for _, s := range r.PerSession {
		fmt.Fprintf(w, "%-14.0f %-9.2fs %-9.2fs %-9.2fs %d/%d\n",
			s.SessionMin,
			s.LatencyCDF.Percentile(0.50),
			s.LatencyCDF.Percentile(0.90),
			s.LatencyCDF.Percentile(0.99),
			s.LookupsDone, s.LookupsIssued)
	}
}

// Print writes the complexity comparison.
func (c Complexity) Print(w io.Writer) {
	fmt.Fprintln(w, "== Specification complexity (paper §1: Chord in 47 rules, Narada mesh in 16) ==")
	fmt.Fprintf(w, "%-34s %d rules (+%d tables)\n", "Chord in OverLog:", c.ChordRules, c.ChordTables)
	fmt.Fprintf(w, "%-34s %d rules\n", "Narada mesh in OverLog:", c.NaradaRules)
	fmt.Fprintf(w, "%-34s %d lines of Go\n", "Hand-coded Chord (internal/chordref):", c.HandcodedLines)
}

// key sanity: a random workload helper used by tests.
func randomKeys(n int, seed int64) []id.ID {
	keys := make([]id.ID, n)
	for i := range keys {
		keys[i] = id.Hash(fmt.Sprintf("key-%d-%d", seed, i))
	}
	return keys
}
