package experiments

import (
	"runtime"

	"p2/internal/chordref"
	"p2/internal/harness"
)

// handcodedLines defers to the chordref package's embedded source.
func handcodedLines() int { return chordref.SourceLines() }

// Footprint reports the memory cost of running Chord nodes — the
// paper's "about 800 kB of working set" claim (§1). It builds a small
// live ring and attributes the heap growth per node.
type Footprint struct {
	Nodes          int
	BytesPerNode   uint64
	TotalHeapDelta uint64
}

// MeasureFootprint runs n full Chord nodes for warm seconds of virtual
// time and measures amortized heap bytes per node.
func MeasureFootprint(n int, warm float64) Footprint {
	runtime.GC()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)

	h := harness.NewChord(harness.Opts{N: n, Seed: 1, JoinSpacing: 0.25})
	defer h.Close()
	h.Run(float64(n)*0.25 + warm)

	runtime.GC()
	var after runtime.MemStats
	runtime.ReadMemStats(&after)

	delta := uint64(0)
	if after.HeapAlloc > before.HeapAlloc {
		delta = after.HeapAlloc - before.HeapAlloc
	}
	// Keep h alive past the measurement.
	runtime.KeepAlive(h)
	return Footprint{Nodes: n, BytesPerNode: delta / uint64(n), TotalHeapDelta: delta}
}
