package experiments

import (
	"runtime"

	"p2/internal/chordref"
	"p2/internal/harness"
	"p2/internal/val"
)

// handcodedLines defers to the chordref package's embedded source.
func handcodedLines() int { return chordref.SourceLines() }

// Footprint reports the memory cost of running Chord nodes — the
// paper's "about 800 kB of working set" claim (§1), and the gauge the
// 100k scale-out campaign is driven by: per-node bytes, not cores, are
// what bound deployment size.
type Footprint struct {
	Nodes          int
	BytesPerNode   uint64 // (run delta - control delta) / nodes
	TotalHeapDelta uint64 // heap growth of the measured run
	ControlDelta   uint64 // heap growth of the 0-node control run
	InternEntries  int    // global symbol interner occupancy after the run
	InternBytes    int64  // bytes of canonical backing storage interned
}

// footprintSpacing is the join stagger of footprint rings: footprint
// measures steady state, not convergence quality, so joins pack
// tighter than the measurement harness default to keep big-N runs
// affordable.
const footprintSpacing = 0.05

// measureRun builds an n-node ring, runs it for the given virtual
// duration, and returns the heap growth. Two GC cycles bracket each
// sample: the first turns garbage into free spans, the second lets
// finalizer-driven frees settle — a single cycle leaves recently
// dropped shard/loop state inflating the delta.
func measureRun(n int, duration float64) uint64 {
	runtime.GC()
	runtime.GC()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)

	h := harness.NewChord(harness.Opts{N: n, Seed: 1, JoinSpacing: footprintSpacing})
	h.Run(duration)

	runtime.GC()
	runtime.GC()
	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	h.Close()

	if after.HeapAlloc <= before.HeapAlloc {
		return 0
	}
	return after.HeapAlloc - before.HeapAlloc
}

// MeasureFootprint runs n full Chord nodes for warm seconds of virtual
// time past the staggered build and measures amortized heap bytes per
// node. The harness and driver machinery (deployment, shard loops,
// schedule state) is subtracted out via a 0-node control run over the
// same virtual duration, so BytesPerNode attributes only what nodes
// actually cost — without the control the fixed overhead inflates
// small-n measurements by tens of kB/node.
func MeasureFootprint(n int, warm float64) Footprint {
	duration := float64(n)*footprintSpacing + warm
	control := measureRun(0, duration)
	delta := measureRun(n, duration)

	net := uint64(0)
	if delta > control {
		net = delta - control
	}
	entries, bytes := val.InternStats()
	return Footprint{
		Nodes:          n,
		BytesPerNode:   net / uint64(n),
		TotalHeapDelta: delta,
		ControlDelta:   control,
		InternEntries:  entries,
		InternBytes:    bytes,
	}
}
