// Package pel implements the P2 Expression Language: a small stack-based
// postfix byte-code language for manipulating Values and Tuples (§3.1).
//
// PEL is not written by humans. The planner compiles OverLog expressions
// — selections, assignments, projections, aggregate arguments — into PEL
// programs, and dataflow elements are parameterized by them. A Program
// evaluates against an input tuple and an Env (clock, random source,
// local address) and leaves its result on top of the VM stack.
package pel

import (
	"fmt"
	"math/rand"
	"strings"

	"p2/internal/eventloop"
	"p2/internal/id"
	"p2/internal/tuple"
	"p2/internal/val"
)

// Op is a PEL opcode.
type Op uint8

// The PEL instruction set.
const (
	OpConst Op = iota // push consts[arg]
	OpField           // push input.Field(arg)
	OpPop             // discard top
	OpDup             // duplicate top
	OpSwap            // swap top two

	OpAdd // binary arithmetic: pop b, pop a, push a OP b
	OpSub
	OpMul
	OpDiv
	OpMod
	OpShl
	OpShr
	OpNeg // unary minus

	OpEq // comparisons: push bool
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe

	OpAnd // logical on truthiness
	OpOr
	OpNot

	OpIn // pop hi, lo, k; arg bit0 = lo closed, bit1 = hi closed

	OpNow      // push current time from env clock
	OpRand     // push uniform float64 in [0,1)
	OpCoinFlip // pop p, push bool (true with probability p)
	OpSha1     // pop v, push ID = SHA-1(string render of v)
	OpLocal    // push env.Local (this node's address)
	OpToID     // pop v, push v coerced to ID
	OpToStr    // pop v, push string render
)

var opNames = map[Op]string{
	OpConst: "const", OpField: "field", OpPop: "pop", OpDup: "dup",
	OpSwap: "swap", OpAdd: "add", OpSub: "sub", OpMul: "mul", OpDiv: "div",
	OpMod: "mod", OpShl: "shl", OpShr: "shr", OpNeg: "neg", OpEq: "eq",
	OpNe: "ne", OpLt: "lt", OpLe: "le", OpGt: "gt", OpGe: "ge",
	OpAnd: "and", OpOr: "or", OpNot: "not", OpIn: "in", OpNow: "now",
	OpRand: "rand", OpCoinFlip: "coinflip", OpSha1: "sha1",
	OpLocal: "local", OpToID: "toid", OpToStr: "tostr",
}

// Instr is a single byte-code instruction.
type Instr struct {
	Op  Op
	Arg int
}

// Program is a compiled PEL expression.
type Program struct {
	code   []Instr
	consts []val.Value
}

// Env supplies the runtime context PEL built-ins read.
type Env struct {
	Clock eventloop.Clock
	Rand  *rand.Rand
	Local string // this node's address, for f_localAddr()
}

// Builder assembles Programs. Methods chain.
type Builder struct {
	p Program
}

// NewBuilder returns an empty program builder.
func NewBuilder() *Builder { return &Builder{} }

// Const appends a push-constant instruction.
func (b *Builder) Const(v val.Value) *Builder {
	b.p.consts = append(b.p.consts, v)
	b.p.code = append(b.p.code, Instr{OpConst, len(b.p.consts) - 1})
	return b
}

// Field appends a push-input-field instruction.
func (b *Builder) Field(i int) *Builder { return b.Emit(OpField, i) }

// Emit appends an arbitrary instruction.
func (b *Builder) Emit(op Op, arg int) *Builder {
	b.p.code = append(b.p.code, Instr{op, arg})
	return b
}

// Op appends a zero-argument instruction.
func (b *Builder) Op(op Op) *Builder { return b.Emit(op, 0) }

// In appends an interval-membership instruction with bound closedness.
func (b *Builder) In(loClosed, hiClosed bool) *Builder {
	arg := 0
	if loClosed {
		arg |= 1
	}
	if hiClosed {
		arg |= 2
	}
	return b.Emit(OpIn, arg)
}

// Build finalizes the program.
func (b *Builder) Build() *Program {
	p := b.p
	return &p
}

// Len returns the number of instructions.
func (p *Program) Len() int { return len(p.code) }

// String disassembles the program for the olgc inspector.
func (p *Program) String() string {
	var sb strings.Builder
	for i, in := range p.code {
		if i > 0 {
			sb.WriteByte(' ')
		}
		switch in.Op {
		case OpConst:
			fmt.Fprintf(&sb, "push(%s)", p.consts[in.Arg])
		case OpField:
			fmt.Fprintf(&sb, "$%d", in.Arg)
		case OpIn:
			lo, hi := "(", ")"
			if in.Arg&1 != 0 {
				lo = "["
			}
			if in.Arg&2 != 0 {
				hi = "]"
			}
			fmt.Fprintf(&sb, "in%s%s", lo, hi)
		default:
			sb.WriteString(opNames[in.Op])
		}
	}
	return sb.String()
}

// VM executes PEL programs. A VM is reusable and not safe for concurrent
// use — exactly one lives per dataflow strand.
type VM struct {
	stack []val.Value
}

// NewVM returns a fresh VM. The operand stack starts nil and is grown
// by the first Eval to exactly the depth its programs need, then
// retained (run stores the grown slice back) — so steady-state
// evaluation stays allocation-free without paying a fixed-size
// preallocation on every VM. A dataflow graph holds one VM per
// element, tens of thousands of them across a big deployment, and most
// programs are a handful of slots deep; the old eager 16-slot stack
// (16 fixed Value slots) was the single largest per-node heap line.
func NewVM() *VM { return &VM{} }

// Eval runs p against the input tuple and environment, returning the
// value left on top of the stack. Errors indicate malformed programs
// (stack underflow, missing constant), which are planner bugs.
func (vm *VM) Eval(p *Program, in *tuple.Tuple, env *Env) (val.Value, error) {
	return vm.run(p, in, nil, 0, env)
}

// EvalJoined runs p against the virtual concatenation of left and
// right: field references below left's arity read left, the rest read
// right shifted down. Equijoins use it to evaluate selection predicates
// against a candidate match before materializing the concatenated
// tuple, so filtered-out matches never allocate.
func (vm *VM) EvalJoined(p *Program, left, right *tuple.Tuple, env *Env) (val.Value, error) {
	return vm.run(p, left, right, left.Arity(), env)
}

func (vm *VM) run(p *Program, in, right *tuple.Tuple, split int, env *Env) (val.Value, error) {
	st := vm.stack[:0]
	pop := func() val.Value {
		v := st[len(st)-1]
		st = st[:len(st)-1]
		return v
	}
	for pc, ins := range p.code {
		// Stack-depth checks for operand-consuming opcodes.
		need := arity(ins.Op)
		if len(st) < need {
			return val.Null, fmt.Errorf("pel: stack underflow at pc %d (%s)", pc, opNames[ins.Op])
		}
		switch ins.Op {
		case OpConst:
			if ins.Arg >= len(p.consts) {
				return val.Null, fmt.Errorf("pel: bad const index %d", ins.Arg)
			}
			st = append(st, p.consts[ins.Arg])
		case OpField:
			if right != nil && ins.Arg >= split {
				st = append(st, right.Field(ins.Arg-split))
			} else {
				st = append(st, in.Field(ins.Arg))
			}
		case OpPop:
			pop()
		case OpDup:
			st = append(st, st[len(st)-1])
		case OpSwap:
			st[len(st)-1], st[len(st)-2] = st[len(st)-2], st[len(st)-1]
		case OpAdd:
			b := pop()
			a := pop()
			st = append(st, val.Add(a, b))
		case OpSub:
			b := pop()
			a := pop()
			st = append(st, val.Sub(a, b))
		case OpMul:
			b := pop()
			a := pop()
			st = append(st, val.Mul(a, b))
		case OpDiv:
			b := pop()
			a := pop()
			st = append(st, val.Div(a, b))
		case OpMod:
			b := pop()
			a := pop()
			st = append(st, val.Mod(a, b))
		case OpShl:
			b := pop()
			a := pop()
			st = append(st, val.Shl(a, b))
		case OpShr:
			b := pop()
			a := pop()
			st = append(st, val.Shr(a, b))
		case OpNeg:
			st[len(st)-1] = val.Neg(st[len(st)-1])
		case OpEq:
			b := pop()
			a := pop()
			st = append(st, val.Bool(a.Cmp(b) == 0))
		case OpNe:
			b := pop()
			a := pop()
			st = append(st, val.Bool(a.Cmp(b) != 0))
		case OpLt:
			b := pop()
			a := pop()
			st = append(st, val.Bool(a.Cmp(b) < 0))
		case OpLe:
			b := pop()
			a := pop()
			st = append(st, val.Bool(a.Cmp(b) <= 0))
		case OpGt:
			b := pop()
			a := pop()
			st = append(st, val.Bool(a.Cmp(b) > 0))
		case OpGe:
			b := pop()
			a := pop()
			st = append(st, val.Bool(a.Cmp(b) >= 0))
		case OpAnd:
			b := pop()
			a := pop()
			st = append(st, val.Bool(a.AsBool() && b.AsBool()))
		case OpOr:
			b := pop()
			a := pop()
			st = append(st, val.Bool(a.AsBool() || b.AsBool()))
		case OpNot:
			st[len(st)-1] = val.Bool(!st[len(st)-1].AsBool())
		case OpIn:
			hi := pop()
			lo := pop()
			k := pop()
			st = append(st, val.Bool(val.In(k, lo, hi, ins.Arg&1 != 0, ins.Arg&2 != 0)))
		case OpNow:
			if env == nil || env.Clock == nil {
				return val.Null, fmt.Errorf("pel: f_now with no clock in env")
			}
			st = append(st, val.Time(env.Clock.Now()))
		case OpRand:
			if env == nil || env.Rand == nil {
				return val.Null, fmt.Errorf("pel: f_rand with no rng in env")
			}
			st = append(st, val.Float(env.Rand.Float64()))
		case OpCoinFlip:
			if env == nil || env.Rand == nil {
				return val.Null, fmt.Errorf("pel: f_coinFlip with no rng in env")
			}
			p := pop().AsFloat()
			st = append(st, val.Bool(env.Rand.Float64() < p))
		case OpSha1:
			v := pop()
			st = append(st, val.MakeID(id.Hash(v.AsStr())))
		case OpLocal:
			if env == nil {
				return val.Null, fmt.Errorf("pel: f_localAddr with no env")
			}
			st = append(st, val.Str(env.Local))
		case OpToID:
			st[len(st)-1] = val.MakeID(st[len(st)-1].AsID())
		case OpToStr:
			st[len(st)-1] = val.Str(st[len(st)-1].AsStr())
		default:
			return val.Null, fmt.Errorf("pel: unknown opcode %d at pc %d", ins.Op, pc)
		}
	}
	vm.stack = st[:0] // retain capacity
	if len(st) == 0 {
		return val.Null, fmt.Errorf("pel: program left empty stack")
	}
	return st[len(st)-1], nil
}

// arity returns how many stack operands an opcode consumes.
func arity(op Op) int {
	switch op {
	case OpAdd, OpSub, OpMul, OpDiv, OpMod, OpShl, OpShr,
		OpEq, OpNe, OpLt, OpLe, OpGt, OpGe, OpAnd, OpOr, OpSwap:
		return 2
	case OpNeg, OpNot, OpPop, OpDup, OpCoinFlip, OpSha1, OpToID, OpToStr:
		return 1
	case OpIn:
		return 3
	}
	return 0
}
