package pel

import (
	"math/rand"
	"testing"
	"testing/quick"

	"p2/internal/eventloop"
	"p2/internal/id"
	"p2/internal/tuple"
	"p2/internal/val"
)

func env() *Env {
	return &Env{
		Clock: eventloop.NewSim(),
		Rand:  rand.New(rand.NewSource(42)),
		Local: "n1:1234",
	}
}

func eval(t *testing.T, p *Program, in *tuple.Tuple) val.Value {
	t.Helper()
	v, err := NewVM().Eval(p, in, env())
	if err != nil {
		t.Fatalf("eval failed: %v (program %s)", err, p)
	}
	return v
}

func TestConstAndField(t *testing.T) {
	in := tuple.New("t", val.Str("n1"), val.Int(7))
	p := NewBuilder().Field(1).Const(val.Int(3)).Op(OpAdd).Build()
	if got := eval(t, p, in); got.AsInt() != 10 {
		t.Errorf("7+3 = %v", got)
	}
}

func TestArithmeticChain(t *testing.T) {
	// (4 * 5 - 2) / 3 % 4 = 18/3 % 4 = 6 % 4 = 2
	p := NewBuilder().
		Const(val.Int(4)).Const(val.Int(5)).Op(OpMul).
		Const(val.Int(2)).Op(OpSub).
		Const(val.Int(3)).Op(OpDiv).
		Const(val.Int(4)).Op(OpMod).
		Build()
	if got := eval(t, p, tuple.New("x")); got.AsInt() != 2 {
		t.Errorf("got %v", got)
	}
}

func TestComparisonsAndLogic(t *testing.T) {
	in := tuple.New("t", val.Int(5), val.Int(9))
	cases := []struct {
		op   Op
		want bool
	}{
		{OpEq, false}, {OpNe, true}, {OpLt, true},
		{OpLe, true}, {OpGt, false}, {OpGe, false},
	}
	for _, c := range cases {
		p := NewBuilder().Field(0).Field(1).Op(c.op).Build()
		if got := eval(t, p, in).AsBool(); got != c.want {
			t.Errorf("5 %s 9 = %v, want %v", opNames[c.op], got, c.want)
		}
	}
	// (5 < 9) && !(5 == 9) || false
	p := NewBuilder().
		Field(0).Field(1).Op(OpLt).
		Field(0).Field(1).Op(OpEq).Op(OpNot).
		Op(OpAnd).
		Const(val.Bool(false)).Op(OpOr).
		Build()
	if !eval(t, p, in).AsBool() {
		t.Error("logic chain")
	}
}

func TestStackManipulation(t *testing.T) {
	p := NewBuilder().Const(val.Int(1)).Const(val.Int(2)).Op(OpSwap).Op(OpPop).Build()
	if got := eval(t, p, tuple.New("x")); got.AsInt() != 2 {
		t.Errorf("swap/pop = %v", got)
	}
	p2 := NewBuilder().Const(val.Int(3)).Op(OpDup).Op(OpMul).Build()
	if got := eval(t, p2, tuple.New("x")); got.AsInt() != 9 {
		t.Errorf("dup/mul = %v", got)
	}
}

func TestRingInterval(t *testing.T) {
	n := id.FromUint64(100)
	s := id.FromUint64(200)
	in := tuple.New("lookup", val.MakeID(id.FromUint64(150)), val.MakeID(n), val.MakeID(s))
	// K in (N, S]
	p := NewBuilder().Field(0).Field(1).Field(2).In(false, true).Build()
	if !eval(t, p, in).AsBool() {
		t.Error("150 in (100,200]")
	}
	// endpoint: S in (N, S]
	in2 := tuple.New("lookup", val.MakeID(s), val.MakeID(n), val.MakeID(s))
	if !eval(t, p, in2).AsBool() {
		t.Error("200 in (100,200]")
	}
	// N not in (N, S]
	in3 := tuple.New("lookup", val.MakeID(n), val.MakeID(n), val.MakeID(s))
	if eval(t, p, in3).AsBool() {
		t.Error("100 not in (100,200]")
	}
}

func TestFingerTargetExpression(t *testing.T) {
	// K := N + (1 << I) — the Chord F2/F3 computation.
	n := id.Hash("node")
	in := tuple.New("fFix", val.Str("n1"), val.Str("e"), val.Int(42), val.MakeID(n))
	p := NewBuilder().
		Field(3).
		Const(val.Int(1)).Field(2).Op(OpShl).
		Op(OpAdd).
		Build()
	want := n.Add(id.Pow2(42))
	if got := eval(t, p, in); got.AsID() != want {
		t.Errorf("finger target = %v, want %v", got.AsID(), want)
	}
}

func TestBuiltins(t *testing.T) {
	e := env()
	sim := e.Clock.(*eventloop.Sim)
	sim.Run(12.5)
	vm := NewVM()

	now, err := vm.Eval(NewBuilder().Op(OpNow).Build(), tuple.New("x"), e)
	if err != nil || now.AsTime() != 12.5 {
		t.Errorf("f_now = %v, %v", now, err)
	}

	r, err := vm.Eval(NewBuilder().Op(OpRand).Build(), tuple.New("x"), e)
	if err != nil || r.AsFloat() < 0 || r.AsFloat() >= 1 {
		t.Errorf("f_rand = %v, %v", r, err)
	}

	always, _ := vm.Eval(NewBuilder().Const(val.Float(1.1)).Op(OpCoinFlip).Build(), tuple.New("x"), e)
	if !always.AsBool() {
		t.Error("coinflip(1.1) must be true")
	}
	never, _ := vm.Eval(NewBuilder().Const(val.Float(0)).Op(OpCoinFlip).Build(), tuple.New("x"), e)
	if never.AsBool() {
		t.Error("coinflip(0) must be false")
	}

	h, _ := vm.Eval(NewBuilder().Const(val.Str("n1:1234")).Op(OpSha1).Build(), tuple.New("x"), e)
	if h.AsID() != id.Hash("n1:1234") {
		t.Error("f_sha1 mismatch")
	}

	local, _ := vm.Eval(NewBuilder().Op(OpLocal).Build(), tuple.New("x"), e)
	if local.AsStr() != "n1:1234" {
		t.Errorf("f_localAddr = %v", local)
	}

	tid, _ := vm.Eval(NewBuilder().Const(val.Int(9)).Op(OpToID).Build(), tuple.New("x"), e)
	if tid.Kind() != val.KID || tid.AsID() != id.FromUint64(9) {
		t.Errorf("toid = %v", tid)
	}
	ts, _ := vm.Eval(NewBuilder().Const(val.Int(9)).Op(OpToStr).Build(), tuple.New("x"), e)
	if ts.Kind() != val.KStr || ts.AsStr() != "9" {
		t.Errorf("tostr = %v", ts)
	}
}

func TestErrors(t *testing.T) {
	vm := NewVM()
	cases := []*Program{
		NewBuilder().Op(OpAdd).Build(),                  // underflow
		NewBuilder().Const(val.Int(1)).Op(OpIn).Build(), // underflow ternary
		NewBuilder().Build(),                            // empty stack at end
		{code: []Instr{{OpConst, 5}}},                   // bad const index
		{code: []Instr{{Op(200), 0}}},                   // unknown opcode
	}
	for i, p := range cases {
		if _, err := vm.Eval(p, tuple.New("x"), env()); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
	// Builtins with missing env pieces.
	if _, err := vm.Eval(NewBuilder().Op(OpNow).Build(), tuple.New("x"), &Env{}); err == nil {
		t.Error("f_now without clock must error")
	}
	if _, err := vm.Eval(NewBuilder().Op(OpRand).Build(), tuple.New("x"), &Env{}); err == nil {
		t.Error("f_rand without rng must error")
	}
}

func TestVMReuseDoesNotLeakStack(t *testing.T) {
	vm := NewVM()
	p := NewBuilder().Const(val.Int(1)).Const(val.Int(2)).Build() // leaves 2 values
	for i := 0; i < 3; i++ {
		v, err := vm.Eval(p, tuple.New("x"), env())
		if err != nil || v.AsInt() != 2 {
			t.Fatalf("iteration %d: %v %v", i, v, err)
		}
	}
}

func TestDisassembly(t *testing.T) {
	p := NewBuilder().Field(2).Const(val.Int(1)).Op(OpAdd).In(false, true).Build()
	s := p.String()
	if s == "" {
		t.Fatal("empty disassembly")
	}
	for _, want := range []string{"$2", "push(1)", "add", "in(]"} {
		if !contains(s, want) {
			t.Errorf("disassembly %q missing %q", s, want)
		}
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(s) > 0 && indexOf(s, sub) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

func TestArithmeticLawsViaPEL(t *testing.T) {
	// Property: PEL add matches val.Add for arbitrary ints.
	vm := NewVM()
	f := func(a, b int64) bool {
		p := NewBuilder().Const(val.Int(a)).Const(val.Int(b)).Op(OpAdd).Build()
		got, err := vm.Eval(p, tuple.New("x"), env())
		return err == nil && got.AsInt() == a+b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkEvalSelect(b *testing.B) {
	// A typical selection: K in (N, S] on IDs.
	in := tuple.New("lookup",
		val.MakeID(id.Hash("k")), val.MakeID(id.Hash("n")), val.MakeID(id.Hash("s")))
	p := NewBuilder().Field(0).Field(1).Field(2).In(false, true).Build()
	vm := NewVM()
	e := env()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := vm.Eval(p, in, e); err != nil {
			b.Fatal(err)
		}
	}
}
