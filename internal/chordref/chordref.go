// Package chordref is a hand-coded, imperative Chord implementation on
// the same event loop, transport, and simulated network as the P2
// engine. It plays the role of the paper's comparison points (the MIT
// Chord implementation and MACEDON's chord.mac): a conventional
// state-machine implementation whose code size and per-lookup cost can
// be measured against the 47-rule OverLog specification executing on
// the dataflow engine.
//
// The protocol follows Stoica et al. (2003): recursive lookups routed
// through a finger table, a bounded successor list for resilience,
// periodic stabilization and finger fixing, and ping-based failure
// detection. Functionally it matches what the OverLog spec maintains,
// which is exactly the point: the comparison is between programming
// models, not protocols.
package chordref

import (
	"fmt"
	"math/rand"
	"sort"

	"p2/internal/eventloop"
	"p2/internal/id"
	"p2/internal/netif"
	"p2/internal/transport"
	"p2/internal/tuple"
	"p2/internal/val"
)

// Config holds the protocol timers and limits.
type Config struct {
	NumSuccessors  int
	StabilizeEvery float64
	FixFingerEvery float64
	PingEvery      float64
	DeadAfter      float64
	LookupTimeout  float64
}

// DefaultConfig mirrors the timer choices of the OverLog spec so the
// two implementations are comparable.
func DefaultConfig() Config {
	return Config{
		NumSuccessors:  4,
		StabilizeEvery: 5,
		FixFingerEvery: 10,
		PingEvery:      5,
		DeadAfter:      20,
		LookupTimeout:  10,
	}
}

// Owner computes the ground-truth owner of key on a Chord ring formed
// by the live addresses: the live node whose hashed identifier is the
// first at or clockwise after key ("" if live is empty). This is the
// oracle every consistent lookup must agree with — shared by the
// harness's IdealOwner and the fault lab's differential oracle.
func Owner(key id.ID, live []string) string {
	var best string
	var bestDist id.ID
	found := false
	for _, a := range live {
		d := key.Dist(id.Hash(a))
		if !found || d.Less(bestDist) {
			best, bestDist, found = a, d, true
		}
	}
	return best
}

// peer names a node by address and identifier.
type peer struct {
	addr string
	nid  id.ID
}

func mkPeer(addr string) peer { return peer{addr: addr, nid: id.Hash(addr)} }

// LookupCallback receives a finished lookup: the owner's address and
// the hop count the request traveled.
type LookupCallback func(owner string, hops int)

// Node is one imperative Chord participant.
type Node struct {
	cfg   Config
	addr  string
	nid   id.ID
	loop  eventloop.Loop
	trans *transport.Transport
	ep    netif.Endpoint
	rng   *rand.Rand

	succs      []peer // sorted by clockwise distance from nid, self excluded
	pred       peer
	fingers    [id.Bits]peer
	lastHeard  map[string]float64
	nextFinger int
	landmark   string

	pending   map[string]LookupCallback
	lookupSeq int
	stopped   bool
}

// NewNode creates a node; call Start to attach and begin maintenance.
func NewNode(addr string, loop eventloop.Loop, net netif.Network, cfg Config, seed int64) (*Node, error) {
	n := &Node{
		cfg:       cfg,
		addr:      addr,
		nid:       id.Hash(addr),
		loop:      loop,
		rng:       rand.New(rand.NewSource(seed)),
		lastHeard: make(map[string]float64),
		pending:   make(map[string]LookupCallback),
	}
	ep, err := net.Attach(addr, func(from string, payload []byte) {
		n.trans.Deliver(from, payload)
	})
	if err != nil {
		return nil, err
	}
	n.ep = ep
	n.trans = transport.New(loop, ep, transport.DefaultConfig())
	n.trans.OnReceive(n.onMessage)
	return n, nil
}

// Addr returns the node's address.
func (n *Node) Addr() string { return n.addr }

// ID returns the node's ring identifier.
func (n *Node) ID() id.ID { return n.nid }

// Transport exposes the transport for accounting taps.
func (n *Node) Transport() *transport.Transport { return n.trans }

// Start boots the node: landmark "" or self means "create a new ring".
func (n *Node) Start(landmark string) {
	n.landmark = landmark
	if landmark == "" || landmark == n.addr {
		// First node: own successor.
		n.succs = nil
		n.pred = peer{}
	} else {
		n.join()
	}
	n.scheduleMaintenance()
}

// Stop halts maintenance and closes the transport.
func (n *Node) Stop() {
	n.stopped = true
	n.trans.Close()
	n.ep.Close()
}

// Running reports liveness.
func (n *Node) Running() bool { return !n.stopped }

// BestSucc returns the closest live successor's address ("" if none).
func (n *Node) BestSucc() string {
	if len(n.succs) == 0 {
		return ""
	}
	return n.succs[0].addr
}

// Pred returns the predecessor's address ("" if unknown).
func (n *Node) Pred() string { return n.pred.addr }

// Lookup resolves key and calls cb on completion (cb may never fire if
// the lookup is lost — callers apply their own timeout, as with P2).
func (n *Node) Lookup(key id.ID, cb LookupCallback) {
	n.lookupSeq++
	eid := fmt.Sprintf("%s!%d", n.addr, n.lookupSeq)
	n.pending[eid] = cb
	n.routeLookup(key, n.addr, eid, 0)
}

// --- message protocol ----------------------------------------------------
//
// Messages reuse the tuple codec so both implementations pay identical
// marshaling costs:
//
//	lookupReq(dst, key, requester, eid, hops)
//	lookupResp(dst, owner, eid, hops)
//	getPred(dst, from) / predIs(dst, predAddr)
//	getSuccs(dst, from) / succsAre(dst, s1, s2, ...)
//	notify(dst, fromAddr)
//	ping(dst, from) / pong(dst, from)

func (n *Node) send(to string, name string, fields ...val.Value) {
	all := append([]val.Value{val.Str(to)}, fields...)
	n.trans.Send(to, tuple.New(name, all...))
}

func (n *Node) onMessage(from string, t *tuple.Tuple) {
	if n.stopped {
		return
	}
	n.lastHeard[from] = n.loop.Now()
	switch t.Name() {
	case "lookupReq":
		key := t.Field(1).AsID()
		requester := t.Field(2).AsStr()
		eid := t.Field(3).AsStr()
		hops := int(t.Field(4).AsInt())
		n.routeLookup(key, requester, eid, hops)
	case "lookupResp":
		eid := t.Field(2).AsStr()
		if cb, ok := n.pending[eid]; ok {
			delete(n.pending, eid)
			cb(t.Field(1).AsStr(), int(t.Field(3).AsInt()))
		}
	case "getPred":
		if n.pred.addr != "" {
			n.send(t.Field(1).AsStr(), "predIs", val.Str(n.pred.addr))
		}
	case "predIs":
		n.considerSuccessor(mkPeer(t.Field(1).AsStr()))
	case "getSuccs":
		fields := make([]val.Value, 0, len(n.succs)+1)
		for _, s := range n.succs {
			fields = append(fields, val.Str(s.addr))
		}
		n.send(t.Field(1).AsStr(), "succsAre", fields...)
	case "succsAre":
		for i := 1; i < t.Arity(); i++ {
			n.considerSuccessor(mkPeer(t.Field(i).AsStr()))
		}
	case "notify":
		cand := mkPeer(t.Field(1).AsStr())
		if n.pred.addr == "" || id.BetweenOO(cand.nid, n.pred.nid, n.nid) {
			n.pred = cand
		}
		// A notifier is also a successor candidate: this is how the
		// ring creator, which boots successorless, acquires its first
		// successor from the first joiner.
		n.considerSuccessor(cand)
	case "ping":
		n.send(t.Field(1).AsStr(), "pong", val.Str(n.addr))
	case "pong":
		// lastHeard already updated above.
	}
}

// routeLookup implements the L1/L2/L3 logic imperatively: answer if the
// key falls to our best successor, else forward to the closest
// preceding finger.
func (n *Node) routeLookup(key id.ID, requester, eid string, hops int) {
	if best := n.bestSuccPeer(); best.addr != "" && id.BetweenOC(key, n.nid, best.nid) {
		n.send(requester, "lookupResp", val.Str(best.addr), val.Str(eid), val.Int(int64(hops)))
		return
	}
	next := n.closestPreceding(key)
	if next.addr == "" || next.addr == n.addr {
		// No route: if we are alone, we own everything.
		if len(n.succs) == 0 {
			n.send(requester, "lookupResp", val.Str(n.addr), val.Str(eid), val.Int(int64(hops)))
		}
		return
	}
	n.send(next.addr, "lookupReq", val.MakeID(key), val.Str(requester),
		val.Str(eid), val.Int(int64(hops+1)))
}

func (n *Node) bestSuccPeer() peer {
	if len(n.succs) == 0 {
		return peer{}
	}
	return n.succs[0]
}

// closestPreceding scans fingers and successors for the node whose id
// most closely precedes key.
func (n *Node) closestPreceding(key id.ID) peer {
	var best peer
	bestDist := id.Zero.Sub(id.One) // max distance
	consider := func(p peer) {
		if p.addr == "" || p.addr == n.addr {
			return
		}
		if !id.BetweenOO(p.nid, n.nid, key) {
			return
		}
		d := p.nid.Dist(key).Sub(id.One)
		if d.Less(bestDist) {
			bestDist = d
			best = p
		}
	}
	for _, f := range n.fingers {
		consider(f)
	}
	for _, s := range n.succs {
		consider(s)
	}
	return best
}

// considerSuccessor merges a candidate into the bounded successor list.
func (n *Node) considerSuccessor(cand peer) {
	if cand.addr == "" || cand.addr == n.addr {
		return
	}
	for _, s := range n.succs {
		if s.addr == cand.addr {
			return
		}
	}
	if _, seen := n.lastHeard[cand.addr]; !seen {
		n.lastHeard[cand.addr] = n.loop.Now() // freshness baseline
	}
	n.succs = append(n.succs, cand)
	sort.Slice(n.succs, func(i, j int) bool {
		return n.nid.Dist(n.succs[i].nid).Less(n.nid.Dist(n.succs[j].nid))
	})
	if len(n.succs) > n.cfg.NumSuccessors {
		n.succs = n.succs[:n.cfg.NumSuccessors]
	}
	n.fingers[0] = n.succs[0]
}

func (n *Node) join() {
	n.lookupSeq++
	eid := fmt.Sprintf("%s!join%d", n.addr, n.lookupSeq)
	n.pending[eid] = func(owner string, _ int) {
		n.considerSuccessor(mkPeer(owner))
	}
	n.send(n.landmark, "lookupReq", val.MakeID(n.nid), val.Str(n.addr),
		val.Str(eid), val.Int(0))
}

func (n *Node) scheduleMaintenance() {
	jitter := func(p float64) float64 { return p * (0.5 + n.rng.Float64()) }
	var stabilize, fixFinger, pingPeers func()
	stabilize = func() {
		if n.stopped {
			return
		}
		n.stabilize()
		n.loop.After(n.cfg.StabilizeEvery, stabilize)
	}
	fixFinger = func() {
		if n.stopped {
			return
		}
		n.fixFinger()
		n.loop.After(n.cfg.FixFingerEvery, fixFinger)
	}
	pingPeers = func() {
		if n.stopped {
			return
		}
		n.pingPeers()
		n.loop.After(n.cfg.PingEvery, pingPeers)
	}
	n.loop.After(jitter(n.cfg.StabilizeEvery), stabilize)
	n.loop.After(jitter(n.cfg.FixFingerEvery), fixFinger)
	n.loop.After(jitter(n.cfg.PingEvery), pingPeers)
}

func (n *Node) stabilize() {
	if len(n.succs) == 0 {
		// Successorless: retry the join path.
		if n.landmark != "" && n.landmark != n.addr {
			n.join()
		}
		return
	}
	best := n.succs[0]
	n.send(best.addr, "getPred", val.Str(n.addr))
	n.send(best.addr, "getSuccs", val.Str(n.addr))
	n.send(best.addr, "notify", val.Str(n.addr))
}

func (n *Node) fixFinger() {
	i := n.nextFinger
	n.nextFinger = (n.nextFinger + 1) % id.Bits
	target := n.nid.Add(id.Pow2(uint(i)))
	n.lookupSeq++
	eid := fmt.Sprintf("%s!fix%d", n.addr, n.lookupSeq)
	n.pending[eid] = func(owner string, _ int) {
		p := mkPeer(owner)
		// Fill this finger and every subsequent one the owner covers —
		// the imperative twin of the OverLog F6 eager rule.
		for j := i; j < id.Bits; j++ {
			t := n.nid.Add(id.Pow2(uint(j)))
			if !id.BetweenOO(t, n.nid, p.nid) && t != p.nid {
				break
			}
			n.fingers[j] = p
			n.nextFinger = (j + 1) % id.Bits
		}
	}
	n.routeLookup(target, n.addr, eid, 0)
}

func (n *Node) pingPeers() {
	now := n.loop.Now()
	stale := func(addr string) bool {
		t, ok := n.lastHeard[addr]
		return ok && now-t > n.cfg.DeadAfter
	}
	// Expire dead successors and predecessor; remember who died.
	dead := make(map[string]bool)
	alive := n.succs[:0]
	for _, s := range n.succs {
		if stale(s.addr) {
			dead[s.addr] = true
			continue
		}
		alive = append(alive, s)
	}
	n.succs = alive
	if n.pred.addr != "" && stale(n.pred.addr) {
		dead[n.pred.addr] = true
		n.pred = peer{}
	}
	// Fingers are not pinged (matching the OverLog spec, where they age
	// out by table TTL and are overwritten by fix-finger); clear only
	// entries pointing at peers detected dead through succ/pred probes.
	for i, f := range n.fingers {
		if f.addr != "" && dead[f.addr] {
			n.fingers[i] = peer{}
		}
	}
	// Probe the living.
	for _, s := range n.succs {
		n.send(s.addr, "ping", val.Str(n.addr))
	}
	if n.pred.addr != "" {
		n.send(n.pred.addr, "ping", val.Str(n.addr))
	}
}
