package chordref

import (
	_ "embed"
	"strings"
)

//go:embed chordref.go
var source string

// SourceLines returns the number of non-blank, non-comment-only lines
// in this hand-coded implementation — the denominator in the paper's
// specification-complexity comparison (47 OverLog rules vs "thousands
// of lines" of conventional code; MACEDON's chord.mac was 320 lines
// and far less complete).
func SourceLines() int {
	n := 0
	inBlock := false
	for _, line := range strings.Split(source, "\n") {
		s := strings.TrimSpace(line)
		if inBlock {
			if strings.Contains(s, "*/") {
				inBlock = false
			}
			continue
		}
		switch {
		case s == "" || strings.HasPrefix(s, "//"):
		case strings.HasPrefix(s, "/*"):
			if !strings.Contains(s, "*/") {
				inBlock = true
			}
		default:
			n++
		}
	}
	return n
}
