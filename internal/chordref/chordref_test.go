package chordref

import (
	"fmt"
	"sort"
	"testing"

	"p2/internal/eventloop"
	"p2/internal/id"
	"p2/internal/simnet"
)

// ring builds an n-node imperative Chord ring and returns the loop and
// nodes after `settle` virtual seconds.
func ring(t testing.TB, n int, settle float64) (*eventloop.Sim, []*Node) {
	t.Helper()
	loop := eventloop.NewSim()
	net := simnet.New(loop, simnet.DefaultConfig())
	nodes := make([]*Node, n)
	for i := 0; i < n; i++ {
		addr := fmt.Sprintf("n%d:ref", i)
		nd, err := NewNode(addr, loop, net, DefaultConfig(), int64(i+1))
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = nd
		i := i
		loop.At(float64(i), func() {
			if i == 0 {
				nd.Start("")
			} else {
				nd.Start(nodes[0].Addr())
			}
		})
	}
	loop.Run(settle)
	return loop, nodes
}

// idealSucc maps each live node to its true ring successor.
func idealSucc(nodes []*Node) map[string]string {
	type entry struct {
		nid  id.ID
		addr string
	}
	var ring []entry
	for _, n := range nodes {
		if n.Running() {
			ring = append(ring, entry{n.ID(), n.Addr()})
		}
	}
	sort.Slice(ring, func(i, j int) bool { return ring[i].nid.Less(ring[j].nid) })
	m := make(map[string]string)
	for i, e := range ring {
		m[e.addr] = ring[(i+1)%len(ring)].addr
	}
	return m
}

func correctness(nodes []*Node) float64 {
	ideal := idealSucc(nodes)
	good, live := 0, 0
	for _, n := range nodes {
		if !n.Running() {
			continue
		}
		live++
		if n.BestSucc() == ideal[n.Addr()] {
			good++
		}
	}
	if live == 0 {
		return 0
	}
	return float64(good) / float64(live)
}

func TestRingConverges(t *testing.T) {
	_, nodes := ring(t, 10, 120)
	if c := correctness(nodes); c < 1.0 {
		t.Fatalf("correctness = %.2f", c)
	}
}

func TestLookupsResolveCorrectly(t *testing.T) {
	loop, nodes := ring(t, 12, 200)
	ideal := idealSucc(nodes)
	_ = ideal
	// Ground truth: sorted ids.
	type entry struct {
		nid  id.ID
		addr string
	}
	var sortedRing []entry
	for _, n := range nodes {
		sortedRing = append(sortedRing, entry{n.ID(), n.Addr()})
	}
	sort.Slice(sortedRing, func(i, j int) bool { return sortedRing[i].nid.Less(sortedRing[j].nid) })
	owner := func(k id.ID) string {
		for _, e := range sortedRing {
			if !e.nid.Less(k) {
				return e.addr
			}
		}
		return sortedRing[0].addr
	}
	ok := 0
	total := 20
	for i := 0; i < total; i++ {
		key := id.Hash(fmt.Sprintf("key%d", i))
		var got string
		nodes[i%len(nodes)].Lookup(key, func(o string, hops int) { got = o })
		loop.RunFor(10)
		if got == owner(key) {
			ok++
		}
	}
	if ok != total {
		t.Fatalf("correct lookups = %d/%d", ok, total)
	}
}

func TestHopCountLogarithmic(t *testing.T) {
	loop, nodes := ring(t, 16, 400)
	totalHops, count := 0, 0
	for i := 0; i < 30; i++ {
		key := id.Hash(fmt.Sprintf("hk%d", i))
		nodes[i%len(nodes)].Lookup(key, func(o string, hops int) {
			totalHops += hops
			count++
		})
		loop.RunFor(10)
	}
	if count < 25 {
		t.Fatalf("completed %d of 30", count)
	}
	if mean := float64(totalHops) / float64(count); mean > 6 {
		t.Fatalf("mean hops = %.1f", mean)
	}
}

func TestFailureRecovery(t *testing.T) {
	loop, nodes := ring(t, 10, 150)
	if correctness(nodes) < 1.0 {
		t.Fatal("not converged before failure")
	}
	nodes[4].Stop()
	nodes[7].Stop()
	loop.RunFor(120)
	if c := correctness(nodes); c < 1.0 {
		t.Fatalf("correctness after failures = %.2f", c)
	}
}

func TestSingletonOwnsEverything(t *testing.T) {
	loop := eventloop.NewSim()
	net := simnet.New(loop, simnet.DefaultConfig())
	n, err := NewNode("solo:ref", loop, net, DefaultConfig(), 1)
	if err != nil {
		t.Fatal(err)
	}
	n.Start("")
	var got string
	n.Lookup(id.Hash("anything"), func(o string, hops int) { got = o })
	loop.Run(5)
	if got != "solo:ref" {
		t.Fatalf("singleton lookup = %q", got)
	}
	if n.Pred() != "" {
		t.Fatal("singleton has no pred")
	}
}

func TestStopSilences(t *testing.T) {
	loop, nodes := ring(t, 4, 60)
	nodes[2].Stop()
	if nodes[2].Running() {
		t.Fatal("still running")
	}
	loop.RunFor(30) // must not panic or loop forever
}
