package val

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"p2/internal/id"
)

// Generate lets testing/quick produce arbitrary Values across all kinds.
func (Value) Generate(r *rand.Rand, size int) reflect.Value {
	var v Value
	switch r.Intn(7) {
	case 0:
		v = Null
	case 1:
		v = Bool(r.Intn(2) == 1)
	case 2:
		v = Int(r.Int63() - r.Int63())
	case 3:
		v = Float(r.NormFloat64() * 1000)
	case 4:
		b := make([]byte, r.Intn(20))
		for i := range b {
			b[i] = byte('a' + r.Intn(26))
		}
		v = Str(string(b))
	case 5:
		v = MakeID(id.Random(r))
	case 6:
		v = Time(float64(r.Intn(1 << 30)))
	}
	return reflect.ValueOf(v)
}

func TestZeroValueIsNull(t *testing.T) {
	var v Value
	if !v.IsNull() || v.Kind() != KNull {
		t.Fatal("zero Value must be null")
	}
}

func TestKindString(t *testing.T) {
	if KInt.String() != "int" || KID.String() != "id" {
		t.Error("kind names wrong")
	}
	if Kind(99).String() == "" {
		t.Error("unknown kind should render")
	}
}

func TestTruthiness(t *testing.T) {
	cases := []struct {
		v    Value
		want bool
	}{
		{Null, false},
		{Bool(false), false},
		{Bool(true), true},
		{Int(0), false},
		{Int(-3), true},
		{Float(0), false},
		{Float(0.5), true},
		{Str(""), false},
		{Str("x"), true},
		{MakeID(id.Zero), false},
		{MakeID(id.One), true},
		{Time(0), false},
		{Time(9), true},
	}
	for _, c := range cases {
		if got := c.v.AsBool(); got != c.want {
			t.Errorf("AsBool(%v) = %v, want %v", c.v, got, c.want)
		}
	}
}

func TestCoercions(t *testing.T) {
	if Int(42).AsFloat() != 42.0 {
		t.Error("int→float")
	}
	if Float(3.9).AsInt() != 3 {
		t.Error("float→int floors toward zero")
	}
	if Str("17").AsInt() != 17 {
		t.Error("str→int")
	}
	if Str("2.5").AsFloat() != 2.5 {
		t.Error("str→float")
	}
	if Int(5).AsID() != id.FromUint64(5) {
		t.Error("int→id")
	}
	if Int(-1).AsID() != id.Zero.Sub(id.One) {
		t.Error("negative int→id wraps")
	}
	x := id.Hash("h")
	if MakeID(x).AsStr() != "0x"+x.Short() {
		t.Error("id→str")
	}
	if Str(x.String()).AsID() != x {
		t.Error("hex str→id")
	}
	if Str("not hex!").AsID() != id.Zero {
		t.Error("bad hex str→id should be zero")
	}
	if Bool(true).AsInt() != 1 {
		t.Error("bool→int")
	}
	if Time(12.5).AsTime() != 12.5 {
		t.Error("time payload")
	}
}

func TestCmpTotalOrder(t *testing.T) {
	antisym := func(a, b Value) bool {
		return a.Cmp(b) == -b.Cmp(a)
	}
	if err := quick.Check(antisym, nil); err != nil {
		t.Error(err)
	}
	reflexive := func(a Value) bool { return a.Cmp(a) == 0 && a.Equal(a) }
	if err := quick.Check(reflexive, nil); err != nil {
		t.Error(err)
	}
}

func TestCmpNumericCrossKind(t *testing.T) {
	if Int(3).Cmp(Float(3.0)) != 0 {
		t.Error("Int(3) should equal Float(3)")
	}
	if Int(2).Cmp(Float(2.5)) != -1 {
		t.Error("2 < 2.5")
	}
	if Bool(true).Cmp(Int(1)) != 0 {
		t.Error("true == 1 numerically")
	}
	if Time(5).Cmp(Int(4)) != 1 {
		t.Error("time 5 > 4")
	}
	// Large int64s must compare exactly, not through float rounding.
	a, b := Int(1<<62), Int(1<<62+1)
	if a.Cmp(b) != -1 {
		t.Error("large ints compare exactly")
	}
}

func TestCmpAcrossNonNumericKinds(t *testing.T) {
	if Str("z").Cmp(MakeID(id.Zero)) != -1 {
		t.Error("str ranks below id")
	}
	if Null.Cmp(Bool(false)) != -1 {
		t.Error("null ranks lowest")
	}
	if Str("a").Cmp(Str("b")) != -1 || Str("b").Cmp(Str("a")) != 1 {
		t.Error("string ordering")
	}
}

func TestArithmetic(t *testing.T) {
	if Add(Int(2), Int(3)).AsInt() != 5 {
		t.Error("2+3")
	}
	if Add(Int(2), Float(0.5)).AsFloat() != 2.5 {
		t.Error("int+float promotes")
	}
	if Add(Str("a"), Str("b")).AsStr() != "ab" {
		t.Error("string concat")
	}
	if Add(Str("n"), Int(1)).AsStr() != "n1" {
		t.Error("str+int concat")
	}
	if Sub(Int(10), Int(4)).AsInt() != 6 {
		t.Error("10-4")
	}
	if Mul(Int(6), Int(7)).AsInt() != 42 {
		t.Error("6*7")
	}
	if Div(Int(7), Int(2)).AsInt() != 3 {
		t.Error("integer division")
	}
	if Div(Float(7), Int(2)).AsFloat() != 3.5 {
		t.Error("float division")
	}
	if !Div(Int(1), Int(0)).IsNull() {
		t.Error("divide by zero is null")
	}
	if !Div(Float(1), Float(0)).IsNull() {
		t.Error("float divide by zero is null")
	}
	if Mod(Int(7), Int(3)).AsInt() != 1 {
		t.Error("7%3")
	}
	if !Mod(Int(7), Int(0)).IsNull() {
		t.Error("mod zero is null")
	}
	if Neg(Int(5)).AsInt() != -5 {
		t.Error("neg int")
	}
	if Neg(Float(2.5)).AsFloat() != -2.5 {
		t.Error("neg float")
	}
}

func TestTimeArithmetic(t *testing.T) {
	// f_now() - T yields a plain float duration.
	d := Sub(Time(30), Time(10))
	if d.Kind() != KFloat || d.AsFloat() != 20 {
		t.Errorf("time-time = %v (%v)", d, d.Kind())
	}
	// time + 5 stays a time.
	tv := Add(Time(30), Int(5))
	if tv.Kind() != KTime || tv.AsTime() != 35 {
		t.Errorf("time+int = %v (%v)", tv, tv.Kind())
	}
	tv2 := Sub(Time(30), Int(5))
	if tv2.Kind() != KTime || tv2.AsTime() != 25 {
		t.Errorf("time-int = %v (%v)", tv2, tv2.Kind())
	}
}

func TestRingArithmetic(t *testing.T) {
	n := id.Hash("node")
	// K := N + (1 << I) — the finger target computation.
	k := Add(MakeID(n), Shl(Int(1), Int(20)))
	want := n.Add(id.Pow2(20))
	if k.AsID() != want {
		t.Errorf("finger target wrong: %v vs %v", k.AsID(), want)
	}
	// D := K - B - 1 on the ring.
	d := Sub(Sub(MakeID(n.AddUint64(100)), MakeID(n)), Int(1))
	if d.AsID() != id.FromUint64(99) {
		t.Errorf("ring distance = %v", d)
	}
}

func TestShlPromotion(t *testing.T) {
	// Small shifts stay ints.
	if v := Shl(Int(1), Int(10)); v.Kind() != KInt || v.AsInt() != 1024 {
		t.Errorf("1<<10 = %v", v)
	}
	// Shifts that would overflow int64 promote to ID.
	v := Shl(Int(1), Int(100))
	if v.Kind() != KID || v.AsID() != id.Pow2(100) {
		t.Errorf("1<<100 = %v kind %v", v, v.Kind())
	}
	if Shr(Int(8), Int(2)).AsInt() != 2 {
		t.Error("8>>2")
	}
	if Shr(MakeID(id.Pow2(100)), Int(100)).AsID() != id.One {
		t.Error("id shr")
	}
}

func TestIn(t *testing.T) {
	n := MakeID(id.FromUint64(100))
	s := MakeID(id.FromUint64(200))
	k := MakeID(id.FromUint64(150))
	if !In(k, n, s, false, true) {
		t.Error("150 in (100,200]")
	}
	if !In(s, n, s, false, true) {
		t.Error("200 in (100,200]")
	}
	if In(n, n, s, false, false) {
		t.Error("100 not in (100,200)")
	}
	if !In(n, n, s, true, false) {
		t.Error("100 in [100,200)")
	}
	if !In(n, n, s, true, true) || !In(s, n, s, true, true) {
		t.Error("closed interval endpoints")
	}
	// Plain ints embed into the ring.
	if !In(Int(5), Int(1), Int(10), false, false) {
		t.Error("5 in (1,10) on ints")
	}
}

func TestCodecRoundTrip(t *testing.T) {
	f := func(v Value) bool {
		b := v.AppendBinary(nil)
		if len(b) != v.EncodedSize() {
			return false
		}
		got, n, err := DecodeValue(b)
		if err != nil || n != len(b) {
			return false
		}
		// NaN floats won't compare equal; treat bit-pattern equality.
		if v.kind == KFloat && math.IsNaN(v.AsFloat()) {
			return got.kind == KFloat && math.IsNaN(got.AsFloat())
		}
		return got.Equal(v) && got.Kind() == v.Kind()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, _, err := DecodeValue(nil); err == nil {
		t.Error("empty decode should fail")
	}
	if _, _, err := DecodeValue([]byte{byte(KInt), 1, 2}); err == nil {
		t.Error("truncated int should fail")
	}
	if _, _, err := DecodeValue([]byte{byte(KStr), 0, 0, 0, 9, 'x'}); err == nil {
		t.Error("truncated string should fail")
	}
	if _, _, err := DecodeValue([]byte{byte(KBool)}); err == nil {
		t.Error("truncated bool should fail")
	}
	if _, _, err := DecodeValue([]byte{byte(KID), 1, 2, 3}); err == nil {
		t.Error("truncated id should fail")
	}
	if _, _, err := DecodeValue([]byte{200}); err == nil {
		t.Error("unknown kind should fail")
	}
}

func TestStringRendering(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{Null, "null"},
		{Bool(true), "true"},
		{Bool(false), "false"},
		{Int(-7), "-7"},
		{Str("hello"), "hello"},
		{Float(2.5), "2.5"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("String(%#v) = %q, want %q", c.v, got, c.want)
		}
	}
}

func BenchmarkCmpInt(b *testing.B) {
	x, y := Int(100), Int(200)
	for i := 0; i < b.N; i++ {
		x.Cmp(y)
	}
}

func BenchmarkEncodeDecodeID(b *testing.B) {
	v := MakeID(id.Hash("bench"))
	buf := v.AppendBinary(nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = buf[:0]
		buf = v.AppendBinary(buf)
		DecodeValue(buf)
	}
}
