package val

// The global symbol interner. A 10k-node deployment holds the same
// short strings — node addresses, relation names, event identifiers —
// in millions of places at once: every finger-table row on every node
// carries its successor's address, every rendered index key embeds the
// addresses of the fields it was built from, and every tuple decoded
// off the wire used to allocate a private copy of each of them. The
// interner deduplicates those copies into one canonical backing array
// per distinct byte sequence, so a tuple field, its table row, and the
// rendered keys indexing it all share storage.
//
// Design constraints, in order:
//
//   - Concurrency: tuples are decoded on every shard loop (and every
//     UDP node loop) at once, so the table is sharded by hash with one
//     RWMutex per shard; the steady state (string already present) is
//     a read-lock and a map probe.
//   - Boundedness: soft state means unbounded distinct strings over a
//     long run (event IDs, timestamps rendered to strings). Interning
//     is therefore best-effort: only strings up to internMaxLen enter,
//     and a shard that reaches internShardCap entries is flushed
//     wholesale. A flushed string is not "lost" — subsequent
//     duplicates simply stop sharing until it is re-admitted.
//   - Transparency: Intern(s) returns a string byte-equal to s, so
//     interned and uninterned values compare, hash, render, and
//     marshal identically. Nothing observable depends on interning;
//     the regression suite pins this across table replace/expire/evict.

import "sync"

const (
	internShardBits = 6
	internShards    = 1 << internShardBits // 64
	// internMaxLen bounds admitted strings: addresses, relation names,
	// and rendered single-field keys are far shorter; anything longer
	// is likely unique (large payloads) and not worth a table slot.
	internMaxLen = 64
	// internShardCap bounds one shard's table; at 64 shards the whole
	// interner holds at most ~1M entries before shards start flushing.
	internShardCap = 1 << 14
)

type internShard struct {
	mu sync.RWMutex
	m  map[string]string
}

var interner [internShards]internShard

func init() {
	for i := range interner {
		interner[i].m = make(map[string]string)
	}
}

// internHash is FNV-1a over the bytes, folded to a shard index.
func internHash(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}

// Intern returns the canonical copy of s: byte-equal to s, shared with
// every other Intern caller that presented the same bytes. Strings too
// long for the table return unchanged.
func Intern(s string) string {
	if len(s) == 0 || len(s) > internMaxLen {
		return s
	}
	sh := &interner[internHash(s)&(internShards-1)]
	sh.mu.RLock()
	c, ok := sh.m[s]
	sh.mu.RUnlock()
	if ok {
		return c
	}
	sh.mu.Lock()
	if c, ok = sh.m[s]; !ok {
		if len(sh.m) >= internShardCap {
			sh.m = make(map[string]string)
		}
		sh.m[s] = s
		c = s
	}
	sh.mu.Unlock()
	return c
}

// InternBytes is Intern for a scratch byte buffer: the common hit path
// probes the shard map via map[string(b)] — which Go compiles without
// materializing a string — so re-rendering an already-interned key
// allocates nothing. Only a genuinely new byte sequence is copied.
func InternBytes(b []byte) string {
	if len(b) == 0 || len(b) > internMaxLen {
		return string(b)
	}
	h := uint32(2166136261)
	for _, c := range b {
		h ^= uint32(c)
		h *= 16777619
	}
	sh := &interner[h&(internShards-1)]
	sh.mu.RLock()
	c, ok := sh.m[string(b)]
	sh.mu.RUnlock()
	if ok {
		return c
	}
	s := string(b)
	sh.mu.Lock()
	if c, ok = sh.m[s]; !ok {
		if len(sh.m) >= internShardCap {
			sh.m = make(map[string]string)
		}
		sh.m[s] = s
		c = s
	}
	sh.mu.Unlock()
	return c
}

// InternedStr is Str through the interner — the constructor for values
// known to recur, such as addresses.
func InternedStr(s string) Value { return Str(Intern(s)) }

// InternStats reports the interner's current occupancy — the
// MeasureFootprint report includes it so the memory anatomy of a big
// run is visible.
func InternStats() (entries int, bytes int64) {
	for i := range interner {
		sh := &interner[i]
		sh.mu.RLock()
		entries += len(sh.m)
		for s := range sh.m {
			bytes += int64(len(s))
		}
		sh.mu.RUnlock()
	}
	return entries, bytes
}
