package val

import (
	"fmt"
	"testing"
	"unsafe"
)

// TestInternTransparency pins the contract everything else leans on:
// Intern returns a string byte-equal to its argument, and repeated
// calls with equal bytes share one canonical backing array.
func TestInternTransparency(t *testing.T) {
	a := Intern(string([]byte{'c', 'h', 'o', 'r', 'd'}))
	b := Intern(string([]byte{'c', 'h', 'o', 'r', 'd'}))
	if a != "chord" || b != "chord" {
		t.Fatalf("Intern changed bytes: %q %q", a, b)
	}
	if unsafe.StringData(a) != unsafe.StringData(b) {
		t.Fatal("two Intern calls with equal bytes did not share backing storage")
	}
	c := InternBytes([]byte("chord"))
	if unsafe.StringData(c) != unsafe.StringData(a) {
		t.Fatal("InternBytes did not join the canonical copy Intern made")
	}
}

// TestInternLongStringsPassThrough: strings past internMaxLen bypass the
// table untouched — likely-unique payloads must not occupy slots.
func TestInternLongStringsPassThrough(t *testing.T) {
	long := make([]byte, internMaxLen+1)
	for i := range long {
		long[i] = 'x'
	}
	if got := Intern(string(long)); got != string(long) {
		t.Fatal("long string mutated")
	}
	entries0, _ := InternStats()
	Intern(string(long))
	InternBytes(long)
	if entries1, _ := InternStats(); entries1 > entries0 {
		t.Fatalf("over-length strings entered the table: %d -> %d entries", entries0, entries1)
	}
}

// TestInternFlushStaysTransparent fills shards far past internShardCap
// with distinct runtime-built strings — the unbounded-symbol regime a
// long soft-state run produces — and checks that (a) occupancy stays
// bounded (flushing works, the interner cannot OOM a soak) and (b)
// strings re-presented after a flush still intern byte-equal: a flush
// costs sharing, never correctness.
func TestInternFlushStaysTransparent(t *testing.T) {
	const distinct = internShards * internShardCap * 2
	for i := 0; i < distinct; i++ {
		s := fmt.Sprintf("flush-probe-%d", i)
		if got := Intern(s); got != s {
			t.Fatalf("Intern(%q) = %q", s, got)
		}
	}
	entries, bytes := InternStats()
	if entries > internShards*internShardCap {
		t.Fatalf("interner holds %d entries; cap is %d", entries, internShards*internShardCap)
	}
	if bytes <= 0 {
		t.Fatal("InternStats reports no bytes after a fill")
	}
	// Early strings were flushed out; re-interning must still be exact.
	for i := 0; i < 100; i++ {
		s := fmt.Sprintf("flush-probe-%d", i)
		if got := Intern(s); got != s {
			t.Fatalf("post-flush Intern(%q) = %q", s, got)
		}
	}
}

// TestInternBytesHitAllocFree pins the hot path the tuple decoder
// depends on: re-presenting already-interned bytes allocates nothing —
// the map probe runs on the scratch buffer without materializing a
// string.
func TestInternBytesHitAllocFree(t *testing.T) {
	buf := []byte("n42:p2-alloc-probe")
	Intern(string(buf)) // admit it
	allocs := testing.AllocsPerRun(100, func() {
		if InternBytes(buf) == "" {
			t.Fatal("empty")
		}
	})
	if allocs != 0 {
		t.Fatalf("InternBytes allocated %.1f objects per already-interned probe", allocs)
	}
}

// TestInternedValuesIndistinguishable: a Value built from an interned
// string and one built from a private copy must compare, hash-key, and
// render identically — nothing observable may depend on interning.
func TestInternedValuesIndistinguishable(t *testing.T) {
	private := string([]byte("n7:p2"))
	a := InternedStr(private)
	b := Str(private)
	if a.Cmp(b) != 0 {
		t.Fatal("interned and private values compare unequal")
	}
	if a.String() != b.String() {
		t.Fatalf("renderings differ: %q %q", a.String(), b.String())
	}
	if !a.Equal(b) || !b.Equal(a) {
		t.Fatal("Equal not symmetric across interning")
	}
}
