// Package val implements P2's concrete type system.
//
// A Value is a small immutable variant record used for every item of
// information that moves through the system: tuple fields, PEL operands,
// table keys. The kinds mirror the paper's description ("strings,
// integers, timestamps, and large unique identifiers") plus booleans and
// floats, which the planner needs for predicates and utility arithmetic.
//
// Values are totally ordered: first by kind, then by payload. This gives
// tables a deterministic ordering for primary keys and lets aggregates
// like min<> and max<> operate over any column.
package val

import (
	"encoding/binary"
	"fmt"
	"math"
	"strconv"

	"p2/internal/id"
)

// Kind enumerates the concrete types a Value can carry.
type Kind uint8

// The value kinds, in comparison-rank order.
const (
	KNull Kind = iota
	KBool
	KInt // signed 64-bit integer
	KFloat
	KStr
	KID   // 160-bit ring identifier
	KTime // seconds since epoch (virtual or wall)
)

var kindNames = [...]string{"null", "bool", "int", "float", "str", "id", "time"}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Value is an immutable variant. The zero Value is Null.
//
// The layout is 32 bytes: a string header, a word of numeric payload,
// and the kind tag. Identifiers do not get an inline [5]uint32 — a KID
// stores its 20 big-endian payload bytes in str, interned through the
// global symbol table. Values are the bulk of resident memory (every
// tuple field, PEL stack slot, and table key), and IDs are the most
// duplicated payload a Chord deployment holds — every node's
// identifier recurs in finger and successor rows across the ring — so
// this both shrinks the slot by a third versus an inline ID and
// collapses all copies of one identifier into one 20-byte allocation.
// Big-endian byte order makes lexicographic comparison of the payload
// strings coincide with numeric ID order, so comparisons never decode.
type Value struct {
	str  string // KStr payload; KID payload as 20 big-endian bytes (interned)
	num  uint64 // bool/int/float/time payload (bit pattern)
	kind Kind
}

// Null is the null value.
var Null = Value{}

// Bool wraps a boolean.
func Bool(b bool) Value {
	var n uint64
	if b {
		n = 1
	}
	return Value{kind: KBool, num: n}
}

// Int wraps a signed integer.
func Int(v int64) Value { return Value{kind: KInt, num: uint64(v)} }

// Float wraps a float64.
func Float(v float64) Value { return Value{kind: KFloat, num: math.Float64bits(v)} }

// Str wraps a string.
func Str(s string) Value { return Value{kind: KStr, str: s} }

// MakeID wraps a 160-bit identifier. The payload is rendered to its
// canonical 20 bytes as a fresh short-lived string — deliberately NOT
// interned: MakeID sits under the PEL VM's ID arithmetic (ring
// distances, finger targets), whose results are mostly compared and
// discarded, so interning them pays a shard probe per operation and
// floods the interner with unbounded-cardinality distances, flushing
// the durable entries it exists to share. IDs that actually persist
// are interned where they become durable instead: wire decode
// (DecodeValue) and index-key render (table side).
func MakeID(x id.ID) Value {
	var b [id.Bytes]byte
	x.PutBytes(&b)
	return Value{kind: KID, str: string(b[:])}
}

// idZeroStr is the KID payload of the zero identifier.
var idZeroStr = string(make([]byte, id.Bytes))

// Time wraps a timestamp in seconds.
func Time(sec float64) Value { return Value{kind: KTime, num: math.Float64bits(sec)} }

// Kind returns the value's kind tag.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether v is the null value.
func (v Value) IsNull() bool { return v.kind == KNull }

// AsBool returns the boolean payload; non-bool values follow truthiness
// (null and zero are false, everything else true).
func (v Value) AsBool() bool {
	switch v.kind {
	case KNull:
		return false
	case KBool, KInt:
		return v.num != 0
	case KFloat, KTime:
		return math.Float64frombits(v.num) != 0
	case KStr:
		return v.str != ""
	case KID:
		return v.str != idZeroStr
	}
	return false
}

// AsInt coerces v to a signed integer (floors floats/times, parses
// digit strings, truncates IDs to the low 64 bits).
func (v Value) AsInt() int64 {
	switch v.kind {
	case KBool:
		return int64(v.num)
	case KInt:
		return int64(v.num)
	case KFloat, KTime:
		return int64(math.Float64frombits(v.num))
	case KStr:
		n, _ := strconv.ParseInt(v.str, 10, 64)
		return n
	case KID:
		return int64(id.FromString(v.str).Uint64())
	}
	return 0
}

// AsFloat coerces v to float64.
func (v Value) AsFloat() float64 {
	switch v.kind {
	case KBool, KInt:
		return float64(int64(v.num))
	case KFloat, KTime:
		return math.Float64frombits(v.num)
	case KStr:
		f, _ := strconv.ParseFloat(v.str, 64)
		return f
	case KID:
		return float64(id.FromString(v.str).Uint64())
	}
	return 0
}

// AsStr returns the string payload, or the rendering for other kinds.
func (v Value) AsStr() string {
	if v.kind == KStr {
		return v.str
	}
	return v.String()
}

// AsID coerces v to a ring identifier: IDs pass through, integers embed
// (negative values wrap mod 2^160), hex strings parse, everything else
// is zero.
func (v Value) AsID() id.ID {
	switch v.kind {
	case KID:
		return id.FromString(v.str)
	case KInt, KBool:
		return id.FromInt64(int64(v.num))
	case KFloat, KTime:
		return id.FromInt64(int64(math.Float64frombits(v.num)))
	case KStr:
		x, err := id.Parse(v.str)
		if err != nil {
			return id.Zero
		}
		return x
	}
	return id.Zero
}

// AsTime returns the timestamp payload in seconds.
func (v Value) AsTime() float64 { return v.AsFloat() }

// Equal reports whether two values are identical in kind and payload.
func (v Value) Equal(o Value) bool { return v.Cmp(o) == 0 }

// Cmp totally orders values: by kind rank first, then payload.
// Numeric kinds (bool, int, float, time) compare against each other by
// numeric value so that Int(3) == Float(3.0); this is what joins on key
// columns expect.
func (v Value) Cmp(o Value) int {
	vn, on := v.numericRank(), o.numericRank()
	if vn && on {
		a, b := v.AsFloat(), o.AsFloat()
		// Exact integer comparison when both are integers, to avoid
		// float rounding on large int64 values.
		if v.kind == KInt && o.kind == KInt {
			ai, bi := int64(v.num), int64(o.num)
			switch {
			case ai < bi:
				return -1
			case ai > bi:
				return 1
			}
			return 0
		}
		switch {
		case a < b:
			return -1
		case a > b:
			return 1
		}
		return 0
	}
	if v.kind != o.kind {
		if v.kind < o.kind {
			return -1
		}
		return 1
	}
	switch v.kind {
	case KNull:
		return 0
	case KStr:
		switch {
		case v.str < o.str:
			return -1
		case v.str > o.str:
			return 1
		}
		return 0
	case KID:
		// Big-endian payload bytes: lexicographic == numeric order.
		switch {
		case v.str < o.str:
			return -1
		case v.str > o.str:
			return 1
		}
		return 0
	}
	return 0
}

func (v Value) numericRank() bool {
	switch v.kind {
	case KBool, KInt, KFloat, KTime:
		return true
	}
	return false
}

// String renders the value for logs and the olgc inspector.
func (v Value) String() string {
	switch v.kind {
	case KNull:
		return "null"
	case KBool:
		if v.num != 0 {
			return "true"
		}
		return "false"
	case KInt:
		return strconv.FormatInt(int64(v.num), 10)
	case KFloat:
		return strconv.FormatFloat(math.Float64frombits(v.num), 'g', -1, 64)
	case KStr:
		return v.str
	case KID:
		return "0x" + id.FromString(v.str).Short()
	case KTime:
		return strconv.FormatFloat(math.Float64frombits(v.num), 'f', 3, 64) + "s"
	}
	return "?"
}

// arithmetic -----------------------------------------------------------

// Add returns v + o with coercion: ID dominates (ring addition), then
// time, then float, then int. Strings concatenate.
func Add(v, o Value) Value {
	switch {
	case v.kind == KStr || o.kind == KStr:
		return Str(v.AsStr() + o.AsStr())
	case v.kind == KID || o.kind == KID:
		return MakeID(v.AsID().Add(o.AsID()))
	case v.kind == KTime || o.kind == KTime:
		return Time(v.AsFloat() + o.AsFloat())
	case v.kind == KFloat || o.kind == KFloat:
		return Float(v.AsFloat() + o.AsFloat())
	default:
		return Int(v.AsInt() + o.AsInt())
	}
}

// Sub returns v - o. Subtracting two timestamps yields a float duration
// in seconds, so OverLog's "f_now() - T > 20" reads naturally.
func Sub(v, o Value) Value {
	switch {
	case v.kind == KID || o.kind == KID:
		return MakeID(v.AsID().Sub(o.AsID()))
	case v.kind == KTime && o.kind == KTime:
		return Float(v.AsFloat() - o.AsFloat())
	case v.kind == KTime || o.kind == KTime:
		return Time(v.AsFloat() - o.AsFloat())
	case v.kind == KFloat || o.kind == KFloat:
		return Float(v.AsFloat() - o.AsFloat())
	default:
		return Int(v.AsInt() - o.AsInt())
	}
}

// Mul returns v * o (float if either side is float, else int).
func Mul(v, o Value) Value {
	if v.kind == KFloat || o.kind == KFloat || v.kind == KTime || o.kind == KTime {
		return Float(v.AsFloat() * o.AsFloat())
	}
	return Int(v.AsInt() * o.AsInt())
}

// Div returns v / o. Integer division by zero yields Null rather than
// panicking: a rule body that divides by zero simply fails to derive.
func Div(v, o Value) Value {
	if v.kind == KFloat || o.kind == KFloat || v.kind == KTime || o.kind == KTime {
		d := o.AsFloat()
		if d == 0 {
			return Null
		}
		return Float(v.AsFloat() / d)
	}
	d := o.AsInt()
	if d == 0 {
		return Null
	}
	return Int(v.AsInt() / d)
}

// Mod returns v % o on integers (Null on zero divisor).
func Mod(v, o Value) Value {
	d := o.AsInt()
	if d == 0 {
		return Null
	}
	return Int(v.AsInt() % d)
}

// Shl returns v << o; an ID on the left shifts on the ring, integers
// shift as int64 promoted through ID when they would overflow.
func Shl(v, o Value) Value {
	n := uint(o.AsInt())
	if v.kind == KID {
		return MakeID(id.FromString(v.str).Shl(n))
	}
	iv := v.AsInt()
	if n < 63 && iv >= 0 && iv < (1<<(62-n)) {
		return Int(iv << n)
	}
	return MakeID(v.AsID().Shl(n))
}

// Shr returns v >> o.
func Shr(v, o Value) Value {
	n := uint(o.AsInt())
	if v.kind == KID {
		return MakeID(id.FromString(v.str).Shr(n))
	}
	return Int(v.AsInt() >> n)
}

// Neg returns -v.
func Neg(v Value) Value {
	switch v.kind {
	case KFloat, KTime:
		return Float(-v.AsFloat())
	case KID:
		return MakeID(id.Zero.Sub(v.AsID()))
	default:
		return Int(-v.AsInt())
	}
}

// In evaluates circular-interval membership "k in <lo,hi>" with the
// given bound closedness. If any operand is an ID the test is performed
// on the 2^160 ring (integers embed); otherwise operands embed through
// their integer value, which for ordinary positive ints matches linear
// interval logic whenever lo <= hi.
func In(k, lo, hi Value, loClosed, hiClosed bool) bool {
	kk, ll, hh := k.AsID(), lo.AsID(), hi.AsID()
	switch {
	case loClosed && hiClosed:
		return id.BetweenCC(kk, ll, hh)
	case loClosed:
		return id.BetweenCO(kk, ll, hh)
	case hiClosed:
		return id.BetweenOC(kk, ll, hh)
	default:
		return id.BetweenOO(kk, ll, hh)
	}
}

// codec -----------------------------------------------------------------

// AppendBinary appends the canonical binary encoding of v to dst:
// a kind byte followed by a fixed or length-prefixed payload.
func (v Value) AppendBinary(dst []byte) []byte {
	dst = append(dst, byte(v.kind))
	switch v.kind {
	case KNull:
	case KBool:
		dst = append(dst, byte(v.num&1))
	case KInt, KFloat, KTime:
		var b [8]byte
		binary.BigEndian.PutUint64(b[:], v.num)
		dst = append(dst, b[:]...)
	case KStr:
		var b [4]byte
		binary.BigEndian.PutUint32(b[:], uint32(len(v.str)))
		dst = append(dst, b[:]...)
		dst = append(dst, v.str...)
	case KID:
		dst = append(dst, v.str...)
	}
	return dst
}

// EncodedSize returns the number of bytes AppendBinary will produce.
func (v Value) EncodedSize() int {
	switch v.kind {
	case KNull:
		return 1
	case KBool:
		return 2
	case KInt, KFloat, KTime:
		return 9
	case KStr:
		return 5 + len(v.str)
	case KID:
		return 1 + id.Bytes
	}
	return 1
}

// DecodeValue decodes one value from b, returning the value and the
// number of bytes consumed.
func DecodeValue(b []byte) (Value, int, error) {
	if len(b) == 0 {
		return Null, 0, fmt.Errorf("val: empty buffer")
	}
	k := Kind(b[0])
	rest := b[1:]
	switch k {
	case KNull:
		return Null, 1, nil
	case KBool:
		if len(rest) < 1 {
			return Null, 0, fmt.Errorf("val: truncated bool")
		}
		return Bool(rest[0] != 0), 2, nil
	case KInt, KFloat, KTime:
		if len(rest) < 8 {
			return Null, 0, fmt.Errorf("val: truncated %v", k)
		}
		n := binary.BigEndian.Uint64(rest)
		return Value{kind: k, num: n}, 9, nil
	case KStr:
		if len(rest) < 4 {
			return Null, 0, fmt.Errorf("val: truncated string header")
		}
		n := int(binary.BigEndian.Uint32(rest))
		if len(rest) < 4+n {
			return Null, 0, fmt.Errorf("val: truncated string body")
		}
		// Decoded strings intern: the wire re-delivers the same
		// addresses and identifiers endlessly, and rows built from
		// received tuples would otherwise each hold a private copy.
		return Str(InternBytes(rest[4 : 4+n])), 5 + n, nil
	case KID:
		if len(rest) < id.Bytes {
			return Null, 0, fmt.Errorf("val: truncated id")
		}
		// The payload bytes are already canonical big-endian: intern them
		// directly, with no decode/re-encode round trip.
		return Value{kind: KID, str: InternBytes(rest[:id.Bytes])}, 1 + id.Bytes, nil
	}
	return Null, 0, fmt.Errorf("val: unknown kind %d", b[0])
}
