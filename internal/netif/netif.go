// Package netif defines the datagram interface between P2's transport
// elements and an underlying network. Two implementations exist:
// internal/simnet (a discrete-event simulated network used by the
// evaluation harness) and internal/udpnet (real UDP sockets for actual
// deployment). The transport layer above provides reliability and
// congestion control; Network itself is lossy and unordered, like UDP.
package netif

// DeliverFunc receives an inbound datagram. Implementations invoke it
// on the node's event loop, never concurrently with other handlers.
type DeliverFunc func(from string, payload []byte)

// Network attaches named endpoints and moves datagrams between them.
type Network interface {
	// Attach registers addr and its delivery callback, returning the
	// endpoint used to send. Attaching an address twice is an error.
	Attach(addr string, deliver DeliverFunc) (Endpoint, error)
}

// Endpoint sends best-effort datagrams from one attached address.
type Endpoint interface {
	// Send transmits payload toward to. Delivery is not guaranteed.
	Send(to string, payload []byte)
	// LocalAddr returns the address this endpoint was attached as.
	LocalAddr() string
	// MTU returns the largest payload (in bytes) a single datagram
	// should carry — the budget the transport's batching element packs
	// tuples against. A non-positive value means "unknown"; callers
	// fall back to DefaultMTU.
	MTU() int
	// Close detaches the endpoint; subsequent sends are dropped.
	Close()
}

// DefaultMTU is the datagram payload budget assumed when an endpoint
// reports no MTU: 1500-byte Ethernet minus IPv4 + UDP headers.
const DefaultMTU = 1472
