package netif

import (
	"hash/fnv"
	"math/rand"
	"sync"
)

// Datagram-level fault injection. WithFaults wraps any Network in an
// adversarial layer that drops, duplicates, reorders, and corrupts
// outbound datagrams under seeded per-endpoint randomness, and consults
// a deployment-shared FaultPlane for partitions and runtime-adjustable
// rates. The layer sits below the transport's element chain, so the
// Retry/Ack/Dedup/skip machinery is exercised under exactly the
// conditions it exists for — on a real UDP network as well as in
// simulation.

// FaultConfig seeds the injector. Rates are per-datagram probabilities;
// a zero config injects nothing (but still enforces partitions).
type FaultConfig struct {
	Seed         int64   // per-endpoint streams derive from (Seed, addr)
	DropRate     float64 // datagram vanishes
	DupRate      float64 // datagram sent twice
	ReorderRate  float64 // datagram held back ReorderDelay, letting later traffic pass
	ReorderDelay float64 // seconds a reordered datagram is held (0: DefaultReorderDelay)
	CorruptRate  float64 // a few bytes of the payload are flipped
}

// DefaultReorderDelay is the hold-back a zero ReorderDelay resolves to.
const DefaultReorderDelay = 0.05

// FaultStats counts injected faults across a plane.
type FaultStats struct {
	Dropped    int64
	Duplicated int64
	Reordered  int64
	Corrupted  int64
	Cut        int64 // datagrams discarded by an active partition
}

// FaultPlane is the shared fault controller of one deployment: every
// wrapped endpoint consults it on each send. Partitions and rate
// changes apply to all nodes at once, which is what gives a UDP
// deployment a working Deployment.Partition. Safe for concurrent use —
// UDP nodes send from their own event-loop goroutines.
type FaultPlane struct {
	mu           sync.Mutex
	cfg          FaultConfig
	cuts         map[string]bool // "a|b", a < b lexically
	extraLatency float64
	stats        FaultStats
}

// NewFaultPlane builds a plane injecting per cfg.
func NewFaultPlane(cfg FaultConfig) *FaultPlane {
	if cfg.ReorderDelay <= 0 {
		cfg.ReorderDelay = DefaultReorderDelay
	}
	return &FaultPlane{cfg: cfg, cuts: make(map[string]bool)}
}

// Partition cuts or heals bidirectional connectivity between a and b.
func (p *FaultPlane) Partition(a, b string, cut bool) {
	if a > b {
		a, b = b, a
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if cut {
		p.cuts[a+"|"+b] = true
	} else {
		delete(p.cuts, a+"|"+b)
	}
}

// SetDropRate changes the datagram loss probability at runtime — the
// loss-burst fault knob.
func (p *FaultPlane) SetDropRate(rate float64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if rate < 0 {
		rate = 0
	}
	p.cfg.DropRate = rate
}

// SetExtraLatency delays every datagram by secs (clamped at 0) — the
// latency-spike fault knob.
func (p *FaultPlane) SetExtraLatency(secs float64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if secs < 0 {
		secs = 0
	}
	p.extraLatency = secs
}

// Stats returns a copy of the fault counters.
func (p *FaultPlane) Stats() FaultStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// verdict is one send's fate, decided under the plane lock in a single
// draw sequence so per-endpoint streams stay reproducible.
type verdict struct {
	cut     bool
	drop    bool
	dup     bool
	corrupt bool
	delay   float64 // extra latency plus any reorder hold-back
}

func (p *FaultPlane) judge(rng *rand.Rand, from, to string) verdict {
	a, b := from, to
	if a > b {
		a, b = b, a
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	var v verdict
	if p.cuts[a+"|"+b] {
		p.stats.Cut++
		v.cut = true
		return v
	}
	v.delay = p.extraLatency
	if p.cfg.DropRate > 0 && rng.Float64() < p.cfg.DropRate {
		p.stats.Dropped++
		v.drop = true
		return v
	}
	if p.cfg.CorruptRate > 0 && rng.Float64() < p.cfg.CorruptRate {
		p.stats.Corrupted++
		v.corrupt = true
	}
	if p.cfg.DupRate > 0 && rng.Float64() < p.cfg.DupRate {
		p.stats.Duplicated++
		v.dup = true
	}
	if p.cfg.ReorderRate > 0 && rng.Float64() < p.cfg.ReorderRate {
		p.stats.Reordered++
		v.delay += p.cfg.ReorderDelay
	}
	return v
}

// DelayFunc schedules fn after d seconds on the endpoint's event loop.
// Implementations are called from within Send, i.e. on the loop itself.
type DelayFunc func(d float64, fn func())

// faultNet wraps a Network so every attached endpoint injects faults.
type faultNet struct {
	inner Network
	plane *FaultPlane
	delay DelayFunc
}

// WithFaults wraps inner so every endpoint it attaches runs sends
// through plane's injector. delay schedules held-back datagrams
// (reordering, latency spikes) on the node's event loop; nil disables
// delay-based faults (reordered datagrams ship immediately).
func WithFaults(inner Network, plane *FaultPlane, delay DelayFunc) Network {
	return &faultNet{inner: inner, plane: plane, delay: delay}
}

func (f *faultNet) Attach(addr string, deliver DeliverFunc) (Endpoint, error) {
	ep, err := f.inner.Attach(addr, deliver)
	if err != nil {
		return nil, err
	}
	h := fnv.New64a()
	h.Write([]byte(addr))
	return &faultEndpoint{
		inner: ep,
		net:   f,
		rng:   rand.New(rand.NewSource(f.plane.cfg.Seed ^ int64(h.Sum64()))),
	}, nil
}

// faultEndpoint decides each datagram's fate under the endpoint's
// private seeded stream. Send runs on the owning node's event loop, so
// the rng needs no lock.
type faultEndpoint struct {
	inner Endpoint
	net   *faultNet
	rng   *rand.Rand
}

func (e *faultEndpoint) Send(to string, payload []byte) {
	v := e.net.plane.judge(e.rng, e.inner.LocalAddr(), to)
	if v.cut || v.drop {
		return
	}
	p := payload
	if v.corrupt {
		p = append([]byte(nil), payload...)
		flips := 1 + e.rng.Intn(3)
		for i := 0; i < flips && len(p) > 0; i++ {
			p[e.rng.Intn(len(p))] ^= byte(1 + e.rng.Intn(255))
		}
	}
	send := func() {
		e.inner.Send(to, p)
		if v.dup {
			e.inner.Send(to, p)
		}
	}
	if v.delay > 0 && e.net.delay != nil {
		if !v.corrupt {
			// Senders may reuse payload buffers after Send returns, so a
			// held-back datagram must own its bytes (the corrupt path
			// already copied).
			p = append([]byte(nil), payload...)
		}
		e.net.delay(v.delay, send)
		return
	}
	send()
}

func (e *faultEndpoint) LocalAddr() string { return e.inner.LocalAddr() }
func (e *faultEndpoint) MTU() int          { return e.inner.MTU() }
func (e *faultEndpoint) Close()            { e.inner.Close() }
