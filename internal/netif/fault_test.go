package netif

import (
	"testing"
)

// memNet is a trivial in-process Network: sends deliver synchronously.
type memNet struct {
	eps map[string]*memEndpoint
}

type memEndpoint struct {
	net     *memNet
	addr    string
	deliver DeliverFunc
	closed  bool
}

func newMemNet() *memNet { return &memNet{eps: make(map[string]*memEndpoint)} }

func (m *memNet) Attach(addr string, deliver DeliverFunc) (Endpoint, error) {
	ep := &memEndpoint{net: m, addr: addr, deliver: deliver}
	m.eps[addr] = ep
	return ep, nil
}

func (e *memEndpoint) Send(to string, payload []byte) {
	if dst, ok := e.net.eps[to]; ok && !dst.closed {
		p := append([]byte(nil), payload...)
		dst.deliver(e.addr, p)
	}
}
func (e *memEndpoint) LocalAddr() string { return e.addr }
func (e *memEndpoint) MTU() int          { return DefaultMTU }
func (e *memEndpoint) Close()            { e.closed = true }

func attachPair(t *testing.T, net Network) (Endpoint, *[][]byte) {
	t.Helper()
	var got [][]byte
	if _, err := net.Attach("b", func(from string, p []byte) { got = append(got, p) }); err != nil {
		t.Fatal(err)
	}
	a, err := net.Attach("a", func(string, []byte) {})
	if err != nil {
		t.Fatal(err)
	}
	return a, &got
}

func TestFaultPlanePartition(t *testing.T) {
	plane := NewFaultPlane(FaultConfig{Seed: 1})
	a, got := attachPair(t, WithFaults(newMemNet(), plane, nil))

	a.Send("b", []byte{1})
	plane.Partition("a", "b", true)
	a.Send("b", []byte{2})
	a.Send("b", []byte{3})
	plane.Partition("a", "b", false)
	a.Send("b", []byte{4})

	if len(*got) != 2 || (*got)[0][0] != 1 || (*got)[1][0] != 4 {
		t.Fatalf("partition not enforced: got %v", *got)
	}
	if plane.Stats().Cut != 2 {
		t.Fatalf("cut counter = %d, want 2", plane.Stats().Cut)
	}
}

func TestFaultDropAndDupRates(t *testing.T) {
	plane := NewFaultPlane(FaultConfig{Seed: 7, DropRate: 0.5})
	a, got := attachPair(t, WithFaults(newMemNet(), plane, nil))
	const n = 1000
	for i := 0; i < n; i++ {
		a.Send("b", []byte{byte(i)})
	}
	st := plane.Stats()
	if st.Dropped == 0 || len(*got)+int(st.Dropped) != n {
		t.Fatalf("drops unaccounted: delivered=%d dropped=%d", len(*got), st.Dropped)
	}
	if len(*got) < n/3 || len(*got) > 2*n/3 {
		t.Fatalf("0.5 drop rate delivered %d of %d", len(*got), n)
	}

	plane.SetDropRate(0)
	plane2 := NewFaultPlane(FaultConfig{Seed: 7, DupRate: 1})
	a2, got2 := attachPair(t, WithFaults(newMemNet(), plane2, nil))
	a2.Send("b", []byte{9})
	if len(*got2) != 2 {
		t.Fatalf("DupRate=1 delivered %d copies, want 2", len(*got2))
	}
}

func TestFaultCorruptCopiesPayload(t *testing.T) {
	plane := NewFaultPlane(FaultConfig{Seed: 3, CorruptRate: 1})
	a, got := attachPair(t, WithFaults(newMemNet(), plane, nil))
	orig := []byte{10, 20, 30, 40}
	keep := append([]byte(nil), orig...)
	a.Send("b", orig)
	if len(*got) != 1 {
		t.Fatalf("delivered %d", len(*got))
	}
	same := true
	for i, b := range (*got)[0] {
		if b != keep[i] {
			same = false
		}
	}
	if same {
		t.Fatal("CorruptRate=1 delivered an unmodified payload")
	}
	for i, b := range orig {
		if b != keep[i] {
			t.Fatal("corruption mutated the caller's buffer")
		}
	}
}

func TestFaultReorderDelaysViaScheduler(t *testing.T) {
	plane := NewFaultPlane(FaultConfig{Seed: 5, ReorderRate: 1, ReorderDelay: 0.01})
	var held []func()
	delay := func(d float64, fn func()) {
		if d <= 0 {
			t.Fatalf("delay %v", d)
		}
		held = append(held, fn)
	}
	a, got := attachPair(t, WithFaults(newMemNet(), plane, delay))
	a.Send("b", []byte{1})
	if len(*got) != 0 {
		t.Fatal("reordered datagram shipped immediately")
	}
	if len(held) != 1 {
		t.Fatalf("scheduler held %d datagrams", len(held))
	}
	held[0]()
	if len(*got) != 1 || (*got)[0][0] != 1 {
		t.Fatalf("held datagram lost: %v", *got)
	}
	if plane.Stats().Reordered != 1 {
		t.Fatalf("stats: %+v", plane.Stats())
	}
}

// TestFaultStreamsAreSeeded: two planes with the same seed judge the
// same send sequence identically; a different seed diverges.
func TestFaultStreamsAreSeeded(t *testing.T) {
	run := func(seed int64) []int {
		plane := NewFaultPlane(FaultConfig{Seed: seed, DropRate: 0.5})
		a, got := attachPair(t, WithFaults(newMemNet(), plane, nil))
		var pattern []int
		for i := 0; i < 100; i++ {
			before := len(*got)
			a.Send("b", []byte{byte(i)})
			if len(*got) > before {
				pattern = append(pattern, i)
			}
		}
		return pattern
	}
	a1, a2, b1 := run(42), run(42), run(43)
	if len(a1) != len(a2) {
		t.Fatalf("same seed diverged: %d vs %d deliveries", len(a1), len(a2))
	}
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Fatalf("same seed diverged at %d", i)
		}
	}
	if len(b1) == len(a1) {
		same := true
		for i := range b1 {
			if b1[i] != a1[i] {
				same = false
			}
		}
		if same {
			t.Fatal("different seeds produced identical fault patterns")
		}
	}
}
