package netif_test

// Contract tests for the netif.Network interface, run against both
// implementations: the discrete-event simulator (simnet) and real UDP
// sockets (udpnet). Everything above netif — transport, engine — is
// identical between simulation and deployment, so the two networks
// must agree on attach/send/close semantics.

import (
	"testing"
	"time"

	"p2/internal/eventloop"
	"p2/internal/netif"
	"p2/internal/simnet"
	"p2/internal/udpnet"
)

// delivery is one received datagram.
type delivery struct {
	from    string
	payload string
}

func TestSimnetContract(t *testing.T) {
	loop := eventloop.NewSim()
	cfg := simnet.DefaultConfig()
	cfg.Domains = 1
	var net netif.Network = simnet.New(loop, cfg)

	var got []delivery
	epA, err := net.Attach("a", func(from string, payload []byte) {
		got = append(got, delivery{from, string(payload)})
	})
	if err != nil {
		t.Fatal(err)
	}
	epB, err := net.Attach("b", func(string, []byte) {})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.Attach("a", func(string, []byte) {}); err == nil {
		t.Fatal("duplicate attach must fail")
	}
	if epA.LocalAddr() != "a" || epB.LocalAddr() != "b" {
		t.Fatalf("local addrs = %s, %s", epA.LocalAddr(), epB.LocalAddr())
	}

	epB.Send("a", []byte("hello"))
	loop.Run(5)
	if len(got) != 1 || got[0].from != "b" || got[0].payload != "hello" {
		t.Fatalf("got %v", got)
	}

	// After Close, inbound datagrams stop.
	epA.Close()
	epB.Send("a", []byte("late"))
	loop.Run(10)
	if len(got) != 1 {
		t.Fatalf("delivery after close: %v", got)
	}
}

func TestUDPNetContract(t *testing.T) {
	addrA, err := udpnet.ReserveAddr()
	if err != nil {
		t.Skipf("no loopback UDP: %v", err)
	}
	addrB, err := udpnet.ReserveAddr()
	if err != nil {
		t.Skipf("no loopback UDP: %v", err)
	}

	loop := eventloop.NewReal()
	go loop.Run()
	defer loop.Stop()
	var net netif.Network = udpnet.New(loop)

	inbox := make(chan delivery, 16)
	epA, err := net.Attach(addrA, func(from string, payload []byte) {
		inbox <- delivery{from, string(payload)}
	})
	if err != nil {
		t.Fatal(err)
	}
	defer epA.Close()
	epB, err := net.Attach(addrB, func(string, []byte) {})
	if err != nil {
		t.Fatal(err)
	}
	defer epB.Close()
	if _, err := net.Attach(addrA, func(string, []byte) {}); err == nil {
		t.Fatal("duplicate attach must fail")
	}
	if epA.LocalAddr() != addrA {
		t.Fatalf("local addr = %s, want %s", epA.LocalAddr(), addrA)
	}

	// UDP is lossy even on loopback; retry until the reader delivers.
	deadline := time.After(5 * time.Second)
	for {
		epB.Send(addrA, []byte("hello"))
		select {
		case d := <-inbox:
			if d.from != addrB || d.payload != "hello" {
				t.Fatalf("got %+v", d)
			}
			return
		case <-time.After(100 * time.Millisecond):
		case <-deadline:
			t.Fatal("datagram never delivered")
		}
	}
}
