package planner

import (
	"strings"
	"testing"

	"p2/internal/dataflow"
	"p2/internal/overlog"
	"p2/internal/table"
	"p2/internal/val"
)

func compile(t *testing.T, src string) *Plan {
	t.Helper()
	prog, err := overlog.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	plan, err := Compile(prog, nil)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return plan
}

func compileErr(t *testing.T, src string, wantSub string) {
	t.Helper()
	prog, err := overlog.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	_, err = Compile(prog, nil)
	if err == nil {
		t.Fatalf("expected compile error containing %q", wantSub)
	}
	if !strings.Contains(err.Error(), wantSub) {
		t.Fatalf("error %q does not contain %q", err.Error(), wantSub)
	}
}

func TestTableSpecs(t *testing.T) {
	p := compile(t, `
		materialize(neighbor, 120, infinity, keys(2)).
		materialize(sequence, infinity, 1, keys(2)).
	`)
	nb := p.Tables["neighbor"]
	if nb.TTL != 120 || nb.MaxSize != 0 || len(nb.Keys) != 1 || nb.Keys[0] != 1 {
		t.Fatalf("neighbor spec = %+v", nb)
	}
	seq := p.Tables["sequence"]
	if seq.TTL != table.Infinity || seq.MaxSize != 1 {
		t.Fatalf("sequence spec = %+v", seq)
	}
	if !p.IsTable("neighbor") || p.IsTable("lookup") {
		t.Fatal("IsTable wrong")
	}
}

func TestDuplicateMaterializeFails(t *testing.T) {
	compileErr(t, `
		materialize(t, 10, 10, keys(1)).
		materialize(t, 20, 20, keys(1)).
	`, "materialized twice")
}

func TestPeriodicTrigger(t *testing.T) {
	p := compile(t, `R1 refreshEvent@X(X, E) :- periodic@X(X, E, 3).`)
	if len(p.Rules) != 1 {
		t.Fatal("rule count")
	}
	r := p.Rules[0]
	if r.Trigger.Kind != TrigPeriodic || r.Trigger.Period != 3 || r.Trigger.Count != 0 {
		t.Fatalf("trigger = %+v", r.Trigger)
	}
	if r.Trigger.Arity != 3 {
		t.Fatalf("arity = %d", r.Trigger.Arity)
	}
	if len(r.HeadProgs) != 2 || r.Materialized {
		t.Fatalf("head = %+v", r)
	}
}

func TestPeriodicOneShotWithCount(t *testing.T) {
	p := compile(t, `S0 seed@X(X) :- periodic@X(X, E, 0, 1).`)
	tr := p.Rules[0].Trigger
	if tr.Period != 0 || tr.Count != 1 || tr.Arity != 4 {
		t.Fatalf("trigger = %+v", tr)
	}
}

func TestPeriodicWithDefine(t *testing.T) {
	p := compile(t, `
		define(tFix, 10).
		F1 fFixEvent@NI(NI, E) :- periodic@NI(NI, E, tFix).
	`)
	if p.Rules[0].Trigger.Period != 10 {
		t.Fatalf("period = %v", p.Rules[0].Trigger.Period)
	}
}

func TestProgrammaticDefineOverrides(t *testing.T) {
	prog := overlog.MustParse(`
		define(tFix, 10).
		F1 e@NI(NI) :- periodic@NI(NI, E, tFix).
	`)
	plan, err := Compile(prog, map[string]val.Value{"tFix": val.Int(99)})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Rules[0].Trigger.Period != 99 {
		t.Fatalf("override failed: %v", plan.Rules[0].Trigger.Period)
	}
}

func TestStreamTriggerWithJoin(t *testing.T) {
	p := compile(t, `
		materialize(sequence, infinity, 1, keys(2)).
		R2 refreshSeq@X(X, NewSeq) :- refreshEvent@X(X), sequence@X(X, Seq),
			NewSeq := Seq + 1.
	`)
	r := p.Rules[0]
	if r.Trigger.Kind != TrigStream || r.Trigger.Name != "refreshEvent" {
		t.Fatalf("trigger = %+v", r.Trigger)
	}
	if len(r.Ops) != 2 {
		t.Fatalf("ops = %+v", r.Ops)
	}
	join, ok := r.Ops[0].(*OpJoin)
	if !ok || join.Table != "sequence" || join.StreamKey[0] != 0 || join.TableKey[0] != 0 {
		t.Fatalf("join = %+v", r.Ops[0])
	}
	if _, ok := r.Ops[1].(*OpAssign); !ok {
		t.Fatalf("assign = %+v", r.Ops[1])
	}
}

func TestDeltaTrigger(t *testing.T) {
	// succEvent fires on succ table insertions.
	p := compile(t, `
		materialize(succ, 30, 16, keys(2)).
		N1 succEvent@NI(NI, S, SI) :- succ@NI(NI, S, SI).
	`)
	r := p.Rules[0]
	if r.Trigger.Kind != TrigDelta || r.Trigger.Name != "succ" {
		t.Fatalf("trigger = %+v", r.Trigger)
	}
}

func TestTableAggRule(t *testing.T) {
	p := compile(t, `
		materialize(succDist, 30, 100, keys(2)).
		N3 bestSuccDist@NI(NI, min<D>) :- succDist@NI(NI, S, D).
	`)
	if len(p.Rules) != 0 || len(p.TableAggs) != 1 {
		t.Fatalf("classification wrong: %d rules, %d aggs", len(p.Rules), len(p.TableAggs))
	}
	ta := p.TableAggs[0]
	if ta.Table != "succDist" || ta.Fn != dataflow.AggMin || ta.AggPos != 2 {
		t.Fatalf("tableagg = %+v", ta)
	}
	if len(ta.GroupPos) != 1 || ta.GroupPos[0] != 0 {
		t.Fatalf("groups = %v", ta.GroupPos)
	}
	if len(ta.HeadProgs) != 2 {
		t.Fatalf("head progs = %d", len(ta.HeadProgs))
	}
}

func TestTableAggCountStar(t *testing.T) {
	p := compile(t, `
		materialize(succ, 30, 16, keys(2)).
		S1 succCount@NI(NI, count<*>) :- succ@NI(NI, S, SI).
	`)
	ta := p.TableAggs[0]
	if ta.Fn != dataflow.AggCount {
		t.Fatalf("fn = %v", ta.Fn)
	}
}

func TestStreamAggExemplar(t *testing.T) {
	p := compile(t, `
		materialize(finger, 180, 160, keys(2)).
		materialize(node, infinity, 1, keys(1)).
		L2 bestLookupDist@NI(NI,K,R,E,min<D>) :- node@NI(NI,N),
			lookup@NI(NI,K,R,E), finger@NI(NI,I,B,BI), D := K - B - 1,
			B in (N,K).
	`)
	r := p.Rules[0]
	if r.Trigger.Name != "lookup" {
		t.Fatalf("event should be the stream: %+v", r.Trigger)
	}
	if r.Agg == nil || r.Agg.Fn != dataflow.AggMin {
		t.Fatalf("agg = %+v", r.Agg)
	}
	// Working layout: lookup(NI,K,R,E)=0..3, node join adds 4..5,
	// finger join adds 6..9, D assigned at 10.
	if r.Agg.AggPos != 10 {
		t.Fatalf("agg pos = %d", r.Agg.AggPos)
	}
	if len(r.HeadProgs) != 5 {
		t.Fatalf("head progs = %d", len(r.HeadProgs))
	}
}

func TestStreamAggCountEventBound(t *testing.T) {
	p := compile(t, `
		materialize(member, 120, infinity, keys(2)).
		R5 membersFound@X(X, A, AS, AL, count<*>) :-
			refresh@X(X, Y, YS, A, AS, AL), member@X(X, A, MS, MT, ML), X != A.
	`)
	r := p.Rules[0]
	if r.Agg == nil || r.Agg.Fn != dataflow.AggCount || r.Agg.AggPos != -1 {
		t.Fatalf("agg = %+v", r.Agg)
	}
}

func TestStreamAggCountNonEventBoundFails(t *testing.T) {
	compileErr(t, `
		materialize(member, 120, infinity, keys(2)).
		BAD out@X(X, M, count<*>) :- evt@X(X), member@X(X, M).
	`, "not bound by the event")
}

func TestNegationCompilesToAntijoin(t *testing.T) {
	p := compile(t, `
		materialize(member, 120, infinity, keys(2)).
		R out@X(X, A) :- evt@X(X, A), not member@X(X, A).
	`)
	join := p.Rules[0].Ops[0].(*OpJoin)
	if !join.Neg {
		t.Fatalf("expected antijoin: %+v", join)
	}
}

func TestLiteralInBodyAtomExtendsKey(t *testing.T) {
	p := compile(t, `
		materialize(env, infinity, infinity, keys(2,3)).
		E0 neighbor@X(X, Y) :- periodic@X(X, E, 0, 1), env@X(X, "neighbor", Y).
	`)
	r := p.Rules[0]
	var sawAssign, sawJoin bool
	for _, op := range r.Ops {
		switch o := op.(type) {
		case *OpAssign:
			sawAssign = true
		case *OpJoin:
			sawJoin = true
			if len(o.StreamKey) != 2 || len(o.TableKey) != 2 {
				t.Fatalf("join keys = %+v", o)
			}
		}
	}
	if !sawAssign || !sawJoin {
		t.Fatalf("ops = %+v", r.Ops)
	}
}

func TestRangeGenerator(t *testing.T) {
	p := compile(t, `
		F1 fFix@NI(NI, E, I) :- periodic@NI(NI, E, 10), range(I, 0, 159).
	`)
	r := p.Rules[0]
	found := false
	for _, op := range r.Ops {
		if _, ok := op.(*OpRange); ok {
			found = true
		}
	}
	if !found {
		t.Fatalf("no OpRange in ops = %+v", r.Ops)
	}
}

func TestDeleteRule(t *testing.T) {
	p := compile(t, `
		materialize(neighbor, 120, infinity, keys(2)).
		L3 delete neighbor@X(X, Y) :- deadNeighbor@X(X, Y).
	`)
	if !p.Rules[0].Delete || !p.Rules[0].Materialized {
		t.Fatalf("rule = %+v", p.Rules[0])
	}
}

func TestDeleteOfStreamFails(t *testing.T) {
	compileErr(t, `BAD delete foo@X(X) :- bar@X(X).`, "not a materialized table")
}

func TestMultiStreamBodyFails(t *testing.T) {
	compileErr(t, `BAD out@X(X) :- ping@X(X), pong@X(X).`, "two event streams")
}

func TestMultiNodeBodyFails(t *testing.T) {
	compileErr(t, `
		materialize(member, 120, infinity, keys(2)).
		R4 member@Y(Y, A) :- refreshSeq@X(X, S), member@Y(Y, A).
	`, "multi-node rule body")
}

func TestUnboundVariableFails(t *testing.T) {
	compileErr(t, `BAD out@X(X, Z) :- evt@X(X).`, "unbound variable Z")
}

func TestUndefinedConstantFails(t *testing.T) {
	compileErr(t, `BAD out@X(X, C) :- evt@X(X), C := mystery + 1.`, "undefined constant")
}

func TestArityMismatchFails(t *testing.T) {
	compileErr(t, `
		A out@X(X) :- evt@X(X).
		B out@X(X, Y) :- evt2@X(X, Y).
	`, "arity")
}

func TestHeadLocationMustBeFirstArg(t *testing.T) {
	compileErr(t, `BAD out@Y(X, Y) :- evt@X(X, Y).`, "first head argument")
}

func TestCartesianProductFails(t *testing.T) {
	compileErr(t, `
		materialize(other, 10, 10, keys(1)).
		BAD out@X(X) :- evt@X(X), other@Z(Z).
	`, "multi-node")
}

func TestAggregatedHeadLocation(t *testing.T) {
	// L3: the destination is the aggregate result itself.
	p := compile(t, `
		materialize(finger, 180, 160, keys(2)).
		materialize(node, infinity, 1, keys(1)).
		L3 lookup@BI(min<BI>,K,R,E) :- node@NI(NI,N),
			bestLookupDist@NI(NI,K,R,E,D), finger@NI(NI,I,B,BI),
			D == K - B - 1, B in (N,K).
	`)
	r := p.Rules[0]
	if r.Agg == nil || r.Agg.Fn != dataflow.AggMin {
		t.Fatalf("agg = %+v", r.Agg)
	}
	if r.HeadName != "lookup" || len(r.HeadProgs) != 4 {
		t.Fatalf("head = %+v", r)
	}
}

func TestFactCompilation(t *testing.T) {
	p := compile(t, `
		materialize(landmark, infinity, 1, keys(1)).
		materialize(pred, infinity, 100, keys(1)).
		SB0 pred@NI(NI, "-", "-").
		L0 landmark@NI(NI, "n0:p2").
	`)
	if len(p.Facts) != 2 {
		t.Fatalf("facts = %d", len(p.Facts))
	}
	f := p.Facts[0]
	if !f.Args[0].Local || f.Args[1].Local {
		t.Fatalf("fact args = %+v", f.Args)
	}
	fields := f.Tuple("n5:p2")
	if fields[0].AsStr() != "n5:p2" || fields[1].AsStr() != "-" {
		t.Fatalf("fact tuple = %v", fields)
	}
}

func TestRepeatedBoundVarGeneratesSelect(t *testing.T) {
	// succ@NI(NI, N, NI): the third field must equal the first.
	p := compile(t, `
		materialize(node, infinity, 1, keys(1)).
		C3 succ@NI(NI, N, NI) :- joinEvent@NI(NI, E), node@NI(NI, N).
	`)
	r := p.Rules[0]
	if len(r.HeadProgs) != 3 {
		t.Fatalf("head progs = %d", len(r.HeadProgs))
	}
}

func TestPlanStringDump(t *testing.T) {
	p := compile(t, `
		materialize(succ, 30, 16, keys(2)).
		materialize(succDist, 30, 100, keys(2)).
		N1 succEvent@NI(NI, S, SI) :- succ@NI(NI, S, SI).
		N3 bestSuccDist@NI(NI, min<D>) :- succDist@NI(NI, S, D).
		SB1 stabilize@NI(NI, E) :- periodic@NI(NI, E, 15).
		SB0 pred@NI(NI).
	`)
	dump := p.String()
	for _, want := range []string{"table succ", "rule N1", "tableagg N3", "periodic", "fact pred/1"} {
		if !strings.Contains(dump, want) {
			t.Errorf("plan dump missing %q:\n%s", want, dump)
		}
	}
	if p.RuleCount() != 3 {
		t.Fatalf("rule count = %d", p.RuleCount())
	}
}

func TestChordLookupRulesCompile(t *testing.T) {
	// The full lookup rule set from Section 4 compiles end to end.
	p := compile(t, `
		materialize(node, infinity, 1, keys(1)).
		materialize(finger, 180, 160, keys(2)).
		materialize(bestSucc, infinity, 1, keys(1)).
		L1 lookupResults@R(R,K,S,SI,E) :- node@NI(NI,N), lookup@NI(NI,K,R,E),
			bestSucc@NI(NI,S,SI), K in (N,S].
		L2 bestLookupDist@NI(NI,K,R,E,min<D>) :- node@NI(NI,N),
			lookup@NI(NI,K,R,E), finger@NI(NI,I,B,BI), D := K - B - 1, B in (N,K).
		L3 lookup@BI(min<BI>,K,R,E) :- node@NI(NI,N),
			bestLookupDist@NI(NI,K,R,E,D), finger@NI(NI,I,B,BI),
			D == K - B - 1, B in (N,K).
	`)
	if len(p.Rules) != 3 {
		t.Fatalf("rules = %d", len(p.Rules))
	}
	// L1 and L2 share the lookup trigger.
	if p.Rules[0].Trigger.Name != "lookup" || p.Rules[1].Trigger.Name != "lookup" {
		t.Fatal("L1/L2 must trigger on lookup")
	}
	if p.Rules[2].Trigger.Name != "bestLookupDist" {
		t.Fatal("L3 must trigger on bestLookupDist")
	}
}

func TestMustCompilePanicsOnBadProgram(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustCompile(overlog.MustParse(`BAD out@X(X, Z) :- evt@X(X).`), nil)
}
