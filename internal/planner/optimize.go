package planner

import (
	"p2/internal/overlog"
)

// The cost-based optimizer. Optimize rewrites a compiled plan's rule
// strands under a simple nested-loop cost model: selections are pushed
// past joins so fused filters run as early as their variables allow,
// and (where equivalence permits) body atoms are greedily reordered
// smallest-estimated-fan-out first. Both transformations are realized
// by recompiling the parsed rule (Rule.Src) under a permuted body
// order — the compiler's variable-environment machinery re-derives
// every working-tuple position, join key, and head projection, so an
// optimized strand is correct by construction, not by patching.
//
// Equivalence discipline. Each rule is classified before any rewrite:
//
//   - frozen: the body or head draws randomness (f_rand, f_coinFlip).
//     Any transformation changes how many draws happen or their order,
//     so these rules are left exactly as compiled.
//   - pushdown-only: reordering atoms could change observable behavior
//     — negated atoms (an existential's meaning depends on what is
//     bound before it), sum/avg stream aggregates (float accumulation
//     is visit-order-sensitive), min/max aggregates whose head projects
//     a non-event-bound field (exemplar ties leak visit order), and
//     rules that read a table their own head writes synchronously
//     (directly or through a chain of materialized table aggregates —
//     this covers self-reading deletes, whose removals land inline
//     during the probe walk). min/max aggregates with event-bound
//     heads reorder freely: the value is a pure function of the
//     binding multiset, and ties project identically. Selections
//     always float up: a filter never reorders the nested-loop
//     enumeration, so the surviving tuples and their order are
//     untouched.
//   - full: everything else. Join order changes only the enumeration
//     order of the result set, never its multiset, and the planner
//     rejects cartesian products in any order it would reject
//     textually.

// ruleMode classifies how aggressively one rule may be transformed.
type ruleMode int

const (
	modeFrozen ruleMode = iota
	modePushdown
	modeFull
)

// Per-term cost constants: abstract "tuple touches". Only relative
// magnitudes matter, and only within a single rule.
const (
	costSelect = 0.25 // fused filter evaluation
	costAssign = 0.5  // PEL eval + working-tuple extension
)

// Optimize returns a copy of p whose rules have been re-planned
// against st (nil means the catalog heuristics). Rules the equivalence
// analysis freezes — and rules without source ASTs — are shared with
// the input plan untouched; every rule the optimizer does touch is
// recompiled into a fresh, single-node-private object carrying its
// cost basis, even when the chosen order matches the textual one, so
// the adaptive re-planner can later adjust it without racing other
// nodes. Rule IDs are preserved: sysRule and sysPlan counters keyed on
// them survive optimization and every subsequent replan.
func Optimize(p *Plan, st Stats, cfg OptimizerConfig) *Plan {
	if st == nil {
		st = NewCatalogStats(p)
	}
	out := p.clone()
	for i, r := range out.Rules {
		if nr := out.OptimizeRule(r, st, cfg); nr != nil {
			out.Rules[i] = nr
		}
	}
	return out
}

// OptimizeRule re-plans a single rule, returning the recompiled
// replacement (same ID) or nil when the rule is frozen, source-less,
// or fails to recompile. The engine uses this for rules installed at
// runtime through Extend.
func (p *Plan) OptimizeRule(r *Rule, st Stats, cfg OptimizerConfig) *Rule {
	order, cost, basis, fold, ok := p.planRule(r, st, &cfg)
	if !ok {
		return nil
	}
	nr, isAgg, err := p.compileRuleWith(r.Src, order, fold)
	if err != nil || isAgg || nr == nil {
		return nil
	}
	nr.ID = r.ID
	nr.CostEst = cost
	nr.CostBasis = basis
	return nr
}

// Reoptimize re-costs one rule against fresh statistics. When the
// chosen order differs from the rule's current one it returns a
// recompiled replacement (same ID) and true; otherwise it refreshes
// the rule's cost basis in place — the rule is node-private, see
// Optimize — and returns it unchanged.
func (p *Plan) Reoptimize(r *Rule, st Stats, cfg OptimizerConfig) (*Rule, bool) {
	order, cost, basis, fold, ok := p.planRule(r, st, &cfg)
	if !ok {
		return r, false
	}
	if intsEqual(order, r.Order) {
		r.CostEst = cost
		r.CostBasis = basis
		return r, false
	}
	nr, isAgg, err := p.compileRuleWith(r.Src, order, fold)
	if err != nil || isAgg || nr == nil {
		return r, false
	}
	nr.ID = r.ID
	nr.CostEst = cost
	nr.CostBasis = basis
	return nr, true
}

// planRule chooses a body order for r. ok is false when the rule must
// not be touched (frozen, no source, or the greedy search bailed).
// fold is true when the rule is additionally eligible for the
// aggregate-into-join fusion: fully reorderable (so the aggregate is
// already known order-insensitive with an event-bound head) and
// carrying a head aggregate — tryFold validates the structural shape.
func (p *Plan) planRule(r *Rule, st Stats, cfg *OptimizerConfig) (order []int, cost float64, basis map[string]float64, fold, ok bool) {
	if r.Src == nil {
		return nil, 0, nil, false, false
	}
	c := &ruleCtx{plan: p, rule: r.Src, env: make(map[string]int)}
	event, rest, _, isAgg, err := c.classify()
	if err != nil || isAgg {
		return nil, 0, nil, false, false
	}
	infos := p.termInfos(rest)
	bound := make(map[string]bool)
	for _, a := range event.Args {
		if v, isVar := p.resolve(a).(*overlog.VarRef); isVar {
			bound[v.Name] = true
		}
	}
	mode := p.ruleMode(r.Src, r.Materialized || r.Delete, bound)
	if mode == modeFrozen {
		return nil, 0, nil, false, false
	}
	if mode == modeFull && !cfg.NoFold {
		for _, a := range r.Src.Head.Args {
			if _, isAgg := a.(*overlog.AggRef); isAgg {
				fold = true
			}
		}
	}

	switch {
	case mode == modeFull && !cfg.NoReorder:
		order, ok = greedyOrder(infos, bound, st, cfg)
	case cfg.NoPushdown:
		order, ok = identityOrder(len(infos)), true
	default:
		order, ok = pushdownOrder(infos, bound), true
	}
	if !ok {
		return nil, 0, nil, false, false
	}
	cost = p.costOrder(infos, order, bound, st)
	basis = make(map[string]float64)
	for _, ti := range infos {
		if ti.kind == termJoin || ti.kind == termAntiJoin {
			basis[ti.table] = st.Cardinality(ti.table)
		}
	}
	return order, cost, basis, fold, true
}

// ruleMode classifies r; headWrites reports whether the head inserts
// into (or deletes from) a materialized table. eventBound is the set of
// variables the trigger event binds — it decides whether an exemplar
// aggregate's output can depend on visit order.
func (p *Plan) ruleMode(r *overlog.Rule, headWrites bool, eventBound map[string]bool) ruleMode {
	if ruleImpure(r) {
		return modeFrozen
	}
	full := true
	for _, t := range r.Body {
		if a, isAtom := t.(*overlog.Atom); isAtom && a.Neg {
			full = false
		}
	}
	for _, a := range r.Head.Args {
		ar, isAgg := a.(*overlog.AggRef)
		if !isAgg || ar.Fn == "count" {
			continue
		}
		// min and max are pure functions of the binding multiset, so a
		// reorder cannot change the aggregate value itself. What CAN
		// leak visit order is the exemplar: the head projects from the
		// winning working tuple, and a tie between rows that differ in
		// some other projected field picks whichever was visited first.
		// When every non-aggregate head argument is event-bound (or a
		// constant), all candidate working tuples project identically
		// and the tie is invisible — reorder freely. sum and avg stay
		// pinned: float accumulation order is observable.
		if ar.Fn != "min" && ar.Fn != "max" || !headEventBound(p, r, eventBound) {
			full = false
		}
	}
	if full && headWrites {
		// A body atom reading a table the head writes synchronously
		// (itself, or anything reachable through materialized
		// table-aggregate recomputation) sees mid-enumeration effects;
		// reordering would change which probes observe them. This pins
		// self-reading delete rules too — deletes land inline during
		// the probe walk.
		closure := p.syncWrites(r.Head.Name)
		for _, t := range r.Body {
			if a, isAtom := t.(*overlog.Atom); isAtom && closure[a.Name] {
				full = false
			}
		}
	}
	if full {
		return modeFull
	}
	return modePushdown
}

// headEventBound reports whether every non-aggregate head argument is a
// variable the event binds or a constant — the condition under which an
// exemplar aggregate's head tuple is independent of which tied row won.
func headEventBound(p *Plan, r *overlog.Rule, eventBound map[string]bool) bool {
	for _, a := range r.Head.Args {
		if _, isAgg := a.(*overlog.AggRef); isAgg {
			continue
		}
		switch e := p.resolve(a).(type) {
		case *overlog.VarRef:
			if !eventBound[e.Name] {
				return false
			}
		case *overlog.Lit:
		default:
			return false
		}
	}
	return true
}

// syncWrites returns the set of tables written synchronously when a
// tuple lands in head: head itself, expanded transitively through
// materialized table-aggregate heads, whose recomputation listeners
// run inline with the triggering insert or delete.
func (p *Plan) syncWrites(head string) map[string]bool {
	out := make(map[string]bool)
	var grow func(name string)
	grow = func(name string) {
		if out[name] {
			return
		}
		out[name] = true
		for _, ta := range p.TableAggs {
			if ta.Table == name && ta.Materialized {
				grow(ta.HeadName)
			}
		}
	}
	grow(head)
	return out
}

// ruleImpure reports whether any expression in the rule draws
// randomness. f_now, f_localAddr, and the hash functions are pure
// within a strand run (the clock is frozen while a strand executes);
// f_rand and f_coinFlip consume rng state per evaluation, so even
// moving a filter changes the draw sequence.
func ruleImpure(r *overlog.Rule) bool {
	for _, a := range r.Head.Args {
		if exprImpure(a) {
			return true
		}
	}
	for _, t := range r.Body {
		switch term := t.(type) {
		case *overlog.Assign:
			if exprImpure(term.Expr) {
				return true
			}
		case *overlog.Cond:
			if exprImpure(term.Expr) {
				return true
			}
		case *overlog.Atom:
			for _, a := range term.Args {
				if exprImpure(a) {
					return true
				}
			}
		}
	}
	return false
}

func exprImpure(e overlog.Expr) bool {
	switch x := e.(type) {
	case *overlog.Call:
		if x.Name == "f_rand" || x.Name == "f_coinFlip" {
			return true
		}
		for _, a := range x.Args {
			if exprImpure(a) {
				return true
			}
		}
	case *overlog.Unary:
		return exprImpure(x.X)
	case *overlog.Binary:
		return exprImpure(x.X) || exprImpure(x.Y)
	case *overlog.RangeTest:
		return exprImpure(x.K) || exprImpure(x.Lo) || exprImpure(x.Hi)
	}
	return false
}

// termKind classifies one non-event body term for ordering.
type termKind int

const (
	termCond termKind = iota
	termAssign
	termJoin
	termAntiJoin
	termRange
)

// atomArg is one resolved argument of a body atom.
type atomArg struct {
	varName string // "" for literals and wildcards
	isLit   bool
}

// termInfo is the ordering-relevant shape of one body term.
type termInfo struct {
	idx   int
	kind  termKind
	table string    // joins only
	args  []atomArg // joins only; atom-relative
	deps  []string  // variables that must be bound first
	defs  []string  // variables this term binds
}

// termInfos extracts ordering metadata from the textual rest terms.
func (p *Plan) termInfos(rest []overlog.Term) []termInfo {
	infos := make([]termInfo, 0, len(rest))
	for i, t := range rest {
		ti := termInfo{idx: i}
		switch term := t.(type) {
		case *overlog.Cond:
			ti.kind = termCond
			ti.deps = exprVarNames(term.Expr, nil)
		case *overlog.Assign:
			ti.kind = termAssign
			ti.deps = exprVarNames(term.Expr, nil)
			ti.defs = []string{term.Var}
		case *overlog.Atom:
			if term.Name == "range" {
				ti.kind = termRange
				if len(term.Args) == 3 {
					ti.deps = exprVarNames(term.Args[1], nil)
					ti.deps = exprVarNames(term.Args[2], ti.deps)
					if v, isVar := p.resolve(term.Args[0]).(*overlog.VarRef); isVar {
						ti.defs = []string{v.Name}
					}
				}
				break
			}
			ti.kind = termJoin
			if term.Neg {
				ti.kind = termAntiJoin
			}
			ti.table = term.Name
			seen := make(map[string]bool)
			for _, raw := range term.Args {
				switch arg := p.resolve(raw).(type) {
				case *overlog.VarRef:
					ti.args = append(ti.args, atomArg{varName: arg.Name})
					if ti.kind == termJoin && !seen[arg.Name] {
						seen[arg.Name] = true
						ti.defs = append(ti.defs, arg.Name)
					}
				case *overlog.Lit:
					ti.args = append(ti.args, atomArg{isLit: true})
				default:
					ti.args = append(ti.args, atomArg{})
				}
			}
		}
		infos = append(infos, ti)
	}
	return infos
}

func exprVarNames(e overlog.Expr, into []string) []string {
	switch x := e.(type) {
	case *overlog.VarRef:
		return append(into, x.Name)
	case *overlog.Unary:
		return exprVarNames(x.X, into)
	case *overlog.Binary:
		return exprVarNames(x.Y, exprVarNames(x.X, into))
	case *overlog.RangeTest:
		return exprVarNames(x.Hi, exprVarNames(x.Lo, exprVarNames(x.K, into)))
	case *overlog.Call:
		for _, a := range x.Args {
			into = exprVarNames(a, into)
		}
	}
	return into
}

func depsBound(deps []string, bound map[string]bool) bool {
	for _, d := range deps {
		if !bound[d] {
			return false
		}
	}
	return true
}

// joinKey returns the atom-relative positions that are bound (or
// literal) under the current bound set — the index key a join placed
// here would probe with.
func (ti *termInfo) joinKey(bound map[string]bool) []int {
	var key []int
	for i, a := range ti.args {
		if a.isLit || (a.varName != "" && bound[a.varName]) {
			key = append(key, i)
		}
	}
	return key
}

// fanout estimates the per-probe output multiplicity of placing the
// join here: live rows divided by the distinct values of the probed
// key columns.
func (ti *termInfo) fanout(bound map[string]bool, st Stats) float64 {
	key := ti.joinKey(bound)
	card := st.Cardinality(ti.table)
	d := st.DistinctKeys(ti.table, key)
	if d < 1 {
		d = 1
	}
	return card / d
}

func identityOrder(n int) []int {
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	return order
}

// pushdownOrder keeps non-selection terms textual and floats each
// selection to the earliest point where its variables are bound. A
// filter never changes what a nested-loop enumeration produces or in
// what order, so this is safe in every non-frozen mode.
func pushdownOrder(infos []termInfo, boundInit map[string]bool) []int {
	bound := copyBound(boundInit)
	order := make([]int, 0, len(infos))
	placed := make([]bool, len(infos))
	placeConds := func() {
		for j := range infos {
			if !placed[j] && infos[j].kind == termCond && depsBound(infos[j].deps, bound) {
				placed[j] = true
				order = append(order, j)
			}
		}
	}
	for i := range infos {
		if infos[i].kind == termCond {
			continue
		}
		placeConds()
		placed[i] = true
		order = append(order, i)
		for _, d := range infos[i].defs {
			bound[d] = true
		}
	}
	placeConds()
	for i := range infos { // conds whose deps never bind cannot exist in a compiled rule
		if !placed[i] {
			order = append(order, i)
		}
	}
	return order
}

// greedyOrder picks terms one at a time: any runnable selection first
// (filter as early as possible), then the runnable join with the
// smallest estimated fan-out, then range generators, and assignments
// dead last. Assignments never filter, so running one earlier than
// strictly necessary only multiplies work: on overlay steady-state
// traffic most probes find nothing, and an assignment hoisted above
// such a join executes per event instead of (almost) never. Deferring
// them still unblocks dependent terms — when nothing else is runnable
// the earliest runnable assignment is placed, which re-eligibilizes
// whatever needed its variable. Ties break on textual position, which
// keeps the choice deterministic for identical stats — the property
// sharded determinism rests on.
func greedyOrder(infos []termInfo, boundInit map[string]bool, st Stats, cfg *OptimizerConfig) ([]int, bool) {
	bound := copyBound(boundInit)
	order := make([]int, 0, len(infos))
	placed := make([]bool, len(infos))
	condEligible := func(i int) bool {
		if !depsBound(infos[i].deps, bound) {
			return false
		}
		if !cfg.NoPushdown {
			return true
		}
		// Pushdown disabled: a selection may not overtake any term that
		// textually precedes it.
		for j := 0; j < i; j++ {
			if !placed[j] {
				return false
			}
		}
		return true
	}
	for len(order) < len(infos) {
		pick := -1
		for i := range infos { // selections, textual order
			if !placed[i] && infos[i].kind == termCond && condEligible(i) {
				pick = i
				break
			}
		}
		if pick < 0 {
			best := -1.0
			for i := range infos { // joins, min fan-out
				if placed[i] || infos[i].kind != termJoin {
					continue
				}
				if len(infos[i].joinKey(bound)) == 0 {
					continue // would be a cartesian product here
				}
				f := infos[i].fanout(bound, st)
				if pick < 0 || f < best {
					pick, best = i, f
				}
			}
		}
		if pick < 0 {
			for i := range infos { // ranges, textual order
				if !placed[i] && infos[i].kind == termRange && depsBound(infos[i].deps, bound) {
					pick = i
					break
				}
			}
		}
		if pick < 0 {
			for i := range infos { // assignments, last resort
				if !placed[i] && infos[i].kind == termAssign && depsBound(infos[i].deps, bound) {
					pick = i
					break
				}
			}
		}
		if pick < 0 {
			return nil, false // no runnable term; keep the textual plan
		}
		placed[pick] = true
		order = append(order, pick)
		for _, d := range infos[pick].defs {
			bound[d] = true
		}
	}
	return order, true
}

// costOrder runs the cost model over a chosen order: cost accumulates
// tuple touches, multiplicity multiplies through join fan-outs and
// range expansions. Antijoins and selections filter (modeled as
// multiplicity-preserving — conservative, since real selectivity is
// unknown).
func (p *Plan) costOrder(infos []termInfo, order []int, boundInit map[string]bool, st Stats) float64 {
	bound := copyBound(boundInit)
	tuples, cost := 1.0, 0.0
	for _, i := range order {
		ti := &infos[i]
		switch ti.kind {
		case termCond:
			cost += tuples * costSelect
		case termAssign:
			cost += tuples * costAssign
		case termJoin:
			f := ti.fanout(bound, st)
			cost += tuples     // probes
			cost += tuples * f // rows examined
			tuples *= f
		case termAntiJoin:
			cost += tuples
		case termRange:
			tuples *= catalogRangeFanout
			cost += tuples
		}
		for _, d := range ti.defs {
			bound[d] = true
		}
	}
	return cost
}

func copyBound(m map[string]bool) map[string]bool {
	out := make(map[string]bool, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

func intsEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// ShareKind classifies whether a strand's leading probe can share its
// raw match set with other strands on the same trigger: the strand's
// first positive join must be preceded only by selections (which pass
// the event tuple through untouched), and the strand must not write
// the probed table synchronously while it runs.
func (p *Plan) ShareableJoin(r *Rule) (joinIndex int, ok bool) {
	for i, op := range r.Ops {
		switch o := op.(type) {
		case *OpSelect:
			continue
		case *OpJoin:
			if o.Neg {
				return 0, false
			}
			if p.syncWrites(r.HeadName)[o.Table] && (r.Materialized || r.Delete) {
				return 0, false
			}
			return i, true
		default:
			return 0, false
		}
	}
	return 0, false
}
