package planner

import (
	"fmt"

	"p2/internal/introspect"
	"p2/internal/overlog"
	"p2/internal/val"
)

// Delta lists what an Extend added relative to its base plan — exactly
// the pieces the engine must instantiate to graft the new program into
// a live dataflow.
type Delta struct {
	Tables    []*TableSpec
	Rules     []*Rule
	TableAggs []*TableAggRule
	Facts     []*FactSpec
	Watches   []string
}

// Extend compiles prog in the context of base: its rules may join any
// table base already declares — including the sys* system tables — and
// may declare new tables of their own. base is not mutated; the result
// is a new Plan sharing base's compiled rules plus the delta, which is
// also returned separately. This is the compiler half of runtime rule
// installation (the paper's §3.5 vision of monitoring queries "written
// in OverLog themselves" and added to a running node).
//
// Re-declaring a table base already has follows Merge semantics: the
// declaration must be identical, and the table is shared. Defines from
// prog must agree with base's; extra overrides both, as in Compile.
func Extend(base *Plan, prog *overlog.Program, extra map[string]val.Value) (*Plan, *Delta, error) {
	for _, m := range prog.Materialize {
		if introspect.IsReserved(m.Name) {
			return nil, nil, fmt.Errorf("planner: table name %s is reserved for system tables (the %q prefix belongs to the runtime)", m.Name, introspect.ReservedPrefix)
		}
	}
	// Merge performs the cross-program consistency checks (shared tables
	// declared identically, defines agreeing) and keeps Source accurate.
	merged, err := overlog.Merge(base.Source, prog)
	if err != nil {
		return nil, nil, err
	}

	p := base.clone()
	p.Source = merged
	delta := &Delta{}

	for _, d := range prog.Defines {
		if _, ok := p.Defines[d.Name]; !ok {
			p.Defines[d.Name] = d.Value
		}
	}
	for k, v := range extra {
		p.Defines[k] = v
	}

	for _, m := range prog.Materialize {
		if _, shared := p.Tables[m.Name]; shared {
			continue // identical re-declaration, verified by Merge
		}
		spec := specFromMaterialize(m)
		p.Tables[m.Name] = spec
		delta.Tables = append(delta.Tables, spec)
	}

	if err := p.inferArities(prog); err != nil {
		return nil, nil, err
	}

	for _, f := range prog.Facts {
		spec, err := p.compileFact(f)
		if err != nil {
			return nil, nil, err
		}
		p.Facts = append(p.Facts, spec)
		delta.Facts = append(delta.Facts, spec)
	}

	baseRules, baseAggs := len(p.Rules), len(p.TableAggs)
	for _, r := range prog.Rules {
		if err := p.compileRule(r); err != nil {
			return nil, nil, err
		}
	}
	taken := make(map[string]bool, baseRules+baseAggs)
	for _, r := range p.Rules[:baseRules] {
		taken[r.ID] = true
	}
	for _, ta := range p.TableAggs[:baseAggs] {
		taken[ta.ID] = true
	}
	p.ensureRuleIDs(baseRules, baseAggs, taken)
	delta.Rules = p.Rules[baseRules:]
	delta.TableAggs = p.TableAggs[baseAggs:]

	seenWatch := make(map[string]bool, len(p.Watches))
	for _, w := range p.Watches {
		seenWatch[w] = true
	}
	for _, w := range prog.Watches {
		if !seenWatch[w] {
			seenWatch[w] = true
			p.Watches = append(p.Watches, w)
			delta.Watches = append(delta.Watches, w)
		}
	}
	return p, delta, nil
}

// clone returns a copy of p whose maps and slices can grow without
// touching p — compiled rules, specs, and facts are shared by pointer,
// never mutated.
func (p *Plan) clone() *Plan {
	c := &Plan{
		Source:    p.Source,
		Tables:    make(map[string]*TableSpec, len(p.Tables)),
		Rules:     append([]*Rule(nil), p.Rules...),
		TableAggs: append([]*TableAggRule(nil), p.TableAggs...),
		Facts:     append([]*FactSpec(nil), p.Facts...),
		Watches:   append([]string(nil), p.Watches...),
		Defines:   make(map[string]val.Value, len(p.Defines)),
		Arities:   make(map[string]int, len(p.Arities)),
	}
	for k, v := range p.Tables {
		c.Tables[k] = v
	}
	for k, v := range p.Defines {
		c.Defines[k] = v
	}
	for k, v := range p.Arities {
		c.Arities[k] = v
	}
	return c
}
