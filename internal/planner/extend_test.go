package planner

import (
	"strings"
	"testing"

	"p2/internal/introspect"
	"p2/internal/overlog"
	"p2/internal/val"
)

func parse(t *testing.T, src string) *overlog.Program {
	t.Helper()
	prog, err := overlog.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return prog
}

const extendBase = `
	materialize(link, infinity, infinity, keys(1,2)).
	L1 linkEvent@N(N, D) :- link@N(N, D).
`

func TestCompileRegistersSystemTables(t *testing.T) {
	p := MustCompile(parse(t, extendBase), nil)
	for _, d := range introspect.Defs() {
		spec, ok := p.Tables[d.Name]
		if !ok || !spec.System {
			t.Fatalf("plan missing system table %s", d.Name)
		}
		if p.Arities[d.Name] != d.Arity {
			t.Fatalf("%s arity = %d, want %d", d.Name, p.Arities[d.Name], d.Arity)
		}
	}
	// Rules may join system tables out of the box.
	if _, err := Compile(parse(t,
		"R1 out@N(N, C) :- sysTable@N(N, T, C, I, D, R)."), nil); err != nil {
		t.Fatalf("join against sysTable: %v", err)
	}
	// Wrong arity against a system table is caught.
	if _, err := Compile(parse(t,
		"R1 out@N(N) :- sysTable@N(N, T)."), nil); err == nil || !strings.Contains(err.Error(), "arity") {
		t.Fatalf("err = %v, want arity error", err)
	}
	// Reserved names cannot be materialized.
	if _, err := Compile(parse(t, "materialize(sysFoo, 1, 1, keys(1))."), nil); err == nil {
		t.Fatal("reserved materialize must fail")
	}
	// ... nor written by rule heads, delete rules, or facts: the
	// runtime owns the sys* namespace.
	for _, src := range []string{
		`S1 sysTable@N(N, "fake", 100, 0, 0, 0) :- periodic@N(N, E, 1).`,
		`S2 delete sysRule@N(N, R, F) :- sysRule@N(N, R, F).`,
		`sysNode@X(X, 0, 0, 0).`,
	} {
		if _, err := Compile(parse(t, src), nil); err == nil ||
			!strings.Contains(err.Error(), "read-only") {
			t.Errorf("%s: err = %v, want read-only violation", src, err)
		}
	}
}

func TestExtendAddsWithoutMutatingBase(t *testing.T) {
	base := MustCompile(parse(t, extendBase), nil)
	baseRules, baseTables := len(base.Rules), len(base.Tables)

	ext, delta, err := Extend(base, parse(t, `
		materialize(deg, infinity, 1, keys(1)).
		watch(deg).
		D1 deg@N(N, count<*>) :- link@N(N, D).
	`), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(base.Rules) != baseRules || len(base.Tables) != baseTables || len(base.Watches) != 0 {
		t.Fatal("Extend mutated the base plan")
	}
	if len(delta.Tables) != 1 || delta.Tables[0].Name != "deg" {
		t.Fatalf("delta tables = %v", delta.Tables)
	}
	if len(delta.TableAggs) != 1 || len(delta.Rules) != 0 {
		t.Fatalf("delta rules/aggs = %d/%d", len(delta.Rules), len(delta.TableAggs))
	}
	if len(delta.Watches) != 1 || delta.Watches[0] != "deg" {
		t.Fatalf("delta watches = %v", delta.Watches)
	}
	if !ext.IsTable("deg") || !ext.IsTable("link") {
		t.Fatal("extended plan missing tables")
	}
	if ext.RuleCount() != base.RuleCount()+1 {
		t.Fatalf("rule count = %d", ext.RuleCount())
	}
}

func TestExtendConflicts(t *testing.T) {
	base := MustCompile(parse(t, extendBase+"define(k, 5).\n"), nil)
	for _, tc := range []struct{ name, src string }{
		{"tableConflict", "materialize(link, 9, 9, keys(1))."},
		{"defineConflict", "define(k, 6)."},
		{"arityConflict", "A1 out@N(N) :- link@N(N)."},
		{"reserved", "materialize(sysBar, 1, 1, keys(1))."},
		{"unknownRelationJoin", "A2 out@N(N, X) :- linkEvent@N(N, D), ghost@N(N, X)."},
	} {
		if _, _, err := Extend(base, parse(t, tc.src), nil); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
	// Identical re-declarations are shared, not duplicated.
	ext, delta, err := Extend(base, parse(t, "materialize(link, infinity, infinity, keys(1,2))."), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(delta.Tables) != 0 || len(ext.Tables) != len(base.Tables) {
		t.Fatal("shared table duplicated")
	}
}

func TestExtendKeepsRuleIDsUnique(t *testing.T) {
	base := MustCompile(parse(t, extendBase), nil)
	ext, delta, err := Extend(base, parse(t, `
		L1 other@N(N, D) :- link@N(N, D).
		copy@N(N, D) :- link@N(N, D).
	`), nil)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, r := range ext.Rules {
		if r.ID == "" || seen[r.ID] {
			t.Fatalf("duplicate or empty rule ID %q", r.ID)
		}
		seen[r.ID] = true
	}
	if delta.Rules[0].ID == "L1" {
		t.Fatal("installed rule shadowed base rule L1")
	}
}

func TestExtendResolvesNewDefines(t *testing.T) {
	base := MustCompile(parse(t, extendBase), nil)
	ext, _, err := Extend(base, parse(t, `
		define(thresh, 3).
		T1 big@N(N, D) :- linkEvent@N(N, D), D > thresh.
	`), map[string]val.Value{"thresh": val.Int(7)})
	if err != nil {
		t.Fatal(err)
	}
	if !ext.Defines["thresh"].Equal(val.Int(7)) {
		t.Fatalf("extra define did not override: %v", ext.Defines["thresh"])
	}
}
