// Package planner compiles parsed OverLog programs into executable
// plans: table schemas, per-rule dataflow strand specifications, facts,
// and watches (§3.5). The engine instantiates one dataflow graph per
// node from a Plan.
//
// Compilation follows the paper's translation: each rule becomes a
// strand headed by its event (the body's unique stream predicate, a
// periodic timer, or a table delta), followed by equijoins against
// materialized tables via index lookups, PEL-compiled selections and
// assignments, an optional per-event aggregate, and a projection that
// constructs the head tuple. Rules whose body is a lone table with an
// aggregate head compile to continuous table aggregates instead.
//
// The planner enforces the restrictions the paper states for its 2005
// implementation: rule bodies must be collocated (one location variable)
// and joins are stream×table only; multi-stream bodies are rejected with
// a pointer to the Appendix A rewrite style.
package planner

import (
	"fmt"
	"strings"

	"p2/internal/dataflow"
	"p2/internal/overlog"
	"p2/internal/pel"
	"p2/internal/table"
	"p2/internal/val"
)

// Plan is a compiled OverLog program, independent of any particular
// node: the engine instantiates it per node address.
type Plan struct {
	Source    *overlog.Program
	Tables    map[string]*TableSpec
	Rules     []*Rule
	TableAggs []*TableAggRule
	Facts     []*FactSpec
	Watches   []string
	Defines   map[string]val.Value
	// Arities records the inferred arity of every relation.
	Arities map[string]int
}

// TableSpec describes one materialized relation.
type TableSpec struct {
	Name    string
	TTL     float64 // seconds; table.Infinity when unbounded
	MaxSize int     // 0 = unbounded
	Keys    []int   // 0-based primary key positions
	// System marks a runtime-owned introspection relation (sysTable,
	// sysRule, ...). The engine instantiates these with a lifetime
	// derived from its refresh interval rather than this spec's TTL.
	System bool
}

// NewTable instantiates the spec as a concrete table on the given clock.
func (ts *TableSpec) NewTable(clock interface{ Now() float64 }) *table.Table {
	return table.New(ts.Name, ts.TTL, ts.MaxSize, ts.Keys, clock)
}

// TriggerKind classifies what fires a rule strand.
type TriggerKind int

// The trigger kinds.
const (
	TrigPeriodic TriggerKind = iota // built-in periodic() timer
	TrigStream                      // arrival of a named event tuple
	TrigDelta                       // insertion delta on a materialized table
)

func (k TriggerKind) String() string {
	switch k {
	case TrigPeriodic:
		return "periodic"
	case TrigStream:
		return "stream"
	case TrigDelta:
		return "delta"
	}
	return "?"
}

// Trigger describes a rule's event source.
type Trigger struct {
	Kind   TriggerKind
	Name   string // stream or table name ("periodic" for timers)
	Period float64
	Count  int64 // periodic firings; 0 = unlimited
	Arity  int
	// Extra holds the literal values of periodic() arguments beyond
	// (address, eventID); the engine emits them in the trigger tuple.
	Extra []val.Value
}

// Op is one step in a rule strand.
type Op interface{ op() }

// OpJoin probes a table with keys drawn from the working tuple. Neg
// makes it an antijoin (the "not" prefix).
type OpJoin struct {
	Table     string
	StreamKey []int
	TableKey  []int
	Neg       bool
}

// OpSelect filters the working tuple through a boolean PEL program.
type OpSelect struct {
	Prog *pel.Program
}

// OpAssign appends one computed field to the working tuple.
type OpAssign struct {
	Prog *pel.Program
}

// OpRange appends an iteration variable ranging over [Lo, Hi],
// duplicating the working tuple per value — the range(I, lo, hi)
// generator predicate.
type OpRange struct {
	Lo, Hi *pel.Program
}

// OpFoldJoin is the rule's final join fused with its per-event
// aggregate — produced only by the optimizer, and only when the fusion
// is invisible in the derived tuples (see dataflow.FoldJoin). Filters
// and the aggregate Input evaluate over the virtual concatenation
// stream++match; no working tuple is materialized per match. A rule
// whose Ops end in an OpFoldJoin emits through the fold's Flush, and
// its HeadProgs use the event++aggregate layout (as count/sum/avg
// always do).
type OpFoldJoin struct {
	Table     string
	StreamKey []int
	TableKey  []int
	Filters   []*pel.Program
	Input     *pel.Program // nil for count<*>
	Fn        dataflow.AggFunc
}

func (*OpJoin) op()     {}
func (*OpSelect) op()   {}
func (*OpAssign) op()   {}
func (*OpRange) op()    {}
func (*OpFoldJoin) op() {}

// StreamAgg describes a per-event head aggregate.
type StreamAgg struct {
	Fn     dataflow.AggFunc
	AggPos int // working-tuple position of the aggregated field; -1 for count<*>
}

// Rule is a compiled strand specification.
type Rule struct {
	ID       string
	HeadName string
	Delete   bool
	Trigger  Trigger
	Ops      []Op
	Agg      *StreamAgg
	// HeadProgs construct the head tuple. Their input layout is the
	// final working tuple; for count/sum/avg aggregates it is the event
	// tuple with the aggregate appended (see dataflow.AggStream).
	HeadProgs []*pel.Program
	// Materialized reports whether the head relation is a table.
	Materialized bool

	// Src is the parsed rule this strand was compiled from. The
	// optimizer recompiles it under different body orders; nil (rules
	// constructed programmatically) disables optimization.
	Src *overlog.Rule
	// Order is the optimizer-chosen visit order of the non-event body
	// terms, as indices into their textual sequence. Nil means the
	// naive textual order.
	Order []int
	// CostEst is the cost-model estimate of the chosen order (abstract
	// tuple-touch units; comparable only within one rule).
	CostEst float64
	// CostBasis records the per-relation cardinality each joined table
	// was costed with, so the adaptive re-planner can detect drift.
	// Non-nil exactly when the rule went through the optimizer — such
	// rules are private to one node and safe to re-plan in place.
	CostBasis map[string]float64

	// orderStr memoizes OrderString. Order is immutable once set, and
	// rules with a non-nil Order are node-private, so the lazy fill is
	// single-threaded.
	orderStr string
}

// OrderString renders the optimizer-chosen body order ("0,2,1"), or
// "-" for the naive textual order. This is the sysPlan Order column;
// the introspection refresh calls it per strand per tick, hence the
// memo.
func (r *Rule) OrderString() string {
	if len(r.Order) == 0 {
		return "-"
	}
	if r.orderStr == "" {
		var sb strings.Builder
		for i, o := range r.Order {
			if i > 0 {
				sb.WriteByte(',')
			}
			fmt.Fprintf(&sb, "%d", o)
		}
		r.orderStr = sb.String()
	}
	return r.orderStr
}

// TableAggRule is a continuous aggregate over a single table.
type TableAggRule struct {
	ID           string
	Table        string
	Fn           dataflow.AggFunc
	GroupPos     []int // positions in the stored tuple
	AggPos       int
	HeadName     string
	HeadProgs    []*pel.Program // input layout: group fields ++ aggregate
	Materialized bool
}

// FactArg is either a constant or the local-address placeholder (fact
// variables denote "this node").
type FactArg struct {
	Local bool
	Value val.Value
}

// FactSpec is one startup tuple.
type FactSpec struct {
	Name string
	Args []FactArg
}

// Tuple materializes the fact for a node with the given address.
func (f *FactSpec) Tuple(addr string) []val.Value {
	fields := make([]val.Value, len(f.Args))
	for i, a := range f.Args {
		if a.Local {
			fields[i] = val.Str(addr)
		} else {
			fields[i] = a.Value
		}
	}
	return fields
}

// IsTable reports whether name is materialized in this plan.
func (p *Plan) IsTable(name string) bool {
	_, ok := p.Tables[name]
	return ok
}

// RuleCount returns the number of rules compiled (strands plus table
// aggregates) — the paper's complexity metric counts these identically.
func (p *Plan) RuleCount() int { return len(p.Rules) + len(p.TableAggs) }

// String renders a human-readable plan dump for the olgc inspector.
func (p *Plan) String() string {
	var sb strings.Builder
	for _, ts := range sortedTables(p.Tables) {
		fmt.Fprintf(&sb, "table %s ttl=%g max=%d keys=%v\n", ts.Name, ts.TTL, ts.MaxSize, ts.Keys)
	}
	for _, r := range p.Rules {
		fmt.Fprintf(&sb, "rule %s: on %s(%s", r.ID, r.Trigger.Kind, r.Trigger.Name)
		if r.Trigger.Kind == TrigPeriodic {
			fmt.Fprintf(&sb, " every %gs", r.Trigger.Period)
		}
		sb.WriteString(")")
		for _, op := range r.Ops {
			switch o := op.(type) {
			case *OpJoin:
				neg := ""
				if o.Neg {
					neg = "anti"
				}
				fmt.Fprintf(&sb, " -> %sjoin %s%v=%v", neg, o.Table, o.StreamKey, o.TableKey)
			case *OpSelect:
				fmt.Fprintf(&sb, " -> select[%s]", o.Prog)
			case *OpAssign:
				fmt.Fprintf(&sb, " -> assign[%s]", o.Prog)
			case *OpRange:
				fmt.Fprintf(&sb, " -> range[%s..%s]", o.Lo, o.Hi)
			case *OpFoldJoin:
				fmt.Fprintf(&sb, " -> foldjoin %s%v=%v", o.Table, o.StreamKey, o.TableKey)
				for _, f := range o.Filters {
					fmt.Fprintf(&sb, " where[%s]", f)
				}
				fmt.Fprintf(&sb, " %s", o.Fn)
			}
		}
		if r.Agg != nil {
			fmt.Fprintf(&sb, " -> agg %s@%d", r.Agg.Fn, r.Agg.AggPos)
		}
		verb := "emit"
		if r.Delete {
			verb = "delete"
		} else if r.Materialized {
			verb = "store"
		}
		fmt.Fprintf(&sb, " -> %s %s/%d", verb, r.HeadName, len(r.HeadProgs))
		if r.CostBasis != nil {
			fmt.Fprintf(&sb, "  [order=%s cost=%.4g]", r.OrderString(), r.CostEst)
		}
		sb.WriteString("\n")
	}
	for _, ta := range p.TableAggs {
		fmt.Fprintf(&sb, "tableagg %s: %s over %s groups=%v agg@%d -> %s\n",
			ta.ID, ta.Fn, ta.Table, ta.GroupPos, ta.AggPos, ta.HeadName)
	}
	for _, f := range p.Facts {
		fmt.Fprintf(&sb, "fact %s/%d\n", f.Name, len(f.Args))
	}
	return sb.String()
}

func sortedTables(m map[string]*TableSpec) []*TableSpec {
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	for i := 0; i < len(names); i++ {
		for j := i + 1; j < len(names); j++ {
			if names[j] < names[i] {
				names[i], names[j] = names[j], names[i]
			}
		}
	}
	out := make([]*TableSpec, len(names))
	for i, n := range names {
		out[i] = m[n]
	}
	return out
}
