package planner

import (
	"fmt"

	"p2/internal/dataflow"
	"p2/internal/introspect"
	"p2/internal/overlog"
	"p2/internal/pel"
	"p2/internal/table"
	"p2/internal/val"
)

// Compile translates a parsed program into a Plan. extra supplies or
// overrides symbolic constants (the programmatic equivalent of define
// statements).
func Compile(prog *overlog.Program, extra map[string]val.Value) (*Plan, error) {
	p := &Plan{
		Source:  prog,
		Tables:  make(map[string]*TableSpec),
		Defines: make(map[string]val.Value),
		Arities: make(map[string]int),
		Watches: append([]string(nil), prog.Watches...),
	}
	for _, d := range prog.Defines {
		p.Defines[d.Name] = d.Value
	}
	for k, v := range extra {
		p.Defines[k] = v
	}

	for _, m := range prog.Materialize {
		if _, dup := p.Tables[m.Name]; dup {
			return nil, fmt.Errorf("planner: table %s materialized twice", m.Name)
		}
		if introspect.IsReserved(m.Name) {
			return nil, fmt.Errorf("planner: table name %s is reserved for system tables (the %q prefix belongs to the runtime)", m.Name, introspect.ReservedPrefix)
		}
		p.Tables[m.Name] = specFromMaterialize(m)
	}
	p.addSystemTables()

	if err := p.inferArities(prog); err != nil {
		return nil, err
	}

	for _, f := range prog.Facts {
		spec, err := p.compileFact(f)
		if err != nil {
			return nil, err
		}
		p.Facts = append(p.Facts, spec)
	}

	for _, r := range prog.Rules {
		if err := p.compileRule(r); err != nil {
			return nil, err
		}
	}
	p.ensureRuleIDs(0, 0, nil)
	return p, nil
}

// specFromMaterialize lowers a materialize() declaration to a spec.
func specFromMaterialize(m *overlog.Materialize) *TableSpec {
	ttl := m.Lifetime
	if m.Infinite || ttl <= 0 {
		ttl = table.Infinity
	}
	keys := make([]int, len(m.Keys))
	for i, k := range m.Keys {
		keys[i] = k - 1 // OverLog keys() is 1-based
	}
	return &TableSpec{Name: m.Name, TTL: ttl, MaxSize: m.Size, Keys: keys}
}

// addSystemTables registers the introspection relations in the plan so
// rules that join sysTable, sysRule, sysNet, or sysNode classify as
// stream×table equijoins and arity misuse is caught at compile time.
// The engine instantiates and refreshes them per node.
func (p *Plan) addSystemTables() {
	for _, d := range introspect.Defs() {
		p.Tables[d.Name] = &TableSpec{
			Name: d.Name, TTL: table.Infinity, Keys: append([]int(nil), d.Keys...), System: true,
		}
		p.Arities[d.Name] = d.Arity
	}
}

// ensureRuleIDs gives every compiled rule and table aggregate from the
// given start offsets onward a unique, non-empty identifier — the
// primary key of the sysRule relation. Anonymous rules get positional
// names (r1, r2, ...); colliding names get a ~n suffix. taken seeds the
// in-use set; Extend passes the base plan's IDs (and nonzero offsets,
// since earlier entries are shared with the base plan and must not be
// renamed) so installed rules never shadow existing counters.
func (p *Plan) ensureRuleIDs(startRules, startAggs int, taken map[string]bool) {
	seen := make(map[string]bool, len(p.Rules)+len(p.TableAggs)+len(taken))
	for id := range taken {
		seen[id] = true
	}
	ord := startRules + startAggs
	claim := func(id string) string {
		ord++
		if id == "" {
			id = fmt.Sprintf("r%d", ord)
		}
		base := id
		for n := 2; seen[id]; n++ {
			id = fmt.Sprintf("%s~%d", base, n)
		}
		seen[id] = true
		return id
	}
	for _, r := range p.Rules[startRules:] {
		r.ID = claim(r.ID)
	}
	for _, ta := range p.TableAggs[startAggs:] {
		ta.ID = claim(ta.ID)
	}
}

// MustCompile compiles or panics — for embedding known-good specs.
func MustCompile(prog *overlog.Program, extra map[string]val.Value) *Plan {
	p, err := Compile(prog, extra)
	if err != nil {
		panic(err)
	}
	return p
}

// builtin relations whose arity varies by use.
func arityExempt(name string) bool { return name == "periodic" || name == "range" }

func (p *Plan) inferArities(prog *overlog.Program) error {
	note := func(name string, n int, where string) error {
		if arityExempt(name) {
			return nil
		}
		if prev, ok := p.Arities[name]; ok && prev != n {
			return fmt.Errorf("planner: %s used with arity %d and %d (%s)", name, prev, n, where)
		}
		p.Arities[name] = n
		return nil
	}
	for _, f := range prog.Facts {
		if err := note(f.Atom.Name, len(f.Atom.Args), "fact "+f.ID); err != nil {
			return err
		}
	}
	for _, r := range prog.Rules {
		if err := note(r.Head.Name, len(r.Head.Args), "rule "+r.ID); err != nil {
			return err
		}
		for _, t := range r.Body {
			if a, ok := t.(*overlog.Atom); ok {
				if err := note(a.Name, len(a.Args), "rule "+r.ID); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

func (p *Plan) compileFact(f *overlog.Fact) (*FactSpec, error) {
	if introspect.IsReserved(f.Atom.Name) {
		return nil, fmt.Errorf("planner: fact %s writes into the reserved system-table namespace (%q prefix); system tables are read-only from OverLog", f.Atom.Name, introspect.ReservedPrefix)
	}
	spec := &FactSpec{Name: f.Atom.Name}
	for i, arg := range f.Atom.Args {
		switch a := p.resolve(arg).(type) {
		case *overlog.Lit:
			spec.Args = append(spec.Args, FactArg{Value: a.Val})
		case *overlog.VarRef:
			spec.Args = append(spec.Args, FactArg{Local: true})
		default:
			return nil, fmt.Errorf("planner: fact %s arg %d must be a constant or variable", f.Atom.Name, i)
		}
	}
	return spec, nil
}

// resolve rewrites ConstRef nodes to literals using the defines map.
func (p *Plan) resolve(e overlog.Expr) overlog.Expr {
	switch x := e.(type) {
	case *overlog.ConstRef:
		if v, ok := p.Defines[x.Name]; ok {
			return &overlog.Lit{Val: v}
		}
		return x
	case *overlog.Unary:
		return &overlog.Unary{Op: x.Op, X: p.resolve(x.X)}
	case *overlog.Binary:
		return &overlog.Binary{Op: x.Op, X: p.resolve(x.X), Y: p.resolve(x.Y)}
	case *overlog.RangeTest:
		return &overlog.RangeTest{
			K: p.resolve(x.K), Lo: p.resolve(x.Lo), Hi: p.resolve(x.Hi),
			LoClosed: x.LoClosed, HiClosed: x.HiClosed,
		}
	case *overlog.Call:
		args := make([]overlog.Expr, len(x.Args))
		for i, a := range x.Args {
			args[i] = p.resolve(a)
		}
		return &overlog.Call{Name: x.Name, Loc: x.Loc, Args: args}
	}
	return e
}

// ruleCtx tracks the variable environment while compiling one rule.
type ruleCtx struct {
	plan  *Plan
	rule  *overlog.Rule
	env   map[string]int
	width int
	ops   []Op
	// folded is set when tryFold rewrote the trailing ops into an
	// OpFoldJoin; compileHead then uses the event++aggregate layout for
	// min/max heads (the accumulator path count/sum/avg always use).
	folded bool
}

func (c *ruleCtx) errf(format string, args ...any) error {
	id := c.rule.ID
	if id == "" {
		id = c.rule.Head.Name
	}
	return fmt.Errorf("planner: rule %s: %s", id, fmt.Sprintf(format, args...))
}

func (p *Plan) compileRule(r *overlog.Rule) error {
	rule, isTableAgg, err := p.compileRuleWith(r, nil, false)
	if err != nil {
		return err
	}
	if isTableAgg {
		return nil // compileTableAgg already appended it
	}
	p.Rules = append(p.Rules, rule)
	return nil
}

// compileRuleWith compiles one rule, visiting the non-event body terms
// in the given order (indices into their textual sequence; nil means
// textual). The optimizer re-enters here to realize a reordered plan:
// the variable-environment machinery lays out working-tuple positions
// for whatever order it is handed, so join keys, selections, and head
// projections stay consistent by construction. Rules that classify as
// continuous table aggregates are appended to p.TableAggs and reported
// via the second return value.
//
// fold asks for the aggregate-into-join fusion (see OpFoldJoin): the
// optimizer sets it only for rules whose equivalence class permits it,
// and the structural pattern check in tryFold may still decline — the
// rule then compiles through the ordinary chain.
func (p *Plan) compileRuleWith(r *overlog.Rule, order []int, fold bool) (*Rule, bool, error) {
	c := &ruleCtx{plan: p, rule: r, env: make(map[string]int)}

	// Rules may join and aggregate the sys* system tables but never
	// write them: the runtime owns their contents, and a spoofed or
	// deleted row would silently corrupt every monitor built on them.
	if introspect.IsReserved(r.Head.Name) {
		return nil, false, c.errf("head %s writes into the reserved system-table namespace (%q prefix); system tables are read-only from OverLog", r.Head.Name, introspect.ReservedPrefix)
	}

	if err := c.checkCollocation(); err != nil {
		return nil, false, err
	}

	event, rest, kind, isTableAgg, err := c.classify()
	if err != nil {
		return nil, false, err
	}
	if isTableAgg {
		return nil, true, p.compileTableAgg(r, event)
	}

	if order != nil {
		rest, err = permuteTerms(rest, order)
		if err != nil {
			return nil, false, c.errf("%v", err)
		}
	}

	trig, err := c.compileTrigger(event, kind)
	if err != nil {
		return nil, false, err
	}
	// Bind event atom arguments.
	if err := c.bindAtomArgs(event, 0, true); err != nil {
		return nil, false, err
	}
	c.width = len(event.Args)

	for _, t := range rest {
		switch term := t.(type) {
		case *overlog.Atom:
			if err := c.compileBodyAtom(term); err != nil {
				return nil, false, err
			}
		case *overlog.Assign:
			if _, dup := c.env[term.Var]; dup {
				return nil, false, c.errf("variable %s assigned twice", term.Var)
			}
			prog, err := c.compileExpr(term.Expr)
			if err != nil {
				return nil, false, err
			}
			c.ops = append(c.ops, &OpAssign{Prog: prog})
			c.env[term.Var] = c.width
			c.width++
		case *overlog.Cond:
			prog, err := c.compileExpr(term.Expr)
			if err != nil {
				return nil, false, err
			}
			c.ops = append(c.ops, &OpSelect{Prog: prog})
		}
	}

	if fold {
		c.tryFold(len(event.Args))
	}

	rule := &Rule{
		ID:           r.ID,
		HeadName:     r.Head.Name,
		Delete:       r.Delete,
		Trigger:      trig,
		Ops:          c.ops,
		Materialized: p.IsTable(r.Head.Name),
		Src:          r,
		Order:        append([]int(nil), order...),
	}
	if r.Delete && !rule.Materialized {
		return nil, false, c.errf("delete head %s is not a materialized table", r.Head.Name)
	}
	if err := c.compileHead(rule, len(event.Args)); err != nil {
		return nil, false, err
	}
	if c.folded {
		// The fused op carries the aggregate; no AggStream stage runs.
		rule.Agg = nil
	}
	return rule, false, nil
}

// permuteTerms applies the optimizer-chosen visit order to the
// non-event body terms, validating that order is a permutation.
func permuteTerms(rest []overlog.Term, order []int) ([]overlog.Term, error) {
	if len(order) != len(rest) {
		return nil, fmt.Errorf("body order has %d entries for %d terms", len(order), len(rest))
	}
	out := make([]overlog.Term, len(rest))
	seen := make([]bool, len(rest))
	for i, idx := range order {
		if idx < 0 || idx >= len(rest) || seen[idx] {
			return nil, fmt.Errorf("body order %v is not a permutation", order)
		}
		seen[idx] = true
		out[i] = rest[idx]
	}
	return out, nil
}

// checkCollocation enforces the single-location-variable restriction on
// rule bodies (§7: "our planner currently handles rules with collocated
// terms only").
func (c *ruleCtx) checkCollocation() error {
	loc := ""
	for _, t := range c.rule.Body {
		a, ok := t.(*overlog.Atom)
		if !ok {
			continue
		}
		if a.Loc == "" {
			continue
		}
		if loc == "" {
			loc = a.Loc
		} else if loc != a.Loc {
			return c.errf("multi-node rule body (@%s and @%s); rewrite with collocated terms as in Appendix A", loc, a.Loc)
		}
	}
	// Located function calls must match the body location.
	for _, t := range c.rule.Body {
		var e overlog.Expr
		switch term := t.(type) {
		case *overlog.Assign:
			e = term.Expr
		case *overlog.Cond:
			e = term.Expr
		default:
			continue
		}
		if bad := findMislocatedCall(e, loc); bad != "" {
			return c.errf("function %s located off the rule body", bad)
		}
	}
	if c.rule.Delete && c.rule.Head.Loc != "" && loc != "" && c.rule.Head.Loc != loc {
		return c.errf("delete heads must be local to the rule body")
	}
	return nil
}

func findMislocatedCall(e overlog.Expr, loc string) string {
	switch x := e.(type) {
	case *overlog.Call:
		if x.Loc != "" && x.Loc != loc {
			return x.Name + "@" + x.Loc
		}
		for _, a := range x.Args {
			if bad := findMislocatedCall(a, loc); bad != "" {
				return bad
			}
		}
	case *overlog.Unary:
		return findMislocatedCall(x.X, loc)
	case *overlog.Binary:
		if bad := findMislocatedCall(x.X, loc); bad != "" {
			return bad
		}
		return findMislocatedCall(x.Y, loc)
	case *overlog.RangeTest:
		for _, sub := range []overlog.Expr{x.K, x.Lo, x.Hi} {
			if bad := findMislocatedCall(sub, loc); bad != "" {
				return bad
			}
		}
	}
	return ""
}

// classify finds the rule's event. Returns the event atom, the
// remaining body terms in order, and the trigger kind; or flags the
// rule as a continuous table aggregate.
func (c *ruleCtx) classify() (event *overlog.Atom, rest []overlog.Term, kind TriggerKind, tableAgg bool, err error) {
	var streams []*overlog.Atom
	var firstTable *overlog.Atom
	atomCount := 0
	for _, t := range c.rule.Body {
		a, ok := t.(*overlog.Atom)
		if !ok || a.Neg {
			continue
		}
		atomCount++
		switch {
		case a.Name == "periodic":
			streams = append(streams, a)
		case a.Name == "range":
			// generator, never a trigger
		case c.plan.IsTable(a.Name):
			if firstTable == nil {
				firstTable = a
			}
		default:
			streams = append(streams, a)
		}
	}
	if len(streams) > 1 {
		return nil, nil, 0, false, c.errf("two event streams (%s, %s) in one body: only stream x table equijoins are supported; split the rule", streams[0].Name, streams[1].Name)
	}
	if len(streams) == 1 {
		event = streams[0]
		kind = TrigStream
		if event.Name == "periodic" {
			kind = TrigPeriodic
		}
	} else {
		if firstTable == nil {
			return nil, nil, 0, false, c.errf("no triggering predicate in body")
		}
		// A lone-table body with an aggregate head is a continuous
		// table aggregate.
		if headHasAgg(c.rule.Head) && atomCount == 1 && len(c.rule.Body) == 1 {
			return firstTable, nil, 0, true, nil
		}
		event = firstTable
		kind = TrigDelta
	}
	for _, t := range c.rule.Body {
		if a, ok := t.(*overlog.Atom); ok && a == event {
			continue
		}
		rest = append(rest, t)
	}
	return event, rest, kind, false, nil
}

func headHasAgg(h *overlog.Atom) bool {
	for _, a := range h.Args {
		if _, ok := a.(*overlog.AggRef); ok {
			return true
		}
	}
	return false
}

func (c *ruleCtx) compileTrigger(event *overlog.Atom, kind TriggerKind) (Trigger, error) {
	trig := Trigger{Kind: kind, Name: event.Name, Arity: len(event.Args)}
	if kind != TrigPeriodic {
		return trig, nil
	}
	if len(event.Args) < 3 {
		return trig, c.errf("periodic needs (Node, Event, Period) arguments")
	}
	period, ok := constNumber(c.plan.resolve(event.Args[2]))
	if !ok {
		return trig, c.errf("periodic period must be a constant")
	}
	trig.Period = period
	if len(event.Args) >= 4 {
		count, ok := constNumber(c.plan.resolve(event.Args[3]))
		if !ok {
			return trig, c.errf("periodic count must be a constant")
		}
		trig.Count = int64(count)
	}
	for _, a := range event.Args[2:] {
		if lit, ok := c.plan.resolve(a).(*overlog.Lit); ok {
			trig.Extra = append(trig.Extra, lit.Val)
		} else {
			trig.Extra = append(trig.Extra, val.Null)
		}
	}
	return trig, nil
}

func constNumber(e overlog.Expr) (float64, bool) {
	if lit, ok := e.(*overlog.Lit); ok {
		return lit.Val.AsFloat(), true
	}
	return 0, false
}

// bindAtomArgs binds variables of an atom whose fields occupy working
// positions base..base+len(args)-1, generating equality selections for
// literals and repeated variables.
func (c *ruleCtx) bindAtomArgs(a *overlog.Atom, base int, isEvent bool) error {
	for i, raw := range a.Args {
		pos := base + i
		switch arg := c.plan.resolve(raw).(type) {
		case *overlog.Wildcard:
			// don't care
		case *overlog.VarRef:
			if prev, bound := c.env[arg.Name]; bound {
				prog := pel.NewBuilder().Field(pos).Field(prev).Op(pel.OpEq).Build()
				c.ops = append(c.ops, &OpSelect{Prog: prog})
			} else {
				c.env[arg.Name] = pos
			}
		case *overlog.Lit:
			prog := pel.NewBuilder().Field(pos).Const(arg.Val).Op(pel.OpEq).Build()
			c.ops = append(c.ops, &OpSelect{Prog: prog})
		case *overlog.ConstRef:
			return c.errf("undefined constant %q in %s", arg.Name, a.Name)
		default:
			return c.errf("%s argument %d must be a variable or constant", a.Name, i)
		}
	}
	return nil
}

// compileBodyAtom turns a non-event body atom into a join, antijoin, or
// range generator.
func (c *ruleCtx) compileBodyAtom(a *overlog.Atom) error {
	if a.Name == "range" {
		return c.compileRange(a)
	}
	if !c.plan.IsTable(a.Name) {
		return c.errf("two event streams in one body (%s): only stream x table equijoins are supported; split the rule", a.Name)
	}

	var streamKey, tableKey []int
	type lateBind struct {
		name string
		pos  int // atom-relative position
	}
	var newVars []lateBind
	var dupPairs [][2]int // atom-relative positions that must be equal

	for i, raw := range a.Args {
		switch arg := c.plan.resolve(raw).(type) {
		case *overlog.Wildcard:
		case *overlog.VarRef:
			if prev, bound := c.env[arg.Name]; bound {
				streamKey = append(streamKey, prev)
				tableKey = append(tableKey, i)
				continue
			}
			// A fresh variable repeated within the atom becomes a
			// post-join equality between table positions.
			fresh := -1
			for _, nv := range newVars {
				if nv.name == arg.Name {
					fresh = nv.pos
					break
				}
			}
			if fresh >= 0 {
				dupPairs = append(dupPairs, [2]int{fresh, i})
			} else {
				newVars = append(newVars, lateBind{arg.Name, i})
			}
		case *overlog.Lit:
			// Extend the working tuple with the constant so it can
			// participate in the index key.
			c.ops = append(c.ops, &OpAssign{Prog: pel.NewBuilder().Const(arg.Val).Build()})
			streamKey = append(streamKey, c.width)
			c.width++
			tableKey = append(tableKey, i)
		case *overlog.ConstRef:
			return c.errf("undefined constant %q in %s", arg.Name, a.Name)
		default:
			return c.errf("%s argument %d must be a variable or constant", a.Name, i)
		}
	}

	if a.Neg {
		// Fresh variables in a negated atom are existential; nothing
		// binds. Using one later trips the unbound-variable error.
		if len(streamKey) == 0 {
			return c.errf("negated atom %s shares no variables with the rule", a.Name)
		}
		if len(dupPairs) > 0 {
			return c.errf("repeated fresh variable in negated atom %s", a.Name)
		}
		c.ops = append(c.ops, &OpJoin{Table: a.Name, StreamKey: streamKey, TableKey: tableKey, Neg: true})
		return nil
	}

	if len(streamKey) == 0 {
		return c.errf("join with %s shares no variables (cartesian products are not supported)", a.Name)
	}
	base := c.width
	c.ops = append(c.ops, &OpJoin{Table: a.Name, StreamKey: streamKey, TableKey: tableKey})
	for _, pair := range dupPairs {
		prog := pel.NewBuilder().Field(base + pair[0]).Field(base + pair[1]).Op(pel.OpEq).Build()
		c.ops = append(c.ops, &OpSelect{Prog: prog})
	}
	for _, nv := range newVars {
		c.env[nv.name] = base + nv.pos
	}
	c.width = base + len(a.Args)
	return nil
}

func (c *ruleCtx) compileRange(a *overlog.Atom) error {
	if len(a.Args) != 3 {
		return c.errf("range needs (Var, Lo, Hi)")
	}
	v, ok := c.plan.resolve(a.Args[0]).(*overlog.VarRef)
	if !ok {
		return c.errf("range first argument must be a fresh variable")
	}
	if _, bound := c.env[v.Name]; bound {
		return c.errf("range variable %s already bound", v.Name)
	}
	lo, err := c.compileExpr(a.Args[1])
	if err != nil {
		return err
	}
	hi, err := c.compileExpr(a.Args[2])
	if err != nil {
		return err
	}
	c.ops = append(c.ops, &OpRange{Lo: lo, Hi: hi})
	c.env[v.Name] = c.width
	c.width++
	return nil
}

// tryFold rewrites the rule's trailing [join, selections..., assign?]
// ops into a single OpFoldJoin — the aggregate-into-join fusion — when
// the head carries one min/max/count aggregate and every non-aggregate
// head field is event-bound, so the per-match working tuples the fusion
// skips were never observable. Structural requirements: the rule's last
// join is a plain equijoin; after it come only selections, plus at most
// one trailing assignment which must define the aggregate's value (it
// becomes the fold input, evaluated over the virtual concatenation —
// an erroring input drops the match exactly as the Assign would). Any
// other shape declines silently and the rule compiles unfused.
func (c *ruleCtx) tryFold(eventArity int) {
	var aggArg *overlog.AggRef
	for _, a := range c.rule.Head.Args {
		if ar, ok := a.(*overlog.AggRef); ok {
			if aggArg != nil {
				return
			}
			aggArg = ar
		}
	}
	if aggArg == nil {
		return
	}
	fn, err := aggFunc(aggArg.Fn)
	if err != nil || (fn != dataflow.AggMin && fn != dataflow.AggMax && fn != dataflow.AggCount) {
		return
	}
	for _, a := range c.rule.Head.Args {
		if _, ok := a.(*overlog.AggRef); ok {
			continue
		}
		if firstVarBeyond(a, c.env, eventArity) != "" {
			return
		}
	}
	aggPos := -1
	if aggArg.Var != "*" {
		pos, bound := c.env[aggArg.Var]
		if !bound {
			return // compileHead will report the unbound variable
		}
		aggPos = pos
	}
	last := -1
	for i, op := range c.ops {
		if j, ok := op.(*OpJoin); ok && !j.Neg {
			last = i
		}
	}
	if last < 0 {
		return
	}
	join := c.ops[last].(*OpJoin)
	var filters []*pel.Program
	var input *pel.Program
	tail := c.ops[last+1:]
	if len(tail) > 0 {
		if asn, ok := tail[len(tail)-1].(*OpAssign); ok {
			if aggPos != c.width-1 {
				return // trailing assign is not the aggregate input
			}
			input = asn.Prog
			tail = tail[:len(tail)-1]
		}
	}
	for _, op := range tail {
		sel, ok := op.(*OpSelect)
		if !ok {
			return // antijoin, range, or non-input assign after the last join
		}
		filters = append(filters, sel.Prog)
	}
	if input == nil && aggPos >= 0 {
		concat := c.width
		if aggPos >= concat {
			return
		}
		input = pel.NewBuilder().Field(aggPos).Build()
	}
	c.ops = append(c.ops[:last], &OpFoldJoin{
		Table:     join.Table,
		StreamKey: join.StreamKey,
		TableKey:  join.TableKey,
		Filters:   filters,
		Input:     input,
		Fn:        fn,
	})
	c.folded = true
}

// compileHead builds the head projection and aggregate specification.
func (c *ruleCtx) compileHead(rule *Rule, eventArity int) error {
	head := c.rule.Head
	var aggArg *overlog.AggRef
	aggIndex := -1
	for i, a := range head.Args {
		if ar, ok := a.(*overlog.AggRef); ok {
			if aggArg != nil {
				return c.errf("multiple aggregates in head")
			}
			aggArg = ar
			aggIndex = i
		}
	}
	if err := c.checkHeadLoc(head, aggArg); err != nil {
		return err
	}

	if aggArg == nil {
		for _, a := range head.Args {
			prog, err := c.compileExpr(a)
			if err != nil {
				return err
			}
			rule.HeadProgs = append(rule.HeadProgs, prog)
		}
		return nil
	}

	fn, err := aggFunc(aggArg.Fn)
	if err != nil {
		return c.errf("%v", err)
	}
	agg := &StreamAgg{Fn: fn, AggPos: -1}
	if aggArg.Var != "*" {
		pos, bound := c.env[aggArg.Var]
		if !bound {
			return c.errf("aggregate variable %s is unbound", aggArg.Var)
		}
		agg.AggPos = pos
	} else if fn != dataflow.AggCount {
		return c.errf("%s<*> is only valid for count", aggArg.Fn)
	}
	rule.Agg = agg

	switch {
	case (fn == dataflow.AggMin || fn == dataflow.AggMax) && !c.folded:
		// Exemplar semantics: head programs run against the winning
		// working tuple; the aggregate argument reads its own position.
		for i, a := range head.Args {
			if i == aggIndex {
				rule.HeadProgs = append(rule.HeadProgs,
					pel.NewBuilder().Field(agg.AggPos).Build())
				continue
			}
			prog, err := c.compileExpr(a)
			if err != nil {
				return err
			}
			rule.HeadProgs = append(rule.HeadProgs, prog)
		}
	default:
		// Accumulator semantics: head programs run against the event
		// tuple extended with the aggregate value; every non-aggregate
		// head field must be event-bound.
		for i, a := range head.Args {
			if i == aggIndex {
				rule.HeadProgs = append(rule.HeadProgs,
					pel.NewBuilder().Field(eventArity).Build())
				continue
			}
			if v := firstVarBeyond(a, c.env, eventArity); v != "" {
				return c.errf("%s head field %s is not bound by the event; %s aggregates require event-bound fields", aggArg.Fn, v, aggArg.Fn)
			}
			prog, err := c.compileExpr(a)
			if err != nil {
				return err
			}
			rule.HeadProgs = append(rule.HeadProgs, prog)
		}
	}
	return nil
}

// checkHeadLoc enforces the convention that the head's location
// variable is its first argument.
func (c *ruleCtx) checkHeadLoc(head *overlog.Atom, agg *overlog.AggRef) error {
	if head.Loc == "" {
		return nil
	}
	if len(head.Args) == 0 {
		return c.errf("located head %s has no arguments", head.Name)
	}
	switch a := head.Args[0].(type) {
	case *overlog.VarRef:
		if a.Name == head.Loc {
			return nil
		}
	case *overlog.AggRef:
		if a.Var == head.Loc {
			return nil
		}
	}
	return c.errf("head location @%s must be the first head argument", head.Loc)
}

// firstVarBeyond returns a variable in e whose binding position is at
// or beyond limit, or "" if all variables are bound below limit.
func firstVarBeyond(e overlog.Expr, env map[string]int, limit int) string {
	switch x := e.(type) {
	case *overlog.VarRef:
		if pos, ok := env[x.Name]; ok && pos >= limit {
			return x.Name
		}
	case *overlog.Unary:
		return firstVarBeyond(x.X, env, limit)
	case *overlog.Binary:
		if v := firstVarBeyond(x.X, env, limit); v != "" {
			return v
		}
		return firstVarBeyond(x.Y, env, limit)
	case *overlog.RangeTest:
		for _, sub := range []overlog.Expr{x.K, x.Lo, x.Hi} {
			if v := firstVarBeyond(sub, env, limit); v != "" {
				return v
			}
		}
	case *overlog.Call:
		for _, a := range x.Args {
			if v := firstVarBeyond(a, env, limit); v != "" {
				return v
			}
		}
	}
	return ""
}

func aggFunc(name string) (dataflow.AggFunc, error) {
	switch name {
	case "min":
		return dataflow.AggMin, nil
	case "max":
		return dataflow.AggMax, nil
	case "count":
		return dataflow.AggCount, nil
	case "sum":
		return dataflow.AggSum, nil
	case "avg":
		return dataflow.AggAvg, nil
	}
	return 0, fmt.Errorf("unknown aggregate %q", name)
}

// compileTableAgg handles rules like "bestSuccDist(NI, min<D>) :-
// succDist(NI, S, D)": a continuous aggregate over one table.
func (p *Plan) compileTableAgg(r *overlog.Rule, atom *overlog.Atom) error {
	c := &ruleCtx{plan: p, rule: r, env: make(map[string]int)}
	if r.Delete {
		return c.errf("table aggregates cannot be deletions")
	}
	// Bind atom argument positions.
	for i, raw := range atom.Args {
		switch arg := p.resolve(raw).(type) {
		case *overlog.VarRef:
			if _, dup := c.env[arg.Name]; !dup {
				c.env[arg.Name] = i
			}
		case *overlog.Wildcard:
		default:
			return c.errf("table aggregate body arguments must be variables")
		}
	}
	var aggArg *overlog.AggRef
	ta := &TableAggRule{
		ID:           r.ID,
		Table:        atom.Name,
		HeadName:     r.Head.Name,
		Materialized: p.IsTable(r.Head.Name),
	}
	var groupOrds []int // head arg index -> group ordinal
	for _, raw := range r.Head.Args {
		if ar, ok := raw.(*overlog.AggRef); ok {
			if aggArg != nil {
				return c.errf("multiple aggregates in head")
			}
			aggArg = ar
			groupOrds = append(groupOrds, -1)
			continue
		}
		v, ok := p.resolve(raw).(*overlog.VarRef)
		if !ok {
			return c.errf("table aggregate head fields must be variables")
		}
		pos, bound := c.env[v.Name]
		if !bound {
			return c.errf("head variable %s not bound by %s", v.Name, atom.Name)
		}
		groupOrds = append(groupOrds, len(ta.GroupPos))
		ta.GroupPos = append(ta.GroupPos, pos)
	}
	if aggArg == nil {
		return c.errf("table aggregate rule lacks an aggregate") // unreachable by classify
	}
	fn, err := aggFunc(aggArg.Fn)
	if err != nil {
		return c.errf("%v", err)
	}
	ta.Fn = fn
	if aggArg.Var == "*" {
		if fn != dataflow.AggCount {
			return c.errf("%s<*> is only valid for count", aggArg.Fn)
		}
		ta.AggPos = 0
	} else {
		pos, bound := c.env[aggArg.Var]
		if !bound {
			return c.errf("aggregate variable %s not bound by %s", aggArg.Var, atom.Name)
		}
		ta.AggPos = pos
	}
	if err := c.checkHeadLoc(r.Head, aggArg); err != nil {
		return err
	}
	// Head projection over [group fields..., aggregate].
	for i := range r.Head.Args {
		ord := groupOrds[i]
		if ord < 0 {
			ord = len(ta.GroupPos)
		}
		ta.HeadProgs = append(ta.HeadProgs, pel.NewBuilder().Field(ord).Build())
	}
	p.TableAggs = append(p.TableAggs, ta)
	return nil
}

// compileExpr lowers an OverLog expression to PEL against the current
// variable environment.
func (c *ruleCtx) compileExpr(e overlog.Expr) (*pel.Program, error) {
	b := pel.NewBuilder()
	if err := c.emit(b, c.plan.resolve(e)); err != nil {
		return nil, err
	}
	return b.Build(), nil
}

var binOps = map[string]pel.Op{
	"+": pel.OpAdd, "-": pel.OpSub, "*": pel.OpMul, "/": pel.OpDiv,
	"%": pel.OpMod, "<<": pel.OpShl, ">>": pel.OpShr,
	"==": pel.OpEq, "!=": pel.OpNe, "<": pel.OpLt, "<=": pel.OpLe,
	">": pel.OpGt, ">=": pel.OpGe, "&&": pel.OpAnd, "||": pel.OpOr,
}

func (c *ruleCtx) emit(b *pel.Builder, e overlog.Expr) error {
	switch x := e.(type) {
	case *overlog.Lit:
		b.Const(x.Val)
	case *overlog.VarRef:
		pos, ok := c.env[x.Name]
		if !ok {
			return c.errf("unbound variable %s", x.Name)
		}
		b.Field(pos)
	case *overlog.ConstRef:
		return c.errf("undefined constant %q (add a define or pass it at compile time)", x.Name)
	case *overlog.Wildcard:
		return c.errf("wildcard in expression")
	case *overlog.Unary:
		if err := c.emit(b, x.X); err != nil {
			return err
		}
		switch x.Op {
		case "-":
			b.Op(pel.OpNeg)
		case "!":
			b.Op(pel.OpNot)
		default:
			return c.errf("unknown unary operator %q", x.Op)
		}
	case *overlog.Binary:
		op, ok := binOps[x.Op]
		if !ok {
			return c.errf("unknown operator %q", x.Op)
		}
		if err := c.emit(b, x.X); err != nil {
			return err
		}
		if err := c.emit(b, x.Y); err != nil {
			return err
		}
		b.Op(op)
	case *overlog.RangeTest:
		if err := c.emit(b, x.K); err != nil {
			return err
		}
		if err := c.emit(b, x.Lo); err != nil {
			return err
		}
		if err := c.emit(b, x.Hi); err != nil {
			return err
		}
		b.In(x.LoClosed, x.HiClosed)
	case *overlog.Call:
		return c.emitCall(b, x)
	case *overlog.AggRef:
		return c.errf("aggregate %s<%s> outside rule head", x.Fn, x.Var)
	default:
		return c.errf("unsupported expression %T", e)
	}
	return nil
}

func (c *ruleCtx) emitCall(b *pel.Builder, x *overlog.Call) error {
	expectArgs := func(n int) error {
		if len(x.Args) != n {
			return c.errf("%s expects %d argument(s), got %d", x.Name, n, len(x.Args))
		}
		return nil
	}
	switch x.Name {
	case "f_now":
		if err := expectArgs(0); err != nil {
			return err
		}
		b.Op(pel.OpNow)
	case "f_rand":
		if err := expectArgs(0); err != nil {
			return err
		}
		b.Op(pel.OpRand)
	case "f_localAddr":
		if err := expectArgs(0); err != nil {
			return err
		}
		b.Op(pel.OpLocal)
	case "f_coinFlip":
		if err := expectArgs(1); err != nil {
			return err
		}
		if err := c.emit(b, x.Args[0]); err != nil {
			return err
		}
		b.Op(pel.OpCoinFlip)
	case "f_sha1":
		if err := expectArgs(1); err != nil {
			return err
		}
		if err := c.emit(b, x.Args[0]); err != nil {
			return err
		}
		b.Op(pel.OpSha1)
	case "f_toID":
		if err := expectArgs(1); err != nil {
			return err
		}
		if err := c.emit(b, x.Args[0]); err != nil {
			return err
		}
		b.Op(pel.OpToID)
	case "f_toStr":
		if err := expectArgs(1); err != nil {
			return err
		}
		if err := c.emit(b, x.Args[0]); err != nil {
			return err
		}
		b.Op(pel.OpToStr)
	default:
		return c.errf("unknown function %s", x.Name)
	}
	return nil
}
