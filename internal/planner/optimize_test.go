package planner

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"p2/internal/pel"
)

// stubStats is a hand-set statistics source for steering the greedy
// planner in tests. Unlisted relations report cardinality 1; every key
// is fully selective (distinct = 1 → fanout = cardinality).
type stubStats struct{ card map[string]float64 }

func (s stubStats) Cardinality(t string) float64 {
	if c, ok := s.card[t]; ok {
		return c
	}
	return 1
}
func (s stubStats) DistinctKeys(t string, key []int) float64 { return 1 }

// opCounts summarizes a rule's compiled ops for multiset comparison:
// joins and antijoins per table, and counts of the remaining op kinds.
func opCounts(r *Rule) map[string]int {
	out := make(map[string]int)
	for _, op := range r.Ops {
		switch o := op.(type) {
		case *OpJoin:
			k := "join:" + o.Table
			if o.Neg {
				k = "antijoin:" + o.Table
			}
			out[k]++
		case *OpSelect:
			out["select"]++
		case *OpAssign:
			out["assign"]++
		case *OpRange:
			out["range"]++
		case *OpFoldJoin:
			// A fold is the final join plus its fused selections and (when
			// the aggregate input came from a trailing assignment) that
			// assignment — count the constituents so a folded plan has the
			// same op multiset as its unfused original.
			out["join:"+o.Table]++
			out["select"] += len(o.Filters)
			if o.Input != nil && !isFieldRead(o.Input) {
				out["assign"]++
			}
		}
	}
	return out
}

// isFieldRead reports whether p is the planner-synthesized single-field
// read used when the aggregate input already exists in the working
// tuple (as opposed to a folded trailing assignment).
func isFieldRead(p *pel.Program) bool {
	return strings.HasPrefix(p.String(), "$") && !strings.ContainsAny(p.String(), " ")
}

func sameCounts(a, b map[string]int) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// checkEquivalent asserts the structural invariants every optimized
// rule must satisfy relative to its textual original: same identity,
// head, and trigger; Order a valid permutation of the body terms; and
// the same multiset of compiled operators.
func checkEquivalent(t *testing.T, orig, opt *Rule) {
	t.Helper()
	if opt.ID != orig.ID || opt.HeadName != orig.HeadName || opt.Delete != orig.Delete {
		t.Fatalf("rule identity changed: %+v vs %+v", orig, opt)
	}
	if opt.Trigger.Kind != orig.Trigger.Kind || opt.Trigger.Name != orig.Trigger.Name {
		t.Fatalf("%s: trigger changed: %+v vs %+v", orig.ID, orig.Trigger, opt.Trigger)
	}
	if opt.CostBasis != nil {
		seen := make(map[int]bool)
		for _, i := range opt.Order {
			if i < 0 || i >= len(opt.Order) || seen[i] {
				t.Fatalf("%s: order %v is not a permutation", orig.ID, opt.Order)
			}
			seen[i] = true
		}
	}
	if !sameCounts(opCounts(orig), opCounts(opt)) {
		t.Fatalf("%s: op multiset changed:\n  orig %v\n  opt  %v",
			orig.ID, opCounts(orig), opCounts(opt))
	}
	if len(opt.HeadProgs) != len(orig.HeadProgs) {
		t.Fatalf("%s: head arity changed", orig.ID)
	}
}

const chordLookupSrc = `
	materialize(node, infinity, 1, keys(1)).
	materialize(finger, 180, 160, keys(2)).
	materialize(bestSucc, infinity, 1, keys(1)).
	L1 lookupResults@R(R,K,S,SI,E) :- node@NI(NI,N), lookup@NI(NI,K,R,E),
		bestSucc@NI(NI,S,SI), K in (N,S].
	L2 bestLookupDist@NI(NI,K,R,E,min<D>) :- node@NI(NI,N),
		lookup@NI(NI,K,R,E), finger@NI(NI,I,B,BI), D := K - B - 1, B in (N,K).
	L3 lookup@BI(min<BI>,K,R,E) :- node@NI(NI,N),
		bestLookupDist@NI(NI,K,R,E,D), finger@NI(NI,I,B,BI),
		D == K - B - 1, B in (N,K).
`

func TestOptimizePreservesRuleStructure(t *testing.T) {
	p := compile(t, chordLookupSrc)
	opt := Optimize(p, nil, OptimizerConfig{})
	if len(opt.Rules) != len(p.Rules) {
		t.Fatalf("rule count changed: %d vs %d", len(opt.Rules), len(p.Rules))
	}
	optimized := 0
	for i, orig := range p.Rules {
		checkEquivalent(t, orig, opt.Rules[i])
		if opt.Rules[i].CostBasis != nil {
			optimized++
			if opt.Rules[i] == orig {
				t.Fatalf("%s: optimized rule must be a private copy", orig.ID)
			}
			if opt.Rules[i].CostEst <= 0 {
				t.Fatalf("%s: cost estimate = %v", orig.ID, opt.Rules[i].CostEst)
			}
		}
	}
	if optimized == 0 {
		t.Fatal("no rule was optimized")
	}
	// The input plan is untouched.
	for _, orig := range p.Rules {
		if orig.CostBasis != nil {
			t.Fatal("Optimize mutated its input plan")
		}
	}
}

// TestOptimizeRandomRulesProperty is the plan-equivalence property
// test: randomly generated (compilable) rule bodies, optimized under
// randomly skewed statistics, must always yield a valid permutation of
// the same operator multiset with identity and trigger intact.
func TestOptimizeRandomRulesProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tables := []string{"ta", "tb", "tc"}
	for trial := 0; trial < 200; trial++ {
		var b strings.Builder
		b.WriteString(`
			materialize(ta, infinity, infinity, keys(1,2)).
			materialize(tb, 30, 50, keys(2)).
			materialize(tc, infinity, 1, keys(1)).
		`)
		// Body: the event, then 1-3 table atoms, plus optional
		// conds/assigns in random textual positions.
		var terms []string
		vars := []string{"A"}
		for i, tab := range tables {
			if rng.Intn(2) == 0 && i > 0 {
				continue
			}
			v := fmt.Sprintf("V%d", i)
			neg := ""
			if rng.Intn(4) == 0 {
				// Negated atoms may only use bound variables.
				neg = "not "
				terms = append(terms, fmt.Sprintf("%s%s@X(X, A)", neg, tab))
				continue
			}
			terms = append(terms, fmt.Sprintf("%s@X(X, %s)", tab, v))
			vars = append(vars, v)
		}
		// Conds/assigns reference only the event variable so the shuffle
		// can never move them before their binding (the compiler checks
		// bindings left-to-right).
		if rng.Intn(2) == 0 {
			terms = append(terms, "A > 0")
		}
		if rng.Intn(2) == 0 {
			terms = append(terms, "W := A + 1")
			vars = append(vars, "W")
		}
		rng.Shuffle(len(terms), func(i, j int) { terms[i], terms[j] = terms[j], terms[i] })
		head := vars[rng.Intn(len(vars))]
		fmt.Fprintf(&b, "R1 out@X(X, %s) :- evt@X(X, A), %s.\n",
			head, strings.Join(terms, ", "))

		p := compile(t, b.String())
		st := stubStats{card: map[string]float64{
			"ta": float64(1 + rng.Intn(1000)),
			"tb": float64(1 + rng.Intn(1000)),
			"tc": float64(1 + rng.Intn(1000)),
		}}
		opt := Optimize(p, st, OptimizerConfig{})
		for i, orig := range p.Rules {
			checkEquivalent(t, orig, opt.Rules[i])
		}
	}
}

func TestPushdownMovesFilterBeforeJoin(t *testing.T) {
	p := compile(t, `
		materialize(m, 30, 100, keys(2)).
		R1 out@X(X, Y) :- evt@X(X, A), m@X(X, Y), A > 5.
	`)
	// Textually the filter sits after the join; its only variable is
	// bound by the event, so both the pushdown-only and the full planner
	// must float it ahead of the probe.
	for _, cfg := range []OptimizerConfig{{}, {NoReorder: true}} {
		opt := Optimize(p, nil, cfg)
		r := opt.Rules[0]
		if r.CostBasis == nil {
			t.Fatalf("cfg %+v: rule not optimized", cfg)
		}
		if _, ok := r.Ops[0].(*OpSelect); !ok {
			t.Fatalf("cfg %+v: first op = %T, want pushed-down select", cfg, r.Ops[0])
		}
	}
	// With pushdown disabled the textual shape survives.
	opt := Optimize(p, nil, OptimizerConfig{NoReorder: true, NoPushdown: true})
	if _, ok := opt.Rules[0].Ops[0].(*OpJoin); !ok {
		t.Fatalf("NoPushdown violated: first op = %T", opt.Rules[0].Ops[0])
	}
}

func TestGreedyPicksSmallerFanoutFirst(t *testing.T) {
	p := compile(t, `
		materialize(big, 30, infinity, keys(2)).
		materialize(small, 30, infinity, keys(2)).
		R1 out@X(X, B, S) :- evt@X(X), big@X(X, B), small@X(X, S).
	`)
	st := stubStats{card: map[string]float64{"big": 1000, "small": 2}}
	opt := Optimize(p, st, OptimizerConfig{})
	r := opt.Rules[0]
	j, ok := r.Ops[0].(*OpJoin)
	if !ok || j.Table != "small" {
		t.Fatalf("first op = %+v, want join on small", r.Ops[0])
	}
	if r.OrderString() != "1,0" {
		t.Fatalf("order = %q, want 1,0", r.OrderString())
	}
	// Flipped statistics flip the choice.
	st = stubStats{card: map[string]float64{"big": 2, "small": 1000}}
	opt = Optimize(p, st, OptimizerConfig{})
	if j := opt.Rules[0].Ops[0].(*OpJoin); j.Table != "big" {
		t.Fatalf("flipped stats: first join on %s, want big", j.Table)
	}
}

func TestFrozenRandomRuleUntouched(t *testing.T) {
	p := compile(t, `
		materialize(m, 30, 100, keys(2)).
		R1 out@X(X, Y, C) :- evt@X(X), m@X(X, Y), C := f_rand(), Y > 2.
	`)
	opt := Optimize(p, nil, OptimizerConfig{})
	if opt.Rules[0] != p.Rules[0] {
		t.Fatal("rule drawing randomness must be shared untouched")
	}
	if opt.Rules[0].CostBasis != nil {
		t.Fatal("frozen rule must carry no cost basis")
	}
}

func TestEventBoundAggregateReorders(t *testing.T) {
	// min<B> whose other head fields are all event-bound: the aggregate
	// value is a pure function of the binding multiset and ties project
	// identically, so the join order may move — this is the Chord
	// maxSuccDist/bestLookupDist shape, where it matters most.
	p := compile(t, `
		materialize(big, 30, infinity, keys(2)).
		materialize(small, 30, infinity, keys(2)).
		R1 out@X(X, min<B>) :- evt@X(X, A), big@X(X, B), small@X(X, S), A > 0.
	`)
	st := stubStats{card: map[string]float64{"big": 1000, "small": 2}}
	opt := Optimize(p, st, OptimizerConfig{})
	r := opt.Rules[0]
	if r.CostBasis == nil {
		t.Fatal("aggregate rule should be re-planned")
	}
	if _, ok := r.Ops[0].(*OpSelect); !ok {
		t.Fatalf("first op = %T, want pushed-down select", r.Ops[0])
	}
	j, ok := r.Ops[1].(*OpJoin)
	if !ok || j.Table != "small" {
		t.Fatalf("event-bound min<> should reorder small first: %+v", r.Ops)
	}
}

func TestExemplarAggregateWithBodyHeadVarIsPushdownOnly(t *testing.T) {
	// Here the head also projects S from the small join: a tie on B
	// between rows with different S picks whichever was visited first,
	// so atoms must stay textual — but the event-bound filter still
	// floats up.
	p := compile(t, `
		materialize(big, 30, infinity, keys(2)).
		materialize(small, 30, infinity, keys(2)).
		R1 out@X(X, S, min<B>) :- evt@X(X, A), big@X(X, B), small@X(X, S), A > 0.
	`)
	st := stubStats{card: map[string]float64{"big": 1000, "small": 2}}
	opt := Optimize(p, st, OptimizerConfig{})
	r := opt.Rules[0]
	if r.CostBasis == nil {
		t.Fatal("pushdown-only rule should still be re-planned")
	}
	if _, ok := r.Ops[0].(*OpSelect); !ok {
		t.Fatalf("first op = %T, want pushed-down select", r.Ops[0])
	}
	j, ok := r.Ops[1].(*OpJoin)
	if !ok || j.Table != "big" {
		t.Fatalf("atom order changed under an exemplar aggregate: %+v", r.Ops)
	}
}

func TestSumAggregateIsPushdownOnly(t *testing.T) {
	// sum<> accumulates floats in visit order, so even an event-bound
	// head pins the atom order.
	p := compile(t, `
		materialize(big, 30, infinity, keys(2)).
		materialize(small, 30, infinity, keys(2)).
		R1 out@X(X, sum<B>) :- evt@X(X), big@X(X, B), small@X(X, S).
	`)
	st := stubStats{card: map[string]float64{"big": 1000, "small": 2}}
	opt := Optimize(p, st, OptimizerConfig{})
	j, ok := opt.Rules[0].Ops[0].(*OpJoin)
	if !ok || j.Table != "big" {
		t.Fatalf("atom order changed under sum<>: %+v", opt.Rules[0].Ops)
	}
}

func TestDeleteHeadReordersUnlessSelfReading(t *testing.T) {
	// Deletes commute with each other, so a delete rule reorders like
	// any other — unless its body reads the very table it deletes from,
	// where removals land mid-probe-walk (the Chord S4 shape).
	p := compile(t, `
		materialize(victim, 30, infinity, keys(2)).
		materialize(big, 30, infinity, keys(2)).
		materialize(small, 30, infinity, keys(2)).
		R1 delete victim@X(X, B) :- evt@X(X), big@X(X, B), small@X(X, S), B == S.
		R2 delete victim@X(X, S) :- evt@X(X), victim@X(X, B), small@X(X, S), B == S.
	`)
	st := stubStats{card: map[string]float64{"big": 1000, "small": 2, "victim": 500}}
	opt := Optimize(p, st, OptimizerConfig{})
	if j := opt.Rules[0].Ops[0].(*OpJoin); j.Table != "small" {
		t.Fatalf("non-self-reading delete should reorder small first: %+v", opt.Rules[0].Ops)
	}
	if j := opt.Rules[1].Ops[0].(*OpJoin); j.Table != "victim" {
		t.Fatalf("self-reading delete must keep atom order: %+v", opt.Rules[1].Ops)
	}
}

func TestNegatedRuleKeepsAtomOrder(t *testing.T) {
	p := compile(t, `
		materialize(big, 30, infinity, keys(2)).
		materialize(seen, 30, infinity, keys(1,2)).
		R1 out@X(X, B) :- evt@X(X), big@X(X, B), not seen@X(X, B).
	`)
	st := stubStats{card: map[string]float64{"big": 1000, "seen": 2}}
	opt := Optimize(p, st, OptimizerConfig{})
	r := opt.Rules[0]
	j, ok := r.Ops[0].(*OpJoin)
	if !ok || j.Table != "big" || j.Neg {
		t.Fatalf("negation must pin atom order; ops = %+v", r.Ops)
	}
}

func TestReoptimizeKeepsIDAndDetectsChange(t *testing.T) {
	p := compile(t, `
		materialize(big, 30, infinity, keys(2)).
		materialize(small, 30, infinity, keys(2)).
		R1 out@X(X, B, S) :- evt@X(X), big@X(X, B), small@X(X, S).
	`)
	opt := Optimize(p, stubStats{card: map[string]float64{"big": 1000, "small": 2}}, OptimizerConfig{})
	r := opt.Rules[0]

	// Same statistics: no swap, basis refreshed in place.
	nr, changed := opt.Reoptimize(r, stubStats{card: map[string]float64{"big": 1000, "small": 2}}, OptimizerConfig{})
	if changed || nr != r {
		t.Fatal("stable statistics must not produce a swap")
	}

	// Inverted statistics: a new rule under the same ID.
	nr, changed = opt.Reoptimize(r, stubStats{card: map[string]float64{"big": 2, "small": 1000}}, OptimizerConfig{})
	if !changed || nr == r {
		t.Fatal("inverted statistics must produce a swap")
	}
	if nr.ID != r.ID {
		t.Fatalf("replan changed the rule ID: %q vs %q", nr.ID, r.ID)
	}
	if j := nr.Ops[0].(*OpJoin); j.Table != "big" {
		t.Fatalf("replanned first join on %s, want big", j.Table)
	}
	checkEquivalent(t, r, nr)
}

func TestDrifted(t *testing.T) {
	cfg := OptimizerConfig{} // default factor 2
	cases := []struct {
		costed, cur float64
		want        bool
	}{
		{10, 10, false},
		{10, 15, false}, // ratio 16/11 < 2
		{10, 30, true},  // grew past 2x
		{50, 30, false}, // 31/51 > 1/2
		{50, 15, true},  // shrank past 2x
		{1, 4, true},    // small-table capture: 5/2 >= 2
		{0, 0, false},   // smoothing: empty stays put
		{0, 10, true},   // 11/1 >= 2
		{1000, 0, true}, // collapse
		{1000, 700, false},
	}
	for _, c := range cases {
		if got := cfg.Drifted(c.costed, c.cur); got != c.want {
			t.Errorf("Drifted(%v, %v) = %v, want %v", c.costed, c.cur, got, c.want)
		}
	}
	off := OptimizerConfig{DriftFactor: 1}
	if off.Drifted(1, 1e9) {
		t.Error("DriftFactor <= 1 must disable drift")
	}
}

func TestShareableJoin(t *testing.T) {
	p := compile(t, `
		materialize(m, 30, 100, keys(2)).
		materialize(seen, 30, 100, keys(1,2)).
		materialize(out3, infinity, infinity, keys(1,2)).
		R1 out1@X(X, Y) :- evt@X(X, A), m@X(X, Y), A > 5.
		R2 out2@X(X, Y) :- evt@X(X, A), W := A + 1, m@X(X, Y).
		R3 out3@X(X, Y) :- evt@X(X, A), m@X(X, Y).
		R4 m@X(X, Y) :- evt@X(X, A), m@X(X, Y).
		R5 out5@X(X, A) :- evt@X(X, A), not seen@X(X, A).
	`)
	byID := make(map[string]*Rule)
	for _, r := range p.Rules {
		byID[r.ID] = r
	}
	// R1's leading probe follows only the (pushed-down) selects in the
	// textual plan — here the select is compiled after the join, so the
	// join is op 0 and shareable.
	if i, ok := p.ShareableJoin(byID["R1"]); !ok || i != 0 {
		t.Fatalf("R1 = (%d, %v), want shareable at 0", i, ok)
	}
	// R2's assign rebuilds the working tuple before the probe: the cache
	// would never see the original event pointer.
	if _, ok := p.ShareableJoin(byID["R2"]); ok {
		t.Fatal("R2's post-assign join must not be shareable")
	}
	// R3 stores into out3 — a different table than it probes: fine.
	if _, ok := p.ShareableJoin(byID["R3"]); !ok {
		t.Fatal("R3 should be shareable")
	}
	// R4 writes the very table it probes, synchronously.
	if _, ok := p.ShareableJoin(byID["R4"]); ok {
		t.Fatal("R4 probes a table its own head writes; must not share")
	}
	// R5 is an antijoin.
	if _, ok := p.ShareableJoin(byID["R5"]); ok {
		t.Fatal("antijoins must not share")
	}
}

func TestCatalogStatsHeuristics(t *testing.T) {
	p := compile(t, `
		materialize(one, infinity, 1, keys(1)).
		materialize(capped, 30, 16, keys(2)).
		materialize(huge, 30, 100000, keys(2)).
		materialize(open, 30, infinity, keys(2)).
	`)
	cs := NewCatalogStats(p)
	if cs.Cardinality("one") != 1 || cs.Cardinality("capped") != 16 {
		t.Fatalf("bounded tables: %v %v", cs.Cardinality("one"), cs.Cardinality("capped"))
	}
	if cs.Cardinality("huge") != catalogMaxSizeCap {
		t.Fatalf("huge = %v, want cap %d", cs.Cardinality("huge"), catalogMaxSizeCap)
	}
	if cs.Cardinality("open") != catalogDefaultRows {
		t.Fatalf("open = %v", cs.Cardinality("open"))
	}
	if cs.Cardinality("someStream") != 1 {
		t.Fatalf("stream = %v", cs.Cardinality("someStream"))
	}
	if cs.Cardinality("sysTable") != catalogSystemRows {
		t.Fatalf("system = %v", cs.Cardinality("sysTable"))
	}
	// Key covering the PK → unique per row.
	if cs.DistinctKeys("capped", []int{0, 1}) != 16 {
		t.Fatalf("pk distinct = %v", cs.DistinctKeys("capped", []int{0, 1}))
	}
	// Location-only key: one value per node.
	if cs.DistinctKeys("capped", []int{0}) != 1 {
		t.Fatalf("loc distinct = %v", cs.DistinctKeys("capped", []int{0}))
	}
	// Anything else: mildly skewed.
	if got := cs.DistinctKeys("open", []int{2}); got != catalogDefaultRows/defaultKeySkew {
		t.Fatalf("skew distinct = %v", got)
	}
}
