package planner

// The statistics layer of the cost-based optimizer. A Stats supplies
// per-relation cardinality and distinct-key estimates; the engine feeds
// one from live table counters (table.Len, index bucket counts), and
// CatalogStats provides the cold-start fallback derived purely from the
// plan's materialize() declarations — so the first compilation of a
// node that has never run still picks sensible join orders.

// Stats supplies the per-relation estimates the cost model consumes.
// Implementations must be cheap: the optimizer queries them once per
// candidate join per rule, and the adaptive re-planner once per rule
// per introspection refresh.
type Stats interface {
	// Cardinality estimates the number of live rows in the relation.
	Cardinality(table string) float64
	// DistinctKeys estimates the number of distinct values the given
	// key columns (0-based field positions) take in the relation.
	// Returns at least 1.
	DistinctKeys(table string, key []int) float64
}

// OptimizerConfig tunes the cost-based optimizer. The zero value
// enables every transformation with default thresholds — pass it to
// p2.WithOptimizer to turn the optimizer on.
type OptimizerConfig struct {
	// DriftFactor is the multiplicative cardinality change that
	// triggers adaptive re-planning: a rule is recompiled when any
	// joined relation's live cardinality grows or shrinks by this
	// factor relative to the value its current plan was costed with.
	// 0 means the default (2). The default must be tight enough that
	// overlay working tables moving between a handful of rows still
	// re-plan: with +1 smoothing, a 1-row table growing to 4 rows is a
	// ratio of 2.5, and plans frozen at the 1-row instant are exactly
	// the ones worth revisiting. Values <= 1 disable drift re-planning.
	DriftFactor float64
	// NoReorder disables greedy cost-based join reordering.
	NoReorder bool
	// NoPushdown disables selection pushdown past joins.
	NoPushdown bool
	// NoShare disables common-subexpression sharing of identical
	// (relation, key) probe prefixes across strands on one trigger.
	NoShare bool
	// NoReplan disables the adaptive re-planning hook on the
	// introspection refresh; plans are chosen once at start.
	NoReplan bool
	// NoFold disables aggregate-into-join fusion (dataflow.FoldJoin).
	NoFold bool
}

// driftFactor resolves the default threshold.
func (c *OptimizerConfig) driftFactor() float64 {
	if c.DriftFactor == 0 {
		return 2
	}
	return c.DriftFactor
}

// Drifted reports whether cur has moved beyond the configured factor
// relative to the costed value. Both are smoothed by +1 so empty
// relations do not divide by zero or flap on the first row.
func (c *OptimizerConfig) Drifted(costed, cur float64) bool {
	f := c.driftFactor()
	if f <= 1 {
		return false
	}
	ratio := (cur + 1) / (costed + 1)
	return ratio >= f || ratio <= 1/f
}

// Default sizing heuristics for relations whose live size is unknown.
const (
	catalogDefaultRows = 32  // unbounded user table, no better signal
	catalogSystemRows  = 16  // sys* tables: a handful of rows per node
	catalogMaxSizeCap  = 64  // declared size bounds are upper bounds, not estimates
	catalogRangeFanout = 8   // range(I, lo, hi) generator expansion guess
	defaultKeySkew     = 4.0 // rows per distinct non-key value
)

// CatalogStats estimates sizes from the plan's declarations alone — the
// cold-start fallback when tables are empty. Event streams have
// cardinality 1 (one tuple in flight), sys* tables are small, size
// bounds cap the estimate, and a key that covers the primary key is
// unique by construction.
type CatalogStats struct {
	p *Plan
}

// NewCatalogStats builds the declaration-derived estimator for p.
func NewCatalogStats(p *Plan) *CatalogStats { return &CatalogStats{p: p} }

// Cardinality estimates rows from the table declaration.
func (cs *CatalogStats) Cardinality(table string) float64 {
	ts, ok := cs.p.Tables[table]
	if !ok {
		return 1 // event stream: one tuple at a time
	}
	if ts.System {
		return catalogSystemRows
	}
	if ts.MaxSize > 0 {
		if ts.MaxSize < catalogMaxSizeCap {
			return float64(ts.MaxSize)
		}
		return catalogMaxSizeCap
	}
	return catalogDefaultRows
}

// DistinctKeys estimates key selectivity structurally: a key covering
// the primary key is unique per row; a key that is only the location
// column has a single value on any one node (every local row shares
// it); anything else is assumed mildly skewed.
func (cs *CatalogStats) DistinctKeys(table string, key []int) float64 {
	card := cs.Cardinality(table)
	ts, ok := cs.p.Tables[table]
	if !ok {
		return 1
	}
	if coversPK(key, ts.Keys) {
		return card
	}
	if locationOnly(key) {
		return 1
	}
	d := card / defaultKeySkew
	if d < 1 {
		return 1
	}
	return d
}

// coversPK reports whether key includes every primary-key position.
func coversPK(key, pk []int) bool {
	if len(pk) == 0 {
		return false
	}
	for _, p := range pk {
		found := false
		for _, k := range key {
			if k == p {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// locationOnly reports whether key touches nothing beyond field 0 (the
// location specifier, constant across a node's rows).
func locationOnly(key []int) bool {
	for _, k := range key {
		if k != 0 {
			return false
		}
	}
	return len(key) > 0
}
