package planner

import (
	"strings"
	"testing"

	"p2/internal/dataflow"
)

func foldOp(r *Rule) *OpFoldJoin {
	for _, op := range r.Ops {
		if f, ok := op.(*OpFoldJoin); ok {
			return f
		}
	}
	return nil
}

func TestFoldChordLookupRules(t *testing.T) {
	p := compile(t, chordLookupSrc)
	opt := Optimize(p, nil, OptimizerConfig{})
	byID := make(map[string]*Rule)
	for _, r := range opt.Rules {
		byID[r.ID] = r
	}

	// L1 has no aggregate: never folded.
	if foldOp(byID["L1"]) != nil {
		t.Fatal("L1 has no aggregate and must not fold")
	}
	// L2's min<D> comes from a trailing assignment: the fold absorbs the
	// finger join, the range filter, and the assignment as its input.
	f2 := foldOp(byID["L2"])
	if f2 == nil {
		t.Fatalf("L2 should fold: %v", byID["L2"].Ops)
	}
	if f2.Table != "finger" || f2.Fn != dataflow.AggMin || f2.Input == nil {
		t.Fatalf("L2 fold shape wrong: %+v", f2)
	}
	if byID["L2"].Agg != nil {
		t.Fatal("folded rule must not also carry an AggStream spec")
	}
	// L3's min<BI> is a raw finger field: the fold reads it in place.
	f3 := foldOp(byID["L3"])
	if f3 == nil {
		t.Fatalf("L3 should fold: %v", byID["L3"].Ops)
	}
	if f3.Table != "finger" || len(f3.Filters) != 2 || f3.Input == nil {
		t.Fatalf("L3 fold shape wrong: %+v", f3)
	}
}

func TestFoldDisabledByConfig(t *testing.T) {
	p := compile(t, chordLookupSrc)
	opt := Optimize(p, nil, OptimizerConfig{NoFold: true})
	for _, r := range opt.Rules {
		if foldOp(r) != nil {
			t.Fatalf("%s folded despite NoFold", r.ID)
		}
		if r.ID != "L1" && r.Agg == nil {
			t.Fatalf("%s lost its aggregate", r.ID)
		}
	}
}

func TestFoldDeclinesNonEventBoundExemplar(t *testing.T) {
	// The head projects S from the small join, so the rule is
	// pushdown-only — and pushdown-only rules never fold.
	p := compile(t, `
		materialize(small, 30, infinity, keys(2)).
		R1 out@X(X, S, min<B>) :- evt@X(X, A), small@X(X, S), B := S + A.
	`)
	opt := Optimize(p, nil, OptimizerConfig{})
	if foldOp(opt.Rules[0]) != nil {
		t.Fatal("non-event-bound exemplar head must not fold")
	}
}

func TestFoldDeclinesSumAvg(t *testing.T) {
	p := compile(t, `
		materialize(small, 30, infinity, keys(2)).
		R1 out@X(X, sum<S>) :- evt@X(X, A), small@X(X, S).
	`)
	opt := Optimize(p, nil, OptimizerConfig{})
	r := opt.Rules[0]
	if foldOp(r) != nil {
		t.Fatal("sum aggregates are accumulation-order sensitive and must not fold")
	}
	if r.Agg == nil || r.Agg.Fn != dataflow.AggSum {
		t.Fatalf("sum rule lost its AggStream: %+v", r)
	}
}

func TestFoldCountOverJoin(t *testing.T) {
	p := compile(t, `
		materialize(small, 30, infinity, keys(2)).
		R1 out@X(X, count<*>) :- evt@X(X, A), small@X(X, S), S > A.
	`)
	opt := Optimize(p, nil, OptimizerConfig{})
	f := foldOp(opt.Rules[0])
	if f == nil {
		t.Fatalf("count<*> over a join should fold: %v", opt.Rules[0].Ops)
	}
	if f.Fn != dataflow.AggCount || f.Input != nil || len(f.Filters) != 1 {
		t.Fatalf("count fold shape wrong: %+v", f)
	}
}

// TestFoldedPlanStringMentionsFold pins the inspector rendering so
// operators can see fusion in olgc -explain output.
func TestFoldedPlanStringMentionsFold(t *testing.T) {
	p := compile(t, chordLookupSrc)
	opt := Optimize(p, nil, OptimizerConfig{})
	s := opt.String()
	if !strings.Contains(s, "foldjoin finger") {
		t.Fatalf("plan dump lacks foldjoin: %s", s)
	}
}
