package planner

import "testing"

// Exhaustive compile-error coverage: every diagnostic the planner can
// produce should fire on a minimal program, with an actionable message.
func TestCompileDiagnostics(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"delete of stream", `r delete foo@X(X) :- bar@X(X).`, "not a materialized table"},
		{"two streams", `r out@X(X) :- a@X(X), b@X(X).`, "two event streams"},
		{"stream after event", `
			materialize(t, 10, 10, keys(1)).
			r out@X(X) :- a@X(X), t@X(X), b@X(X).`, "two event streams"},
		{"no trigger", `r out@X(X) :- X := 1 + 2.`, "no triggering predicate"},
		{"multi-node", `r out@X(X) :- a@X(X), b@Y(Y).`, "multi-node rule body"},
		{"mislocated call", `r out@X(X, T) :- a@X(X), T := f_now@Z().`, "located off the rule body"},
		{"remote delete", `
			materialize(t, 10, 10, keys(1)).
			r delete t@Y(Y) :- a@X(X), t@X(Y).`, "local to the rule body"},
		{"unbound head var", `r out@X(X, Q) :- a@X(X).`, "unbound variable Q"},
		{"unbound cond var", `r out@X(X) :- a@X(X), Q > 3.`, "unbound variable Q"},
		{"double assign", `r out@X(X) :- a@X(X), V := 1, V := 2.`, "assigned twice"},
		{"undefined const in expr", `r out@X(X, C) :- a@X(X), C := boop.`, "undefined constant"},
		{"undefined const in atom", `
			materialize(t, 10, 10, keys(1)).
			r out@X(X) :- a@X(X), t@X(X, boop).`, "undefined constant"},
		{"undefined const in event", `r out@X(X) :- a@X(X, boop).`, "undefined constant"},
		{"periodic missing period", `r out@X(X) :- periodic@X(X, E).`, "periodic needs"},
		{"periodic var period", `r out@X(X) :- periodic@X(X, E, P).`, "must be a constant"},
		{"periodic var count", `r out@X(X) :- periodic@X(X, E, 1, C2).`, "must be a constant"},
		{"range arity", `r out@X(X, I) :- a@X(X), range(I, 3).`, "range needs"},
		{"range non-var", `r out@X(X) :- a@X(X), range(7, 0, 3).`, "fresh variable"},
		{"range bound var", `r out@X(X) :- a@X(X), range(X, 0, 3).`, "already bound"},
		{"cartesian", `
			materialize(t, 10, 10, keys(1)).
			r out@X(X) :- a@X(X), t@X(Q).`, "shares no variables"},
		{"neg no shared", `
			materialize(t, 10, 10, keys(1)).
			r out@X(X) :- a@X(X), not t@X(Q).`, "shares no variables"},
		{"neg repeated fresh", `
			materialize(t, 10, 10, keys(1,2)).
			r out@X(X) :- a@X(X), not t@X(X, Q, Q).`, "repeated fresh variable"},
		{"multi agg", `r out@X(X, min<A>, max<A>) :- a@X(X, A).`, "multiple aggregates"},
		{"agg unbound", `r out@X(X, min<Q>) :- a@X(X).`, "is unbound"},
		{"min star", `r out@X(X, min<*>) :- a@X(X, A).`, "only valid for count"},
		{"count non-event field", `
			materialize(t, 10, 10, keys(1)).
			r out@X(X, M, count<*>) :- a@X(X), t@X(X, M).`, "not bound by the event"},
		{"head loc not first", `r out@Y(X, Y) :- a@X(X, Y).`, "first head argument"},
		{"located empty head", `r out@Y() :- a@Y(Y).`, "no arguments"},
		{"arity conflict", `
			a1 out@X(X) :- e1@X(X).
			a2 out@X(X, Y) :- e2@X(X, Y).`, "arity"},
		{"tableagg delete", `
			materialize(t, 10, 10, keys(1)).
			materialize(best, 10, 10, keys(1)).
			r delete best@X(X, min<C>) :- t@X(X, C).`, "cannot be deletions"},
		{"tableagg literal arg", `
			materialize(t, 10, 10, keys(1)).
			r best@X(X, min<C>) :- t@X(X, C, 9).`, "must be variables"},
		{"tableagg head expr", `
			materialize(t, 10, 10, keys(1)).
			r best@X(X, min<C>, "x") :- t@X(X, C).`, "must be variables"},
		{"tableagg unbound group", `
			materialize(t, 10, 10, keys(1)).
			r best@X(X, Q, min<C>) :- t@X(X, C).`, "not bound"},
		{"tableagg min star", `
			materialize(t, 10, 10, keys(1)).
			r best@X(X, min<*>) :- t@X(X, C).`, "only valid for count"},
		{"tableagg agg unbound", `
			materialize(t, 10, 10, keys(1)).
			r best@X(X, min<Q>) :- t@X(X, C).`, "not bound"},
		{"wildcard in head", `r out@X(X, _) :- a@X(X).`, ""},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			compileErr(t, c.src, c.want)
		})
	}
}

func TestLiteralArgsInEventGenerateSelections(t *testing.T) {
	// A literal in the event atom filters the stream.
	p := compile(t, `r out@X(X) :- evt@X(X, "go", 7).`)
	selects := 0
	for _, op := range p.Rules[0].Ops {
		if _, ok := op.(*OpSelect); ok {
			selects++
		}
	}
	if selects != 2 {
		t.Fatalf("selections for literal event args = %d, want 2", selects)
	}
}

func TestRepeatedVarInEventAtom(t *testing.T) {
	// evt(X, X) requires both fields equal.
	p := compile(t, `r out@X(X) :- evt@X(X, X).`)
	if len(p.Rules[0].Ops) != 1 {
		t.Fatalf("ops = %+v", p.Rules[0].Ops)
	}
	if _, ok := p.Rules[0].Ops[0].(*OpSelect); !ok {
		t.Fatal("expected equality selection")
	}
}

func TestRepeatedFreshVarInBodyAtom(t *testing.T) {
	// t(X, Q, Q): fresh Q repeated inside the joined atom becomes a
	// post-join equality.
	p := compile(t, `
		materialize(t, 10, 10, keys(1)).
		r out@X(X, Q) :- evt@X(X), t@X(X, Q, Q).
	`)
	var joins, selects int
	for _, op := range p.Rules[0].Ops {
		switch op.(type) {
		case *OpJoin:
			joins++
		case *OpSelect:
			selects++
		}
	}
	if joins != 1 || selects != 1 {
		t.Fatalf("joins=%d selects=%d", joins, selects)
	}
}

func TestNegatedAtomWithConstant(t *testing.T) {
	p := compile(t, `
		materialize(t, 10, 10, keys(1,2)).
		r out@X(X) :- evt@X(X), not t@X(X, "blocked").
	`)
	found := false
	for _, op := range p.Rules[0].Ops {
		if j, ok := op.(*OpJoin); ok && j.Neg {
			found = true
			if len(j.StreamKey) != 2 {
				t.Fatalf("antijoin keys = %+v", j)
			}
		}
	}
	if !found {
		t.Fatal("no antijoin")
	}
}

func TestFactErrors(t *testing.T) {
	compileErr(t, `f fact@X(X, 1 + 2).`, "must be a constant or variable")
}

func TestCallCompilation(t *testing.T) {
	p := compile(t, `
		r out@X(X, A, B, C, D, E2) :- evt@X(X, V),
			A := f_sha1(X), B := f_toID(V), C := f_toStr(V),
			D := f_localAddr(), E2 := f_coinFlip(0.5).
	`)
	if len(p.Rules) != 1 {
		t.Fatal("compile failed")
	}
	compileErr(t, `r out@X(X, A) :- evt@X(X), A := f_mystery().`, "unknown function")
	compileErr(t, `r out@X(X, A) :- evt@X(X), A := f_now(3).`, "expects 0 argument")
	compileErr(t, `r out@X(X, A) :- evt@X(X), A := f_sha1().`, "expects 1 argument")
	compileErr(t, `r out@X(X, A) :- evt@X(X), A := f_coinFlip().`, "expects 1 argument")
	compileErr(t, `r out@X(X, A) :- evt@X(X), A := f_rand(1).`, "expects 0 argument")
	compileErr(t, `r out@X(X, A) :- evt@X(X), A := f_localAddr(1).`, "expects 0 argument")
	compileErr(t, `r out@X(X, A) :- evt@X(X), A := f_toID().`, "expects 1 argument")
	compileErr(t, `r out@X(X, A) :- evt@X(X), A := f_toStr().`, "expects 1 argument")
}

func TestUnaryOperators(t *testing.T) {
	p := compile(t, `r out@X(X, A, B) :- evt@X(X, V), A := -V, B := !V.`)
	if len(p.Rules[0].Ops) != 2 {
		t.Fatalf("ops = %v", p.Rules[0].Ops)
	}
}

func TestStreamAggSumAvg(t *testing.T) {
	for _, fn := range []string{"sum", "avg"} {
		p := compile(t, `
			materialize(t, 10, 10, keys(1)).
			r out@X(X, `+fn+`<V>) :- evt@X(X), t@X(X, V).
		`)
		if p.Rules[0].Agg == nil {
			t.Fatalf("%s: no agg", fn)
		}
	}
}

func TestTableAggWildcardArg(t *testing.T) {
	p := compile(t, `
		materialize(t, 10, 10, keys(1)).
		r cnt@X(X, count<*>) :- t@X(X, _, _).
	`)
	if len(p.TableAggs) != 1 {
		t.Fatal("wildcards in table-agg body should be allowed")
	}
}
