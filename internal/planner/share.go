package planner

// Plan sharing across nodes of one deployment. Every simulated node
// used to run the full catalog optimization pass at Start — cloning the
// plan, classifying and recompiling every optimizer-eligible rule —
// even though the result is a pure function of (input plan, optimizer
// config): the catalog heuristics consult no per-node state. At 10k
// nodes that is 10k identical compilations and 10k copies of every
// recompiled strand's programs. OptimizeShared computes the optimized
// plan once per (plan, config) pair process-wide and hands each caller
// a cheap node-private view.
//
// What must stay private per node: the adaptive re-planner mutates
// optimizer-touched rules in place (Reoptimize refreshes CostEst and
// the CostBasis map; maybeReplan swaps Rules[i] for a recompiled
// strand). Exactly those rules — the ones carrying a non-nil CostBasis
// — are therefore shallow-copied per node with a fresh basis map, and
// the Rules slice and plan maps are fresh so structural extension
// (Install) stays node-local. Everything immutable is shared: frozen
// rules, compiled ops, PEL programs, head constructors, source ASTs.

import "sync"

type shareKey struct {
	plan *Plan
	cfg  OptimizerConfig
}

var (
	shareMu   sync.Mutex
	shareMemo map[shareKey]*Plan
)

// shareMemoCap bounds the template cache. Keys hold plan pointers, so
// an unbounded cache would pin every plan a long test run ever
// compiled; real processes use a handful of (plan, config) pairs, so
// wholesale reset on overflow never fires in practice.
const shareMemoCap = 64

// OptimizeShared returns Optimize(p, NewCatalogStats(p), cfg) computed
// at most once per (p, cfg) process-wide, as a node-private view: safe
// for this caller to re-plan and extend without affecting any other
// node sharing the same template.
func OptimizeShared(p *Plan, cfg OptimizerConfig) *Plan {
	key := shareKey{p, cfg}
	shareMu.Lock()
	tmpl, ok := shareMemo[key]
	shareMu.Unlock()
	if !ok {
		tmpl = Optimize(p, NewCatalogStats(p), cfg)
		// Prefill the OrderString memo while the template is still
		// private; the lazy fill is not safe once shards share it.
		for _, r := range tmpl.Rules {
			r.OrderString()
		}
		shareMu.Lock()
		if cached, again := shareMemo[key]; again {
			tmpl = cached // another goroutine won the race
		} else {
			if shareMemo == nil || len(shareMemo) >= shareMemoCap {
				shareMemo = make(map[shareKey]*Plan)
			}
			shareMemo[key] = tmpl
		}
		shareMu.Unlock()
	}
	return tmpl.cloneNodePrivate()
}

// cloneNodePrivate returns a view of p owned by one node: fresh plan
// maps and slices, and a private copy of every rule the adaptive
// re-planner may mutate in place (non-nil CostBasis). Immutable
// compiled artifacts stay shared.
func (p *Plan) cloneNodePrivate() *Plan {
	c := p.clone()
	for i, r := range c.Rules {
		if r.CostBasis == nil {
			continue
		}
		rc := *r
		rc.CostBasis = make(map[string]float64, len(r.CostBasis))
		for k, v := range r.CostBasis {
			rc.CostBasis[k] = v
		}
		c.Rules[i] = &rc
	}
	return c
}
