package introspect

import (
	"testing"

	"p2/internal/val"
)

// fakeSource is a canned counter provider.
type fakeSource struct{}

func (fakeSource) Addr() string { return "n1" }
func (fakeSource) NodeStat() NodeStat {
	return NodeStat{UptimeS: 2.5, Events: 7, Queue: 3}
}
func (fakeSource) TableStats() []TableStat {
	return []TableStat{
		{Name: "zeta", Tuples: 2, Inserts: 5, Deletes: 1, Refreshes: 4},
		{Name: "alpha", Tuples: 1, Inserts: 1},
		{Name: "sysTable", Tuples: 9}, // must be filtered out
	}
}
func (fakeSource) RuleStats() []RuleStat { return []RuleStat{{ID: "R1", Fires: 6}} }
func (fakeSource) PlanStats() []PlanStat {
	return []PlanStat{{Rule: "R1", Order: "1,0", CostEst: 42.5, Replans: 2}}
}
func (fakeSource) NetStats() []NetStat {
	return []NetStat{{
		Dest: "n2", Sent: 3, Recvd: 2, Bytes: 99, Retries: 1,
		Cwnd: 4.5, RTO: 0.2, Backlog: 7, BatchFill: 1.5,
		Drops: [4]int64{11, 12, 13, 14},
	}}
}

func TestSnapshotShapes(t *testing.T) {
	tuples := Snapshot(fakeSource{})
	// 1 sysNode + 2 sysTable (sys-prefixed filtered) + 1 sysRule +
	// 1 sysPlan + 1 sysNet.
	if len(tuples) != 6 {
		t.Fatalf("snapshot = %d tuples: %v", len(tuples), tuples)
	}
	arities := map[string]int{}
	for _, d := range Defs() {
		arities[d.Name] = d.Arity
	}
	for _, tp := range tuples {
		if !IsReserved(tp.Name()) {
			t.Fatalf("snapshot emitted non-system tuple %v", tp)
		}
		if tp.Arity() != arities[tp.Name()] {
			t.Fatalf("%s arity %d, catalog says %d", tp.Name(), tp.Arity(), arities[tp.Name()])
		}
		if tp.Loc() != "n1" {
			t.Fatalf("tuple not located at the node: %v", tp)
		}
	}
	// Table rows are sorted by name for deterministic event order.
	if tuples[1].Field(1).AsStr() != "alpha" || tuples[2].Field(1).AsStr() != "zeta" {
		t.Fatalf("table rows unsorted: %v %v", tuples[1], tuples[2])
	}
	plan := tuples[4]
	if plan.Name() != PlanRelation || plan.Field(1).AsStr() != "R1" ||
		plan.Field(2).AsStr() != "1,0" || plan.Field(3).AsFloat() != 42.5 ||
		plan.Field(4).AsInt() != 2 {
		t.Fatalf("sysPlan row = %v", plan)
	}
	net := tuples[5]
	if net.Name() != NetRelation || net.Field(1).AsStr() != "n2" || net.Field(4).AsInt() != 99 {
		t.Fatalf("sysNet row = %v", net)
	}
	if net.Field(6).AsFloat() != 4.5 || net.Field(8).AsInt() != 7 || net.Field(9).AsFloat() != 1.5 {
		t.Fatalf("sysNet control-state columns wrong: %v", net)
	}
	// Classified drop counters trail the row in DropCause order.
	for i := 0; i < 4; i++ {
		if got := net.Field(10 + i).AsInt(); got != int64(11+i) {
			t.Fatalf("sysNet drop column %d = %d, want %d", i, got, 11+i)
		}
	}
}

func TestHealthTuple(t *testing.T) {
	tp := HealthTuple(val.Str("n1"), HealthStat{
		Type: "Partitioned", Status: "True", Reason: "2 peers unreachable", SinceS: 12.5,
	})
	if tp.Name() != HealthRelation || tp.Arity() != 5 {
		t.Fatalf("sysHealth row = %v", tp)
	}
	if tp.Field(1).AsStr() != "Partitioned" || tp.Field(2).AsStr() != "True" ||
		tp.Field(3).AsStr() != "2 peers unreachable" || tp.Field(4).AsFloat() != 12.5 {
		t.Fatalf("sysHealth fields wrong: %v", tp)
	}
}

func TestIsReserved(t *testing.T) {
	for name, want := range map[string]bool{
		"sysTable": true, "sysAnything": true, "system": true,
		"succ": false, "Sys": false, "": false,
	} {
		if IsReserved(name) != want {
			t.Errorf("IsReserved(%q) != %v", name, want)
		}
	}
}
