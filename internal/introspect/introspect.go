// Package introspect materializes the P2 runtime's own state as
// soft-state system tables, the paper's "everything is a relation"
// stance applied to the runtime itself (§3.5, §7 "On-line distributed
// debugging"): dataflow counters become ordinary tuples, so monitoring
// and debugging queries are just more OverLog, installable while the
// node runs.
//
// Seven system relations exist on every node, refreshed periodically
// on the node's event loop:
//
//	sysTable(@N, Name, Tuples, Inserts, Deletes, Refreshes)
//	sysRule(@N, Rule, Fires)
//	sysPlan(@N, Rule, Order, CostEst, Replans)
//	sysNet(@N, Dest, Sent, Recvd, Bytes, Retries, Cwnd, RTO, Backlog, BatchFill,
//	       DropsRetry, DropsClosed, DropsDead, DropsOverflow)
//	sysNode(@N, UptimeS, EventsProcessed, QueueLen)
//	sysHealth(@N, Type, Status, Reason, SinceS)
//	sysKV(@N, Keys, Replicas, Quorum, Succs, Repairs, Expiries, Pending)
//
// sysKV only carries data on nodes running the key-value service
// (internal/kvs); elsewhere the relation exists but stays empty.
//
// The "sys" relation-name prefix is reserved: user programs may join,
// aggregate, and watch these tables but cannot materialize their own
// sys* relations. sysTable reports the node's application relations
// only — the system tables do not report on themselves, which keeps
// counter feedback loops out of idle nodes.
//
// The planner registers these schemas in every Plan (so rules joining
// them classify as stream×table equijoins); the engine instantiates
// them per node and feeds them from a Source — the split keeps this
// package free of engine dependencies and cycle-free.
package introspect

import (
	"sort"
	"strings"

	"p2/internal/tuple"
	"p2/internal/val"
)

// System relation names.
const (
	TableRelation  = "sysTable"
	RuleRelation   = "sysRule"
	PlanRelation   = "sysPlan"
	NetRelation    = "sysNet"
	NodeRelation   = "sysNode"
	HealthRelation = "sysHealth"
	KVRelation     = "sysKV"
)

// ReservedPrefix is the relation-name prefix claimed by the runtime.
const ReservedPrefix = "sys"

// IsReserved reports whether a relation name lives in the system
// namespace and therefore cannot be declared by user programs.
func IsReserved(name string) bool { return strings.HasPrefix(name, ReservedPrefix) }

// Def describes one system table's schema: its name, arity, and
// 0-based primary key positions. Lifetimes are chosen by the engine
// from its refresh interval, keeping rows soft state that fades when
// refreshes stop.
type Def struct {
	Name  string
	Arity int
	Keys  []int
	Doc   string
}

// Defs returns the system-table catalog in deterministic order.
func Defs() []Def {
	return []Def{
		{Name: TableRelation, Arity: 6, Keys: []int{0, 1},
			Doc: "sysTable(@N, Name, Tuples, Inserts, Deletes, Refreshes): per-relation row counts and cumulative delta counters"},
		{Name: RuleRelation, Arity: 3, Keys: []int{0, 1},
			Doc: "sysRule(@N, Rule, Fires): cumulative strand executions per compiled rule"},
		{Name: PlanRelation, Arity: 5, Keys: []int{0, 1},
			Doc: "sysPlan(@N, Rule, Order, CostEst, Replans): the query optimizer's current plan per rule — body term order (\"-\" when textual), estimated cost, and cumulative adaptive replans"},
		{Name: NetRelation, Arity: 14, Keys: []int{0, 1},
			Doc: "sysNet(@N, Dest, Sent, Recvd, Bytes, Retries, Cwnd, RTO, Backlog, BatchFill, DropsRetry, DropsClosed, DropsDead, DropsOverflow): per-peer transport accounting, live congestion state, and classified drop counters"},
		{Name: NodeRelation, Arity: 4, Keys: []int{0},
			Doc: "sysNode(@N, UptimeS, EventsProcessed, QueueLen): whole-node liveness"},
		{Name: HealthRelation, Arity: 5, Keys: []int{0, 1},
			Doc: "sysHealth(@N, Type, Status, Reason, SinceS): evaluated health conditions — Status is True/False/Unknown, SinceS the node time of the last status transition"},
		{Name: KVRelation, Arity: 8, Keys: []int{0},
			Doc: "sysKV(@N, Keys, Replicas, Quorum, Succs, Repairs, Expiries, Pending): key-value service state — keys held, configured replica factor and write quorum, live successor count, cumulative repair-rule fires and lease expiries, in-flight client ops"},
	}
}

// TableStat is one relation's counters, as reported by a Source.
type TableStat struct {
	Name      string
	Tuples    int   // live rows right now
	Inserts   int64 // delta-producing stores since creation
	Deletes   int64 // removals: explicit delete, FIFO eviction, TTL expiry
	Refreshes int64 // identical re-insertions that only renewed a TTL
}

// RuleStat is one rule's execution counter.
type RuleStat struct {
	ID    string
	Fires int64
}

// PlanStat is one rule's current optimizer plan: the body term order it
// executes with ("-" when running the textual plan), the cost the
// optimizer estimated for that order, and how many times the rule has
// been adaptively re-planned since start.
type PlanStat struct {
	Rule    string
	Order   string
	CostEst float64
	Replans int64
}

// NetStat is per-peer transport accounting, merged across send and
// receive state, plus the live control state of the transport's element
// chain toward the peer — so OverLog rules can observe congestion
// windows, retransmission timeouts, backlog pressure, and batching
// efficiency and react to them.
type NetStat struct {
	Dest      string
	Sent      int64   // tuples transmitted (including retransmissions)
	Recvd     int64   // tuples delivered upward (post-dedup)
	Bytes     int64   // data bytes put on the wire toward Dest
	Retries   int64   // retransmissions toward Dest
	Cwnd      float64 // current congestion window, datagrams
	RTO       float64 // current retransmission timeout, seconds
	Backlog   int     // tuples queued behind the congestion window
	BatchFill float64 // mean tuples per data datagram toward Dest

	// Drops counts tuples abandoned toward Dest, indexed by
	// transport.DropCause (RetryExhausted, SessionClosed, PeerDead,
	// BacklogOverflow) — a plain array so this package stays free of a
	// transport dependency; the engine asserts the lengths agree.
	Drops [4]int64
}

// NodeStat is whole-node liveness.
type NodeStat struct {
	UptimeS float64
	Events  int64 // strand executions processed since start
	Queue   int   // pending events on the node's scheduler
}

// HealthStat is one evaluated condition, as the health subsystem
// reports it — mirrored here (rather than importing internal/health)
// so the planner's dependency on this package stays cycle-free.
type HealthStat struct {
	Type   string  // condition name, e.g. "Partitioned"
	Status string  // "True", "False", or "Unknown"
	Reason string  // human-readable cause for the current status
	SinceS float64 // node time of the last status transition
}

// KVStat is the key-value service's per-node state, populated only on
// nodes running the kvs rules (the engine detects the kvStore table).
type KVStat struct {
	Keys     int   // rows in kvStore — keys this node currently holds
	Replicas int64 // configured replica factor (owner + successor list)
	Quorum   int64 // write quorum a PUT waits for
	Succs    int   // live distinct successors — the reachable replica fan-out
	Repairs  int64 // cumulative repair-rule fires (read-repair, anti-entropy, churn pulls)
	Expiries int64 // cumulative kvStore lease expiries and evictions
	Pending  int   // in-flight client ops parked in the pending tables
}

// Source supplies the runtime counters a snapshot is built from. The
// engine's Node implements it.
type Source interface {
	Addr() string
	NodeStat() NodeStat
	TableStats() []TableStat
	RuleStats() []RuleStat
	PlanStats() []PlanStat
	NetStats() []NetStat
}

// The render helpers below are the single source of truth for each
// system relation's field order and arity. Snapshot composes them, and
// so does the engine's incremental refresh (which caches rendered
// tuples per row and only re-renders when a row's counters change) —
// a schema change edits exactly one function per relation.

// NodeTuple renders one sysNode row.
func NodeTuple(addr val.Value, ns NodeStat) *tuple.Tuple {
	return tuple.New(NodeRelation,
		addr, val.Float(ns.UptimeS), val.Int(ns.Events), val.Int(int64(ns.Queue)))
}

// TableTuple renders one sysTable row.
func TableTuple(addr val.Value, ts TableStat) *tuple.Tuple {
	return tuple.New(TableRelation,
		addr, val.Str(ts.Name), val.Int(int64(ts.Tuples)),
		val.Int(ts.Inserts), val.Int(ts.Deletes), val.Int(ts.Refreshes))
}

// RuleTuple renders one sysRule row.
func RuleTuple(addr val.Value, rs RuleStat) *tuple.Tuple {
	return tuple.New(RuleRelation, addr, val.Str(rs.ID), val.Int(rs.Fires))
}

// PlanTuple renders one sysPlan row.
func PlanTuple(addr val.Value, ps PlanStat) *tuple.Tuple {
	return tuple.New(PlanRelation,
		addr, val.Str(ps.Rule), val.Str(ps.Order),
		val.Float(ps.CostEst), val.Int(ps.Replans))
}

// NetTuple renders one sysNet row.
func NetTuple(addr val.Value, st NetStat) *tuple.Tuple {
	return tuple.New(NetRelation,
		addr, val.Str(st.Dest), val.Int(st.Sent), val.Int(st.Recvd),
		val.Int(st.Bytes), val.Int(st.Retries), val.Float(st.Cwnd),
		val.Float(st.RTO), val.Int(int64(st.Backlog)), val.Float(st.BatchFill),
		val.Int(st.Drops[0]), val.Int(st.Drops[1]),
		val.Int(st.Drops[2]), val.Int(st.Drops[3]))
}

// KVTuple renders one sysKV row.
func KVTuple(addr val.Value, ks KVStat) *tuple.Tuple {
	return tuple.New(KVRelation,
		addr, val.Int(int64(ks.Keys)), val.Int(ks.Replicas), val.Int(ks.Quorum),
		val.Int(int64(ks.Succs)), val.Int(ks.Repairs), val.Int(ks.Expiries),
		val.Int(int64(ks.Pending)))
}

// HealthTuple renders one sysHealth row.
func HealthTuple(addr val.Value, hs HealthStat) *tuple.Tuple {
	return tuple.New(HealthRelation,
		addr, val.Str(hs.Type), val.Str(hs.Status), val.Str(hs.Reason),
		val.Float(hs.SinceS))
}

// Snapshot renders src's current state as system-table tuples, in
// deterministic order (sysNode, then sysTable, sysRule, sysNet rows
// sorted by their reporting Source). Inserting them into the node's
// tables is the caller's job — the engine routes them through its
// normal local-delivery path so deltas trigger listening rules.
func Snapshot(src Source) []*tuple.Tuple {
	addr := val.Str(src.Addr())
	out := []*tuple.Tuple{NodeTuple(addr, src.NodeStat())}

	tstats := src.TableStats()
	sort.Slice(tstats, func(i, j int) bool { return tstats[i].Name < tstats[j].Name })
	for _, ts := range tstats {
		if IsReserved(ts.Name) {
			continue
		}
		out = append(out, TableTuple(addr, ts))
	}
	for _, rs := range src.RuleStats() {
		out = append(out, RuleTuple(addr, rs))
	}
	for _, ps := range src.PlanStats() {
		out = append(out, PlanTuple(addr, ps))
	}
	nstats := src.NetStats()
	sort.Slice(nstats, func(i, j int) bool { return nstats[i].Dest < nstats[j].Dest })
	for _, st := range nstats {
		out = append(out, NetTuple(addr, st))
	}
	return out
}
