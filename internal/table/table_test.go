package table

import (
	"math/rand"
	"testing"
	"testing/quick"

	"p2/internal/eventloop"
	"p2/internal/tuple"
	"p2/internal/val"
)

func mk(name string, vs ...val.Value) *tuple.Tuple { return tuple.New(name, vs...) }

func member(addr string, seq int64) *tuple.Tuple {
	return mk("member", val.Str("n1"), val.Str(addr), val.Int(seq))
}

func TestInsertAndLookupPK(t *testing.T) {
	loop := eventloop.NewSim()
	tb := New("member", Infinity, 0, []int{1}, loop)
	res := tb.Insert(member("a", 1))
	if !res.Stored || !res.Delta || res.Replaced != nil {
		t.Fatalf("first insert: %+v", res)
	}
	if tb.Len() != 1 {
		t.Fatalf("len = %d", tb.Len())
	}
	got := tb.LookupPK(member("a", 1).Key([]int{1}))
	if got == nil || got.Field(2).AsInt() != 1 {
		t.Fatalf("LookupPK = %v", got)
	}
	if tb.LookupPK(member("zz", 0).Key([]int{1})) != nil {
		t.Error("missing key should be nil")
	}
}

func TestPrimaryKeyReplacement(t *testing.T) {
	loop := eventloop.NewSim()
	tb := New("member", Infinity, 0, []int{1}, loop)
	tb.Insert(member("a", 1))
	res := tb.Insert(member("a", 2))
	if !res.Delta || res.Replaced == nil || res.Replaced.Field(2).AsInt() != 1 {
		t.Fatalf("replacement: %+v", res)
	}
	if tb.Len() != 1 {
		t.Fatalf("len after replace = %d", tb.Len())
	}
}

func TestIdenticalRefreshNoDelta(t *testing.T) {
	loop := eventloop.NewSim()
	tb := New("member", 10, 0, []int{1}, loop)
	inserts, refreshes := 0, 0
	tb.OnInsert(func(*tuple.Tuple) { inserts++ })
	tb.OnRefresh(func(*tuple.Tuple) { refreshes++ })
	tb.Insert(member("a", 1))
	loop.Run(5)
	res := tb.Insert(member("a", 1))
	if res.Delta {
		t.Error("identical reinsert must not be a delta")
	}
	if inserts != 1 || refreshes != 1 {
		t.Errorf("inserts=%d refreshes=%d", inserts, refreshes)
	}
	// Refresh must extend the lifetime: at t=12 the original would have
	// expired but the refresh at t=5 keeps it until t=15.
	loop.Run(12)
	if tb.Len() != 1 {
		t.Error("refresh did not extend TTL")
	}
	loop.Run(15.1)
	if tb.Len() != 0 {
		t.Error("tuple should expire after refreshed TTL")
	}
}

func TestTTLExpiryFiresDelete(t *testing.T) {
	loop := eventloop.NewSim()
	tb := New("member", 120, 0, []int{1}, loop)
	var deleted []*tuple.Tuple
	tb.OnDelete(func(tp *tuple.Tuple) { deleted = append(deleted, tp) })
	tb.Insert(member("a", 1))
	loop.Run(60)
	tb.Insert(member("b", 2))
	loop.Run(120.5) // "a" expired at 120, "b" lives to 180.5
	if n := tb.Len(); n != 1 {
		t.Fatalf("len = %d, want 1", n)
	}
	if len(deleted) != 1 || deleted[0].Field(1).AsStr() != "a" {
		t.Fatalf("deleted = %v", deleted)
	}
}

func TestFIFOEviction(t *testing.T) {
	loop := eventloop.NewSim()
	tb := New("succ", Infinity, 3, []int{1}, loop)
	var evicted []string
	tb.OnDelete(func(tp *tuple.Tuple) { evicted = append(evicted, tp.Field(1).AsStr()) })
	for _, a := range []string{"a", "b", "c", "d", "e"} {
		tb.Insert(member(a, 1))
	}
	if tb.Len() != 3 {
		t.Fatalf("len = %d, want 3", tb.Len())
	}
	if len(evicted) != 2 || evicted[0] != "a" || evicted[1] != "b" {
		t.Fatalf("evicted = %v (want oldest first)", evicted)
	}
}

func TestSingletonTable(t *testing.T) {
	// materialize(sequence, infinity, 1, keys(2)) — new values replace
	// via FIFO eviction even though primary keys differ.
	loop := eventloop.NewSim()
	tb := New("sequence", Infinity, 1, []int{1}, loop)
	tb.Insert(mk("sequence", val.Str("n1"), val.Int(0)))
	tb.Insert(mk("sequence", val.Str("n1"), val.Int(1)))
	tb.Insert(mk("sequence", val.Str("n1"), val.Int(2)))
	rows := tb.Scan()
	if len(rows) != 1 || rows[0].Field(1).AsInt() != 2 {
		t.Fatalf("singleton = %v", rows)
	}
}

func TestExplicitDelete(t *testing.T) {
	loop := eventloop.NewSim()
	tb := New("neighbor", Infinity, 0, []int{1}, loop)
	var deleted int
	tb.OnDelete(func(*tuple.Tuple) { deleted++ })
	tb.Insert(member("a", 1))
	if !tb.Delete(member("a", 99)) { // pk match suffices; payload differs
		t.Fatal("delete by pk failed")
	}
	if tb.Delete(member("a", 1)) {
		t.Fatal("second delete should find nothing")
	}
	if deleted != 1 || tb.Len() != 0 {
		t.Fatalf("deleted=%d len=%d", deleted, tb.Len())
	}
}

func TestDeleteWhereAndClear(t *testing.T) {
	loop := eventloop.NewSim()
	tb := New("m", Infinity, 0, []int{1}, loop)
	for _, a := range []string{"a", "b", "c"} {
		tb.Insert(member(a, 1))
	}
	n := tb.DeleteWhere(func(tp *tuple.Tuple) bool { return tp.Field(1).AsStr() != "b" })
	if n != 2 || tb.Len() != 1 {
		t.Fatalf("DeleteWhere removed %d, len %d", n, tb.Len())
	}
	tb.Clear()
	if tb.Len() != 0 {
		t.Fatal("clear failed")
	}
}

func TestSecondaryIndex(t *testing.T) {
	loop := eventloop.NewSim()
	tb := New("finger", Infinity, 0, []int{1}, loop)
	tb.EnsureIndex([]int{2})
	ins := func(i int64, who string) {
		tb.Insert(mk("finger", val.Str("n1"), val.Int(i), val.Str(who)))
	}
	ins(0, "alice")
	ins(1, "alice")
	ins(2, "bob")
	key := mk("k", val.Str("alice")).Key([]int{0})
	got := tb.Lookup([]int{2}, key)
	if len(got) != 2 {
		t.Fatalf("index lookup = %v", got)
	}
	// Replacement must keep the index in sync.
	ins(0, "bob")
	got = tb.Lookup([]int{2}, key)
	if len(got) != 1 {
		t.Fatalf("after replace, alice rows = %v", got)
	}
	// Deletion too.
	tb.Delete(mk("finger", val.Str("n1"), val.Int(1)))
	if len(tb.Lookup([]int{2}, key)) != 0 {
		t.Fatal("index not updated on delete")
	}
}

func TestEnsureIndexBackfills(t *testing.T) {
	loop := eventloop.NewSim()
	tb := New("m", Infinity, 0, []int{1}, loop)
	tb.Insert(member("a", 7))
	tb.Insert(member("b", 7))
	tb.EnsureIndex([]int{2}) // created after rows exist
	key := mk("k", val.Int(7)).Key([]int{0})
	if got := tb.Lookup([]int{2}, key); len(got) != 2 {
		t.Fatalf("backfilled index lookup = %v", got)
	}
	tb.EnsureIndex([]int{2}) // idempotent
}

func TestLookupMissingIndexPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	loop := eventloop.NewSim()
	tb := New("m", Infinity, 0, []int{1}, loop)
	tb.Lookup([]int{3}, "k")
}

func TestIndexLookupSkipsExpired(t *testing.T) {
	loop := eventloop.NewSim()
	tb := New("m", 10, 0, []int{1}, loop)
	tb.EnsureIndex([]int{2})
	tb.Insert(member("a", 7))
	loop.Run(5)
	tb.Insert(member("b", 7))
	loop.Run(10.5) // "a" dead, "b" alive
	key := mk("k", val.Int(7)).Key([]int{0})
	got := tb.Lookup([]int{2}, key)
	if len(got) != 1 || got[0].Field(1).AsStr() != "b" {
		t.Fatalf("lookup after expiry = %v", got)
	}
}

func TestScanOrders(t *testing.T) {
	loop := eventloop.NewSim()
	tb := New("m", Infinity, 0, []int{1}, loop)
	tb.Insert(member("c", 1))
	tb.Insert(member("a", 2))
	scan := tb.Scan()
	if scan[0].Field(1).AsStr() != "c" {
		t.Error("Scan must preserve insertion order")
	}
	sorted := tb.ScanSorted()
	if sorted[0].Field(1).AsStr() != "a" {
		t.Error("ScanSorted must order deterministically")
	}
}

func TestAccessors(t *testing.T) {
	loop := eventloop.NewSim()
	tb := New("m", 120, 5, []int{1, 2}, loop)
	if tb.Name() != "m" || tb.TTL() != 120 || tb.MaxSize() != 5 {
		t.Error("accessors wrong")
	}
	if pk := tb.PrimaryKey(); len(pk) != 2 || pk[0] != 1 {
		t.Error("pk accessor wrong")
	}
	// ttl <= 0 normalizes to Infinity.
	if New("x", 0, 0, nil, loop).TTL() != Infinity {
		t.Error("zero ttl should mean infinity")
	}
}

// Property: under arbitrary insert/delete sequences the table never
// exceeds maxSize, primary keys stay unique, and every indexed lookup
// agrees with a full scan.
func TestTableInvariants(t *testing.T) {
	f := func(ops []uint16, seed int64) bool {
		loop := eventloop.NewSim()
		r := rand.New(rand.NewSource(seed))
		tb := New("m", 50, 4, []int{1}, loop)
		tb.EnsureIndex([]int{2})
		for _, op := range ops {
			addr := string(rune('a' + int(op)%6))
			seq := int64(op) % 3
			switch op % 4 {
			case 0, 1:
				tb.Insert(member(addr, seq))
			case 2:
				tb.Delete(member(addr, 0))
			case 3:
				loop.Run(loop.Now() + float64(r.Intn(30)))
			}
			scan := tb.Scan()
			if tb.maxSize > 0 && len(scan) > tb.maxSize {
				return false
			}
			seen := map[string]bool{}
			for _, row := range scan {
				k := row.Key([]int{1})
				if seen[k] {
					return false // duplicate primary key
				}
				seen[k] = true
			}
			// Index agreement.
			for s := int64(0); s < 3; s++ {
				key := mk("k", val.Int(s)).Key([]int{0})
				viaIndex := tb.Lookup([]int{2}, key)
				count := 0
				for _, row := range tb.Scan() {
					if row.Field(2).AsInt() == s {
						count++
					}
				}
				if len(viaIndex) != count {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func BenchmarkInsertReplace(b *testing.B) {
	loop := eventloop.NewSim()
	tb := New("m", Infinity, 0, []int{1}, loop)
	tuples := []*tuple.Tuple{member("a", 1), member("a", 2)}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tb.Insert(tuples[i%2])
	}
}

func BenchmarkIndexLookup(b *testing.B) {
	loop := eventloop.NewSim()
	tb := New("m", Infinity, 0, []int{1}, loop)
	tb.EnsureIndex([]int{2})
	for i := 0; i < 100; i++ {
		tb.Insert(member(string(rune('a'+i%26))+string(rune('0'+i/26)), int64(i%10)))
	}
	key := mk("k", val.Int(5)).Key([]int{0})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tb.Lookup([]int{2}, key)
	}
}
