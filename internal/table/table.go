// Package table implements P2's soft-state tables (§3.2).
//
// A Table is a queue of tuples with a primary key, an optional lifetime
// (tuples expire TTL seconds after their last refresh) and an optional
// maximum size (oldest tuples are evicted FIFO when full) — the two
// constraints OverLog's materialize() directive declares. Secondary
// in-memory indices provide the equality lookups that stream×table
// equijoins perform.
//
// Tables are node-local and single-threaded: the run-to-completion event
// loop means no locking is needed, mirroring the paper's libasync-based
// design. Insert and delete listeners let the planner turn table deltas
// into dataflow events and keep continuous aggregates current.
package table

import (
	"container/list"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"p2/internal/eventloop"
	"p2/internal/tuple"
)

// Infinity marks an unbounded lifetime or size in a table declaration.
const Infinity = math.MaxFloat64

// Table is a soft-state relation. Not safe for concurrent use.
type Table struct {
	name    string
	ttl     float64 // seconds; Infinity for immortal tuples
	maxSize int     // 0 or negative = unbounded
	pk      []int   // primary key field positions (0-based)
	clock   eventloop.Clock

	rows    map[string]*row // primary key → row
	order   *list.List      // *row in insertion order, oldest first
	indices map[string]*index

	onInsert  []func(*tuple.Tuple)
	onDelete  []func(*tuple.Tuple)
	onRefresh []func(*tuple.Tuple)
	onReplace []func(*tuple.Tuple)
	inserting *tuple.Tuple

	stats Stats
}

// Stats counts table activity since creation — the raw material of the
// sysTable introspection relation. Silent primary-key replacement
// counts as one insert (not a delete): the old row was displaced, not
// retracted.
type Stats struct {
	Inserts   int64 // delta-producing stores
	Deletes   int64 // removals: explicit delete, FIFO eviction, TTL expiry
	Refreshes int64 // identical re-insertions that only renewed a TTL
}

type row struct {
	t       *tuple.Tuple
	expires float64
	elem    *list.Element
}

type index struct {
	positions []int
	m         map[string][]*row
}

// New creates a table. ttl is the tuple lifetime in seconds (use
// Infinity for no expiry); maxSize bounds the row count (<= 0 for
// unbounded); pk lists the 0-based field positions of the primary key.
// The clock supplies "now" for expiry decisions.
func New(name string, ttl float64, maxSize int, pk []int, clock eventloop.Clock) *Table {
	if ttl <= 0 {
		ttl = Infinity
	}
	return &Table{
		name:    name,
		ttl:     ttl,
		maxSize: maxSize,
		pk:      append([]int(nil), pk...),
		clock:   clock,
		rows:    make(map[string]*row),
		order:   list.New(),
		indices: make(map[string]*index),
	}
}

// Name returns the relation name.
func (tb *Table) Name() string { return tb.name }

// TTL returns the configured lifetime in seconds.
func (tb *Table) TTL() float64 { return tb.ttl }

// MaxSize returns the configured size bound (0 = unbounded).
func (tb *Table) MaxSize() int { return tb.maxSize }

// PrimaryKey returns the primary key positions.
func (tb *Table) PrimaryKey() []int { return tb.pk }

// Stats returns a copy of the table's activity counters.
func (tb *Table) Stats() Stats { return tb.stats }

// Len returns the number of live rows, expiring stale ones first.
func (tb *Table) Len() int {
	tb.Expire()
	return len(tb.rows)
}

// OnInsert registers fn to run whenever a genuinely new or changed
// tuple is stored. Refreshes of identical tuples do not fire it — this
// is what keeps recursive rules from deriving forever, matching
// fixpoint semantics.
func (tb *Table) OnInsert(fn func(*tuple.Tuple)) { tb.onInsert = append(tb.onInsert, fn) }

// OnDelete registers fn to run whenever a tuple leaves the table:
// explicit deletion, FIFO eviction, or TTL expiry.
func (tb *Table) OnDelete(fn func(*tuple.Tuple)) { tb.onDelete = append(tb.onDelete, fn) }

// OnRefresh registers fn to run when an identical tuple is re-inserted
// (its TTL renewed but no delta produced).
func (tb *Table) OnRefresh(fn func(*tuple.Tuple)) { tb.onRefresh = append(tb.onRefresh, fn) }

// OnReplace registers fn to run with the row displaced by a primary-key
// replacement. It fires immediately before the replacement's OnInsert
// callbacks — always as a pair — so incremental listeners (continuous
// aggregates) can retract the old row's contribution. Displacement is
// not a delete: the delete listeners and counter are untouched.
func (tb *Table) OnReplace(fn func(*tuple.Tuple)) { tb.onReplace = append(tb.onReplace, fn) }

// Inserting returns the tuple an in-progress Insert has stored but not
// yet announced through OnInsert — non-nil only inside delete listeners
// fired by that insert's FIFO eviction. Incremental listeners use it to
// defer their reaction to the insert's own callback, so one table
// mutation produces one notification.
func (tb *Table) Inserting() *tuple.Tuple { return tb.inserting }

// InsertResult describes what an Insert did.
type InsertResult struct {
	Stored   bool         // tuple is now in the table
	Delta    bool         // the table's contents changed (fire delta rules)
	Replaced *tuple.Tuple // previous row displaced by a primary-key match
}

// Insert stores t, applying primary-key replacement, FIFO size
// eviction, and TTL stamping. Arity must match prior rows (enforced by
// the planner; here we only guard the key positions).
func (tb *Table) Insert(t *tuple.Tuple) InsertResult {
	tb.Expire()
	now := tb.clock.Now()
	key := t.Key(tb.pk)

	if existing, ok := tb.rows[key]; ok {
		if existing.t.Equal(t) {
			// Pure refresh: renew lifetime, no delta.
			existing.expires = tb.expiry(now)
			tb.order.MoveToBack(existing.elem)
			tb.stats.Refreshes++
			for _, fn := range tb.onRefresh {
				fn(t)
			}
			return InsertResult{Stored: true}
		}
		old := existing.t
		tb.removeRow(existing, false)
		tb.addRow(t, now)
		tb.stats.Inserts++
		for _, fn := range tb.onReplace {
			fn(old)
		}
		for _, fn := range tb.onInsert {
			fn(t)
		}
		return InsertResult{Stored: true, Delta: true, Replaced: old}
	}

	tb.addRow(t, now)
	// FIFO eviction when over capacity. The eviction's delete listeners
	// fire while t is stored but not yet announced; Inserting marks the
	// window so incremental listeners can fold the whole mutation into
	// one notification.
	prev := tb.inserting
	tb.inserting = t
	for tb.maxSize > 0 && len(tb.rows) > tb.maxSize {
		oldest := tb.order.Front().Value.(*row)
		tb.removeRow(oldest, true)
	}
	tb.inserting = prev
	tb.stats.Inserts++
	for _, fn := range tb.onInsert {
		fn(t)
	}
	return InsertResult{Stored: true, Delta: true}
}

func (tb *Table) expiry(now float64) float64 {
	if tb.ttl == Infinity {
		return Infinity
	}
	return now + tb.ttl
}

func (tb *Table) addRow(t *tuple.Tuple, now float64) {
	r := &row{t: t, expires: tb.expiry(now)}
	r.elem = tb.order.PushBack(r)
	tb.rows[t.Key(tb.pk)] = r
	for _, ix := range tb.indices {
		k := t.Key(ix.positions)
		ix.m[k] = append(ix.m[k], r)
	}
}

// removeRow unlinks r; when notify is set the delete listeners fire.
func (tb *Table) removeRow(r *row, notify bool) {
	delete(tb.rows, r.t.Key(tb.pk))
	tb.order.Remove(r.elem)
	for _, ix := range tb.indices {
		k := r.t.Key(ix.positions)
		rows := ix.m[k]
		for i, cand := range rows {
			if cand == r {
				rows[i] = rows[len(rows)-1]
				rows = rows[:len(rows)-1]
				break
			}
		}
		if len(rows) == 0 {
			delete(ix.m, k)
		} else {
			ix.m[k] = rows
		}
	}
	if notify {
		tb.stats.Deletes++
		for _, fn := range tb.onDelete {
			fn(r.t)
		}
	}
}

// Delete removes the row whose primary key matches t. It reports
// whether a row was removed.
func (tb *Table) Delete(t *tuple.Tuple) bool {
	tb.Expire()
	r, ok := tb.rows[t.Key(tb.pk)]
	if !ok {
		return false
	}
	tb.removeRow(r, true)
	return true
}

// DeleteWhere removes every live row for which pred returns true,
// returning the count.
func (tb *Table) DeleteWhere(pred func(*tuple.Tuple) bool) int {
	tb.Expire()
	var victims []*row
	for e := tb.order.Front(); e != nil; e = e.Next() {
		r := e.Value.(*row)
		if pred(r.t) {
			victims = append(victims, r)
		}
	}
	for _, r := range victims {
		tb.removeRow(r, true)
	}
	return len(victims)
}

// Clear removes every row, firing delete listeners.
func (tb *Table) Clear() {
	var victims []*row
	for e := tb.order.Front(); e != nil; e = e.Next() {
		victims = append(victims, e.Value.(*row))
	}
	for _, r := range victims {
		tb.removeRow(r, true)
	}
}

// Expire removes rows past their lifetime, firing delete listeners.
// It returns the number expired. Callers rarely need this directly —
// every accessor calls it — but the engine also sweeps periodically so
// deletions surface promptly even in idle tables.
//
// Because the TTL is constant and refreshes move rows to the back, the
// order list is sorted by expiry: expiry only ever pops from the front,
// making the common no-expiry case O(1).
func (tb *Table) Expire() int {
	if tb.ttl == Infinity {
		return 0
	}
	now := tb.clock.Now()
	n := 0
	for {
		front := tb.order.Front()
		if front == nil {
			break
		}
		r := front.Value.(*row)
		if r.expires > now {
			break
		}
		tb.removeRow(r, true)
		n++
	}
	return n
}

// EnsureIndex creates a secondary index over the given field positions
// if one does not already exist.
func (tb *Table) EnsureIndex(positions []int) {
	sig := indexSig(positions)
	if _, ok := tb.indices[sig]; ok {
		return
	}
	ix := &index{positions: append([]int(nil), positions...), m: make(map[string][]*row)}
	for e := tb.order.Front(); e != nil; e = e.Next() {
		r := e.Value.(*row)
		k := r.t.Key(ix.positions)
		ix.m[k] = append(ix.m[k], r)
	}
	tb.indices[sig] = ix
}

func indexSig(positions []int) string {
	parts := make([]string, len(positions))
	for i, p := range positions {
		parts[i] = strconv.Itoa(p)
	}
	return strings.Join(parts, ",")
}

// Lookup returns the live tuples whose indexed fields equal key.
// The index must have been created with EnsureIndex; looking up a
// missing index panics, which flags a planner bug immediately.
func (tb *Table) Lookup(positions []int, key string) []*tuple.Tuple {
	tb.Expire()
	ix, ok := tb.indices[indexSig(positions)]
	if !ok {
		panic(fmt.Sprintf("table %s: lookup on missing index %v", tb.name, positions))
	}
	rows := ix.m[key]
	out := make([]*tuple.Tuple, 0, len(rows))
	for _, r := range rows {
		out = append(out, r.t)
	}
	return out
}

// PeekLookup is Lookup without the expiry pass — for listeners that
// read the table while a mutation is in progress, where re-entering
// Expire would recurse into the listener chain. Rows past their TTL but
// not yet swept may be included; their own delete notifications follow.
func (tb *Table) PeekLookup(positions []int, key string) []*tuple.Tuple {
	ix, ok := tb.indices[indexSig(positions)]
	if !ok {
		panic(fmt.Sprintf("table %s: lookup on missing index %v", tb.name, positions))
	}
	rows := ix.m[key]
	out := make([]*tuple.Tuple, 0, len(rows))
	for _, r := range rows {
		out = append(out, r.t)
	}
	return out
}

// LookupPK returns the live tuple with the given primary-key value, or
// nil.
func (tb *Table) LookupPK(key string) *tuple.Tuple {
	tb.Expire()
	if r, ok := tb.rows[key]; ok {
		return r.t
	}
	return nil
}

// Scan returns all live tuples in insertion order.
func (tb *Table) Scan() []*tuple.Tuple {
	tb.Expire()
	out := make([]*tuple.Tuple, 0, len(tb.rows))
	for e := tb.order.Front(); e != nil; e = e.Next() {
		out = append(out, e.Value.(*row).t)
	}
	return out
}

// ScanSorted returns all live tuples ordered by their rendered form —
// deterministic output for tests and the olgc inspector.
func (tb *Table) ScanSorted() []*tuple.Tuple {
	out := tb.Scan()
	sort.Slice(out, func(i, j int) bool { return out[i].String() < out[j].String() })
	return out
}
