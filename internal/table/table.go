// Package table implements P2's soft-state tables (§3.2).
//
// A Table is a queue of tuples with a primary key, an optional lifetime
// (tuples expire TTL seconds after their last refresh) and an optional
// maximum size (oldest tuples are evicted FIFO when full) — the two
// constraints OverLog's materialize() directive declares. Secondary
// in-memory indices provide the equality lookups that stream×table
// equijoins perform.
//
// Tables are node-local and single-threaded: the run-to-completion event
// loop means no locking is needed, mirroring the paper's libasync-based
// design. Insert and delete listeners let the planner turn table deltas
// into dataflow events and keep continuous aggregates current.
//
// The probe path is allocation-free: every row caches its rendered
// primary and per-index key strings at add time (removal and
// replacement never re-render), and equijoins resolve an *Index handle
// once at wiring time, then probe it with Index.Each against a scratch
// key buffer — no signature strings, no result slices.
//
// Row storage is compact: rows carry intrusive insertion-order links
// (no container/list element per row), are allocated from per-table
// blocks and recycled through a free list (steady-state churn — the
// constant replace/expire/re-derive cycle of soft state — allocates no
// row structs), and every rendered key is interned through the global
// symbol table, so the thousands of rows across a deployment that
// embed the same address share one backing array.
package table

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"p2/internal/eventloop"
	"p2/internal/tuple"
	"p2/internal/val"
)

// Infinity marks an unbounded lifetime or size in a table declaration.
const Infinity = math.MaxFloat64

// Row blocks start small — most tables hold a handful of rows (a
// Chord node's successor list is 4, its predecessor 1) — and double up
// to rowBlockMax as the table proves it churns.
const (
	rowBlockMin = 8
	rowBlockMax = 64
)

// Table is a soft-state relation. Not safe for concurrent use.
type Table struct {
	name    string
	ttl     float64 // seconds; Infinity for immortal tuples
	maxSize int     // 0 or negative = unbounded
	pk      []int   // primary key field positions (0-based)
	clock   eventloop.Clock

	rows       map[string]*row // primary key → row
	head, tail *row            // insertion order, oldest first (intrusive)
	free       *row            // recycled rows, linked through row.next
	blockLen   int             // next arena block size
	indices    []*Index        // creation order; row.ixKeys is parallel
	bySig      map[string]*Index

	onInsert  []func(*tuple.Tuple)
	onDelete  []func(*tuple.Tuple)
	onRefresh []func(*tuple.Tuple)
	onReplace []func(*tuple.Tuple)
	inserting *tuple.Tuple

	// probing counts in-flight Index.Each visits. While positive,
	// removals tombstone bucket slots instead of compacting them, so a
	// probe never visits a row twice; buckets compact when it drops to
	// zero.
	probing int

	scratch []byte // probe/insert key render buffer

	// version counts content mutations (row added or removed). Pure
	// refreshes do not bump it: they change no bucket, so a probe
	// result cached at version v is still exact after any number of
	// refreshes. Shared probe caches key on this.
	version uint64

	stats Stats
}

// Stats counts table activity since creation — the raw material of the
// sysTable introspection relation. Silent primary-key replacement
// counts as one insert (not a delete): the old row was displaced, not
// retracted.
type Stats struct {
	Inserts   int64 // delta-producing stores
	Deletes   int64 // removals: explicit delete, FIFO eviction, TTL expiry
	Refreshes int64 // identical re-insertions that only renewed a TTL
}

// row is a resident tuple plus its cached keys and intrusive links.
// Rows are arena-allocated and recycled: a *row is only valid while the
// row is resident, and nothing outside this package ever holds one.
type row struct {
	t          *tuple.Tuple
	expires    float64
	prev, next *row     // insertion-order links; next doubles as the free-list link
	pk         string   // rendered primary key, cached (interned) at add time
	ixKeys     []string // rendered per-index keys, parallel to Table.indices
}

// Index is a secondary equality index over a fixed set of field
// positions — the handle equijoins resolve once at wiring time and
// probe on every event. Obtained from Table.EnsureIndex.
type Index struct {
	tb        *Table
	positions []int
	ord       int // position in Table.indices; row.ixKeys[ord] is this index's key
	m         map[string][]*row
	dirty     []string // bucket keys tombstoned while a probe was live
	appends   uint64   // bumped per bucket append; live probes re-read on change
}

// New creates a table. ttl is the tuple lifetime in seconds (use
// Infinity for no expiry); maxSize bounds the row count (<= 0 for
// unbounded); pk lists the 0-based field positions of the primary key.
// The clock supplies "now" for expiry decisions.
func New(name string, ttl float64, maxSize int, pk []int, clock eventloop.Clock) *Table {
	if ttl <= 0 {
		ttl = Infinity
	}
	return &Table{
		name:    name,
		ttl:     ttl,
		maxSize: maxSize,
		pk:      append([]int(nil), pk...),
		clock:   clock,
		rows:    make(map[string]*row),
		bySig:   make(map[string]*Index),
	}
}

// Name returns the relation name.
func (tb *Table) Name() string { return tb.name }

// TTL returns the configured lifetime in seconds.
func (tb *Table) TTL() float64 { return tb.ttl }

// MaxSize returns the configured size bound (0 = unbounded).
func (tb *Table) MaxSize() int { return tb.maxSize }

// PrimaryKey returns the primary key positions.
func (tb *Table) PrimaryKey() []int { return tb.pk }

// Stats returns a copy of the table's activity counters.
func (tb *Table) Stats() Stats { return tb.stats }

// Len returns the number of live rows, expiring stale ones first.
func (tb *Table) Len() int {
	tb.Expire()
	return len(tb.rows)
}

// LenRaw returns the resident row count without an expiry pass — rows
// past their TTL but not yet swept are included. For hot paths that
// only need an approximate cardinality (the optimizer's per-refresh
// drift checks) and must not pay an expiry walk per call.
func (tb *Table) LenRaw() int { return len(tb.rows) }

// Version returns the content-mutation counter: it advances whenever a
// row is added or removed and never on pure refreshes. Two reads that
// observe the same version are guaranteed to see identical contents.
func (tb *Table) Version() uint64 { return tb.version }

// DistinctKeys returns the number of distinct values the given field
// positions currently take — the bucket count of the matching
// secondary index. It returns 0 (unknown) when no such index exists;
// it never creates one, so the optimizer can ask about arbitrary keys
// without growing per-insert maintenance work.
func (tb *Table) DistinctKeys(positions []int) int {
	ix, ok := tb.bySig[indexSig(positions)]
	if !ok {
		return 0
	}
	tb.Expire()
	return len(ix.m)
}

// OnInsert registers fn to run whenever a genuinely new or changed
// tuple is stored. Refreshes of identical tuples do not fire it — this
// is what keeps recursive rules from deriving forever, matching
// fixpoint semantics.
func (tb *Table) OnInsert(fn func(*tuple.Tuple)) { tb.onInsert = append(tb.onInsert, fn) }

// OnDelete registers fn to run whenever a tuple leaves the table:
// explicit deletion, FIFO eviction, or TTL expiry.
func (tb *Table) OnDelete(fn func(*tuple.Tuple)) { tb.onDelete = append(tb.onDelete, fn) }

// OnRefresh registers fn to run when an identical tuple is re-inserted
// (its TTL renewed but no delta produced).
func (tb *Table) OnRefresh(fn func(*tuple.Tuple)) { tb.onRefresh = append(tb.onRefresh, fn) }

// OnReplace registers fn to run with the row displaced by a primary-key
// replacement. It fires immediately before the replacement's OnInsert
// callbacks — always as a pair — so incremental listeners (continuous
// aggregates) can retract the old row's contribution. Displacement is
// not a delete: the delete listeners and counter are untouched.
func (tb *Table) OnReplace(fn func(*tuple.Tuple)) { tb.onReplace = append(tb.onReplace, fn) }

// Inserting returns the tuple an in-progress Insert has stored but not
// yet announced through OnInsert — non-nil only inside delete listeners
// fired by that insert's FIFO eviction. Incremental listeners use it to
// defer their reaction to the insert's own callback, so one table
// mutation produces one notification.
func (tb *Table) Inserting() *tuple.Tuple { return tb.inserting }

// InsertResult describes what an Insert did.
type InsertResult struct {
	Stored   bool         // tuple is now in the table
	Delta    bool         // the table's contents changed (fire delta rules)
	Replaced *tuple.Tuple // previous row displaced by a primary-key match
}

// Insert stores t, applying primary-key replacement, FIFO size
// eviction, and TTL stamping. Arity must match prior rows (enforced by
// the planner; here we only guard the key positions).
//
// The primary key is rendered exactly once, into a scratch buffer; pure
// refreshes (the steady state of periodic re-derivation) allocate
// nothing, and replacements reuse the displaced row's cached key
// string.
func (tb *Table) Insert(t *tuple.Tuple) InsertResult {
	tb.Expire()
	now := tb.clock.Now()
	tb.scratch = t.AppendKey(tb.scratch[:0], tb.pk)

	if existing, ok := tb.rows[string(tb.scratch)]; ok {
		if existing.t.Equal(t) {
			// Pure refresh: renew lifetime, no delta.
			existing.expires = tb.expiry(now)
			tb.moveToBack(existing)
			tb.stats.Refreshes++
			for _, fn := range tb.onRefresh {
				fn(t)
			}
			return InsertResult{Stored: true}
		}
		old := existing.t
		pk := existing.pk // same key bytes; reuse the interned string
		tb.removeRow(existing, false)
		tb.addRow(t, now, pk)
		tb.stats.Inserts++
		for _, fn := range tb.onReplace {
			fn(old)
		}
		for _, fn := range tb.onInsert {
			fn(t)
		}
		return InsertResult{Stored: true, Delta: true, Replaced: old}
	}

	tb.addRow(t, now, val.InternBytes(tb.scratch))
	// FIFO eviction when over capacity. The eviction's delete listeners
	// fire while t is stored but not yet announced; Inserting marks the
	// window so incremental listeners can fold the whole mutation into
	// one notification.
	prev := tb.inserting
	tb.inserting = t
	for tb.maxSize > 0 && len(tb.rows) > tb.maxSize {
		tb.removeRow(tb.head, true)
	}
	tb.inserting = prev
	tb.stats.Inserts++
	for _, fn := range tb.onInsert {
		fn(t)
	}
	return InsertResult{Stored: true, Delta: true}
}

func (tb *Table) expiry(now float64) float64 {
	if tb.ttl == Infinity {
		return Infinity
	}
	return now + tb.ttl
}

// newRow takes a row from the free list, refilling it from a fresh
// arena block when empty. Recycled rows keep their ixKeys capacity, so
// steady-state churn re-renders keys into storage it already owns.
func (tb *Table) newRow() *row {
	if tb.free == nil {
		if tb.blockLen < rowBlockMin {
			tb.blockLen = rowBlockMin
		}
		block := make([]row, tb.blockLen)
		if tb.blockLen < rowBlockMax {
			tb.blockLen *= 2
		}
		for i := range block {
			block[i].next = tb.free
			tb.free = &block[i]
		}
	}
	r := tb.free
	tb.free = r.next
	r.next = nil
	return r
}

// recycle returns r to the free list. Every external reference (rows
// map, order links, index buckets) must already be gone; the caller
// must not touch r afterwards — a reentrant listener may reuse it for
// a new row at any point.
func (tb *Table) recycle(r *row) {
	r.t = nil
	r.pk = ""
	r.prev = nil
	for i := range r.ixKeys {
		r.ixKeys[i] = ""
	}
	r.ixKeys = r.ixKeys[:0]
	r.next = tb.free
	tb.free = r
}

// pushBack links r at the tail of the insertion-order list.
func (tb *Table) pushBack(r *row) {
	r.prev = tb.tail
	r.next = nil
	if tb.tail != nil {
		tb.tail.next = r
	} else {
		tb.head = r
	}
	tb.tail = r
}

// unlink removes r from the insertion-order list.
func (tb *Table) unlink(r *row) {
	if r.prev != nil {
		r.prev.next = r.next
	} else {
		tb.head = r.next
	}
	if r.next != nil {
		r.next.prev = r.prev
	} else {
		tb.tail = r.prev
	}
	r.prev, r.next = nil, nil
}

// moveToBack re-links r as the newest row (TTL refresh order).
func (tb *Table) moveToBack(r *row) {
	if tb.tail == r {
		return
	}
	tb.unlink(r)
	tb.pushBack(r)
}

// addRow stores t under the pre-rendered primary key pk, rendering and
// caching each secondary-index key once. Keys are interned through the
// global symbol table: a bucket key rendered on one node — or in one
// tuple field — shares storage with every other appearance of the same
// bytes, and re-adding a previously seen key allocates nothing.
func (tb *Table) addRow(t *tuple.Tuple, now float64, pk string) {
	tb.version++
	r := tb.newRow()
	r.t, r.expires, r.pk = t, tb.expiry(now), pk
	tb.pushBack(r)
	tb.rows[pk] = r
	if n := len(tb.indices); n > 0 {
		if cap(r.ixKeys) >= n {
			r.ixKeys = r.ixKeys[:n]
		} else {
			r.ixKeys = make([]string, n)
		}
		for i, ix := range tb.indices {
			tb.scratch = t.AppendKey(tb.scratch[:0], ix.positions)
			k := val.InternBytes(tb.scratch)
			r.ixKeys[i] = k
			ix.m[k] = append(ix.m[k], r)
			ix.appends++
		}
	}
}

// removeRow unlinks r using its cached key strings — nothing is
// re-rendered; when notify is set the delete listeners fire. While a
// probe is visiting buckets, slots are tombstoned in place (and
// compacted when the probe finishes) so no probe sees a row twice.
// The row is recycled before listeners run, so r must not be touched
// after this call.
func (tb *Table) removeRow(r *row, notify bool) {
	tb.version++
	delete(tb.rows, r.pk)
	tb.unlink(r)
	for i, ix := range tb.indices {
		k := r.ixKeys[i]
		bucket := ix.m[k]
		for j, cand := range bucket {
			if cand == r {
				if tb.probing > 0 {
					bucket[j] = nil
					ix.dirty = append(ix.dirty, k)
				} else if len(bucket) == 1 {
					delete(ix.m, k)
				} else {
					bucket[j] = bucket[len(bucket)-1]
					ix.m[k] = bucket[:len(bucket)-1]
				}
				break
			}
		}
	}
	t := r.t
	tb.recycle(r)
	if notify {
		tb.stats.Deletes++
		for _, fn := range tb.onDelete {
			fn(t)
		}
	}
}

// endProbe compacts tombstoned buckets once the last in-flight probe
// completes.
func (tb *Table) endProbe() {
	tb.probing--
	if tb.probing > 0 {
		return
	}
	for _, ix := range tb.indices {
		for _, k := range ix.dirty {
			bucket, ok := ix.m[k]
			if !ok {
				continue
			}
			live := bucket[:0]
			for _, r := range bucket {
				if r != nil {
					live = append(live, r)
				}
			}
			if len(live) == 0 {
				delete(ix.m, k)
			} else {
				ix.m[k] = live
			}
		}
		ix.dirty = ix.dirty[:0]
	}
}

// Delete removes the row whose primary key matches t. It reports
// whether a row was removed.
func (tb *Table) Delete(t *tuple.Tuple) bool {
	tb.Expire()
	tb.scratch = t.AppendKey(tb.scratch[:0], tb.pk)
	r, ok := tb.rows[string(tb.scratch)]
	if !ok {
		return false
	}
	tb.removeRow(r, true)
	return true
}

// victim is a deferred removal: the row is re-resolved by primary key
// at removal time and checked by tuple identity, because the delete
// listeners of an earlier victim may themselves have removed (and the
// arena may have recycled) the row this victim referred to.
type victim struct {
	pk string
	t  *tuple.Tuple
}

// removeVictims removes each victim that is still resident, returning
// the count actually removed.
func (tb *Table) removeVictims(victims []victim) int {
	n := 0
	for _, v := range victims {
		if r, ok := tb.rows[v.pk]; ok && r.t == v.t {
			tb.removeRow(r, true)
			n++
		}
	}
	return n
}

// DeleteWhere removes every live row for which pred returns true,
// returning the count.
func (tb *Table) DeleteWhere(pred func(*tuple.Tuple) bool) int {
	tb.Expire()
	var victims []victim
	for r := tb.head; r != nil; r = r.next {
		if pred(r.t) {
			victims = append(victims, victim{r.pk, r.t})
		}
	}
	return tb.removeVictims(victims)
}

// Clear removes every row, firing delete listeners.
func (tb *Table) Clear() {
	var victims []victim
	for r := tb.head; r != nil; r = r.next {
		victims = append(victims, victim{r.pk, r.t})
	}
	tb.removeVictims(victims)
}

// Expire removes rows past their lifetime, firing delete listeners.
// It returns the number expired. Callers rarely need this directly —
// every accessor calls it — but the engine also sweeps periodically so
// deletions surface promptly even in idle tables.
//
// Because the TTL is constant and refreshes move rows to the back, the
// order list is sorted by expiry: expiry only ever pops from the front,
// making the common no-expiry case O(1).
func (tb *Table) Expire() int {
	if tb.ttl == Infinity {
		return 0
	}
	now := tb.clock.Now()
	n := 0
	for tb.head != nil && tb.head.expires <= now {
		tb.removeRow(tb.head, true)
		n++
	}
	return n
}

// EnsureIndex returns the secondary index over the given field
// positions, creating it (and backfilling existing rows) on first use.
// The returned handle is stable for the table's lifetime — equijoins
// resolve it once at wiring time and probe it directly.
func (tb *Table) EnsureIndex(positions []int) *Index {
	sig := indexSig(positions)
	if ix, ok := tb.bySig[sig]; ok {
		return ix
	}
	ix := &Index{
		tb:        tb,
		positions: append([]int(nil), positions...),
		ord:       len(tb.indices),
		m:         make(map[string][]*row),
	}
	for r := tb.head; r != nil; r = r.next {
		tb.scratch = r.t.AppendKey(tb.scratch[:0], ix.positions)
		k := val.InternBytes(tb.scratch)
		r.ixKeys = append(r.ixKeys, k)
		ix.m[k] = append(ix.m[k], r)
	}
	tb.indices = append(tb.indices, ix)
	tb.bySig[sig] = ix
	return ix
}

func indexSig(positions []int) string {
	parts := make([]string, len(positions))
	for i, p := range positions {
		parts[i] = strconv.Itoa(p)
	}
	return strings.Join(parts, ",")
}

// index resolves positions to an existing index or panics — a missing
// index flags a planner bug immediately.
func (tb *Table) index(positions []int) *Index {
	ix, ok := tb.bySig[indexSig(positions)]
	if !ok {
		panic(fmt.Sprintf("table %s: lookup on missing index %v", tb.name, positions))
	}
	return ix
}

// Positions returns the indexed field positions. Treat as read-only.
func (ix *Index) Positions() []int { return ix.positions }

// Each visits every live tuple whose indexed fields equal the rendered
// key (as produced by tuple.AppendKey over the probe positions),
// stopping early if fn returns false. This is the zero-allocation probe
// path: the key arrives in a caller-owned scratch buffer and the bucket
// is consulted in place.
//
// Mid-visit mutation semantics: rows the visit's own side effects
// insert are not visited (the probe sees the bucket as of entry), and
// rows they remove are tombstoned in place, so no row is ever visited
// twice. A removed-but-unvisited row is therefore SKIPPED — this
// differs deliberately from the slice-returning Lookup, whose snapshot
// would still yield a row retracted after the probe began. Not deriving
// from a row the same event chain just retracted is the more faithful
// reading of soft state; self-modifying rules that delete from the
// table they are probing see the deletion immediately.
func (ix *Index) Each(key []byte, fn func(*tuple.Tuple) bool) {
	ix.tb.Expire()
	ix.PeekEach(key, fn)
}

// PeekEach is Each without the expiry pass — for probes made from
// inside table-mutation listeners, where re-entering Expire would
// recurse into the listener chain.
//
// The key buffer must stay stable for the duration of the visit (true
// for the per-element scratch buffers equijoins use: a strand element
// is never re-entered while its Push is active).
func (ix *Index) PeekEach(key []byte, fn func(*tuple.Tuple) bool) {
	bucket := ix.m[string(key)]
	end := len(bucket)
	if end == 0 {
		return
	}
	ix.tb.probing++
	ver := ix.appends
	for i := 0; i < end; i++ {
		if ix.appends != ver {
			// A mid-visit insert into this index may have reallocated
			// the bucket, in which case later tombstones land in the new
			// array; re-read so removals stay visible. Slot positions
			// are stable — removals tombstone in place while a probe is
			// live and appends only extend past our bound.
			bucket = ix.m[string(key)]
			ver = ix.appends
		}
		r := bucket[i]
		if r == nil {
			continue
		}
		if !fn(r.t) {
			break
		}
	}
	ix.tb.endProbe()
}

// Contains reports whether any live row matches the rendered key — the
// antijoin probe.
func (ix *Index) Contains(key []byte) bool {
	ix.tb.Expire()
	for _, r := range ix.m[string(key)] {
		if r != nil {
			return true
		}
	}
	return false
}

// Lookup returns the live tuples whose indexed fields equal key. The
// single allocation is the result slice; probes that can consume rows
// in place should prefer Each.
func (ix *Index) Lookup(key string) []*tuple.Tuple {
	ix.tb.Expire()
	return ix.peek(key)
}

// PeekLookup is Lookup without the expiry pass (see PeekEach).
func (ix *Index) PeekLookup(key string) []*tuple.Tuple {
	return ix.peek(key)
}

func (ix *Index) peek(key string) []*tuple.Tuple {
	bucket := ix.m[key]
	if len(bucket) == 0 {
		return nil
	}
	out := make([]*tuple.Tuple, 0, len(bucket))
	for _, r := range bucket {
		if r != nil {
			out = append(out, r.t)
		}
	}
	return out
}

// Lookup returns the live tuples whose indexed fields equal key.
// The index must have been created with EnsureIndex; looking up a
// missing index panics, which flags a planner bug immediately.
//
// This positional form re-derives the index signature per call; hot
// paths resolve the *Index handle once and use its methods instead.
func (tb *Table) Lookup(positions []int, key string) []*tuple.Tuple {
	return tb.index(positions).Lookup(key)
}

// PeekLookup is Lookup without the expiry pass — for listeners that
// read the table while a mutation is in progress, where re-entering
// Expire would recurse into the listener chain. Rows past their TTL but
// not yet swept may be included; their own delete notifications follow.
func (tb *Table) PeekLookup(positions []int, key string) []*tuple.Tuple {
	return tb.index(positions).PeekLookup(key)
}

// LookupPK returns the live tuple with the given primary-key value, or
// nil.
func (tb *Table) LookupPK(key string) *tuple.Tuple {
	tb.Expire()
	if r, ok := tb.rows[key]; ok {
		return r.t
	}
	return nil
}

// Scan returns all live tuples in insertion order.
func (tb *Table) Scan() []*tuple.Tuple {
	tb.Expire()
	out := make([]*tuple.Tuple, 0, len(tb.rows))
	for r := tb.head; r != nil; r = r.next {
		out = append(out, r.t)
	}
	return out
}

// ScanSorted returns all live tuples ordered by their rendered form —
// deterministic output for tests and the olgc inspector. Each tuple is
// rendered once, not O(log n) times inside the sort comparator.
func (tb *Table) ScanSorted() []*tuple.Tuple {
	rows := tb.Scan()
	type keyed struct {
		key string
		t   *tuple.Tuple
	}
	keys := make([]keyed, len(rows))
	for i, t := range rows {
		keys[i] = keyed{key: t.String(), t: t}
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].key < keys[j].key })
	for i := range keys {
		rows[i] = keys[i].t
	}
	return rows
}
