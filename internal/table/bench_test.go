package table

import (
	"fmt"
	"testing"

	"p2/internal/tuple"
	"p2/internal/val"
)

// The probe path is the innermost loop of OverLog execution: every
// strand trigger probes at least one index. These benchmarks pin its
// cost, and the AllocsPerRun tests turn the zero-allocation claims into
// regressions rather than observations.

type benchClock struct{ now float64 }

func (c *benchClock) Now() float64 { return c.now }

func benchTable(n int) (*Table, *Index, *benchClock) {
	clk := &benchClock{}
	tb := New("bench", Infinity, 0, []int{0, 1}, clk)
	ix := tb.EnsureIndex([]int{1})
	for i := 0; i < n; i++ {
		tb.Insert(tuple.New("bench",
			val.Str(fmt.Sprintf("n%d", i)), val.Int(int64(i%16)), val.Int(int64(i))))
	}
	return tb, ix, clk
}

// TestIndexEachZeroAlloc pins the visitor probe at zero allocations:
// key render into a scratch buffer, bucket consult in place, no result
// slice. The visiting closure must stay on the stack, so the test
// mirrors how Join.Push captures state.
func TestIndexEachZeroAlloc(t *testing.T) {
	_, ix, _ := benchTable(256)
	var buf []byte
	probe := tuple.New("probe", val.Str("x"), val.Int(3))
	count := 0
	allocs := testing.AllocsPerRun(200, func() {
		buf = probe.AppendKey(buf[:0], []int{1})
		ix.Each(buf, func(m *tuple.Tuple) bool {
			count++
			return true
		})
	})
	if count == 0 {
		t.Fatal("probe visited no rows")
	}
	if allocs != 0 {
		t.Fatalf("Index.Each allocated %.1f/op, want 0", allocs)
	}
}

// TestIndexLookupAllocBudget pins the slice-returning form at its one
// permitted allocation: the result slice.
func TestIndexLookupAllocBudget(t *testing.T) {
	_, ix, _ := benchTable(256)
	key := tuple.New("probe", val.Str("x"), val.Int(3)).Key([]int{1})
	allocs := testing.AllocsPerRun(200, func() {
		if len(ix.Lookup(key)) == 0 {
			t.Fatal("no rows")
		}
	})
	if allocs > 1 {
		t.Fatalf("Index.Lookup allocated %.1f/op, want <= 1", allocs)
	}
}

// TestRefreshZeroAlloc pins the pure-refresh path — the steady state of
// periodic re-derivation — at zero allocations: the primary key renders
// into the table's scratch buffer and no row state changes.
func TestRefreshZeroAlloc(t *testing.T) {
	tb, _, _ := benchTable(64)
	row := tuple.New("bench", val.Str("n7"), val.Int(7%16), val.Int(7))
	allocs := testing.AllocsPerRun(200, func() {
		if res := tb.Insert(row); res.Delta {
			t.Fatal("refresh produced a delta")
		}
	})
	if allocs != 0 {
		t.Fatalf("refresh allocated %.1f/op, want 0", allocs)
	}
}

// TestDeleteNoRerender exercises removal through cached keys: deleting
// and re-adding must not disturb any index (contents verified against a
// scan) regardless of bucket sharing.
func TestDeleteNoRerender(t *testing.T) {
	tb, ix, _ := benchTable(64)
	victim := tuple.New("bench", val.Str("n9"), val.Int(9%16), val.Int(9))
	if !tb.Delete(victim) {
		t.Fatal("delete missed")
	}
	key := victim.Key([]int{1})
	for _, m := range ix.Lookup(key) {
		if m.Equal(victim) {
			t.Fatal("deleted row still indexed")
		}
	}
	if got := tb.Len(); got != 63 {
		t.Fatalf("len = %d, want 63", got)
	}
}

func BenchmarkInsertRefresh(b *testing.B) {
	tb, _, _ := benchTable(256)
	row := tuple.New("bench", val.Str("n7"), val.Int(7%16), val.Int(7))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tb.Insert(row)
	}
}

func BenchmarkIndexEach(b *testing.B) {
	_, ix, _ := benchTable(256)
	probe := tuple.New("probe", val.Str("x"), val.Int(3))
	var buf []byte
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = probe.AppendKey(buf[:0], []int{1})
		ix.Each(buf, func(*tuple.Tuple) bool { return true })
	}
}

func BenchmarkIndexHandleLookup(b *testing.B) {
	_, ix, _ := benchTable(256)
	key := tuple.New("probe", val.Str("x"), val.Int(3)).Key([]int{1})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.Lookup(key)
	}
}

func BenchmarkScanSorted(b *testing.B) {
	tb, _, _ := benchTable(512)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tb.ScanSorted()
	}
}
