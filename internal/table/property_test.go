package table

import (
	"fmt"
	"math/rand"
	"testing"

	"p2/internal/tuple"
	"p2/internal/val"
)

// Property test guarding the cached-key refactor: rows cache their
// rendered primary and per-index key strings at add time, and removal
// paths (explicit delete, TTL expiry, FIFO eviction, primary-key
// replacement) trust those caches. A stale or wrongly-shared cached key
// would leave a ghost row in some index bucket or strand a live row
// outside its bucket — exactly what this test hunts: after every
// operation, every secondary index's contents must match ground truth
// derived from a full Scan.

type propClock struct{ now float64 }

func (c *propClock) Now() float64 { return c.now }

// checkIndexes compares each index against a Scan-derived ground truth:
// for every key ever probed, the multiset of tuples the index returns
// must equal the tuples whose rendered key matches. probeKeys
// accumulates all keys that ever existed so vanished buckets are probed
// too.
func checkIndexes(t *testing.T, tb *Table, ixs []*Index, probeKeys []map[string]bool) {
	t.Helper()
	scan := tb.Scan()
	for i, ix := range ixs {
		want := make(map[string][]*tuple.Tuple)
		for _, row := range scan {
			k := row.Key(ix.Positions())
			want[k] = append(want[k], row)
			probeKeys[i][k] = true
		}
		for k := range probeKeys[i] {
			got := ix.Lookup(k)
			if len(got) != len(want[k]) {
				t.Fatalf("index %v key %q: %d rows via index, %d via scan",
					ix.Positions(), k, len(got), len(want[k]))
			}
			matched := make([]bool, len(want[k]))
			for _, g := range got {
				found := false
				for wi, w := range want[k] {
					if !matched[wi] && g == w {
						matched[wi] = true
						found = true
						break
					}
				}
				if !found {
					t.Fatalf("index %v key %q returned %v not present in scan", ix.Positions(), k, g)
				}
			}
		}
	}
}

// TestIndexContentsMatchScanUnderRandomOps drives long random
// insert/replace/refresh/delete/expire/evict sequences over a table
// with a TTL, a size bound, and two secondary indices (one sharing a
// field with the primary key), checking every index against ground
// truth after each operation.
func TestIndexContentsMatchScanUnderRandomOps(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			clk := &propClock{}
			tb := New("p", 40, 8, []int{0, 1}, clk) // finite TTL + FIFO bound
			ixs := []*Index{
				tb.EnsureIndex([]int{1}),
				tb.EnsureIndex([]int{2, 0}),
			}
			probeKeys := []map[string]bool{{}, {}}

			mk := func(a, b, c int64) *tuple.Tuple {
				return tuple.New("p",
					val.Str(fmt.Sprintf("a%d", a)), val.Int(b), val.Int(c))
			}

			for step := 0; step < 400; step++ {
				switch rng.Intn(10) {
				case 0, 1, 2, 3: // insert (new pk, replacement, or refresh)
					tb.Insert(mk(rng.Int63n(6), rng.Int63n(4), rng.Int63n(3)))
				case 4: // guaranteed refresh of an existing row, if any
					if scan := tb.Scan(); len(scan) > 0 {
						tb.Insert(scan[rng.Intn(len(scan))])
					}
				case 5: // guaranteed replacement of an existing pk, if any
					if scan := tb.Scan(); len(scan) > 0 {
						old := scan[rng.Intn(len(scan))]
						tb.Insert(tuple.New("p", old.Field(0), old.Field(1), val.Int(rng.Int63n(100)+10)))
					}
				case 6: // explicit delete
					tb.Delete(mk(rng.Int63n(6), rng.Int63n(4), 0))
				case 7: // time passes; TTLs expire
					clk.now += float64(rng.Intn(25))
					tb.Expire()
				case 8: // burst insert to force FIFO eviction
					for i := 0; i < 10; i++ {
						tb.Insert(mk(rng.Int63n(12), rng.Int63n(4), rng.Int63n(3)))
					}
				case 9: // late index creation over live rows
					if step == 37 { // once per run, mid-sequence
						ixs = append(ixs, tb.EnsureIndex([]int{2}))
						probeKeys = append(probeKeys, map[string]bool{})
					}
				}
				checkIndexes(t, tb, ixs, probeKeys)
				if tb.Len() > 8 {
					t.Fatalf("table exceeded maxSize: %d", tb.Len())
				}
			}
		})
	}
}

// TestMidProbeRemovalAfterBucketRealloc is the nastiest probe corner:
// the visitor's side effects first grow the probed bucket past its
// capacity (reallocating the backing array) and then delete a
// not-yet-visited row. The tombstone lands in the new array, so the
// probe must re-read the bucket or it would still visit the retracted
// row from its stale view.
func TestMidProbeRemovalAfterBucketRealloc(t *testing.T) {
	clk := &propClock{}
	tb := New("p", Infinity, 0, []int{0}, clk)
	ix := tb.EnsureIndex([]int{1})
	for i := int64(1); i <= 3; i++ {
		tb.Insert(tuple.New("p", val.Int(i), val.Str("k")))
	}
	key := []byte(tuple.New("x", val.Str("k")).Key([]int{0}))

	var visited []int64
	ix.Each(key, func(m *tuple.Tuple) bool {
		id := m.Field(0).AsInt()
		visited = append(visited, id)
		if id == 1 {
			// Grow the bucket (likely reallocating), then retract row 3.
			tb.Insert(tuple.New("p", val.Int(4), val.Str("k")))
			tb.Insert(tuple.New("p", val.Int(5), val.Str("k")))
			tb.Delete(tuple.New("p", val.Int(3)))
		}
		return true
	})
	for _, id := range visited {
		if id == 3 {
			t.Fatalf("probe visited retracted row 3: visited=%v", visited)
		}
		if id >= 4 {
			t.Fatalf("probe visited mid-visit insert %d: visited=%v", id, visited)
		}
	}
}

// TestIndexConsistentUnderMidProbeMutation drives the tombstone path:
// rows removed while a probe is visiting their bucket must vanish from
// the visit without any row being visited twice, and the bucket must
// compact afterwards.
func TestIndexConsistentUnderMidProbeMutation(t *testing.T) {
	clk := &propClock{}
	tb := New("p", Infinity, 0, []int{0}, clk)
	ix := tb.EnsureIndex([]int{1})
	for i := 0; i < 8; i++ {
		tb.Insert(tuple.New("p", val.Int(int64(i)), val.Str("g")))
	}
	key := []byte(tuple.New("k", val.Str("g")).Key([]int{0}))

	visited := map[int64]int{}
	ix.Each(key, func(m *tuple.Tuple) bool {
		visited[m.Field(0).AsInt()]++
		// Delete two other rows mid-visit, and insert a new one (which
		// must not be visited: the probe sees the bucket at entry).
		tb.Delete(tuple.New("p", val.Int((m.Field(0).AsInt()+3)%8)))
		tb.Insert(tuple.New("p", val.Int(100+m.Field(0).AsInt()), val.Str("g")))
		return true
	})
	for id, n := range visited {
		if n > 1 {
			t.Fatalf("row %d visited %d times", id, n)
		}
		if id >= 100 {
			t.Fatalf("mid-probe insert %d was visited", id)
		}
	}
	// After the probe, buckets are compacted: index and scan agree.
	scan := tb.Scan()
	got := ix.Lookup(string(key))
	if len(got) != len(scan) {
		t.Fatalf("post-probe index has %d rows, scan %d", len(got), len(scan))
	}
}
