package table

import (
	"testing"

	"p2/internal/eventloop"
	"p2/internal/tuple"
	"p2/internal/val"
)

// TestStatsCounters verifies the activity counters behind the sysTable
// introspection relation across every mutation path: fresh inserts,
// refreshes, key replacement, explicit deletes, FIFO eviction, and TTL
// expiry.
func TestStatsCounters(t *testing.T) {
	loop := eventloop.NewSim()
	tb := New("t", 10, 2, []int{0}, loop)

	row := func(k string, v int64) *tuple.Tuple { return tuple.New("t", val.Str(k), val.Int(v)) }

	tb.Insert(row("a", 1))
	tb.Insert(row("a", 1)) // identical: refresh
	tb.Insert(row("a", 2)) // same key, new value: replacement insert
	if st := tb.Stats(); st.Inserts != 2 || st.Refreshes != 1 || st.Deletes != 0 {
		t.Fatalf("after refresh+replace: %+v", st)
	}

	tb.Insert(row("b", 1))
	tb.Insert(row("c", 1)) // maxSize 2: evicts "a"
	if st := tb.Stats(); st.Inserts != 4 || st.Deletes != 1 {
		t.Fatalf("after eviction: %+v", st)
	}

	tb.Delete(row("b", 0))
	if st := tb.Stats(); st.Deletes != 2 {
		t.Fatalf("after delete: %+v", st)
	}

	loop.Run(11) // "c" expires
	tb.Expire()
	if st := tb.Stats(); st.Deletes != 3 {
		t.Fatalf("after expiry: %+v", st)
	}
	if tb.Len() != 0 {
		t.Fatalf("rows = %d", tb.Len())
	}
}
