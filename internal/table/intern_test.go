package table

// Interning regression coverage: the table's compact row storage runs
// rendered keys and string fields through the global interner, and the
// contract is that nothing observable changes — replacement, TTL
// expiry, and FIFO eviction behave identically whether a key string
// arrives as the canonical interned copy or as a private runtime-built
// allocation that happens to hold the same bytes.

import (
	"fmt"
	"testing"

	"p2/internal/eventloop"
	"p2/internal/tuple"
	"p2/internal/val"
)

// privStr returns a fresh private allocation of s — never the canonical
// interned copy — so operations below cross the intern boundary.
func privStr(s string) string { return string(append([]byte(nil), s...)) }

func privMember(addr string, seq int64) *tuple.Tuple {
	return tuple.New("member", val.Str(privStr("n1")), val.Str(privStr(addr)), val.Int(seq))
}

// TestInternedReplaceIsExact: a replacement keyed by a private copy of
// an interned address must hit the same row, not insert a sibling.
func TestInternedReplaceIsExact(t *testing.T) {
	loop := eventloop.NewSim()
	tb := New("member", Infinity, 0, []int{1}, loop)
	tb.Insert(tuple.New("member", val.Str("n1"), val.InternedStr("a"), val.Int(1)))
	res := tb.Insert(privMember("a", 2))
	if !res.Delta || res.Replaced == nil || res.Replaced.Field(2).AsInt() != 1 {
		t.Fatalf("private-copy replacement missed the interned row: %+v", res)
	}
	if tb.Len() != 1 {
		t.Fatalf("len after replace = %d; interning split the primary key", tb.Len())
	}
	if got := tb.LookupPK(privMember("a", 0).Key([]int{1})); got == nil || got.Field(2).AsInt() != 2 {
		t.Fatalf("LookupPK via private key = %v", got)
	}
}

// TestInternedExpireAndEvict walks one table through all three removal
// paths — FIFO eviction at cap, TTL expiry, primary-key replacement —
// with every string a distinct private allocation, and checks the
// delete stream and survivor set match the plain-string semantics the
// rest of table_test.go pins.
func TestInternedExpireAndEvict(t *testing.T) {
	loop := eventloop.NewSim()
	tb := New("member", 120, 3, []int{1}, loop)
	var deleted []string
	tb.OnDelete(func(tp *tuple.Tuple) { deleted = append(deleted, tp.Field(1).AsStr()) })

	for i, a := range []string{"a", "b", "c", "d", "e"} {
		tb.Insert(privMember(a, int64(i)))
	}
	// Cap 3: a and b evicted oldest-first.
	if len(deleted) != 2 || deleted[0] != "a" || deleted[1] != "b" {
		t.Fatalf("evictions = %v (want [a b])", deleted)
	}
	// Refresh d via a private copy so only c and e expire at t=120.
	loop.Run(60)
	if res := tb.Insert(privMember("d", 99)); res.Replaced == nil {
		t.Fatalf("refresh of d did not replace: %+v", res)
	}
	loop.Run(120.5)
	if tb.Len() != 1 {
		t.Fatalf("len after expiry = %d, want 1 (only refreshed d alive)", tb.Len())
	}
	if got := tb.LookupPK(privMember("d", 0).Key([]int{1})); got == nil || got.Field(2).AsInt() != 99 {
		t.Fatalf("survivor = %v, want refreshed d", got)
	}
	if len(deleted) != 4 {
		t.Fatalf("delete stream %v, want evictions a,b then expiries c,e", deleted)
	}
}

// TestInternerBoundedUnderKeyChurn streams far more distinct keys
// through insert/replace/delete cycles than the interner can hold and
// checks occupancy stays bounded while the table stays exact — the
// soft-state regime (event IDs, timestamps) a long soak produces.
func TestInternerBoundedUnderKeyChurn(t *testing.T) {
	loop := eventloop.NewSim()
	tb := New("ev", Infinity, 0, []int{1}, loop)
	for i := 0; i < 200000; i++ {
		tp := tuple.New("ev", val.Str(privStr("n1")),
			val.Str(privStr(fmt.Sprintf("event-%d-%d", i, i*7919))), val.Int(int64(i)))
		if res := tb.Insert(tp); !res.Stored {
			t.Fatalf("insert %d not stored", i)
		}
		if tb.Len() != 1 {
			t.Fatalf("len = %d at %d", tb.Len(), i)
		}
		tb.Delete(tp)
		if tb.Len() != 0 {
			t.Fatalf("delete %d left %d rows", i, tb.Len())
		}
	}
	entries, _ := val.InternStats()
	// 64 shards x 16384 cap; churning 200k distinct keys must not pin
	// more than the hard ceiling (flushing keeps it bounded).
	if entries > 64*16384 {
		t.Fatalf("interner grew to %d entries under key churn", entries)
	}
}
