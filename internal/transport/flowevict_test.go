package transport

// Flow-janitor coverage: per-peer transport state must not outlive the
// flow. A Chord node's lookups touch random fingers, so without idle
// eviction every node accumulates sender and receiver state for every
// peer it ever exchanged a datagram with — O(N) per node, O(N²) across
// the deployment, which is what caps scale-out. The janitor reclaims
// idle flows and rides the session-epoch machinery so a resumed flow
// opens a fresh sequence space on both sides with no handshake.

import (
	"testing"
)

// TestFlowIdleEvictionReclaimsState: after a flow sits idle past the
// TTL, the sender's per-peer state (window, retry ledger, accounting,
// backlog) and — past twice the TTL — the receiver's dedup state are
// reclaimed, and the accounting snapshot stops reporting the peer.
func TestFlowIdleEvictionReclaimsState(t *testing.T) {
	cfg := DefaultConfig()
	cfg.FlowIdleTTL = 10
	// Keep the retransmission horizon (MaxRTO * 2^(MaxRetries+1)) below
	// 2x the TTL so receiver-side eviction is reachable in this test.
	cfg.MaxRTO = 1
	cfg.MaxRetries = 2
	r := newRig(t, 0, cfg)
	for i := int64(0); i < 5; i++ {
		r.a.Send("b", tp(i))
	}
	r.loop.Run(5)
	r.assertExactlyOnce(t, 5)
	if len(r.a.cc.dests) == 0 || len(r.a.accts) == 0 {
		t.Fatal("test needs live flow state to reclaim")
	}

	// One TTL of silence (plus a janitor period): sender-side state goes.
	r.loop.RunFor(2 * cfg.FlowIdleTTL)
	if _, ok := r.a.cc.dests["b"]; ok {
		t.Fatal("idle flow kept its congestion state")
	}
	if _, ok := r.a.rty.dests["b"]; ok {
		t.Fatal("idle flow kept its retry ledger")
	}
	if _, ok := r.a.accts["b"]; ok {
		t.Fatal("idle flow kept its wire accounting")
	}

	// Two TTLs: receiver-side dedup state goes too, on both nodes.
	r.loop.RunFor(3 * cfg.FlowIdleTTL)
	if _, ok := r.b.srcs["a"]; ok {
		t.Fatal("receiver kept dedup state for a flow idle past 2x TTL")
	}
	for _, d := range r.a.PerDest() {
		if d.Addr == "b" {
			t.Fatal("accounting snapshot still reports the reclaimed flow")
		}
	}
}

// TestFlowResumesUnderFreshEpoch: a flow resumed after eviction restarts
// its sequence space at 1 under a bumped wire epoch. The receiver —
// whose own state may or may not have aged out — must rebind and
// deliver exactly once; the old stream's suppressed-duplicate blackhole
// must not reappear.
func TestFlowResumesUnderFreshEpoch(t *testing.T) {
	cfg := DefaultConfig()
	cfg.FlowIdleTTL = 10
	r := newRig(t, 0, cfg)
	for i := int64(0); i < 20; i++ {
		r.a.Send("b", tp(i))
	}
	r.loop.Run(5)
	r.assertExactlyOnce(t, 20)
	oldEpoch := r.a.wireEpoch("b")

	// Idle past one TTL but short of two: the sender's state is gone,
	// the receiver's cum still counts the old stream — the hostile case.
	r.loop.RunFor(1.5 * cfg.FlowIdleTTL)
	for i := int64(100); i < 110; i++ {
		r.a.Send("b", tp(i))
	}
	r.loop.RunFor(10)
	r.assertExactlyOnce(t, 30)
	if got := r.a.wireEpoch("b"); got <= oldEpoch {
		t.Fatalf("resumed flow kept wire epoch %d (was %d), want a bump", got, oldEpoch)
	}
	if fl := r.a.InFlight("b"); fl != 0 {
		t.Fatalf("resumed flow has %d in flight: its acks were filtered", fl)
	}
	if d := r.a.Stats().Drops; d != 0 {
		t.Fatalf("resumed flow dropped %d tuples", d)
	}
}

// TestFlowEvictionRefusedWhileInFlight: state toward a peer with
// batches still pending retransmission must survive the janitor —
// sequence continuity holds while frames can still reach the peer.
func TestFlowEvictionRefusedWhileInFlight(t *testing.T) {
	cfg := DefaultConfig()
	cfg.FlowIdleTTL = 1 // far below the ~23 s retry horizon
	r := newRig(t, 0, cfg)
	r.net.Partition("a", "b", true)
	r.a.Send("b", tp(1))
	r.loop.RunFor(3 * cfg.FlowIdleTTL)
	if r.a.InFlight("b") == 0 {
		t.Fatal("test needs a batch still in flight")
	}
	if _, ok := r.a.rty.dests["b"]; !ok {
		t.Fatal("janitor reclaimed a flow with batches pending retransmission")
	}
}

// TestFlowIdleTTLDisabled: a negative TTL preserves the historical
// keep-forever behavior.
func TestFlowIdleTTLDisabled(t *testing.T) {
	cfg := DefaultConfig()
	cfg.FlowIdleTTL = -1
	r := newRig(t, 0, cfg)
	r.a.Send("b", tp(1))
	r.loop.Run(5)
	r.loop.RunFor(10 * DefaultFlowIdleTTL)
	if _, ok := r.a.cc.dests["b"]; !ok {
		t.Fatal("flow state reclaimed despite FlowIdleTTL < 0")
	}
	if _, ok := r.b.srcs["a"]; !ok {
		t.Fatal("receiver state reclaimed despite FlowIdleTTL < 0")
	}
}
