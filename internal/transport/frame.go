package transport

import (
	"encoding/binary"

	"p2/internal/tuple"
)

// Wire format (all integers big-endian):
//
//	data frame: | 0x00 | epoch u32 | ackEpoch u32 | cumAck u64 | skip u64 | firstSeq u64 | count u16 | records... |
//	ack frame:  | 0x01 | ackEpoch u32 | cumAck u64 |
//
// epoch identifies the sender's flow session: the node's incarnation
// (Config.Epoch) in the high 16 bits and the flow's restart count in
// the low 16 (see Config.FlowIdleTTL). A node restarted at the same
// address — or a flow resumed after idle eviction — begins a fresh
// sequence space, so the receiver keys its Dedup/Ack state to the
// epoch: a frame carrying a *newer* epoch resets that peer's receive
// state, and a frame from a *stale* epoch (a datagram of the previous
// incarnation still in flight) is discarded. Without this, a replaced
// node's restarted sequence numbers fall below the peer's cumulative
// counter: every frame is suppressed as a duplicate while the
// cumulative ack keeps (falsely) confirming delivery — a silent
// blackhole.
//
// ackEpoch names the incarnation whose sequence space the acknowledgment
// (cumAck) counts. The sender ignores acknowledgments stamped with an
// epoch other than its own: they describe a dead incarnation's stream
// and must not clear the new one's flight state.
//
// Every data frame toward a peer carries cumAck — the highest contiguous
// sequence number this node has delivered *from* that peer — so steady
// bidirectional traffic acknowledges itself and needs no ack datagrams.
//
// skip keeps cumulative acknowledgment sound when the sender abandons a
// frame after the retry budget: it is the sequence number below which
// nothing remains in flight, so every hole at or below it will never be
// filled and the receiver may advance its cumulative counter across it.
// Without this, one abandoned frame would pin the receiver's cum
// forever and deadlock the session after, e.g., a healed partition.
//
// firstSeq numbers the first record; the count records that follow are
// consecutively numbered and each is a self-delimiting tuple.Marshal
// encoding. Unreliable chains send zeros for the sequence fields and
// the receiver ignores them.
const (
	frameData = 0x00
	frameAck  = 0x01

	dataHeaderLen = 1 + 4 + 4 + 8 + 8 + 8 + 2
	ackFrameLen   = 1 + 4 + 8
)

// Frame is the bottom send-path element — §3.4's socket handling: it
// encodes batches into datagrams (stamping the piggybacked cumulative
// ack), hands them to the endpoint, and keeps the wire accounting the
// sysNet relation reports.
type Frame struct {
	tr *Transport
}

func (f *Frame) pushBatch(wb *wireBatch, _ poke) bool {
	tr := f.tr
	buf := make([]byte, dataHeaderLen, dataHeaderLen+wb.bytes)
	buf[0] = frameData
	binary.BigEndian.PutUint32(buf[1:5], tr.wireEpoch(wb.dst))
	binary.BigEndian.PutUint32(buf[5:9], tr.peerEpoch(wb.dst))
	if tr.ack != nil {
		binary.BigEndian.PutUint64(buf[9:17], tr.ack.piggyback(wb.dst))
	}
	if tr.rty != nil {
		binary.BigEndian.PutUint64(buf[17:25], tr.rty.skipFor(wb.dst))
	}
	binary.BigEndian.PutUint64(buf[25:33], wb.first)
	binary.BigEndian.PutUint16(buf[33:35], uint16(len(wb.recs)))
	for _, rec := range wb.recs {
		buf = append(buf, rec.wire...)
	}
	wb.sentAt = tr.loop.Now()
	tr.ep.Send(wb.dst, buf)

	n := int64(len(wb.recs))
	tr.stats.TuplesSent += n
	tr.stats.Frames++
	a := tr.acct(wb.dst)
	a.sent += n
	a.frames++
	a.sentBytes += int64(len(buf))
	if wb.rexmit {
		tr.stats.Retransmits += n
		a.retries += n
	}
	if tr.onSent != nil {
		hdr := dataHeaderLen // charged to the datagram's first tuple
		for _, rec := range wb.recs {
			tr.onSent(wb.dst, rec.t, len(rec.wire)+hdr, wb.rexmit)
			hdr = 0
		}
	}
	return true
}

// sendAck emits a bare cumulative-ack frame — the Ack element's fallback
// when no reverse-path data frame showed up to piggyback on. epoch names
// the peer incarnation whose stream cum counts.
func (f *Frame) sendAck(dst string, cum uint64, epoch uint32) {
	buf := make([]byte, ackFrameLen)
	buf[0] = frameAck
	binary.BigEndian.PutUint32(buf[1:5], epoch)
	binary.BigEndian.PutUint64(buf[5:13], cum)
	f.tr.ep.Send(dst, buf)
	f.tr.stats.AcksSent++
}

// Deframe is the top receive-path element — §3.4's dispatch: it parses
// inbound datagrams, feeds piggybacked and bare cumulative acks to the
// send side's CCTx, and pushes decoded data frames into the receive
// chain (Ack → Dedup → Deliver in reliable chains; straight to Deliver
// otherwise).
type Deframe struct {
	tr *Transport
}

func (d *Deframe) deliver(from string, frame []byte) {
	tr := d.tr
	if tr.closed || len(frame) < 1 {
		return
	}
	switch frame[0] {
	case frameAck:
		if len(frame) < ackFrameLen || tr.cc == nil {
			return
		}
		if binary.BigEndian.Uint32(frame[1:5]) != tr.wireEpoch(from) {
			return // a dead incarnation's (or evicted flow's) stream; must not clear ours
		}
		tr.cc.onAck(from, binary.BigEndian.Uint64(frame[5:13]))
	case frameData:
		if len(frame) < dataHeaderLen {
			return
		}
		epoch := binary.BigEndian.Uint32(frame[1:5])
		ackEpoch := binary.BigEndian.Uint32(frame[5:9])
		cum := binary.BigEndian.Uint64(frame[9:17])
		skip := binary.BigEndian.Uint64(frame[17:25])
		first := binary.BigEndian.Uint64(frame[25:33])
		count := int(binary.BigEndian.Uint16(frame[33:35]))
		tuples := make([]*tuple.Tuple, 0, count)
		rest := frame[dataHeaderLen:]
		for i := 0; i < count; i++ {
			t, n, err := tuple.Unmarshal(rest)
			if err != nil {
				return // corrupt datagram; a real network could produce these
			}
			tuples = append(tuples, t)
			rest = rest[n:]
		}
		if len(tuples) == 0 {
			return
		}
		if tr.ack != nil {
			rs := tr.src(from)
			if rs.epochSet && epoch < rs.epoch {
				return // datagram of a previous incarnation, still in flight
			}
			if !rs.epochSet || epoch > rs.epoch {
				rs.rebind(epoch) // new incarnation: fresh sequence space
			}
		}
		if tr.cc != nil && ackEpoch == tr.wireEpoch(from) {
			tr.cc.onAck(from, cum) // the piggybacked ack
		}
		if tr.ack != nil {
			tr.ack.push(from, skip, first, tuples)
		} else {
			tr.deliverUp(from, tuples) // unreliable chain: no ack, no dedup
		}
	}
}
