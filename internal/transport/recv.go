package transport

import (
	"p2/internal/eventloop"
	"p2/internal/tuple"
)

// The reliable receive chain: the Ack element schedules cumulative
// acknowledgments (piggybacked on reverse-path data frames when
// possible), the Dedup stage discards retransmitted frames already
// delivered, and the Deliver stage (Transport.deliverUp) hands fresh
// tuples to the application. Ack and Dedup share recvState: the
// cumulative ack *is* the dedup memory — two views of one relation,
// which is why the paper lists them as adjacent elements.

// seqSanityWindow bounds how far above the cumulative counter a data
// frame's firstSeq may claim to sit. Sequence numbers count records and
// advance consecutively, so a legitimate frame can never outrun the
// in-flight window by orders of magnitude — a firstSeq beyond this
// bound is corruption, and accepting it would poison the out-of-order
// set (unreclaimable memory) and suppress legitimate traffic.
const seqSanityWindow = 1 << 22

// recvState tracks one peer's inbound sequence space, keyed to that
// peer's session epoch: a restarted peer announces a new epoch and the
// sequence space rebinds from zero.
type recvState struct {
	cum      uint64          // all seqs <= cum delivered
	high     map[uint64]bool // out-of-order seqs above cum
	recvd    int64           // tuples delivered upward (post-dedup)
	epoch    uint32          // incarnation whose stream cum/high count
	epochSet bool            // epoch learned from a data frame
	lastAt   float64         // loop time of the last data frame (flow janitor)

	ackPending bool // cum must reach the peer (piggyback or bare ack)
	ackArmed   bool // a delayed-ack callback is scheduled
	ackTimer   *eventloop.Timer
}

// rebind resets the sequence space for a new peer incarnation. The
// delivery counter survives — it counts the peer address, not the
// session — and any armed ack timer stays armed: when it fires it reads
// the rebound cum and epoch, acknowledging the new stream.
func (r *recvState) rebind(epoch uint32) {
	r.epoch, r.epochSet = epoch, true
	r.cum = 0
	clear(r.high)
	r.ackPending = false
}

// seen reports whether seq was already delivered.
func (r *recvState) seen(seq uint64) bool {
	return seq <= r.cum || r.high[seq]
}

// mark records n consecutive seqs starting at first as delivered and
// compacts the out-of-order set into the cumulative counter.
func (r *recvState) mark(first uint64, n int) {
	for s := first; s < first+uint64(n); s++ {
		if s > r.cum {
			r.high[s] = true
		}
	}
	r.compact()
}

// advance moves the cumulative counter across holes the sender declared
// abandoned (the data-frame skip field): every seq <= skip is either
// already delivered here or will never arrive. The sweep iterates the
// out-of-order set, not the (untrusted, possibly huge) seq range.
func (r *recvState) advance(skip uint64) {
	if skip <= r.cum {
		return
	}
	for s := range r.high {
		if s <= skip {
			delete(r.high, s)
		}
	}
	r.cum = skip
	r.compact()
}

func (r *recvState) compact() {
	for r.high[r.cum+1] {
		delete(r.high, r.cum+1)
		r.cum++
	}
}

// Ack is the acknowledgment element of the receive chain.
type Ack struct {
	tr *Transport
}

// push accepts one decoded data frame from Deframe: it schedules the
// cumulative acknowledgment, runs the Dedup check (frames retransmit
// whole, so the first sequence number decides), and forwards fresh
// frames to Deliver.
func (a *Ack) push(from string, skip, first uint64, tuples []*tuple.Tuple) {
	tr := a.tr
	rs := tr.src(from)
	if first > rs.cum+seqSanityWindow {
		return // corrupt firstSeq: would poison the out-of-order set
	}
	// A well-formed skip is always below the frame's own first sequence
	// number (that frame is still in flight at the sender); anything
	// else is corruption and must not drag cum forward.
	if skip < first {
		rs.advance(skip)
	}
	// Acknowledge even duplicates: the frame that carried the previous
	// ack may have been lost.
	a.schedule(from, rs)
	if rs.seen(first) {
		tr.stats.DupsSuppressed += int64(len(tuples))
		return
	}
	rs.mark(first, len(tuples))
	tr.deliverUp(from, tuples)
}

// schedule marks the peer's cum as owed and arms the delayed-ack
// callback. If a data frame toward the peer goes out first, piggyback
// claims the ack and the callback becomes a no-op.
func (a *Ack) schedule(from string, rs *recvState) {
	rs.ackPending = true
	if rs.ackArmed {
		return
	}
	rs.ackArmed = true
	fire := func() {
		rs.ackArmed = false
		rs.ackTimer = nil
		if rs.ackPending && !a.tr.closed {
			rs.ackPending = false
			a.tr.frm.sendAck(from, rs.cum, rs.epoch)
		}
	}
	if d := a.tr.cfg.AckDelay; d > 0 {
		rs.ackTimer = a.tr.loop.After(d, fire)
	} else {
		a.tr.loop.Defer(fire)
	}
}

// piggyback returns the cumulative ack to stamp into a data frame
// toward dst and cancels any pending bare ack — the data frame carries
// it instead.
func (a *Ack) piggyback(dst string) uint64 {
	rs, ok := a.tr.srcs[dst]
	if !ok {
		return 0
	}
	if rs.ackPending {
		a.tr.stats.AcksPiggybacked++
	}
	rs.ackPending = false
	if rs.ackTimer != nil {
		rs.ackTimer.CancelFree()
		rs.ackTimer = nil
		rs.ackArmed = false
	}
	return rs.cum
}
