package transport

import "p2/internal/tuple"

// record is one serialized tuple — the Serialize element's output and
// the unit the Batch element queues and packs.
type record struct {
	t    *tuple.Tuple
	wire []byte
}

// Serialize is the top send-path element (§3.4 "data serialization"):
// it marshals each submitted tuple into its wire record once, so
// retransmissions and batch packing reuse the bytes, and pushes the
// record into the Batch element.
type Serialize struct {
	tr   *Transport
	next *Batch
}

func (s *Serialize) push(dst string, t *tuple.Tuple) {
	s.next.push(dst, record{t: t, wire: t.Marshal()})
}
