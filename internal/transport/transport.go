// Package transport implements P2's networking subsystem above a raw
// datagram network: data serialization, sequenced reliable transmission
// with RTT-estimated retransmission, and per-destination AIMD congestion
// control — the element chain §3.4 describes ("socket handling, packet
// scheduling, congestion control, reliable transmission, data
// serialization, and dispatch").
//
// One Transport lives per P2 node. Tuples submitted with Send are
// framed one per datagram, tracked until acknowledged, and retransmitted
// with exponential backoff up to a retry budget; receivers acknowledge
// and de-duplicate, so the engine above sees at-most-once delivery per
// transmission attempt. All state transitions happen on the node's
// event loop.
package transport

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"p2/internal/eventloop"
	"p2/internal/netif"
	"p2/internal/tuple"
)

// Config tunes reliability and congestion control.
type Config struct {
	MaxRetries int     // transmissions before giving up (total = 1 + retries)
	InitialRTO float64 // seconds, used before an RTT sample exists
	MinRTO     float64
	MaxRTO     float64
	WindowInit float64 // initial congestion window, packets
	WindowMax  float64 // cap on the window
	QueueCap   int     // per-destination backlog beyond the window
	Unreliable bool    // fire-and-forget mode: no acks, no retries
}

// DefaultConfig returns production-shaped defaults.
func DefaultConfig() Config {
	return Config{
		MaxRetries: 4,
		InitialRTO: 1.0,
		MinRTO:     0.2,
		MaxRTO:     8.0,
		WindowInit: 4,
		WindowMax:  64,
		QueueCap:   512,
	}
}

// Stats counts transport-level activity for the bandwidth figures.
type Stats struct {
	TuplesSent     int64
	Retransmits    int64
	Drops          int64 // gave up after MaxRetries
	QueueDrops     int64 // backlog overflow
	AcksSent       int64
	DupsSuppressed int64
}

const (
	pktData = 0
	pktAck  = 1
)

const headerLen = 1 + 8 // type + seq

// Transport provides reliable tuple delivery over a netif.Endpoint.
type Transport struct {
	loop eventloop.Loop
	ep   netif.Endpoint
	cfg  Config

	onReceive func(from string, t *tuple.Tuple)
	onSent    func(to string, t *tuple.Tuple, wireBytes int, retransmit bool)
	onDrop    func(to string, t *tuple.Tuple)

	dests  map[string]*dest
	srcs   map[string]*recvState
	stats  Stats
	closed bool
}

// dest holds per-destination sender state.
type dest struct {
	addr     string
	nextSeq  uint64
	inflight map[uint64]*pending
	backlog  []*tuple.Tuple

	cwnd     float64
	ssthresh float64
	srtt     float64
	rttvar   float64
	rto      float64

	// Per-destination accounting for the sysNet introspection relation.
	sent      int64
	sentBytes int64
	retries   int64
}

type pending struct {
	t       *tuple.Tuple
	seq     uint64
	payload []byte
	sentAt  float64
	retries int
	timer   *eventloop.Timer
	rexmit  bool // ever retransmitted (Karn: skip RTT sample)
}

// recvState tracks sequence numbers already delivered from one source.
type recvState struct {
	cum   uint64          // all seqs <= cum delivered
	high  map[uint64]bool // out-of-order seqs above cum
	recvd int64           // tuples delivered upward (post-dedup)
}

func (r *recvState) seen(seq uint64) bool {
	return seq <= r.cum || r.high[seq]
}

func (r *recvState) mark(seq uint64) {
	if seq <= r.cum {
		return
	}
	r.high[seq] = true
	for r.high[r.cum+1] {
		delete(r.high, r.cum+1)
		r.cum++
	}
}

// New creates a transport bound to ep. Wire ep's delivery callback to
// Deliver.
func New(loop eventloop.Loop, ep netif.Endpoint, cfg Config) *Transport {
	return &Transport{
		loop:  loop,
		ep:    ep,
		cfg:   cfg,
		dests: make(map[string]*dest),
		srcs:  make(map[string]*recvState),
	}
}

// OnReceive sets the upcall for tuples arriving from the network.
func (tr *Transport) OnReceive(fn func(from string, t *tuple.Tuple)) { tr.onReceive = fn }

// OnSent sets an accounting tap invoked once per wire transmission
// (including retransmits) with the datagram size.
func (tr *Transport) OnSent(fn func(to string, t *tuple.Tuple, wireBytes int, retransmit bool)) {
	tr.onSent = fn
}

// OnDrop sets the upcall for tuples abandoned after the retry budget.
func (tr *Transport) OnDrop(fn func(to string, t *tuple.Tuple)) { tr.onDrop = fn }

// Stats returns a copy of the counters.
func (tr *Transport) Stats() Stats { return tr.stats }

// Close stops all retransmission timers and drops state.
func (tr *Transport) Close() {
	tr.closed = true
	for _, d := range tr.dests {
		for _, p := range d.inflight {
			p.timer.Cancel()
		}
	}
	tr.dests = make(map[string]*dest)
}

// Send queues t for reliable delivery to the given address.
func (tr *Transport) Send(to string, t *tuple.Tuple) {
	if tr.closed {
		return
	}
	d := tr.destFor(to)
	if tr.cfg.Unreliable {
		tr.transmit(d, &pending{t: t, payload: t.Marshal()}, false)
		return
	}
	if float64(len(d.inflight)) < d.cwnd {
		tr.launch(d, t)
		return
	}
	if len(d.backlog) >= tr.cfg.QueueCap {
		tr.stats.QueueDrops++
		return
	}
	d.backlog = append(d.backlog, t)
}

func (tr *Transport) destFor(to string) *dest {
	d, ok := tr.dests[to]
	if !ok {
		d = &dest{
			addr:     to,
			inflight: make(map[uint64]*pending),
			cwnd:     tr.cfg.WindowInit,
			ssthresh: tr.cfg.WindowMax,
			rto:      tr.cfg.InitialRTO,
		}
		tr.dests[to] = d
	}
	return d
}

// launch assigns a sequence number and transmits a fresh tuple.
func (tr *Transport) launch(d *dest, t *tuple.Tuple) {
	d.nextSeq++
	p := &pending{t: t, seq: d.nextSeq, payload: t.Marshal()}
	d.inflight[p.seq] = p
	tr.transmit(d, p, false)
	tr.armTimer(d, p.seq, p)
}

func (tr *Transport) transmit(d *dest, p *pending, retransmit bool) {
	frame := make([]byte, headerLen+len(p.payload))
	frame[0] = pktData
	binary.BigEndian.PutUint64(frame[1:9], p.seq)
	copy(frame[headerLen:], p.payload)
	p.sentAt = tr.loop.Now()
	tr.ep.Send(d.addr, frame)
	tr.stats.TuplesSent++
	d.sent++
	d.sentBytes += int64(len(frame))
	if retransmit {
		tr.stats.Retransmits++
		d.retries++
	}
	if tr.onSent != nil {
		tr.onSent(d.addr, p.t, len(frame), retransmit)
	}
}

func (tr *Transport) armTimer(d *dest, seq uint64, p *pending) {
	p.timer = tr.loop.After(d.rto*math.Pow(2, float64(p.retries)), func() {
		tr.onTimeout(d, seq, p)
	})
}

func (tr *Transport) onTimeout(d *dest, seq uint64, p *pending) {
	if tr.closed {
		return
	}
	if _, still := d.inflight[seq]; !still {
		return // acked while the timer raced
	}
	if p.retries >= tr.cfg.MaxRetries {
		delete(d.inflight, seq)
		tr.stats.Drops++
		if tr.onDrop != nil {
			tr.onDrop(d.addr, p.t)
		}
		tr.refill(d)
		return
	}
	// Timeout: multiplicative decrease, slow-start restart.
	d.ssthresh = math.Max(float64(len(d.inflight))/2, 2)
	d.cwnd = 1
	p.retries++
	p.rexmit = true
	tr.transmit(d, p, true)
	tr.armTimer(d, seq, p)
}

// Deliver is the network's inbound entry point; wire it as the
// netif.Attach callback.
func (tr *Transport) Deliver(from string, frame []byte) {
	if tr.closed || len(frame) < headerLen {
		return
	}
	seq := binary.BigEndian.Uint64(frame[1:9])
	switch frame[0] {
	case pktAck:
		tr.onAck(from, seq)
	case pktData:
		tr.onData(from, seq, frame[headerLen:])
	}
}

func (tr *Transport) onData(from string, seq uint64, payload []byte) {
	t, _, err := tuple.Unmarshal(payload)
	if err != nil {
		return // corrupt datagram; a real network could produce these
	}
	rs, ok := tr.srcs[from]
	if !ok {
		rs = &recvState{high: make(map[uint64]bool)}
		tr.srcs[from] = rs
	}
	if tr.cfg.Unreliable {
		rs.recvd++
		if tr.onReceive != nil {
			tr.onReceive(from, t)
		}
		return
	}
	// Acknowledge even duplicates: the original ack may have been lost.
	ack := make([]byte, headerLen)
	ack[0] = pktAck
	binary.BigEndian.PutUint64(ack[1:9], seq)
	tr.ep.Send(from, ack)
	tr.stats.AcksSent++

	if rs.seen(seq) {
		tr.stats.DupsSuppressed++
		return
	}
	rs.mark(seq)
	rs.recvd++
	if tr.onReceive != nil {
		tr.onReceive(from, t)
	}
}

func (tr *Transport) onAck(from string, seq uint64) {
	d, ok := tr.dests[from]
	if !ok {
		return
	}
	p, ok := d.inflight[seq]
	if !ok {
		return
	}
	delete(d.inflight, seq)
	p.timer.Cancel()

	// RTT sample (Karn's rule: never from retransmitted packets).
	if !p.rexmit {
		rtt := tr.loop.Now() - p.sentAt
		if d.srtt == 0 {
			d.srtt = rtt
			d.rttvar = rtt / 2
		} else {
			d.rttvar = 0.75*d.rttvar + 0.25*math.Abs(d.srtt-rtt)
			d.srtt = 0.875*d.srtt + 0.125*rtt
		}
		d.rto = math.Min(math.Max(d.srtt+4*d.rttvar, tr.cfg.MinRTO), tr.cfg.MaxRTO)
	}
	// Additive increase: slow start below ssthresh, then 1/cwnd per ack.
	if d.cwnd < d.ssthresh {
		d.cwnd++
	} else {
		d.cwnd += 1 / d.cwnd
	}
	if d.cwnd > tr.cfg.WindowMax {
		d.cwnd = tr.cfg.WindowMax
	}
	tr.refill(d)
}

// refill launches backlog tuples while the window has room.
func (tr *Transport) refill(d *dest) {
	for len(d.backlog) > 0 && float64(len(d.inflight)) < d.cwnd {
		t := d.backlog[0]
		copy(d.backlog, d.backlog[1:])
		d.backlog = d.backlog[:len(d.backlog)-1]
		tr.launch(d, t)
	}
}

// DestStats is per-peer wire accounting, merged across this node's
// sender state toward the peer and receiver state from it — one row of
// the sysNet introspection relation.
type DestStats struct {
	Addr    string
	Sent    int64 // data transmissions toward Addr (including retransmits)
	Recvd   int64 // tuples delivered upward from Addr (post-dedup)
	Bytes   int64 // data bytes put on the wire toward Addr
	Retries int64 // retransmissions toward Addr
}

// PerDest returns per-peer accounting for every address this transport
// has sent to or received from, sorted by address.
func (tr *Transport) PerDest() []DestStats {
	merged := make(map[string]*DestStats)
	at := func(addr string) *DestStats {
		st, ok := merged[addr]
		if !ok {
			st = &DestStats{Addr: addr}
			merged[addr] = st
		}
		return st
	}
	for addr, d := range tr.dests {
		st := at(addr)
		st.Sent, st.Bytes, st.Retries = d.sent, d.sentBytes, d.retries
	}
	for addr, rs := range tr.srcs {
		at(addr).Recvd = rs.recvd
	}
	out := make([]DestStats, 0, len(merged))
	for _, st := range merged {
		out = append(out, *st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Addr < out[j].Addr })
	return out
}

// Window reports the current congestion window toward to — exposed for
// tests and the olgc inspector.
func (tr *Transport) Window(to string) float64 {
	if d, ok := tr.dests[to]; ok {
		return d.cwnd
	}
	return tr.cfg.WindowInit
}

// RTO reports the current retransmission timeout toward to.
func (tr *Transport) RTO(to string) float64 {
	if d, ok := tr.dests[to]; ok {
		return d.rto
	}
	return tr.cfg.InitialRTO
}

// InFlight reports unacknowledged tuples toward to.
func (tr *Transport) InFlight(to string) int {
	if d, ok := tr.dests[to]; ok {
		return len(d.inflight)
	}
	return 0
}

// String summarizes transport state for diagnostics.
func (tr *Transport) String() string {
	return fmt.Sprintf("transport{dests=%d sent=%d rexmit=%d drops=%d}",
		len(tr.dests), tr.stats.TuplesSent, tr.stats.Retransmits, tr.stats.Drops)
}
