// Package transport implements P2's networking subsystem as the element
// chain §3.4 describes: "socket handling, packet scheduling, congestion
// control, reliable transmission, data serialization, and dispatch" are
// not a black box below the dataflow — they are dataflow, small elements
// composed per node.
//
// The send path is Serialize → Batch → CCTx → Retry → Frame: tuples are
// marshaled, coalesced into MTU-budget datagrams per destination,
// admitted through a per-destination AIMD congestion window, remembered
// for RTO-driven retransmission, and framed onto a netif.Endpoint. The
// receive path mirrors it: Deframe → Ack → Dedup → Deliver. Elements
// hand batches to each other with the dataflow push/poke discipline: a
// push that returns false means "no capacity — the poke fires when some
// frees", which is how a closed congestion window backpressures the
// batching queue (and how backpressure naturally produces fuller
// datagrams).
//
// Acknowledgments are cumulative and ride in data-frame headers: every
// data frame toward a peer carries the highest contiguous sequence
// number received *from* that peer, so steady bidirectional traffic
// needs no ack datagrams at all; a delayed-ack timer emits a bare ack
// only when no reverse-path data shows up in time.
//
// Which elements a node composes is chosen by a StackSpec, so the
// Unreliable mode is merely a shorter chain (Serialize → Batch → Frame,
// Deframe → Deliver) rather than branches inside a monolith, and future
// policies (priority scheduling, per-rule QoS) are new elements.
//
// One Transport lives per P2 node. All state transitions happen on the
// node's event loop.
package transport

import (
	"fmt"
	"math"
	"slices"
	"sort"

	"p2/internal/eventloop"
	"p2/internal/netif"
	"p2/internal/tuple"
)

// Config tunes reliability, congestion control, and the stack shape.
type Config struct {
	MaxRetries int     // transmissions before giving up (total = 1 + retries)
	InitialRTO float64 // seconds, used before an RTT sample exists
	MinRTO     float64
	MaxRTO     float64
	WindowInit float64 // initial congestion window, datagrams in flight
	WindowMax  float64 // cap on the window
	QueueCap   int     // per-destination backlog (tuples) behind the window
	// AckDelay is how long the receiver waits for a reverse-path data
	// frame to piggyback the cumulative ack before emitting a bare ack
	// datagram. <= 0 acknowledges at the end of the current handler.
	AckDelay float64
	// DeadStrikes is how many consecutive batches toward one peer may
	// exhaust the retry budget, with no intervening acknowledgment,
	// before the peer is presumed dead: drops up to the threshold
	// classify as RetryExhausted, drops past it as PeerDead. 0 uses
	// DefaultDeadStrikes.
	DeadStrikes int
	Unreliable  bool // fire-and-forget chain: no acks, no retries, no window
	NoBatch     bool // one tuple per datagram (the pre-batching framing)
	// Epoch identifies this transport's session incarnation on the
	// wire. A node restarted at the same address must carry a HIGHER
	// epoch than its predecessor: peers key their Dedup/Ack state to
	// it, resetting when a new incarnation appears and discarding
	// stale datagrams and acknowledgments from the old one. Without a
	// fresh epoch, the restarted node's sequence numbers fall below
	// the peer's cumulative counter and every frame it sends is
	// silently suppressed as a duplicate.
	//
	// On the wire the incarnation occupies the high 16 bits of the
	// epoch field; the low 16 count per-flow restarts (see
	// FlowIdleTTL). Incarnations above 65535 wrap.
	Epoch uint32
	// FlowIdleTTL bounds per-peer flow state in time. A peer the send
	// path has not touched for this many seconds has its sender-side
	// state (congestion window, RTT estimate, retransmission ledger,
	// backlog, wire accounting) reclaimed, and the flow's next frame
	// opens a fresh wire epoch so the peer rebinds its Dedup/Ack
	// state cleanly — the machinery that already handles node
	// restarts handles reclamation, no handshake needed.
	// Receiver-side state is reclaimed after twice this long, by
	// which time a resuming sender has always moved to a new epoch.
	// Without a TTL a node keeps state for every peer it ever
	// exchanged a datagram with — O(N) per node on a Chord ring,
	// where lookups touch random fingers, which is what caps
	// deployment size. 0 uses DefaultFlowIdleTTL; negative keeps flow
	// state forever.
	FlowIdleTTL float64
}

// DefaultFlowIdleTTL is the flow-state lifetime a zero FlowIdleTTL
// resolves to: comfortably above the Chord maintenance periods (pings
// and stabilization keep genuinely live flows warm every few seconds)
// and short enough that a node's state tracks its working set of peers
// rather than its history — at N=128 the median per-node peer count
// drops from ~58 to ~25 against the keep-forever baseline.
const DefaultFlowIdleTTL = 60.0

// flowTTL resolves the Config field's default.
func (c Config) flowTTL() float64 {
	if c.FlowIdleTTL < 0 {
		return 0
	}
	if c.FlowIdleTTL == 0 {
		return DefaultFlowIdleTTL
	}
	return c.FlowIdleTTL
}

// DefaultDeadStrikes is the DeadStrikes value a zero Config field
// resolves to.
const DefaultDeadStrikes = 2

// deadStrikes resolves the Config field's default.
func (c Config) deadStrikes() int {
	if c.DeadStrikes <= 0 {
		return DefaultDeadStrikes
	}
	return c.DeadStrikes
}

// DefaultConfig returns production-shaped defaults.
func DefaultConfig() Config {
	return Config{
		MaxRetries: 4,
		InitialRTO: 1.0,
		MinRTO:     0.2,
		MaxRTO:     8.0,
		WindowInit: 4,
		WindowMax:  64,
		QueueCap:   512,
		AckDelay:   0.02,
	}
}

// StackSpec names the element chain a transport composes. It is derived
// from Config today; keeping it a first-class value means new scenarios
// (priority schedulers, per-rule QoS elements) extend the spec instead
// of growing conditionals inside a monolithic transport.
type StackSpec struct {
	Reliable bool // CCTx + Retry on the send path, Ack + Dedup on receive
	Batching bool // MTU-budget coalescing in the Batch element
}

// Spec derives the element chain from the configuration.
func (c Config) Spec() StackSpec {
	return StackSpec{Reliable: !c.Unreliable, Batching: !c.NoBatch}
}

// String renders the composed chains, send then receive.
func (s StackSpec) String() string {
	send, recv := "Serialize→Batch", "Deframe"
	if s.Reliable {
		send += "→CCTx→Retry"
		recv += "→Ack→Dedup"
	}
	return send + "→Frame / " + recv + "→Deliver"
}

// DropCause classifies why the transport abandoned a tuple — the
// structured failure taxonomy the OnDrop upcall and the per-cause drop
// counters carry. The constant order is the wire order of the sysNet
// drop columns and the index into DropCounts.
type DropCause uint8

// Drop causes.
const (
	// RetryExhausted: the batch spent its retry budget but the peer is
	// not (yet) presumed dead — loss or congestion, not a silent peer.
	RetryExhausted DropCause = iota
	// SessionClosed: the transport was closed with the tuple still
	// queued or in flight; it was never refused by the network.
	SessionClosed
	// PeerDead: the retry budget was exhausted DeadStrikes consecutive
	// times toward the peer with no acknowledgment between — the peer
	// is presumed crashed or unreachable.
	PeerDead
	// BacklogOverflow: the per-destination backlog bound (QueueCap) was
	// full, so the tuple was refused before ever entering the window.
	BacklogOverflow

	// NumDropCauses is the size of the cause space (for DropCounts).
	NumDropCauses = 4
)

// String names the cause the way metrics labels and reasons spell it.
func (c DropCause) String() string {
	switch c {
	case RetryExhausted:
		return "RetryExhausted"
	case SessionClosed:
		return "SessionClosed"
	case PeerDead:
		return "PeerDead"
	case BacklogOverflow:
		return "BacklogOverflow"
	}
	return fmt.Sprintf("DropCause(%d)", uint8(c))
}

// DropCauses lists every cause in counter order.
func DropCauses() []DropCause {
	return []DropCause{RetryExhausted, SessionClosed, PeerDead, BacklogOverflow}
}

// DropCounts is a per-cause drop counter vector, indexed by DropCause.
type DropCounts [NumDropCauses]int64

// Total sums the vector.
func (d DropCounts) Total() int64 {
	var n int64
	for _, v := range d {
		n += v
	}
	return n
}

// Stats counts transport-level activity for the bandwidth figures.
type Stats struct {
	TuplesSent      int64      // data records put on the wire (retransmissions included)
	Frames          int64      // data datagrams sent
	Retransmits     int64      // records re-sent by the Retry element
	Drops           int64      // records abandoned after MaxRetries
	QueueDrops      int64      // backlog overflow
	AcksSent        int64      // bare ack datagrams
	AcksPiggybacked int64      // acks that rode in a data-frame header instead
	DupsSuppressed  int64      // records discarded by the Dedup stage
	Dropped         DropCounts // every OnDrop upcall, classified by cause
}

// poke is the idempotent "capacity freed — try again" continuation the
// elements hand each other, mirroring dataflow.Poke.
type poke func()

// batchSink is the downstream port type on the send path: the Batch
// element pushes packed batches into CCTx (reliable chains) or straight
// into Frame. A false return means the batch was NOT consumed (the
// congestion window is full) and pk fires when capacity frees.
type batchSink interface {
	pushBatch(wb *wireBatch, pk poke) bool
}

// destAcct is per-peer wire accounting, maintained by the Frame element
// (and, for the drop vector, by dropUp).
type destAcct struct {
	sent      int64 // records transmitted (including retransmissions)
	frames    int64 // data datagrams
	sentBytes int64 // data bytes on the wire
	retries   int64 // records retransmitted
	drops     DropCounts
}

// Transport provides tuple delivery over a netif.Endpoint through a
// composed element chain.
type Transport struct {
	loop eventloop.Loop
	ep   netif.Endpoint
	cfg  Config
	spec StackSpec

	onReceive func(from string, t *tuple.Tuple)
	onSent    func(to string, t *tuple.Tuple, wireBytes int, retransmit bool)
	onDrop    func(to string, t *tuple.Tuple, cause DropCause)

	// Send chain (top to bottom). cc and rty are nil in unreliable chains.
	ser *Serialize
	bat *Batch
	cc  *CCTx
	rty *Retry
	frm *Frame

	// Receive chain. ack is nil in unreliable chains.
	dfr *Deframe
	ack *Ack

	srcs   map[string]*recvState
	accts  map[string]*destAcct
	stats  Stats
	closed bool

	// Peer registry for allocation-free accounting snapshots: every
	// address currently present in a sender or receiver map, kept
	// sorted. Additions are incremental; the flow janitor removes an
	// address once its state is fully reclaimed, so PerDestInto walks
	// the live working set without building a merge map per call.
	peerSet   map[string]bool
	peerOrder []string

	// Per-peer flow metadata: the send-path idle stamp and the flow
	// restart count (the low 16 bits of the wire epoch). Entries are
	// tiny and survive eviction — the restart count must only ever
	// grow — so this map is the one piece of per-peer state that is
	// O(peers ever contacted) rather than O(working set).
	flows    map[string]*flowSend
	janArmed bool
	janTimer *eventloop.Timer
}

// flowSend is one peer's send-path flow metadata.
type flowSend struct {
	last float64 // loop time of the most recent Send toward the peer
	bump uint16  // flow restarts; low half of the wire epoch
}

// New assembles the element chain cfg.Spec() names, bound to ep. Wire
// ep's delivery callback to Deliver.
func New(loop eventloop.Loop, ep netif.Endpoint, cfg Config) *Transport {
	tr := &Transport{
		loop:  loop,
		ep:    ep,
		cfg:   cfg,
		spec:  cfg.Spec(),
		srcs:  make(map[string]*recvState),
		accts: make(map[string]*destAcct),
		flows: make(map[string]*flowSend),
	}
	tr.frm = &Frame{tr: tr}
	tr.dfr = &Deframe{tr: tr}

	mtu := ep.MTU()
	if mtu <= 0 {
		mtu = netif.DefaultMTU
	}
	maxRecs := 1
	if tr.spec.Batching {
		maxRecs = maxBatchRecords
	}
	var sink batchSink = tr.frm
	capacity := 0 // the unreliable chain drains every turn; no bound needed
	if tr.spec.Reliable {
		tr.cc = newCCTx(tr)
		tr.rty = newRetry(tr)
		tr.ack = &Ack{tr: tr}
		tr.cc.next = tr.rty
		tr.rty.next = tr.frm
		sink = tr.cc
		capacity = cfg.QueueCap
	}
	tr.bat = newBatch(tr, sink, mtu-dataHeaderLen, maxRecs, capacity)
	tr.ser = &Serialize{tr: tr, next: tr.bat}
	return tr
}

// Spec returns the element chain this transport composes.
func (tr *Transport) Spec() StackSpec { return tr.spec }

// OnReceive sets the upcall for tuples arriving from the network.
func (tr *Transport) OnReceive(fn func(from string, t *tuple.Tuple)) { tr.onReceive = fn }

// OnSent sets an accounting tap invoked once per tuple per wire
// transmission (retransmissions included). The first tuple of each
// datagram is charged the frame header, so the per-call sizes sum to
// the exact data bytes on the wire.
func (tr *Transport) OnSent(fn func(to string, t *tuple.Tuple, wireBytes int, retransmit bool)) {
	tr.onSent = fn
}

// OnDrop sets the upcall for tuples the transport gives up on, with a
// structured cause: RetryExhausted and PeerDead for tuples abandoned
// after the retry budget (the latter once the peer is presumed dead),
// BacklogOverflow for tuples refused by a full per-destination queue,
// and SessionClosed for tuples still queued or in flight at Close.
func (tr *Transport) OnDrop(fn func(to string, t *tuple.Tuple, cause DropCause)) { tr.onDrop = fn }

// Stats returns a copy of the counters.
func (tr *Transport) Stats() Stats { return tr.stats }

// Config returns the configuration the transport was built with —
// consumers like the health evaluator read thresholds (QueueCap) off
// it.
func (tr *Transport) Config() Config { return tr.cfg }

// Send queues t for delivery to the given address through the send chain.
func (tr *Transport) Send(to string, t *tuple.Tuple) {
	if tr.closed {
		return
	}
	tr.touchFlow(to)
	tr.ser.push(to, t)
}

// touchFlow stamps the send-path activity clock for one peer. A flow
// resuming after sitting idle past the TTL is evicted first — right
// here, not just by the janitor — so a resumed flow always starts
// under a fresh epoch instead of continuing a sequence space the peer
// may have forgotten.
func (tr *Transport) touchFlow(dst string) {
	ttl := tr.cfg.flowTTL()
	if ttl <= 0 {
		return
	}
	now := tr.loop.Now()
	fs, ok := tr.flows[dst]
	if !ok {
		fs = &flowSend{}
		tr.flows[dst] = fs
	} else if now-fs.last >= ttl {
		tr.evictFlow(dst, fs)
	}
	fs.last = now
	tr.armJanitor()
}

// evictFlow reclaims one peer's sender-side state: backlog queue,
// congestion window, RTT estimate, retransmission ledger, and wire
// accounting. It refuses while anything toward the peer is still live
// (queued records, a scheduled flush, batches in flight, a stalled
// window poke) — sequence continuity must hold while frames can still
// reach the peer; the janitor simply retries next sweep. If sequence
// space was consumed, the flow's restart count bumps so the next frame
// carries a higher epoch and the peer rebinds.
func (tr *Transport) evictFlow(dst string, fs *flowSend) {
	if q, ok := tr.bat.qs[dst]; ok && (len(q.recs) > 0 || q.armed) {
		return
	}
	if tr.rty != nil {
		if d, ok := tr.rty.dests[dst]; ok && (len(d.pend) > 0 || d.timer != nil) {
			return
		}
	}
	needBump := false
	if tr.cc != nil {
		if st, ok := tr.cc.dests[dst]; ok {
			if st.inflight > 0 || st.stalled != nil {
				return
			}
			needBump = st.nextSeq > 0
		}
	}
	if needBump {
		if fs.bump == 0xffff {
			return // flow-epoch space exhausted: keep the state instead
		}
		fs.bump++
	}
	delete(tr.bat.qs, dst)
	if tr.rty != nil {
		delete(tr.rty.dests, dst)
	}
	if tr.cc != nil {
		delete(tr.cc.dests, dst)
	}
	delete(tr.accts, dst)
	tr.unregisterPeer(dst)
}

// armJanitor schedules the flow sweep if one is not already pending.
func (tr *Transport) armJanitor() {
	if tr.janArmed || tr.closed {
		return
	}
	ttl := tr.cfg.flowTTL()
	if ttl <= 0 {
		return
	}
	tr.janArmed = true
	tr.janTimer = tr.loop.After(ttl/2, tr.sweepFlows)
}

// sweepFlows is the flow janitor: it evicts sender-side state idle past
// the TTL and receiver-side state idle past twice the TTL. The doubled
// receive lifetime is the ordering argument that makes eviction safe
// with no handshake: by the time this node forgets a peer's inbound
// stream, a sender resuming toward it has always sat idle past its own
// (shorter) TTL and therefore opens a fresh epoch, which rebinds the
// newly created receive state instead of resuming into it.
func (tr *Transport) sweepFlows() {
	tr.janArmed = false
	tr.janTimer = nil
	if tr.closed {
		return
	}
	ttl := tr.cfg.flowTTL()
	now := tr.loop.Now()
	for _, dst := range sortedKeys(tr.flows) {
		fs := tr.flows[dst]
		if now-fs.last >= ttl {
			tr.evictFlow(dst, fs)
		}
	}
	// Receive state must additionally outlive the longest possible
	// retransmission episode: a delivered-but-unacked batch can arrive
	// again as late as the full backoff span (MaxRTO-capped, so
	// MaxRTO*(MaxRetries+1) plus flight slack) after its first
	// transmission, and forgetting the dedup memory before then would
	// deliver it twice.
	recvTTL := 2 * ttl
	if span := tr.cfg.MaxRTO * float64(tr.cfg.MaxRetries+2); span > recvTTL {
		recvTTL = span
	}
	for _, from := range sortedKeys(tr.srcs) {
		rs := tr.srcs[from]
		if now-rs.lastAt >= recvTTL && !rs.ackPending && !rs.ackArmed {
			delete(tr.srcs, from)
			tr.unregisterPeer(from)
		}
	}
	// Keep sweeping while any reclaimable state remains.
	if len(tr.accts) > 0 || len(tr.srcs) > 0 || len(tr.bat.qs) > 0 ||
		(tr.cc != nil && len(tr.cc.dests) > 0) {
		tr.armJanitor()
	}
}

// wireEpoch is the epoch stamped on data frames toward dst: the node's
// session incarnation (Config.Epoch) in the high 16 bits, the flow's
// restart count in the low 16. Both components only grow, so peers
// need one comparison to order incarnations and flow restarts alike.
func (tr *Transport) wireEpoch(dst string) uint32 {
	e := tr.cfg.Epoch << 16
	if fs, ok := tr.flows[dst]; ok {
		e |= uint32(fs.bump)
	}
	return e
}

// Deliver is the network's inbound entry point; wire it as the
// netif.Attach callback.
func (tr *Transport) Deliver(from string, frame []byte) {
	tr.dfr.deliver(from, frame)
}

// Close tears the stack down: every tuple still in the backlog or in
// flight is reported through OnDrop (it will never be delivered), all
// timers stop, and receiver state is discarded — a closed transport
// holds no state for any peer.
func (tr *Transport) Close() {
	if tr.closed {
		return
	}
	tr.closed = true
	if tr.rty != nil {
		tr.rty.close()
	}
	tr.bat.close()
	for _, rs := range tr.srcs {
		if rs.ackTimer != nil {
			rs.ackTimer.Cancel()
		}
	}
	tr.srcs = make(map[string]*recvState)
	if tr.cc != nil {
		tr.cc.dests = make(map[string]*ccState)
	}
	if tr.janTimer != nil {
		tr.janTimer.Cancel()
		tr.janTimer = nil
	}
	tr.janArmed = false
}

// dropUp is the failure classifier's choke point: every abandoned tuple
// passes through here exactly once with its cause, feeding the global
// and per-destination cause vectors before the application upcall.
func (tr *Transport) dropUp(dst string, t *tuple.Tuple, cause DropCause) {
	tr.stats.Dropped[cause]++
	tr.acct(dst).drops[cause]++
	if tr.onDrop != nil {
		tr.onDrop(dst, t, cause)
	}
}

// deliverUp is the Deliver stage: it hands received tuples to the
// application and keeps the per-source delivery counter.
func (tr *Transport) deliverUp(from string, tuples []*tuple.Tuple) {
	rs := tr.src(from)
	rs.recvd += int64(len(tuples))
	if tr.onReceive == nil {
		return
	}
	for _, t := range tuples {
		if tr.closed {
			return
		}
		tr.onReceive(from, t)
	}
}

// peerEpoch returns the session epoch this node has learned for dst's
// inbound stream — stamped into outgoing acknowledgments so dst can
// tell whether they describe its current incarnation. Zero until a data
// frame from dst arrives; a zero-epoch ack always carries cum 0, which
// clears nothing.
func (tr *Transport) peerEpoch(dst string) uint32 {
	if rs, ok := tr.srcs[dst]; ok && rs.epochSet {
		return rs.epoch
	}
	return 0
}

// src returns (creating if needed) the receive state for one peer and
// stamps its activity clock — every call sits on an inbound data path,
// so the stamp is exactly "last data from this peer".
func (tr *Transport) src(from string) *recvState {
	rs, ok := tr.srcs[from]
	if !ok {
		rs = &recvState{high: make(map[uint64]bool)}
		tr.srcs[from] = rs
		tr.armJanitor()
	}
	rs.lastAt = tr.loop.Now()
	return rs
}

// acct returns (creating if needed) the wire accounting for one peer.
func (tr *Transport) acct(dst string) *destAcct {
	a, ok := tr.accts[dst]
	if !ok {
		a = &destAcct{}
		tr.accts[dst] = a
	}
	return a
}

// DestStats is per-peer wire accounting plus live control state, merged
// across this node's sender state toward the peer and receiver state
// from it — one row of the sysNet introspection relation.
type DestStats struct {
	Addr      string
	Sent      int64      // data records transmitted toward Addr (retransmissions included)
	Recvd     int64      // tuples delivered upward from Addr (post-dedup)
	Bytes     int64      // data bytes put on the wire toward Addr
	Retries   int64      // records retransmitted toward Addr
	Frames    int64      // data datagrams sent toward Addr
	Cwnd      float64    // current congestion window, datagrams
	RTO       float64    // current retransmission timeout, seconds
	Backlog   int        // tuples queued behind the window
	BatchFill float64    // mean records per data datagram (Sent / Frames)
	Drops     DropCounts // classified drops toward Addr, indexed by DropCause
}

// PerDest returns per-peer accounting for every address this transport
// has sent to or received from, sorted by address.
func (tr *Transport) PerDest() []DestStats {
	return tr.PerDestInto(nil)
}

// PerDestInto is PerDest writing into a caller-owned buffer — the
// introspection refresh runs it once a second per node, so the steady
// state must not allocate. The peer registry is reconciled
// incrementally (additions here, removals by the flow janitor); the
// sorted walk then reads each accounting map directly.
func (tr *Transport) PerDestInto(out []DestStats) []DestStats {
	if tr.peerSet == nil {
		tr.peerSet = make(map[string]bool)
	}
	for addr := range tr.accts {
		tr.registerPeer(addr)
	}
	if tr.cc != nil {
		for addr := range tr.cc.dests {
			tr.registerPeer(addr)
		}
	}
	for addr := range tr.bat.qs {
		tr.registerPeer(addr)
	}
	for addr := range tr.srcs {
		tr.registerPeer(addr)
	}
	out = out[:0]
	for _, addr := range tr.peerOrder {
		st := DestStats{Addr: addr, Cwnd: tr.cfg.WindowInit, RTO: tr.cfg.InitialRTO}
		if a, ok := tr.accts[addr]; ok {
			st.Sent, st.Bytes, st.Retries, st.Frames = a.sent, a.sentBytes, a.retries, a.frames
			st.Drops = a.drops
			if a.frames > 0 {
				st.BatchFill = float64(a.sent) / float64(a.frames)
			}
		}
		if tr.cc != nil {
			if cs, ok := tr.cc.dests[addr]; ok {
				st.Cwnd, st.RTO = cs.cwnd, cs.rto
			}
		}
		if q, ok := tr.bat.qs[addr]; ok {
			st.Backlog = len(q.recs)
		}
		if rs, ok := tr.srcs[addr]; ok {
			st.Recvd = rs.recvd
		}
		out = append(out, st)
	}
	return out
}

// registerPeer adds addr to the sorted peer registry on first sight.
func (tr *Transport) registerPeer(addr string) {
	if tr.peerSet[addr] {
		return
	}
	tr.peerSet[addr] = true
	i := sort.SearchStrings(tr.peerOrder, addr)
	tr.peerOrder = slices.Insert(tr.peerOrder, i, addr)
}

// unregisterPeer removes addr from the peer registry once no state map
// knows it — the flow is fully reclaimed, the accounting snapshot stops
// reporting it, and its sysNet row ages out of the soft-state table.
func (tr *Transport) unregisterPeer(addr string) {
	if _, ok := tr.accts[addr]; ok {
		return
	}
	if tr.cc != nil {
		if _, ok := tr.cc.dests[addr]; ok {
			return
		}
	}
	if _, ok := tr.bat.qs[addr]; ok {
		return
	}
	if _, ok := tr.srcs[addr]; ok {
		return
	}
	if !tr.peerSet[addr] {
		return
	}
	delete(tr.peerSet, addr)
	if i := sort.SearchStrings(tr.peerOrder, addr); i < len(tr.peerOrder) && tr.peerOrder[i] == addr {
		tr.peerOrder = slices.Delete(tr.peerOrder, i, i+1)
	}
}

// Window reports the current congestion window toward to — exposed for
// tests and the olgc inspector.
func (tr *Transport) Window(to string) float64 {
	if tr.cc != nil {
		if st, ok := tr.cc.dests[to]; ok {
			return st.cwnd
		}
	}
	return tr.cfg.WindowInit
}

// RTO reports the current retransmission timeout toward to.
func (tr *Transport) RTO(to string) float64 {
	if tr.cc != nil {
		if st, ok := tr.cc.dests[to]; ok {
			return st.rto
		}
	}
	return tr.cfg.InitialRTO
}

// InFlight reports unacknowledged tuples toward to.
func (tr *Transport) InFlight(to string) int {
	if tr.rty == nil {
		return 0
	}
	n := 0
	for _, wb := range tr.rty.pending(to) {
		n += len(wb.recs)
	}
	return n
}

// Backlog reports tuples queued toward to behind the congestion window.
func (tr *Transport) Backlog(to string) int {
	if q, ok := tr.bat.qs[to]; ok {
		return len(q.recs)
	}
	return 0
}

// String summarizes transport state for diagnostics.
func (tr *Transport) String() string {
	return fmt.Sprintf("transport{%s dests=%d sent=%d frames=%d rexmit=%d drops=%d}",
		tr.spec, len(tr.accts), tr.stats.TuplesSent, tr.stats.Frames,
		tr.stats.Retransmits, tr.stats.Drops)
}

// clampRTO bounds an RTO estimate to the configured window.
func (tr *Transport) clampRTO(rto float64) float64 {
	return math.Min(math.Max(rto, tr.cfg.MinRTO), tr.cfg.MaxRTO)
}
