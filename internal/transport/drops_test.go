package transport

// Failure-classifier coverage: every abandoned tuple must carry the
// right DropCause, the per-cause counters (global and per-destination)
// must agree with the upcalls, and — the Close regression — teardown
// drops must classify as SessionClosed, never RetryExhausted.

import (
	"encoding/binary"
	"testing"

	"p2/internal/tuple"
)

// causeRecorder captures every OnDrop upcall by cause.
type causeRecorder struct {
	byCause map[DropCause][]int64
}

func recordDrops(tr *Transport) *causeRecorder {
	cr := &causeRecorder{byCause: make(map[DropCause][]int64)}
	tr.OnDrop(func(to string, tu *tuple.Tuple, cause DropCause) {
		cr.byCause[cause] = append(cr.byCause[cause], tu.Field(1).AsInt())
	})
	return cr
}

func (cr *causeRecorder) count(c DropCause) int { return len(cr.byCause[c]) }

// TestRetryExhaustedThenPeerDead: toward a silent peer, the first
// DeadStrikes budget exhaustions classify as RetryExhausted and every
// consecutive one after them as PeerDead.
func TestRetryExhaustedThenPeerDead(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NoBatch = true // one tuple per batch: each give-up is one strike
	cfg.MaxRetries = 1
	cfg.DeadStrikes = 2
	r := newRig(t, 0, cfg)
	cr := recordDrops(r.a)

	// 5 tuples toward a never-attached address. The collapsed window
	// serializes them: each exhausts its budget in turn.
	for i := int64(0); i < 5; i++ {
		r.a.Send("ghost", tp(i))
	}
	r.loop.Run(600)

	if got := cr.count(RetryExhausted); got != 2 {
		t.Fatalf("RetryExhausted drops = %d, want 2 (DeadStrikes)", got)
	}
	if got := cr.count(PeerDead); got != 3 {
		t.Fatalf("PeerDead drops = %d, want 3", got)
	}
	st := r.a.Stats()
	if st.Dropped[RetryExhausted] != 2 || st.Dropped[PeerDead] != 3 {
		t.Fatalf("Stats.Dropped = %v", st.Dropped)
	}
	if st.Dropped.Total() != st.Drops {
		t.Fatalf("classified total %d != retry-budget drops %d", st.Dropped.Total(), st.Drops)
	}
	// The per-destination vector mirrors the global one.
	for _, d := range r.a.PerDest() {
		if d.Addr == "ghost" {
			if d.Drops[RetryExhausted] != 2 || d.Drops[PeerDead] != 3 {
				t.Fatalf("per-dest drops = %v", d.Drops)
			}
		}
	}
}

// TestAckResetsDeadStrikes: a partition long enough for one give-up,
// then a heal and an acknowledged exchange, then another partition —
// the second episode's first give-ups must classify RetryExhausted
// again, not PeerDead.
func TestAckResetsDeadStrikes(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NoBatch = true
	cfg.MaxRetries = 1
	cfg.DeadStrikes = 1
	r := newRig(t, 0, cfg)
	cr := recordDrops(r.a)

	r.net.Partition("a", "b", true)
	r.a.Send("b", tp(0))
	r.a.Send("b", tp(1))
	r.loop.Run(300)
	first := cr.count(RetryExhausted)
	if first != 1 || cr.count(PeerDead) != 1 {
		t.Fatalf("episode 1: RetryExhausted=%d PeerDead=%d, want 1/1",
			first, cr.count(PeerDead))
	}

	r.net.Partition("a", "b", false)
	r.a.Send("b", tp(2)) // delivered and acked: strikes reset
	r.loop.RunFor(30)
	if len(r.got) == 0 {
		t.Fatal("healed link delivered nothing")
	}

	r.net.Partition("a", "b", true)
	r.a.Send("b", tp(3))
	r.loop.RunFor(300)
	if got := cr.count(RetryExhausted); got != first+1 {
		t.Fatalf("episode 2 first give-up classified as %v, want a fresh RetryExhausted (count %d, was %d)",
			cr.byCause, got, first)
	}
}

// TestCloseDropsAreSessionClosed is the teardown-classification
// regression: with both backlog and in-flight tuples outstanding,
// Close must report every one of them as SessionClosed — never
// RetryExhausted or PeerDead, which would read as network failure.
func TestCloseDropsAreSessionClosed(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NoBatch = true // window 4 in flight, the rest backlogged
	r := newRig(t, 0, cfg)
	cr := recordDrops(r.a)

	for i := int64(0); i < 10; i++ {
		r.a.Send("b", tp(i))
	}
	r.loop.RunFor(0) // flush: in flight + backlog, nothing acked
	inflight, backlog := r.a.InFlight("b"), r.a.Backlog("b")
	if inflight == 0 || backlog == 0 {
		t.Fatalf("test needs both flight (%d) and backlog (%d)", inflight, backlog)
	}

	r.a.Close()
	if got := cr.count(SessionClosed); got != inflight+backlog {
		t.Fatalf("SessionClosed drops = %d, want %d", got, inflight+backlog)
	}
	for _, c := range []DropCause{RetryExhausted, PeerDead, BacklogOverflow} {
		if cr.count(c) != 0 {
			t.Fatalf("close reported %d drops as %v", cr.count(c), c)
		}
	}
	st := r.a.Stats()
	if st.Dropped[SessionClosed] != int64(inflight+backlog) {
		t.Fatalf("Stats.Dropped = %v", st.Dropped)
	}
}

// TestBacklogOverflowClassified: records refused by a full backlog
// surface through OnDrop with cause BacklogOverflow (they used to be
// counted but never reported).
func TestBacklogOverflowClassified(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NoBatch = true
	cfg.QueueCap = 2
	r := newRig(t, 0, cfg)
	cr := recordDrops(r.a)

	// One handler, window 4: 4 go in flight, 2 fill the backlog, the
	// rest overflow.
	for i := int64(0); i < 10; i++ {
		r.a.Send("ghost", tp(i))
	}
	r.loop.RunFor(0)
	st := r.a.Stats()
	if st.QueueDrops == 0 {
		t.Fatal("backlog never overflowed; widen the burst")
	}
	if got := cr.count(BacklogOverflow); int64(got) != st.QueueDrops {
		t.Fatalf("BacklogOverflow upcalls = %d, QueueDrops = %d", got, st.QueueDrops)
	}
	if st.Dropped[BacklogOverflow] != st.QueueDrops {
		t.Fatalf("Stats.Dropped = %v, QueueDrops = %d", st.Dropped, st.QueueDrops)
	}
}

// TestCloseMidBurstUnderDupReorder is the teardown-robustness
// regression: Close lands in the middle of a retransmission burst, with
// duplicated and reordered datagrams still arriving afterwards. The
// closed side must hold no receiver or sender state, emit no further
// acknowledgments, and never resurrect per-peer state from late
// traffic; the surviving side must drain its flight state through the
// retry budget rather than wedge.
func TestCloseMidBurstUnderDupReorder(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NoBatch = true
	cfg.MaxRetries = 2
	r := newRig(t, 0.5, cfg) // heavy loss: retransmissions guaranteed
	cr := recordDrops(r.a)

	for i := int64(0); i < 12; i++ {
		r.a.Send("b", tp(i))
	}
	// Let the first exchanges and retransmissions happen, then tear b
	// down mid-burst.
	r.loop.RunFor(1.5)
	if r.a.Stats().Retransmits == 0 {
		t.Fatal("test needs an active retransmission burst at close time")
	}
	r.b.Close()
	acksAtClose := r.b.Stats().AcksSent

	// Duplicated and reordered frames of the dying burst keep arriving.
	dup := mkDataFrame(0, 0, 0, 0, 3, tp(2))
	r.b.Deliver("a", dup)
	r.b.Deliver("a", dup)
	r.b.Deliver("a", mkDataFrame(0, 0, 0, 0, 1, tp(0)))
	r.loop.RunFor(60)

	if n := len(r.b.srcs); n != 0 {
		t.Fatalf("closed transport resurrected receiver state for %d peers", n)
	}
	if got := r.b.Stats().AcksSent; got != acksAtClose {
		t.Fatalf("closed transport sent %d acks after Close", got-acksAtClose)
	}
	// a gave up on everything b never acknowledged — classified as
	// network failure (RetryExhausted then PeerDead), never wedged.
	if r.a.InFlight("b") != 0 || r.a.Backlog("b") != 0 {
		t.Fatalf("survivor wedged: inflight=%d backlog=%d",
			r.a.InFlight("b"), r.a.Backlog("b"))
	}
	delivered := int64(len(r.got))
	gaveUp := int64(cr.count(RetryExhausted) + cr.count(PeerDead))
	if delivered+gaveUp < 12 {
		t.Fatalf("tuples unaccounted for: %d delivered + %d dropped of 12", delivered, gaveUp)
	}

	// The closed side torn down the other way: a closes with reordered
	// acks still in flight toward it.
	r.a.Close()
	late := make([]byte, ackFrameLen)
	late[0] = frameAck
	binary.BigEndian.PutUint64(late[5:13], 5)
	r.a.Deliver("b", late)
	if len(r.a.srcs) != 0 || len(r.a.cc.dests) != 0 || len(r.a.rty.dests) != 0 {
		t.Fatal("late traffic resurrected sender state after Close")
	}
}

// TestDropCauseStrings pins the label names the metrics exporter and
// reason strings use.
func TestDropCauseStrings(t *testing.T) {
	want := map[DropCause]string{
		RetryExhausted:  "RetryExhausted",
		SessionClosed:   "SessionClosed",
		PeerDead:        "PeerDead",
		BacklogOverflow: "BacklogOverflow",
	}
	causes := DropCauses()
	if len(causes) != NumDropCauses {
		t.Fatalf("DropCauses() = %d entries, want %d", len(causes), NumDropCauses)
	}
	for _, c := range causes {
		if c.String() != want[c] {
			t.Fatalf("cause %d = %q", c, c.String())
		}
	}
}
