package transport

import "math"

// CCTx is the congestion-control element: a per-destination AIMD window
// over in-flight datagrams with TCP-style slow start, plus the
// Jacobson/Karels RTT estimator whose RTO the Retry element's timers
// consult. It admits batches from the Batch element when the window has
// room, assigns their sequence numbers, and refuses them (arming the
// poke) when it does not; acknowledgments and drops reopen the window
// and fire the poke.
type CCTx struct {
	tr    *Transport
	next  *Retry
	dests map[string]*ccState
}

// ccState is one destination's sender-side control state.
type ccState struct {
	nextSeq  uint64 // last sequence number assigned
	inflight int    // datagrams in flight
	cwnd     float64
	ssthresh float64
	srtt     float64
	rttvar   float64
	rto      float64
	stalled  poke // armed by a refused push; fired when the window opens
}

func newCCTx(tr *Transport) *CCTx {
	return &CCTx{tr: tr, dests: make(map[string]*ccState)}
}

func (c *CCTx) state(dst string) *ccState {
	st, ok := c.dests[dst]
	if !ok {
		st = &ccState{
			cwnd:     c.tr.cfg.WindowInit,
			ssthresh: c.tr.cfg.WindowMax,
			rto:      c.tr.cfg.InitialRTO,
		}
		c.dests[dst] = st
	}
	return st
}

// pushBatch admits wb into the window or refuses it. On admission the
// batch's records receive consecutive sequence numbers and the batch
// moves down to Retry.
func (c *CCTx) pushBatch(wb *wireBatch, pk poke) bool {
	st := c.state(wb.dst)
	if float64(st.inflight) >= st.cwnd {
		st.stalled = pk
		return false
	}
	wb.first = st.nextSeq + 1
	st.nextSeq += uint64(len(wb.recs))
	st.inflight++
	c.next.pushBatch(wb, nil)
	return true
}

// onAck processes a cumulative acknowledgment from dst — piggybacked in
// a data-frame header or carried by a bare ack frame. Every batch fully
// covered by cum leaves flight and contributes additive window growth.
// Only the most recently transmitted of them supplies an RTT sample
// (plus Karn's rule: never a retransmitted batch): a cumulative ack can
// clear batches whose acknowledgment was stalled behind a hole, and
// their inflated wait times are queueing artifacts, not path RTT.
func (c *CCTx) onAck(dst string, cum uint64) {
	st, ok := c.dests[dst]
	if !ok {
		return
	}
	cleared := c.tr.rty.clear(dst, cum)
	if len(cleared) == 0 {
		return
	}
	var freshest *wireBatch
	recovery := false
	for _, wb := range cleared {
		st.inflight--
		if wb.rexmit {
			// This ack ends a retransmission episode: everything it
			// clears sat buffered behind the hole, so no batch in it
			// times the path (Karn's rule, extended to the episode).
			recovery = true
		} else if freshest == nil || wb.sentAt > freshest.sentAt {
			freshest = wb
		}
		// Additive increase: slow start below ssthresh, then 1/cwnd.
		if st.cwnd < st.ssthresh {
			st.cwnd++
		} else {
			st.cwnd += 1 / st.cwnd
		}
	}
	if freshest != nil && !recovery {
		c.sample(st, c.tr.loop.Now()-freshest.sentAt)
	}
	if st.cwnd > c.tr.cfg.WindowMax {
		st.cwnd = c.tr.cfg.WindowMax
	}
	c.open(st)
}

// sample folds one RTT measurement into the estimator.
func (c *CCTx) sample(st *ccState, rtt float64) {
	if st.srtt == 0 {
		st.srtt = rtt
		st.rttvar = rtt / 2
	} else {
		st.rttvar = 0.75*st.rttvar + 0.25*math.Abs(st.srtt-rtt)
		st.srtt = 0.875*st.srtt + 0.125*rtt
	}
	st.rto = c.tr.clampRTO(st.srtt + 4*st.rttvar)
}

// onTimeout applies multiplicative decrease and restarts slow start —
// called by Retry before each retransmission.
func (c *CCTx) onTimeout(dst string) {
	st := c.state(dst)
	st.ssthresh = math.Max(float64(st.inflight)/2, 2)
	st.cwnd = 1
}

// onGiveUp frees the window slot of a batch dropped after the retry
// budget and pokes the backlog.
func (c *CCTx) onGiveUp(dst string) {
	if st, ok := c.dests[dst]; ok {
		st.inflight--
		c.open(st)
	}
}

// open fires the stalled poke, if any — capacity freed, try again.
func (c *CCTx) open(st *ccState) {
	if st.stalled != nil {
		pk := st.stalled
		st.stalled = nil
		pk()
	}
}

// rtoFor returns the current retransmission timeout toward dst.
func (c *CCTx) rtoFor(dst string) float64 {
	if st, ok := c.dests[dst]; ok {
		return st.rto
	}
	return c.tr.cfg.InitialRTO
}
