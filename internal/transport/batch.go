package transport

// Batch is the packet-scheduling element: it coalesces records bound
// for one destination into batches that fit the endpoint's MTU budget,
// so a burst of tuples toward one peer costs one datagram instead of
// one each.
//
// Records accumulate in a per-destination queue — the transport's
// backlog — and a flush is deferred to the end of the current event-loop
// handler. Run-to-completion execution (§3.1) makes this the natural
// batching boundary: every tuple a rule strand derives toward one peer
// lands in the same flush, with zero added latency. The flush packs
// batches front-to-back and pushes them downstream until the stage below
// refuses one (congestion window full); the refused batch's records stay
// queued and the poke re-enters the flush when the window opens, which
// means backpressure automatically produces fuller datagrams.

// maxBatchRecords caps records per datagram at what the frame header's
// u16 count field can carry.
const maxBatchRecords = 65535

// sendQueue is one destination's backlog.
type sendQueue struct {
	recs  []record
	armed bool // a deferred flush is scheduled
}

// Batch coalesces per-destination records into MTU-budget batches.
type Batch struct {
	tr       *Transport
	next     batchSink
	maxBytes int // record bytes per datagram (MTU minus frame header)
	maxRecs  int // records per datagram; 1 disables coalescing
	capacity int // backlog bound per destination; 0 = unbounded
	qs       map[string]*sendQueue
}

func newBatch(tr *Transport, next batchSink, maxBytes, maxRecs, capacity int) *Batch {
	if maxBytes < 1 {
		maxBytes = 1 // degenerate MTU: every record ships alone
	}
	return &Batch{
		tr:       tr,
		next:     next,
		maxBytes: maxBytes,
		maxRecs:  maxRecs,
		capacity: capacity,
		qs:       make(map[string]*sendQueue),
	}
}

func (b *Batch) q(dst string) *sendQueue {
	q, ok := b.qs[dst]
	if !ok {
		q = &sendQueue{}
		b.qs[dst] = q
	}
	return q
}

// push queues one record and arms the end-of-handler flush. A full
// backlog refuses the record and reports it dropped with cause
// BacklogOverflow — admission failure, classified like any other drop.
func (b *Batch) push(dst string, rec record) {
	q := b.q(dst)
	if b.capacity > 0 && len(q.recs) >= b.capacity {
		b.tr.stats.QueueDrops++
		b.tr.dropUp(dst, rec.t, BacklogOverflow)
		return
	}
	q.recs = append(q.recs, rec)
	if !q.armed {
		q.armed = true
		b.tr.loop.Defer(func() {
			q.armed = false
			b.flush(dst)
		})
	}
}

// flush packs the queue into batches and pushes them downstream until
// the queue drains or the stage below stalls.
func (b *Batch) flush(dst string) {
	if b.tr.closed {
		return
	}
	q := b.qs[dst]
	if q == nil {
		return
	}
	for len(q.recs) > 0 {
		// Pack from the front without consuming: a refused batch's
		// records must stay queued. A single over-budget record still
		// ships alone — the endpoint decides its fate, as UDP would.
		n, bytes := 1, len(q.recs[0].wire)
		for n < len(q.recs) && n < b.maxRecs && bytes+len(q.recs[n].wire) <= b.maxBytes {
			bytes += len(q.recs[n].wire)
			n++
		}
		wb := &wireBatch{dst: dst, recs: append([]record(nil), q.recs[:n]...), bytes: bytes}
		if !b.next.pushBatch(wb, func() { b.flush(dst) }) {
			return // window full; the poke re-enters flush
		}
		q.recs = q.recs[n:]
	}
	q.recs = nil // release the drained backing array
}

// close drops every queued record, reporting each through OnDrop with
// cause SessionClosed.
func (b *Batch) close() {
	for _, dst := range sortedKeys(b.qs) {
		for _, rec := range b.qs[dst].recs {
			b.tr.dropUp(dst, rec.t, SessionClosed)
		}
	}
	b.qs = make(map[string]*sendQueue)
}
