package transport

import (
	"math"
	"sort"

	"p2/internal/eventloop"
)

// wireBatch is one datagram's worth of records toward one destination —
// the unit the lower send-path elements (CCTx, Retry, Frame) pass along
// and the unit of retransmission. Its records carry the consecutive
// sequence numbers first..first+len(recs)-1.
type wireBatch struct {
	dst   string
	recs  []record
	bytes int // sum of record bytes (frame payload minus header)

	first   uint64 // sequence number of recs[0]; 0 in unreliable chains
	sentAt  float64
	retries int
	rexmit  bool // ever retransmitted (Karn: contributes no RTT sample)
}

// last returns the sequence number of the final record.
func (wb *wireBatch) last() uint64 { return wb.first + uint64(len(wb.recs)) - 1 }

// destRetry is one destination's retransmission state: the outstanding
// batches and the single timer guarding the oldest of them. timeoutFn
// is built once per destination so re-arming allocates no closure.
// strikes counts consecutive batches abandoned after the retry budget
// with no acknowledgment between — the failure classifier's dead-peer
// evidence (see Config.DeadStrikes).
type destRetry struct {
	pend      map[uint64]*wireBatch
	timer     *eventloop.Timer
	timeoutFn func()
	strikes   int
}

// Retry is the reliable-transmission element: it remembers every batch
// in flight and keeps one retransmission timer per destination, armed
// for the oldest outstanding batch at CCTx's current RTO with
// exponential backoff — the discipline cumulative acknowledgment
// demands. Acks clear nothing past a hole, so timing (and on expiry,
// resending) only the oldest batch turns one lost datagram into one
// retransmission; the cumulative ack that answers it clears everything
// the receiver buffered above the hole. A batch that exhausts the
// retry budget is dropped, each of its tuples reported through OnDrop.
type Retry struct {
	tr    *Transport
	next  *Frame
	dests map[string]*destRetry
}

func newRetry(tr *Transport) *Retry {
	return &Retry{tr: tr, dests: make(map[string]*destRetry)}
}

func (r *Retry) dest(dst string) *destRetry {
	d, ok := r.dests[dst]
	if !ok {
		d = &destRetry{pend: make(map[uint64]*wireBatch)}
		d.timeoutFn = func() { r.onTimeout(dst) }
		r.dests[dst] = d
	}
	return d
}

// oldest returns the outstanding batch with the lowest first sequence
// number, or nil.
func (d *destRetry) oldest() *wireBatch {
	var o *wireBatch
	for _, wb := range d.pend {
		if o == nil || wb.first < o.first {
			o = wb
		}
	}
	return o
}

// pushBatch records wb as in flight, transmits it, and ensures the
// destination's timer is armed.
func (r *Retry) pushBatch(wb *wireBatch, _ poke) bool {
	d := r.dest(wb.dst)
	d.pend[wb.first] = wb
	r.next.pushBatch(wb, nil)
	if d.timer == nil {
		r.arm(wb.dst, d)
	}
	return true
}

// arm points the destination's timer at its oldest outstanding batch.
// The disarmed timer's struct is released to the loop's pool — acks
// re-arm on every cleared batch, so this path churns constantly.
func (r *Retry) arm(dst string, d *destRetry) {
	if d.timer != nil {
		d.timer.CancelFree()
		d.timer = nil
	}
	o := d.oldest()
	if o == nil {
		return
	}
	// Exponential backoff, capped at MaxRTO like the estimate itself —
	// the cap also bounds the whole episode to MaxRTO*(MaxRetries+1)
	// seconds, which is what lets the receive side forget idle flows on
	// a schedule no late retransmission can outrun.
	delay := math.Min(r.tr.cc.rtoFor(dst)*math.Pow(2, float64(o.retries)), r.tr.cfg.MaxRTO)
	d.timer = r.tr.loop.After(delay, d.timeoutFn)
}

// onTimeout handles the destination timer: the oldest batch is presumed
// lost — retransmit it (or give it up) and re-arm.
func (r *Retry) onTimeout(dst string) {
	if r.tr.closed {
		return
	}
	d := r.dests[dst]
	if d == nil {
		return
	}
	d.timer = nil
	o := d.oldest()
	if o == nil {
		return
	}
	if o.retries >= r.tr.cfg.MaxRetries {
		delete(d.pend, o.first)
		r.tr.stats.Drops += int64(len(o.recs))
		// Classify the give-up: the first few exhausted batches read as
		// loss or congestion; past DeadStrikes consecutive exhaustions
		// with no ack between, the peer is presumed dead.
		d.strikes++
		cause := RetryExhausted
		if d.strikes > r.tr.cfg.deadStrikes() {
			cause = PeerDead
		}
		for _, rec := range o.recs {
			r.tr.dropUp(dst, rec.t, cause)
		}
		r.tr.cc.onGiveUp(dst)
		r.arm(dst, d)
		return
	}
	r.tr.cc.onTimeout(dst)
	o.retries++
	o.rexmit = true
	r.next.pushBatch(o, nil)
	r.arm(dst, d)
}

// skipFor returns the sequence number below which nothing toward dst
// remains in flight — stamped into data-frame headers so the receiver
// can advance its cumulative counter across abandoned holes. Called
// mid-transmission, the pending set always contains the batch being
// framed, so the result never reaches into it.
func (r *Retry) skipFor(dst string) uint64 {
	d := r.dests[dst]
	if d == nil {
		return 0
	}
	o := d.oldest()
	if o == nil {
		return 0
	}
	return o.first - 1
}

// clear cancels and removes every batch toward dst fully covered by the
// cumulative acknowledgment, returned in sequence order, and re-arms
// the timer for whatever is left.
func (r *Retry) clear(dst string, cum uint64) []*wireBatch {
	d := r.dests[dst]
	if d == nil {
		return nil
	}
	var out []*wireBatch
	for first, wb := range d.pend {
		if wb.last() <= cum {
			delete(d.pend, first)
			out = append(out, wb)
		}
	}
	if len(out) > 0 {
		d.strikes = 0 // the peer acknowledged — it is alive
		sort.Slice(out, func(i, j int) bool { return out[i].first < out[j].first })
		r.arm(dst, d)
	}
	return out
}

// close cancels every timer and reports all in-flight tuples dropped
// with cause SessionClosed — teardown is not a retry failure, and must
// never masquerade as one.
func (r *Retry) close() {
	for _, dst := range sortedKeys(r.dests) {
		d := r.dests[dst]
		if d.timer != nil {
			d.timer.Cancel()
		}
		firsts := make([]uint64, 0, len(d.pend))
		for first := range d.pend {
			firsts = append(firsts, first)
		}
		sort.Slice(firsts, func(i, j int) bool { return firsts[i] < firsts[j] })
		for _, first := range firsts {
			for _, rec := range d.pend[first].recs {
				r.tr.dropUp(dst, rec.t, SessionClosed)
			}
		}
	}
	r.dests = make(map[string]*destRetry)
}

// pending returns the outstanding batches toward dst (nil if none).
func (r *Retry) pending(dst string) map[uint64]*wireBatch {
	if d := r.dests[dst]; d != nil {
		return d.pend
	}
	return nil
}

// sortedKeys returns a map's string keys in sorted order — Close paths
// report drops deterministically.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
