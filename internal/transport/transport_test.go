package transport

import (
	"testing"

	"p2/internal/eventloop"
	"p2/internal/simnet"
	"p2/internal/tuple"
	"p2/internal/val"
)

func tp(n int64) *tuple.Tuple { return tuple.New("t", val.Str("x"), val.Int(n)) }

// pair builds two transports connected through a simnet with the given
// loss rate.
func pair(t *testing.T, loss float64) (*eventloop.Sim, *Transport, *Transport, *[]int64) {
	t.Helper()
	loop := eventloop.NewSim()
	cfg := simnet.DefaultConfig()
	cfg.LossRate = loss
	cfg.Domains = 1
	net := simnet.New(loop, cfg)

	mkNode := func(addr string) *Transport {
		var tr *Transport
		ep, err := net.Attach(addr, func(from string, payload []byte) {
			tr.Deliver(from, payload)
		})
		if err != nil {
			t.Fatal(err)
		}
		tr = New(loop, ep, DefaultConfig())
		return tr
	}
	a := mkNode("a")
	b := mkNode("b")
	var got []int64
	b.OnReceive(func(from string, tu *tuple.Tuple) {
		got = append(got, tu.Field(1).AsInt())
	})
	return loop, a, b, &got
}

func TestBasicDelivery(t *testing.T) {
	loop, a, _, got := pair(t, 0)
	a.Send("b", tp(1))
	a.Send("b", tp(2))
	loop.Run(5)
	if len(*got) != 2 || (*got)[0] != 1 || (*got)[1] != 2 {
		t.Fatalf("got %v", *got)
	}
	if a.Stats().Retransmits != 0 {
		t.Error("no retransmits expected on clean network")
	}
}

func TestRetransmissionUnderLoss(t *testing.T) {
	loop, a, _, got := pair(t, 0.3)
	for i := int64(0); i < 50; i++ {
		a.Send("b", tp(i))
	}
	loop.Run(120)
	if len(*got) != 50 {
		t.Fatalf("delivered %d of 50 under 30%% loss", len(*got))
	}
	if a.Stats().Retransmits == 0 {
		t.Error("expected retransmissions under loss")
	}
	// Exactly-once: no duplicates.
	seen := make(map[int64]bool)
	for _, v := range *got {
		if seen[v] {
			t.Fatalf("duplicate delivery of %d", v)
		}
		seen[v] = true
	}
}

func TestHeavyLossEventualDelivery(t *testing.T) {
	// Property-style: for several loss rates, everything sent under the
	// retry budget's coverage eventually arrives exactly once.
	for _, loss := range []float64{0.1, 0.2, 0.4} {
		loop, a, _, got := pair(t, loss)
		const n = 30
		for i := int64(0); i < n; i++ {
			a.Send("b", tp(i))
		}
		loop.Run(300)
		if len(*got) < n-2 { // 0.4^5 per-tuple loss ≈ 1%, allow slack
			t.Errorf("loss %.1f: delivered %d of %d", loss, len(*got), n)
		}
		seen := map[int64]int{}
		for _, v := range *got {
			seen[v]++
			if seen[v] > 1 {
				t.Errorf("loss %.1f: duplicate %d", loss, v)
			}
		}
	}
}

func TestGiveUpAfterRetries(t *testing.T) {
	loop := eventloop.NewSim()
	net := simnet.New(loop, simnet.DefaultConfig())
	var tr *Transport
	ep, _ := net.Attach("a", func(from string, p []byte) { tr.Deliver(from, p) })
	tr = New(loop, ep, DefaultConfig())
	var dropped []*tuple.Tuple
	tr.OnDrop(func(to string, tu *tuple.Tuple) { dropped = append(dropped, tu) })
	tr.Send("ghost", tp(9)) // destination never attached
	loop.Run(300)
	if len(dropped) != 1 {
		t.Fatalf("dropped = %d, want 1", len(dropped))
	}
	if tr.Stats().Drops != 1 {
		t.Fatal("drop counter wrong")
	}
	if tr.InFlight("ghost") != 0 {
		t.Fatal("inflight must be cleared after giving up")
	}
}

func TestCongestionWindowGrowsAndShrinks(t *testing.T) {
	loop, a, _, _ := pair(t, 0)
	w0 := a.Window("b")
	for i := int64(0); i < 40; i++ {
		a.Send("b", tp(i))
	}
	loop.Run(30)
	if a.Window("b") <= w0 {
		t.Fatalf("window did not grow: %v -> %v", w0, a.Window("b"))
	}
	// Now cut the destination: timeouts must collapse the window.
	grown := a.Window("b")
	a.Send("b", tp(100))
	loopNet := loop // keep name clarity
	_ = loopNet
	// Kill by sending to a black hole: simulate with a fresh transport
	// to an unattached address instead. Simpler: force timeouts by
	// sending to ghost via the same transport.
	a.Send("ghost", tp(1))
	loop.Run(100)
	if a.Window("ghost") >= grown {
		t.Fatalf("timeout should shrink ghost window: %v", a.Window("ghost"))
	}
}

func TestWindowLimitsInFlight(t *testing.T) {
	loop, a, _, got := pair(t, 0)
	for i := int64(0); i < 200; i++ {
		a.Send("b", tp(i))
	}
	// Immediately (before any acks), inflight must not exceed the
	// initial window.
	if got0 := a.InFlight("b"); float64(got0) > DefaultConfig().WindowInit {
		t.Fatalf("inflight %d exceeds initial window", got0)
	}
	loop.Run(60)
	if len(*got) != 200 {
		t.Fatalf("delivered %d of 200", len(*got))
	}
}

func TestBacklogOverflowDrops(t *testing.T) {
	loop := eventloop.NewSim()
	net := simnet.New(loop, simnet.DefaultConfig())
	var tr *Transport
	ep, _ := net.Attach("a", func(from string, p []byte) { tr.Deliver(from, p) })
	cfg := DefaultConfig()
	cfg.QueueCap = 5
	tr = New(loop, ep, cfg)
	for i := int64(0); i < 50; i++ {
		tr.Send("ghost", tp(i))
	}
	if tr.Stats().QueueDrops == 0 {
		t.Fatal("expected backlog drops")
	}
}

func TestRTOAdaptsToRTT(t *testing.T) {
	loop, a, _, _ := pair(t, 0)
	before := a.RTO("b")
	for i := int64(0); i < 20; i++ {
		a.Send("b", tp(i))
	}
	loop.Run(30)
	after := a.RTO("b")
	// Intra-domain RTT is ~4 ms; RTO should fall from the initial 1 s
	// to the configured floor.
	if after >= before {
		t.Fatalf("rto did not adapt: %v -> %v", before, after)
	}
	if after != DefaultConfig().MinRTO {
		t.Fatalf("rto = %v, want clamp at MinRTO", after)
	}
}

func TestDuplicateSuppressionOnAckLoss(t *testing.T) {
	// With loss, some acks vanish; the sender retransmits and the
	// receiver must suppress the duplicate payload.
	loop, a, b, got := pair(t, 0.4)
	for i := int64(0); i < 20; i++ {
		a.Send("b", tp(i))
	}
	loop.Run(200)
	if b.Stats().DupsSuppressed == 0 && a.Stats().Retransmits > 0 {
		// Retransmits happened but no dup reached b — possible if only
		// data (not acks) were lost. Not a failure, but check no dups.
		t.Log("no duplicate reached receiver")
	}
	seen := map[int64]bool{}
	for _, v := range *got {
		if seen[v] {
			t.Fatalf("duplicate %d delivered to app", v)
		}
		seen[v] = true
	}
}

func TestAccountingTap(t *testing.T) {
	loop, a, _, _ := pair(t, 0)
	var taps int
	var bytes int
	a.OnSent(func(to string, tu *tuple.Tuple, wire int, rexmit bool) {
		taps++
		bytes += wire
	})
	a.Send("b", tp(1))
	loop.Run(5)
	if taps != 1 || bytes <= tp(1).EncodedSize() {
		t.Fatalf("taps=%d bytes=%d", taps, bytes)
	}
}

func TestUnreliableMode(t *testing.T) {
	loop := eventloop.NewSim()
	cfg := simnet.DefaultConfig()
	cfg.Domains = 1
	net := simnet.New(loop, cfg)
	var a, b *Transport
	epA, _ := net.Attach("a", func(from string, p []byte) { a.Deliver(from, p) })
	epB, _ := net.Attach("b", func(from string, p []byte) { b.Deliver(from, p) })
	tcfg := DefaultConfig()
	tcfg.Unreliable = true
	a = New(loop, epA, tcfg)
	b = New(loop, epB, tcfg)
	var got []int64
	b.OnReceive(func(from string, tu *tuple.Tuple) { got = append(got, tu.Field(1).AsInt()) })
	a.Send("b", tp(5))
	loop.Run(5)
	if len(got) != 1 || got[0] != 5 {
		t.Fatalf("got %v", got)
	}
	if b.Stats().AcksSent != 0 {
		t.Fatal("unreliable mode must not ack")
	}
}

func TestCorruptFrameIgnored(t *testing.T) {
	_, _, b, got := pair(t, 0)
	b.Deliver("a", []byte{0, 1, 2}) // too short
	b.Deliver("a", append(make([]byte, headerLen), 0xff, 0xff, 0xff))
	if len(*got) != 0 {
		t.Fatal("corrupt frames must be dropped")
	}
}

func TestCloseStopsActivity(t *testing.T) {
	loop, a, _, got := pair(t, 0)
	a.Send("b", tp(1))
	a.Close()
	a.Send("b", tp(2))
	loop.Run(10)
	// First may or may not arrive (sent before close), second must not.
	for _, v := range *got {
		if v == 2 {
			t.Fatal("send after close delivered")
		}
	}
	if a.String() == "" {
		t.Fatal("String() should describe state")
	}
}

func TestRecvStateCumulativeCompaction(t *testing.T) {
	rs := &recvState{high: make(map[uint64]bool)}
	rs.mark(2)
	rs.mark(3)
	if rs.cum != 0 || len(rs.high) != 2 {
		t.Fatalf("out-of-order state wrong: cum=%d high=%v", rs.cum, rs.high)
	}
	rs.mark(1)
	if rs.cum != 3 || len(rs.high) != 0 {
		t.Fatalf("compaction failed: cum=%d high=%v", rs.cum, rs.high)
	}
	if !rs.seen(2) || rs.seen(4) {
		t.Fatal("seen() wrong")
	}
}

func BenchmarkSendReceive(b *testing.B) {
	loop := eventloop.NewSim()
	cfg := simnet.DefaultConfig()
	cfg.Domains = 1
	net := simnet.New(loop, cfg)
	var a, bb *Transport
	epA, _ := net.Attach("a", func(from string, p []byte) { a.Deliver(from, p) })
	epB, _ := net.Attach("b", func(from string, p []byte) { bb.Deliver(from, p) })
	a = New(loop, epA, DefaultConfig())
	bb = New(loop, epB, DefaultConfig())
	bb.OnReceive(func(string, *tuple.Tuple) {})
	msg := tp(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Send("b", msg)
		loop.Run(loop.Now() + 1)
	}
}
