package transport

import (
	"encoding/binary"
	"testing"
	"time"

	"p2/internal/eventloop"
	"p2/internal/simnet"
	"p2/internal/tuple"
	"p2/internal/val"
)

func tp(n int64) *tuple.Tuple { return tuple.New("t", val.Str("x"), val.Int(n)) }

// rig is a two-node simnet with transports a and b.
type rig struct {
	loop *eventloop.Sim
	net  *simnet.Net
	a, b *Transport
	got  []int64 // payloads delivered at b, in order
}

// newRig builds two transports connected through a simnet with the
// given loss rate, both running the chain cfg selects.
func newRig(t testing.TB, loss float64, cfg Config) *rig {
	t.Helper()
	loop := eventloop.NewSim()
	scfg := simnet.DefaultConfig()
	scfg.LossRate = loss
	scfg.Domains = 1
	net := simnet.New(loop, scfg)
	r := &rig{loop: loop, net: net}

	mkNode := func(addr string) *Transport {
		var tr *Transport
		ep, err := net.Attach(addr, func(from string, payload []byte) {
			tr.Deliver(from, payload)
		})
		if err != nil {
			t.Fatal(err)
		}
		tr = New(loop, ep, cfg)
		return tr
	}
	r.a = mkNode("a")
	r.b = mkNode("b")
	r.b.OnReceive(func(from string, tu *tuple.Tuple) {
		r.got = append(r.got, tu.Field(1).AsInt())
	})
	return r
}

// sendSpread submits n tuples from a toward to, spaced dt apart, so
// they cannot all coalesce into one datagram.
func (r *rig) sendSpread(to string, n int, dt float64) {
	for i := 0; i < n; i++ {
		v := int64(i)
		r.loop.At(r.loop.Now()+float64(i)*dt, func() { r.a.Send(to, tp(v)) })
	}
}

// assertExactlyOnce checks 0..n-1 each arrived exactly once.
func (r *rig) assertExactlyOnce(t *testing.T, n int) {
	t.Helper()
	seen := make(map[int64]int)
	for _, v := range r.got {
		seen[v]++
		if seen[v] > 1 {
			t.Fatalf("duplicate delivery of %d", v)
		}
	}
	if len(r.got) != n {
		t.Fatalf("delivered %d of %d", len(r.got), n)
	}
}

func TestBasicDelivery(t *testing.T) {
	r := newRig(t, 0, DefaultConfig())
	r.a.Send("b", tp(1))
	r.a.Send("b", tp(2))
	r.loop.Run(5)
	if len(r.got) != 2 || r.got[0] != 1 || r.got[1] != 2 {
		t.Fatalf("got %v", r.got)
	}
	if r.a.Stats().Retransmits != 0 {
		t.Error("no retransmits expected on clean network")
	}
	// Both tuples were submitted in one handler: one datagram.
	if r.a.Stats().Frames != 1 {
		t.Errorf("frames = %d, want 1 (batched)", r.a.Stats().Frames)
	}
}

func TestBatchingCoalescesOneTurn(t *testing.T) {
	r := newRig(t, 0, DefaultConfig())
	const n = 40
	for i := int64(0); i < n; i++ {
		r.a.Send("b", tp(i))
	}
	r.loop.Run(10)
	r.assertExactlyOnce(t, n)
	st := r.a.Stats()
	if st.TuplesSent != n {
		t.Fatalf("tuples sent = %d", st.TuplesSent)
	}
	if st.Frames >= n/2 {
		t.Fatalf("frames = %d for %d tuples; batching did not coalesce", st.Frames, n)
	}
	// Order is preserved through the batch.
	for i, v := range r.got {
		if v != int64(i) {
			t.Fatalf("out of order at %d: %v", i, r.got)
		}
	}
}

// TestBatchingReducesDatagrams is the acceptance check: at equal
// delivered-tuple counts, the batched chain puts at least 2x fewer
// datagrams on the wire than the unbatched chain.
func TestBatchingReducesDatagrams(t *testing.T) {
	const n = 400
	run := func(cfg Config) (datagrams int64) {
		r := newRig(t, 0, cfg)
		// Bursts of 20, as a rule strand fanning out would produce.
		for burst := 0; burst < n/20; burst++ {
			at := float64(burst) * 0.05
			r.loop.At(at, func() {
				base := int64(burst * 20)
				for i := int64(0); i < 20; i++ {
					r.a.Send("b", tp(base+i))
				}
			})
		}
		r.loop.Run(30)
		r.assertExactlyOnce(t, n)
		return r.net.TotalStats().PacketsSent
	}
	batched := run(DefaultConfig())
	plain := func() Config { c := DefaultConfig(); c.NoBatch = true; return c }()
	unbatched := run(plain)
	if batched*2 > unbatched {
		t.Fatalf("batched chain used %d datagrams, unbatched %d; want >= 2x reduction",
			batched, unbatched)
	}
}

// TestCumulativeAckPiggyback drives request/response traffic and checks
// the reverse-path data frames carry the acks instead of bare ack
// datagrams.
func TestCumulativeAckPiggyback(t *testing.T) {
	r := newRig(t, 0, DefaultConfig())
	// b answers every delivery with a tuple back to a.
	r.b.OnReceive(func(from string, tu *tuple.Tuple) {
		r.b.Send(from, tp(100+tu.Field(1).AsInt()))
	})
	var backAtA int
	r.a.OnReceive(func(string, *tuple.Tuple) { backAtA++ })
	for round := 0; round < 10; round++ {
		at := float64(round) * 0.5
		r.loop.At(at, func() { r.a.Send("b", tp(int64(round))) })
	}
	r.loop.Run(20)
	if backAtA != 10 {
		t.Fatalf("replies at a = %d", backAtA)
	}
	bs := r.b.Stats()
	if bs.AcksPiggybacked == 0 {
		t.Fatalf("no piggybacked acks despite reverse-path data: %+v", bs)
	}
	if bs.AcksSent >= bs.AcksPiggybacked {
		t.Fatalf("bare acks (%d) should be rarer than piggybacked (%d) under request/response",
			bs.AcksSent, bs.AcksPiggybacked)
	}
}

func TestRetransmissionUnderLoss(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NoBatch = true // many datagrams, so loss certainly hits some
	r := newRig(t, 0.3, cfg)
	r.sendSpread("b", 50, 0.05)
	r.loop.Run(120)
	r.assertExactlyOnce(t, 50)
	if r.a.Stats().Retransmits == 0 {
		t.Error("expected retransmissions under loss")
	}
}

func TestHeavyLossEventualDelivery(t *testing.T) {
	// Property-style: for several loss rates and both chain shapes,
	// everything sent under the retry budget's coverage eventually
	// arrives exactly once.
	for _, noBatch := range []bool{false, true} {
		for _, loss := range []float64{0.1, 0.2, 0.4} {
			cfg := DefaultConfig()
			cfg.NoBatch = noBatch
			r := newRig(t, loss, cfg)
			const n = 30
			r.sendSpread("b", n, 0.1)
			r.loop.Run(300)
			if len(r.got) < n-2 { // 0.4^5 per-datagram loss, allow slack
				t.Errorf("noBatch=%v loss %.1f: delivered %d of %d", noBatch, loss, len(r.got), n)
			}
			seen := map[int64]int{}
			for _, v := range r.got {
				if seen[v]++; seen[v] > 1 {
					t.Errorf("noBatch=%v loss %.1f: duplicate %d", noBatch, loss, v)
				}
			}
		}
	}
}

func TestGiveUpAfterRetries(t *testing.T) {
	loop := eventloop.NewSim()
	net := simnet.New(loop, simnet.DefaultConfig())
	var tr *Transport
	ep, _ := net.Attach("a", func(from string, p []byte) { tr.Deliver(from, p) })
	tr = New(loop, ep, DefaultConfig())
	var dropped []*tuple.Tuple
	tr.OnDrop(func(to string, tu *tuple.Tuple, _ DropCause) { dropped = append(dropped, tu) })
	tr.Send("ghost", tp(9)) // destination never attached
	loop.Run(300)
	if len(dropped) != 1 {
		t.Fatalf("dropped = %d, want 1", len(dropped))
	}
	if tr.Stats().Drops != 1 {
		t.Fatal("drop counter wrong")
	}
	if tr.InFlight("ghost") != 0 {
		t.Fatal("inflight must be cleared after giving up")
	}
}

func TestCongestionWindowGrowsAndShrinks(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NoBatch = true // several datagrams in flight grow the window faster
	r := newRig(t, 0, cfg)
	w0 := r.a.Window("b")
	r.sendSpread("b", 40, 0.01)
	r.loop.Run(30)
	if r.a.Window("b") <= w0 {
		t.Fatalf("window did not grow: %v -> %v", w0, r.a.Window("b"))
	}
	grown := r.a.Window("b")
	// Sends into a black hole must collapse that window via timeouts.
	r.a.Send("ghost", tp(1))
	r.loop.Run(100)
	if r.a.Window("ghost") >= grown {
		t.Fatalf("timeout should shrink ghost window: %v", r.a.Window("ghost"))
	}
}

func TestWindowLimitsInFlight(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NoBatch = true
	r := newRig(t, 0, cfg)
	for i := int64(0); i < 200; i++ {
		r.a.Send("b", tp(i))
	}
	r.loop.RunFor(0) // run the deferred flush only: no time for acks
	inflight := r.a.InFlight("b")
	if float64(inflight) > cfg.WindowInit {
		t.Fatalf("inflight %d exceeds initial window %v", inflight, cfg.WindowInit)
	}
	if r.a.Backlog("b") != 200-inflight {
		t.Fatalf("backlog = %d, want %d", r.a.Backlog("b"), 200-inflight)
	}
	r.loop.Run(60)
	r.assertExactlyOnce(t, 200)
}

func TestBacklogOverflowDrops(t *testing.T) {
	loop := eventloop.NewSim()
	net := simnet.New(loop, simnet.DefaultConfig())
	var tr *Transport
	ep, _ := net.Attach("a", func(from string, p []byte) { tr.Deliver(from, p) })
	cfg := DefaultConfig()
	cfg.QueueCap = 5
	tr = New(loop, ep, cfg)
	for i := int64(0); i < 50; i++ {
		tr.Send("ghost", tp(i))
	}
	if tr.Stats().QueueDrops == 0 {
		t.Fatal("expected backlog drops")
	}
}

func TestRTOAdaptsToRTT(t *testing.T) {
	r := newRig(t, 0, DefaultConfig())
	before := r.a.RTO("b")
	r.sendSpread("b", 20, 0.2)
	r.loop.Run(30)
	after := r.a.RTO("b")
	// Intra-domain RTT is a few ms (plus the delayed-ack wait); the RTO
	// should fall from the initial 1 s to the configured floor.
	if after >= before {
		t.Fatalf("rto did not adapt: %v -> %v", before, after)
	}
	if after != DefaultConfig().MinRTO {
		t.Fatalf("rto = %v, want clamp at MinRTO", after)
	}
}

func TestDuplicateSuppressionOnAckLoss(t *testing.T) {
	// With loss, some acks vanish; the sender retransmits and the
	// receiver must suppress the duplicate payload.
	r := newRig(t, 0.4, DefaultConfig())
	r.sendSpread("b", 20, 0.1)
	r.loop.Run(200)
	seen := map[int64]bool{}
	for _, v := range r.got {
		if seen[v] {
			t.Fatalf("duplicate %d delivered to app", v)
		}
		seen[v] = true
	}
}

func TestAccountingTap(t *testing.T) {
	r := newRig(t, 0, DefaultConfig())
	var taps, bytes int
	r.a.OnSent(func(to string, tu *tuple.Tuple, wire int, rexmit bool) {
		taps++
		bytes += wire
	})
	r.a.Send("b", tp(1))
	r.loop.Run(5)
	if taps != 1 || bytes <= tp(1).EncodedSize() {
		t.Fatalf("taps=%d bytes=%d", taps, bytes)
	}
	// Multi-tuple frames tap once per tuple; the sizes sum to the exact
	// data bytes on the wire.
	taps, bytes = 0, 0
	for i := int64(0); i < 5; i++ {
		r.a.Send("b", tp(i))
	}
	r.loop.Run(5)
	st := r.a.PerDest()
	if taps != 5 {
		t.Fatalf("taps = %d, want 5", taps)
	}
	wantBytes := st[0].Bytes // cumulative; subtract the first frame
	if int64(bytes) != wantBytes-int64(tp(1).EncodedSize()+dataHeaderLen) {
		t.Fatalf("tap bytes %d do not sum to wire bytes", bytes)
	}
}

func TestUnreliableMode(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Unreliable = true
	r := newRig(t, 0, cfg)
	r.a.Send("b", tp(5))
	r.loop.Run(5)
	if len(r.got) != 1 || r.got[0] != 5 {
		t.Fatalf("got %v", r.got)
	}
	if r.b.Stats().AcksSent != 0 || r.b.Stats().AcksPiggybacked != 0 {
		t.Fatal("unreliable chain must not ack")
	}
	if r.a.InFlight("b") != 0 {
		t.Fatal("unreliable chain must not track flight state")
	}
	// The unreliable chain still batches.
	for i := int64(0); i < 20; i++ {
		r.a.Send("b", tp(i))
	}
	r.loop.Run(5)
	if fr := r.a.Stats().Frames; fr != 2 {
		t.Fatalf("frames = %d, want 2 (one per burst)", fr)
	}
}

func TestCorruptFrameIgnored(t *testing.T) {
	r := newRig(t, 0, DefaultConfig())
	r.b.Deliver("a", []byte{})               // empty
	r.b.Deliver("a", []byte{frameData, 1})   // truncated header
	r.b.Deliver("a", []byte{frameAck, 9, 9}) // truncated ack
	corrupt := make([]byte, dataHeaderLen+3)
	corrupt[0] = frameData
	corrupt[dataHeaderLen-1] = 1 // one record, but garbage bytes follow
	corrupt[dataHeaderLen] = 0xff
	r.b.Deliver("a", corrupt)
	if len(r.got) != 0 {
		t.Fatal("corrupt frames must be dropped")
	}
}

func TestCloseStopsActivity(t *testing.T) {
	r := newRig(t, 0, DefaultConfig())
	r.a.Send("b", tp(1))
	r.a.Close()
	r.a.Send("b", tp(2))
	r.loop.Run(10)
	// Nothing flushed after close reaches the wire.
	for _, v := range r.got {
		if v == 2 {
			t.Fatal("send after close delivered")
		}
	}
	if r.a.String() == "" {
		t.Fatal("String() should describe state")
	}
}

// TestCloseDropsBacklogAndInflight is the regression test for silent
// Close: every tuple still queued or in flight must surface through
// OnDrop, and a closed transport must hold no receiver state.
func TestCloseDropsBacklogAndInflight(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NoBatch = true // one tuple per datagram: window 4 in flight, rest backlogged
	r := newRig(t, 0, cfg)
	var dropped []int64
	r.a.OnDrop(func(to string, tu *tuple.Tuple, _ DropCause) {
		if to != "b" {
			t.Errorf("drop reported for %q", to)
		}
		dropped = append(dropped, tu.Field(1).AsInt())
	})
	// b has sent to a, so a holds receiver state.
	r.b.Send("a", tp(99))
	r.loop.Run(1)
	for i := int64(0); i < 10; i++ {
		r.a.Send("b", tp(i))
	}
	r.loop.RunFor(0) // flush: 4 in flight, 6 backlogged, none acked yet
	inflight, backlog := r.a.InFlight("b"), r.a.Backlog("b")
	if inflight == 0 || backlog == 0 {
		t.Fatalf("test needs both flight (%d) and backlog (%d)", inflight, backlog)
	}
	r.a.Close()
	if len(dropped) != inflight+backlog {
		t.Fatalf("onDrop fired %d times, want %d", len(dropped), inflight+backlog)
	}
	seen := map[int64]bool{}
	for _, v := range dropped {
		if seen[v] {
			t.Fatalf("tuple %d dropped twice", v)
		}
		seen[v] = true
	}
	// Receiver state from b is gone: PerDest reports nothing.
	if pd := r.a.PerDest(); len(pd) != 1 || pd[0].Addr != "b" || pd[0].Recvd != 0 {
		t.Fatalf("closed transport still holds receiver state: %+v", pd)
	}
	r.loop.Run(60) // pending retransmit timers must all be inert
	if r.a.Stats().Drops != 0 {
		t.Fatal("close drops must not count as retry-budget drops")
	}
}

// TestCorruptSkipIgnored: a data frame whose skip field is absurd
// (>= its own firstSeq — a well-formed sender always keeps skip below
// the frame it is transmitting) must not drag the cumulative counter
// forward, which would suppress all future legitimate traffic.
func TestCorruptSkipIgnored(t *testing.T) {
	r := newRig(t, 0, DefaultConfig())
	r.a.Send("b", tp(1))
	r.loop.Run(5)
	rec := tp(9).Marshal()
	frame := make([]byte, dataHeaderLen, dataHeaderLen+len(rec))
	frame[0] = frameData
	binary.BigEndian.PutUint64(frame[17:25], 1<<63) // hostile skip
	binary.BigEndian.PutUint64(frame[25:33], 500)   // first < skip: malformed
	binary.BigEndian.PutUint16(frame[33:35], 1)
	frame = append(frame, rec...)
	r.b.Deliver("a", frame)
	// Later in-order traffic still flows: cum was not wedged at 2^63.
	r.a.Send("b", tp(2))
	r.loop.Run(10)
	want := []int64{1, 9, 2}
	if len(r.got) != 3 || r.got[0] != want[0] || r.got[1] != want[1] || r.got[2] != want[2] {
		t.Fatalf("got %v, want %v", r.got, want)
	}
}

// TestAdvanceLargeSkipIsBounded: advance must sweep the out-of-order
// set, never iterate the (untrusted) sequence range.
func TestAdvanceLargeSkipIsBounded(t *testing.T) {
	rs := &recvState{high: map[uint64]bool{5: true, 1 << 40: true}}
	done := make(chan struct{})
	go func() { rs.advance(1 << 62); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("advance iterated the sequence range instead of the set")
	}
	if rs.cum != 1<<62 || len(rs.high) != 0 {
		t.Fatalf("advance state: cum=%d high=%v", rs.cum, rs.high)
	}
}

func TestRecvStateCumulativeCompaction(t *testing.T) {
	rs := &recvState{high: make(map[uint64]bool)}
	rs.mark(2, 2) // seqs 2,3 out of order
	if rs.cum != 0 || len(rs.high) != 2 {
		t.Fatalf("out-of-order state wrong: cum=%d high=%v", rs.cum, rs.high)
	}
	rs.mark(1, 1)
	if rs.cum != 3 || len(rs.high) != 0 {
		t.Fatalf("compaction failed: cum=%d high=%v", rs.cum, rs.high)
	}
	if !rs.seen(2) || rs.seen(4) {
		t.Fatal("seen() wrong")
	}
}

func TestStackSpecString(t *testing.T) {
	full := DefaultConfig().Spec()
	if !full.Reliable || !full.Batching {
		t.Fatalf("default spec = %+v", full)
	}
	short := Config{Unreliable: true}.Spec()
	if short.Reliable {
		t.Fatal("unreliable config must select the short chain")
	}
	if full.String() == short.String() {
		t.Fatal("chain renderings should differ")
	}
}

func BenchmarkSendReceive(b *testing.B) {
	r := newRig(b, 0, DefaultConfig())
	msg := tp(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.a.Send("b", msg)
		r.loop.Run(r.loop.Now() + 1)
	}
}
