package transport

import (
	"testing"
)

// TestPerDestAccounting verifies the per-peer counters behind the
// sysNet introspection relation: sends, bytes, and retries on the
// sender side; post-dedup deliveries on the receiver side.
func TestPerDestAccounting(t *testing.T) {
	loop, a, b, got := pair(t, 0)
	for i := int64(0); i < 5; i++ {
		a.Send("b", tp(i))
	}
	loop.Run(10)
	if len(*got) != 5 {
		t.Fatalf("delivered %d", len(*got))
	}

	aStats := a.PerDest()
	if len(aStats) != 1 || aStats[0].Addr != "b" {
		t.Fatalf("a.PerDest() = %v", aStats)
	}
	if aStats[0].Sent != 5 || aStats[0].Retries != 0 {
		t.Fatalf("a->b send accounting: %+v", aStats[0])
	}
	if aStats[0].Bytes <= 5*int64(headerLen) {
		t.Fatalf("a->b bytes = %d, want > header-only", aStats[0].Bytes)
	}
	bStats := b.PerDest()
	if len(bStats) != 1 || bStats[0].Addr != "a" || bStats[0].Recvd != 5 {
		t.Fatalf("b.PerDest() = %v", bStats)
	}
}

func TestPerDestCountsRetries(t *testing.T) {
	loop, a, _, got := pair(t, 0.4)
	for i := int64(0); i < 20; i++ {
		a.Send("b", tp(i))
	}
	loop.Run(120)
	if len(*got) == 0 {
		t.Fatal("nothing delivered under loss")
	}
	st := a.PerDest()
	if len(st) != 1 || st[0].Retries == 0 {
		t.Fatalf("expected retries under 40%% loss: %v", st)
	}
	if st[0].Sent < 20 {
		t.Fatalf("sent %d < 20 submissions", st[0].Sent)
	}
}
