package transport

import (
	"testing"
)

// TestPerDestAccounting verifies the per-peer counters behind the
// sysNet introspection relation: records, datagrams, bytes, and control
// state on the sender side; post-dedup deliveries on the receiver side.
func TestPerDestAccounting(t *testing.T) {
	r := newRig(t, 0, DefaultConfig())
	for i := int64(0); i < 5; i++ {
		r.a.Send("b", tp(i))
	}
	r.loop.Run(10)
	if len(r.got) != 5 {
		t.Fatalf("delivered %d", len(r.got))
	}

	aStats := r.a.PerDest()
	if len(aStats) != 1 || aStats[0].Addr != "b" {
		t.Fatalf("a.PerDest() = %v", aStats)
	}
	st := aStats[0]
	if st.Sent != 5 || st.Retries != 0 {
		t.Fatalf("a->b send accounting: %+v", st)
	}
	if st.Frames != 1 || st.BatchFill != 5 {
		t.Fatalf("a->b: one burst should be one datagram of 5 records: %+v", st)
	}
	if st.Bytes <= 5*int64(tp(0).EncodedSize()) {
		t.Fatalf("a->b bytes = %d, want > payload-only", st.Bytes)
	}
	if st.Cwnd <= DefaultConfig().WindowInit {
		t.Fatalf("window did not grow after an acked frame: %+v", st)
	}
	if st.RTO != DefaultConfig().MinRTO {
		t.Fatalf("rto not adapted: %+v", st)
	}
	if st.Backlog != 0 {
		t.Fatalf("backlog should be empty when idle: %+v", st)
	}
	bStats := r.b.PerDest()
	if len(bStats) != 1 || bStats[0].Addr != "a" || bStats[0].Recvd != 5 {
		t.Fatalf("b.PerDest() = %v", bStats)
	}
}

func TestPerDestCountsRetries(t *testing.T) {
	cfg := DefaultConfig()
	// The accounting is inspected long after the stream quiesces; keep
	// the flow janitor from reclaiming it first.
	cfg.FlowIdleTTL = -1
	r := newRig(t, 0.4, cfg)
	r.sendSpread("b", 20, 0.1)
	r.loop.Run(120)
	if len(r.got) == 0 {
		t.Fatal("nothing delivered under loss")
	}
	st := r.a.PerDest()
	if len(st) != 1 || st[0].Retries == 0 {
		t.Fatalf("expected retries under 40%% loss: %v", st)
	}
	if st[0].Sent < 20 {
		t.Fatalf("sent %d < 20 submissions", st[0].Sent)
	}
}
