package transport

// Session-epoch coverage: a node restarted at the same address (the
// Deployment.Replace path) begins a fresh sequence space under a higher
// epoch. Peers must rebind their Dedup/Ack state to the new incarnation
// — the regression here is the silent blackhole where the restarted
// sender's sequence numbers fall below the peer's cumulative counter,
// every frame is suppressed as a duplicate, and the cumulative ack
// keeps falsely confirming delivery.

import (
	"encoding/binary"
	"testing"

	"p2/internal/eventloop"
	"p2/internal/simnet"
	"p2/internal/tuple"
)

// mkDataFrame hand-assembles a data frame for hostile-input tests.
func mkDataFrame(epoch, ackEpoch uint32, cum, skip, first uint64, tuples ...*tuple.Tuple) []byte {
	buf := make([]byte, dataHeaderLen)
	buf[0] = frameData
	binary.BigEndian.PutUint32(buf[1:5], epoch)
	binary.BigEndian.PutUint32(buf[5:9], ackEpoch)
	binary.BigEndian.PutUint64(buf[9:17], cum)
	binary.BigEndian.PutUint64(buf[17:25], skip)
	binary.BigEndian.PutUint64(buf[25:33], first)
	binary.BigEndian.PutUint16(buf[33:35], uint16(len(tuples)))
	for _, t := range tuples {
		buf = append(buf, t.Marshal()...)
	}
	return buf
}

// TestReplaceEpochUnwedgesDedup is the Replace-blackhole regression:
// after a peer restarts at the same address with a higher epoch, its
// restarted sequence numbers (1, 2, ...) sit below the old cumulative
// counter — the receiver must rebind, not suppress.
func TestReplaceEpochUnwedgesDedup(t *testing.T) {
	loop := eventloop.NewSim()
	scfg := simnet.DefaultConfig()
	scfg.Domains = 1
	net := simnet.New(loop, scfg)

	mk := func(addr string, epoch uint32) *Transport {
		var tr *Transport
		ep, err := net.Attach(addr, func(from string, p []byte) { tr.Deliver(from, p) })
		if err != nil {
			t.Fatal(err)
		}
		cfg := DefaultConfig()
		cfg.Epoch = epoch
		tr = New(loop, ep, cfg)
		return tr
	}
	a1 := mk("a", 1)
	b := mk("b", 1)
	var got []int64
	b.OnReceive(func(from string, tu *tuple.Tuple) { got = append(got, tu.Field(1).AsInt()) })

	for i := int64(0); i < 20; i++ {
		a1.Send("b", tp(i))
	}
	loop.Run(10)
	if len(got) != 20 {
		t.Fatalf("incarnation 1 delivered %d of 20", len(got))
	}

	// Replace: the first incarnation dies, a new one binds the same
	// address with a higher epoch and a sequence space restarting at 1.
	a1.Close()
	net.Kill("a")
	a2 := mk("a", 2)
	got = got[:0]
	for i := int64(100); i < 110; i++ {
		a2.Send("b", tp(i))
	}
	loop.Run(loop.Now() + 10)
	if len(got) != 10 {
		t.Fatalf("replaced incarnation delivered %d of 10 — dedup state not rebound", len(got))
	}
	if fl := a2.InFlight("b"); fl != 0 {
		t.Fatalf("new incarnation still has %d in flight: its acks were filtered", fl)
	}
	if d := a2.Stats().Drops; d != 0 {
		t.Fatalf("new incarnation dropped %d tuples", d)
	}
}

// TestStaleEpochFrameDiscarded: once a receiver has rebound to a newer
// incarnation, a delayed datagram from the previous one (reordered in
// flight across the restart) must be discarded outright — neither
// delivered nor allowed to flap the epoch back.
func TestStaleEpochFrameDiscarded(t *testing.T) {
	r := newRig(t, 0, DefaultConfig())
	// b learns epoch 5 for a.
	r.b.Deliver("a", mkDataFrame(5, 0, 0, 0, 1, tp(1)))
	if len(r.got) != 1 || r.got[0] != 1 {
		t.Fatalf("got %v", r.got)
	}
	// A stale epoch-3 datagram arrives late.
	r.b.Deliver("a", mkDataFrame(3, 0, 0, 0, 2, tp(99)))
	if len(r.got) != 1 {
		t.Fatalf("stale-epoch frame delivered: %v", r.got)
	}
	if rs := r.b.srcs["a"]; rs.epoch != 5 || rs.cum != 1 {
		t.Fatalf("stale frame disturbed receive state: epoch=%d cum=%d", rs.epoch, rs.cum)
	}
	// The current incarnation still flows.
	r.b.Deliver("a", mkDataFrame(5, 0, 0, 0, 2, tp(2)))
	if len(r.got) != 2 || r.got[1] != 2 {
		t.Fatalf("current epoch wedged: %v", r.got)
	}
}

// TestStaleEpochAckIgnored: an acknowledgment stamped with another
// incarnation's epoch describes a dead stream and must not clear the
// current one's flight state.
func TestStaleEpochAckIgnored(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Epoch = 7
	cfg.NoBatch = true
	r := newRig(t, 0, cfg)
	for i := int64(0); i < 3; i++ {
		r.a.Send("ghost", tp(i)) // never acked: stays in flight
	}
	r.loop.RunFor(0)
	inflight := r.a.InFlight("ghost")
	if inflight == 0 {
		t.Fatal("test needs flight state")
	}

	stale := make([]byte, ackFrameLen)
	stale[0] = frameAck
	binary.BigEndian.PutUint32(stale[1:5], 6<<16) // previous incarnation
	binary.BigEndian.PutUint64(stale[5:13], 1000)
	r.a.Deliver("ghost", stale)
	if got := r.a.InFlight("ghost"); got != inflight {
		t.Fatalf("stale ack cleared flight state: %d -> %d", inflight, got)
	}

	fresh := make([]byte, ackFrameLen)
	fresh[0] = frameAck
	binary.BigEndian.PutUint32(fresh[1:5], 7<<16) // the wire epoch of an unevicted flow
	binary.BigEndian.PutUint64(fresh[5:13], 1000)
	r.a.Deliver("ghost", fresh)
	if got := r.a.InFlight("ghost"); got != 0 {
		t.Fatalf("current-epoch ack ignored: %d still in flight", got)
	}
}

// TestCorruptFirstSeqBounded: a data frame whose firstSeq sits
// absurdly far above the cumulative counter is corruption; accepting it
// would plant an unreclaimable entry in the out-of-order set and
// suppress the legitimate stream when it reaches those numbers.
func TestCorruptFirstSeqBounded(t *testing.T) {
	r := newRig(t, 0, DefaultConfig())
	r.a.Send("b", tp(1))
	r.loop.Run(5)
	r.b.Deliver("a", mkDataFrame(0, 0, 0, 0, 1<<40, tp(66)))
	if len(r.got) != 1 {
		t.Fatalf("hostile frame delivered: %v", r.got)
	}
	if rs := r.b.srcs["a"]; len(rs.high) != 0 {
		t.Fatalf("hostile firstSeq poisoned the out-of-order set: %v", rs.high)
	}
	r.a.Send("b", tp(2))
	r.loop.Run(loop10(r))
	if len(r.got) != 2 || r.got[1] != 2 {
		t.Fatalf("stream wedged after hostile frame: %v", r.got)
	}
}

func loop10(r *rig) float64 { return r.loop.Now() + 10 }
