package transport

// Transport-under-partition coverage: a network cut mid-stream must
// exhaust the retry budget (surfacing drops), collapse the congestion
// window, and leave the stack able to recover cleanly once the
// partition heals — for the batched, unbatched, and unreliable chains.

import (
	"fmt"
	"testing"

	"p2/internal/tuple"
)

func TestReliableChainsSurvivePartition(t *testing.T) {
	for _, noBatch := range []bool{false, true} {
		t.Run(fmt.Sprintf("noBatch=%v", noBatch), func(t *testing.T) {
			cfg := DefaultConfig()
			cfg.NoBatch = noBatch
			// This test asserts the collapsed window is still visible
			// after a 250 s partition; keep the flow janitor from
			// reclaiming the very state under inspection.
			cfg.FlowIdleTTL = -1
			r := newRig(t, 0, cfg)
			var dropped []int64
			r.a.OnDrop(func(to string, tu *tuple.Tuple, _ DropCause) {
				dropped = append(dropped, tu.Field(1).AsInt())
			})

			// Phase 1: healthy stream grows the window.
			r.sendSpread("b", 20, 0.05)
			r.loop.Run(10)
			if len(r.got) != 20 {
				t.Fatalf("pre-partition delivered %d of 20", len(r.got))
			}
			healthyWindow := r.a.Window("b")
			if healthyWindow <= cfg.WindowInit {
				t.Fatalf("window did not grow while healthy: %v", healthyWindow)
			}

			// Phase 2: cut the link mid-stream and keep sending. The retry
			// budget must exhaust for every queued tuple (the collapsed
			// window serializes frames, each burning ~6 s of backoff at
			// the adapted RTO floor), fire drops, and collapse the window.
			r.net.Partition("a", "b", true)
			r.sendSpread("b", 20, 0.05)
			r.loop.RunFor(250)
			if len(dropped) != 20 {
				t.Fatalf("dropped %d of 20 despite partition outlasting the retry budget", len(dropped))
			}
			if w := r.a.Window("b"); w != 1 {
				t.Fatalf("window = %v under partition, want collapse to 1", w)
			}
			if len(r.got) != 20 {
				t.Fatalf("tuples crossed the partition: %d", len(r.got))
			}

			// Phase 3: heal. Fresh traffic must flow again, exactly once,
			// and the window must regrow from its collapsed state.
			r.net.Partition("a", "b", false)
			before := len(r.got)
			for i := int64(100); i < 120; i++ {
				v := i
				r.loop.At(r.loop.Now()+float64(i-100)*0.05, func() { r.a.Send("b", tp(v)) })
			}
			r.loop.RunFor(60)
			fresh := r.got[before:]
			if len(fresh) != 20 {
				t.Fatalf("post-heal delivered %d of 20", len(fresh))
			}
			seen := map[int64]bool{}
			for _, v := range fresh {
				if v < 100 || seen[v] {
					t.Fatalf("post-heal stream corrupt: %v", fresh)
				}
				seen[v] = true
			}
			if w := r.a.Window("b"); w <= 1 {
				t.Fatalf("window did not recover after heal: %v", w)
			}
			if r.a.InFlight("b") != 0 || r.a.Backlog("b") != 0 {
				t.Fatalf("stack not quiesced after heal: inflight=%d backlog=%d",
					r.a.InFlight("b"), r.a.Backlog("b"))
			}
		})
	}
}

// TestSingleLossRetransmitsOnlyTheHole pins the cumulative-ack retry
// discipline: with several datagrams in flight and exactly the first
// one lost, only that one may retransmit — the ack answering it clears
// everything the receiver buffered above the hole. (A per-batch timer
// design would spuriously resend the entire window.)
func TestSingleLossRetransmitsOnlyTheHole(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NoBatch = true
	cfg.WindowInit = 8
	r := newRig(t, 0, cfg)
	r.net.Partition("a", "b", true)
	r.a.Send("b", tp(0))
	r.loop.RunFor(0.01) // the first frame leaves and vanishes in the cut
	r.net.Partition("a", "b", false)
	for i := int64(1); i < 6; i++ {
		r.a.Send("b", tp(i))
	}
	r.loop.Run(30)
	r.assertExactlyOnce(t, 6)
	if rx := r.a.Stats().Retransmits; rx != 1 {
		t.Fatalf("retransmits = %d, want exactly 1 (only the lost frame)", rx)
	}
	if r.a.InFlight("b") != 0 {
		t.Fatal("flight not drained after the hole healed")
	}
}

func TestUnreliableChainUnderPartition(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Unreliable = true
	r := newRig(t, 0, cfg)
	r.sendSpread("b", 10, 0.05)
	r.loop.Run(5)
	if len(r.got) != 10 {
		t.Fatalf("pre-partition delivered %d", len(r.got))
	}
	r.net.Partition("a", "b", true)
	r.sendSpread("b", 10, 0.05)
	r.loop.RunFor(5)
	if len(r.got) != 10 {
		t.Fatal("tuples crossed the partition")
	}
	// Fire-and-forget: the cut must leave no state accumulating.
	if r.a.InFlight("b") != 0 || r.a.Backlog("b") != 0 {
		t.Fatal("unreliable chain accumulated state under partition")
	}
	r.net.Partition("a", "b", false)
	r.sendSpread("b", 10, 0.05)
	r.loop.RunFor(5)
	if len(r.got) != 20 {
		t.Fatalf("post-heal delivered %d of 20 total", len(r.got))
	}
}
