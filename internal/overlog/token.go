// Package overlog implements the OverLog language (§2.2): a Datalog
// dialect extended with location specifiers (@X), soft-state table
// declarations (materialize), continuous queries over streams, explicit
// deletion, aggregates in rule heads, and ring-interval predicates
// ("K in (N,S]").
//
// The package provides the lexer, parser, and AST. Semantic analysis
// and compilation to dataflow graphs live in internal/planner.
//
// Grammar sketch:
//
//	program     = { statement } .
//	statement   = materialize | define | watch | rule | fact .
//	materialize = "materialize" "(" name "," lifetime "," size ","
//	              "keys" "(" int { "," int } ")" ")" "." .
//	define      = "define" "(" name "," literal ")" "." .
//	watch       = "watch" "(" name ")" "." .
//	rule        = [ ruleID ] [ "delete" ] atom ":-" term { "," term } "." .
//	fact        = [ ruleID ] atom "." .
//	term        = [ "not" ] atom | var ":=" expr | expr .
//	atom        = name [ "@" var ] "(" [ arg { "," arg } ] ")" .
//	arg         = expr | aggfn "<" ( var | "*" ) ">" | "_" .
//
// Expressions use C-like operators with one deliberate deviation: shifts
// bind tighter than + and -, so Chord's finger target "N + 1 << I"
// parses as N + (1 << I), matching the paper's intent.
package overlog

import "fmt"

// tokKind enumerates lexical token kinds.
type tokKind int

const (
	tokEOF      tokKind = iota
	tokIdent            // lower-case initial: relation/function/constant names
	tokVar              // upper-case initial: variables
	tokWildcard         // _
	tokInt
	tokFloat
	tokString

	tokLParen   // (
	tokRParen   // )
	tokLBracket // [
	tokRBracket // ]
	tokComma    // ,
	tokPeriod   // .
	tokAt       // @
	tokIf       // :-
	tokAssign   // :=

	tokPlus  // +
	tokMinus // -
	tokStar  // *
	tokSlash // /
	tokPct   // %
	tokShl   // <<
	tokShr   // >>
	tokLt    // <
	tokGt    // >
	tokLe    // <=
	tokGe    // >=
	tokEq    // ==
	tokNe    // !=
	tokAnd   // &&
	tokOr    // ||
	tokBang  // !
)

var tokNames = map[tokKind]string{
	tokEOF: "EOF", tokIdent: "identifier", tokVar: "variable",
	tokWildcard: "_", tokInt: "integer", tokFloat: "float",
	tokString: "string", tokLParen: "(", tokRParen: ")",
	tokLBracket: "[", tokRBracket: "]", tokComma: ",", tokPeriod: ".",
	tokAt: "@", tokIf: ":-", tokAssign: ":=", tokPlus: "+",
	tokMinus: "-", tokStar: "*", tokSlash: "/", tokPct: "%",
	tokShl: "<<", tokShr: ">>", tokLt: "<", tokGt: ">", tokLe: "<=",
	tokGe: ">=", tokEq: "==", tokNe: "!=", tokAnd: "&&", tokOr: "||",
	tokBang: "!",
}

func (k tokKind) String() string {
	if s, ok := tokNames[k]; ok {
		return s
	}
	return fmt.Sprintf("token(%d)", int(k))
}

// token is one lexeme with source position.
type token struct {
	kind tokKind
	text string
	line int
	col  int
}

// Error is a parse or lex failure with source position.
type Error struct {
	Line, Col int
	Msg       string
}

func (e *Error) Error() string {
	return fmt.Sprintf("overlog: line %d:%d: %s", e.Line, e.Col, e.Msg)
}

// lexer turns OverLog source into tokens. It strips //, /* */ and #
// comments.
type lexer struct {
	src  string
	pos  int
	line int
	col  int
}

func newLexer(src string) *lexer { return &lexer{src: src, line: 1, col: 1} }

func (l *lexer) errf(format string, args ...any) *Error {
	return &Error{Line: l.line, Col: l.col, Msg: fmt.Sprintf(format, args...)}
}

func (l *lexer) peekByte() byte {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *lexer) peekByte2() byte {
	if l.pos+1 >= len(l.src) {
		return 0
	}
	return l.src[l.pos+1]
}

func (l *lexer) advance() byte {
	c := l.src[l.pos]
	l.pos++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *lexer) skipSpaceAndComments() error {
	for l.pos < len(l.src) {
		c := l.peekByte()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '#':
			for l.pos < len(l.src) && l.peekByte() != '\n' {
				l.advance()
			}
		case c == '/' && l.peekByte2() == '/':
			for l.pos < len(l.src) && l.peekByte() != '\n' {
				l.advance()
			}
		case c == '/' && l.peekByte2() == '*':
			l.advance()
			l.advance()
			closed := false
			for l.pos < len(l.src) {
				if l.peekByte() == '*' && l.peekByte2() == '/' {
					l.advance()
					l.advance()
					closed = true
					break
				}
				l.advance()
			}
			if !closed {
				return l.errf("unterminated block comment")
			}
		default:
			return nil
		}
	}
	return nil
}

func isLetter(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_'
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

// next returns the next token.
func (l *lexer) next() (token, error) {
	if err := l.skipSpaceAndComments(); err != nil {
		return token{}, err
	}
	line, col := l.line, l.col
	mk := func(k tokKind, text string) token {
		return token{kind: k, text: text, line: line, col: col}
	}
	if l.pos >= len(l.src) {
		return mk(tokEOF, ""), nil
	}
	c := l.peekByte()

	switch {
	case isLetter(c):
		start := l.pos
		for l.pos < len(l.src) && (isLetter(l.peekByte()) || isDigit(l.peekByte())) {
			l.advance()
		}
		text := l.src[start:l.pos]
		if text == "_" {
			return mk(tokWildcard, text), nil
		}
		if text[0] >= 'A' && text[0] <= 'Z' {
			return mk(tokVar, text), nil
		}
		return mk(tokIdent, text), nil

	case isDigit(c):
		start := l.pos
		isFloat := false
		for l.pos < len(l.src) && isDigit(l.peekByte()) {
			l.advance()
		}
		// A '.' is a decimal point only when a digit follows; otherwise
		// it is the statement terminator.
		if l.peekByte() == '.' && isDigit(l.peekByte2()) {
			isFloat = true
			l.advance()
			for l.pos < len(l.src) && isDigit(l.peekByte()) {
				l.advance()
			}
		}
		if isFloat {
			return mk(tokFloat, l.src[start:l.pos]), nil
		}
		return mk(tokInt, l.src[start:l.pos]), nil

	case c == '"':
		l.advance()
		start := l.pos
		for l.pos < len(l.src) && l.peekByte() != '"' {
			if l.peekByte() == '\n' {
				return token{}, l.errf("newline in string literal")
			}
			l.advance()
		}
		if l.pos >= len(l.src) {
			return token{}, l.errf("unterminated string literal")
		}
		text := l.src[start:l.pos]
		l.advance() // closing quote
		return mk(tokString, text), nil
	}

	two := ""
	if l.pos+1 < len(l.src) {
		two = l.src[l.pos : l.pos+2]
	}
	switch two {
	case ":-":
		l.advance()
		l.advance()
		return mk(tokIf, two), nil
	case ":=":
		l.advance()
		l.advance()
		return mk(tokAssign, two), nil
	case "<<":
		l.advance()
		l.advance()
		return mk(tokShl, two), nil
	case ">>":
		l.advance()
		l.advance()
		return mk(tokShr, two), nil
	case "<=":
		l.advance()
		l.advance()
		return mk(tokLe, two), nil
	case ">=":
		l.advance()
		l.advance()
		return mk(tokGe, two), nil
	case "==":
		l.advance()
		l.advance()
		return mk(tokEq, two), nil
	case "!=":
		l.advance()
		l.advance()
		return mk(tokNe, two), nil
	case "&&":
		l.advance()
		l.advance()
		return mk(tokAnd, two), nil
	case "||":
		l.advance()
		l.advance()
		return mk(tokOr, two), nil
	}

	l.advance()
	switch c {
	case '(':
		return mk(tokLParen, "("), nil
	case ')':
		return mk(tokRParen, ")"), nil
	case '[':
		return mk(tokLBracket, "["), nil
	case ']':
		return mk(tokRBracket, "]"), nil
	case ',':
		return mk(tokComma, ","), nil
	case '.':
		return mk(tokPeriod, "."), nil
	case '@':
		return mk(tokAt, "@"), nil
	case '+':
		return mk(tokPlus, "+"), nil
	case '-':
		return mk(tokMinus, "-"), nil
	case '*':
		return mk(tokStar, "*"), nil
	case '/':
		return mk(tokSlash, "/"), nil
	case '%':
		return mk(tokPct, "%"), nil
	case '<':
		return mk(tokLt, "<"), nil
	case '>':
		return mk(tokGt, ">"), nil
	case '!':
		return mk(tokBang, "!"), nil
	}
	return token{}, l.errf("unexpected character %q", string(c))
}
