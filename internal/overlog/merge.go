package overlog

import (
	"fmt"
)

// Merge combines several OverLog programs into one, the front-end half
// of the paper's multi-overlay sharing story (§1: P2 "can compile
// multiple overlay specifications into a single dataflow"; §2.1: "Table
// names ... provide a natural way to share definitions between multiple
// overlay specifications").
//
// Rules, facts, and watches concatenate. A table materialized by more
// than one program is shared and must be declared identically —
// differing lifetimes, sizes, or keys are a conflict, not a silent
// override. Duplicate defines must agree for the same reason.
func Merge(progs ...*Program) (*Program, error) {
	out := &Program{}
	seenTables := make(map[string]*Materialize)
	seenDefines := make(map[string]*Define)
	seenWatches := make(map[string]bool)
	for _, p := range progs {
		for _, m := range p.Materialize {
			if prev, ok := seenTables[m.Name]; ok {
				if !sameMaterialize(prev, m) {
					return nil, fmt.Errorf(
						"overlog: merge: table %s declared as %s and %s",
						m.Name, prev.String(), m.String())
				}
				continue // shared declaration
			}
			seenTables[m.Name] = m
			out.Materialize = append(out.Materialize, m)
		}
		for _, d := range p.Defines {
			if prev, ok := seenDefines[d.Name]; ok {
				if !prev.Value.Equal(d.Value) {
					return nil, fmt.Errorf(
						"overlog: merge: constant %s defined as %s and %s",
						d.Name, prev.Value, d.Value)
				}
				continue
			}
			seenDefines[d.Name] = d
			out.Defines = append(out.Defines, d)
		}
		for _, w := range p.Watches {
			if !seenWatches[w] {
				seenWatches[w] = true
				out.Watches = append(out.Watches, w)
			}
		}
		out.Rules = append(out.Rules, p.Rules...)
		out.Facts = append(out.Facts, p.Facts...)
	}
	return out, nil
}

func sameMaterialize(a, b *Materialize) bool {
	if a.Name != b.Name || a.Infinite != b.Infinite ||
		a.Lifetime != b.Lifetime || a.Size != b.Size || len(a.Keys) != len(b.Keys) {
		return false
	}
	for i := range a.Keys {
		if a.Keys[i] != b.Keys[i] {
			return false
		}
	}
	return true
}
