package overlog

import (
	"strings"
	"testing"
)

func TestMergeConcatenatesAndShares(t *testing.T) {
	a := MustParse(`
		materialize(neighbor, 120, infinity, keys(2)).
		define(t1, 5).
		watch(x).
		A1 x@X(X) :- e@X(X).
	`)
	b := MustParse(`
		materialize(neighbor, 120, infinity, keys(2)).
		materialize(seen, 60, 100, keys(2)).
		define(t1, 5).
		define(t2, 7).
		watch(x).
		watch(y).
		B1 y@X(X) :- x@X(X), neighbor@X(X, Y).
		B0 seen@X(X, "boot").
	`)
	m, err := Merge(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Materialize) != 2 {
		t.Fatalf("tables = %d, want shared neighbor + seen", len(m.Materialize))
	}
	if len(m.Defines) != 2 {
		t.Fatalf("defines = %d", len(m.Defines))
	}
	if len(m.Watches) != 2 {
		t.Fatalf("watches = %v", m.Watches)
	}
	if m.RuleCount() != 2 || len(m.Facts) != 1 {
		t.Fatalf("rules=%d facts=%d", m.RuleCount(), len(m.Facts))
	}
	// The merged program prints and reparses.
	if _, err := Parse(m.String()); err != nil {
		t.Fatalf("merged program does not reparse: %v", err)
	}
}

func TestMergeConflictingTables(t *testing.T) {
	a := MustParse(`materialize(t, 120, infinity, keys(2)).`)
	b := MustParse(`materialize(t, 60, infinity, keys(2)).`)
	if _, err := Merge(a, b); err == nil || !strings.Contains(err.Error(), "declared as") {
		t.Fatalf("conflicting tables must fail: %v", err)
	}
	c := MustParse(`materialize(t, 120, 10, keys(2)).`)
	if _, err := Merge(a, c); err == nil {
		t.Fatal("size conflict must fail")
	}
	d := MustParse(`materialize(t, 120, infinity, keys(1)).`)
	if _, err := Merge(a, d); err == nil {
		t.Fatal("key conflict must fail")
	}
}

func TestMergeConflictingDefines(t *testing.T) {
	a := MustParse(`define(k, 1).`)
	b := MustParse(`define(k, 2).`)
	if _, err := Merge(a, b); err == nil || !strings.Contains(err.Error(), "defined as") {
		t.Fatalf("conflicting defines must fail: %v", err)
	}
}

func TestMergeEmptyAndSingle(t *testing.T) {
	m, err := Merge()
	if err != nil || m.RuleCount() != 0 {
		t.Fatal("empty merge should be empty")
	}
	a := MustParse(`r x@X(X) :- e@X(X).`)
	m, err = Merge(a)
	if err != nil || m.RuleCount() != 1 {
		t.Fatal("single merge should pass through")
	}
}
