package overlog

import (
	"strings"
	"testing"
)

func parse(t *testing.T, src string) *Program {
	t.Helper()
	p, err := Parse(src)
	if err != nil {
		t.Fatalf("parse failed: %v\nsource:\n%s", err, src)
	}
	return p
}

func TestMaterialize(t *testing.T) {
	p := parse(t, `
		materialize(neighbor, 120, infinity, keys(2)).
		materialize(sequence, infinity, 1, keys(2)).
		materialize(finger, 180, 160, keys(2,3)).
	`)
	if len(p.Materialize) != 3 {
		t.Fatalf("decls = %d", len(p.Materialize))
	}
	nb := p.TableDecl("neighbor")
	if nb.Lifetime != 120 || nb.Infinite || nb.Size != 0 || len(nb.Keys) != 1 || nb.Keys[0] != 2 {
		t.Fatalf("neighbor = %+v", nb)
	}
	seq := p.TableDecl("sequence")
	if !seq.Infinite || seq.Size != 1 {
		t.Fatalf("sequence = %+v", seq)
	}
	fg := p.TableDecl("finger")
	if fg.Size != 160 || len(fg.Keys) != 2 || fg.Keys[1] != 3 {
		t.Fatalf("finger = %+v", fg)
	}
	if p.TableDecl("nope") != nil {
		t.Fatal("missing decl should be nil")
	}
}

func TestSimpleRule(t *testing.T) {
	p := parse(t, `R1 refreshEvent(X) :- periodic(X, E, 3).`)
	if len(p.Rules) != 1 {
		t.Fatalf("rules = %d", len(p.Rules))
	}
	r := p.Rules[0]
	if r.ID != "R1" || r.Delete || r.Head.Name != "refreshEvent" {
		t.Fatalf("rule = %+v", r)
	}
	if len(r.Body) != 1 {
		t.Fatalf("body = %v", r.Body)
	}
	atom, ok := r.Body[0].(*Atom)
	if !ok || atom.Name != "periodic" || len(atom.Args) != 3 {
		t.Fatalf("body atom = %v", r.Body[0])
	}
	if lit, ok := atom.Args[2].(*Lit); !ok || lit.Val.AsInt() != 3 {
		t.Fatalf("period arg = %v", atom.Args[2])
	}
}

func TestRuleWithoutID(t *testing.T) {
	p := parse(t, `out(X) :- in(X).`)
	if len(p.Rules) != 1 || p.Rules[0].ID != "" {
		t.Fatalf("rules = %+v", p.Rules)
	}
}

func TestLocationSpecifiers(t *testing.T) {
	p := parse(t, `
		N1 neighbor@Y(Y, X) :- refreshSeq@X(X, S), neighbor@X(X, Y).
	`)
	r := p.Rules[0]
	if r.Head.Loc != "Y" {
		t.Fatalf("head loc = %q", r.Head.Loc)
	}
	b0 := r.Body[0].(*Atom)
	if b0.Loc != "X" {
		t.Fatalf("body loc = %q", b0.Loc)
	}
}

func TestDeleteRule(t *testing.T) {
	p := parse(t, `L3 delete neighbor@X(X, Y) :- deadNeighbor@X(X, Y).`)
	if !p.Rules[0].Delete {
		t.Fatal("delete flag missing")
	}
}

func TestAssignmentsAndConditions(t *testing.T) {
	p := parse(t, `
		R2 refreshSeq(X, NewSeq) :- refreshEvent(X), sequence(X, Seq),
			NewSeq := Seq + 1.
		L2 deadNeighbor@X(X, Y) :- neighborProbe@X(X), neighbor@X(X, Y),
			member@X(X, Y, _, YT, _), f_now() - YT > 20.
	`)
	r2 := p.Rules[0]
	asg, ok := r2.Body[2].(*Assign)
	if !ok || asg.Var != "NewSeq" {
		t.Fatalf("assign = %v", r2.Body[2])
	}
	bin, ok := asg.Expr.(*Binary)
	if !ok || bin.Op != "+" {
		t.Fatalf("assign expr = %v", asg.Expr)
	}
	l2 := p.Rules[1]
	cond, ok := l2.Body[3].(*Cond)
	if !ok {
		t.Fatalf("cond = %v", l2.Body[3])
	}
	cmp, ok := cond.Expr.(*Binary)
	if !ok || cmp.Op != ">" {
		t.Fatalf("cond expr = %v", cond.Expr)
	}
	sub := cmp.X.(*Binary)
	if sub.Op != "-" {
		t.Fatalf("lhs = %v", cmp.X)
	}
	if call, ok := sub.X.(*Call); !ok || call.Name != "f_now" {
		t.Fatalf("call = %v", sub.X)
	}
	// Wildcards parse in atom args.
	mem := l2.Body[2].(*Atom)
	if _, ok := mem.Args[2].(*Wildcard); !ok {
		t.Fatalf("wildcard = %v", mem.Args[2])
	}
}

func TestAggregatesInHead(t *testing.T) {
	p := parse(t, `
		L2 bestLookupDist@NI(NI,K,R,E,min<D>) :- node@NI(NI,N),
			lookup@NI(NI,K,R,E), finger@NI(NI,I,B,BI), D := K - B - 1,
			B in (N,K).
		P0 pingEvent@X(X, Y, E, max<R>) :- periodic@X(X, E, 2),
			member@X(X, Y, _, _, _), R := f_rand().
		S1 succCount(NI,count<*>) :- succ(NI,S,SI).
	`)
	agg := p.Rules[0].Head.Args[4].(*AggRef)
	if agg.Fn != "min" || agg.Var != "D" {
		t.Fatalf("agg = %+v", agg)
	}
	agg2 := p.Rules[1].Head.Args[3].(*AggRef)
	if agg2.Fn != "max" || agg2.Var != "R" {
		t.Fatalf("agg2 = %+v", agg2)
	}
	agg3 := p.Rules[2].Head.Args[1].(*AggRef)
	if agg3.Fn != "count" || agg3.Var != "*" {
		t.Fatalf("agg3 = %+v", agg3)
	}
}

func TestAggregateInLocationPosition(t *testing.T) {
	// L3's head sends to the aggregated address: lookup@BI(min<BI>,K,R,E)
	p := parse(t, `L3 lookup@BI(min<BI>,K,R,E) :- node@NI(NI,N), finger@NI(NI,I,B,BI).`)
	agg := p.Rules[0].Head.Args[0].(*AggRef)
	if agg.Fn != "min" || agg.Var != "BI" {
		t.Fatalf("agg = %+v", agg)
	}
	if p.Rules[0].Head.Loc != "BI" {
		t.Fatalf("loc = %q", p.Rules[0].Head.Loc)
	}
}

func TestRangeIntervals(t *testing.T) {
	p := parse(t, `
		L1 lookupResults@R(R,K,S,SI,E) :- node@NI(NI,N), lookup@NI(NI,K,R,E),
			bestSucc@NI(NI,S,SI), K in (N,S].
		X1 out(A) :- in(A, B, C), A in [B, C).
		X2 out(A) :- in(A, B, C), A in [B, C].
	`)
	rt := p.Rules[0].Body[3].(*Cond).Expr.(*RangeTest)
	if rt.LoClosed || !rt.HiClosed {
		t.Fatalf("interval (N,S] wrong: %+v", rt)
	}
	rt2 := p.Rules[1].Body[1].(*Cond).Expr.(*RangeTest)
	if !rt2.LoClosed || rt2.HiClosed {
		t.Fatalf("interval [B,C) wrong: %+v", rt2)
	}
	rt3 := p.Rules[2].Body[1].(*Cond).Expr.(*RangeTest)
	if !rt3.LoClosed || !rt3.HiClosed {
		t.Fatalf("interval [B,C] wrong: %+v", rt3)
	}
}

func TestShiftBindsTighterThanPlus(t *testing.T) {
	// K := N + 1 << I must parse as N + (1 << I) — the Chord finger
	// target (see package comment).
	p := parse(t, `F2 lookup@NI(NI,K,NI,E) :- fFix@NI(NI,E,I), node@NI(NI,N), K := N + 1 << I.`)
	asg := p.Rules[0].Body[2].(*Assign)
	add, ok := asg.Expr.(*Binary)
	if !ok || add.Op != "+" {
		t.Fatalf("top op = %v", asg.Expr)
	}
	shift, ok := add.Y.(*Binary)
	if !ok || shift.Op != "<<" {
		t.Fatalf("rhs = %v", add.Y)
	}
	// And the appendix form: K := 1 << I + N parses as (1<<I) + N.
	p2 := parse(t, `F6 x(K) :- y(I, N), K := 1 << I + N.`)
	asg2 := p2.Rules[0].Body[1].(*Assign)
	add2 := asg2.Expr.(*Binary)
	if add2.Op != "+" {
		t.Fatalf("top2 = %v", asg2.Expr)
	}
	if sh, ok := add2.X.(*Binary); !ok || sh.Op != "<<" {
		t.Fatalf("lhs2 = %v", add2.X)
	}
}

func TestBooleanConditions(t *testing.T) {
	p := parse(t, `
		F8 nextFingerFix@NI(NI,0) :- eagerFinger@NI(NI,I,B,BI),
			((I == 159) || (BI == NI)).
		SB8 pred@NI(NI,P,PI) :- notify@NI(NI,P,PI), pred@NI(NI,P1,PI1),
			((PI1 == "-") || (P in (P1,N))).
	`)
	or := p.Rules[0].Body[1].(*Cond).Expr.(*Binary)
	if or.Op != "||" {
		t.Fatalf("or = %v", or)
	}
	or2 := p.Rules[1].Body[2].(*Cond).Expr.(*Binary)
	if or2.Op != "||" {
		t.Fatalf("or2 = %v", or2)
	}
	if _, ok := or2.Y.(*RangeTest); !ok {
		t.Fatalf("nested range test = %v", or2.Y)
	}
}

func TestNegationAndFunctions(t *testing.T) {
	p := parse(t, `
		R4 member@Y(Y, A, S, T, L) :- refreshSeq@X(X, S2), member@X(X, A, S, _, L),
			neighbor@X(X, Y), not member@Y(Y, A, _, _, _), T := f_now@Y().
		F1 fFix@NI(NI,E,I) :- periodic@NI(NI,E,10), f_coinFlip(0.5).
	`)
	neg := p.Rules[0].Body[3].(*Atom)
	if !neg.Neg || neg.Name != "member" || neg.Loc != "Y" {
		t.Fatalf("negated atom = %+v", neg)
	}
	asg := p.Rules[0].Body[4].(*Assign)
	call := asg.Expr.(*Call)
	if call.Name != "f_now" || call.Loc != "Y" {
		t.Fatalf("located call = %+v", call)
	}
	flip := p.Rules[1].Body[1].(*Cond).Expr.(*Call)
	if flip.Name != "f_coinFlip" || len(flip.Args) != 1 {
		t.Fatalf("coinflip = %+v", flip)
	}
}

func TestFacts(t *testing.T) {
	p := parse(t, `
		F0 nextFingerFix@NI(NI, 0).
		SB0 pred@NI(NI,"-","-").
		landmark(X, "n0:1").
	`)
	if len(p.Facts) != 3 {
		t.Fatalf("facts = %d", len(p.Facts))
	}
	if p.Facts[0].ID != "F0" || p.Facts[0].Atom.Name != "nextFingerFix" {
		t.Fatalf("fact0 = %+v", p.Facts[0])
	}
	if lit, ok := p.Facts[1].Atom.Args[1].(*Lit); !ok || lit.Val.AsStr() != "-" {
		t.Fatalf("fact1 arg = %v", p.Facts[1].Atom.Args[1])
	}
	if p.Facts[2].ID != "" {
		t.Fatalf("fact2 should have no ID: %+v", p.Facts[2])
	}
}

func TestDefineAndWatch(t *testing.T) {
	p := parse(t, `
		define(tFix, 10).
		define(addThresh, 0.25).
		define(landmarkAddr, "n0:1").
		define(debug, true).
		define(offset, -5).
		watch(lookup).
	`)
	if len(p.Defines) != 5 {
		t.Fatalf("defines = %d", len(p.Defines))
	}
	if p.Defines[0].Value.AsInt() != 10 {
		t.Fatal("tFix wrong")
	}
	if p.Defines[1].Value.AsFloat() != 0.25 {
		t.Fatal("addThresh wrong")
	}
	if p.Defines[2].Value.AsStr() != "n0:1" {
		t.Fatal("landmarkAddr wrong")
	}
	if !p.Defines[3].Value.AsBool() {
		t.Fatal("debug wrong")
	}
	if p.Defines[4].Value.AsInt() != -5 {
		t.Fatal("offset wrong")
	}
	if len(p.Watches) != 1 || p.Watches[0] != "lookup" {
		t.Fatalf("watches = %v", p.Watches)
	}
}

func TestConstRefs(t *testing.T) {
	p := parse(t, `F1 fFix@NI(NI,E,I) :- periodic@NI(NI,E,tFix), nextFingerFix@NI(NI,I).`)
	atom := p.Rules[0].Body[0].(*Atom)
	if c, ok := atom.Args[2].(*ConstRef); !ok || c.Name != "tFix" {
		t.Fatalf("const ref = %v", atom.Args[2])
	}
}

func TestComments(t *testing.T) {
	p := parse(t, `
		/* block comment
		   spanning lines */
		// line comment
		# hash comment
		materialize(t, 10, 10, keys(1)). // trailing
	`)
	if len(p.Materialize) != 1 {
		t.Fatal("comments broke parsing")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		`materialize(t, bogus, 10, keys(1)).`,
		`materialize(t, 10, bogus, keys(1)).`,
		`materialize(t, 10, 10, nokeys(1)).`,
		`materialize(t, 10, 10, keys(0)).`, // 1-based
		`rule(X) :- .`,
		`rule(X) :- body(X)`, // missing period
		`rule(X :- body(X).`, // bad paren
		`delete fact(X).`,    // delete on a fact
		`r out(X) :- in(X), K in {A, B}.`,
		`r out(X) :- in(X), K in (A, B!.`,
		`watch().`,
		`define(x).`,
		`define(x, -"s").`,
		`"stray string"`,
		`r out(min<3>) :- in(X).`,
		`/* unterminated`,
		`r out(X) :- in(X), Y := "unterminated.`,
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("expected error for %q", src)
		}
	}
}

func TestErrorsCarryPosition(t *testing.T) {
	_, err := Parse("\n\n  bogus !! here.")
	if err == nil {
		t.Fatal("expected error")
	}
	perr, ok := err.(*Error)
	if !ok {
		t.Fatalf("error type %T", err)
	}
	if perr.Line != 3 {
		t.Fatalf("line = %d, want 3", perr.Line)
	}
	if !strings.Contains(perr.Error(), "line 3") {
		t.Fatalf("message %q", perr.Error())
	}
}

func TestPrintReparseRoundTrip(t *testing.T) {
	src := `
		materialize(member, 120, infinity, keys(2)).
		materialize(sequence, infinity, 1, keys(2)).
		define(tFix, 10).
		watch(lookup).
		F0 nextFingerFix@NI(NI, 0).
		R1 refreshEvent@X(X) :- periodic@X(X, E, 3).
		R2 refreshSeq@X(X, NewS) :- refreshEvent@X(X), sequence@X(X, S), NewS := S + 1.
		L1 lookupResults@R(R,K,S,SI,E) :- node@NI(NI,N), lookup@NI(NI,K,R,E),
			bestSucc@NI(NI,S,SI), K in (N,S].
		L2 bestLookupDist@NI(NI,K,R,E,min<D>) :- node@NI(NI,N), lookup@NI(NI,K,R,E),
			finger@NI(NI,I,B,BI), D := K - B - 1, B in (N,K).
		L3 delete fFix@NI(NI,E) :- done@NI(NI,E), ((E == "x") || (E == "y")).
		N4 out@X(X, T, F) :- in@X(X), not seen@X(X), T := f_now(), F := f_coinFlip(0.5).
	`
	p1 := parse(t, src)
	printed := p1.String()
	p2, err := Parse(printed)
	if err != nil {
		t.Fatalf("reparse failed: %v\nprinted:\n%s", err, printed)
	}
	if p2.String() != printed {
		t.Fatalf("round trip unstable:\n--- first\n%s\n--- second\n%s", printed, p2.String())
	}
	if p2.RuleCount() != p1.RuleCount() || len(p2.Facts) != len(p1.Facts) {
		t.Fatal("round trip lost statements")
	}
}

func TestNaradaAppendixParses(t *testing.T) {
	// The mesh-maintenance portion of Appendix A, with the negation
	// rewrite the paper itself applies, parses cleanly.
	src := `
		materialize(member, infinity, infinity, keys(2)).
		materialize(sequence, infinity, 1, keys(2)).
		materialize(neighbor, infinity, infinity, keys(2)).
		E0 neighbor@X(X,Y) :- periodic@X(X,E,0,1), env@X(X, H, Y), H == "neighbor".
		S0 sequence@X(X, Sequence) :- periodic@X(X, E, 0, 1), Sequence := 0.
		R1 refreshEvent@X(X) :- periodic@X(X, E, 3).
		R2 refreshSequence@X(X, NewSequence) :- refreshEvent@X(X),
			sequence@X(X, Sequence), NewSequence := Sequence + 1.
		R3 sequence@X(X, NewSequence) :- refreshSequence@X(X, NewSequence).
		R4 refresh@Y(Y, X, NewSequence, Address, ASequence, ALive) :-
			refreshSequence@X(X, NewSequence), member@X(X, Address, ASequence, Time, ALive),
			neighbor@X(X, Y).
		R5 membersFound@X(X, Address, ASeq, ALive, count<*>) :-
			refresh@X(X, Y, YSeq, Address, ASeq, ALive),
			member@X(X, Address, MySeq, MyTime, MyLive), X != Address.
		R6 member@X(X, Address, ASequence, T, ALive) :-
			membersFound@X(X, Address, ASequence, ALive, C), C == 0, T := f_now().
		R7 member@X(X, Address, ASequence, T, ALive) :-
			membersFound@X(X, Address, ASequence, ALive, C), C > 0, T := f_now(),
			member@X(X, Address, MySequence, MyT, MyLive), MySequence < ASequence.
		R8 member@X(X, Y, YSeq, T, YLive) :- refresh@X(X, Y, YSeq, A, AS, AL),
			T := f_now(), YLive := 1.
		N1 neighbor@X(X, Y) :- refresh@X(X, Y, YS, A, AS, L).
		L1 neighborProbe@X(X) :- periodic@X(X, E, 1).
		L2 deadNeighbor@X(X, Y) :- neighborProbe@X(X), T := f_now(),
			neighbor@X(X, Y), member@X(X, Y, YS, YT, L), T - YT > 20.
		L3 delete neighbor@X(X, Y) :- deadNeighbor@X(X, Y).
		L4 member@X(X, Neighbor, DeadSequence, T, Live) :- deadNeighbor@X(X, Neighbor),
			member@X(X, Neighbor, S, T1, L), Live := 0, DeadSequence := S + 1, T := f_now().
	`
	p := parse(t, src)
	// Appendix A as printed contains 15 mesh-maintenance rules; the
	// paper's "16 rules" count for §2.3 includes the ping rules P0-P3
	// and utility rules U1-U2 presented inline. Our full shipped
	// narada.olg (internal/overlays) carries all of them.
	if p.RuleCount() != 15 {
		t.Fatalf("Narada mesh rules = %d, want 15", p.RuleCount())
	}
}

func BenchmarkParseChordLookupRules(b *testing.B) {
	src := `
		L1 lookupResults@R(R,K,S,SI,E) :- node@NI(NI,N), lookup@NI(NI,K,R,E),
			bestSucc@NI(NI,S,SI), K in (N,S].
		L2 bestLookupDist@NI(NI,K,R,E,min<D>) :- node@NI(NI,N), lookup@NI(NI,K,R,E),
			finger@NI(NI,I,B,BI), D := K - B - 1, B in (N,K).
		L3 lookup@BI(min<BI>,K,R,E) :- node@NI(NI,N), bestLookupDist@NI(NI,K,R,E,D),
			finger@NI(NI,I,B,BI), D == K - B - 1, B in (N,K).
	`
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Parse(src); err != nil {
			b.Fatal(err)
		}
	}
}
