package overlog

import (
	"fmt"
	"strings"

	"p2/internal/val"
)

// Program is a parsed OverLog specification.
type Program struct {
	Materialize []*Materialize
	Defines     []*Define
	Watches     []string
	Rules       []*Rule
	Facts       []*Fact
}

// Materialize declares a soft-state table: name, tuple lifetime in
// seconds (Infinite for "infinity"), maximum row count (0 for
// "infinity"), and 1-based primary key field positions.
type Materialize struct {
	Name     string
	Lifetime float64
	Infinite bool // lifetime was the literal "infinity"
	Size     int  // 0 = unbounded
	Keys     []int
}

// Define binds a symbolic constant (e.g. tFix, addThresh) to a literal
// value. Constants may also be supplied programmatically at plan time.
type Define struct {
	Name  string
	Value val.Value
}

// Rule is one OverLog rule: head :- body.
type Rule struct {
	ID     string
	Delete bool
	Head   *Atom
	Body   []Term
	Line   int
}

// Fact is a body-less statement inserting one tuple at node start.
// Variables in fact arguments denote the local node's address.
type Fact struct {
	ID   string
	Atom *Atom
	Line int
}

// Term is a rule-body element: an Atom (predicate, possibly negated),
// an Assign (Var := expr), or a Cond (boolean expression).
type Term interface {
	term()
	String() string
}

// Atom is a predicate: name@Loc(args...).
type Atom struct {
	Name string
	Loc  string // location variable name; "" when unspecified
	Args []Expr
	Neg  bool // "not" prefix
}

// Assign binds a new variable to an expression value.
type Assign struct {
	Var  string
	Expr Expr
}

// Cond is a boolean filter expression.
type Cond struct {
	Expr Expr
}

func (*Atom) term()   {}
func (*Assign) term() {}
func (*Cond) term()   {}

// Expr is an OverLog expression node.
type Expr interface {
	expr()
	String() string
}

// VarRef references a variable.
type VarRef struct{ Name string }

// Wildcard is the don't-care argument "_".
type Wildcard struct{}

// Lit is a literal constant value.
type Lit struct{ Val val.Value }

// ConstRef references a symbolic constant to be resolved from defines.
type ConstRef struct{ Name string }

// Call invokes a built-in function: f_now(), f_rand(), f_coinFlip(p),
// f_sha1(x), f_localAddr(). The optional Loc annotation (f_now@Y())
// is parsed and retained but must match the rule's location.
type Call struct {
	Name string
	Loc  string
	Args []Expr
}

// Unary applies a prefix operator: "-" or "!".
type Unary struct {
	Op string
	X  Expr
}

// Binary applies an infix operator.
type Binary struct {
	Op   string
	X, Y Expr
}

// RangeTest is circular-interval membership: K in (Lo, Hi].
type RangeTest struct {
	K, Lo, Hi          Expr
	LoClosed, HiClosed bool
}

// AggRef is an aggregate in a rule head: min<D>, count<*>, ...
type AggRef struct {
	Fn  string // min, max, count, sum, avg
	Var string // variable name, or "*" for count<*>
}

func (*VarRef) expr()    {}
func (*Wildcard) expr()  {}
func (*Lit) expr()       {}
func (*ConstRef) expr()  {}
func (*Call) expr()      {}
func (*Unary) expr()     {}
func (*Binary) expr()    {}
func (*RangeTest) expr() {}
func (*AggRef) expr()    {}

// String renderings reproduce parseable OverLog, used by tests
// (print→reparse round trips) and the olgc inspector.

func (v *VarRef) String() string   { return v.Name }
func (*Wildcard) String() string   { return "_" }
func (c *ConstRef) String() string { return c.Name }

func (l *Lit) String() string {
	if l.Val.Kind() == val.KStr {
		return fmt.Sprintf("%q", l.Val.AsStr())
	}
	return l.Val.String()
}

func (c *Call) String() string {
	args := make([]string, len(c.Args))
	for i, a := range c.Args {
		args[i] = a.String()
	}
	loc := ""
	if c.Loc != "" {
		loc = "@" + c.Loc
	}
	return fmt.Sprintf("%s%s(%s)", c.Name, loc, strings.Join(args, ", "))
}

func (u *Unary) String() string { return u.Op + u.X.String() }

func (b *Binary) String() string {
	return fmt.Sprintf("(%s %s %s)", b.X.String(), b.Op, b.Y.String())
}

func (r *RangeTest) String() string {
	lo, hi := "(", ")"
	if r.LoClosed {
		lo = "["
	}
	if r.HiClosed {
		hi = "]"
	}
	return fmt.Sprintf("%s in %s%s, %s%s", r.K.String(), lo, r.Lo.String(), r.Hi.String(), hi)
}

func (a *AggRef) String() string { return fmt.Sprintf("%s<%s>", a.Fn, a.Var) }

func (a *Atom) String() string {
	args := make([]string, len(a.Args))
	for i, arg := range a.Args {
		args[i] = arg.String()
	}
	loc := ""
	if a.Loc != "" {
		loc = "@" + a.Loc
	}
	neg := ""
	if a.Neg {
		neg = "not "
	}
	return fmt.Sprintf("%s%s%s(%s)", neg, a.Name, loc, strings.Join(args, ", "))
}

func (a *Assign) String() string { return fmt.Sprintf("%s := %s", a.Var, a.Expr.String()) }
func (c *Cond) String() string   { return c.Expr.String() }

func (r *Rule) String() string {
	var sb strings.Builder
	if r.ID != "" {
		sb.WriteString(r.ID)
		sb.WriteByte(' ')
	}
	if r.Delete {
		sb.WriteString("delete ")
	}
	sb.WriteString(r.Head.String())
	sb.WriteString(" :- ")
	terms := make([]string, len(r.Body))
	for i, t := range r.Body {
		terms[i] = t.String()
	}
	sb.WriteString(strings.Join(terms, ", "))
	sb.WriteByte('.')
	return sb.String()
}

func (f *Fact) String() string {
	if f.ID != "" {
		return f.ID + " " + f.Atom.String() + "."
	}
	return f.Atom.String() + "."
}

func (m *Materialize) String() string {
	life := "infinity"
	if !m.Infinite {
		life = fmt.Sprintf("%g", m.Lifetime)
	}
	size := "infinity"
	if m.Size > 0 {
		size = fmt.Sprintf("%d", m.Size)
	}
	keys := make([]string, len(m.Keys))
	for i, k := range m.Keys {
		keys[i] = fmt.Sprintf("%d", k)
	}
	return fmt.Sprintf("materialize(%s, %s, %s, keys(%s)).",
		m.Name, life, size, strings.Join(keys, ","))
}

// String renders the whole program as parseable OverLog.
func (p *Program) String() string {
	var sb strings.Builder
	for _, m := range p.Materialize {
		sb.WriteString(m.String())
		sb.WriteByte('\n')
	}
	for _, d := range p.Defines {
		v := d.Value.String()
		if d.Value.Kind() == val.KStr {
			v = fmt.Sprintf("%q", d.Value.AsStr())
		}
		fmt.Fprintf(&sb, "define(%s, %s).\n", d.Name, v)
	}
	for _, w := range p.Watches {
		fmt.Fprintf(&sb, "watch(%s).\n", w)
	}
	for _, f := range p.Facts {
		sb.WriteString(f.String())
		sb.WriteByte('\n')
	}
	for _, r := range p.Rules {
		sb.WriteString(r.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}

// TableDecl returns the materialize declaration for name, or nil.
func (p *Program) TableDecl(name string) *Materialize {
	for _, m := range p.Materialize {
		if m.Name == name {
			return m
		}
	}
	return nil
}

// RuleCount returns the number of rules — the paper's specification
// complexity metric (Chord in 47 rules, Narada in 16).
func (p *Program) RuleCount() int { return len(p.Rules) }
