package overlog

import (
	"strings"
	"testing"

	"p2/internal/val"
)

// The marker methods exist to seal the Term/Expr interfaces; exercise
// them so interface conformance stays checked.
func TestInterfaceMarkers(t *testing.T) {
	terms := []Term{&Atom{}, &Assign{}, &Cond{}}
	for _, trm := range terms {
		trm.term()
	}
	exprs := []Expr{
		&VarRef{}, &Wildcard{}, &Lit{}, &ConstRef{}, &Call{},
		&Unary{}, &Binary{}, &RangeTest{}, &AggRef{},
	}
	for _, e := range exprs {
		e.expr()
	}
}

func TestExprStringRendering(t *testing.T) {
	cases := []struct {
		e    Expr
		want string
	}{
		{&VarRef{Name: "X"}, "X"},
		{&Wildcard{}, "_"},
		{&ConstRef{Name: "tFix"}, "tFix"},
		{&Lit{Val: val.Str("hi")}, `"hi"`},
		{&Lit{Val: val.Int(5)}, "5"},
		{&Unary{Op: "-", X: &VarRef{Name: "V"}}, "-V"},
		{&Binary{Op: "+", X: &VarRef{Name: "A"}, Y: &Lit{Val: val.Int(1)}}, "(A + 1)"},
		{&Call{Name: "f_now"}, "f_now()"},
		{&Call{Name: "f_now", Loc: "Y"}, "f_now@Y()"},
		{&Call{Name: "f_coinFlip", Args: []Expr{&Lit{Val: val.Float(0.5)}}}, "f_coinFlip(0.5)"},
		{&AggRef{Fn: "min", Var: "D"}, "min<D>"},
		{&AggRef{Fn: "count", Var: "*"}, "count<*>"},
		{&RangeTest{
			K: &VarRef{Name: "K"}, Lo: &VarRef{Name: "N"}, Hi: &VarRef{Name: "S"},
			HiClosed: true,
		}, "K in (N, S]"},
		{&RangeTest{
			K: &VarRef{Name: "K"}, Lo: &VarRef{Name: "N"}, Hi: &VarRef{Name: "S"},
			LoClosed: true,
		}, "K in [N, S)"},
	}
	for _, c := range cases {
		if got := c.e.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestTermAndStatementRendering(t *testing.T) {
	atom := &Atom{Name: "member", Loc: "X", Args: []Expr{&VarRef{Name: "X"}, &Wildcard{}}}
	if got := atom.String(); got != "member@X(X, _)" {
		t.Errorf("atom = %q", got)
	}
	neg := &Atom{Name: "seen", Neg: true, Args: []Expr{&VarRef{Name: "X"}}}
	if got := neg.String(); got != "not seen(X)" {
		t.Errorf("negated atom = %q", got)
	}
	asg := &Assign{Var: "T", Expr: &Call{Name: "f_now"}}
	if got := asg.String(); got != "T := f_now()" {
		t.Errorf("assign = %q", got)
	}
	cond := &Cond{Expr: &Binary{Op: ">", X: &VarRef{Name: "C"}, Y: &Lit{Val: val.Int(4)}}}
	if got := cond.String(); got != "(C > 4)" {
		t.Errorf("cond = %q", got)
	}
	fact := &Fact{ID: "F0", Atom: &Atom{Name: "pred", Args: []Expr{&VarRef{Name: "NI"}}}}
	if got := fact.String(); got != "F0 pred(NI)." {
		t.Errorf("fact = %q", got)
	}
	rule := &Rule{
		ID: "L3", Delete: true,
		Head: &Atom{Name: "neighbor", Loc: "X", Args: []Expr{&VarRef{Name: "X"}}},
		Body: []Term{&Atom{Name: "dead", Args: []Expr{&VarRef{Name: "X"}}}},
	}
	if got := rule.String(); got != "L3 delete neighbor@X(X) :- dead(X)." {
		t.Errorf("rule = %q", got)
	}
}

func TestMaterializeRendering(t *testing.T) {
	m := &Materialize{Name: "succ", Lifetime: 30, Size: 16, Keys: []int{2}}
	if got := m.String(); got != "materialize(succ, 30, 16, keys(2))." {
		t.Errorf("materialize = %q", got)
	}
	inf := &Materialize{Name: "node", Infinite: true, Size: 0, Keys: []int{1}}
	if got := inf.String(); got != "materialize(node, infinity, infinity, keys(1))." {
		t.Errorf("materialize = %q", got)
	}
}

func TestMustParse(t *testing.T) {
	p := MustParse(`r out@X(X) :- in@X(X).`)
	if p.RuleCount() != 1 {
		t.Fatal("MustParse lost the rule")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustParse should panic on bad input")
		}
	}()
	MustParse(`!!`)
}

func TestProgramStringIncludesDefinesAndWatches(t *testing.T) {
	p := MustParse(`
		define(tFix, 10).
		define(name, "x").
		watch(lookup).
	`)
	s := p.String()
	for _, want := range []string{"define(tFix, 10).", `define(name, "x").`, "watch(lookup)."} {
		if !strings.Contains(s, want) {
			t.Errorf("program dump missing %q:\n%s", want, s)
		}
	}
}
