package overlog

import (
	"fmt"
	"strconv"

	"p2/internal/val"
)

// Parse turns OverLog source into a Program.
func Parse(src string) (*Program, error) {
	p := &parser{lex: newLexer(src)}
	if err := p.advance(); err != nil {
		return nil, err
	}
	prog := &Program{}
	for p.cur.kind != tokEOF {
		if err := p.statement(prog); err != nil {
			return nil, err
		}
	}
	return prog, nil
}

// MustParse parses or panics — for embedding known-good specs.
func MustParse(src string) *Program {
	prog, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return prog
}

type parser struct {
	lex *lexer
	cur token
}

func (p *parser) advance() error {
	t, err := p.lex.next()
	if err != nil {
		return err
	}
	p.cur = t
	return nil
}

func (p *parser) errf(format string, args ...any) error {
	return &Error{Line: p.cur.line, Col: p.cur.col, Msg: fmt.Sprintf(format, args...)}
}

// expect consumes a token of the given kind or fails.
func (p *parser) expect(k tokKind) (token, error) {
	if p.cur.kind != k {
		return token{}, p.errf("expected %v, found %v %q", k, p.cur.kind, p.cur.text)
	}
	t := p.cur
	if err := p.advance(); err != nil {
		return token{}, err
	}
	return t, nil
}

// accept consumes the token if it matches, reporting whether it did.
func (p *parser) accept(k tokKind) (bool, error) {
	if p.cur.kind != k {
		return false, nil
	}
	return true, p.advance()
}

func (p *parser) statement(prog *Program) error {
	if p.cur.kind != tokIdent && p.cur.kind != tokVar {
		return p.errf("expected statement, found %v %q", p.cur.kind, p.cur.text)
	}
	switch p.cur.text {
	case "materialize":
		return p.materialize(prog)
	case "define":
		return p.define(prog)
	case "watch":
		return p.watch(prog)
	}
	return p.ruleOrFact(prog)
}

func (p *parser) materialize(prog *Program) error {
	line := p.cur.line
	_ = line
	if err := p.advance(); err != nil {
		return err
	}
	if _, err := p.expect(tokLParen); err != nil {
		return err
	}
	name, err := p.expect(tokIdent)
	if err != nil {
		return err
	}
	if _, err := p.expect(tokComma); err != nil {
		return err
	}
	m := &Materialize{Name: name.text}
	// Lifetime.
	switch {
	case p.cur.kind == tokIdent && p.cur.text == "infinity":
		m.Infinite = true
		if err := p.advance(); err != nil {
			return err
		}
	case p.cur.kind == tokInt || p.cur.kind == tokFloat:
		f, _ := strconv.ParseFloat(p.cur.text, 64)
		m.Lifetime = f
		if err := p.advance(); err != nil {
			return err
		}
	default:
		return p.errf("materialize(%s): bad lifetime %q", m.Name, p.cur.text)
	}
	if _, err := p.expect(tokComma); err != nil {
		return err
	}
	// Size.
	switch {
	case p.cur.kind == tokIdent && p.cur.text == "infinity":
		m.Size = 0
		if err := p.advance(); err != nil {
			return err
		}
	case p.cur.kind == tokInt:
		n, _ := strconv.Atoi(p.cur.text)
		m.Size = n
		if err := p.advance(); err != nil {
			return err
		}
	default:
		return p.errf("materialize(%s): bad size %q", m.Name, p.cur.text)
	}
	if _, err := p.expect(tokComma); err != nil {
		return err
	}
	kw, err := p.expect(tokIdent)
	if err != nil {
		return err
	}
	if kw.text != "keys" {
		return p.errf("materialize(%s): expected keys(...), found %q", m.Name, kw.text)
	}
	if _, err := p.expect(tokLParen); err != nil {
		return err
	}
	for {
		n, err := p.expect(tokInt)
		if err != nil {
			return err
		}
		k, _ := strconv.Atoi(n.text)
		if k < 1 {
			return p.errf("materialize(%s): key positions are 1-based", m.Name)
		}
		m.Keys = append(m.Keys, k)
		ok, err := p.accept(tokComma)
		if err != nil {
			return err
		}
		if !ok {
			break
		}
	}
	if _, err := p.expect(tokRParen); err != nil {
		return err
	}
	if _, err := p.expect(tokRParen); err != nil {
		return err
	}
	if _, err := p.expect(tokPeriod); err != nil {
		return err
	}
	prog.Materialize = append(prog.Materialize, m)
	return nil
}

func (p *parser) define(prog *Program) error {
	if err := p.advance(); err != nil {
		return err
	}
	if _, err := p.expect(tokLParen); err != nil {
		return err
	}
	name, err := p.expect(tokIdent)
	if err != nil {
		return err
	}
	if _, err := p.expect(tokComma); err != nil {
		return err
	}
	v, err := p.literal()
	if err != nil {
		return err
	}
	if _, err := p.expect(tokRParen); err != nil {
		return err
	}
	if _, err := p.expect(tokPeriod); err != nil {
		return err
	}
	prog.Defines = append(prog.Defines, &Define{Name: name.text, Value: v})
	return nil
}

// literal parses a constant value for define(): number, string, bool,
// or negative number.
func (p *parser) literal() (val.Value, error) {
	neg := false
	if ok, err := p.accept(tokMinus); err != nil {
		return val.Null, err
	} else if ok {
		neg = true
	}
	switch p.cur.kind {
	case tokInt:
		n, _ := strconv.ParseInt(p.cur.text, 10, 64)
		if neg {
			n = -n
		}
		err := p.advance()
		return val.Int(n), err
	case tokFloat:
		f, _ := strconv.ParseFloat(p.cur.text, 64)
		if neg {
			f = -f
		}
		err := p.advance()
		return val.Float(f), err
	case tokString:
		if neg {
			return val.Null, p.errf("cannot negate a string")
		}
		s := p.cur.text
		err := p.advance()
		return val.Str(s), err
	case tokIdent:
		if neg {
			return val.Null, p.errf("cannot negate %q", p.cur.text)
		}
		switch p.cur.text {
		case "true":
			return val.Bool(true), p.advance()
		case "false":
			return val.Bool(false), p.advance()
		}
	}
	return val.Null, p.errf("expected literal, found %q", p.cur.text)
}

func (p *parser) watch(prog *Program) error {
	if err := p.advance(); err != nil {
		return err
	}
	if _, err := p.expect(tokLParen); err != nil {
		return err
	}
	name, err := p.expect(tokIdent)
	if err != nil {
		return err
	}
	if _, err := p.expect(tokRParen); err != nil {
		return err
	}
	if _, err := p.expect(tokPeriod); err != nil {
		return err
	}
	prog.Watches = append(prog.Watches, name.text)
	return nil
}

// ruleOrFact parses "[ID] [delete] atom [:- body]."
func (p *parser) ruleOrFact(prog *Program) error {
	line := p.cur.line
	id := ""
	// A leading identifier is a rule ID when the following token starts
	// a head (another identifier or "delete"), not "(" or "@". The word
	// "delete" itself is always the deletion keyword, never an ID.
	if (p.cur.kind == tokIdent || p.cur.kind == tokVar) && p.cur.text != "delete" {
		save := p.cur
		if err := p.advance(); err != nil {
			return err
		}
		if p.cur.kind == tokIdent || p.cur.kind == tokVar {
			id = save.text
		} else {
			// Not an ID: rewind by re-parsing from the atom using the
			// saved head token.
			return p.ruleBody(prog, "", save, line)
		}
	}
	del := false
	if p.cur.kind == tokIdent && p.cur.text == "delete" {
		del = true
		if err := p.advance(); err != nil {
			return err
		}
		if p.cur.kind != tokIdent {
			return p.errf("expected head predicate after delete, found %q", p.cur.text)
		}
	}
	headTok := p.cur
	if headTok.kind != tokIdent {
		return p.errf("expected head predicate, found %q", p.cur.text)
	}
	if err := p.advance(); err != nil {
		return err
	}
	return p.ruleBodyDel(prog, id, headTok, line, del)
}

func (p *parser) ruleBody(prog *Program, id string, headTok token, line int) error {
	return p.ruleBodyDel(prog, id, headTok, line, false)
}

func (p *parser) ruleBodyDel(prog *Program, id string, headTok token, line int, del bool) error {
	head, err := p.atomAfterName(headTok)
	if err != nil {
		return err
	}
	if ok, err := p.accept(tokPeriod); err != nil {
		return err
	} else if ok {
		if del {
			return p.errf("facts cannot be deletions")
		}
		prog.Facts = append(prog.Facts, &Fact{ID: id, Atom: head, Line: line})
		return nil
	}
	if _, err := p.expect(tokIf); err != nil {
		return err
	}
	r := &Rule{ID: id, Delete: del, Head: head, Line: line}
	for {
		t, err := p.term()
		if err != nil {
			return err
		}
		r.Body = append(r.Body, t)
		ok, err := p.accept(tokComma)
		if err != nil {
			return err
		}
		if !ok {
			break
		}
	}
	if _, err := p.expect(tokPeriod); err != nil {
		return err
	}
	prog.Rules = append(prog.Rules, r)
	return nil
}

// atomAfterName parses "@Loc(args)" given the already-consumed name.
func (p *parser) atomAfterName(name token) (*Atom, error) {
	a := &Atom{Name: name.text}
	if ok, err := p.accept(tokAt); err != nil {
		return nil, err
	} else if ok {
		loc, err := p.locName()
		if err != nil {
			return nil, err
		}
		a.Loc = loc
	}
	if _, err := p.expect(tokLParen); err != nil {
		return nil, err
	}
	if ok, err := p.accept(tokRParen); err != nil {
		return nil, err
	} else if ok {
		return a, nil
	}
	for {
		arg, err := p.arg()
		if err != nil {
			return nil, err
		}
		a.Args = append(a.Args, arg)
		ok, err := p.accept(tokComma)
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
	}
	if _, err := p.expect(tokRParen); err != nil {
		return nil, err
	}
	return a, nil
}

// locName accepts a variable or identifier as a location annotation.
// (Facts use lowercase placeholders like landmark@ni; variables are the
// common case.)
func (p *parser) locName() (string, error) {
	if p.cur.kind == tokVar || p.cur.kind == tokIdent {
		name := p.cur.text
		return name, p.advance()
	}
	return "", p.errf("expected location after @, found %q", p.cur.text)
}

// arg parses one atom argument: aggregate, wildcard, or expression.
func (p *parser) arg() (Expr, error) {
	// Aggregate: ident '<' (var | '*') '>' where ident is an agg fn.
	if p.cur.kind == tokIdent && isAggFn(p.cur.text) {
		fn := p.cur.text
		save := *p.lex
		saveTok := p.cur
		if err := p.advance(); err != nil {
			return nil, err
		}
		if p.cur.kind == tokLt {
			if err := p.advance(); err != nil {
				return nil, err
			}
			var varName string
			switch p.cur.kind {
			case tokVar:
				varName = p.cur.text
			case tokStar:
				varName = "*"
			default:
				return nil, p.errf("expected variable or * in %s<>", fn)
			}
			if err := p.advance(); err != nil {
				return nil, err
			}
			if _, err := p.expect(tokGt); err != nil {
				return nil, err
			}
			return &AggRef{Fn: fn, Var: varName}, nil
		}
		// Not an aggregate after all; rewind.
		*p.lex = save
		p.cur = saveTok
	}
	return p.expr()
}

func isAggFn(s string) bool {
	switch s {
	case "min", "max", "count", "sum", "avg":
		return true
	}
	return false
}

// term parses one body term.
func (p *parser) term() (Term, error) {
	// "not" atom
	if p.cur.kind == tokIdent && p.cur.text == "not" {
		if err := p.advance(); err != nil {
			return nil, err
		}
		name, err := p.expect(tokIdent)
		if err != nil {
			return nil, err
		}
		a, err := p.atomAfterName(name)
		if err != nil {
			return nil, err
		}
		a.Neg = true
		return a, nil
	}
	// Var := expr
	if p.cur.kind == tokVar {
		save := *p.lex
		saveTok := p.cur
		name := p.cur.text
		if err := p.advance(); err != nil {
			return nil, err
		}
		if p.cur.kind == tokAssign {
			if err := p.advance(); err != nil {
				return nil, err
			}
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			return &Assign{Var: name, Expr: e}, nil
		}
		// Not an assignment: rewind and parse as expression (condition).
		*p.lex = save
		p.cur = saveTok
	}
	// Predicate: lowercase name followed by '(' or '@' — except
	// function calls (f_*), which are conditions.
	if p.cur.kind == tokIdent && !isFuncName(p.cur.text) {
		save := *p.lex
		saveTok := p.cur
		name := p.cur
		if err := p.advance(); err != nil {
			return nil, err
		}
		if p.cur.kind == tokLParen || p.cur.kind == tokAt {
			return p.atomAfterName(name)
		}
		*p.lex = save
		p.cur = saveTok
	}
	e, err := p.expr()
	if err != nil {
		return nil, err
	}
	return &Cond{Expr: e}, nil
}

func isFuncName(s string) bool {
	return len(s) > 2 && s[0] == 'f' && s[1] == '_'
}

// Expression parsing: precedence climbing.
// Levels (low to high): || ; && ; comparisons and "in" ; + - ; * / % ;
// << >> ; unary ; primary.

func (p *parser) expr() (Expr, error) { return p.orExpr() }

func (p *parser) orExpr() (Expr, error) {
	x, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	for p.cur.kind == tokOr {
		if err := p.advance(); err != nil {
			return nil, err
		}
		y, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		x = &Binary{Op: "||", X: x, Y: y}
	}
	return x, nil
}

func (p *parser) andExpr() (Expr, error) {
	x, err := p.cmpExpr()
	if err != nil {
		return nil, err
	}
	for p.cur.kind == tokAnd {
		if err := p.advance(); err != nil {
			return nil, err
		}
		y, err := p.cmpExpr()
		if err != nil {
			return nil, err
		}
		x = &Binary{Op: "&&", X: x, Y: y}
	}
	return x, nil
}

func (p *parser) cmpExpr() (Expr, error) {
	x, err := p.addExpr()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch p.cur.kind {
		case tokEq:
			op = "=="
		case tokNe:
			op = "!="
		case tokLt:
			op = "<"
		case tokLe:
			op = "<="
		case tokGt:
			op = ">"
		case tokGe:
			op = ">="
		case tokIdent:
			if p.cur.text == "in" {
				return p.rangeTest(x)
			}
			return x, nil
		default:
			return x, nil
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		y, err := p.addExpr()
		if err != nil {
			return nil, err
		}
		x = &Binary{Op: op, X: x, Y: y}
	}
}

// rangeTest parses "in (Lo, Hi]" after K has been parsed.
func (p *parser) rangeTest(k Expr) (Expr, error) {
	if err := p.advance(); err != nil { // consume "in"
		return nil, err
	}
	rt := &RangeTest{K: k}
	switch p.cur.kind {
	case tokLParen:
	case tokLBracket:
		rt.LoClosed = true
	default:
		return nil, p.errf("expected ( or [ after in, found %q", p.cur.text)
	}
	if err := p.advance(); err != nil {
		return nil, err
	}
	lo, err := p.addExpr()
	if err != nil {
		return nil, err
	}
	rt.Lo = lo
	if _, err := p.expect(tokComma); err != nil {
		return nil, err
	}
	hi, err := p.addExpr()
	if err != nil {
		return nil, err
	}
	rt.Hi = hi
	switch p.cur.kind {
	case tokRParen:
	case tokRBracket:
		rt.HiClosed = true
	default:
		return nil, p.errf("expected ) or ] closing interval, found %q", p.cur.text)
	}
	return rt, p.advance()
}

func (p *parser) addExpr() (Expr, error) {
	x, err := p.mulExpr()
	if err != nil {
		return nil, err
	}
	for p.cur.kind == tokPlus || p.cur.kind == tokMinus {
		op := "+"
		if p.cur.kind == tokMinus {
			op = "-"
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		y, err := p.mulExpr()
		if err != nil {
			return nil, err
		}
		x = &Binary{Op: op, X: x, Y: y}
	}
	return x, nil
}

func (p *parser) mulExpr() (Expr, error) {
	x, err := p.shiftExpr()
	if err != nil {
		return nil, err
	}
	for p.cur.kind == tokStar || p.cur.kind == tokSlash || p.cur.kind == tokPct {
		op := map[tokKind]string{tokStar: "*", tokSlash: "/", tokPct: "%"}[p.cur.kind]
		if err := p.advance(); err != nil {
			return nil, err
		}
		y, err := p.shiftExpr()
		if err != nil {
			return nil, err
		}
		x = &Binary{Op: op, X: x, Y: y}
	}
	return x, nil
}

func (p *parser) shiftExpr() (Expr, error) {
	x, err := p.unaryExpr()
	if err != nil {
		return nil, err
	}
	for p.cur.kind == tokShl || p.cur.kind == tokShr {
		op := "<<"
		if p.cur.kind == tokShr {
			op = ">>"
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		y, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		x = &Binary{Op: op, X: x, Y: y}
	}
	return x, nil
}

func (p *parser) unaryExpr() (Expr, error) {
	switch p.cur.kind {
	case tokMinus:
		if err := p.advance(); err != nil {
			return nil, err
		}
		x, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: "-", X: x}, nil
	case tokBang:
		if err := p.advance(); err != nil {
			return nil, err
		}
		x, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: "!", X: x}, nil
	}
	return p.primary()
}

func (p *parser) primary() (Expr, error) {
	switch p.cur.kind {
	case tokInt:
		n, err := strconv.ParseInt(p.cur.text, 10, 64)
		if err != nil {
			return nil, p.errf("bad integer %q", p.cur.text)
		}
		return &Lit{Val: val.Int(n)}, p.advance()
	case tokFloat:
		f, err := strconv.ParseFloat(p.cur.text, 64)
		if err != nil {
			return nil, p.errf("bad float %q", p.cur.text)
		}
		return &Lit{Val: val.Float(f)}, p.advance()
	case tokString:
		s := p.cur.text
		return &Lit{Val: val.Str(s)}, p.advance()
	case tokWildcard:
		return &Wildcard{}, p.advance()
	case tokVar:
		name := p.cur.text
		return &VarRef{Name: name}, p.advance()
	case tokLParen:
		if err := p.advance(); err != nil {
			return nil, err
		}
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		return e, nil
	case tokIdent:
		name := p.cur.text
		switch name {
		case "true":
			return &Lit{Val: val.Bool(true)}, p.advance()
		case "false":
			return &Lit{Val: val.Bool(false)}, p.advance()
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		if isFuncName(name) {
			call := &Call{Name: name}
			if ok, err := p.accept(tokAt); err != nil {
				return nil, err
			} else if ok {
				loc, err := p.locName()
				if err != nil {
					return nil, err
				}
				call.Loc = loc
			}
			if _, err := p.expect(tokLParen); err != nil {
				return nil, err
			}
			if ok, err := p.accept(tokRParen); err != nil {
				return nil, err
			} else if ok {
				return call, nil
			}
			for {
				a, err := p.expr()
				if err != nil {
					return nil, err
				}
				call.Args = append(call.Args, a)
				ok, err := p.accept(tokComma)
				if err != nil {
					return nil, err
				}
				if !ok {
					break
				}
			}
			if _, err := p.expect(tokRParen); err != nil {
				return nil, err
			}
			return call, nil
		}
		// Symbolic constant.
		return &ConstRef{Name: name}, nil
	}
	return nil, p.errf("expected expression, found %v %q", p.cur.kind, p.cur.text)
}
