package harness

import (
	"fmt"
	"testing"

	"p2/internal/simnet"
)

// chordSummary captures every harness metric the paper's figures are
// built from, rendered to exact (bit-comparable) values.
type chordSummary struct {
	events      int
	ring        float64
	lookupBytes int64
	maintBytes  int64
	live        int
	lookups     []string
	placement   map[string]int
}

// runShardedWorkload drives one full measurement pass — staggered
// build, a lookup workload, a churn phase, more lookups — at the given
// shard count and summarizes the metrics. A nil net runs the paper
// topology; otherwise the given one (the WAN determinism test).
func runShardedWorkload(n, shards int, seed int64, spacing float64, churn bool, net *simnet.Config) chordSummary {
	h := NewChord(Opts{N: n, Seed: seed, JoinSpacing: spacing, Shards: shards, Net: net})
	defer h.Close()
	h.Run(float64(n)*spacing + 15)

	h.ResetTraffic()
	for i := 0; i < 20; i++ {
		h.Lookup(h.RandomLiveAddr(), h.RandomKey())
		h.Run(0.75)
	}
	events := h.RunEvents(10)

	if churn {
		h.StartChurn(45)
		h.Run(15)
		h.StopChurn()
		for i := 0; i < 10; i++ {
			h.Lookup(h.RandomLiveAddr(), h.RandomKey())
			h.Run(0.75)
		}
		h.Run(10)
	}

	lb, mb := h.TrafficBytes()
	s := chordSummary{
		events:      events,
		ring:        h.RingCorrectness(),
		lookupBytes: lb,
		maintBytes:  mb,
		live:        len(h.LiveAddrs()),
		placement:   h.PlacementMap(),
	}
	for _, lr := range h.Results {
		s.lookups = append(s.lookups, fmt.Sprintf("%s %s->%s done=%v hops=%d t=%.9f",
			lr.EventID, lr.From, lr.Owner, lr.Done, lr.Hops, lr.Completed))
	}
	return s
}

func diffSummaries(t *testing.T, label string, a, b chordSummary) {
	t.Helper()
	if a.events != b.events {
		t.Errorf("%s: events %d vs %d", label, a.events, b.events)
	}
	if a.ring != b.ring {
		t.Errorf("%s: ring correctness %v vs %v", label, a.ring, b.ring)
	}
	if a.lookupBytes != b.lookupBytes || a.maintBytes != b.maintBytes {
		t.Errorf("%s: traffic (%d,%d) vs (%d,%d)", label,
			a.lookupBytes, a.maintBytes, b.lookupBytes, b.maintBytes)
	}
	if a.live != b.live {
		t.Errorf("%s: live %d vs %d", label, a.live, b.live)
	}
	if len(a.lookups) != len(b.lookups) {
		t.Fatalf("%s: %d vs %d lookups issued", label, len(a.lookups), len(b.lookups))
	}
	for i := range a.lookups {
		if a.lookups[i] != b.lookups[i] {
			t.Errorf("%s: lookup %d:\n  %s\n  %s", label, i, a.lookups[i], b.lookups[i])
		}
	}
}

// TestShardedDeterminism is the tentpole guarantee at working scale: a
// 64-node Chord run — including churn, whose kills and replacements are
// barrier work — reports bit-identical harness metrics at 1, 3, and 4
// shards under the same seed.
func TestShardedDeterminism(t *testing.T) {
	base := runShardedWorkload(64, 1, 42, 0.05, true, nil)
	if len(base.lookups) == 0 {
		t.Fatal("workload issued no lookups")
	}
	for _, p := range []int{3, 4} {
		diffSummaries(t, fmt.Sprintf("shards=%d", p), base, runShardedWorkload(64, p, 42, 0.05, true, nil))
	}
}

// TestShardedDeterminismWAN re-runs the determinism guarantee on the
// transit-stub WAN model with every dynamic effect armed — per-link
// measured latencies, 10% jitter, border-router queuing draws, transit
// serialization, and Gilbert-Elliott loss bursts. All of it is modeled
// from sender-owned state (per-node rng streams, the sender's link
// clock), so a churned 64-node run must stay bit-identical at 1, 3,
// and 4 shards; this test is what pins that discipline for the WAN
// code paths.
func TestShardedDeterminismWAN(t *testing.T) {
	wan := simnet.TransitStubWAN(3, 3, 99)
	wan.BurstEnter, wan.BurstExit, wan.BurstLoss = 0.01, 0.25, 0.5
	base := runShardedWorkload(64, 1, 42, 0.05, true, &wan)
	if len(base.lookups) == 0 {
		t.Fatal("workload issued no lookups")
	}
	for _, p := range []int{3, 4} {
		diffSummaries(t, fmt.Sprintf("wan shards=%d", p), base, runShardedWorkload(64, p, 42, 0.05, true, &wan))
	}
}

// TestShardedDeterminism512 is the acceptance-scale check: a 512-node
// ring at 8 shards reports identical metrics to the single-shard run.
// The churn phase is skipped to keep the wall time CI-friendly; churn
// determinism is covered at 64 nodes above.
func TestShardedDeterminism512(t *testing.T) {
	if testing.Short() {
		t.Skip("512-node determinism run skipped in -short mode")
	}
	if raceEnabled {
		t.Skip("512-node soak skipped under -race; TestShardedDeterminism covers the same machinery")
	}
	base := runShardedWorkload(512, 1, 7, 0.02, false, nil)
	diffSummaries(t, "shards=8", base, runShardedWorkload(512, 8, 7, 0.02, false, nil))
}

// TestShardedPlacementByDomain checks the placement rule: every node of
// a domain lands on shard = domain mod P, so intra-domain chatter never
// crosses a shard boundary.
func TestShardedPlacementByDomain(t *testing.T) {
	h := NewChord(Opts{N: 24, Seed: 3, JoinSpacing: 0.01, Shards: 4})
	defer h.Close()
	h.Run(5)
	pm := h.PlacementMap()
	if len(pm) != 24 {
		t.Fatalf("placement has %d entries, want 24", len(pm))
	}
	for addr, shard := range pm {
		if want := h.D.DomainOf(addr) % 4; shard != want {
			t.Errorf("%s on shard %d, want domain %d mod 4 = %d",
				addr, shard, h.D.DomainOf(addr), want)
		}
	}
}

// TestShardedChurnKeepsPopulation mirrors the single-loop churn test in
// sharded mode: kills and replacements through the barrier lane keep
// the population constant and the ring functional.
func TestShardedChurnKeepsPopulation(t *testing.T) {
	h := NewChord(Opts{N: 16, Seed: 11, JoinSpacing: 0.2, Shards: 3})
	defer h.Close()
	h.Run(60)
	h.StartChurn(30)
	h.Run(90)
	h.StopChurn()
	if got := len(h.LiveAddrs()); got != 16 {
		t.Fatalf("live population %d, want 16", got)
	}
	if h.nextID <= 16 {
		t.Fatal("churn never replaced a node")
	}
	h.Run(60)
	lr := h.Lookup(h.RandomLiveAddr(), h.RandomKey())
	h.Run(10)
	if !lr.Done {
		t.Fatal("post-churn lookup failed")
	}
}
