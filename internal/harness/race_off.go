//go:build !race

package harness

// raceEnabled mirrors the -race build tag; see race_on.go.
const raceEnabled = false
