package harness

import (
	"testing"

	"p2/internal/id"
)

// TestSmallRingConverges is the core correctness test of the whole
// reproduction: a real Chord ring, built purely by executing the
// OverLog specification, converges to the ideal successor ring.
func TestSmallRingConverges(t *testing.T) {
	h := NewChord(Opts{N: 8, Seed: 42, JoinSpacing: 1})
	h.Run(120)
	if rc := h.RingCorrectness(); rc < 1.0 {
		t.Fatalf("ring correctness = %.2f after 120 s, want 1.0", rc)
	}
}

func TestLookupsResolveToIdealOwner(t *testing.T) {
	h := NewChord(Opts{N: 10, Seed: 7, JoinSpacing: 1})
	h.Run(150)
	if rc := h.RingCorrectness(); rc < 1.0 {
		t.Fatalf("ring not converged: %.2f", rc)
	}
	ok, total := 0, 20
	for i := 0; i < total; i++ {
		key := h.RandomKey()
		lr := h.Lookup(h.RandomLiveAddr(), key)
		h.Run(10)
		if !lr.Done {
			t.Fatalf("lookup %d never completed", i)
		}
		if lr.Owner == h.IdealOwner(key) {
			ok++
		}
	}
	if ok != total {
		t.Fatalf("correct lookups = %d/%d", ok, total)
	}
}

func TestLookupHopsAreLogarithmic(t *testing.T) {
	h := NewChord(Opts{N: 16, Seed: 3, JoinSpacing: 1})
	h.Run(250) // let fingers populate
	totalHops, n := 0, 30
	for i := 0; i < n; i++ {
		lr := h.Lookup(h.RandomLiveAddr(), h.RandomKey())
		h.Run(10)
		if lr.Done {
			totalHops += lr.Hops
		}
	}
	mean := float64(totalHops) / float64(n)
	// log2(16)/2 = 2; allow generous slack but catch O(N) routing.
	if mean > 6 {
		t.Fatalf("mean hops = %.1f, expected ~2 for N=16", mean)
	}
}

func TestMaintenanceTrafficFlowsAndClassifies(t *testing.T) {
	h := NewChord(Opts{N: 5, Seed: 1, JoinSpacing: 1})
	h.Run(60)
	h.ResetTraffic()
	h.Run(30)
	lookupB, maintB := h.TrafficBytes()
	if maintB == 0 {
		t.Fatal("no maintenance traffic measured")
	}
	// Idle network: no lookups issued, only join/fix-finger lookups
	// (which count as lookup class) are permitted.
	perNodePerSec := float64(maintB) / 5 / 30
	if perNodePerSec > 1024 {
		t.Fatalf("maintenance bandwidth %.0f B/s/node exceeds the ~1 kB/s sanity bound", perNodePerSec)
	}
	_ = lookupB
}

func TestNodeFailureHealsRing(t *testing.T) {
	h := NewChord(Opts{N: 8, Seed: 11, JoinSpacing: 1})
	h.Run(120)
	if h.RingCorrectness() < 1.0 {
		t.Fatal("ring not converged before failure")
	}
	// Kill two non-landmark nodes.
	live := h.LiveAddrs()
	h.Kill(live[3])
	h.Kill(live[5])
	// Ring must re-converge among survivors within the failure
	// detection + stabilization horizon.
	h.Run(120)
	if rc := h.RingCorrectness(); rc < 1.0 {
		t.Fatalf("ring correctness after failures = %.2f", rc)
	}
	if got := len(h.LiveAddrs()); got != 6 {
		t.Fatalf("live nodes = %d, want 6", got)
	}
}

func TestLateJoinIntegrates(t *testing.T) {
	h := NewChord(Opts{N: 6, Seed: 5, JoinSpacing: 1})
	h.Run(100)
	before := len(h.LiveAddrs())
	h.Spawn()
	h.Run(90)
	if len(h.LiveAddrs()) != before+1 {
		t.Fatal("late joiner not live")
	}
	if rc := h.RingCorrectness(); rc < 1.0 {
		t.Fatalf("ring correctness with late joiner = %.2f", rc)
	}
}

func TestConsistencyProbeOnStableRing(t *testing.T) {
	h := NewChord(Opts{N: 10, Seed: 9, JoinSpacing: 1})
	h.Run(150)
	frac := h.ConsistencyProbe(5, 10)
	if frac < 1.0 {
		t.Fatalf("stable ring consistency = %.2f, want 1.0", frac)
	}
}

func TestChurnKeepsPopulationConstant(t *testing.T) {
	h := NewChord(Opts{N: 10, Seed: 13, JoinSpacing: 0.5})
	h.Run(60)
	h.StartChurn(30) // aggressive: mean 30 s sessions
	h.Run(120)
	h.StopChurn()
	if got := len(h.LiveAddrs()); got != 10 {
		t.Fatalf("population under churn = %d, want 10", got)
	}
	// Under extreme churn some lookups may fail, but the system must
	// still answer some probes.
	frac := h.ConsistencyProbe(5, 15)
	if frac <= 0 {
		t.Log("warning: zero consistency under extreme churn (acceptable at 30 s sessions)")
	}
}

func TestIdealOwnerWraps(t *testing.T) {
	h := NewChord(Opts{N: 4, Seed: 2, JoinSpacing: 0.1})
	h.Run(10)
	// A key greater than every node ID wraps to the smallest.
	maxID := id.Zero
	var minAddr string
	minID := id.Zero.Sub(id.One)
	for _, a := range h.LiveAddrs() {
		nid := id.Hash(a)
		if maxID.Less(nid) {
			maxID = nid
		}
		if nid.Less(minID) {
			minID = nid
			minAddr = a
		}
	}
	key := maxID.AddUint64(1)
	if got := h.IdealOwner(key); got != minAddr {
		t.Fatalf("IdealOwner wrap = %s, want %s", got, minAddr)
	}
}
