// Package harness builds and measures Chord overlays for the
// evaluation (§5): static rings for Figure 3, churned rings for
// Figure 4, with the metrics the paper reports — lookup hop counts,
// lookup latency, per-node maintenance bandwidth, and Bamboo-style
// lookup consistency.
//
// Everything runs in virtual time, deterministically, in one of two
// execution modes selected by Opts.Shards:
//
//   - Single-loop: every node shares one eventloop.Sim — the classic
//     arrangement, one goroutine end to end.
//   - Sharded: nodes are partitioned across the shards of an
//     eventloop.ShardedSim by stub domain (shard = domain mod P), so a
//     P-shard run uses P cores while intra-domain chatter stays
//     shard-local. Cross-shard datagrams are merged at epoch barriers
//     in a canonical order, and all driver-level structural actions —
//     spawning a node, churn kills and replacements — run on the
//     coordinator through the barrier control lane. The result is
//     exact: a run at P shards reports bit-identical metrics to the
//     same seed at 1 shard (TestShardedDeterminism enforces it).
//
// All randomness that shapes an individual node — its engine seed, its
// churn session length, its loss pattern in simnet — derives from
// (Seed, address) alone, never from a shared stream, so outcomes are
// independent of how other nodes' events interleave. The harness-level
// rng only drives workload choices made between Run calls (which node
// looks up which key).
package harness

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"os"
	"sort"
	"strconv"
	"sync"

	"p2/internal/engine"
	"p2/internal/eventloop"
	"p2/internal/id"
	"p2/internal/overlays"
	"p2/internal/planner"
	"p2/internal/simnet"
	"p2/internal/transport"
	"p2/internal/tuple"
	"p2/internal/val"
)

// EnvShards is the environment variable CI uses to run the whole
// simulation suite in sharded mode: any NewChord whose Opts leave
// Shards at zero picks up its value.
const EnvShards = "P2_SIM_SHARDS"

// Opts configures a Chord network build.
type Opts struct {
	N           int     // initial population
	Seed        int64   // master seed
	JoinSpacing float64 // seconds between node starts (default 0.5)
	Defines     map[string]val.Value
	Net         *simnet.Config // nil = paper topology
	Unreliable  bool           // fire-and-forget transport (ablation)
	// Shards selects the execution mode: >= 1 runs the simulation
	// across that many parallel shard loops (1 = the sharded machinery
	// with a single shard — the determinism baseline), 0 defers to the
	// P2_SIM_SHARDS environment variable (absent: single-loop), and a
	// negative value forces classic single-loop mode regardless of the
	// environment.
	Shards int
}

func resolveShards(v int) int {
	switch {
	case v > 0:
		return v
	case v < 0:
		return 0
	}
	if s := os.Getenv(EnvShards); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n >= 1 {
			return n
		}
	}
	return 0
}

// seedFor derives the per-address random stream for one concern (node
// engine randomness, churn session length, ...) from the master seed:
// a pure function, so outcomes never depend on draw order.
func seedFor(seed int64, concern, addr string) int64 {
	h := fnv.New64a()
	h.Write([]byte(concern))
	h.Write([]byte{0})
	h.Write([]byte(addr))
	return seed ^ int64(h.Sum64())
}

// LookupResult records one issued lookup's fate.
type LookupResult struct {
	EventID   string
	Key       id.ID
	From      string
	Issued    float64
	Completed float64 // 0 if never
	Owner     string  // responding node's address
	Hops      int
	Done      bool
}

// Latency returns completion latency in seconds (or -1 if unfinished).
func (lr *LookupResult) Latency() float64 {
	if !lr.Done {
		return -1
	}
	return lr.Completed - lr.Issued
}

// canceler unifies the two churn-death handles: an event-loop Timer in
// single-loop mode, a barrier control event in sharded mode.
type canceler interface{ Cancel() }

// Chord is a running Chord deployment under measurement.
type Chord struct {
	// Loop is the shared event loop in single-loop mode; nil when the
	// deployment is sharded. Drive time through Run/RunEvents/Now,
	// which cover both modes.
	Loop *eventloop.Sim
	// Coord coordinates the shard loops in sharded mode; nil in
	// single-loop mode.
	Coord *eventloop.ShardedSim
	Net   *simnet.Net
	Plan  *planner.Plan

	opts      Opts
	shards    int // 0 = single-loop
	rng       *rand.Rand
	nodes     map[string]*engine.Node // live and dead
	order     []string                // creation order
	landmark  string
	nextID    int
	lookupSeq int

	pending map[string]*LookupResult
	Results []*LookupResult

	// tapMu guards measurement state mutated from watch and transport
	// taps, which in sharded mode fire concurrently on shard loops. All
	// guarded updates commute (counter increments), so the lock order
	// never shows in the metrics.
	tapMu       sync.Mutex
	lookupBytes int64
	maintBytes  int64

	churnCancels []canceler
	churnMean    float64
	churning     bool
}

// NewChord builds (but does not yet run) a Chord network: nodes start
// staggered on the virtual clock and join through the first node.
func NewChord(opts Opts) *Chord {
	if opts.JoinSpacing <= 0 {
		opts.JoinSpacing = 0.5
	}
	cfg := simnet.DefaultConfig()
	if opts.Net != nil {
		cfg = *opts.Net
	}
	cfg.Seed = opts.Seed
	h := &Chord{
		Plan:    overlays.ChordPlan(opts.Defines),
		opts:    opts,
		shards:  resolveShards(opts.Shards),
		rng:     rand.New(rand.NewSource(opts.Seed)),
		nodes:   make(map[string]*engine.Node),
		pending: make(map[string]*LookupResult),
	}
	if h.shards > 0 {
		h.Coord = eventloop.NewShardedSim(h.shards, cfg.Lookahead())
		h.Net = simnet.NewSharded(h.Coord, cfg)
	} else {
		h.Loop = eventloop.NewSim()
		h.Net = simnet.New(h.Loop, cfg)
	}
	for i := 0; i < opts.N; i++ {
		at := float64(i) * opts.JoinSpacing
		if h.Coord != nil {
			// Structural changes are coordinator work: the spawn runs at
			// the first epoch barrier at or past its nominal instant,
			// while every shard is quiescent.
			addr := h.nextAddr()
			h.Coord.AtBarrier(at, func() { h.spawn(addr) })
		} else {
			h.Loop.At(at, func() { h.spawn(h.nextAddr()) })
		}
	}
	return h
}

// Close releases coordinator resources (sharded mode worker
// goroutines). The deployment must not be run afterwards.
func (h *Chord) Close() {
	if h.Coord != nil {
		h.Coord.Close()
	}
}

// Shards returns the shard count (0 when single-loop).
func (h *Chord) Shards() int { return h.shards }

// nextAddr mints the next node address. Coordinator/driver only, so
// address assignment — and everything derived from it: domain, shard,
// per-node random streams — is deterministic.
func (h *Chord) nextAddr() string {
	addr := fmt.Sprintf("n%d:p2", h.nextID)
	h.nextID++
	return addr
}

// nodeLoop returns the loop the node at addr must run on: its owning
// shard's loop, or the shared loop in single-loop mode.
func (h *Chord) nodeLoop(addr string) *eventloop.Sim {
	if h.Coord != nil {
		return h.Net.ShardLoop(addr)
	}
	return h.Loop
}

// spawn creates and starts a node at addr; the first becomes the
// landmark, everyone else joins through it. Runs on the simulation
// goroutine (single-loop) or the coordinator at a barrier (sharded).
func (h *Chord) spawn(addr string) *engine.Node {
	opts := engine.Options{Seed: seedFor(h.opts.Seed, "node", addr)}
	if h.opts.Unreliable {
		tc := transport.DefaultConfig()
		tc.Unreliable = true
		opts.Transport = &tc
	}
	n := engine.NewNode(addr, h.nodeLoop(addr), h.Net, h.Plan, opts)
	if err := n.Start(); err != nil {
		panic(fmt.Sprintf("harness: start %s: %v", addr, err))
	}
	h.nodes[addr] = n
	h.order = append(h.order, addr)

	if h.landmark == "" {
		h.landmark = addr
		n.AddFact("landmark", val.Str(addr), val.Str("-"))
	} else {
		n.AddFact("landmark", val.Str(addr), val.Str(h.landmark))
	}
	n.AddFact("join", val.Str(addr), val.Str(addr+"!boot"))

	// Measurement taps. These run on the node's own loop — concurrently
	// with other shards' taps when sharded — so shared tallies go
	// through tapMu and everything else stays per-lookup state touched
	// only by the requester's shard.
	n.Watch("lookup", func(ev engine.WatchEvent) {
		if ev.Dir != engine.DirSent {
			return
		}
		eid := ev.Tuple.Field(3).AsStr()
		if lr, ok := h.pending[eid]; ok {
			h.tapMu.Lock()
			lr.Hops++
			h.tapMu.Unlock()
		}
	})
	n.Watch("lookupResults", func(ev engine.WatchEvent) {
		if ev.Dir != engine.DirReceived && ev.Dir != engine.DirDerived {
			return
		}
		// lookupResults(R, K, S, SI, E): only the requester counts it,
		// and only once.
		if ev.Node != ev.Tuple.Field(0).AsStr() {
			return
		}
		eid := ev.Tuple.Field(4).AsStr()
		lr, ok := h.pending[eid]
		if !ok || lr.Done {
			return
		}
		lr.Done = true
		lr.Completed = ev.Time
		lr.Owner = ev.Tuple.Field(3).AsStr()
	})
	n.Transport().OnSent(func(to string, t *tuple.Tuple, wire int, rexmit bool) {
		// Classify data bytes by tuple; TrafficBytes scales the classes
		// to the simulator's wire total so acks and datagram headers
		// (now shared across a batch, often piggybacked) are
		// apportioned instead of guessed at.
		h.tapMu.Lock()
		switch t.Name() {
		case "lookup", "lookupResults":
			h.lookupBytes += int64(wire)
		default:
			h.maintBytes += int64(wire)
		}
		h.tapMu.Unlock()
	})
	return n
}

// Spawn starts one additional node joining through the landmark — the
// late-join entry point for tests and interactive drivers. Call from
// the driver between Run invocations (both modes are quiescent then).
func (h *Chord) Spawn() *engine.Node { return h.spawn(h.nextAddr()) }

// Node returns the engine node at addr (nil if unknown).
func (h *Chord) Node(addr string) *engine.Node { return h.nodes[addr] }

// LiveAddrs returns the addresses of running nodes in creation order.
func (h *Chord) LiveAddrs() []string {
	var out []string
	for _, a := range h.order {
		if n := h.nodes[a]; n != nil && n.Running() {
			out = append(out, a)
		}
	}
	return out
}

// PlacementMap returns every created node's shard assignment — the
// node→shard map cmd/p2sim dumps. Single-loop deployments map
// everything to shard 0.
func (h *Chord) PlacementMap() map[string]int {
	out := make(map[string]int, len(h.order))
	for _, a := range h.order {
		if h.Coord != nil {
			out[a] = h.Net.ShardOf(a)
		} else {
			out[a] = 0
		}
	}
	return out
}

// Now returns the current virtual time in either execution mode.
func (h *Chord) Now() float64 {
	if h.Coord != nil {
		return h.Coord.Now()
	}
	return h.Loop.Now()
}

// Run advances virtual time by d seconds.
func (h *Chord) Run(d float64) { h.RunEvents(d) }

// RunEvents advances virtual time by d seconds and returns the number
// of events fired — the simulator-throughput gauge the benchmarks
// meter.
func (h *Chord) RunEvents(d float64) int {
	if h.Coord != nil {
		return h.Coord.RunFor(d)
	}
	return h.Loop.RunFor(d)
}

// Lookup issues one lookup for key from the given node and returns its
// result record (filled in as the simulation progresses).
func (h *Chord) Lookup(from string, key id.ID) *LookupResult {
	h.lookupSeq++
	eid := fmt.Sprintf("lk!%d", h.lookupSeq)
	lr := &LookupResult{
		EventID: eid,
		Key:     key,
		From:    from,
		Issued:  h.Now(),
	}
	h.pending[eid] = lr
	h.Results = append(h.Results, lr)
	h.nodes[from].InjectTuple(tuple.New("lookup",
		val.Str(from), val.MakeID(key), val.Str(from), val.Str(eid)))
	return lr
}

// RandomLiveAddr picks a uniformly random live node.
func (h *Chord) RandomLiveAddr() string {
	live := h.LiveAddrs()
	return live[h.rng.Intn(len(live))]
}

// RandomKey draws a uniform identifier.
func (h *Chord) RandomKey() id.ID { return id.Random(h.rng) }

// IdealOwner computes the ground-truth successor of key among live
// nodes — the node every consistent lookup should return.
func (h *Chord) IdealOwner(key id.ID) string {
	type entry struct {
		nid  id.ID
		addr string
	}
	var ring []entry
	for _, a := range h.LiveAddrs() {
		ring = append(ring, entry{id.Hash(a), a})
	}
	sort.Slice(ring, func(i, j int) bool { return ring[i].nid.Less(ring[j].nid) })
	for _, e := range ring {
		if !e.nid.Less(key) { // first nid >= key
			return e.addr
		}
	}
	return ring[0].addr // wrap
}

// RingCorrectness returns the fraction of live nodes whose bestSucc is
// the true next live node on the identifier ring — the convergence
// metric for static experiments.
func (h *Chord) RingCorrectness() float64 {
	live := h.LiveAddrs()
	if len(live) == 0 {
		return 0
	}
	type entry struct {
		nid  id.ID
		addr string
	}
	ring := make([]entry, 0, len(live))
	for _, a := range live {
		ring = append(ring, entry{id.Hash(a), a})
	}
	sort.Slice(ring, func(i, j int) bool { return ring[i].nid.Less(ring[j].nid) })
	ideal := make(map[string]string, len(ring))
	for i, e := range ring {
		ideal[e.addr] = ring[(i+1)%len(ring)].addr
	}
	good := 0
	for _, a := range live {
		tb := h.nodes[a].Table("bestSucc")
		if tb == nil {
			continue
		}
		rows := tb.Scan()
		if len(rows) == 1 && rows[0].Field(2).AsStr() == ideal[a] {
			good++
		}
	}
	return float64(good) / float64(len(live))
}

// TrafficBytes returns cumulative (lookupClass, maintenanceClass) bytes
// across all nodes since the last ResetTraffic. The per-class data
// bytes the transport tap classified are scaled up to the simulator's
// true wire total, so ack datagrams, UDP/IP headers, and per-frame
// batching overhead are distributed proportionally between the classes.
func (h *Chord) TrafficBytes() (lookup, maintenance int64) {
	classified := h.lookupBytes + h.maintBytes
	total := h.Net.TotalStats().BytesSent
	if classified == 0 || total <= classified {
		return h.lookupBytes, h.maintBytes
	}
	scale := float64(total) / float64(classified)
	return int64(float64(h.lookupBytes) * scale), int64(float64(h.maintBytes) * scale)
}

// ResetTraffic zeroes the traffic classification counters and the
// simulator's raw counters.
func (h *Chord) ResetTraffic() {
	h.lookupBytes, h.maintBytes = 0, 0
	h.Net.ResetStats()
}

// Kill stops the node at addr and removes it from the network —
// process-crash semantics for churn. In sharded mode, call only from
// the coordinator between runs or from a barrier callback.
func (h *Chord) Kill(addr string) {
	if n := h.nodes[addr]; n != nil && n.Running() {
		n.Stop()
		h.Net.Kill(addr)
	}
}

// StartChurn begins Bamboo-style churn: every node except the landmark
// lives for an exponentially distributed session with the given mean,
// then dies and is immediately replaced by a fresh node joining through
// the landmark, keeping the population constant. Session lengths come
// from each address's private stream, so the churn schedule is
// independent of event interleaving — and identical at every shard
// count.
func (h *Chord) StartChurn(meanSession float64) {
	h.churnMean = meanSession
	h.churning = true
	for _, a := range h.LiveAddrs() {
		if a == h.landmark {
			continue
		}
		h.scheduleDeath(a)
	}
}

// StopChurn cancels scheduled deaths.
func (h *Chord) StopChurn() {
	h.churning = false
	for _, c := range h.churnCancels {
		c.Cancel()
	}
	h.churnCancels = h.churnCancels[:0]
}

// sessionFor draws addr's session length from its private stream.
func (h *Chord) sessionFor(addr string) float64 {
	rng := rand.New(rand.NewSource(seedFor(h.opts.Seed, "session", addr)))
	return rng.ExpFloat64() * h.churnMean
}

func (h *Chord) scheduleDeath(addr string) {
	session := h.sessionFor(addr)
	die := func() {
		if !h.churning {
			return
		}
		h.Kill(addr)
		repl := h.nextAddr()
		h.spawn(repl)
		h.scheduleDeath(repl)
	}
	if h.Coord != nil {
		// Death and replacement are structural: barrier work, quantized
		// to the epoch grid (at most one lookahead late).
		h.churnCancels = append(h.churnCancels, h.Coord.AtBarrier(h.Coord.Now()+session, die))
	} else {
		h.churnCancels = append(h.churnCancels, h.Loop.After(session, die))
	}
}

// ConsistencyProbe issues the same key lookup from sample random live
// nodes at once and reports, after waiting timeout seconds, the
// fraction that agreed on the most popular owner — the consistency
// metric of Figure 4(ii), following Bamboo's methodology. The fraction
// is over all issued lookups, so unanswered lookups count against
// consistency.
func (h *Chord) ConsistencyProbe(sample int, timeout float64) float64 {
	key := h.RandomKey()
	var results []*LookupResult
	seen := make(map[string]bool)
	live := h.LiveAddrs()
	if sample > len(live) {
		sample = len(live)
	}
	for len(results) < sample {
		from := live[h.rng.Intn(len(live))]
		if seen[from] {
			continue
		}
		seen[from] = true
		results = append(results, h.Lookup(from, key))
	}
	h.Run(timeout)
	counts := make(map[string]int)
	for _, lr := range results {
		if lr.Done {
			counts[lr.Owner]++
		}
	}
	best := 0
	for _, c := range counts {
		if c > best {
			best = c
		}
	}
	return float64(best) / float64(sample)
}

// CompletedLookups returns results that finished.
func (h *Chord) CompletedLookups() []*LookupResult {
	var out []*LookupResult
	for _, lr := range h.Results {
		if lr.Done {
			out = append(out, lr)
		}
	}
	return out
}
