// Package harness builds and measures Chord overlays for the
// evaluation (§5): static rings for Figure 3, churned rings for
// Figure 4, with the metrics the paper reports — lookup hop counts,
// lookup latency, per-node maintenance bandwidth, and Bamboo-style
// lookup consistency.
//
// Everything runs in virtual time on one simulation loop, so a
// 20-minute churn run with 400 nodes is deterministic and fast.
package harness

import (
	"fmt"
	"math/rand"
	"sort"

	"p2/internal/engine"
	"p2/internal/eventloop"
	"p2/internal/id"
	"p2/internal/overlays"
	"p2/internal/planner"
	"p2/internal/simnet"
	"p2/internal/transport"
	"p2/internal/tuple"
	"p2/internal/val"
)

// Opts configures a Chord network build.
type Opts struct {
	N           int     // initial population
	Seed        int64   // master seed
	JoinSpacing float64 // seconds between node starts (default 0.5)
	Defines     map[string]val.Value
	Net         *simnet.Config // nil = paper topology
	Unreliable  bool           // fire-and-forget transport (ablation)
}

// LookupResult records one issued lookup's fate.
type LookupResult struct {
	EventID   string
	Key       id.ID
	From      string
	Issued    float64
	Completed float64 // 0 if never
	Owner     string  // responding node's address
	Hops      int
	Done      bool
}

// Latency returns completion latency in seconds (or -1 if unfinished).
func (lr *LookupResult) Latency() float64 {
	if !lr.Done {
		return -1
	}
	return lr.Completed - lr.Issued
}

// Chord is a running Chord deployment under measurement.
type Chord struct {
	Loop *eventloop.Sim
	Net  *simnet.Net
	Plan *planner.Plan

	opts      Opts
	rng       *rand.Rand
	nodes     map[string]*engine.Node // live and dead
	order     []string                // creation order
	landmark  string
	nextID    int
	lookupSeq int

	pending map[string]*LookupResult
	Results []*LookupResult

	// traffic classification: bytes by class, per node, via transport taps
	lookupBytes int64
	maintBytes  int64

	churnTimers []*eventloop.Timer
	churnMean   float64
	churning    bool
}

// NewChord builds (but does not yet run) a Chord network: nodes start
// staggered on the virtual clock and join through the first node.
func NewChord(opts Opts) *Chord {
	if opts.JoinSpacing <= 0 {
		opts.JoinSpacing = 0.5
	}
	loop := eventloop.NewSim()
	cfg := simnet.DefaultConfig()
	if opts.Net != nil {
		cfg = *opts.Net
	}
	cfg.Seed = opts.Seed
	h := &Chord{
		Loop:    loop,
		Net:     simnet.New(loop, cfg),
		Plan:    overlays.ChordPlan(opts.Defines),
		opts:    opts,
		rng:     rand.New(rand.NewSource(opts.Seed)),
		nodes:   make(map[string]*engine.Node),
		pending: make(map[string]*LookupResult),
	}
	for i := 0; i < opts.N; i++ {
		at := float64(i) * opts.JoinSpacing
		h.Loop.At(at, func() { h.spawn() })
	}
	return h
}

// spawn creates and starts the next node; the first becomes the
// landmark, everyone else joins through it.
func (h *Chord) spawn() *engine.Node {
	addr := fmt.Sprintf("n%d:p2", h.nextID)
	h.nextID++
	opts := engine.Options{Seed: h.rng.Int63()}
	if h.opts.Unreliable {
		tc := transport.DefaultConfig()
		tc.Unreliable = true
		opts.Transport = &tc
	}
	n := engine.NewNode(addr, h.Loop, h.Net, h.Plan, opts)
	if err := n.Start(); err != nil {
		panic(fmt.Sprintf("harness: start %s: %v", addr, err))
	}
	h.nodes[addr] = n
	h.order = append(h.order, addr)

	if h.landmark == "" {
		h.landmark = addr
		n.AddFact("landmark", val.Str(addr), val.Str("-"))
	} else {
		n.AddFact("landmark", val.Str(addr), val.Str(h.landmark))
	}
	n.AddFact("join", val.Str(addr), val.Str(addr+"!boot"))

	// Measurement taps.
	n.Watch("lookup", func(ev engine.WatchEvent) {
		if ev.Dir != engine.DirSent {
			return
		}
		eid := ev.Tuple.Field(3).AsStr()
		if lr, ok := h.pending[eid]; ok {
			lr.Hops++
		}
	})
	n.Watch("lookupResults", func(ev engine.WatchEvent) {
		if ev.Dir != engine.DirReceived && ev.Dir != engine.DirDerived {
			return
		}
		// lookupResults(R, K, S, SI, E): only the requester counts it,
		// and only once.
		if ev.Node != ev.Tuple.Field(0).AsStr() {
			return
		}
		eid := ev.Tuple.Field(4).AsStr()
		lr, ok := h.pending[eid]
		if !ok || lr.Done {
			return
		}
		lr.Done = true
		lr.Completed = ev.Time
		lr.Owner = ev.Tuple.Field(3).AsStr()
	})
	n.Transport().OnSent(func(to string, t *tuple.Tuple, wire int, rexmit bool) {
		// Classify data bytes by tuple; TrafficBytes scales the classes
		// to the simulator's wire total so acks and datagram headers
		// (now shared across a batch, often piggybacked) are
		// apportioned instead of guessed at.
		switch t.Name() {
		case "lookup", "lookupResults":
			h.lookupBytes += int64(wire)
		default:
			h.maintBytes += int64(wire)
		}
	})
	return n
}

// Node returns the engine node at addr (nil if unknown).
func (h *Chord) Node(addr string) *engine.Node { return h.nodes[addr] }

// LiveAddrs returns the addresses of running nodes in creation order.
func (h *Chord) LiveAddrs() []string {
	var out []string
	for _, a := range h.order {
		if n := h.nodes[a]; n != nil && n.Running() {
			out = append(out, a)
		}
	}
	return out
}

// Run advances virtual time by d seconds.
func (h *Chord) Run(d float64) { h.Loop.RunFor(d) }

// Lookup issues one lookup for key from the given node and returns its
// result record (filled in as the simulation progresses).
func (h *Chord) Lookup(from string, key id.ID) *LookupResult {
	h.lookupSeq++
	eid := fmt.Sprintf("lk!%d", h.lookupSeq)
	lr := &LookupResult{
		EventID: eid,
		Key:     key,
		From:    from,
		Issued:  h.Loop.Now(),
	}
	h.pending[eid] = lr
	h.Results = append(h.Results, lr)
	h.nodes[from].InjectTuple(tuple.New("lookup",
		val.Str(from), val.MakeID(key), val.Str(from), val.Str(eid)))
	return lr
}

// RandomLiveAddr picks a uniformly random live node.
func (h *Chord) RandomLiveAddr() string {
	live := h.LiveAddrs()
	return live[h.rng.Intn(len(live))]
}

// RandomKey draws a uniform identifier.
func (h *Chord) RandomKey() id.ID { return id.Random(h.rng) }

// IdealOwner computes the ground-truth successor of key among live
// nodes — the node every consistent lookup should return.
func (h *Chord) IdealOwner(key id.ID) string {
	type entry struct {
		nid  id.ID
		addr string
	}
	var ring []entry
	for _, a := range h.LiveAddrs() {
		ring = append(ring, entry{id.Hash(a), a})
	}
	sort.Slice(ring, func(i, j int) bool { return ring[i].nid.Less(ring[j].nid) })
	for _, e := range ring {
		if !e.nid.Less(key) { // first nid >= key
			return e.addr
		}
	}
	return ring[0].addr // wrap
}

// RingCorrectness returns the fraction of live nodes whose bestSucc is
// the true next live node on the identifier ring — the convergence
// metric for static experiments.
func (h *Chord) RingCorrectness() float64 {
	live := h.LiveAddrs()
	if len(live) == 0 {
		return 0
	}
	type entry struct {
		nid  id.ID
		addr string
	}
	ring := make([]entry, 0, len(live))
	for _, a := range live {
		ring = append(ring, entry{id.Hash(a), a})
	}
	sort.Slice(ring, func(i, j int) bool { return ring[i].nid.Less(ring[j].nid) })
	ideal := make(map[string]string, len(ring))
	for i, e := range ring {
		ideal[e.addr] = ring[(i+1)%len(ring)].addr
	}
	good := 0
	for _, a := range live {
		tb := h.nodes[a].Table("bestSucc")
		if tb == nil {
			continue
		}
		rows := tb.Scan()
		if len(rows) == 1 && rows[0].Field(2).AsStr() == ideal[a] {
			good++
		}
	}
	return float64(good) / float64(len(live))
}

// TrafficBytes returns cumulative (lookupClass, maintenanceClass) bytes
// across all nodes since the last ResetTraffic. The per-class data
// bytes the transport tap classified are scaled up to the simulator's
// true wire total, so ack datagrams, UDP/IP headers, and per-frame
// batching overhead are distributed proportionally between the classes.
func (h *Chord) TrafficBytes() (lookup, maintenance int64) {
	classified := h.lookupBytes + h.maintBytes
	total := h.Net.TotalStats().BytesSent
	if classified == 0 || total <= classified {
		return h.lookupBytes, h.maintBytes
	}
	scale := float64(total) / float64(classified)
	return int64(float64(h.lookupBytes) * scale), int64(float64(h.maintBytes) * scale)
}

// ResetTraffic zeroes the traffic classification counters and the
// simulator's raw counters.
func (h *Chord) ResetTraffic() {
	h.lookupBytes, h.maintBytes = 0, 0
	h.Net.ResetStats()
}

// Kill stops the node at addr and removes it from the network —
// process-crash semantics for churn.
func (h *Chord) Kill(addr string) {
	if n := h.nodes[addr]; n != nil && n.Running() {
		n.Stop()
		h.Net.Kill(addr)
	}
}

// StartChurn begins Bamboo-style churn: every node except the landmark
// lives for an exponentially distributed session with the given mean,
// then dies and is immediately replaced by a fresh node joining through
// the landmark, keeping the population constant.
func (h *Chord) StartChurn(meanSession float64) {
	h.churnMean = meanSession
	h.churning = true
	for _, a := range h.LiveAddrs() {
		if a == h.landmark {
			continue
		}
		h.scheduleDeath(a)
	}
}

// StopChurn cancels scheduled deaths.
func (h *Chord) StopChurn() {
	h.churning = false
	for _, t := range h.churnTimers {
		t.Cancel()
	}
	h.churnTimers = h.churnTimers[:0]
}

func (h *Chord) scheduleDeath(addr string) {
	session := h.rng.ExpFloat64() * h.churnMean
	t := h.Loop.After(session, func() {
		if !h.churning {
			return
		}
		h.Kill(addr)
		repl := h.spawn()
		h.scheduleDeath(repl.Addr())
	})
	h.churnTimers = append(h.churnTimers, t)
}

// ConsistencyProbe issues the same key lookup from sample random live
// nodes at once and reports, after waiting timeout seconds, the
// fraction that agreed on the most popular owner — the consistency
// metric of Figure 4(ii), following Bamboo's methodology. The fraction
// is over all issued lookups, so unanswered lookups count against
// consistency.
func (h *Chord) ConsistencyProbe(sample int, timeout float64) float64 {
	key := h.RandomKey()
	var results []*LookupResult
	seen := make(map[string]bool)
	live := h.LiveAddrs()
	if sample > len(live) {
		sample = len(live)
	}
	for len(results) < sample {
		from := live[h.rng.Intn(len(live))]
		if seen[from] {
			continue
		}
		seen[from] = true
		results = append(results, h.Lookup(from, key))
	}
	h.Run(timeout)
	counts := make(map[string]int)
	for _, lr := range results {
		if lr.Done {
			counts[lr.Owner]++
		}
	}
	best := 0
	for _, c := range counts {
		if c > best {
			best = c
		}
	}
	return float64(best) / float64(sample)
}

// CompletedLookups returns results that finished.
func (h *Chord) CompletedLookups() []*LookupResult {
	var out []*LookupResult
	for _, lr := range h.Results {
		if lr.Done {
			out = append(out, lr)
		}
	}
	return out
}
