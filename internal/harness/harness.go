// Package harness builds and measures Chord overlays for the
// evaluation (§5): static rings for Figure 3, churned rings for
// Figure 4, with the metrics the paper reports — lookup hop counts,
// lookup latency, per-node maintenance bandwidth, and Bamboo-style
// lookup consistency.
//
// The harness is a thin Chord-metrics layer over the public
// p2.Deployment API: node placement, spawn/kill/replace routing through
// the barrier control lane, churn scheduling, and per-address seed
// derivation all belong to the Deployment; the harness adds only the
// Chord-specific parts — landmark bootstrap facts, lookup issuance and
// watch taps, traffic classification, and ring ground truth.
//
// Everything runs in virtual time, deterministically, on a Simulated
// deployment of Opts.Shards parallel shards (1 = the sharded machinery
// on the driver goroutine — the determinism baseline). A P-shard run
// reports bit-identical metrics to the same seed at 1 shard
// (TestShardedDeterminism enforces it): all randomness that shapes an
// individual node derives from (Seed, address) alone, and the
// harness-level rng only drives workload choices made between Run
// calls (which node looks up which key).
package harness

import (
	"fmt"
	"math/rand"
	"os"
	"sort"
	"strconv"
	"sync"

	"p2"
	"p2/internal/chordref"
	"p2/internal/id"
	"p2/internal/overlays"
	"p2/internal/simnet"
	"p2/internal/tuple"
	"p2/internal/val"
)

// EnvShards is the environment variable CI uses to run the whole
// simulation suite at a chosen shard count: any NewChord whose Opts
// leave Shards at zero picks up its value.
const EnvShards = "P2_SIM_SHARDS"

// Opts configures a Chord network build.
type Opts struct {
	N           int     // initial population
	Seed        int64   // master seed
	JoinSpacing float64 // seconds between node starts (default 0.5)
	// JoinRamp staggers joins at a rate proportional to the current
	// population — 4% of the ring per virtual second, at most 20%
	// growth per stabilization round — instead of the fixed spacing,
	// with JoinSpacing as the per-join floor (the peak-rate cap). A
	// fixed spacing fast enough to build a 10k ring in reasonable
	// virtual time floods the first few dozen nodes with joins faster
	// than stabilization can integrate them, fragmenting the ring into
	// islands that only the landmark's 60s anti-entropy slowly merges;
	// ramping keeps every prefix of the build converged. Use
	// JoinDeadline for the time of the last scheduled join.
	JoinRamp   bool
	Defines    map[string]val.Value
	Net        *simnet.Config // nil = paper topology
	Unreliable bool           // fire-and-forget transport (ablation)
	// Transport overrides the deployment's transport tuning (nil =
	// defaults). Scale experiments use it to vary FlowIdleTTL and the
	// reliability knobs without re-plumbing every option.
	Transport *p2.TransportConfig
	// NoOptimizer disables the cost-based query optimizer, which the
	// harness otherwise enables with default tuning — the measurement
	// configuration, and the reason the sharded-determinism suite
	// exercises optimized plans and adaptive replans for free. Set it
	// for naive-plan baselines and ablation runs.
	NoOptimizer bool
	// Shards selects the parallel shard count: >= 1 is explicit, 0
	// defers to the P2_SIM_SHARDS environment variable (absent: 1).
	Shards int
	// KV layers the replicated key-value service (internal/kvs) onto
	// every node's plan, so workload drivers can issue PUT/GET ops
	// through the deployment's KV client.
	KV bool
}

func resolveShards(v int) int {
	if v >= 1 {
		return v
	}
	if v == 0 {
		if s := os.Getenv(EnvShards); s != "" {
			if n, err := strconv.Atoi(s); err == nil && n >= 1 {
				return n
			}
		}
	}
	return 1
}

// LookupResult records one issued lookup's fate.
type LookupResult struct {
	EventID   string
	Key       id.ID
	From      string
	Issued    float64
	Completed float64 // 0 if never
	Owner     string  // responding node's address
	Hops      int
	Done      bool
}

// Latency returns completion latency in seconds (or -1 if unfinished).
func (lr *LookupResult) Latency() float64 {
	if !lr.Done {
		return -1
	}
	return lr.Completed - lr.Issued
}

// Chord is a running Chord deployment under measurement.
type Chord struct {
	// D is the underlying simulated deployment; tests reach through it
	// for structural operations the harness does not wrap (Partition,
	// DomainOf, ...).
	D    *p2.Deployment
	Plan *p2.Plan

	opts      Opts
	rng       *rand.Rand
	created   []string // every address ever spawned, in creation order
	landmark  string
	nextID    int
	lookupSeq int

	pending map[string]*LookupResult
	Results []*LookupResult

	// tapMu guards measurement state mutated from watch and transport
	// taps, which fire concurrently on shard loops. All guarded updates
	// commute (counter increments), so the lock order never shows in
	// the metrics.
	tapMu       sync.Mutex
	lookupBytes int64
	maintBytes  int64

	joinDeadline float64
}

// NewChord builds (but does not yet run) a Chord network: nodes start
// staggered on the virtual clock — through the deployment's barrier
// control lane — and join through the first node.
func NewChord(opts Opts) *Chord {
	if opts.JoinSpacing <= 0 {
		opts.JoinSpacing = 0.5
	}
	dopts := []p2.Option{
		p2.WithSeed(opts.Seed),
		p2.WithShards(resolveShards(opts.Shards)),
	}
	if opts.Net != nil {
		dopts = append(dopts, p2.WithTopology(*opts.Net))
	}
	if opts.Transport != nil {
		tc := *opts.Transport
		tc.Unreliable = tc.Unreliable || opts.Unreliable
		dopts = append(dopts, p2.WithTransport(tc))
	} else if opts.Unreliable {
		tc := p2.DefaultTransportConfig()
		tc.Unreliable = true
		dopts = append(dopts, p2.WithTransport(tc))
	}
	if !opts.NoOptimizer {
		dopts = append(dopts, p2.WithOptimizer(p2.OptimizerConfig{}))
	}
	d, err := p2.NewDeployment(p2.Simulated, dopts...)
	if err != nil {
		panic(fmt.Sprintf("harness: deployment: %v", err))
	}
	plan := overlays.ChordPlan
	if opts.KV {
		plan = overlays.ChordKVPlan
	}
	h := &Chord{
		D:       d,
		Plan:    plan(opts.Defines),
		opts:    opts,
		rng:     rand.New(rand.NewSource(opts.Seed)),
		pending: make(map[string]*LookupResult),
	}
	at := 0.0
	for i := 0; i < opts.N; i++ {
		addr := h.nextAddr()
		if !opts.JoinRamp {
			// Exact multiplication, not accumulation: the fixed-spacing
			// schedule predates the ramp and every recorded baseline
			// depends on its event times staying bit-identical.
			at = float64(i) * opts.JoinSpacing
		}
		d.At(at, func() { h.spawn(addr) })
		h.joinDeadline = at
		if opts.JoinRamp {
			// 4%/s of the population joined so far, floored at the
			// spacing cap.
			if gap := 25.0 / float64(i+1); gap > opts.JoinSpacing {
				at += gap
			} else {
				at += opts.JoinSpacing
			}
		}
	}
	return h
}

// JoinDeadline is the virtual time of the last scheduled initial join —
// the earliest moment the full population exists. Settle windows in
// scale tests are measured from here.
func (h *Chord) JoinDeadline() float64 { return h.joinDeadline }

// Close releases deployment resources (shard worker goroutines). The
// harness must not be run afterwards.
func (h *Chord) Close() { h.D.Close() }

// Shards returns the shard count.
func (h *Chord) Shards() int { return h.D.Shards() }

// nextAddr mints the next node address. Driver only, so address
// assignment — and everything derived from it: domain, shard, per-node
// random streams — is deterministic.
func (h *Chord) nextAddr() string {
	addr := fmt.Sprintf("n%d:p2", h.nextID)
	h.nextID++
	return addr
}

// spawn creates and starts a node at addr; the first becomes the
// landmark, everyone else joins through it. Runs in driver context:
// between Run calls or at a barrier (initial stagger, churn
// replacement).
func (h *Chord) spawn(addr string) *p2.Handle {
	n, err := h.D.Spawn(addr, h.Plan)
	if err != nil {
		panic(fmt.Sprintf("harness: spawn %s: %v", addr, err))
	}
	h.created = append(h.created, addr)

	if h.landmark == "" {
		h.landmark = addr
		n.AddFact("landmark", val.Str(addr), val.Str("-"))
	} else {
		n.AddFact("landmark", val.Str(addr), val.Str(h.landmark))
	}
	n.AddFact("join", val.Str(addr), val.Str(addr+"!boot"))

	// Measurement taps. These run on the node's own loop — concurrently
	// with other shards' taps — so shared tallies go through tapMu and
	// everything else stays per-lookup state touched only by the
	// requester's shard.
	n.Watch("lookup", func(ev p2.WatchEvent) {
		if ev.Dir != p2.DirSent {
			return
		}
		eid := ev.Tuple.Field(3).AsStr()
		if lr, ok := h.pending[eid]; ok {
			h.tapMu.Lock()
			lr.Hops++
			h.tapMu.Unlock()
		}
	})
	n.Watch("lookupResults", func(ev p2.WatchEvent) {
		if ev.Dir != p2.DirReceived && ev.Dir != p2.DirDerived {
			return
		}
		// lookupResults(R, K, S, SI, E): only the requester counts it,
		// and only once.
		if ev.Node != ev.Tuple.Field(0).AsStr() {
			return
		}
		eid := ev.Tuple.Field(4).AsStr()
		lr, ok := h.pending[eid]
		if !ok || lr.Done {
			return
		}
		lr.Done = true
		lr.Completed = ev.Time
		lr.Owner = ev.Tuple.Field(3).AsStr()
	})
	n.Do(func(nd *p2.Node) {
		nd.Transport().OnSent(func(to string, t *tuple.Tuple, wire int, rexmit bool) {
			// Classify data bytes by tuple; TrafficBytes scales the
			// classes to the simulator's wire total so acks and datagram
			// headers (shared across a batch, often piggybacked) are
			// apportioned instead of guessed at.
			h.tapMu.Lock()
			switch t.Name() {
			case "lookup", "lookupResults":
				h.lookupBytes += int64(wire)
			default:
				h.maintBytes += int64(wire)
			}
			h.tapMu.Unlock()
		})
	})
	return n
}

// Spawn starts one additional node joining through the landmark — the
// late-join entry point for tests and interactive drivers. Call from
// the driver between Run invocations.
func (h *Chord) Spawn() *p2.Handle { return h.spawn(h.nextAddr()) }

// Node returns the live node at addr (nil if dead or unknown).
func (h *Chord) Node(addr string) *p2.Handle { return h.D.Node(addr) }

// LiveAddrs returns the addresses of running nodes in creation order —
// the deployment's live set.
func (h *Chord) LiveAddrs() []string { return h.D.Addrs() }

// PlacementMap returns every created node's shard assignment — the
// node→shard map cmd/p2sim dumps.
func (h *Chord) PlacementMap() map[string]int {
	out := make(map[string]int, len(h.created))
	for _, a := range h.created {
		out[a] = h.D.ShardOf(a)
	}
	return out
}

// Now returns the current virtual time.
func (h *Chord) Now() float64 { return h.D.Now() }

// Run advances virtual time by d seconds.
func (h *Chord) Run(d float64) { h.RunEvents(d) }

// RunEvents advances virtual time by d seconds and returns the number
// of events fired — the simulator-throughput gauge the benchmarks
// meter.
func (h *Chord) RunEvents(d float64) int { return h.D.Run(d) }

// Lookup issues one lookup for key from the given node and returns its
// result record (filled in as the simulation progresses).
func (h *Chord) Lookup(from string, key id.ID) *LookupResult {
	h.lookupSeq++
	eid := fmt.Sprintf("lk!%d", h.lookupSeq)
	lr := &LookupResult{
		EventID: eid,
		Key:     key,
		From:    from,
		Issued:  h.Now(),
	}
	h.pending[eid] = lr
	h.Results = append(h.Results, lr)
	h.D.Node(from).Inject(tuple.New("lookup",
		val.Str(from), val.MakeID(key), val.Str(from), val.Str(eid)))
	return lr
}

// RandomLiveAddr picks a uniformly random live node.
func (h *Chord) RandomLiveAddr() string {
	live := h.LiveAddrs()
	return live[h.rng.Intn(len(live))]
}

// RandomKey draws a uniform identifier.
func (h *Chord) RandomKey() id.ID { return id.Random(h.rng) }

// IdealOwner computes the ground-truth successor of key among live
// nodes — the node every consistent lookup should return. It delegates
// to chordref.Owner, the shared oracle, so the harness and the fault
// lab's differential checks can never drift apart.
func (h *Chord) IdealOwner(key id.ID) string {
	return chordref.Owner(key, h.LiveAddrs())
}

// RingCorrectness returns the fraction of live nodes whose bestSucc is
// the true next live node on the identifier ring — the convergence
// metric for static experiments.
func (h *Chord) RingCorrectness() float64 {
	live := h.LiveAddrs()
	if len(live) == 0 {
		return 0
	}
	type entry struct {
		nid  id.ID
		addr string
	}
	ring := make([]entry, 0, len(live))
	for _, a := range live {
		ring = append(ring, entry{id.Hash(a), a})
	}
	sort.Slice(ring, func(i, j int) bool { return ring[i].nid.Less(ring[j].nid) })
	ideal := make(map[string]string, len(ring))
	for i, e := range ring {
		ideal[e.addr] = ring[(i+1)%len(ring)].addr
	}
	good := 0
	for _, a := range live {
		rows := h.D.Node(a).Scan("bestSucc")
		if len(rows) == 1 && rows[0].Field(2).AsStr() == ideal[a] {
			good++
		}
	}
	return float64(good) / float64(len(live))
}

// TrafficBytes returns cumulative (lookupClass, maintenanceClass) bytes
// across all nodes since the last ResetTraffic. The per-class data
// bytes the transport tap classified are scaled up to the simulator's
// true wire total, so ack datagrams, UDP/IP headers, and per-frame
// batching overhead are distributed proportionally between the classes.
func (h *Chord) TrafficBytes() (lookup, maintenance int64) {
	classified := h.lookupBytes + h.maintBytes
	total := h.D.NetTotals().BytesSent
	if classified == 0 || total <= classified {
		return h.lookupBytes, h.maintBytes
	}
	scale := float64(total) / float64(classified)
	return int64(float64(h.lookupBytes) * scale), int64(float64(h.maintBytes) * scale)
}

// ResetTraffic zeroes the traffic classification counters and the
// simulator's raw counters.
func (h *Chord) ResetTraffic() {
	h.lookupBytes, h.maintBytes = 0, 0
	h.D.ResetNetStats()
}

// Kill crash-stops the node at addr — process-crash semantics for
// churn. Call from the driver between runs or from a barrier callback.
func (h *Chord) Kill(addr string) { h.D.Kill(addr) }

// StartChurn begins Bamboo-style churn: every node except the landmark
// lives for an exponentially distributed session with the given mean,
// then dies and is immediately replaced by a fresh node joining through
// the landmark, keeping the population constant. Scheduling, session
// derivation, and the kill itself belong to the deployment; the
// harness only provisions each replacement.
func (h *Chord) StartChurn(meanSession float64) {
	h.D.EnableChurn(meanSession, func(d *p2.Deployment, died string) *p2.Handle {
		return h.spawn(h.nextAddr())
	}, h.landmark)
}

// StopChurn cancels scheduled deaths.
func (h *Chord) StopChurn() { h.D.DisableChurn() }

// ConsistencyProbe issues the same key lookup from sample random live
// nodes at once and reports, after waiting timeout seconds, the
// fraction that agreed on the most popular owner — the consistency
// metric of Figure 4(ii), following Bamboo's methodology. The fraction
// is over all issued lookups, so unanswered lookups count against
// consistency.
func (h *Chord) ConsistencyProbe(sample int, timeout float64) float64 {
	key := h.RandomKey()
	var results []*LookupResult
	seen := make(map[string]bool)
	live := h.LiveAddrs()
	if sample > len(live) {
		sample = len(live)
	}
	for len(results) < sample {
		from := live[h.rng.Intn(len(live))]
		if seen[from] {
			continue
		}
		seen[from] = true
		results = append(results, h.Lookup(from, key))
	}
	h.Run(timeout)
	counts := make(map[string]int)
	for _, lr := range results {
		if lr.Done {
			counts[lr.Owner]++
		}
	}
	best := 0
	for _, c := range counts {
		if c > best {
			best = c
		}
	}
	return float64(best) / float64(sample)
}

// CompletedLookups returns results that finished.
func (h *Chord) CompletedLookups() []*LookupResult {
	var out []*LookupResult
	for _, lr := range h.Results {
		if lr.Done {
			out = append(out, lr)
		}
	}
	return out
}
