//go:build race

package harness

// raceEnabled mirrors the -race build tag. The 512-node determinism
// soak skips under the race detector — its 64-node sibling exercises
// the identical concurrent machinery at a tolerable cost — while every
// other test keeps full race coverage.
const raceEnabled = true
