package harness

import (
	"testing"
)

// TestPartitionDegradesAndHeals cuts a converged ring's network between
// two halves of the node population, verifies lookups crossing the cut
// fail while intra-partition state survives, then heals the cut and
// checks the ring re-converges.
func TestPartitionDegradesAndHeals(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second simulation")
	}
	h := NewChord(Opts{N: 10, Seed: 17, JoinSpacing: 1})
	h.Run(150)
	if h.RingCorrectness() < 1.0 {
		t.Fatal("not converged")
	}
	live := h.LiveAddrs()
	groupA, groupB := live[:5], live[5:]
	cut := func(on bool) {
		for _, a := range groupA {
			for _, b := range groupB {
				h.D.Partition(a, b, on)
			}
		}
	}
	cut(true)
	h.Run(120) // failure detectors fire, ring reorganizes per side

	// Lookups issued inside one partition must not resolve to owners on
	// the other side.
	crossOwners := 0
	for i := 0; i < 10; i++ {
		from := groupA[i%len(groupA)]
		lr := h.Lookup(from, h.RandomKey())
		h.Run(12)
		if lr.Done {
			for _, b := range groupB {
				if lr.Owner == b {
					crossOwners++
				}
			}
		}
	}
	if crossOwners > 0 {
		t.Fatalf("%d lookups resolved across the partition", crossOwners)
	}

	cut(false)
	// Healing requires re-join (partition-side rings must re-merge);
	// C6/C7 re-join through the landmark plus stabilization gossip do
	// this within a few cycles.
	h.Run(300)
	if rc := h.RingCorrectness(); rc < 0.8 {
		t.Fatalf("ring correctness after heal = %.2f", rc)
	}
	// Lookups work across the former cut again.
	done := 0
	for i := 0; i < 10; i++ {
		lr := h.Lookup(h.RandomLiveAddr(), h.RandomKey())
		h.Run(12)
		if lr.Done {
			done++
		}
	}
	if done < 8 {
		t.Fatalf("post-heal lookups completed %d/10", done)
	}
}
