package id

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFromUint64RoundTrip(t *testing.T) {
	cases := []uint64{0, 1, 42, 1 << 31, 1<<63 + 12345, ^uint64(0)}
	for _, v := range cases {
		if got := FromUint64(v).Uint64(); got != v {
			t.Errorf("FromUint64(%d).Uint64() = %d", v, got)
		}
	}
}

func TestFromBytesRoundTrip(t *testing.T) {
	x := Hash("node:10.0.0.1:1234")
	y := FromBytes(x.ToBytes())
	if x != y {
		t.Fatalf("round trip mismatch: %v vs %v", x, y)
	}
}

func TestFromBytesShortAndLong(t *testing.T) {
	if got := FromBytes([]byte{0x01, 0x02}); got.Uint64() != 0x0102 {
		t.Errorf("short input = %v", got)
	}
	long := make([]byte, 25)
	long[24] = 7 // low byte
	if got := FromBytes(long); got.Uint64() != 7 {
		t.Errorf("long input = %v", got)
	}
}

func TestFromInt64Negative(t *testing.T) {
	// -1 mod 2^160 is all ones.
	m1 := FromInt64(-1)
	if m1.Add(One) != Zero {
		t.Errorf("FromInt64(-1) + 1 = %v, want 0", m1.Add(One))
	}
	if FromInt64(5) != FromUint64(5) {
		t.Error("FromInt64(5) != FromUint64(5)")
	}
}

func TestAddSubInverse(t *testing.T) {
	f := func(a, b [5]uint32) bool {
		x, y := ID(a), ID(b)
		return x.Add(y).Sub(y) == x && x.Sub(y).Add(y) == x
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAddCommutativeAssociative(t *testing.T) {
	comm := func(a, b [5]uint32) bool {
		x, y := ID(a), ID(b)
		return x.Add(y) == y.Add(x)
	}
	if err := quick.Check(comm, nil); err != nil {
		t.Error(err)
	}
	assoc := func(a, b, c [5]uint32) bool {
		x, y, z := ID(a), ID(b), ID(c)
		return x.Add(y).Add(z) == x.Add(y.Add(z))
	}
	if err := quick.Check(assoc, nil); err != nil {
		t.Error(err)
	}
}

func TestAddCarryPropagation(t *testing.T) {
	allOnes := ID{^uint32(0), ^uint32(0), ^uint32(0), ^uint32(0), ^uint32(0)}
	if got := allOnes.Add(One); got != Zero {
		t.Errorf("(2^160-1)+1 = %v, want 0", got)
	}
	if got := Zero.Sub(One); got != allOnes {
		t.Errorf("0-1 = %v, want all ones", got)
	}
}

func TestShl(t *testing.T) {
	for i := uint(0); i < 64; i++ {
		want := FromUint64(1 << i)
		if got := One.Shl(i); got != want {
			t.Fatalf("1<<%d = %v, want %v", i, got, want)
		}
	}
	if Pow2(159).Shl(1) != Zero {
		t.Error("2^159 << 1 should overflow to zero")
	}
	if One.Shl(160) != Zero {
		t.Error("shift by 160 should be zero")
	}
	// Cross-word shift.
	if got, want := One.Shl(33), FromUint64(1<<33); got != want {
		t.Errorf("1<<33 = %v, want %v", got, want)
	}
}

func TestShrInverseOfShl(t *testing.T) {
	f := func(a [5]uint32, nRaw uint8) bool {
		n := uint(nRaw) % 160
		x := ID(a)
		// Shifting left then right loses the high n bits; verify the
		// low bits survive by masking.
		back := x.Shl(n).Shr(n)
		mask := Zero.Sub(One).Shr(n) // 2^(160-n) - 1
		expect := and(x, mask)
		return back == expect
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func and(a, b ID) ID {
	var z ID
	for i := range z {
		z[i] = a[i] & b[i]
	}
	return z
}

func TestCmpMatchesSubSign(t *testing.T) {
	f := func(a, b [5]uint32) bool {
		x, y := ID(a), ID(b)
		c := x.Cmp(y)
		switch {
		case x == y:
			return c == 0
		case c == -1:
			return y.Cmp(x) == 1
		case c == 1:
			return y.Cmp(x) == -1
		}
		return false
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBetweenBasics(t *testing.T) {
	a, b, k := FromUint64(10), FromUint64(20), FromUint64(15)
	if !BetweenOO(k, a, b) {
		t.Error("15 in (10,20) expected")
	}
	if BetweenOO(a, a, b) || BetweenOO(b, a, b) {
		t.Error("endpoints excluded from open interval")
	}
	if !BetweenOC(b, a, b) {
		t.Error("20 in (10,20] expected")
	}
	if !BetweenCO(a, a, b) {
		t.Error("10 in [10,20) expected")
	}
	if !BetweenCC(a, a, b) || !BetweenCC(b, a, b) {
		t.Error("endpoints included in closed interval")
	}
}

func TestBetweenWrapAround(t *testing.T) {
	// Interval that wraps through zero: (2^160-5, 10)
	a := Zero.SubUint64(5)
	b := FromUint64(10)
	if !BetweenOO(Zero, a, b) {
		t.Error("0 should lie in wrapped interval")
	}
	if !BetweenOO(FromUint64(3), a, b) {
		t.Error("3 should lie in wrapped interval")
	}
	if !BetweenOO(Zero.SubUint64(2), a, b) {
		t.Error("2^160-2 should lie in wrapped interval")
	}
	if BetweenOO(FromUint64(100), a, b) {
		t.Error("100 outside wrapped interval")
	}
}

func TestBetweenDegenerate(t *testing.T) {
	n := FromUint64(77)
	k := FromUint64(5)
	// (n, n) is the whole ring minus n itself — the Chord single-node case.
	if !BetweenOO(k, n, n) {
		t.Error("(n,n) should contain everything but n")
	}
	if BetweenOO(n, n, n) {
		t.Error("(n,n) should exclude n")
	}
	// (n, n] wraps the entire ring.
	if !BetweenOC(n, n, n) || !BetweenOC(k, n, n) {
		t.Error("(n,n] should contain everything")
	}
}

func TestBetweenConsistency(t *testing.T) {
	// Property: for a != b, OO + membership of endpoints = CC.
	f := func(ka, aa, ba [5]uint32) bool {
		k, a, b := ID(ka), ID(aa), ID(ba)
		if a == b {
			return true
		}
		cc := BetweenCC(k, a, b)
		expanded := BetweenOO(k, a, b) || k == a || k == b
		return cc == expanded
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBetweenComplement(t *testing.T) {
	// For distinct a, b and k not an endpoint: k in (a,b) xor k in (b,a).
	f := func(ka, aa, ba [5]uint32) bool {
		k, a, b := ID(ka), ID(aa), ID(ba)
		if a == b || k == a || k == b {
			return true
		}
		return BetweenOO(k, a, b) != BetweenOO(k, b, a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDist(t *testing.T) {
	a, b := FromUint64(100), FromUint64(40)
	if got := b.Dist(a); got != FromUint64(60) {
		t.Errorf("dist(40,100) = %v", got)
	}
	// Wrapping distance.
	if got := a.Dist(b); got != Zero.SubUint64(60) {
		t.Errorf("dist(100,40) = %v", got)
	}
}

func TestHashDeterministic(t *testing.T) {
	if Hash("a") != Hash("a") {
		t.Error("hash must be deterministic")
	}
	if Hash("a") == Hash("b") {
		t.Error("distinct inputs should hash differently")
	}
}

func TestParseString(t *testing.T) {
	x := Hash("parse me")
	parsed, err := Parse(x.String())
	if err != nil {
		t.Fatal(err)
	}
	if parsed != x {
		t.Errorf("parse(%s) = %v", x, parsed)
	}
	if _, err := Parse(""); err == nil {
		t.Error("empty parse should fail")
	}
	if _, err := Parse("zz"); err == nil {
		t.Error("non-hex parse should fail")
	}
	// Odd-length and short strings are accepted.
	short, err := Parse("f")
	if err != nil || short != FromUint64(15) {
		t.Errorf("Parse(f) = %v, %v", short, err)
	}
}

func TestRandomCoversWords(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	seen := false
	for i := 0; i < 10; i++ {
		x := Random(r)
		if x[0] != 0 {
			seen = true
		}
	}
	if !seen {
		t.Error("random IDs never populated the high word")
	}
}

func TestShortString(t *testing.T) {
	x := Hash("short")
	if len(x.Short()) != 8 {
		t.Errorf("Short() = %q", x.Short())
	}
}

func BenchmarkAdd(b *testing.B) {
	x, y := Hash("x"), Hash("y")
	for i := 0; i < b.N; i++ {
		x = x.Add(y)
	}
}

func BenchmarkBetweenOO(b *testing.B) {
	k, lo, hi := Hash("k"), Hash("lo"), Hash("hi")
	for i := 0; i < b.N; i++ {
		BetweenOO(k, lo, hi)
	}
}
