// Package id implements 160-bit identifiers on the Chord ring.
//
// Identifiers are unsigned 160-bit integers with arithmetic performed
// modulo 2^160. The package provides the operations OverLog programs
// need: addition, subtraction, left shift (for finger targets N + 2^i),
// total ordering, and circular-interval membership with every
// open/closed bound combination, which is how Chord expresses
// "K in (N, S]" on the identifier circle.
package id

import (
	"crypto/sha1"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"math/rand"
)

// Bits is the identifier width in bits.
const Bits = 160

// Bytes is the identifier width in bytes.
const Bytes = Bits / 8

// ID is a 160-bit unsigned integer, stored big-endian: word 0 holds the
// most significant 32 bits. Arithmetic wraps modulo 2^160.
type ID [5]uint32

// Zero is the additive identity.
var Zero ID

// One is the multiplicative identity.
var One = ID{0, 0, 0, 0, 1}

// FromBytes builds an ID from up to 20 big-endian bytes. Shorter input is
// zero-extended on the left; longer input keeps the low-order 20 bytes.
func FromBytes(b []byte) ID {
	if len(b) > Bytes {
		b = b[len(b)-Bytes:]
	}
	var buf [Bytes]byte
	copy(buf[Bytes-len(b):], b)
	var x ID
	for i := 0; i < 5; i++ {
		x[i] = binary.BigEndian.Uint32(buf[i*4 : i*4+4])
	}
	return x
}

// FromUint64 builds an ID from a 64-bit unsigned integer.
func FromUint64(v uint64) ID {
	return ID{0, 0, 0, uint32(v >> 32), uint32(v)}
}

// FromInt64 builds an ID from a signed 64-bit integer. Negative values
// wrap modulo 2^160 (two's-complement sign extension).
func FromInt64(v int64) ID {
	if v >= 0 {
		return FromUint64(uint64(v))
	}
	u := uint64(v)
	return ID{^uint32(0), ^uint32(0), ^uint32(0), uint32(u >> 32), uint32(u)}
}

// Hash returns the SHA-1 of s as an ID, the way Chord derives node
// identifiers from addresses and keys from names.
func Hash(s string) ID {
	sum := sha1.Sum([]byte(s))
	return FromBytes(sum[:])
}

// Random returns a uniformly random ID drawn from r.
func Random(r *rand.Rand) ID {
	var x ID
	for i := range x {
		x[i] = r.Uint32()
	}
	return x
}

// ToBytes returns the big-endian 20-byte representation.
func (x ID) ToBytes() []byte {
	b := make([]byte, Bytes)
	for i := 0; i < 5; i++ {
		binary.BigEndian.PutUint32(b[i*4:i*4+4], x[i])
	}
	return b
}

// PutBytes writes the big-endian representation into b — the
// allocation-free form of ToBytes for callers rendering into a stack
// buffer.
func (x ID) PutBytes(b *[Bytes]byte) {
	for i := 0; i < 5; i++ {
		binary.BigEndian.PutUint32(b[i*4:i*4+4], x[i])
	}
}

// FromString is FromBytes over string storage, without the []byte
// conversion allocation — for value payloads that keep IDs rendered as
// 20-byte strings.
func FromString(s string) ID {
	if len(s) != Bytes {
		return FromBytes([]byte(s))
	}
	var x ID
	for i := 0; i < 5; i++ {
		x[i] = uint32(s[i*4])<<24 | uint32(s[i*4+1])<<16 |
			uint32(s[i*4+2])<<8 | uint32(s[i*4+3])
	}
	return x
}

// Uint64 returns the low 64 bits.
func (x ID) Uint64() uint64 {
	return uint64(x[3])<<32 | uint64(x[4])
}

// IsZero reports whether x == 0.
func (x ID) IsZero() bool {
	return x == Zero
}

// Cmp compares x and y as unsigned integers: -1 if x < y, 0 if equal,
// +1 if x > y.
func (x ID) Cmp(y ID) int {
	for i := 0; i < 5; i++ {
		if x[i] < y[i] {
			return -1
		}
		if x[i] > y[i] {
			return 1
		}
	}
	return 0
}

// Less reports whether x < y as unsigned integers.
func (x ID) Less(y ID) bool { return x.Cmp(y) < 0 }

// Add returns x + y mod 2^160.
func (x ID) Add(y ID) ID {
	var z ID
	var carry uint64
	for i := 4; i >= 0; i-- {
		s := uint64(x[i]) + uint64(y[i]) + carry
		z[i] = uint32(s)
		carry = s >> 32
	}
	return z
}

// Sub returns x - y mod 2^160.
func (x ID) Sub(y ID) ID {
	var z ID
	var borrow uint64
	for i := 4; i >= 0; i-- {
		d := uint64(x[i]) - uint64(y[i]) - borrow
		z[i] = uint32(d)
		borrow = (d >> 32) & 1
	}
	return z
}

// AddUint64 returns x + v mod 2^160.
func (x ID) AddUint64(v uint64) ID { return x.Add(FromUint64(v)) }

// SubUint64 returns x - v mod 2^160.
func (x ID) SubUint64(v uint64) ID { return x.Sub(FromUint64(v)) }

// Shl returns x << n mod 2^160. Shifting by 160 or more yields zero.
func (x ID) Shl(n uint) ID {
	if n >= Bits {
		return Zero
	}
	wordShift := int(n / 32)
	bitShift := n % 32
	var z ID
	for i := 0; i < 5; i++ {
		src := i + wordShift
		if src > 4 {
			continue
		}
		z[i] = x[src] << bitShift
		if bitShift > 0 && src+1 <= 4 {
			z[i] |= x[src+1] >> (32 - bitShift)
		}
	}
	return z
}

// Shr returns x >> n. Shifting by 160 or more yields zero.
func (x ID) Shr(n uint) ID {
	if n >= Bits {
		return Zero
	}
	wordShift := int(n / 32)
	bitShift := n % 32
	var z ID
	for i := 4; i >= 0; i-- {
		src := i - wordShift
		if src < 0 {
			continue
		}
		z[i] = x[src] >> bitShift
		if bitShift > 0 && src-1 >= 0 {
			z[i] |= x[src-1] << (32 - bitShift)
		}
	}
	return z
}

// Pow2 returns 2^n mod 2^160 (zero when n >= 160).
func Pow2(n uint) ID { return One.Shl(n) }

// Dist returns the clockwise distance from x to y on the ring:
// (y - x) mod 2^160.
func (x ID) Dist(y ID) ID { return y.Sub(x) }

// BetweenOO reports whether k lies in the open circular interval (a, b).
// When a == b the interval is the whole ring minus {a}, matching Chord
// convention (a single node's (n, n) interval covers everything else).
func BetweenOO(k, a, b ID) bool {
	if a == b {
		return k != a
	}
	// Clockwise distances from a: k is inside iff dist(a,k) < dist(a,b),
	// excluding k == a.
	if k == a {
		return false
	}
	return a.Dist(k).Less(a.Dist(b))
}

// BetweenOC reports whether k lies in the half-open interval (a, b].
func BetweenOC(k, a, b ID) bool {
	if a == b {
		return true // (a, a] wraps the whole ring including a
	}
	if k == b {
		return true
	}
	return BetweenOO(k, a, b)
}

// BetweenCO reports whether k lies in the half-open interval [a, b).
func BetweenCO(k, a, b ID) bool {
	if a == b {
		return true
	}
	if k == a {
		return true
	}
	return BetweenOO(k, a, b)
}

// BetweenCC reports whether k lies in the closed interval [a, b].
func BetweenCC(k, a, b ID) bool {
	if k == a || k == b {
		return true
	}
	return BetweenOO(k, a, b)
}

// String renders the ID as 40 lowercase hex digits.
func (x ID) String() string {
	return hex.EncodeToString(x.ToBytes())
}

// Short renders the first 8 hex digits, handy in logs.
func (x ID) Short() string {
	return x.String()[:8]
}

// Parse decodes a hex string (with or without leading zeros) into an ID.
func Parse(s string) (ID, error) {
	if len(s) == 0 || len(s) > 2*Bytes {
		return Zero, fmt.Errorf("id: cannot parse %q: length %d", s, len(s))
	}
	if len(s)%2 == 1 {
		s = "0" + s
	}
	b, err := hex.DecodeString(s)
	if err != nil {
		return Zero, fmt.Errorf("id: cannot parse %q: %v", s, err)
	}
	return FromBytes(b), nil
}
