package dataflow

import (
	"bytes"

	"p2/internal/pel"
	"p2/internal/table"
	"p2/internal/tuple"
	"p2/internal/val"
)

// The relational elements below are the database half of P2 (§3.4):
// equijoins of a stream against a table, PEL-driven selections and
// projections, aggregations, and the bridge elements that move tuples
// in and out of stored tables. They are push elements that may emit
// zero or more tuples downstream per input.

// Join is the stream×table equijoin at the core of OverLog execution
// (§2.5). For each pushed tuple it looks up matches in the table's
// secondary index and emits one concatenated tuple per match:
// fields(input) ++ fields(match), under the configured output name.
//
// The probe is allocation-free beyond the emitted tuples: the index
// handle is resolved once at construction, the probe key renders into a
// reusable scratch buffer, and matches are visited in place via
// Index.Each rather than collected into a result slice.
type Join struct {
	Base
	tbl       *table.Table
	ix        *table.Index
	streamKey []int // key positions in the incoming tuple
	keyBuf    []byte
	outName   string

	// Fused selection predicates and trailing assignments (see
	// AddFilter / AddAssigns).
	filters []*pel.Program
	assigns []*pel.Program
	vm      *pel.VM
	env     *pel.Env

	probes *int64      // optional probe counter (see CountProbes)
	share  *ProbeCache // optional shared match snapshot (see Share)
}

// NewJoin builds an equijoin element and resolves the table's index
// handle, creating the index if needed.
func NewJoin(name string, tbl *table.Table, streamKey, tableKey []int, outName string) *Join {
	return &Join{
		Base:      NewBase(name, 1, 0),
		tbl:       tbl,
		ix:        tbl.EnsureIndex(tableKey),
		streamKey: append([]int(nil), streamKey...),
		outName:   outName,
	}
}

// CountProbes points the element at a shared counter, bumped once per
// index probe and once per candidate row examined. Probes answered
// from a shared cache count nothing — that is the work the optimizer's
// common-subexpression sharing eliminates, and the counter is how
// BenchmarkOptimizedSecond observes it.
func (j *Join) CountProbes(p *int64) { j.probes = p }

// ProbeCache shares one probe's raw match snapshot between joins on
// the same (table, key): when several strands triggered by the same
// event open with an identical probe, the first fills the cache and
// the rest reuse it. The snapshot holds unfiltered candidate rows —
// each strand still applies its own fused filters and assignments — so
// sharing is purely an execution-cost optimization, invisible in the
// derived tuples.
//
// Validity is exact, not heuristic: a hit requires the same event
// tuple (pointer identity — selections pass tuples through untouched),
// the same rendered key bytes, and the same table content version
// (table.Version advances on every row add/remove and never on pure
// TTL refreshes). Any synchronous write to the table between two
// strands of the same event therefore forces a refill.
type ProbeCache struct {
	event   *tuple.Tuple
	key     []byte
	ver     uint64
	matches []*tuple.Tuple
	valid   bool
}

// Share points the join at a cache shared with its prefix-identical
// peers. The engine only wires caches across joins probing the same
// table with the same key positions, on strands that cannot write that
// table synchronously while they run.
func (j *Join) Share(c *ProbeCache) { j.share = c }

// AddFilter fuses a selection predicate into the probe. The program is
// evaluated over the virtual concatenation input++match (the same
// binding environment a downstream Select would see); matches that fail
// — by evaluating false or erroring — are skipped before the
// concatenated tuple is built. OverLog join bodies are dominated by
// range predicates that keep one match in many (Chord's "K in (N, S]"
// finger walks), so filtering during the probe removes most of a
// strand's tuple construction. Semantics are identical to a Select
// element placed immediately after the join.
func (j *Join) AddFilter(prog *pel.Program, env *pel.Env) {
	if j.vm == nil {
		j.vm = pel.NewVM()
		j.env = env
	}
	j.filters = append(j.filters, prog)
}

// AddAssigns fuses a run of trailing assignments into the emit: the
// concatenated tuple is built once at its final arity and each program
// fills the next slot, exactly as a downstream MultiAssign would —
// minus that element's second tuple construction per match.
func (j *Join) AddAssigns(progs []*pel.Program, env *pel.Env) {
	if j.vm == nil {
		j.vm = pel.NewVM()
		j.env = env
	}
	j.assigns = append(j.assigns, progs...)
}

// Push probes the table and emits all surviving matches downstream.
// Strands run one at a time to completion and downstream
// re-derivations are deferred, so Push is never re-entered while active
// and the scratch key buffer is safe to reuse.
func (j *Join) Push(_ int, t *tuple.Tuple, poke Poke) bool {
	j.keyBuf = t.AppendKey(j.keyBuf[:0], j.streamKey)
	na := t.Arity()
	ok := true
	if c := j.share; c != nil {
		if !c.valid || c.event != t || c.ver != j.tbl.Version() || !bytes.Equal(c.key, j.keyBuf) {
			c.valid = false
			c.event = t
			c.key = append(c.key[:0], j.keyBuf...)
			c.matches = c.matches[:0]
			if j.probes != nil {
				*j.probes++
			}
			j.ix.Each(j.keyBuf, func(m *tuple.Tuple) bool {
				if j.probes != nil {
					*j.probes++
				}
				c.matches = append(c.matches, m)
				return true
			})
			// Each's own expiry pass may remove rows; stamp the version
			// after the fill so the snapshot is exact as of completion.
			c.ver = j.tbl.Version()
			c.valid = true
		}
		// The snapshot stays exact through the emit loop: the clock is
		// frozen while a strand runs (nothing new can expire after the
		// fill's expiry pass), and the engine never shares a cache with
		// a strand that writes the probed table synchronously.
		for _, m := range c.matches {
			if !j.emitMatch(t, na, m, poke) {
				ok = false
			}
		}
		return ok
	}
	if j.probes != nil {
		*j.probes++
	}
	j.ix.Each(j.keyBuf, func(m *tuple.Tuple) bool {
		if j.probes != nil {
			*j.probes++
		}
		if !j.emitMatch(t, na, m, poke) {
			ok = false
		}
		return true
	})
	return ok
}

// emitMatch runs the fused filters and assignments against one
// candidate row and pushes the concatenated tuple. It returns false
// only when a downstream element failed; filtered or underivable
// matches are simply skipped.
func (j *Join) emitMatch(t *tuple.Tuple, na int, m *tuple.Tuple, poke Poke) bool {
	for _, f := range j.filters {
		v, err := j.vm.EvalJoined(f, t, m, j.env)
		if err != nil || !v.AsBool() {
			return true // match filtered out
		}
	}
	base := na + m.Arity()
	fields := make([]val.Value, base+len(j.assigns))
	copy(fields, t.Fields())
	copy(fields[na:], m.Fields())
	out := tuple.New(j.outName, fields...)
	for i, prog := range j.assigns {
		// Each assignment sees the fields earlier ones filled; the
		// tuple escapes only after every slot is in place.
		v, err := j.vm.Eval(prog, out, j.env)
		if err != nil {
			return true // underivable match dropped, as Assign would
		}
		fields[base+i] = v
	}
	return j.PushOut(0, out, poke)
}

// NotJoin is the antijoin used for "not pred(...)" bodies: the input
// passes through unchanged iff the table contains no match.
type NotJoin struct {
	Base
	ix        *table.Index
	streamKey []int
	keyBuf    []byte
	probes    *int64
}

// NewNotJoin builds an antijoin element.
func NewNotJoin(name string, tbl *table.Table, streamKey, tableKey []int) *NotJoin {
	return &NotJoin{
		Base:      NewBase(name, 1, 0),
		ix:        tbl.EnsureIndex(tableKey),
		streamKey: append([]int(nil), streamKey...),
	}
}

// CountProbes points the element at a shared counter bumped once per
// existence probe.
func (j *NotJoin) CountProbes(p *int64) { j.probes = p }

// Push forwards t iff the table has no matching row.
func (j *NotJoin) Push(_ int, t *tuple.Tuple, poke Poke) bool {
	j.keyBuf = t.AppendKey(j.keyBuf[:0], j.streamKey)
	if j.probes != nil {
		*j.probes++
	}
	if j.ix.Contains(j.keyBuf) {
		return true // match exists: tuple eliminated
	}
	return j.PushOut(0, t, poke)
}

// Select filters tuples through a boolean PEL program.
type Select struct {
	Base
	prog *pel.Program
	vm   *pel.VM
	env  *pel.Env
}

// NewSelect builds a PEL-parameterized filter.
func NewSelect(name string, prog *pel.Program, env *pel.Env) *Select {
	return &Select{Base: NewBase(name, 1, 0), prog: prog, vm: pel.NewVM(), env: env}
}

// Push forwards t iff the program evaluates truthy. Evaluation errors
// drop the tuple — a rule body that fails to evaluate derives nothing.
func (s *Select) Push(_ int, t *tuple.Tuple, poke Poke) bool {
	v, err := s.vm.Eval(s.prog, t, s.env)
	if err != nil || !v.AsBool() {
		return true
	}
	return s.PushOut(0, t, poke)
}

// Assign evaluates a PEL expression and appends the result as a new
// trailing field — how "X := expr" extends a rule's binding environment.
type Assign struct {
	Base
	prog *pel.Program
	vm   *pel.VM
	env  *pel.Env
}

// NewAssign builds an appending evaluator.
func NewAssign(name string, prog *pel.Program, env *pel.Env) *Assign {
	return &Assign{Base: NewBase(name, 1, 0), prog: prog, vm: pel.NewVM(), env: env}
}

// Push emits t extended with the evaluated value. Errors drop the tuple.
func (a *Assign) Push(_ int, t *tuple.Tuple, poke Poke) bool {
	v, err := a.vm.Eval(a.prog, t, a.env)
	if err != nil {
		return true
	}
	fields := make([]val.Value, 0, t.Arity()+1)
	fields = append(fields, t.Fields()...)
	fields = append(fields, v)
	return a.PushOut(0, tuple.New(t.Name(), fields...), poke)
}

// MultiAssign fuses a run of consecutive assignments into one element:
// where a chain of k Assigns would build k intermediate tuples of
// growing arity, MultiAssign extends the binding environment once.
// OverLog rule bodies routinely carry several ":=" steps (Chord's
// lookup rules compute hashes, ranges, and candidate successors in
// sequence), so the fusion removes most of a strand's intermediate
// tuple construction. The engine's strand builder performs the fusion.
type MultiAssign struct {
	Base
	progs []*pel.Program
	vm    *pel.VM
	env   *pel.Env
}

// NewMultiAssign builds a fused run of appending evaluators; each
// program appends one trailing field, in order.
func NewMultiAssign(name string, progs []*pel.Program, env *pel.Env) *MultiAssign {
	return &MultiAssign{Base: NewBase(name, 1, 0), progs: progs, vm: pel.NewVM(), env: env}
}

// Push emits t extended with every evaluated value. Later programs see
// the fields earlier ones appended, exactly as the unfused chain would:
// the output tuple is built first (unset trailing fields read as Null)
// and each evaluation fills the next slot before the following program
// runs. The tuple does not escape until every field is in place, so the
// in-place writes never touch a tuple another element can observe. Any
// evaluation error drops the tuple.
func (a *MultiAssign) Push(_ int, t *tuple.Tuple, poke Poke) bool {
	n := t.Arity()
	fields := make([]val.Value, n+len(a.progs))
	copy(fields, t.Fields())
	out := tuple.New(t.Name(), fields...)
	for i, prog := range a.progs {
		v, err := a.vm.Eval(prog, out, a.env)
		if err != nil {
			return true
		}
		fields[n+i] = v
	}
	return a.PushOut(0, out, poke)
}

// Project constructs the rule-head tuple: one PEL program per output
// field, evaluated against the incoming (joined, extended) tuple.
type Project struct {
	Base
	outName string
	progs   []*pel.Program
	vm      *pel.VM
	env     *pel.Env
}

// NewProject builds a head constructor.
func NewProject(name, outName string, progs []*pel.Program, env *pel.Env) *Project {
	return &Project{Base: NewBase(name, 1, 0), outName: outName, progs: progs, vm: pel.NewVM(), env: env}
}

// Push emits the projected head tuple.
func (p *Project) Push(_ int, t *tuple.Tuple, poke Poke) bool {
	fields := make([]val.Value, len(p.progs))
	for i, prog := range p.progs {
		v, err := p.vm.Eval(prog, t, p.env)
		if err != nil {
			return true // head underivable; drop
		}
		fields[i] = v
	}
	return p.PushOut(0, tuple.New(p.outName, fields...), poke)
}

// AggFunc names an aggregate function.
type AggFunc int

// The aggregate functions OverLog supports in rule heads.
const (
	AggMin AggFunc = iota
	AggMax
	AggCount
	AggSum
	AggAvg
)

// String returns the OverLog spelling.
func (f AggFunc) String() string {
	switch f {
	case AggMin:
		return "min"
	case AggMax:
		return "max"
	case AggCount:
		return "count"
	case AggSum:
		return "sum"
	case AggAvg:
		return "avg"
	}
	return "agg?"
}

// AggStream performs per-event aggregation for rules whose head carries
// an aggregate (e.g. L2's min<D>, Narada P0's max<R>).
//
// Because a strand processes exactly one event per flush, and every
// non-aggregate head field is bound by the triggering event, there is
// exactly one group per event. Two semantics apply, matching P2:
//
//   - min/max are EXEMPLAR aggregates: Flush emits the entire working
//     tuple of the row that achieved the extremum. Non-event-bound head
//     fields (like the member address Y in P0's "pick the member with
//     the max random number") therefore come from the winning row.
//   - count/sum/avg are accumulators: Flush emits the event tuple with
//     the aggregate value appended. count emits even when zero rows
//     arrived — Narada's R5/R6 "membersFound ... C == 0" idiom; sum and
//     avg emit only when at least one row arrived.
type AggStream struct {
	Base
	fn     AggFunc
	aggPos int // aggregated field position in the working tuple; -1 for count<*>

	count   int64
	sum     float64
	best    *tuple.Tuple
	bestVal val.Value
}

// NewAggStream builds a per-event aggregator.
func NewAggStream(name string, fn AggFunc, aggPos int) *AggStream {
	return &AggStream{Base: NewBase(name, 1, 0), fn: fn, aggPos: aggPos}
}

// Push accumulates one working tuple.
func (a *AggStream) Push(_ int, t *tuple.Tuple, _ Poke) bool {
	a.count++
	switch a.fn {
	case AggMin:
		v := t.Field(a.aggPos)
		if a.best == nil || v.Cmp(a.bestVal) < 0 {
			a.best, a.bestVal = t, v
		}
	case AggMax:
		v := t.Field(a.aggPos)
		if a.best == nil || v.Cmp(a.bestVal) > 0 {
			a.best, a.bestVal = t, v
		}
	case AggSum, AggAvg:
		a.sum += t.Field(a.aggPos).AsFloat()
	}
	return true
}

// Flush emits the aggregate result and resets for the next event.
// For min/max the winning working tuple flows downstream unchanged (its
// aggPos field already holds the extremum). For count/sum/avg the event
// tuple flows with the aggregate appended as a trailing field.
func (a *AggStream) Flush(event *tuple.Tuple, poke Poke) {
	defer a.reset()
	switch a.fn {
	case AggMin, AggMax:
		if a.best != nil {
			a.PushOut(0, a.best, poke)
		}
	case AggCount:
		if event == nil {
			return
		}
		fields := make([]val.Value, 0, event.Arity()+1)
		fields = append(fields, event.Fields()...)
		fields = append(fields, val.Int(a.count))
		a.PushOut(0, tuple.New(event.Name(), fields...), poke)
	case AggSum, AggAvg:
		if event == nil || a.count == 0 {
			return
		}
		v := a.sum
		if a.fn == AggAvg {
			v /= float64(a.count)
		}
		fields := make([]val.Value, 0, event.Arity()+1)
		fields = append(fields, event.Fields()...)
		fields = append(fields, val.Float(v))
		a.PushOut(0, tuple.New(event.Name(), fields...), poke)
	}
}

func (a *AggStream) reset() {
	a.count, a.sum, a.best, a.bestVal = 0, 0, nil, val.Null
}

// aggState accumulates one table-aggregate group.
type aggState struct {
	group []val.Value
	best  val.Value
	sum   float64
	count int64
}

func (s *aggState) add(fn AggFunc, v val.Value) {
	s.count++
	switch fn {
	case AggMin:
		if s.best.IsNull() || v.Cmp(s.best) < 0 {
			s.best = v
		}
	case AggMax:
		if s.best.IsNull() || v.Cmp(s.best) > 0 {
			s.best = v
		}
	case AggSum, AggAvg:
		s.sum += v.AsFloat()
	}
}

// remove retracts one accumulated value (COUNT/SUM/AVG only; exemplar
// aggregates are recomputed from the table, never retracted).
func (s *aggState) remove(fn AggFunc, v val.Value) {
	s.count--
	if fn == AggSum || fn == AggAvg {
		s.sum -= v.AsFloat()
	}
}

func (s *aggState) result(fn AggFunc) val.Value {
	switch fn {
	case AggCount:
		return val.Int(s.count)
	case AggSum:
		return val.Float(s.sum)
	case AggAvg:
		if s.count == 0 {
			return val.Null
		}
		return val.Float(s.sum / float64(s.count))
	default:
		return s.best
	}
}

// AggTable maintains a continuous aggregate over a stored table (§3.4:
// "aggregation elements that maintain an up-to-date aggregate ... on a
// table and emit it whenever it changes"), pushing group results whose
// value changed. This is how rules like N3 (bestSuccDist min<D> over
// succDist) run.
//
// Maintenance is incremental, not a full table scan per delta:
// COUNT/SUM/AVG fold every insert, delete, and primary-key displacement
// into per-group accumulators in O(1); MIN/MAX are exemplar aggregates
// whose result is recomputed from only the affected group's rows,
// reached through a secondary index on the grouping fields (an
// accumulator cannot retract an extremum, and a group is typically a
// handful of rows — Chord's succDist holds a successor list). Every
// listener reaction is deferred to the table mutation's final
// notification, so one Insert — even one that displaces a row or
// evicts another — emits at most one change per affected group. The
// win over scan-per-delta shows in BenchmarkAggTable*.
type AggTable struct {
	Base
	tbl      *table.Table
	groupIx  *table.Index // exemplar refresh handle; nil for accumulators
	fn       AggFunc
	groupPos []int
	aggPos   int
	outName  string
	sums     map[string]*aggState // COUNT/SUM/AVG accumulators, by group key
	last     map[string]val.Value
	// displaced stashes the row a primary-key replacement evicted, and
	// evicted the group keys whose delete notifications fired inside an
	// in-progress Insert (FIFO eviction); the insert's own OnInsert
	// consumes both, folding the whole mutation into one refresh pass.
	displaced *tuple.Tuple
	evicted   []string
}

// NewAggTable builds the element and hooks the table's listeners. The
// accumulators start empty: when wiring onto a table that already holds
// rows, connect the output and then call Recompute, which both seeds
// the state and emits the current groups (the engine's install path
// does exactly this).
func NewAggTable(name string, tbl *table.Table, fn AggFunc, groupPos []int, aggPos int,
	outName string) *AggTable {
	a := &AggTable{
		Base:     NewBase(name, 1, 0),
		tbl:      tbl,
		fn:       fn,
		groupPos: append([]int(nil), groupPos...),
		aggPos:   aggPos,
		outName:  outName,
		sums:     make(map[string]*aggState),
		last:     make(map[string]val.Value),
	}
	if a.exemplar() {
		a.groupIx = tbl.EnsureIndex(a.groupPos) // exemplar refreshes read one group, not the table
	}
	tbl.OnReplace(func(old *tuple.Tuple) { a.displaced = old })
	tbl.OnInsert(func(t *tuple.Tuple) {
		keys := a.evicted
		a.evicted = nil
		if a.displaced != nil {
			keys = append(keys, a.retract(a.displaced))
			a.displaced = nil
		}
		keys = append(keys, a.fold(t))
		a.refreshEach(keys)
	})
	tbl.OnDelete(func(t *tuple.Tuple) {
		key := a.retract(t)
		if a.tbl.Inserting() != nil {
			// Eviction inside an Insert: the table already holds the new
			// row but its notification has not fired; refreshing now
			// would read (exemplar) or emit (accumulator) a half-applied
			// mutation. The paired OnInsert refreshes this group.
			a.evicted = append(a.evicted, key)
			return
		}
		a.refresh(key)
	})
	return a
}

// exemplar reports whether the aggregate picks a row (MIN/MAX) rather
// than accumulating arithmetic.
func (a *AggTable) exemplar() bool { return a.fn == AggMin || a.fn == AggMax }

// fold adds one row's contribution and returns its group key. Exemplar
// aggregates keep no accumulator — their refresh reads the group.
func (a *AggTable) fold(t *tuple.Tuple) string {
	key := t.Key(a.groupPos)
	if a.exemplar() {
		return key
	}
	st, ok := a.sums[key]
	if !ok {
		group := make([]val.Value, len(a.groupPos))
		for i, p := range a.groupPos {
			group[i] = t.Field(p)
		}
		st = &aggState{group: group}
		a.sums[key] = st
	}
	st.add(a.fn, t.Field(a.aggPos))
	return key
}

// retract removes one row's contribution and returns its group key.
func (a *AggTable) retract(t *tuple.Tuple) string {
	key := t.Key(a.groupPos)
	if a.exemplar() {
		return key
	}
	st, ok := a.sums[key]
	if !ok {
		return key // never folded in (listener attached late); nothing to undo
	}
	if st.count <= 1 {
		delete(a.sums, key)
		return key
	}
	st.remove(a.fn, t.Field(a.aggPos))
	return key
}

// refreshEach refreshes every distinct key once, preserving order.
func (a *AggTable) refreshEach(keys []string) {
	done := make(map[string]bool, len(keys))
	for _, key := range keys {
		if !done[key] {
			done[key] = true
			a.refresh(key)
		}
	}
}

// refresh computes a group's current result, compares it with the last
// one emitted, and pushes downstream on change. Vanished groups are
// forgotten silently — soft state decays rather than retracts, per the
// paper's model.
func (a *AggTable) refresh(key string) {
	var group []val.Value
	var v val.Value
	if a.exemplar() {
		// Read the group's rows through PeekLookup: refresh runs inside
		// table notifications, where re-entering the expiry pass would
		// recurse into this listener.
		rows := a.groupIx.PeekLookup(key)
		if len(rows) == 0 {
			delete(a.last, key)
			return
		}
		best := rows[0]
		for _, t := range rows[1:] {
			c := t.Field(a.aggPos).Cmp(best.Field(a.aggPos))
			if (a.fn == AggMin && c < 0) || (a.fn == AggMax && c > 0) {
				best = t
			}
		}
		v = best.Field(a.aggPos)
		group = make([]val.Value, len(a.groupPos))
		for i, p := range a.groupPos {
			group[i] = best.Field(p)
		}
	} else {
		st, ok := a.sums[key]
		if !ok {
			delete(a.last, key)
			return
		}
		v = st.result(a.fn)
		group = st.group
	}
	if prev, ok := a.last[key]; ok && prev.Equal(v) {
		return
	}
	a.last[key] = v
	fields := make([]val.Value, 0, len(group)+1)
	fields = append(fields, group...)
	fields = append(fields, v)
	a.PushOut(0, tuple.New(a.outName, fields...), nil)
}

// Recompute rebuilds the accumulators from a full scan and emits every
// group whose result differs from the last emission. The engine calls
// it once after wiring an aggregate onto a table that already holds
// rows (rules installed at runtime); steady-state maintenance is
// incremental and never comes through here.
func (a *AggTable) Recompute() {
	a.sums = make(map[string]*aggState)
	a.displaced, a.evicted = nil, nil
	seen := make(map[string]bool)
	var order []string
	for _, t := range a.tbl.Scan() {
		key := a.fold(t)
		if !seen[key] {
			seen[key] = true
			order = append(order, key)
		}
	}
	for key := range a.last {
		if !seen[key] {
			delete(a.last, key)
		}
	}
	a.refreshEach(order)
}

// Insert stores pushed tuples into a table and forwards the tuple
// downstream only when the insertion changed the table — the delta
// stream that re-enters the strand demultiplexer in Figure 2.
type Insert struct {
	Base
	tbl *table.Table
}

// NewInsert builds a table-insert bridge.
func NewInsert(name string, tbl *table.Table) *Insert {
	return &Insert{Base: NewBase(name, 1, 0), tbl: tbl}
}

// Push inserts t; deltas propagate downstream.
func (e *Insert) Push(_ int, t *tuple.Tuple, poke Poke) bool {
	res := e.tbl.Insert(t)
	if !res.Delta {
		return true
	}
	return e.PushOut(0, t, poke)
}

// Delete removes pushed tuples (by primary key) from a table — the
// action of OverLog's "delete" rule heads.
type Delete struct {
	Base
	tbl *table.Table
}

// NewDelete builds a table-delete bridge.
func NewDelete(name string, tbl *table.Table) *Delete {
	return &Delete{Base: NewBase(name, 0, 0), tbl: tbl}
}

// Push deletes t's primary-key match, if any.
func (e *Delete) Push(_ int, t *tuple.Tuple, _ Poke) bool {
	e.tbl.Delete(t)
	return true
}

// Range is the range(I, Lo, Hi) generator: for each input tuple it
// evaluates the bounds and emits one copy per integer in [lo, hi] with
// the iteration value appended — how the naive finger-fixing rule F1
// walks all finger indices.
type Range struct {
	Base
	lo, hi *pel.Program
	vm     *pel.VM
	env    *pel.Env
}

// NewRange builds a range generator.
func NewRange(name string, lo, hi *pel.Program, env *pel.Env) *Range {
	return &Range{Base: NewBase(name, 1, 0), lo: lo, hi: hi, vm: pel.NewVM(), env: env}
}

// Push expands t over the iteration range.
func (r *Range) Push(_ int, t *tuple.Tuple, poke Poke) bool {
	loV, err := r.vm.Eval(r.lo, t, r.env)
	if err != nil {
		return true
	}
	hiV, err := r.vm.Eval(r.hi, t, r.env)
	if err != nil {
		return true
	}
	ok := true
	for v := loV.AsInt(); v <= hiV.AsInt(); v++ {
		fields := make([]val.Value, 0, t.Arity()+1)
		fields = append(fields, t.Fields()...)
		fields = append(fields, val.Int(v))
		if !r.PushOut(0, tuple.New(t.Name(), fields...), poke) {
			ok = false
		}
	}
	return ok
}

// Dedup suppresses tuples identical to one already seen, using a
// private table keyed on the full tuple (§3.4: "the element responsible
// for eliminating duplicate results ... uses a table to keep track of
// what it has seen so far"). The TTL bounds memory.
type Dedup struct {
	Base
	seen *table.Table
}

// NewDedup builds a duplicate eliminator whose memory lasts ttl seconds.
func NewDedup(name string, ttl float64, clock interface{ Now() float64 }, arity int) *Dedup {
	pk := make([]int, arity)
	for i := range pk {
		pk[i] = i
	}
	return &Dedup{
		Base: NewBase(name, 1, 0),
		seen: table.New(name+".seen", ttl, 0, pk, clockAdapter{clock}),
	}
}

type clockAdapter struct{ c interface{ Now() float64 } }

func (a clockAdapter) Now() float64 { return a.c.Now() }

// Push forwards t only the first time it is seen within the TTL.
func (d *Dedup) Push(_ int, t *tuple.Tuple, poke Poke) bool {
	if !d.seen.Insert(t).Delta {
		return true
	}
	return d.PushOut(0, t, poke)
}
