package dataflow

import (
	"testing"

	"p2/internal/eventloop"
	"p2/internal/tuple"
	"p2/internal/val"
)

func tp(name string, vs ...val.Value) *tuple.Tuple { return tuple.New(name, vs...) }

func intTuple(n int64) *tuple.Tuple { return tp("t", val.Int(n)) }

func TestQueueFIFO(t *testing.T) {
	q := NewQueue("q", 10)
	for i := int64(0); i < 3; i++ {
		if !q.Push(0, intTuple(i), nil) {
			t.Fatal("push into roomy queue must succeed")
		}
	}
	for i := int64(0); i < 3; i++ {
		got := q.Pull(0, nil)
		if got == nil || got.Field(0).AsInt() != i {
			t.Fatalf("pull %d = %v", i, got)
		}
	}
	if q.Pull(0, nil) != nil {
		t.Fatal("empty queue must return nil")
	}
}

func TestQueueBlockingAndPokes(t *testing.T) {
	q := NewQueue("q", 2)
	var producerPoked, consumerPoked int
	producerPoke := func() { producerPoked++ }
	consumerPoke := func() { consumerPoked++ }

	// Consumer finds it empty, arms poke.
	if q.Pull(0, consumerPoke) != nil {
		t.Fatal("queue should be empty")
	}
	// First push fills one slot and pokes the consumer.
	q.Push(0, intTuple(1), producerPoke)
	if consumerPoked != 1 {
		t.Fatalf("consumer poked %d times, want 1", consumerPoked)
	}
	// Second push fills the queue: returns false.
	if q.Push(0, intTuple(2), producerPoke) {
		t.Fatal("push filling the queue must return false")
	}
	// Third push is refused outright.
	if q.Push(0, intTuple(3), producerPoke) {
		t.Fatal("push into full queue must be refused")
	}
	if q.Len() != 2 {
		t.Fatalf("len = %d, refused tuple must not be stored", q.Len())
	}
	// Pull opens space and pokes the producer.
	q.Pull(0, consumerPoke)
	if producerPoked != 1 {
		t.Fatalf("producer poked %d times, want 1", producerPoked)
	}
}

func TestQueueMinimumCapacity(t *testing.T) {
	q := NewQueue("q", 0)
	if q.Push(0, intTuple(1), nil) {
		t.Fatal("capacity clamps to 1; first push fills it")
	}
	if q.Pull(0, nil) == nil {
		t.Fatal("the tuple must still have been accepted")
	}
}

func TestTimedPullPushDrainsQueue(t *testing.T) {
	loop := eventloop.NewSim()
	q := NewQueue("q", 10)
	var got []int64
	sink := NewSink("sink", func(t *tuple.Tuple) { got = append(got, t.Field(0).AsInt()) })
	tpp := NewTimedPullPush("tpp", loop, 0)
	tpp.ConnectIn(0, q, 0)
	tpp.ConnectOut(0, sink, 0)
	tpp.Start()

	for i := int64(0); i < 5; i++ {
		q.Push(0, intTuple(i), nil)
	}
	loop.Run(1)
	if len(got) != 5 {
		t.Fatalf("sink got %v", got)
	}
	// New arrivals after the queue drained must poke it awake.
	q.Push(0, intTuple(99), nil)
	loop.Run(2)
	if len(got) != 6 || got[5] != 99 {
		t.Fatalf("wakeup failed: %v", got)
	}
}

func TestTimedPullPushInterval(t *testing.T) {
	loop := eventloop.NewSim()
	q := NewQueue("q", 10)
	var times []float64
	sink := NewSink("sink", func(*tuple.Tuple) { times = append(times, loop.Now()) })
	tpp := NewTimedPullPush("tpp", loop, 1.0)
	tpp.ConnectIn(0, q, 0)
	tpp.ConnectOut(0, sink, 0)
	for i := int64(0); i < 3; i++ {
		q.Push(0, intTuple(i), nil)
	}
	tpp.Start()
	loop.Run(10)
	if len(times) != 3 {
		t.Fatalf("times = %v", times)
	}
	if times[1]-times[0] < 1.0 || times[2]-times[1] < 1.0 {
		t.Fatalf("rate not limited: %v", times)
	}
}

func TestTimedPullPushBackpressure(t *testing.T) {
	loop := eventloop.NewSim()
	src := NewQueue("src", 10)
	dst := NewQueue("dst", 1)
	tpp := NewTimedPullPush("tpp", loop, 0)
	tpp.ConnectIn(0, src, 0)
	tpp.ConnectOut(0, dst, 0)
	tpp.Start()
	for i := int64(0); i < 4; i++ {
		src.Push(0, intTuple(i), nil)
	}
	loop.Run(1)
	// dst holds 1; tpp is parked on dst's poke.
	if dst.Len() != 1 || src.Len() != 3 {
		t.Fatalf("dst=%d src=%d", dst.Len(), src.Len())
	}
	// Draining dst unblocks the transfer chain.
	for i := int64(0); i < 4; i++ {
		got := dst.Pull(0, nil)
		if got == nil {
			loop.Run(loop.Now() + 1)
			got = dst.Pull(0, nil)
		}
		if got == nil || got.Field(0).AsInt() != i {
			t.Fatalf("tuple %d = %v", i, got)
		}
		loop.Run(loop.Now() + 1)
	}
	if src.Len() != 0 {
		t.Fatalf("src not drained: %d", src.Len())
	}
}

func TestTimedPullPushStop(t *testing.T) {
	loop := eventloop.NewSim()
	q := NewQueue("q", 10)
	n := 0
	sink := NewSink("sink", func(*tuple.Tuple) { n++ })
	tpp := NewTimedPullPush("tpp", loop, 0)
	tpp.ConnectIn(0, q, 0)
	tpp.ConnectOut(0, sink, 0)
	tpp.Start()
	tpp.Start() // idempotent
	q.Push(0, intTuple(1), nil)
	loop.Run(1)
	tpp.Stop()
	q.Push(0, intTuple(2), nil)
	loop.Run(2)
	if n != 1 {
		t.Fatalf("after stop, n = %d", n)
	}
}

func TestDemuxRouting(t *testing.T) {
	d := NewDemux("d", func(t *tuple.Tuple) string { return t.Name() }, 2, -1)
	var a, b []*tuple.Tuple
	d.ConnectOut(0, NewSink("a", func(t *tuple.Tuple) { a = append(a, t) }), 0)
	d.ConnectOut(1, NewSink("b", func(t *tuple.Tuple) { b = append(b, t) }), 0)
	d.Route("lookup", 0)
	d.Route("ping", 1)
	d.Push(0, tp("lookup"), nil)
	d.Push(0, tp("ping"), nil)
	d.Push(0, tp("unknown"), nil) // dropped
	if len(a) != 1 || len(b) != 1 {
		t.Fatalf("a=%d b=%d", len(a), len(b))
	}
}

func TestDemuxDefaultPort(t *testing.T) {
	d := NewDemux("d", func(t *tuple.Tuple) string { return t.Name() }, 2, 1)
	var def []*tuple.Tuple
	d.ConnectOut(0, NewDiscard("x"), 0)
	d.ConnectOut(1, NewSink("def", func(t *tuple.Tuple) { def = append(def, t) }), 0)
	d.Route("known", 0)
	d.Push(0, tp("mystery"), nil)
	if len(def) != 1 {
		t.Fatal("unrouted tuple must reach default port")
	}
}

func TestDupFansOut(t *testing.T) {
	dup := NewDup("dup", 3)
	counts := make([]int, 3)
	for i := 0; i < 3; i++ {
		i := i
		dup.ConnectOut(i, NewSink("s", func(*tuple.Tuple) { counts[i]++ }), 0)
	}
	dup.Push(0, tp("x"), nil)
	for i, c := range counts {
		if c != 1 {
			t.Fatalf("output %d got %d", i, c)
		}
	}
}

func TestMuxForwards(t *testing.T) {
	m := NewMux("m")
	var got []*tuple.Tuple
	m.ConnectOut(0, NewSink("s", func(t *tuple.Tuple) { got = append(got, t) }), 0)
	m.Push(0, tp("a"), nil)
	m.Push(1, tp("b"), nil)
	if len(got) != 2 {
		t.Fatalf("got %d", len(got))
	}
}

func TestRoundRobinFairness(t *testing.T) {
	rr := NewRoundRobin("rr", 2)
	q0, q1 := NewQueue("q0", 10), NewQueue("q1", 10)
	rr.ConnectIn(0, q0, 0)
	rr.ConnectIn(1, q1, 0)
	for i := int64(0); i < 3; i++ {
		q0.Push(0, tp("a", val.Int(i)), nil)
		q1.Push(0, tp("b", val.Int(i)), nil)
	}
	var names []string
	for {
		got := rr.Pull(0, nil)
		if got == nil {
			break
		}
		names = append(names, got.Name())
	}
	if len(names) != 6 {
		t.Fatalf("pulled %d", len(names))
	}
	// Strict alternation once both queues are loaded.
	for i := 1; i < len(names); i++ {
		if names[i] == names[i-1] {
			t.Fatalf("not round-robin: %v", names)
		}
	}
}

func TestRoundRobinPokesAllInputsWhenDry(t *testing.T) {
	rr := NewRoundRobin("rr", 2)
	q0, q1 := NewQueue("q0", 10), NewQueue("q1", 10)
	rr.ConnectIn(0, q0, 0)
	rr.ConnectIn(1, q1, 0)
	poked := 0
	if rr.Pull(0, func() { poked++ }) != nil {
		t.Fatal("should be dry")
	}
	// Arrival on either queue wakes the consumer.
	q1.Push(0, tp("x"), nil)
	if poked == 0 {
		t.Fatal("consumer not poked on arrival")
	}
}

func TestPeriodicEmitsOnSchedule(t *testing.T) {
	loop := eventloop.NewSim()
	var fired []float64
	mk := func(addr string, seq int64, period float64) *tuple.Tuple {
		return tp("periodic", val.Str(addr), val.Str("e"), val.Float(period))
	}
	p := NewPeriodic("p", loop, "n1", 2.0, 3, mk)
	p.ConnectOut(0, NewSink("s", func(*tuple.Tuple) { fired = append(fired, loop.Now()) }), 0)
	p.Start(0.5)
	loop.Run(20)
	if len(fired) != 3 {
		t.Fatalf("fired %v", fired)
	}
	want := []float64{0.5, 2.5, 4.5}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired = %v, want %v", fired, want)
		}
	}
}

func TestPeriodicUnlimitedAndStop(t *testing.T) {
	loop := eventloop.NewSim()
	n := 0
	mk := func(addr string, seq int64, period float64) *tuple.Tuple { return tp("periodic") }
	p := NewPeriodic("p", loop, "n1", 1.0, 0, mk) // 0 = unlimited
	p.ConnectOut(0, NewSink("s", func(*tuple.Tuple) { n++ }), 0)
	p.Start(0)
	loop.Run(10.5)
	if n != 11 {
		t.Fatalf("n = %d, want 11", n)
	}
	p.Stop()
	loop.Run(20)
	if n != 11 {
		t.Fatalf("stop failed, n = %d", n)
	}
}

func TestPeriodicOneShot(t *testing.T) {
	// periodic(X, E, 0, 1): fire exactly once, immediately — the idiom
	// Narada uses for initialization facts.
	loop := eventloop.NewSim()
	n := 0
	mk := func(addr string, seq int64, period float64) *tuple.Tuple { return tp("periodic") }
	p := NewPeriodic("p", loop, "n1", 0, 1, mk)
	p.ConnectOut(0, NewSink("s", func(*tuple.Tuple) { n++ }), 0)
	p.Start(0)
	loop.Run(5)
	if n != 1 {
		t.Fatalf("one-shot fired %d times", n)
	}
}

func TestTapObservesAndForwards(t *testing.T) {
	var seen, sunk int
	tap := NewTap("tap", func(*tuple.Tuple) { seen++ })
	tap.ConnectOut(0, NewSink("s", func(*tuple.Tuple) { sunk++ }), 0)
	tap.Push(0, tp("x"), nil)
	if seen != 1 || sunk != 1 {
		t.Fatalf("seen=%d sunk=%d", seen, sunk)
	}
}

func TestSourcePull(t *testing.T) {
	i := int64(0)
	src := NewSource("src", func() *tuple.Tuple {
		if i >= 2 {
			return nil
		}
		i++
		return intTuple(i)
	})
	if src.Pull(0, nil) == nil || src.Pull(0, nil) == nil || src.Pull(0, nil) != nil {
		t.Fatal("source sequence wrong")
	}
}

func TestUnconnectedPortPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on unconnected port")
		}
	}()
	m := NewMux("m")
	m.Push(0, tp("x"), nil)
}

func TestGraphBookkeeping(t *testing.T) {
	g := NewGraph()
	q := Add(g, NewQueue("q", 1))
	Add(g, NewMux("m"))
	if g.Size() != 2 || len(g.Elements()) != 2 {
		t.Fatal("graph bookkeeping wrong")
	}
	if q.Name() != "q" {
		t.Fatal("Add must return the element")
	}
}

// BenchmarkElementHandoff measures the cost of one push hand-off through
// a minimal chain — the paper reports ~50 machine instructions per
// transition (§3.3); this is the Go equivalent claim.
func BenchmarkElementHandoff(b *testing.B) {
	m := NewMux("m")
	m.ConnectOut(0, NewDiscard("d"), 0)
	t := intTuple(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Push(0, t, nil)
	}
}

// BenchmarkHandoffWithPoke measures hand-off through a queue including
// poke signaling — the paper's "75 instructions if the callback is
// invoked" case.
func BenchmarkHandoffWithPoke(b *testing.B) {
	q := NewQueue("q", 1)
	poke := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Push(0, intTuple(1), poke)
		q.Pull(0, poke)
	}
}
