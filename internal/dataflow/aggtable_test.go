package dataflow

// Tests and benchmarks for AggTable's incremental maintenance: deltas
// must cost O(group touched) while emitting exactly what the old
// full-scan recompute emitted.

import (
	"fmt"
	"testing"

	"p2/internal/eventloop"
	"p2/internal/table"
	"p2/internal/tuple"
	"p2/internal/val"
)

// sumRig builds load(@N, Item, Cost) with sum<Cost> grouped by node.
func sumRig(fn AggFunc) (*table.Table, *[]*tuple.Tuple) {
	loop := eventloop.NewSim()
	tb := table.New("load", table.Infinity, 0, []int{1}, loop)
	var got []*tuple.Tuple
	agg := NewAggTable("agg", tb, fn, []int{0}, 2, "total")
	agg.ConnectOut(0, collect(&got), 0)
	return tb, &got
}

func TestAggTableIncrementalSum(t *testing.T) {
	tb, got := sumRig(AggSum)
	tb.Insert(tp("load", val.Str("n1"), val.Str("a"), val.Int(10)))
	tb.Insert(tp("load", val.Str("n1"), val.Str("b"), val.Int(5)))
	if len(*got) != 2 || (*got)[1].Field(1).AsFloat() != 15 {
		t.Fatalf("running sum = %v", *got)
	}
	// Deleting one row subtracts it.
	tb.Delete(tp("load", val.Str("n1"), val.Str("a"), val.Int(10)))
	if len(*got) != 3 || (*got)[2].Field(1).AsFloat() != 5 {
		t.Fatalf("after delete = %v", *got)
	}
	// Deleting the last row forgets the group silently (soft state).
	tb.Delete(tp("load", val.Str("n1"), val.Str("b"), val.Int(5)))
	if len(*got) != 3 {
		t.Fatalf("vanished group must not emit: %v", *got)
	}
	// A reborn group starts fresh.
	tb.Insert(tp("load", val.Str("n1"), val.Str("c"), val.Int(7)))
	if len(*got) != 4 || (*got)[3].Field(1).AsFloat() != 7 {
		t.Fatalf("reborn group = %v", *got)
	}
}

// TestAggTablePrimaryKeyReplacement covers the displacement path: a
// primary-key overwrite must retract the old row's contribution and
// emit at most one change per affected group — including when the
// replacement moves the row to a different group.
func TestAggTablePrimaryKeyReplacement(t *testing.T) {
	tb, got := sumRig(AggSum)
	tb.Insert(tp("load", val.Str("n1"), val.Str("a"), val.Int(10)))
	tb.Insert(tp("load", val.Str("n1"), val.Str("b"), val.Int(5)))
	// Same group, new cost: one emission with the adjusted sum.
	tb.Insert(tp("load", val.Str("n1"), val.Str("a"), val.Int(20)))
	if len(*got) != 3 || (*got)[2].Field(1).AsFloat() != 25 {
		t.Fatalf("replacement sum = %v", *got)
	}
	// Same cost replacement: the sum is unchanged, so nothing emits.
	tb.Insert(tp("load", val.Str("n1"), val.Str("b"), val.Int(5)))
	if len(*got) != 3 {
		t.Fatalf("no-op replacement emitted: %v", *got)
	}
	// The row migrates to group n2: both groups change.
	tb.Insert(tp("load", val.Str("n2"), val.Str("a"), val.Int(20)))
	if len(*got) != 5 {
		t.Fatalf("group migration = %v", *got)
	}
	if (*got)[3].Field(0).AsStr() != "n1" || (*got)[3].Field(1).AsFloat() != 5 {
		t.Fatalf("old group after migration = %v", (*got)[3])
	}
	if (*got)[4].Field(0).AsStr() != "n2" || (*got)[4].Field(1).AsFloat() != 20 {
		t.Fatalf("new group after migration = %v", (*got)[4])
	}
}

func TestAggTableMinExtremumDeleteRescans(t *testing.T) {
	tb, got := sumRig(AggMin)
	for i, c := range []int64{30, 10, 10, 50} {
		tb.Insert(tp("load", val.Str("n1"), val.Str(fmt.Sprintf("r%d", i)), val.Int(c)))
	}
	if last := (*got)[len(*got)-1]; last.Field(1).AsInt() != 10 {
		t.Fatalf("min = %v", last)
	}
	n := len(*got)
	// Deleting one of two equal extrema leaves the min at 10: no emission.
	tb.Delete(tp("load", val.Str("n1"), val.Str("r1"), val.Int(10)))
	if len(*got) != n {
		t.Fatalf("duplicate-extremum delete emitted: %v", *got)
	}
	// Deleting the last 10 re-raises the min to 30.
	tb.Delete(tp("load", val.Str("n1"), val.Str("r2"), val.Int(10)))
	if len(*got) != n+1 || (*got)[n].Field(1).AsInt() != 30 {
		t.Fatalf("extremum delete = %v", *got)
	}
}

// TestAggTableExtremumReplacementStaysConsistent is the regression
// test for a review finding: a primary-key replacement of the MIN row
// must not double-count the new row (the old code rescanned the group
// with the replacement already in the table, then folded it again),
// which later surfaced as a null aggregate from a drained group.
func TestAggTableExtremumReplacementStaysConsistent(t *testing.T) {
	tb, got := sumRig(AggMin)
	tb.Insert(tp("load", val.Str("n1"), val.Str("a"), val.Int(10)))
	tb.Insert(tp("load", val.Str("n1"), val.Str("b"), val.Int(30)))
	tb.Insert(tp("load", val.Str("n1"), val.Str("a"), val.Int(40))) // replace the extremum
	if len(*got) != 2 || (*got)[1].Field(1).AsInt() != 30 {
		t.Fatalf("after extremum replacement = %v", *got)
	}
	tb.Delete(tp("load", val.Str("n1"), val.Str("a")))
	if len(*got) != 2 {
		t.Fatalf("deleting the non-min row emitted: %v", *got)
	}
	tb.Delete(tp("load", val.Str("n1"), val.Str("b")))
	// The group is gone: soft state decays silently — in particular no
	// null aggregate from a corrupted row count.
	if len(*got) != 2 {
		t.Fatalf("drained group emitted (null aggregate?): %v", *got)
	}
	if tb.Len() != 0 {
		t.Fatalf("table not drained: %d", tb.Len())
	}
}

// TestAggTableFifoEviction covers the other half-applied-mutation path:
// an insert that evicts a row fires the delete notification while the
// new row is stored but unannounced. The whole mutation must emit at
// most one change per group — none at FIFO steady state for COUNT.
func TestAggTableFifoEviction(t *testing.T) {
	loop := eventloop.NewSim()
	tb := table.New("load", table.Infinity, 3, []int{1}, loop)
	var got []*tuple.Tuple
	agg := NewAggTable("agg", tb, AggCount, []int{0}, 2, "size")
	agg.ConnectOut(0, collect(&got), 0)
	for i := 0; i < 3; i++ {
		tb.Insert(tp("load", val.Str("n1"), val.Str(fmt.Sprintf("k%d", i)), val.Int(int64(i))))
	}
	if len(got) != 3 || got[2].Field(1).AsInt() != 3 {
		t.Fatalf("fill = %v", got)
	}
	// Steady state: each insert evicts one row; the count is unchanged
	// and nothing may emit.
	for i := 3; i < 8; i++ {
		tb.Insert(tp("load", val.Str("n1"), val.Str(fmt.Sprintf("k%d", i)), val.Int(int64(i))))
	}
	if len(got) != 3 {
		t.Fatalf("steady-state FIFO churn emitted: %v", got)
	}

	// Exemplar flavor: evicting the MIN row emits the new minimum once.
	tb2 := table.New("load", table.Infinity, 3, []int{1}, loop)
	var got2 []*tuple.Tuple
	agg2 := NewAggTable("agg2", tb2, AggMin, []int{0}, 2, "best")
	agg2.ConnectOut(0, collect(&got2), 0)
	for i, c := range []int64{10, 30, 50} {
		tb2.Insert(tp("load", val.Str("n1"), val.Str(fmt.Sprintf("k%d", i)), val.Int(c)))
	}
	n := len(got2)                                                    // emitted 10 once
	tb2.Insert(tp("load", val.Str("n1"), val.Str("k9"), val.Int(70))) // evicts the 10
	if len(got2) != n+1 || got2[n].Field(1).AsInt() != 30 {
		t.Fatalf("min after evicting extremum = %v", got2)
	}
}

// TestAggTableMatchesFullRecompute is a differential check: after a
// random-ish workload of inserts, replacements, and deletes, the
// incremental state must agree with a from-scratch recompute.
func TestAggTableMatchesFullRecompute(t *testing.T) {
	for _, fn := range []AggFunc{AggCount, AggSum, AggMin, AggMax, AggAvg} {
		loop := eventloop.NewSim()
		tb := table.New("load", table.Infinity, 0, []int{1}, loop)
		var got []*tuple.Tuple
		agg := NewAggTable("agg", tb, fn, []int{0}, 2, "out")
		agg.ConnectOut(0, collect(&got), 0)
		for i := 0; i < 200; i++ {
			g := fmt.Sprintf("g%d", i%7)
			k := fmt.Sprintf("k%d", i%31) // collisions force replacements
			tb.Insert(tp("load", val.Str(g), val.Str(k), val.Int(int64(i*13%97))))
			if i%5 == 0 {
				tb.Delete(tp("load", val.Str(g), val.Str(fmt.Sprintf("k%d", (i+3)%31))))
			}
		}
		incremental := map[string]val.Value{}
		for _, tu := range got {
			incremental[tu.Field(0).AsStr()] = tu.Field(1)
		}
		// Rebuild from scratch and compare the final value per group.
		got = got[:0]
		agg.last = map[string]val.Value{}
		agg.Recompute()
		for _, tu := range got {
			g := tu.Field(0).AsStr()
			if want := tu.Field(1); !want.Equal(incremental[g]) {
				t.Fatalf("%v: group %s incremental=%v recompute=%v", fn, g, incremental[g], want)
			}
		}
	}
}

// aggBenchTable seeds rows rows across 16 groups.
func aggBenchTable(rows int) *table.Table {
	loop := eventloop.NewSim()
	tb := table.New("load", table.Infinity, 0, []int{1}, loop)
	for i := 0; i < rows; i++ {
		tb.Insert(tp("load",
			val.Str(fmt.Sprintf("g%d", i%16)),
			val.Str(fmt.Sprintf("k%d", i)),
			val.Int(int64(i))))
	}
	return tb
}

// BenchmarkAggTableIncrementalDelta measures one insert+delete pair
// against a 1k-row table under incremental maintenance — the hot path
// every table delta takes.
func BenchmarkAggTableIncrementalDelta(b *testing.B) {
	tb := aggBenchTable(1000)
	var got []*tuple.Tuple
	agg := NewAggTable("agg", tb, AggSum, []int{0}, 2, "total")
	agg.ConnectOut(0, collect(&got), 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		row := tp("load", val.Str("g1"), val.Str("hot"), val.Int(int64(i)))
		tb.Insert(row)
		tb.Delete(row)
		got = got[:0]
	}
}

// BenchmarkAggTableFullRecompute is the pre-incremental cost of the
// same delta: a full O(table) scan per change, for comparison.
func BenchmarkAggTableFullRecompute(b *testing.B) {
	tb := aggBenchTable(1000)
	var got []*tuple.Tuple
	agg := NewAggTable("agg", tb, AggSum, []int{0}, 2, "total")
	agg.ConnectOut(0, collect(&got), 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		agg.Recompute()
		got = got[:0]
	}
}
