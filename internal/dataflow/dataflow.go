// Package dataflow implements P2's element framework (§3.3) and its
// library of dataflow elements (§3.4).
//
// A dataflow graph is a set of elements connected port-to-port. Hand-off
// between elements is either push (source invokes sink) or pull (sink
// invokes source), mirroring Click. Both carry a Poke — a continuation
// invoked if and only if the flow stalled as a result of the call: a
// push that returned false signals "stop pushing until poked"; a pull
// that returned nil signals "nothing now, poked when there is".
//
// Pokes are idempotent retry hints. An element may receive a poke it no
// longer cares about; correct elements treat pokes as "try again" and
// re-examine state. This is exactly the callback/continuation signaling
// scheme the paper describes, which keeps scheduling policy out of
// element implementations.
//
// Tuples are immutable and passed by reference. Elements that "modify"
// tuples construct new ones.
package dataflow

import (
	"fmt"

	"p2/internal/tuple"
)

// Poke is an idempotent continuation used to restart a stalled flow.
type Poke func()

// Element is a node in a P2 dataflow graph.
type Element interface {
	// Name identifies the element in graph dumps and errors.
	Name() string
}

// Pusher accepts tuples pushed into an input port. The return value is
// the flow-control signal: false means "do not push again until poke
// fires". The tuple itself is always accepted (§3.3: "push calls are
// always assumed to succeed").
type Pusher interface {
	Element
	Push(port int, t *tuple.Tuple, poke Poke) bool
}

// Puller produces tuples on demand from an output port. A nil result
// means no tuple is available; poke will be invoked when one may be.
type Puller interface {
	Element
	Pull(port int, poke Poke) *tuple.Tuple
}

// PushTarget names a (Pusher, port) pair — the sink side of a push edge.
type PushTarget struct {
	To   Pusher
	Port int
}

// PullSource names a (Puller, port) pair — the source side of a pull edge.
type PullSource struct {
	From Puller
	Port int
}

// Base carries the bookkeeping common to all elements: a name and the
// push-output / pull-input bindings. Embed it and use out/in helpers.
type Base struct {
	name string
	outs []PushTarget
	ins  []PullSource
}

// NewBase returns a Base with room for nOut push outputs and nIn pull
// inputs.
func NewBase(name string, nOut, nIn int) Base {
	return Base{name: name, outs: make([]PushTarget, nOut), ins: make([]PullSource, nIn)}
}

// Name returns the element name.
func (b *Base) Name() string { return b.name }

// ConnectOut binds push output port i to the target.
func (b *Base) ConnectOut(i int, to Pusher, port int) {
	b.outs[i] = PushTarget{To: to, Port: port}
}

// ConnectIn binds pull input port i to the source.
func (b *Base) ConnectIn(i int, from Puller, port int) {
	b.ins[i] = PullSource{From: from, Port: port}
}

// PushOut pushes t through output port i, forwarding the poke.
func (b *Base) PushOut(i int, t *tuple.Tuple, poke Poke) bool {
	o := b.outs[i]
	if o.To == nil {
		panic(fmt.Sprintf("dataflow: element %q output %d not connected", b.name, i))
	}
	return o.To.Push(o.Port, t, poke)
}

// PullIn pulls from input port i, forwarding the poke.
func (b *Base) PullIn(i int, poke Poke) *tuple.Tuple {
	in := b.ins[i]
	if in.From == nil {
		panic(fmt.Sprintf("dataflow: element %q input %d not connected", b.name, i))
	}
	return in.From.Pull(in.Port, poke)
}

// pokeSlot stores at most one pending poke. Arming twice overwrites —
// pokes are idempotent retry hints, so the latest continuation wins.
type pokeSlot struct {
	p Poke
}

func (s *pokeSlot) arm(p Poke) { s.p = p }

// fire invokes and clears the pending poke, if any.
func (s *pokeSlot) fire() {
	if s.p != nil {
		p := s.p
		s.p = nil
		p()
	}
}
