package dataflow

import (
	"p2/internal/pel"
	"p2/internal/table"
	"p2/internal/tuple"
	"p2/internal/val"
)

// FoldJoin is the optimizer's fusion of a rule's final equijoin with
// its per-event stream aggregate. A plain Join materializes one
// concatenated tuple per surviving match and hands each to a downstream
// AggStream, which immediately reduces them to a single value — for
// aggregate-heavy rules (Chord's bestLookupDist min<> over the whole
// finger table, per lookup) that is one short-lived allocation per
// candidate row, and the dominant GC pressure of a steady-state
// overlay. FoldJoin instead evaluates the fused filters and the
// aggregate input over the virtual concatenation input++match — no
// tuple is built — and folds the value into an accumulator; Flush then
// emits a single event++aggregate tuple per trigger.
//
// The planner only produces a FoldJoin when the reduction is invisible
// in the derived tuples: min/max with every non-aggregate head field
// event-bound (ties project identically, so the dropped exemplar tuple
// was never observable), or count. Match handling mirrors the unfused
// chain exactly — a filter that fails or errors skips the row, and an
// aggregate input that errors drops the row the way the corresponding
// Assign would, before it is counted.
type FoldJoin struct {
	Base
	tbl       *table.Table
	ix        *table.Index
	streamKey []int
	keyBuf    []byte

	filters []*pel.Program
	input   *pel.Program // aggregate input; nil for count<*>
	fn      AggFunc
	vm      *pel.VM
	env     *pel.Env

	probes *int64

	seen  bool
	count int64
	acc   val.Value
}

// NewFoldJoin builds a fused join+aggregate element. input is the
// aggregate's value over input++match (nil only for count<*>); filters
// run before it, in order.
func NewFoldJoin(name string, tbl *table.Table, streamKey, tableKey []int,
	fn AggFunc, input *pel.Program, filters []*pel.Program, env *pel.Env) *FoldJoin {
	return &FoldJoin{
		Base:      NewBase(name, 1, 0),
		tbl:       tbl,
		ix:        tbl.EnsureIndex(tableKey),
		streamKey: append([]int(nil), streamKey...),
		filters:   filters,
		input:     input,
		fn:        fn,
		vm:        pel.NewVM(),
		env:       env,
		acc:       val.Null,
	}
}

// CountProbes points the element at a shared counter, as Join.CountProbes.
func (f *FoldJoin) CountProbes(p *int64) { f.probes = p }

// Push probes the table and folds every surviving match into the
// accumulator. Nothing flows downstream until Flush.
func (f *FoldJoin) Push(_ int, t *tuple.Tuple, _ Poke) bool {
	f.keyBuf = t.AppendKey(f.keyBuf[:0], f.streamKey)
	if f.probes != nil {
		*f.probes++
	}
	f.ix.Each(f.keyBuf, func(m *tuple.Tuple) bool {
		if f.probes != nil {
			*f.probes++
		}
		for _, p := range f.filters {
			v, err := f.vm.EvalJoined(p, t, m, f.env)
			if err != nil || !v.AsBool() {
				return true // match filtered out
			}
		}
		if f.input != nil {
			v, err := f.vm.EvalJoined(f.input, t, m, f.env)
			if err != nil {
				return true // underivable match dropped, as Assign would
			}
			switch f.fn {
			case AggMin:
				if !f.seen || v.Cmp(f.acc) < 0 {
					f.acc = v
				}
			case AggMax:
				if !f.seen || v.Cmp(f.acc) > 0 {
					f.acc = v
				}
			}
			f.seen = true
		}
		f.count++
		return true
	})
	return true
}

// Flush emits the aggregate result for the event and resets. Semantics
// match AggStream: min/max emit only when at least one match folded;
// count emits its (possibly zero) total on every event.
func (f *FoldJoin) Flush(event *tuple.Tuple, poke Poke) {
	defer f.reset()
	if event == nil {
		return
	}
	var result val.Value
	switch f.fn {
	case AggMin, AggMax:
		if !f.seen {
			return
		}
		result = f.acc
	case AggCount:
		result = val.Int(f.count)
	default:
		return
	}
	fields := make([]val.Value, 0, event.Arity()+1)
	fields = append(fields, event.Fields()...)
	fields = append(fields, result)
	f.PushOut(0, tuple.New(event.Name(), fields...), poke)
}

func (f *FoldJoin) reset() {
	f.seen, f.count, f.acc = false, 0, val.Null
}
