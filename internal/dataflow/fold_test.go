package dataflow

import (
	"testing"

	"p2/internal/eventloop"
	"p2/internal/pel"
	"p2/internal/table"
	"p2/internal/tuple"
	"p2/internal/val"
)

// foldFixture builds a dist(X, D) table keyed on X with the given D
// values for key "n1", plus one row under a different key that must
// never fold.
func foldFixture(t *testing.T, ds ...int64) *table.Table {
	t.Helper()
	loop := eventloop.NewSim()
	tbl := table.New("dist", table.Infinity, 0, []int{0, 1}, loop)
	for _, d := range ds {
		tbl.Insert(tp("dist", val.Str("n1"), val.Int(d)))
	}
	tbl.Insert(tp("dist", val.Str("nX"), val.Int(-999)))
	return tbl
}

// fieldProg reads one position of the virtual concatenation.
func fieldProg(i int) *pel.Program { return pel.NewBuilder().Field(i).Build() }

func runFold(f *FoldJoin, ev *tuple.Tuple) []*tuple.Tuple {
	var got []*tuple.Tuple
	f.ConnectOut(0, collect(&got), 0)
	f.Push(0, ev, nil)
	f.Flush(ev, nil)
	return got
}

func TestFoldJoinMinMatchesJoinPlusAggStream(t *testing.T) {
	tbl := foldFixture(t, 30, 10, 20)
	ev := tp("evt", val.Str("n1"), val.Int(7))

	// Unfused reference: join then AggStream over the concat position 3.
	j := NewJoin("j", tbl, []int{0}, []int{0}, "w")
	agg := NewAggStream("agg", AggMin, 3)
	var ref []*tuple.Tuple
	j.ConnectOut(0, agg, 0)
	agg.ConnectOut(0, collect(&ref), 0)
	j.Push(0, ev, nil)
	agg.Flush(ev, nil)

	f := NewFoldJoin("f", tbl, []int{0}, []int{0}, AggMin, fieldProg(3), nil, env(eventloop.NewSim()))
	got := runFold(f, ev)

	if len(ref) != 1 || len(got) != 1 {
		t.Fatalf("emitted ref=%d fold=%d tuples, want 1 each", len(ref), len(got))
	}
	// The reference exemplar layout differs (working tuple vs
	// event++agg), but the aggregate value and event fields must agree.
	if got[0].Arity() != 3 || got[0].Field(2).AsInt() != 10 {
		t.Fatalf("fold result = %v, want event++10", got[0])
	}
	if ref[0].Field(3).AsInt() != got[0].Field(2).AsInt() {
		t.Fatalf("fold min %v != chain min %v", got[0].Field(2), ref[0].Field(3))
	}
	if got[0].Name() != "evt" {
		t.Fatalf("fold result keeps the event name, got %q", got[0].Name())
	}
}

func TestFoldJoinMaxAndFilters(t *testing.T) {
	tbl := foldFixture(t, 30, 10, 20, 40)
	ev := tp("evt", val.Str("n1"), val.Int(7))
	// Filter: concat position 3 (D) < 40, so the largest row is excluded.
	filt := pel.NewBuilder().Field(3).Const(val.Int(40)).Op(pel.OpLt).Build()
	f := NewFoldJoin("f", tbl, []int{0}, []int{0}, AggMax, fieldProg(3), []*pel.Program{filt}, env(eventloop.NewSim()))
	got := runFold(f, ev)
	if len(got) != 1 || got[0].Field(2).AsInt() != 30 {
		t.Fatalf("filtered max = %v, want 30", got)
	}
}

func TestFoldJoinMinNoMatchesEmitsNothing(t *testing.T) {
	tbl := foldFixture(t) // only the nX row
	ev := tp("evt", val.Str("n1"), val.Int(7))
	f := NewFoldJoin("f", tbl, []int{0}, []int{0}, AggMin, fieldProg(3), nil, env(eventloop.NewSim()))
	if got := runFold(f, ev); len(got) != 0 {
		t.Fatalf("min over zero matches emitted %v", got)
	}
}

func TestFoldJoinCountEmitsZero(t *testing.T) {
	tbl := foldFixture(t) // no matching rows
	ev := tp("evt", val.Str("n1"), val.Int(7))
	f := NewFoldJoin("f", tbl, []int{0}, []int{0}, AggCount, nil, nil, env(eventloop.NewSim()))
	got := runFold(f, ev)
	if len(got) != 1 || got[0].Field(2).AsInt() != 0 {
		t.Fatalf("count over zero matches = %v, want event++0", got)
	}
}

func TestFoldJoinErroringInputDropsRow(t *testing.T) {
	tbl := foldFixture(t, 4, 7)
	ev := tp("evt", val.Str("n1"), val.Int(8))
	// An input program that always errors (stack underflow): the
	// unfused chain's Assign drops every such row before the aggregate
	// sees it, so the fold must count nothing — and still emit the
	// count aggregate's zero.
	input := pel.NewBuilder().Op(pel.OpAdd).Build()
	f := NewFoldJoin("f", tbl, []int{0}, []int{0}, AggCount, input, nil, env(eventloop.NewSim()))
	got := runFold(f, ev)
	if len(got) != 1 || got[0].Field(2).AsInt() != 0 {
		t.Fatalf("count with all rows erroring = %v, want event++0", got)
	}
}

func TestFoldJoinResetsBetweenEvents(t *testing.T) {
	tbl := foldFixture(t, 5, 9)
	f := NewFoldJoin("f", tbl, []int{0}, []int{0}, AggMin, fieldProg(3), nil, env(eventloop.NewSim()))
	var got []*tuple.Tuple
	f.ConnectOut(0, collect(&got), 0)

	ev1 := tp("evt", val.Str("n1"), val.Int(1))
	f.Push(0, ev1, nil)
	f.Flush(ev1, nil)
	ev2 := tp("evt", val.Str("nNone"), val.Int(2))
	f.Push(0, ev2, nil)
	f.Flush(ev2, nil)

	if len(got) != 1 {
		t.Fatalf("second (matchless) event must emit nothing: %v", got)
	}
	if got[0].Field(2).AsInt() != 5 {
		t.Fatalf("first event min = %v, want 5", got[0])
	}
}
