package dataflow

import (
	"math/rand"
	"testing"

	"p2/internal/eventloop"
	"p2/internal/pel"
	"p2/internal/table"
	"p2/internal/tuple"
	"p2/internal/val"
)

func env(loop eventloop.Loop) *pel.Env {
	return &pel.Env{Clock: loop, Rand: rand.New(rand.NewSource(7)), Local: "n1"}
}

func collect(out *[]*tuple.Tuple) *Sink {
	return NewSink("collect", func(t *tuple.Tuple) { *out = append(*out, t) })
}

func TestJoinEmitsAllMatches(t *testing.T) {
	loop := eventloop.NewSim()
	// neighbor(X, Y) table with X at position 0.
	nb := table.New("neighbor", table.Infinity, 0, []int{1}, loop)
	nb.Insert(tp("neighbor", val.Str("n1"), val.Str("n2")))
	nb.Insert(tp("neighbor", val.Str("n1"), val.Str("n3")))
	nb.Insert(tp("neighbor", val.Str("nX"), val.Str("n4"))) // different X

	// Join refreshSeq(X, S) with neighbor(X, Y) on X.
	j := NewJoin("j", nb, []int{0}, []int{0}, "r_j1")
	var got []*tuple.Tuple
	j.ConnectOut(0, collect(&got), 0)
	j.Push(0, tp("refreshSeq", val.Str("n1"), val.Int(7)), nil)

	if len(got) != 2 {
		t.Fatalf("join emitted %d tuples, want 2", len(got))
	}
	for _, g := range got {
		if g.Name() != "r_j1" || g.Arity() != 4 {
			t.Fatalf("bad joined tuple %v", g)
		}
		if g.Field(0).AsStr() != "n1" || g.Field(1).AsInt() != 7 || g.Field(2).AsStr() != "n1" {
			t.Fatalf("field layout wrong: %v", g)
		}
	}
	if got[0].Field(3).AsStr() == got[1].Field(3).AsStr() {
		t.Fatal("both matches must appear")
	}
}

func TestJoinNoMatchEmitsNothing(t *testing.T) {
	loop := eventloop.NewSim()
	nb := table.New("neighbor", table.Infinity, 0, []int{1}, loop)
	j := NewJoin("j", nb, []int{0}, []int{0}, "out")
	var got []*tuple.Tuple
	j.ConnectOut(0, collect(&got), 0)
	j.Push(0, tp("evt", val.Str("n1")), nil)
	if len(got) != 0 {
		t.Fatalf("empty table join emitted %v", got)
	}
}

func TestJoinMultiFieldKey(t *testing.T) {
	loop := eventloop.NewSim()
	member := table.New("member", table.Infinity, 0, []int{1, 2}, loop)
	member.Insert(tp("member", val.Str("n1"), val.Str("a"), val.Int(1)))
	member.Insert(tp("member", val.Str("n1"), val.Str("b"), val.Int(2)))
	// Join on (field0, field1) of stream against (0, 1) of table.
	j := NewJoin("j", member, []int{0, 1}, []int{0, 1}, "out")
	var got []*tuple.Tuple
	j.ConnectOut(0, collect(&got), 0)
	j.Push(0, tp("refresh", val.Str("n1"), val.Str("b")), nil)
	if len(got) != 1 || got[0].Field(4).AsInt() != 2 {
		t.Fatalf("multi-key join got %v", got)
	}
}

func TestNotJoin(t *testing.T) {
	loop := eventloop.NewSim()
	member := table.New("member", table.Infinity, 0, []int{1}, loop)
	member.Insert(tp("member", val.Str("n1"), val.Str("a")))
	nj := NewNotJoin("nj", member, []int{1}, []int{1})
	var got []*tuple.Tuple
	nj.ConnectOut(0, collect(&got), 0)
	// "a" is known: eliminated.
	nj.Push(0, tp("candidate", val.Str("n1"), val.Str("a")), nil)
	if len(got) != 0 {
		t.Fatal("antijoin must eliminate matches")
	}
	// "z" unknown: passes.
	nj.Push(0, tp("candidate", val.Str("n1"), val.Str("z")), nil)
	if len(got) != 1 {
		t.Fatal("antijoin must pass non-matches")
	}
}

func TestSelectFilters(t *testing.T) {
	loop := eventloop.NewSim()
	// Keep tuples with field1 > 10.
	prog := pel.NewBuilder().Field(1).Const(val.Int(10)).Op(pel.OpGt).Build()
	sel := NewSelect("sel", prog, env(loop))
	var got []*tuple.Tuple
	sel.ConnectOut(0, collect(&got), 0)
	sel.Push(0, tp("x", val.Str("n1"), val.Int(5)), nil)
	sel.Push(0, tp("x", val.Str("n1"), val.Int(15)), nil)
	if len(got) != 1 || got[0].Field(1).AsInt() != 15 {
		t.Fatalf("select got %v", got)
	}
}

func TestSelectErrorDropsTuple(t *testing.T) {
	loop := eventloop.NewSim()
	bad := pel.NewBuilder().Op(pel.OpAdd).Build() // underflow
	sel := NewSelect("sel", bad, env(loop))
	var got []*tuple.Tuple
	sel.ConnectOut(0, collect(&got), 0)
	if !sel.Push(0, tp("x"), nil) {
		t.Fatal("errors must not block flow")
	}
	if len(got) != 0 {
		t.Fatal("error must drop the tuple")
	}
}

func TestAssignAppends(t *testing.T) {
	loop := eventloop.NewSim()
	// NewSeq := Seq + 1 where Seq is field 1.
	prog := pel.NewBuilder().Field(1).Const(val.Int(1)).Op(pel.OpAdd).Build()
	a := NewAssign("a", prog, env(loop))
	var got []*tuple.Tuple
	a.ConnectOut(0, collect(&got), 0)
	a.Push(0, tp("seq", val.Str("n1"), val.Int(41)), nil)
	if len(got) != 1 || got[0].Arity() != 3 || got[0].Field(2).AsInt() != 42 {
		t.Fatalf("assign got %v", got)
	}
}

func TestProjectBuildsHead(t *testing.T) {
	loop := eventloop.NewSim()
	progs := []*pel.Program{
		pel.NewBuilder().Field(2).Build(),
		pel.NewBuilder().Field(0).Build(),
	}
	p := NewProject("p", "head", progs, env(loop))
	var got []*tuple.Tuple
	p.ConnectOut(0, collect(&got), 0)
	p.Push(0, tp("work", val.Str("a"), val.Str("b"), val.Str("c")), nil)
	if len(got) != 1 || got[0].Name() != "head" {
		t.Fatalf("project got %v", got)
	}
	if got[0].Field(0).AsStr() != "c" || got[0].Field(1).AsStr() != "a" {
		t.Fatalf("projection wrong: %v", got[0])
	}
}

func TestAggStreamMinIsExemplar(t *testing.T) {
	// L2-style: min<D> with D at field 1; the WHOLE winning row flows.
	agg := NewAggStream("agg", AggMin, 1)
	var got []*tuple.Tuple
	agg.ConnectOut(0, collect(&got), 0)
	agg.Push(0, tp("w", val.Str("fingerA"), val.Int(30)), nil)
	agg.Push(0, tp("w", val.Str("fingerB"), val.Int(10)), nil)
	agg.Push(0, tp("w", val.Str("fingerC"), val.Int(99)), nil)
	agg.Flush(tp("evt"), nil)
	if len(got) != 1 {
		t.Fatalf("agg emitted %d, want 1", len(got))
	}
	// Exemplar: the non-aggregated field identifies the winning row.
	if got[0].Field(0).AsStr() != "fingerB" || got[0].Field(1).AsInt() != 10 {
		t.Fatalf("min exemplar wrong: %v", got[0])
	}
	// Flush resets state.
	got = nil
	agg.Flush(tp("evt"), nil)
	if len(got) != 0 {
		t.Fatal("second flush must be empty")
	}
}

func TestAggStreamMaxPicksWinnerRow(t *testing.T) {
	// Narada P0: pick the member with the max random number — the
	// member address rides along with the winning row.
	agg := NewAggStream("agg", AggMax, 1)
	var got []*tuple.Tuple
	agg.ConnectOut(0, collect(&got), 0)
	agg.Push(0, tp("w", val.Str("memberA"), val.Float(0.2)), nil)
	agg.Push(0, tp("w", val.Str("memberB"), val.Float(0.9)), nil)
	agg.Push(0, tp("w", val.Str("memberC"), val.Float(0.5)), nil)
	agg.Flush(tp("evt"), nil)
	if len(got) != 1 || got[0].Field(0).AsStr() != "memberB" {
		t.Fatalf("max exemplar = %v", got)
	}
}

func TestAggStreamMinMaxNoRowsEmitsNothing(t *testing.T) {
	agg := NewAggStream("agg", AggMin, 0)
	var got []*tuple.Tuple
	agg.ConnectOut(0, collect(&got), 0)
	agg.Flush(tp("evt"), nil)
	if len(got) != 0 {
		t.Fatal("min with no rows must emit nothing")
	}
}

func TestAggStreamCountSumAvg(t *testing.T) {
	event := tp("refresh", val.Str("n1"), val.Str("addr9"))
	check := func(fn AggFunc, want val.Value) {
		agg := NewAggStream("agg", fn, 0)
		var got []*tuple.Tuple
		agg.ConnectOut(0, collect(&got), 0)
		for _, v := range []int64{4, 9, 2} {
			agg.Push(0, tp("w", val.Int(v)), nil)
		}
		agg.Flush(event, nil)
		if len(got) != 1 {
			t.Fatalf("%v emitted %d", fn, len(got))
		}
		g := got[0]
		// Accumulators emit event fields + aggregate appended.
		if g.Field(0).AsStr() != "n1" || g.Field(1).AsStr() != "addr9" {
			t.Fatalf("%v lost event fields: %v", fn, g)
		}
		if !g.Field(2).Equal(want) {
			t.Fatalf("%v = %v, want %v", fn, g.Field(2), want)
		}
	}
	check(AggCount, val.Int(3))
	check(AggSum, val.Float(15))
	check(AggAvg, val.Float(5))
}

func TestAggStreamZeroCount(t *testing.T) {
	// Narada R5/R6: count<*> with no matching rows emits C == 0.
	agg := NewAggStream("agg", AggCount, -1)
	var got []*tuple.Tuple
	agg.ConnectOut(0, collect(&got), 0)
	event := tp("refresh", val.Str("n1"), val.Str("addr9"))
	agg.Flush(event, nil)
	if len(got) != 1 {
		t.Fatalf("zero count not emitted: %v", got)
	}
	if got[0].Field(2).AsInt() != 0 {
		t.Fatalf("zero count = %v", got[0])
	}
	// Sum/avg with no rows stay silent.
	for _, fn := range []AggFunc{AggSum, AggAvg} {
		agg := NewAggStream("agg", fn, 0)
		var out []*tuple.Tuple
		agg.ConnectOut(0, collect(&out), 0)
		agg.Flush(event, nil)
		if len(out) != 0 {
			t.Fatalf("%v with no rows emitted %v", fn, out)
		}
	}
	// Nil event (defensive): nothing emitted.
	agg2 := NewAggStream("agg", AggCount, -1)
	var out2 []*tuple.Tuple
	agg2.ConnectOut(0, collect(&out2), 0)
	agg2.Flush(nil, nil)
	if len(out2) != 0 {
		t.Fatal("nil event must emit nothing")
	}
}

func TestAggStreamAggFuncNames(t *testing.T) {
	names := map[AggFunc]string{AggMin: "min", AggMax: "max", AggCount: "count", AggSum: "sum", AggAvg: "avg"}
	for fn, want := range names {
		if fn.String() != want {
			t.Errorf("%d.String() = %q", fn, fn.String())
		}
	}
}

func TestAggTableEmitsOnChange(t *testing.T) {
	loop := eventloop.NewSim()
	succ := table.New("succDist", table.Infinity, 0, []int{1}, loop)
	var got []*tuple.Tuple
	// min<D> grouped by node address (field 0), D at field 2.
	agg := NewAggTable("agg", succ, AggMin, []int{0}, 2, "bestSuccDist")
	agg.ConnectOut(0, collect(&got), 0)

	succ.Insert(tp("succDist", val.Str("n1"), val.Str("s1"), val.Int(40)))
	if len(got) != 1 || got[0].Field(1).AsInt() != 40 {
		t.Fatalf("first agg = %v", got)
	}
	// A worse row does not change the min: no emission.
	succ.Insert(tp("succDist", val.Str("n1"), val.Str("s2"), val.Int(70)))
	if len(got) != 1 {
		t.Fatalf("no-change emitted: %v", got)
	}
	// A better row updates the min.
	succ.Insert(tp("succDist", val.Str("n1"), val.Str("s3"), val.Int(10)))
	if len(got) != 2 || got[1].Field(1).AsInt() != 10 {
		t.Fatalf("min update = %v", got)
	}
	// Deleting the best row re-raises the min.
	succ.Delete(tp("succDist", val.Str("n1"), val.Str("s3"), val.Int(10)))
	if len(got) != 3 || got[2].Field(1).AsInt() != 40 {
		t.Fatalf("after delete = %v", got)
	}
}

func TestAggTableExpiryTriggersRecompute(t *testing.T) {
	loop := eventloop.NewSim()
	succ := table.New("succDist", 10, 0, []int{1}, loop)
	var got []*tuple.Tuple
	agg := NewAggTable("agg", succ, AggMin, []int{0}, 2, "best")
	agg.ConnectOut(0, collect(&got), 0)
	succ.Insert(tp("succDist", val.Str("n1"), val.Str("s1"), val.Int(5)))
	loop.Run(5)
	succ.Insert(tp("succDist", val.Str("n1"), val.Str("s2"), val.Int(50)))
	loop.Run(11) // s1 expires
	succ.Expire()
	if len(got) != 2 || got[1].Field(1).AsInt() != 50 {
		t.Fatalf("expiry recompute = %v", got)
	}
}

func TestInsertEmitsDeltasOnly(t *testing.T) {
	loop := eventloop.NewSim()
	tb := table.New("member", table.Infinity, 0, []int{1}, loop)
	ins := NewInsert("ins", tb)
	var got []*tuple.Tuple
	ins.ConnectOut(0, collect(&got), 0)
	row := tp("member", val.Str("n1"), val.Str("a"))
	ins.Push(0, row, nil)
	ins.Push(0, row, nil) // refresh, no delta
	if len(got) != 1 {
		t.Fatalf("insert deltas = %d, want 1", len(got))
	}
	if tb.Len() != 1 {
		t.Fatal("tuple not stored")
	}
}

func TestDeleteElement(t *testing.T) {
	loop := eventloop.NewSim()
	tb := table.New("neighbor", table.Infinity, 0, []int{1}, loop)
	tb.Insert(tp("neighbor", val.Str("n1"), val.Str("a")))
	del := NewDelete("del", tb)
	del.Push(0, tp("neighbor", val.Str("n1"), val.Str("a")), nil)
	if tb.Len() != 0 {
		t.Fatal("delete element failed")
	}
}

func TestDedup(t *testing.T) {
	loop := eventloop.NewSim()
	d := NewDedup("d", 100, loop, 2)
	var got []*tuple.Tuple
	d.ConnectOut(0, collect(&got), 0)
	a := tp("x", val.Str("n1"), val.Int(1))
	d.Push(0, a, nil)
	d.Push(0, a, nil)
	d.Push(0, tp("x", val.Str("n1"), val.Int(2)), nil)
	if len(got) != 2 {
		t.Fatalf("dedup passed %d, want 2", len(got))
	}
}

func TestDedupTTLForgets(t *testing.T) {
	loop := eventloop.NewSim()
	d := NewDedup("d", 10, loop, 1)
	var got []*tuple.Tuple
	d.ConnectOut(0, collect(&got), 0)
	a := tp("x", val.Int(1))
	d.Push(0, a, nil)
	loop.Run(11)
	d.Push(0, a, nil) // memory expired: passes again
	if len(got) != 2 {
		t.Fatalf("dedup with expired memory passed %d", len(got))
	}
}

// A miniature rule strand wired by hand: the R6 example from §2.5 —
// member@Y(Y, X, S, TimeY, true) :- refreshSeq@X(X, S), neighbor@X(X, Y).
// This is the integration test for the element suite before the planner
// automates the wiring.
func TestHandWiredRuleStrand(t *testing.T) {
	loop := eventloop.NewSim()
	e := env(loop)
	neighbor := table.New("neighbor", table.Infinity, 0, []int{1}, loop)
	neighbor.Insert(tp("neighbor", val.Str("n1"), val.Str("n2")))
	neighbor.Insert(tp("neighbor", val.Str("n1"), val.Str("n3")))

	join := NewJoin("r6.join", neighbor, []int{0}, []int{0}, "r6_w")
	// Work tuple layout after join: [X, S, X', Y] — project head
	// member(Y, X, S, f_now, true).
	head := NewProject("r6.head", "member", []*pel.Program{
		pel.NewBuilder().Field(3).Build(),
		pel.NewBuilder().Field(0).Build(),
		pel.NewBuilder().Field(1).Build(),
		pel.NewBuilder().Op(pel.OpNow).Build(),
		pel.NewBuilder().Const(val.Bool(true)).Build(),
	}, e)
	var got []*tuple.Tuple
	join.ConnectOut(0, head, 0)
	head.ConnectOut(0, collect(&got), 0)

	loop.Run(3.5)
	join.Push(0, tp("refreshSeq", val.Str("n1"), val.Int(8)), nil)

	if len(got) != 2 {
		t.Fatalf("strand derived %d tuples, want 2", len(got))
	}
	for _, m := range got {
		if m.Name() != "member" || m.Field(1).AsStr() != "n1" || m.Field(2).AsInt() != 8 {
			t.Fatalf("bad member tuple %v", m)
		}
		if m.Field(3).AsTime() != 3.5 || !m.Field(4).AsBool() {
			t.Fatalf("timestamp/liveness wrong: %v", m)
		}
		if m.Field(0).AsStr() != "n2" && m.Field(0).AsStr() != "n3" {
			t.Fatalf("destination wrong: %v", m)
		}
	}
}

func BenchmarkJoinProbe(b *testing.B) {
	loop := eventloop.NewSim()
	nb := table.New("neighbor", table.Infinity, 0, []int{1}, loop)
	for i := 0; i < 8; i++ {
		nb.Insert(tp("neighbor", val.Str("n1"), val.Str("p"+string(rune('a'+i)))))
	}
	j := NewJoin("j", nb, []int{0}, []int{0}, "out")
	j.ConnectOut(0, NewDiscard("d"), 0)
	evt := tp("refreshSeq", val.Str("n1"), val.Int(1))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j.Push(0, evt, nil)
	}
}
