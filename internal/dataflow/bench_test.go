package dataflow

import (
	"fmt"
	"testing"

	"p2/internal/pel"
	"p2/internal/table"
	"p2/internal/tuple"
	"p2/internal/val"
)

// Join.Push is the hottest element in OverLog execution. The pinned
// budget is two allocations per *emitted* match — the concatenated
// field slice and the tuple header — with the probe itself (key render,
// index consult, filter evaluation) allocation-free.

type dfClock struct{ now float64 }

func (c *dfClock) Now() float64 { return c.now }

func joinFixture(rows, fanout int) (*Join, *table.Table) {
	tb := table.New("t", table.Infinity, 0, []int{0, 1}, &dfClock{})
	for i := 0; i < rows; i++ {
		tb.Insert(tuple.New("t",
			val.Str(fmt.Sprintf("addr%d", i%(rows/fanout))), val.Int(int64(i)), val.Int(int64(i*3))))
	}
	j := NewJoin("j", tb, []int{0}, []int{0}, "w")
	j.ConnectOut(0, NewDiscard("sink"), 0)
	return j, tb
}

// TestJoinPushAllocBudget pins the equijoin at two allocations per
// emitted match and zero for the probe itself.
func TestJoinPushAllocBudget(t *testing.T) {
	const fanout = 8
	j, _ := joinFixture(64, fanout)
	event := tuple.New("e", val.Str("addr3"), val.Str("payload"))
	allocs := testing.AllocsPerRun(200, func() {
		j.Push(0, event, nil)
	})
	if allocs > 2*fanout {
		t.Fatalf("Join.Push allocated %.1f per event (%d matches), want <= %d",
			allocs, fanout, 2*fanout)
	}
}

// TestJoinPushMissZeroAlloc pins the no-match probe — the common case
// on sparse indices — at zero allocations.
func TestJoinPushMissZeroAlloc(t *testing.T) {
	j, _ := joinFixture(64, 8)
	event := tuple.New("e", val.Str("nobody"), val.Str("payload"))
	allocs := testing.AllocsPerRun(200, func() {
		j.Push(0, event, nil)
	})
	if allocs != 0 {
		t.Fatalf("no-match Join.Push allocated %.1f/op, want 0", allocs)
	}
}

// TestJoinFilteredMatchesDoNotAllocate verifies the fused-selection
// path: matches killed by the predicate must never materialize a
// concatenated tuple.
func TestJoinFilteredMatchesDoNotAllocate(t *testing.T) {
	j, _ := joinFixture(64, 8)
	// Predicate over the concatenation e(loc, pay) ++ t(loc, i, i*3):
	// field 3 (t's i) < 0 is always false, so every match is filtered.
	prog := pel.NewBuilder().Field(3).Const(val.Int(0)).Op(pel.OpLt).Build()
	j.AddFilter(prog, &pel.Env{})
	event := tuple.New("e", val.Str("addr3"), val.Str("payload"))
	allocs := testing.AllocsPerRun(200, func() {
		j.Push(0, event, nil)
	})
	if allocs != 0 {
		t.Fatalf("fully-filtered Join.Push allocated %.1f/op, want 0", allocs)
	}
}

// TestJoinFusionMatchesUnfusedChain checks that a join with fused
// filter+assigns emits exactly what the unfused Join→Select→Assign
// chain emits.
func TestJoinFusionMatchesUnfusedChain(t *testing.T) {
	env := &pel.Env{}
	sel := pel.NewBuilder().Field(3).Const(val.Int(30)).Op(pel.OpLt).Build()
	asn := pel.NewBuilder().Field(3).Const(val.Int(100)).Op(pel.OpAdd).Build()

	run := func(fused bool) []*tuple.Tuple {
		tb := table.New("t", table.Infinity, 0, []int{0, 1}, &dfClock{})
		for i := 0; i < 64; i++ {
			tb.Insert(tuple.New("t",
				val.Str(fmt.Sprintf("addr%d", i%8)), val.Int(int64(i)), val.Int(int64(i*3))))
		}
		var got []*tuple.Tuple
		sink := NewSink("sink", func(tp *tuple.Tuple) { got = append(got, tp) })
		j := NewJoin("j", tb, []int{0}, []int{0}, "w")
		if fused {
			j.AddFilter(sel, env)
			j.AddAssigns([]*pel.Program{asn}, env)
			j.ConnectOut(0, sink, 0)
		} else {
			s := NewSelect("s", sel, env)
			a := NewAssign("a", asn, env)
			j.ConnectOut(0, s, 0)
			s.ConnectOut(0, a, 0)
			a.ConnectOut(0, sink, 0)
		}
		j.Push(0, tuple.New("e", val.Str("addr3"), val.Str("payload")), nil)
		return got
	}

	fused, unfused := run(true), run(false)
	if len(fused) != len(unfused) || len(fused) == 0 {
		t.Fatalf("fused emitted %d, unfused %d", len(fused), len(unfused))
	}
	for i := range fused {
		if !fused[i].Equal(unfused[i]) {
			t.Fatalf("emit %d: fused %v != unfused %v", i, fused[i], unfused[i])
		}
	}
}

// TestMultiAssignMatchesAssignChain checks the fused assignment run
// against the per-step chain, including later programs reading earlier
// results.
func TestMultiAssignMatchesAssignChain(t *testing.T) {
	env := &pel.Env{}
	p1 := pel.NewBuilder().Field(1).Const(val.Int(10)).Op(pel.OpAdd).Build()
	p2 := pel.NewBuilder().Field(2).Const(val.Int(2)).Op(pel.OpMul).Build() // reads p1's result
	in := tuple.New("e", val.Str("n"), val.Int(5))

	var fused, chained *tuple.Tuple
	ma := NewMultiAssign("ma", []*pel.Program{p1, p2}, env)
	ma.ConnectOut(0, NewSink("s", func(tp *tuple.Tuple) { fused = tp }), 0)
	ma.Push(0, in, nil)

	a1 := NewAssign("a1", p1, env)
	a2 := NewAssign("a2", p2, env)
	a1.ConnectOut(0, a2, 0)
	a2.ConnectOut(0, NewSink("s2", func(tp *tuple.Tuple) { chained = tp }), 0)
	a1.Push(0, in, nil)

	if fused == nil || chained == nil || !fused.Equal(chained) {
		t.Fatalf("fused %v != chained %v", fused, chained)
	}
}

func BenchmarkJoinPush(b *testing.B) {
	for _, fanout := range []int{1, 8} {
		b.Run(fmt.Sprintf("fanout=%d", fanout), func(b *testing.B) {
			j, _ := joinFixture(64, fanout)
			event := tuple.New("e", val.Str("addr3"), val.Str("payload"))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				j.Push(0, event, nil)
			}
		})
	}
}

func BenchmarkJoinPushFiltered(b *testing.B) {
	j, _ := joinFixture(64, 8)
	// Keep ~1 of 8 matches, Chord-style.
	prog := pel.NewBuilder().Field(3).Const(val.Int(8)).Op(pel.OpLt).Build()
	j.AddFilter(prog, &pel.Env{})
	event := tuple.New("e", val.Str("addr0"), val.Str("payload"))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j.Push(0, event, nil)
	}
}

func BenchmarkMultiAssign(b *testing.B) {
	env := &pel.Env{}
	progs := []*pel.Program{
		pel.NewBuilder().Field(1).Const(val.Int(10)).Op(pel.OpAdd).Build(),
		pel.NewBuilder().Field(2).Const(val.Int(2)).Op(pel.OpMul).Build(),
		pel.NewBuilder().Field(3).Const(val.Int(1)).Op(pel.OpSub).Build(),
	}
	ma := NewMultiAssign("ma", progs, env)
	ma.ConnectOut(0, NewDiscard("sink"), 0)
	in := tuple.New("e", val.Str("n"), val.Int(5))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ma.Push(0, in, nil)
	}
}
