package dataflow

import (
	"p2/internal/eventloop"
	"p2/internal/tuple"
)

// Queue is a bounded push-in / pull-out buffer. When full it blocks its
// producer (Push returns false and the producer's poke fires when space
// opens); when empty it blocks its consumer (Pull returns nil and the
// consumer's poke fires when a tuple arrives). This is the blocking
// queue of §3.3 — P2 queues block rather than drop.
type Queue struct {
	Base
	buf      []*tuple.Tuple
	capacity int
	pushPoke pokeSlot
	pullPoke pokeSlot
}

// NewQueue returns a queue holding at most capacity tuples (minimum 1).
func NewQueue(name string, capacity int) *Queue {
	if capacity < 1 {
		capacity = 1
	}
	return &Queue{Base: NewBase(name, 0, 0), capacity: capacity}
}

// Len returns the number of queued tuples.
func (q *Queue) Len() int { return len(q.buf) }

// Push enqueues t. Returns false when the queue has become full; the
// poke fires when space opens.
func (q *Queue) Push(_ int, t *tuple.Tuple, poke Poke) bool {
	if len(q.buf) >= q.capacity {
		// Tuple refused entirely: the producer must hold it and retry.
		q.pushPoke.arm(poke)
		return false
	}
	q.buf = append(q.buf, t)
	q.pullPoke.fire()
	if len(q.buf) >= q.capacity {
		q.pushPoke.arm(poke)
		return false
	}
	return true
}

// Pull dequeues the oldest tuple, or returns nil and arms poke.
func (q *Queue) Pull(_ int, poke Poke) *tuple.Tuple {
	if len(q.buf) == 0 {
		q.pullPoke.arm(poke)
		return nil
	}
	t := q.buf[0]
	copy(q.buf, q.buf[1:])
	q.buf = q.buf[:len(q.buf)-1]
	q.pushPoke.fire()
	return t
}

// TimedPullPush is the active element bridging a pull producer to a
// push consumer: it pulls from its input and pushes downstream every
// interval seconds (interval 0 = as fast as the loop allows, via
// deferred procedure calls). It is the "TimedPullPush 0" element of
// Figure 2.
type TimedPullPush struct {
	Base
	loop     eventloop.Loop
	interval float64
	running  bool
	waiting  bool // parked on a poke from either side
	stopped  bool
	runFn    func() // bound once; rescheduling allocates no closure
	pokeFn   Poke
}

// NewTimedPullPush creates the element; call Start to begin transfers.
func NewTimedPullPush(name string, loop eventloop.Loop, interval float64) *TimedPullPush {
	tp := &TimedPullPush{Base: NewBase(name, 1, 1), loop: loop, interval: interval}
	tp.runFn = tp.run
	tp.pokeFn = tp.poke
	return tp
}

// Start begins the transfer loop.
func (tp *TimedPullPush) Start() {
	if tp.running {
		return
	}
	tp.running = true
	tp.loop.Defer(tp.runFn)
}

// Stop halts transfers permanently.
func (tp *TimedPullPush) Stop() { tp.stopped = true }

// poke is the continuation handed to both neighbors.
func (tp *TimedPullPush) poke() {
	if tp.waiting && !tp.stopped {
		tp.waiting = false
		tp.loop.Defer(tp.runFn)
	}
}

func (tp *TimedPullPush) run() {
	if tp.stopped {
		return
	}
	t := tp.PullIn(0, tp.pokeFn)
	if t == nil {
		tp.waiting = true
		return
	}
	ok := tp.PushOut(0, t, tp.pokeFn)
	if !ok {
		// Downstream refused further pushes but accepted this tuple;
		// wait for its poke before transferring more.
		tp.waiting = true
		return
	}
	if tp.interval > 0 {
		eventloop.ScheduleFree(tp.loop, tp.interval, tp.runFn)
	} else {
		tp.loop.Defer(tp.runFn)
	}
}

// Mux forwards pushes from any number of producers to one output.
type Mux struct {
	Base
}

// NewMux returns a push fan-in element.
func NewMux(name string) *Mux { return &Mux{Base: NewBase(name, 1, 0)} }

// Push forwards t downstream, propagating flow control.
func (m *Mux) Push(_ int, t *tuple.Tuple, poke Poke) bool {
	return m.PushOut(0, t, poke)
}

// Demux routes pushed tuples to an output selected by a key function
// (typically the tuple name, as in Figure 2's big input demultiplexer).
// Unrouted tuples go to the default output if present, else are dropped.
type Demux struct {
	Base
	key      func(*tuple.Tuple) string
	routes   map[string]int
	def      int // default output port, -1 = drop
	nOutputs int
}

// NewDemux creates a demux with nOutputs push outputs. Route keys map to
// output ports via Route; def < 0 drops unrouted tuples.
func NewDemux(name string, key func(*tuple.Tuple) string, nOutputs, def int) *Demux {
	return &Demux{
		Base:     NewBase(name, nOutputs, 0),
		key:      key,
		routes:   make(map[string]int),
		def:      def,
		nOutputs: nOutputs,
	}
}

// Route directs tuples whose key equals k to output port.
func (d *Demux) Route(k string, port int) { d.routes[k] = port }

// Push routes t by key.
func (d *Demux) Push(_ int, t *tuple.Tuple, poke Poke) bool {
	port, ok := d.routes[d.key(t)]
	if !ok {
		if d.def < 0 {
			return true // dropped; keep accepting
		}
		port = d.def
	}
	return d.PushOut(port, t, poke)
}

// Dup duplicates each pushed tuple to every output — used when one
// event feeds several rule strands (the "Dup" element of Figure 2).
// Tuples being immutable makes duplication a pointer copy.
type Dup struct {
	Base
	n int
}

// NewDup returns a duplicator with n outputs.
func NewDup(name string, n int) *Dup { return &Dup{Base: NewBase(name, n, 0), n: n} }

// Push forwards t to all outputs. Flow control is the conjunction of
// downstream signals.
func (d *Dup) Push(_ int, t *tuple.Tuple, poke Poke) bool {
	ok := true
	for i := 0; i < d.n; i++ {
		if !d.PushOut(i, t, poke) {
			ok = false
		}
	}
	return ok
}

// RoundRobin merges several pull inputs into one pull output, serving
// inputs in rotating order — Figure 2's "RoundRobin" scheduler pulling
// rule outputs toward the network.
type RoundRobin struct {
	Base
	n    int
	next int
}

// NewRoundRobin returns a pull fan-in over n inputs.
func NewRoundRobin(name string, n int) *RoundRobin {
	return &RoundRobin{Base: NewBase(name, 0, n), n: n}
}

// Pull tries each input once, starting after the last served one. When
// every input is dry the consumer's poke is armed on all of them.
func (r *RoundRobin) Pull(_ int, poke Poke) *tuple.Tuple {
	for i := 0; i < r.n; i++ {
		idx := (r.next + i) % r.n
		if t := r.PullIn(idx, poke); t != nil {
			r.next = (idx + 1) % r.n
			return t
		}
	}
	return nil
}

// Sink terminates a push chain by invoking a callback per tuple.
type Sink struct {
	Base
	fn func(*tuple.Tuple)
}

// NewSink wraps fn as a push endpoint.
func NewSink(name string, fn func(*tuple.Tuple)) *Sink {
	return &Sink{Base: NewBase(name, 0, 0), fn: fn}
}

// Push hands t to the callback.
func (s *Sink) Push(_ int, t *tuple.Tuple, _ Poke) bool {
	s.fn(t)
	return true
}

// Discard silently drops everything pushed into it.
type Discard struct{ Base }

// NewDiscard returns a drop endpoint.
func NewDiscard(name string) *Discard { return &Discard{Base: NewBase(name, 0, 0)} }

// Push drops t.
func (d *Discard) Push(int, *tuple.Tuple, Poke) bool { return true }

// Tap invokes a callback on each tuple and passes it through unchanged —
// the logging port facility of §3.5 and the engine's watch mechanism.
type Tap struct {
	Base
	fn func(*tuple.Tuple)
}

// NewTap wraps fn as a pass-through observer.
func NewTap(name string, fn func(*tuple.Tuple)) *Tap {
	return &Tap{Base: NewBase(name, 1, 0), fn: fn}
}

// Push observes and forwards t.
func (t *Tap) Push(_ int, tp *tuple.Tuple, poke Poke) bool {
	t.fn(tp)
	return t.PushOut(0, tp, poke)
}

// Source is a pull endpoint fed by a function returning the next tuple
// (or nil). Useful in tests and hand-wired graphs.
type Source struct {
	Base
	fn func() *tuple.Tuple
}

// NewSource wraps fn as a pull origin.
func NewSource(name string, fn func() *tuple.Tuple) *Source {
	return &Source{Base: NewBase(name, 0, 0), fn: fn}
}

// Pull returns the next tuple from the function.
func (s *Source) Pull(_ int, _ Poke) *tuple.Tuple { return s.fn() }

// Periodic emits periodic(addr, eventID, period) tuples every period
// seconds — OverLog's built-in periodic() stream (§2.3). A count > 0
// limits the number of firings; jitter staggers the first firing to
// avoid lock-step synchronization across nodes.
type Periodic struct {
	Base
	loop    eventloop.Loop
	addr    string
	period  float64
	count   int64 // remaining firings; < 0 = unlimited
	seq     int64
	stopped bool
	mk      func(addr string, seq int64, period float64) *tuple.Tuple
	fireFn  func() // bound once; each tick re-arms on a pooled timer
}

// NewPeriodic creates a periodic source pushing to output 0 once
// started. mk builds each emitted tuple (the planner supplies one that
// matches the periodic predicate's arity).
func NewPeriodic(name string, loop eventloop.Loop, addr string, period float64, count int64,
	mk func(addr string, seq int64, period float64) *tuple.Tuple) *Periodic {
	if count == 0 {
		count = -1
	}
	p := &Periodic{
		Base: NewBase(name, 1, 0), loop: loop, addr: addr,
		period: period, count: count, mk: mk,
	}
	p.fireFn = p.fire
	return p
}

// Start schedules the first firing after delay seconds. Stop is the
// only control: no timer handle is kept, so the ticking rides pooled
// fire-and-forget timers.
func (p *Periodic) Start(delay float64) {
	eventloop.ScheduleFree(p.loop, delay, p.fireFn)
}

// Stop halts future firings.
func (p *Periodic) Stop() { p.stopped = true }

func (p *Periodic) fire() {
	if p.stopped || p.count == 0 {
		return
	}
	p.seq++
	t := p.mk(p.addr, p.seq, p.period)
	// Periodic ignores downstream flow control: timers must not stall
	// (a full downstream queue loses ticks, matching timer semantics).
	p.PushOut(0, t, nil)
	if p.count > 0 {
		p.count--
	}
	if p.count != 0 && p.period > 0 {
		eventloop.ScheduleFree(p.loop, p.period, p.fireFn)
	}
}

// Graph owns a set of elements and offers convenience wiring. It exists
// for construction-time bookkeeping; at runtime elements call each other
// directly.
type Graph struct {
	elements []Element
}

// NewGraph returns an empty graph.
func NewGraph() *Graph { return &Graph{} }

// Add registers an element and returns it unchanged.
func Add[E Element](g *Graph, e E) E {
	g.elements = append(g.elements, e)
	return e
}

// Elements returns all registered elements in insertion order.
func (g *Graph) Elements() []Element { return g.elements }

// Size returns the element count.
func (g *Graph) Size() int { return len(g.elements) }
