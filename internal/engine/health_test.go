package engine

// Engine-level tests for the condition engine: sysHealth rows delivered
// by the introspection refresh, the Conditions accessor, and the
// cross-package invariant that introspect.NetStat's drop array matches
// the transport's cause space.

import (
	"testing"

	"p2/internal/health"
	"p2/internal/introspect"
	"p2/internal/transport"
)

// TestNetStatDropArityMatchesCauses pins the contract between the two
// packages that cannot import each other's constant: sysNet's trailing
// drop columns are indexed by transport.DropCause.
func TestNetStatDropArityMatchesCauses(t *testing.T) {
	var ns introspect.NetStat
	if len(ns.Drops) != transport.NumDropCauses {
		t.Fatalf("introspect.NetStat.Drops has %d slots, transport has %d causes",
			len(ns.Drops), transport.NumDropCauses)
	}
}

func TestSysHealthPopulates(t *testing.T) {
	// Explicit interval: force the refresh on without a sys* consumer.
	r := newRigOpts(t, pingPongSrc, Options{IntrospectInterval: 1}, "a", "b")
	pingN(r, "a", "b", 2)
	r.loop.Run(3)

	rows := sysRows(r, "a", introspect.HealthRelation)
	if len(rows) != len(health.ConditionTypes()) {
		t.Fatalf("sysHealth has %d rows, want %d: %v",
			len(rows), len(health.ConditionTypes()), rows)
	}
	byType := map[string]string{}
	for _, row := range rows {
		if row.Arity() != 5 {
			t.Fatalf("sysHealth row arity %d: %v", row.Arity(), row)
		}
		byType[row.Field(1).AsStr()] = row.Field(2).AsStr()
	}
	// A healthy two-node ping-pong: nothing partitioned, nothing
	// saturated.
	if byType["Partitioned"] != "False" || byType["BacklogSaturated"] != "False" {
		t.Fatalf("healthy overlay sysHealth = %v", byType)
	}

	// The Go accessor agrees with the table.
	for _, c := range r.nodes["a"].Conditions() {
		if string(c.Status) != byType[string(c.Type)] {
			t.Fatalf("Conditions() %s=%s but sysHealth says %s",
				c.Type, c.Status, byType[string(c.Type)])
		}
	}
}

// TestSysHealthReactsToInstalledRule closes the loop the subsystem is
// for: an OverLog rule listening on sysHealth deltas fires when a
// condition row changes — here, Converged flipping once the ping-pong
// burst settles.
func TestSysHealthReactsToInstalledRule(t *testing.T) {
	r := newRig(t, pingPongSrc, "a", "b")
	pingN(r, "a", "b", 2)
	r.loop.Run(2)
	err := r.nodes["a"].Install(`
		materialize(converged, infinity, infinity, keys(1,2)).
		C1 converged@N(N, S) :- sysHealth@N(N, Ty, S, Re, Si), Ty == "Converged".
	`)
	if err != nil {
		t.Fatal(err)
	}
	// Default ConvergeWindow is 5 s of table quiet; run well past it.
	r.loop.Run(12)
	rows := r.nodes["a"].Table("converged").Scan()
	found := false
	for _, row := range rows {
		if row.Field(1).AsStr() == "True" {
			found = true
		}
	}
	if !found {
		t.Fatalf("converged relation never saw Converged=True: %v (conditions %+v)",
			rows, r.nodes["a"].Conditions())
	}
}

// TestMonitorSourceInstalls grafts the shipped monitor library onto a
// live node and checks the healthAlarm machinery reacts to a real
// condition (a partitioned peer).
func TestMonitorSourceInstalls(t *testing.T) {
	r := newRig(t, pingPongSrc, "a", "b")
	pingN(r, "a", "b", 2)
	r.loop.Run(2)
	if err := r.nodes["a"].Install(health.MonitorSource()); err != nil {
		t.Fatal(err)
	}

	r.net.Partition("a", "b", true)
	pingN(r, "a", "b", 4) // these will exhaust their retry budget
	// Run long enough for the retry budget to exhaust and a refresh to
	// deliver the condition, but inside the alarm's 30 s soft-state
	// lifetime (and the 10 s suspect window that keeps it refreshed).
	r.loop.Run(16)

	alarms := r.nodes["a"].Table("healthAlarm").Scan()
	types := map[string]bool{}
	for _, row := range alarms {
		types[row.Field(1).AsStr()] = true
	}
	if !types["Partitioned"] {
		t.Fatalf("no Partitioned healthAlarm after partition: %v (conditions %+v)",
			alarms, r.nodes["a"].Conditions())
	}
	if lossy := r.nodes["a"].Table("lossyPeer").Scan(); len(lossy) == 0 {
		t.Fatalf("lossyPeer empty after retry-budget drops")
	}
}
