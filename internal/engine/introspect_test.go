package engine

// Tests for the introspection subsystem: system tables fed from
// runtime counters, and OverLog rules installed at runtime that query
// them — the runtime observing itself from inside the language.

import (
	"strings"
	"testing"

	"p2/internal/health"
	"p2/internal/introspect"
	"p2/internal/tuple"
	"p2/internal/val"
)

const pingPongSrc = `
	materialize(seen, infinity, infinity, keys(1,2,3)).
	P1 ping@Y(Y, X, E) :- pingEvent@X(X, Y, E).
	P2 pong@X(X, Y, E) :- ping@Y(Y, X, E).
	P3 seen@X(X, Y, E) :- pong@X(X, Y, E).
`

func pingN(r *rig, from, to string, n int) {
	for i := 0; i < n; i++ {
		r.nodes[from].InjectTuple(tuple.New("pingEvent",
			val.Str(from), val.Str(to), val.Str("e"+string(rune('0'+i)))))
	}
}

// sysRows scans a system table into tuples.
func sysRows(r *rig, addr, rel string) []*tuple.Tuple {
	tb := r.nodes[addr].Table(rel)
	if tb == nil {
		r.t.Fatalf("%s missing system table %s", addr, rel)
	}
	return tb.ScanSorted()
}

func TestSystemTablesPopulate(t *testing.T) {
	// An explicit interval forces the refresh on even though nothing in
	// the program reads sys* (demand-driven introspection would
	// otherwise leave the tables empty — see TestIntrospectionLazy).
	r := newRigOpts(t, pingPongSrc, Options{IntrospectInterval: 1}, "a", "b")
	pingN(r, "a", "b", 3)
	r.loop.Run(5) // several introspection refreshes at 1 s

	// sysTable reports the application relation (and not sys* tables).
	var seenRow *tuple.Tuple
	for _, row := range sysRows(r, "a", introspect.TableRelation) {
		if strings.HasPrefix(row.Field(1).AsStr(), "sys") {
			t.Fatalf("sysTable reports a system table: %v", row)
		}
		if row.Field(1).AsStr() == "seen" {
			seenRow = row
		}
	}
	if seenRow == nil {
		t.Fatal("no sysTable row for relation seen")
	}
	if got := seenRow.Field(2).AsInt(); got != 3 {
		t.Fatalf("seen tuple count = %d, want 3", got)
	}
	if seenRow.Field(3).AsInt() != 3 { // inserts
		t.Fatalf("seen inserts = %v", seenRow)
	}

	// sysRule carries nonzero fire counters for the ping-pong rules.
	fires := map[string]int64{}
	for _, row := range sysRows(r, "a", introspect.RuleRelation) {
		fires[row.Field(1).AsStr()] = row.Field(2).AsInt()
	}
	// P1 (pingEvent) and P3 (pong) fire at a; P2 (ping) fires at b.
	if fires["P1"] != 3 || fires["P3"] != 3 || fires["P2"] != 0 {
		t.Fatalf("rule fires = %v", fires)
	}

	// sysNet shows traffic in both directions between the two nodes.
	aNet := sysRows(r, "a", introspect.NetRelation)
	if len(aNet) != 1 || aNet[0].Field(1).AsStr() != "b" {
		t.Fatalf("a's sysNet = %v", aNet)
	}
	if aNet[0].Field(2).AsInt() == 0 || aNet[0].Field(3).AsInt() == 0 || aNet[0].Field(4).AsInt() == 0 {
		t.Fatalf("a's sysNet has zero counters: %v", aNet[0])
	}

	// sysNode reports uptime and processed events.
	node := sysRows(r, "a", introspect.NodeRelation)
	if len(node) != 1 {
		t.Fatalf("sysNode = %v", node)
	}
	if node[0].Field(1).AsFloat() <= 0 || node[0].Field(2).AsInt() == 0 {
		t.Fatalf("sysNode counters: %v", node[0])
	}
}

// TestIntrospectionLazy pins the demand-driven default: a node whose
// program never reads a sys* relation skips the periodic snapshot
// entirely (the tables stay empty), health conditions still evaluate
// on demand, and a Go-level Watch on a system table arms the refresh
// after the fact.
func TestIntrospectionLazy(t *testing.T) {
	r := newRig(t, pingPongSrc, "a", "b")
	pingN(r, "a", "b", 2)
	r.loop.Run(3)

	n := r.nodes["a"]
	if n.Table(introspect.NodeRelation) != nil {
		t.Fatal("sysNode instantiated with no sys* consumer anywhere")
	}
	// Conditions evaluate on demand: a healthy ping-pong pair must not
	// report Unknown across the board.
	known := 0
	for _, c := range n.Conditions() {
		if c.Status != health.StatusUnknown {
			known++
		}
	}
	if known == 0 {
		t.Fatalf("on-demand conditions all Unknown: %+v", n.Conditions())
	}

	// A Go-level watch on a system table is a consumer: the refresh
	// arms and rows start flowing.
	var events int
	n.Watch(introspect.NodeRelation, func(WatchEvent) { events++ })
	r.loop.Run(6)
	tb := n.Table(introspect.NodeRelation)
	if tb == nil || tb.Len() == 0 || events == 0 {
		t.Fatalf("watching %s did not arm the refresh (table=%v events=%d)",
			introspect.NodeRelation, tb, events)
	}
	// Node b, still unconsumed, stays dark.
	if r.nodes["b"].Table(introspect.NodeRelation) != nil {
		t.Fatal("b instantiated sysNode; laziness must be per node")
	}
}

func TestIntrospectionDisabled(t *testing.T) {
	r := newRig(t, pingPongSrc, "a")
	// Rebuild node a with introspection off.
	n := NewNode("c", r.loop, r.net, r.nodes["a"].Plan(), Options{IntrospectInterval: -1})
	if err := n.Start(); err != nil {
		t.Fatal(err)
	}
	r.loop.Run(3)
	if tb := n.Table(introspect.NodeRelation); tb != nil && tb.Len() != 0 {
		t.Fatal("system tables populated despite IntrospectInterval < 0")
	}
}

// TestInstallAggregatesSystemTable is the simulated-path acceptance
// test: a rule installed at runtime joins sysTable, computes a sum
// aggregate, and exports it as a watchable materialized relation.
func TestInstallAggregatesSystemTable(t *testing.T) {
	r := newRig(t, pingPongSrc, "a", "b")
	pingN(r, "a", "b", 3)
	r.loop.Run(2)

	var inserted []*tuple.Tuple
	err := r.nodes["a"].Install(`
		materialize(totalTuples, infinity, 1, keys(1)).
		T1 totalTuples@N(N, sum<C>) :- sysTable@N(N, T, C, I, D, R).
	`)
	if err != nil {
		t.Fatal(err)
	}
	r.nodes["a"].Watch("totalTuples", func(ev WatchEvent) {
		if ev.Dir == DirInserted {
			inserted = append(inserted, ev.Tuple)
		}
	})
	r.loop.Run(5) // several refreshes after installation

	// The aggregate must equal the sum the node's own sysTable reports.
	want := int64(0)
	for _, row := range sysRows(r, "a", introspect.TableRelation) {
		want += row.Field(2).AsInt()
	}
	rows := r.nodes["a"].Table("totalTuples").Scan()
	if len(rows) != 1 {
		t.Fatalf("totalTuples rows = %v", rows)
	}
	if got := rows[0].Field(1).AsInt(); got != want || got < 3 {
		t.Fatalf("totalTuples = %d, want %d (>= 3)", got, want)
	}
	if len(inserted) == 0 {
		t.Fatal("installed relation produced no watch events")
	}

	// Node b did not install anything; it has no such table.
	if r.nodes["b"].Table("totalTuples") != nil {
		t.Fatal("install leaked to another node sharing the plan")
	}
	if r.nodes["b"].Plan().IsTable("totalTuples") {
		t.Fatal("install mutated the shared base plan")
	}
}

// TestInstallPeriodicRuleShipsSummaries covers the remaining install
// surface: a periodic rule joining a system table on one node and
// shipping derived tuples to another, plus facts in installed source.
func TestInstallPeriodicRuleShipsSummaries(t *testing.T) {
	r := newRig(t, pingPongSrc, "a", "b")
	pingN(r, "a", "b", 2)
	r.loop.Run(2)

	got := r.watch("b", "health", DirReceived)
	err := r.nodes["a"].Install(`
		materialize(mon, infinity, 1, keys(1)).
		mon@N(N, "b").
		H1 health@M(M, N, F) :- periodic@N(N, E, 1), sysRule@N(N, "P1", F), mon@N(N, M).
	`)
	if err != nil {
		t.Fatal(err)
	}
	r.loop.Run(5)
	if len(*got) == 0 {
		t.Fatal("no health summaries arrived at b")
	}
	last := (*got)[len(*got)-1]
	if last.Field(1).AsStr() != "a" || last.Field(2).AsInt() != 2 {
		t.Fatalf("health = %v, want P1 fire count 2 from a", last)
	}
}

// TestInstallJoinsSysNetControlState is the sim-path acceptance test
// for the transport-introspection columns: an installed rule joins
// sysNet's congestion window, RTO, and backlog columns and materializes
// them as an application relation.
func TestInstallJoinsSysNetControlState(t *testing.T) {
	r := newRig(t, pingPongSrc, "a", "b")
	pingN(r, "a", "b", 3)
	r.loop.Run(2)
	err := r.nodes["a"].Install(`
		materialize(peerWindow, infinity, infinity, keys(1,2)).
		W1 peerWindow@N(N, D, W, T, B) :- sysNet@N(N, D, S, R, By, Rt, W, T, B, F, DR, DC, DD, DO).
	`)
	if err != nil {
		t.Fatal(err)
	}
	// sysNet rows only produce deltas (and thus trigger the installed
	// rule) when the counters move, so generate traffic post-install.
	pingN(r, "a", "b", 2)
	r.loop.Run(3)
	rows := r.nodes["a"].Table("peerWindow").Scan()
	if len(rows) != 1 || rows[0].Field(1).AsStr() != "b" {
		t.Fatalf("peerWindow rows = %v", rows)
	}
	if w := rows[0].Field(2).AsFloat(); w < 1 {
		t.Fatalf("joined cwnd = %v, want >= 1", w)
	}
	if rto := rows[0].Field(3).AsFloat(); rto <= 0 {
		t.Fatalf("joined rto = %v, want > 0", rto)
	}
	if b := rows[0].Field(4).AsInt(); b != 0 {
		t.Fatalf("joined backlog = %d on an idle link", b)
	}
}

func TestInstallErrors(t *testing.T) {
	r := newRig(t, pingPongSrc, "a")
	n := r.nodes["a"]
	for _, tc := range []struct{ name, src, wantErr string }{
		{"parse", "bogus !!", "expected"},
		{"reserved", "materialize(sysMine, 10, 10, keys(1)).", "reserved"},
		{"sysWrite", `S1 sysTable@N(N, "fake", 9, 0, 0, 0) :- periodic@N(N, E, 1).`, "read-only"},
		{"arity", "X1 out@N(N) :- seen@N(N).", "arity"},
		{"conflictingTable", "materialize(seen, 1, 1, keys(1)).", "declared as"},
		{"unboundAggVar", "X2 out@N(N, sum<Z>) :- sysTable@N(N, T, C, I, D, R).", "not bound"},
	} {
		if err := n.Install(tc.src); err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: err = %v, want substring %q", tc.name, err, tc.wantErr)
		}
	}
	// Failed installs must not leave partial state behind.
	if n.Table("out") != nil || n.Plan().IsTable("sysMine") {
		t.Fatal("failed install left state behind")
	}

	stopped := NewNode("z", r.loop, r.net, n.Plan(), Options{})
	if err := stopped.Install("W1 a@N(N) :- b@N(N)."); err == nil {
		t.Fatal("install before Start must fail")
	}
}

// TestInstalledRulesAppearInSysRule closes the loop: rules added at
// runtime are themselves visible to introspection.
func TestInstalledRulesAppearInSysRule(t *testing.T) {
	r := newRig(t, pingPongSrc, "a")
	if err := r.nodes["a"].Install(`
		materialize(beat, infinity, 1, keys(1)).
		B1 beat@N(N, F) :- periodic@N(N, E, 1), sysNode@N(N, U, F, Q).
	`); err != nil {
		t.Fatal(err)
	}
	r.loop.Run(4)
	for _, row := range sysRows(r, "a", introspect.RuleRelation) {
		if row.Field(1).AsStr() == "B1" {
			if row.Field(2).AsInt() == 0 {
				t.Fatal("installed rule shows zero fires after 4 s of 1 s periodics")
			}
			return
		}
	}
	t.Fatal("installed rule B1 missing from sysRule")
}
