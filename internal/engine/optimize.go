package engine

// This file is the engine half of the query optimizer: live statistics
// from the node's own tables feed the planner's cost decisions, and the
// periodic introspection refresh doubles as the adaptive replanning
// tick — the runtime observing itself through the same machinery that
// fills the sys* tables, and reacting to what it sees.

import (
	"p2/internal/planner"
	"p2/internal/table"
)

// liveStats implements planner.Stats from the node's live tables, with
// the catalog heuristics as cold-start fallback: a relation that holds
// no rows yet (or has no index on the asked-for key) costs the same as
// it did at start, so plans only move once real data has arrived.
type liveStats struct {
	n   *Node
	cat planner.Stats
}

func (ls liveStats) Cardinality(name string) float64 {
	if tb := ls.n.tables[name]; tb != nil {
		if l := tb.Len(); l > 0 {
			return float64(l)
		}
	}
	return ls.cat.Cardinality(name)
}

func (ls liveStats) DistinctKeys(name string, key []int) float64 {
	if tb := ls.n.tables[name]; tb != nil {
		if d := tb.DistinctKeys(key); d > 0 {
			return float64(d)
		}
	}
	return ls.cat.DistinctKeys(name, key)
}

func (n *Node) liveStats() planner.Stats {
	return liveStats{n: n, cat: planner.NewCatalogStats(n.plan)}
}

// driftEntry is one relation of a rule's cost basis, resolved against
// the node: live table handle (nil for relations without one) and the
// catalog fallback that stands in while the table is empty.
type driftEntry struct {
	tb       *table.Table
	costed   float64
	fallback float64
}

// buildDrift precompiles s.rule.CostBasis into the flat slice the
// per-refresh drift scan walks. Runs with every chain (re)build.
func (n *Node) buildDrift(s *strand) {
	s.drift = s.drift[:0]
	if len(s.rule.CostBasis) == 0 {
		return
	}
	cat := planner.NewCatalogStats(n.plan)
	for name, costed := range s.rule.CostBasis {
		s.drift = append(s.drift, driftEntry{
			tb: n.tables[name], costed: costed, fallback: cat.Cardinality(name),
		})
	}
}

// maybeReplan re-plans every optimized rule whose live table
// cardinalities have drifted past the configured factor from the values
// its current plan was costed with. It runs on each introspection
// refresh, just before the sysPlan rows are emitted, so a freshly
// swapped plan is visible in the very refresh that produced it.
//
// Swaps happen in place: the strand keeps its identity, rule ID, fire
// counter, and pending event queue — sysRule continuity survives a
// swap, and events queued against the old chain simply execute through
// the new one (the plans are tuple-equivalent by construction). Replans
// are deterministic under sharding because they depend only on the
// node's own sim-clock refresh schedule and table state, both of which
// are identical across shard counts.
func (n *Node) maybeReplan() {
	cfg := n.opts.Optimizer
	if cfg == nil || cfg.NoReplan {
		return
	}
	// The drift scan runs every refresh on every optimized rule, so it
	// walks precompiled slices (see buildDrift) and raw row counts (no
	// expiry walk — the sweeper keeps those near-exact). A replan
	// decision then re-reads accurately through liveStats.
	var st planner.Stats
	swapped := false
	for _, s := range n.allStrands {
		drifted := false
		for i := range s.drift {
			e := &s.drift[i]
			cur := e.fallback
			if e.tb != nil {
				if l := e.tb.LenRaw(); l > 0 {
					cur = float64(l)
				}
			}
			if cfg.Drifted(e.costed, cur) {
				drifted = true
				break
			}
		}
		if !drifted {
			continue
		}
		if st == nil {
			st = n.liveStats()
		}
		nr, changed := n.plan.Reoptimize(s.rule, st, *cfg)
		if !changed {
			// Same order still wins; the cost basis was refreshed in
			// place, so recompile the drift slice or this rule would
			// re-plan on every refresh until the order finally moved.
			n.buildDrift(s)
			continue
		}
		for i, pr := range n.plan.Rules {
			if pr == s.rule {
				n.plan.Rules[i] = nr
				break
			}
		}
		s.rule = nr
		n.buildChain(s)
		s.replans++
		swapped = true
	}
	if swapped {
		n.wireShares()
	}
}
