// Package engine implements the P2 node runtime: it instantiates a
// compiled Plan as a live dataflow graph on one node — tables, rule
// strands, periodic timers, continuous table aggregates, and the
// network stack — and executes it on a run-to-completion event loop.
//
// This is the component Figure 1 of the paper calls the "runtime plan
// executor". A Node is wired to a netif.Network (simulated or real UDP)
// through the reliable transport; derived tuples whose location
// specifier names another node are sent there, everything else loops
// back locally exactly as in Figure 2's dataflow.
package engine

import (
	"fmt"
	"io"
	"math/rand"
	"sort"

	"p2/internal/dataflow"
	"p2/internal/eventloop"
	"p2/internal/health"
	"p2/internal/introspect"
	"p2/internal/netif"
	"p2/internal/pel"
	"p2/internal/planner"
	"p2/internal/table"
	"p2/internal/transport"
	"p2/internal/tuple"
	"p2/internal/val"
)

// Options configures a Node.
type Options struct {
	// Seed drives the node's deterministic randomness (f_rand,
	// f_coinFlip, periodic jitter).
	Seed int64
	// Transport tunes reliability and congestion control; zero value
	// uses transport.DefaultConfig.
	Transport *transport.Config
	// SweepInterval is how often finite-TTL tables are swept for
	// expired tuples (default 1 s). Sweeps keep continuous aggregates
	// current even when a table is otherwise idle.
	SweepInterval float64
	// NoJitter disables the random stagger of first periodic firings.
	// Experiments that need lock-step timers set it.
	NoJitter bool
	// IntrospectInterval is how often the sys* system tables are
	// refreshed from runtime counters. Zero (the default) means 1 s,
	// demand-driven: the periodic snapshot runs only when something
	// actually consumes the rows — a rule or watch over a sys*
	// relation, compiled in, Installed later, or Watched at the Go
	// level. A node nothing introspects never pays for the snapshot
	// (the optimizer's adaptive re-planner keeps its own tick at this
	// interval; it reads counters directly and delivers no rows).
	// Setting the interval to an explicit positive value forces the
	// refresh always-on at that period; negative disables
	// introspection entirely, leaving the system tables empty.
	IntrospectInterval float64
	// Health overrides the health evaluator's thresholds; nil uses
	// health.DefaultConfig(). Conditions are evaluated on every
	// introspection refresh and delivered as sysHealth rows; on nodes
	// whose refresh never armed (demand-driven, no consumer) the
	// Conditions accessor evaluates them on demand instead. Disabling
	// introspection (negative interval) disables them too.
	Health *health.Config
	// TraceWriter, when set, receives one line per event on every
	// relation the program watch()es — the paper's on-line debugging
	// facility (§3.5's logging ports, §7 "On-line distributed
	// debugging").
	TraceWriter io.Writer
	// Optimizer enables the cost-based query optimizer: rule strands
	// are re-planned at start against the catalog heuristics, identical
	// probe prefixes are shared across strands, and every introspection
	// refresh re-plans rules whose live table cardinalities drifted
	// from the values they were costed with. Nil disables optimization
	// (the naive textual plans). See planner.OptimizerConfig.
	Optimizer *planner.OptimizerConfig
}

// Direction classifies watch events.
type Direction int

// Watch event directions.
const (
	DirDerived  Direction = iota // produced by a local rule
	DirSent                      // shipped to another node
	DirReceived                  // arrived from another node
	DirInserted                  // stored into a table (delta only)
	DirDeleted                   // removed from a table by a delete rule
)

func (d Direction) String() string {
	switch d {
	case DirDerived:
		return "derived"
	case DirSent:
		return "sent"
	case DirReceived:
		return "received"
	case DirInserted:
		return "inserted"
	case DirDeleted:
		return "deleted"
	}
	return "?"
}

// WatchEvent is delivered to watch callbacks — P2's introspection hook
// (the paper's watch() directive and logging ports).
type WatchEvent struct {
	Node  string
	Dir   Direction
	Peer  string // remote address for Sent/Received
	Tuple *tuple.Tuple
	Time  float64
}

// WatchFunc observes watch events.
type WatchFunc func(WatchEvent)

// Stats counts node activity.
type Stats struct {
	RulesFired    int64
	TuplesDerived int64
	TuplesSent    int64
	TuplesRecv    int64
	TuplesDropped int64 // no table, strand, or watcher wanted them
	// Probes counts equijoin work: one per index probe plus one per
	// candidate row examined (antijoins count one per existence check).
	// Probes answered from a shared cache count nothing — this is the
	// work the optimizer exists to avoid.
	Probes int64
}

// Node is one P2 participant executing a Plan. A node is pinned to the
// loop it was built with for its whole life: every table, strand,
// timer, and transport structure it owns schedules exclusively there.
// In a sharded simulation that loop is the owning shard of an
// eventloop.ShardedSim (the p2.Deployment pins nodes shard = domain
// mod P), and the eventloop shard-ownership rule extends to all of the
// node's state — nothing here may be touched from another shard's
// epoch.
type Node struct {
	addr string
	loop eventloop.Loop
	net  netif.Network
	plan *planner.Plan
	opts Options

	ep         netif.Endpoint
	trans      *transport.Transport
	env        *pel.Env
	rng        *rand.Rand
	tables     map[string]*table.Table
	tableOrder []string // sorted names; deterministic sweep order
	strands    map[string][]*strand
	periodics  []*dataflow.Periodic
	watchers   map[string][]WatchFunc
	eventSeq   int64
	started    bool
	stopped    bool
	stats      Stats
	sweeper    *eventloop.Timer
	startTime  float64
	allStrands []*strand    // every strand, in build order, for sysRule
	aggFires   []*ruleFires // table-aggregate counters for sysRule
	introTimer *eventloop.Timer
	// sysConsumer caches "sys* rows have an audience": an explicit
	// refresh interval, a plan that reads a system relation, or a
	// Go-level Watch on one. Recomputed at Start and Install, set by
	// Watch — never scanned per tick.
	sysConsumer bool
	sysref      *sysRefresh       // incremental system-table refresh cache
	health      *health.Evaluator // condition engine, fed by the refresh
}

// strand is one rule's compiled element chain plus its trigger runner:
// a preallocated FIFO of pending events and a single func value handed
// to the loop's DPC lane, so triggering a strand allocates nothing —
// no per-tuple closure, no Timer.
// flusher is the end-of-event hook shared by the two aggregate
// elements: a plain AggStream stage, or a FoldJoin carrying the fused
// aggregate. Exactly one (or neither) terminates a strand.
type flusher interface {
	Flush(event *tuple.Tuple, poke dataflow.Poke)
}

type strand struct {
	rule  *planner.Rule
	entry dataflow.Pusher
	agg   flusher
	fires int64

	// firstJoin is the strand's leading probe when its prefix is
	// eligible for cross-strand sharing (see wireShares); shareKey
	// identifies the (table, key) probe it performs. replans counts
	// adaptive plan swaps; the strand object itself — its identity,
	// fire counter, and pending queue — survives every swap.
	firstJoin *dataflow.Join
	shareKey  string
	replans   int64

	// drift is the precompiled form of rule.CostBasis: one entry per
	// costed relation, resolved to the node's table handle, so the
	// per-refresh drift scan is a flat slice walk instead of map
	// iteration and lookups. Rebuilt with the chain on every replan.
	drift []driftEntry

	node  *Node
	queue []*tuple.Tuple // pending trigger events; one Defer per entry
	head  int
	runFn func() // bound once to runNext
}

// runNext pops the oldest pending event and executes the strand for it.
// Each queued event has exactly one matching Defer, so global FIFO
// ordering across strands is identical to deferring a closure per
// tuple.
func (s *strand) runNext() {
	t := s.queue[s.head]
	s.queue[s.head] = nil
	s.head++
	if s.head == len(s.queue) {
		s.queue = s.queue[:0]
		s.head = 0
	} else if s.head > 32 && s.head*2 >= len(s.queue) {
		// Slide a perpetually non-empty queue down so the backing
		// array stays bounded by the outstanding-event high-water mark.
		kept := copy(s.queue, s.queue[s.head:])
		for i := kept; i < len(s.queue); i++ {
			s.queue[i] = nil
		}
		s.queue = s.queue[:kept]
		s.head = 0
	}
	s.node.runStrand(s, t)
}

// ruleFires counts head emissions of a continuous table aggregate.
type ruleFires struct {
	id    string
	fires int64
}

// NewNode builds a node for addr executing plan over net, scheduling on
// loop. Call Start to attach and begin execution.
func NewNode(addr string, loop eventloop.Loop, net netif.Network, plan *planner.Plan, opts Options) *Node {
	if opts.SweepInterval <= 0 {
		opts.SweepInterval = 1.0
	}
	rng := rand.New(rand.NewSource(opts.Seed ^ int64(len(addr))*7919 ^ hashAddr(addr)))
	n := &Node{
		addr:     addr,
		loop:     loop,
		net:      net,
		plan:     plan,
		opts:     opts,
		rng:      rng,
		tables:   make(map[string]*table.Table),
		strands:  make(map[string][]*strand),
		watchers: make(map[string][]WatchFunc),
		sysref:   newSysRefresh(),
	}
	n.env = &pel.Env{Clock: loop, Rand: rng, Local: addr}
	return n
}

func hashAddr(addr string) int64 {
	var h int64 = 1469598103934665603
	for i := 0; i < len(addr); i++ {
		h ^= int64(addr[i])
		h *= 1099511628211
	}
	return h
}

// Addr returns the node's network address.
func (n *Node) Addr() string { return n.addr }

// Stats returns a copy of the node's counters.
func (n *Node) Stats() Stats { return n.stats }

// Transport exposes the node's transport for accounting taps.
func (n *Node) Transport() *transport.Transport { return n.trans }

// Table returns the named materialized table, or nil — the harness uses
// this for white-box assertions.
func (n *Node) Table(name string) *table.Table { return n.tables[name] }

// Plan returns the plan this node executes.
func (n *Node) Plan() *planner.Plan { return n.plan }

// Watch registers fn for every event concerning the named relation.
// Watching a sys* relation counts as consuming introspection: on a
// node whose refresh was demand-driven off, it arms the periodic
// snapshot so the watcher has events to hear.
func (n *Node) Watch(name string, fn WatchFunc) {
	n.watchers[name] = append(n.watchers[name], fn)
	if introspect.IsReserved(name) {
		n.sysConsumer = true
		if n.started && !n.stopped {
			n.ensureSysTables()
			n.scheduleIntrospect()
		}
	}
}

// Start attaches the node to the network, creates tables, installs
// facts, and starts periodic timers.
func (n *Node) Start() error {
	if n.started {
		return fmt.Errorf("engine: node %s already started", n.addr)
	}
	n.started = true

	ep, err := n.net.Attach(n.addr, func(from string, payload []byte) {
		if n.trans != nil {
			n.trans.Deliver(from, payload)
		}
	})
	if err != nil {
		return fmt.Errorf("engine: node %s: %w", n.addr, err)
	}
	n.ep = ep
	tcfg := transport.DefaultConfig()
	if n.opts.Transport != nil {
		tcfg = *n.opts.Transport
	}
	n.trans = transport.New(n.loop, ep, tcfg)
	n.trans.OnReceive(n.onNetReceive)

	n.startTime = n.loop.Now()
	hcfg := health.DefaultConfig()
	if n.opts.Health != nil {
		hcfg = *n.opts.Health
	}
	n.health = health.NewEvaluator(hcfg, n.startTime)
	// The optimizer rewrites the plan before any strand is built. At
	// start there are no live statistics yet, so ordering comes from the
	// catalog heuristics — deliberately state-independent, so every node
	// (and every shard count) starts from an identical plan. Live
	// statistics take over at introspection refreshes (maybeReplan).
	// OptimizeShared runs that catalog pass once per (plan, config)
	// process-wide: all nodes of a deployment share the compiled
	// template and receive private views of the mutable parts.
	if n.opts.Optimizer != nil {
		n.plan = planner.OptimizeShared(n.plan, *n.opts.Optimizer)
	}
	// A Go-level Watch on a sys* relation registered before Start also
	// counts as a consumer, so OR rather than overwrite.
	n.sysConsumer = n.sysConsumer || n.opts.IntrospectInterval > 0 || planReadsSys(n.plan)
	// Tables are created and later swept in sorted-name order: map
	// iteration order is randomized per process, and expiry sweeps can
	// emit deletion deltas whose relative order would otherwise differ
	// between two same-seed runs — the determinism the sharded
	// simulator's shards=1 vs shards=P comparison is built on.
	//
	// System tables are demand-driven like the refresh that feeds them:
	// a node with no sys* audience never instantiates them (Table
	// returns nil), and ensureSysTables materializes them if a consumer
	// appears later. At 10k nodes that is 60k tables-plus-indexes that
	// never exist.
	names := make([]string, 0, len(n.plan.Tables))
	for name, ts := range n.plan.Tables {
		if ts.System && !n.sysConsumer {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	n.tableOrder = names
	for _, name := range names {
		n.tables[name] = n.newTable(n.plan.Tables[name])
	}
	for _, r := range n.plan.Rules {
		n.buildStrand(r)
	}
	for _, ta := range n.plan.TableAggs {
		n.buildTableAgg(ta)
	}
	n.wireShares()
	if n.opts.TraceWriter != nil {
		for _, name := range n.plan.Watches {
			n.watchTrace(name)
		}
	}
	for _, f := range n.plan.Facts {
		n.deliverLocal(tupleFromFact(f, n.addr), DirDerived)
	}
	n.scheduleSweep()
	n.scheduleIntrospect()
	return nil
}

// newTable instantiates one table spec. System tables get a lifetime
// derived from the introspection refresh interval so their rows stay
// soft state: a few missed refreshes and they fade, like any other
// P2 relation.
func (n *Node) newTable(spec *planner.TableSpec) *table.Table {
	n.sysref.registerTable(spec.Name)
	if spec.System {
		ttl := table.Infinity
		if iv := n.introspectInterval(); iv > 0 {
			ttl = 4 * iv
		}
		return table.New(spec.Name, ttl, 0, spec.Keys, n.loop)
	}
	return spec.NewTable(n.loop)
}

// watchTrace streams the named relation's events to the trace writer —
// the OverLog watch() directive's runtime form.
func (n *Node) watchTrace(name string) {
	n.Watch(name, func(ev WatchEvent) {
		peer := ""
		switch ev.Dir {
		case DirSent:
			peer = " ->" + ev.Peer
		case DirReceived:
			peer = " <-" + ev.Peer
		}
		fmt.Fprintf(n.opts.TraceWriter, "%10.3f %s %s%s %s\n",
			ev.Time, ev.Node, ev.Dir, peer, ev.Tuple)
	})
}

// tupleFromFact materializes a fact spec for the given node address.
func tupleFromFact(f *planner.FactSpec, addr string) *tuple.Tuple {
	return tuple.New(f.Name, f.Tuple(addr)...)
}

// Stop halts timers, closes the transport, and detaches from the
// network. Used both for orderly shutdown and churn-kill.
func (n *Node) Stop() {
	if n.stopped {
		return
	}
	n.stopped = true
	for _, p := range n.periodics {
		p.Stop()
	}
	if n.sweeper != nil {
		n.sweeper.Cancel()
	}
	if n.introTimer != nil {
		n.introTimer.Cancel()
	}
	if n.trans != nil {
		n.trans.Close()
	}
	if n.ep != nil {
		n.ep.Close()
	}
}

// Running reports whether the node has started and not stopped.
func (n *Node) Running() bool { return n.started && !n.stopped }

// AddFact injects a tuple as if declared as a fact — used to hand a
// node its landmark, environment rows, etc. Valid after Start.
func (n *Node) AddFact(name string, fields ...val.Value) {
	n.InjectTuple(tuple.New(name, fields...))
}

// InjectTuple delivers t to this node as a local event or table row —
// the API applications use to issue lookups, joins, and configuration.
func (n *Node) InjectTuple(t *tuple.Tuple) {
	n.loop.Defer(func() {
		if !n.stopped {
			n.deliverLocal(t, DirDerived)
		}
	})
}

// scheduleSweep periodically expires finite-TTL tables so deletions
// (and the continuous aggregates hanging off them) surface promptly.
func (n *Node) scheduleSweep() {
	if n.stopped {
		return
	}
	n.sweeper = n.loop.After(n.opts.SweepInterval, func() {
		if n.stopped {
			return
		}
		for _, name := range n.tableOrder {
			n.tables[name].Expire()
		}
		n.scheduleSweep()
	})
}

// buildStrand compiles one rule into a chain of dataflow elements.
func (n *Node) buildStrand(r *planner.Rule) {
	s := &strand{rule: r, node: n}
	s.runFn = s.runNext
	n.buildChain(s)
	n.allStrands = append(n.allStrands, s)
	if r.Trigger.Kind == planner.TrigPeriodic {
		n.startPeriodic(r, s)
	} else {
		n.strands[r.Trigger.Name] = append(n.strands[r.Trigger.Name], s)
	}
}

// buildChain (re)builds the dataflow element chain for s.rule and
// installs it on the strand. It runs once per strand at build time and
// again on every adaptive replan — the strand keeps its identity, fire
// counter, and pending queue across swaps, only the elements change.
func (n *Node) buildChain(s *strand) {
	r := s.rule
	var elems []dataflow.Pusher
	label := func(kind string) string { return fmt.Sprintf("%s.%s.%s", n.addr, r.ID, kind) }

	var flush flusher
	shareIdx := -1
	if n.opts.Optimizer != nil && !n.opts.Optimizer.NoShare {
		if idx, ok := n.plan.ShareableJoin(r); ok {
			shareIdx = idx
		}
	}
	s.firstJoin, s.shareKey = nil, ""

	for i := 0; i < len(r.Ops); i++ {
		switch o := r.Ops[i].(type) {
		case *planner.OpJoin:
			tbl := n.tables[o.Table]
			if o.Neg {
				nj := dataflow.NewNotJoin(label(fmt.Sprintf("antijoin%d", i)), tbl, o.StreamKey, o.TableKey)
				nj.CountProbes(&n.stats.Probes)
				elems = append(elems, nj)
			} else {
				j := dataflow.NewJoin(label(fmt.Sprintf("join%d", i)), tbl, o.StreamKey, o.TableKey, "w")
				j.CountProbes(&n.stats.Probes)
				if i == shareIdx {
					s.firstJoin = j
					s.shareKey = fmt.Sprintf("%s|%v|%v", o.Table, o.StreamKey, o.TableKey)
				}
				// Fuse immediately-following selections into the probe
				// (filtered matches never materialize a concatenated
				// tuple), then the assignment run after them into the
				// emit (one tuple at final arity per surviving match).
				for i+1 < len(r.Ops) {
					sel, ok := r.Ops[i+1].(*planner.OpSelect)
					if !ok {
						break
					}
					j.AddFilter(sel.Prog, n.env)
					i++
				}
				for i+1 < len(r.Ops) {
					asn, ok := r.Ops[i+1].(*planner.OpAssign)
					if !ok {
						break
					}
					j.AddAssigns([]*pel.Program{asn.Prog}, n.env)
					i++
				}
				elems = append(elems, j)
			}
		case *planner.OpSelect:
			elems = append(elems, dataflow.NewSelect(label(fmt.Sprintf("select%d", i)), o.Prog, n.env))
		case *planner.OpAssign:
			// Fuse the whole run of consecutive assignments into one
			// element: one extended tuple instead of one per ":=" step.
			progs := []*pel.Program{o.Prog}
			for i+1 < len(r.Ops) {
				next, ok := r.Ops[i+1].(*planner.OpAssign)
				if !ok {
					break
				}
				progs = append(progs, next.Prog)
				i++
			}
			elems = append(elems, dataflow.NewMultiAssign(label(fmt.Sprintf("assign%d", i)), progs, n.env))
		case *planner.OpRange:
			elems = append(elems, dataflow.NewRange(label(fmt.Sprintf("range%d", i)), o.Lo, o.Hi, n.env))
		case *planner.OpFoldJoin:
			fj := dataflow.NewFoldJoin(label(fmt.Sprintf("foldjoin%d", i)),
				n.tables[o.Table], o.StreamKey, o.TableKey, o.Fn, o.Input, o.Filters, n.env)
			fj.CountProbes(&n.stats.Probes)
			elems = append(elems, fj)
			flush = fj
		}
	}

	if r.Agg != nil {
		agg := dataflow.NewAggStream(label("agg"), r.Agg.Fn, r.Agg.AggPos)
		elems = append(elems, agg)
		flush = agg
	}
	project := dataflow.NewProject(label("head"), r.HeadName, r.HeadProgs, n.env)
	elems = append(elems, project)
	sink := dataflow.NewSink(label("sink"), func(t *tuple.Tuple) { n.deliverHead(r, t) })

	// Wire the chain: each element's output 0 feeds the next.
	for i := 0; i < len(elems)-1; i++ {
		connect(elems[i], elems[i+1])
	}
	connect(elems[len(elems)-1], sink)

	s.entry, s.agg = elems[0], flush
	n.buildDrift(s)
}

// wireShares scans each trigger's strands for identical leading probes
// and hands every such group one shared dataflow.ProbeCache: when
// several rules fired by the same event all begin by probing the same
// table on the same key, the probe runs once and its raw matches are
// reused by the rest of the group — common-subexpression sharing across
// rule strands. Eligibility is decided by planner.ShareableJoin at
// chain-build time. Safe to call repeatedly: each call rebuilds the
// grouping from scratch, so replans that change a strand's leading
// probe dissolve or re-form groups as needed.
func (n *Node) wireShares() {
	if n.opts.Optimizer == nil || n.opts.Optimizer.NoShare {
		return
	}
	for _, group := range n.strands {
		byKey := make(map[string][]*dataflow.Join)
		for _, s := range group {
			if s.firstJoin != nil {
				byKey[s.shareKey] = append(byKey[s.shareKey], s.firstJoin)
			}
		}
		for _, joins := range byKey {
			if len(joins) < 2 {
				joins[0].Share(nil)
				continue
			}
			c := &dataflow.ProbeCache{}
			for _, j := range joins {
				j.Share(c)
			}
		}
	}
}

// connect binds src output 0 to dst input 0. All strand-internal
// elements are push elements.
func connect(src, dst dataflow.Pusher) {
	type outConnector interface {
		ConnectOut(i int, to dataflow.Pusher, port int)
	}
	src.(outConnector).ConnectOut(0, dst, 0)
}

func (n *Node) startPeriodic(r *planner.Rule, s *strand) {
	trig := r.Trigger
	extra := trig.Extra
	ruleID := r.ID
	mk := func(addr string, seq int64, period float64) *tuple.Tuple {
		n.eventSeq++
		fields := make([]val.Value, 0, 2+len(extra))
		fields = append(fields, val.Str(addr))
		fields = append(fields, val.Str(fmt.Sprintf("%s!%s!%d", addr, ruleID, n.eventSeq)))
		fields = append(fields, extra...)
		return tuple.New("periodic", fields...)
	}
	p := dataflow.NewPeriodic(fmt.Sprintf("%s.%s.periodic", n.addr, r.ID),
		n.loop, n.addr, trig.Period, trig.Count, mk)
	p.ConnectOut(0, dataflow.NewSink(fmt.Sprintf("%s.%s.trigger", n.addr, r.ID), func(t *tuple.Tuple) {
		n.runStrand(s, t)
	}), 0)
	n.periodics = append(n.periodics, p)
	// The first firing lands one period out; with jitter enabled the
	// phase is uniformly random in (0, period] so nodes do not tick in
	// lock step. One-shot timers (period 0) fire immediately.
	delay := trig.Period
	if !n.opts.NoJitter && trig.Period > 0 {
		delay = n.rng.Float64() * trig.Period
	}
	p.Start(delay)
}

func (n *Node) buildTableAgg(ta *planner.TableAggRule) {
	tbl := n.tables[ta.Table]
	agg := dataflow.NewAggTable(fmt.Sprintf("%s.%s.tableagg", n.addr, ta.ID),
		tbl, ta.Fn, ta.GroupPos, ta.AggPos, "g")
	project := dataflow.NewProject(fmt.Sprintf("%s.%s.head", n.addr, ta.ID),
		ta.HeadName, ta.HeadProgs, n.env)
	rule := &planner.Rule{ID: ta.ID, HeadName: ta.HeadName, Materialized: ta.Materialized}
	rf := &ruleFires{id: ta.ID}
	n.aggFires = append(n.aggFires, rf)
	sink := dataflow.NewSink(fmt.Sprintf("%s.%s.sink", n.addr, ta.ID), func(t *tuple.Tuple) {
		rf.fires++
		n.deliverHead(rule, t)
	})
	agg.ConnectOut(0, project, 0)
	project.ConnectOut(0, sink, 0)
	// Rules installed at runtime aggregate over tables that may already
	// hold rows; surface the current groups now that the chain is wired.
	// At node start tables are empty and this is a no-op.
	agg.Recompute()
}

// runStrand executes one rule strand for one event, run-to-completion.
func (n *Node) runStrand(s *strand, event *tuple.Tuple) {
	if n.stopped {
		return
	}
	n.stats.RulesFired++
	s.fires++
	s.entry.Push(0, event, nil)
	if s.agg != nil {
		s.agg.Flush(event, nil)
	}
}

// deliverHead routes a derived head tuple: delete action, local
// delivery, or network send, chosen by the tuple's location specifier.
func (n *Node) deliverHead(r *planner.Rule, t *tuple.Tuple) {
	if n.stopped {
		return
	}
	n.stats.TuplesDerived++
	if r.Delete {
		if tbl := n.tables[r.HeadName]; tbl != nil {
			if tbl.Delete(t) {
				n.notifyWatch(t, DirDeleted, "")
			}
		}
		return
	}
	dest := t.Loc()
	if dest == n.addr || dest == "" {
		n.deliverLocal(t, DirDerived)
		return
	}
	n.stats.TuplesSent++
	n.notifyWatch(t, DirSent, dest)
	n.trans.Send(dest, t)
}

// onNetReceive accepts tuples from the transport.
func (n *Node) onNetReceive(from string, t *tuple.Tuple) {
	if n.stopped {
		return
	}
	n.stats.TuplesRecv++
	n.notifyWatch(t, DirReceived, from)
	n.deliverLocal(t, DirDerived)
}

// deliverLocal stores or dispatches a tuple on this node: materialized
// relations insert (deltas re-trigger listening rules), stream names
// trigger their strands directly.
func (n *Node) deliverLocal(t *tuple.Tuple, dir Direction) {
	if dir == DirDerived {
		n.notifyWatch(t, DirDerived, "")
	}
	name := t.Name()
	if tbl, ok := n.tables[name]; ok {
		res := tbl.Insert(t)
		if res.Delta {
			n.notifyWatch(t, DirInserted, "")
			n.trigger(name, t)
		}
		return
	}
	if _, ok := n.strands[name]; ok {
		n.trigger(name, t)
		return
	}
	if len(n.watchers[name]) == 0 {
		n.stats.TuplesDropped++
	}
}

// trigger schedules every strand listening on name. Runs are deferred
// so each strand executes run-to-completion with a quiesced stack. The
// event rides the strand's own pending queue and the strand's
// preallocated runner goes on the DPC ring — no closure per tuple.
func (n *Node) trigger(name string, t *tuple.Tuple) {
	for _, s := range n.strands[name] {
		s.queue = append(s.queue, t)
		n.loop.Defer(s.runFn)
	}
}

func (n *Node) notifyWatch(t *tuple.Tuple, dir Direction, peer string) {
	fns := n.watchers[t.Name()]
	if len(fns) == 0 {
		return
	}
	ev := WatchEvent{Node: n.addr, Dir: dir, Peer: peer, Tuple: t, Time: n.loop.Now()}
	for _, fn := range fns {
		fn(ev)
	}
}
