package engine

import (
	"testing"

	"p2/internal/eventloop"
	"p2/internal/overlog"
	"p2/internal/planner"
	"p2/internal/simnet"
	"p2/internal/tuple"
	"p2/internal/val"
)

// rig is a small test harness: a sim loop, network, and nodes all
// executing the same program.
type rig struct {
	t     *testing.T
	loop  *eventloop.Sim
	net   *simnet.Net
	nodes map[string]*Node
}

func newRig(t *testing.T, src string, addrs ...string) *rig {
	return newRigOpts(t, src, Options{}, addrs...)
}

// newRigOpts builds the rig with extra node options merged over the
// defaults (Seed stays per-node).
func newRigOpts(t *testing.T, src string, opts Options, addrs ...string) *rig {
	t.Helper()
	prog, err := overlog.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	plan, err := planner.Compile(prog, nil)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	loop := eventloop.NewSim()
	cfg := simnet.DefaultConfig()
	cfg.Domains = 1
	net := simnet.New(loop, cfg)
	r := &rig{t: t, loop: loop, net: net, nodes: make(map[string]*Node)}
	for i, a := range addrs {
		o := opts
		o.Seed = int64(i + 1)
		o.NoJitter = true
		n := NewNode(a, loop, net, plan, o)
		if err := n.Start(); err != nil {
			t.Fatalf("start %s: %v", a, err)
		}
		r.nodes[a] = n
	}
	return r
}

// watch collects tuples of the given name and direction on a node.
func (r *rig) watch(addr, name string, dir Direction) *[]*tuple.Tuple {
	var got []*tuple.Tuple
	r.nodes[addr].Watch(name, func(ev WatchEvent) {
		if ev.Dir == dir {
			got = append(got, ev.Tuple)
		}
	})
	return &got
}

func TestPingPongAcrossNodes(t *testing.T) {
	// The Narada latency-measurement rules P1-P3 (§2.3), exercised
	// across two real engine nodes over the simulated network.
	src := `
		P1 ping@Y(Y, X, E, T) :- pingEvent@X(X, Y, E), T := f_now().
		P2 pong@X(X, Y, E, T) :- ping@Y(Y, X, E, T).
		P3 latency@X(X, Y, T) :- pong@X(X, Y, E, T1), T := f_now() - T1.
	`
	r := newRig(t, src, "a", "b")
	lat := r.watch("a", "latency", DirDerived)

	r.nodes["a"].InjectTuple(tuple.New("pingEvent",
		val.Str("a"), val.Str("b"), val.Str("e1")))
	r.loop.Run(5)

	if len(*lat) != 1 {
		t.Fatalf("latency tuples = %d, want 1", len(*lat))
	}
	got := (*lat)[0]
	if got.Field(0).AsStr() != "a" || got.Field(1).AsStr() != "b" {
		t.Fatalf("latency tuple = %v", got)
	}
	// Same-domain RTT = 2 * 2 ms plus serialization; it must be
	// positive and well under a second.
	rtt := got.Field(2).AsFloat()
	if rtt <= 0 || rtt > 1 {
		t.Fatalf("rtt = %v", rtt)
	}
}

func TestPeriodicDrivesSequence(t *testing.T) {
	// Narada R1-R3: a periodic refresh increments a stored sequence.
	src := `
		materialize(sequence, infinity, 1, keys(2)).
		S0 sequence@X(X, Seq) :- periodic@X(X, E, 0, 1), Seq := 0.
		R1 refreshEvent@X(X) :- periodic@X(X, E, 3).
		R2 refreshSeq@X(X, NewSeq) :- refreshEvent@X(X), sequence@X(X, Seq),
			NewSeq := Seq + 1.
		R3 sequence@X(X, NewSeq) :- refreshSeq@X(X, NewSeq).
	`
	r := newRig(t, src, "a")
	r.loop.Run(10) // refreshes at t=3, 6, 9 (NoJitter)
	rows := r.nodes["a"].Table("sequence").Scan()
	if len(rows) != 1 {
		t.Fatalf("sequence rows = %v", rows)
	}
	if got := rows[0].Field(1).AsInt(); got != 3 {
		t.Fatalf("sequence = %d, want 3", got)
	}
}

func TestTableDeltaTriggersRule(t *testing.T) {
	src := `
		materialize(succ, infinity, 16, keys(2)).
		N1 succEvent@NI(NI, S, SI) :- succ@NI(NI, S, SI).
	`
	r := newRig(t, src, "a")
	evts := r.watch("a", "succEvent", DirDerived)
	row := tuple.New("succ", val.Str("a"), val.Int(42), val.Str("b"))
	r.nodes["a"].InjectTuple(row)
	r.nodes["a"].InjectTuple(row) // identical refresh: no delta
	r.loop.Run(1)
	if len(*evts) != 1 {
		t.Fatalf("succEvent fired %d times, want 1 (refresh must not re-fire)", len(*evts))
	}
}

func TestContinuousTableAggregate(t *testing.T) {
	// N2/N3/N4: best successor selection via a continuous min.
	src := `
		materialize(node, infinity, 1, keys(1)).
		materialize(succ, infinity, 16, keys(2)).
		materialize(succDist, infinity, 100, keys(2)).
		materialize(bestSucc, infinity, 1, keys(1)).
		N1 succEvent@NI(NI, S, SI) :- succ@NI(NI, S, SI).
		N2 succDist@NI(NI, S, D) :- node@NI(NI, N), succEvent@NI(NI, S, SI),
			D := S - N - 1.
		N3 bestSuccDist@NI(NI, min<D>) :- succDist@NI(NI, S, D).
		N4 bestSucc@NI(NI, S, SI) :- succ@NI(NI, S, SI),
			bestSuccDist@NI(NI, D), node@NI(NI, N), D == S - N - 1.
	`
	r := newRig(t, src, "a")
	a := r.nodes["a"]
	a.AddFact("node", val.Str("a"), val.Int(100))
	a.InjectTuple(tuple.New("succ", val.Str("a"), val.Int(180), val.Str("s180")))
	r.loop.Run(1)
	best := a.Table("bestSucc").Scan()
	if len(best) != 1 || best[0].Field(2).AsStr() != "s180" {
		t.Fatalf("bestSucc = %v", best)
	}
	// A closer successor takes over.
	a.InjectTuple(tuple.New("succ", val.Str("a"), val.Int(120), val.Str("s120")))
	r.loop.Run(2)
	best = a.Table("bestSucc").Scan()
	if len(best) != 1 || best[0].Field(2).AsStr() != "s120" {
		t.Fatalf("bestSucc after closer join = %v", best)
	}
	// A farther successor must NOT take over.
	a.InjectTuple(tuple.New("succ", val.Str("a"), val.Int(200), val.Str("s200")))
	r.loop.Run(3)
	best = a.Table("bestSucc").Scan()
	if best[0].Field(2).AsStr() != "s120" {
		t.Fatalf("bestSucc disturbed by farther successor: %v", best)
	}
}

func TestExemplarAggregatePicksWinner(t *testing.T) {
	// Narada P0: choose ONE member, the max<R> exemplar.
	src := `
		materialize(member, infinity, infinity, keys(2)).
		P0 pingEvent@X(X, Y, E, max<R>) :- periodic@X(X, E, 2),
			member@X(X, Y), R := f_rand().
	`
	r := newRig(t, src, "a")
	evts := r.watch("a", "pingEvent", DirDerived)
	a := r.nodes["a"]
	for _, m := range []string{"m1", "m2", "m3", "m4"} {
		a.AddFact("member", val.Str("a"), val.Str(m))
	}
	r.loop.Run(7) // fires at 2, 4, 6
	if len(*evts) != 3 {
		t.Fatalf("pingEvents = %d, want 3", len(*evts))
	}
	for _, e := range *evts {
		y := e.Field(1).AsStr()
		if y != "m1" && y != "m2" && y != "m3" && y != "m4" {
			t.Fatalf("exemplar member = %q", y)
		}
		if e.Arity() != 4 {
			t.Fatalf("pingEvent arity = %d", e.Arity())
		}
	}
}

func TestCountZeroGroup(t *testing.T) {
	// Narada R5/R6: counting matches of an unknown member yields 0 and
	// the store-what-you-got rule fires.
	src := `
		materialize(member, infinity, infinity, keys(2)).
		R5 membersFound@X(X, A, AS, count<*>) :- refresh@X(X, A, AS),
			member@X(X, A), X != A.
		R6 member@X(X, A) :- membersFound@X(X, A, AS, C), C == 0.
	`
	r := newRig(t, src, "a")
	a := r.nodes["a"]
	a.InjectTuple(tuple.New("refresh", val.Str("a"), val.Str("newguy"), val.Int(7)))
	r.loop.Run(1)
	rows := a.Table("member").Scan()
	if len(rows) != 1 || rows[0].Field(1).AsStr() != "newguy" {
		t.Fatalf("member = %v", rows)
	}
	// Second refresh for a now-known member: count is 1, R6 silent.
	derived := r.watch("a", "membersFound", DirDerived)
	a.InjectTuple(tuple.New("refresh", val.Str("a"), val.Str("newguy"), val.Int(8)))
	r.loop.Run(2)
	if len(*derived) != 1 {
		t.Fatalf("membersFound = %d", len(*derived))
	}
	if c := (*derived)[0].Field(3).AsInt(); c != 1 {
		t.Fatalf("count = %d, want 1", c)
	}
}

func TestNegationAndDelete(t *testing.T) {
	src := `
		materialize(neighbor, infinity, infinity, keys(2)).
		A1 neighbor@X(X, Y) :- hello@X(X, Y), not neighbor@X(X, Y).
		A2 delete neighbor@X(X, Y) :- goodbye@X(X, Y).
	`
	r := newRig(t, src, "a")
	a := r.nodes["a"]
	a.InjectTuple(tuple.New("hello", val.Str("a"), val.Str("b")))
	r.loop.Run(1)
	if a.Table("neighbor").Len() != 1 {
		t.Fatal("neighbor not added")
	}
	a.InjectTuple(tuple.New("goodbye", val.Str("a"), val.Str("b")))
	r.loop.Run(2)
	if a.Table("neighbor").Len() != 0 {
		t.Fatal("neighbor not deleted")
	}
}

func TestFactsInstallAtStart(t *testing.T) {
	src := `
		materialize(landmark, infinity, 1, keys(1)).
		materialize(nextFingerFix, infinity, 1, keys(1)).
		F0 nextFingerFix@NI(NI, 0).
		L0 landmark@NI(NI, "boot:0").
	`
	r := newRig(t, src, "n7")
	r.loop.Run(0.1)
	lm := r.nodes["n7"].Table("landmark").Scan()
	if len(lm) != 1 || lm[0].Field(0).AsStr() != "n7" || lm[0].Field(1).AsStr() != "boot:0" {
		t.Fatalf("landmark = %v", lm)
	}
	ff := r.nodes["n7"].Table("nextFingerFix").Scan()
	if len(ff) != 1 || ff[0].Field(1).AsInt() != 0 {
		t.Fatalf("nextFingerFix = %v", ff)
	}
}

func TestRemoteDeliveryStoresInRemoteTable(t *testing.T) {
	// R4-style: a rule at X that deposits rows at Y.
	src := `
		materialize(member, infinity, infinity, keys(2)).
		materialize(neighbor, infinity, infinity, keys(2)).
		R4 member@Y(Y, A) :- refreshSeq@X(X, S), member@X(X, A),
			neighbor@X(X, Y).
	`
	r := newRig(t, src, "a", "b")
	a := r.nodes["a"]
	a.AddFact("member", val.Str("a"), val.Str("m1"))
	a.AddFact("member", val.Str("a"), val.Str("m2"))
	a.AddFact("neighbor", val.Str("a"), val.Str("b"))
	a.InjectTuple(tuple.New("refreshSeq", val.Str("a"), val.Int(1)))
	r.loop.Run(5)
	rows := r.nodes["b"].Table("member").ScanSorted()
	if len(rows) != 2 {
		t.Fatalf("b.member = %v", rows)
	}
	if rows[0].Field(0).AsStr() != "b" {
		t.Fatalf("remote rows must be relocated: %v", rows[0])
	}
	if a.Stats().TuplesSent == 0 || r.nodes["b"].Stats().TuplesRecv == 0 {
		t.Fatal("network counters silent")
	}
}

func TestTTLExpiryWithSweep(t *testing.T) {
	src := `
		materialize(pendingPing, 10, infinity, keys(2)).
	`
	r := newRig(t, src, "a")
	a := r.nodes["a"]
	a.InjectTuple(tuple.New("pendingPing", val.Str("a"), val.Str("b")))
	r.loop.Run(5)
	if a.Table("pendingPing").Len() != 1 {
		t.Fatal("row should live at t=5")
	}
	r.loop.Run(12)
	if a.Table("pendingPing").Len() != 0 {
		t.Fatal("row should expire by t=12")
	}
}

func TestStopSilencesNode(t *testing.T) {
	src := `
		R1 tick@X(X, E) :- periodic@X(X, E, 1).
	`
	r := newRig(t, src, "a")
	ticks := r.watch("a", "tick", DirDerived)
	r.loop.Run(3.5)
	n := len(*ticks)
	if n != 3 {
		t.Fatalf("ticks = %d, want 3", n)
	}
	r.nodes["a"].Stop()
	r.loop.Run(10)
	if len(*ticks) != n {
		t.Fatal("stopped node still ticking")
	}
	if r.nodes["a"].Running() {
		t.Fatal("Running() after stop")
	}
}

func TestDoubleStartFails(t *testing.T) {
	r := newRig(t, `R1 t@X(X) :- periodic@X(X, E, 1).`, "a")
	if err := r.nodes["a"].Start(); err == nil {
		t.Fatal("second start must fail")
	}
}

func TestRangeGeneratorInRule(t *testing.T) {
	src := `
		F1 fFix@NI(NI, E, I) :- periodic@NI(NI, E, 5, 1), range(I, 0, 3).
	`
	r := newRig(t, src, "a")
	evts := r.watch("a", "fFix", DirDerived)
	r.loop.Run(6)
	if len(*evts) != 4 {
		t.Fatalf("fFix events = %d, want 4", len(*evts))
	}
	for i, e := range *evts {
		if e.Field(2).AsInt() != int64(i) {
			t.Fatalf("fFix[%d] = %v", i, e)
		}
	}
}

func TestDroppedTupleCounted(t *testing.T) {
	r := newRig(t, `R1 t@X(X) :- periodic@X(X, E, 100).`, "a")
	r.nodes["a"].InjectTuple(tuple.New("nobodyListens", val.Str("a")))
	r.loop.Run(1)
	if r.nodes["a"].Stats().TuplesDropped != 1 {
		t.Fatalf("dropped = %d", r.nodes["a"].Stats().TuplesDropped)
	}
}

func TestRecursiveRuleReachesFixpointViaRefreshSuppression(t *testing.T) {
	// t :- t-style recursion through a table terminates because
	// identical re-insertions produce no delta.
	src := `
		materialize(reach, infinity, infinity, keys(2,3)).
		materialize(link, infinity, infinity, keys(2,3)).
		R1 reach@X(X, A, B) :- link@X(X, A, B).
		R2 reach@X(X, A, C) :- reach@X(X, A, B), link@X(X, B, C).
	`
	r := newRig(t, src, "a")
	a := r.nodes["a"]
	// A 4-node chain: 1→2→3→4.
	for _, l := range [][2]int64{{1, 2}, {2, 3}, {3, 4}} {
		a.InjectTuple(tuple.New("link", val.Str("a"), val.Int(l[0]), val.Int(l[1])))
	}
	r.loop.Run(2)
	reach := a.Table("reach").Len()
	if reach != 6 { // 1→2,1→3,1→4,2→3,2→4,3→4
		t.Fatalf("transitive closure = %d rows, want 6", reach)
	}
}
