package engine

import (
	"bytes"
	"strings"
	"testing"

	"p2/internal/eventloop"
	"p2/internal/overlog"
	"p2/internal/planner"
	"p2/internal/simnet"
	"p2/internal/tuple"
	"p2/internal/val"
)

// TestWatchDirectiveTraces verifies the OverLog watch() statement: a
// watched relation's events stream to the trace writer.
func TestWatchDirectiveTraces(t *testing.T) {
	src := `
		watch(pong).
		P2 pong@X(X, Y, E) :- ping@Y(Y, X, E).
	`
	prog, err := overlog.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := planner.Compile(prog, nil)
	if err != nil {
		t.Fatal(err)
	}
	loop := eventloop.NewSim()
	cfg := simnet.DefaultConfig()
	cfg.Domains = 1
	net := simnet.New(loop, cfg)

	var bufA, bufB bytes.Buffer
	a := NewNode("a", loop, net, plan, Options{Seed: 1, TraceWriter: &bufA})
	b := NewNode("b", loop, net, plan, Options{Seed: 2, TraceWriter: &bufB})
	if err := a.Start(); err != nil {
		t.Fatal(err)
	}
	if err := b.Start(); err != nil {
		t.Fatal(err)
	}

	// Inject a ping at b addressed from a: b's P2 rule derives a pong
	// and sends it to a.
	b.InjectTuple(tuple.New("ping", val.Str("b"), val.Str("a"), val.Str("e1")))
	loop.Run(2)

	traceB := bufB.String()
	if !strings.Contains(traceB, "sent") || !strings.Contains(traceB, "pong(a, b, e1)") {
		t.Fatalf("b's trace missing send:\n%s", traceB)
	}
	traceA := bufA.String()
	if !strings.Contains(traceA, "received") {
		t.Fatalf("a's trace missing receive:\n%s", traceA)
	}
	// Unwatched relations must not appear.
	if strings.Contains(traceB, "ping(") {
		t.Fatalf("unwatched relation traced:\n%s", traceB)
	}
}

// TestWatchWithoutWriterIsSilent ensures watch() without a TraceWriter
// costs nothing and crashes nothing.
func TestWatchWithoutWriterIsSilent(t *testing.T) {
	src := `
		watch(tick).
		R1 tick@X(X, E) :- periodic@X(X, E, 1).
	`
	plan, err := planner.Compile(overlog.MustParse(src), nil)
	if err != nil {
		t.Fatal(err)
	}
	loop := eventloop.NewSim()
	net := simnet.New(loop, simnet.DefaultConfig())
	n := NewNode("a", loop, net, plan, Options{Seed: 1})
	if err := n.Start(); err != nil {
		t.Fatal(err)
	}
	loop.Run(5)
	if n.Stats().RulesFired == 0 {
		t.Fatal("rules did not fire")
	}
}
