package engine

// This file is the engine half of the introspection subsystem: it feeds
// the sys* system tables from the node's runtime counters and grafts
// OverLog rules compiled at runtime into the live dataflow. Together
// they make the runtime queryable from inside the language — the
// paper's "watch queries are just more OverLog" stance (§3.5, §7).

import (
	"fmt"
	"sort"

	"p2/internal/introspect"
	"p2/internal/overlog"
	"p2/internal/planner"
)

// introspectInterval resolves the option's default: 1 s, negative
// disables.
func (n *Node) introspectInterval() float64 {
	switch {
	case n.opts.IntrospectInterval < 0:
		return 0
	case n.opts.IntrospectInterval == 0:
		return 1.0
	}
	return n.opts.IntrospectInterval
}

// scheduleIntrospect arms the periodic system-table refresh.
func (n *Node) scheduleIntrospect() {
	iv := n.introspectInterval()
	if iv <= 0 || n.stopped {
		return
	}
	n.introTimer = n.loop.After(iv, func() {
		if n.stopped {
			return
		}
		n.RefreshSystemTables()
		n.scheduleIntrospect()
	})
}

// RefreshSystemTables snapshots the node's counters into the sys*
// tables immediately, through the normal local-delivery path: rows
// whose values changed produce deltas that trigger any rules listening
// on the system tables, exactly as application-table deltas would. The
// engine calls it on a timer; tests and tools may call it directly.
func (n *Node) RefreshSystemTables() {
	for _, t := range introspect.Snapshot(n) {
		n.deliverLocal(t, DirDerived)
	}
}

// The Source implementation below exposes the counters the snapshot is
// built from; they double as the Go-level introspection API.

// NodeStat reports whole-node liveness: uptime, strand executions, and
// the scheduler queue length (shared with other nodes when several sim
// nodes run one loop).
func (n *Node) NodeStat() introspect.NodeStat {
	st := introspect.NodeStat{
		UptimeS: n.loop.Now() - n.startTime,
		Events:  n.stats.RulesFired,
	}
	if p, ok := n.loop.(interface{ Pending() int }); ok {
		st.Queue = p.Pending()
	}
	return st
}

// TableStats reports per-relation counters for every table the node
// maintains, system tables included, sorted by name.
func (n *Node) TableStats() []introspect.TableStat {
	out := make([]introspect.TableStat, 0, len(n.tables))
	for name, tb := range n.tables {
		st := tb.Stats()
		out = append(out, introspect.TableStat{
			Name: name, Tuples: tb.Len(),
			Inserts: st.Inserts, Deletes: st.Deletes, Refreshes: st.Refreshes,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// RuleStats reports per-rule fire counters in build order: strand
// executions for event rules, head emissions for continuous table
// aggregates.
func (n *Node) RuleStats() []introspect.RuleStat {
	out := make([]introspect.RuleStat, 0, len(n.allStrands)+len(n.aggFires))
	for _, s := range n.allStrands {
		out = append(out, introspect.RuleStat{ID: s.rule.ID, Fires: s.fires})
	}
	for _, rf := range n.aggFires {
		out = append(out, introspect.RuleStat{ID: rf.id, Fires: rf.fires})
	}
	return out
}

// NetStats reports per-peer transport accounting and the live state of
// the transport element chain (congestion window, RTO, backlog, batch
// fill), sorted by address.
func (n *Node) NetStats() []introspect.NetStat {
	if n.trans == nil {
		return nil
	}
	per := n.trans.PerDest()
	out := make([]introspect.NetStat, len(per))
	for i, d := range per {
		out[i] = introspect.NetStat{
			Dest: d.Addr, Sent: d.Sent, Recvd: d.Recvd, Bytes: d.Bytes, Retries: d.Retries,
			Cwnd: d.Cwnd, RTO: d.RTO, Backlog: d.Backlog, BatchFill: d.BatchFill,
		}
	}
	return out
}

// Install compiles OverLog source and grafts it into the running
// dataflow: new tables are created, new rules start executing
// immediately (periodic rules begin ticking, delta rules see future
// deltas, stream rules hear future events), facts are injected, and
// watch() directives attach to the node's trace writer. Installed
// rules may reference any relation the node already maintains —
// including the sys* system tables — so monitoring and debugging
// queries are ordinary OverLog added to a live node.
//
// On error nothing is installed. Call only from the node's event loop
// (in a simulation, between Run calls; on a UDP node, via Do or
// UDPNode.Install).
func (n *Node) Install(src string) error {
	if !n.started || n.stopped {
		return fmt.Errorf("engine: node %s: install on a node that is not running", n.addr)
	}
	prog, err := overlog.Parse(src)
	if err != nil {
		return fmt.Errorf("engine: install on %s: %w", n.addr, err)
	}
	newPlan, delta, err := planner.Extend(n.plan, prog, nil)
	if err != nil {
		return fmt.Errorf("engine: install on %s: %w", n.addr, err)
	}
	// Commit point: instantiate tables first so strand construction can
	// index them, then wire rules and aggregates, then inject facts.
	n.plan = newPlan
	for _, ts := range delta.Tables {
		n.tables[ts.Name] = n.newTable(ts)
	}
	for _, r := range delta.Rules {
		n.buildStrand(r)
	}
	for _, ta := range delta.TableAggs {
		n.buildTableAgg(ta)
	}
	if n.opts.TraceWriter != nil {
		for _, name := range delta.Watches {
			n.watchTrace(name)
		}
	}
	for _, f := range delta.Facts {
		t := tupleFromFact(f, n.addr)
		n.loop.Defer(func() {
			if !n.stopped {
				n.deliverLocal(t, DirDerived)
			}
		})
	}
	return nil
}
