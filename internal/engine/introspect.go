package engine

// This file is the engine half of the introspection subsystem: it feeds
// the sys* system tables from the node's runtime counters and grafts
// OverLog rules compiled at runtime into the live dataflow. Together
// they make the runtime queryable from inside the language — the
// paper's "watch queries are just more OverLog" stance (§3.5, §7).

import (
	"fmt"
	"slices"
	"sort"

	"p2/internal/health"
	"p2/internal/introspect"
	"p2/internal/kvs"
	"p2/internal/overlog"
	"p2/internal/planner"
	"p2/internal/table"
	"p2/internal/transport"
	"p2/internal/tuple"
	"p2/internal/val"
)

// sysRefresh caches the previous refresh's counter values and rendered
// tuples per system-table row. A refresh whose counters are unchanged
// re-delivers the cached tuple pointer: the table sees an identical
// tuple, renews its TTL, and produces no delta — and the refresh
// allocates nothing for it. On a mostly idle overlay that turns the
// once-a-second snapshot from the node's largest allocator into a
// near-free TTL renewal pass.
type sysRefresh struct {
	tableNames []string // application relations, sorted, maintained at creation
	tableLast  map[string]introspect.TableStat
	tableTup   map[string]*tuple.Tuple
	ruleLast   map[string]int64
	ruleTup    map[string]*tuple.Tuple
	planLast   map[string]introspect.PlanStat
	planTup    map[string]*tuple.Tuple
	netLast    map[string]introspect.NetStat
	netTup     map[string]*tuple.Tuple
	netBuf     []transport.DestStats

	healthLast  map[health.ConditionType]introspect.HealthStat
	healthTup   map[health.ConditionType]*tuple.Tuple
	healthPeers []health.PeerSample // reused sample buffer

	kvLast introspect.KVStat
	kvTup  *tuple.Tuple // single sysKV row; nil until first KV refresh
}

func newSysRefresh() *sysRefresh {
	// Only tableNames is maintained unconditionally (registerTable at
	// table creation; evalHealthNow's churn walk reads it). The row
	// caches allocate on the first actual refresh — most nodes of a
	// large deployment never run one.
	return &sysRefresh{}
}

// ensureCaches allocates the per-row caches on the first refresh.
func (sr *sysRefresh) ensureCaches() {
	if sr.tableLast != nil {
		return
	}
	sr.tableLast = make(map[string]introspect.TableStat)
	sr.tableTup = make(map[string]*tuple.Tuple)
	sr.ruleLast = make(map[string]int64)
	sr.ruleTup = make(map[string]*tuple.Tuple)
	sr.planLast = make(map[string]introspect.PlanStat)
	sr.planTup = make(map[string]*tuple.Tuple)
	sr.netLast = make(map[string]introspect.NetStat)
	sr.netTup = make(map[string]*tuple.Tuple)
	sr.healthLast = make(map[health.ConditionType]introspect.HealthStat)
	sr.healthTup = make(map[health.ConditionType]*tuple.Tuple)
}

// registerTable records an application relation for the sysTable
// refresh walk, keeping the name list sorted (the deterministic order
// Snapshot uses).
func (sr *sysRefresh) registerTable(name string) {
	if introspect.IsReserved(name) {
		return
	}
	i := sort.SearchStrings(sr.tableNames, name)
	if i < len(sr.tableNames) && sr.tableNames[i] == name {
		return
	}
	sr.tableNames = slices.Insert(sr.tableNames, i, name)
}

// introspectInterval resolves the option's default: 1 s, negative
// disables.
func (n *Node) introspectInterval() float64 {
	switch {
	case n.opts.IntrospectInterval < 0:
		return 0
	case n.opts.IntrospectInterval == 0:
		return 1.0
	}
	return n.opts.IntrospectInterval
}

// planReadsSys reports whether any part of the plan consumes a sys*
// relation: a rule triggered by one, a join or fold probing one, a
// table aggregate over one, or a watch() directive tapping one.
func planReadsSys(p *planner.Plan) bool {
	for _, r := range p.Rules {
		if introspect.IsReserved(r.Trigger.Name) {
			return true
		}
		for _, op := range r.Ops {
			switch o := op.(type) {
			case *planner.OpJoin:
				if introspect.IsReserved(o.Table) {
					return true
				}
			case *planner.OpFoldJoin:
				if introspect.IsReserved(o.Table) {
					return true
				}
			}
		}
	}
	for _, ta := range p.TableAggs {
		if introspect.IsReserved(ta.Table) {
			return true
		}
	}
	for _, w := range p.Watches {
		if introspect.IsReserved(w) {
			return true
		}
	}
	return false
}

// scheduleIntrospect arms the periodic introspection tick if anyone
// wants it and it is not already armed. Introspection is demand-driven:
// the tick runs the full sys* snapshot only when the rows have an
// audience (n.sysConsumer — an explicit IntrospectInterval, a plan
// reading a system relation, a Go-level Watch on one); with just the
// optimizer configured it runs only the adaptive-replanning drift scan,
// which reads table cardinalities directly and delivers nothing. On a
// 10k-node deployment where no node monitors itself, the once-a-second
// snapshot — the engine's single largest allocator — never runs.
// Called at Start, and again whenever a consumer can appear later
// (Install, Watch).
func (n *Node) scheduleIntrospect() {
	iv := n.introspectInterval()
	if iv <= 0 || n.stopped || n.introTimer != nil {
		return
	}
	if !n.sysConsumer && n.opts.Optimizer == nil {
		return
	}
	n.armIntrospect(iv)
}

// ensureSysTables materializes any system tables the node skipped at
// Start (demand-driven: no sys* audience, no tables). Called when a
// consumer appears later — a Watch on a sys* relation or an Install
// whose rules read one — before anything probes or fills them. Newly
// created tables join the sorted sweep order like any other.
func (n *Node) ensureSysTables() {
	added := false
	for name, ts := range n.plan.Tables {
		if ts.System && n.tables[name] == nil {
			n.tables[name] = n.newTable(ts)
			n.tableOrder = append(n.tableOrder, name)
			added = true
		}
	}
	if added {
		sort.Strings(n.tableOrder)
	}
}

func (n *Node) armIntrospect(iv float64) {
	n.introTimer = n.loop.After(iv, func() {
		if n.stopped {
			return
		}
		// The consumer flag is re-read every tick: a Watch or Install
		// between ticks upgrades an optimizer-only tick to the full
		// snapshot without touching the timer.
		if n.sysConsumer {
			n.RefreshSystemTables()
		} else {
			n.maybeReplan()
		}
		n.armIntrospect(iv)
	})
}

// RefreshSystemTables snapshots the node's counters into the sys*
// tables immediately, through the normal local-delivery path: rows
// whose values changed produce deltas that trigger any rules listening
// on the system tables, exactly as application-table deltas would. The
// engine calls it on a timer; tests and tools may call it directly.
//
// The refresh is incremental: rows are delivered in the same
// deterministic order as introspect.Snapshot (sysNode, then sysTable /
// sysRule / sysNet), but a row whose counters match the previous
// refresh reuses the cached tuple, so steady-state refreshes only
// build tuples for rows that actually changed.
func (n *Node) RefreshSystemTables() {
	sr := n.sysref
	sr.ensureCaches()
	n.ensureSysTables() // direct calls may precede any consumer
	addr := val.Str(n.addr)

	ns := n.NodeStat() // uptime always moves; sysNode rebuilds every pass
	n.deliverLocal(introspect.NodeTuple(addr, ns), DirDerived)

	var churn int64 // cumulative inserts+deletes across application tables
	for _, name := range sr.tableNames {
		tb := n.tables[name]
		if tb == nil {
			continue
		}
		ts := tableStat(name, tb)
		churn += ts.Inserts + ts.Deletes
		t := sr.tableTup[name]
		if t == nil || ts != sr.tableLast[name] {
			t = introspect.TableTuple(addr, ts)
			sr.tableTup[name], sr.tableLast[name] = t, ts
		}
		n.deliverLocal(t, DirDerived)
	}

	emitRule := func(id string, fires int64) {
		t := sr.ruleTup[id]
		if t == nil || fires != sr.ruleLast[id] {
			t = introspect.RuleTuple(addr, introspect.RuleStat{ID: id, Fires: fires})
			sr.ruleTup[id], sr.ruleLast[id] = t, fires
		}
		n.deliverLocal(t, DirDerived)
	}
	for _, s := range n.allStrands {
		emitRule(s.rule.ID, s.fires)
	}
	for _, rf := range n.aggFires {
		emitRule(rf.id, rf.fires)
	}

	// Adaptive replanning rides the refresh: drift checks and plan swaps
	// happen here, then sysPlan reports the (possibly new) plan of every
	// rule strand. Rows exist whether or not the optimizer is enabled —
	// an unoptimized rule reports order "-", cost 0, replans 0 — so
	// monitoring programs can rely on the relation on both runtimes.
	n.maybeReplan()
	for _, s := range n.allStrands {
		ps := introspect.PlanStat{
			Rule: s.rule.ID, Order: s.rule.OrderString(),
			CostEst: s.rule.CostEst, Replans: s.replans,
		}
		if sr.planTup[ps.Rule] != nil && ps == sr.planLast[ps.Rule] {
			continue // rows are infinite-TTL; only changes need delivery
		}
		t := introspect.PlanTuple(addr, ps)
		sr.planTup[ps.Rule], sr.planLast[ps.Rule] = t, ps
		n.deliverLocal(t, DirDerived)
	}

	sample := health.Sample{Now: n.loop.Now(), Churn: churn}
	if n.trans != nil {
		sample.QueueCap = n.trans.Config().QueueCap
		sr.netBuf = n.trans.PerDestInto(sr.netBuf)
		sr.healthPeers = sr.healthPeers[:0]
		for i := range sr.netBuf {
			d := &sr.netBuf[i]
			st := netStat(d)
			t := sr.netTup[d.Addr]
			if t == nil || st != sr.netLast[d.Addr] {
				t = introspect.NetTuple(addr, st)
				sr.netTup[d.Addr], sr.netLast[d.Addr] = t, st
			}
			n.deliverLocal(t, DirDerived)
			sr.healthPeers = append(sr.healthPeers, health.PeerSample{
				Addr: d.Addr, Backlog: d.Backlog, Drops: d.Drops,
			})
		}
		sample.Peers = sr.healthPeers
		// The transport's flow janitor reclaims idle peers; drop their
		// cached row renderings too, or the caches regrow the O(peers
		// ever contacted) footprint the janitor exists to bound. The
		// rows themselves fade by TTL once no refresh renews them.
		if len(sr.netTup) > len(sr.netBuf) {
			for a := range sr.netTup {
				i := sort.Search(len(sr.netBuf), func(i int) bool { return sr.netBuf[i].Addr >= a })
				if i >= len(sr.netBuf) || sr.netBuf[i].Addr != a {
					delete(sr.netTup, a)
					delete(sr.netLast, a)
				}
			}
		}
	}

	// The key-value service's row, on nodes running it: delivered like
	// the rest, and folded into the health sample so KVUnderReplicated
	// judges the same counters sysKV reports.
	ks, kvOK := n.KVStats()
	if kvOK {
		sample.KV = &health.KVSample{
			Keys: ks.Keys, Replicas: ks.Replicas, Quorum: ks.Quorum, Succs: ks.Succs,
		}
		t := sr.kvTup
		if t == nil || ks != sr.kvLast {
			t = introspect.KVTuple(addr, ks)
			sr.kvTup, sr.kvLast = t, ks
		}
		n.deliverLocal(t, DirDerived)
	}

	// Conditions evaluate from the same counters that fed the rows
	// above, so sysHealth is consistent with sysNet/sysTable within one
	// refresh. Rows cache like the others: an unchanged condition
	// re-delivers its tuple and only renews the TTL.
	for _, c := range n.health.Eval(sample) {
		hs := introspect.HealthStat{
			Type: string(c.Type), Status: string(c.Status),
			Reason: c.Reason, SinceS: c.LastTransition,
		}
		t := sr.healthTup[c.Type]
		if t == nil || hs != sr.healthLast[c.Type] {
			t = introspect.HealthTuple(addr, hs)
			sr.healthTup[c.Type], sr.healthLast[c.Type] = t, hs
		}
		n.deliverLocal(t, DirDerived)
	}
}

// Conditions returns the node's most recently evaluated health
// catalogue (a copy, in canonical order). On a node whose periodic
// snapshot runs (a sys* consumer exists) this reflects the last
// refresh; before the first one every condition is Unknown. On a node
// with no sys* audience the conditions are evaluated on the spot from
// the live counters, so HealthSnapshot and the metrics exporter see
// current state without paying for the per-second snapshot. With
// introspection disabled outright (negative interval) conditions stay
// Unknown, as before.
func (n *Node) Conditions() []health.Condition {
	if n.health == nil {
		return nil
	}
	if !n.sysConsumer && n.started && !n.stopped && n.introspectInterval() > 0 {
		n.evalHealthNow()
	}
	return slices.Clone(n.health.Conditions())
}

// evalHealthNow feeds the health evaluator the same sample a refresh
// would build — cumulative application-table churn plus per-peer
// backlog and drops — without rendering or delivering any sys* rows.
// It runs on the node's loop (Conditions is reached via Handle.Do or
// between Run calls), and reuses the refresh cache's buffers.
func (n *Node) evalHealthNow() {
	sr := n.sysref
	var churn int64
	for _, name := range sr.tableNames {
		if tb := n.tables[name]; tb != nil {
			st := tb.Stats()
			churn += st.Inserts + st.Deletes
		}
	}
	sample := health.Sample{Now: n.loop.Now(), Churn: churn}
	if n.trans != nil {
		sample.QueueCap = n.trans.Config().QueueCap
		sr.netBuf = n.trans.PerDestInto(sr.netBuf)
		sr.healthPeers = sr.healthPeers[:0]
		for i := range sr.netBuf {
			d := &sr.netBuf[i]
			sr.healthPeers = append(sr.healthPeers, health.PeerSample{
				Addr: d.Addr, Backlog: d.Backlog, Drops: d.Drops,
			})
		}
		sample.Peers = sr.healthPeers
	}
	if ks, ok := n.KVStats(); ok {
		sample.KV = &health.KVSample{
			Keys: ks.Keys, Replicas: ks.Replicas, Quorum: ks.Quorum, Succs: ks.Succs,
		}
	}
	n.health.Eval(sample)
}

// The Source implementation below exposes the counters the snapshot is
// built from; they double as the Go-level introspection API.

// NodeStat reports whole-node liveness: uptime, strand executions, and
// the scheduler queue length (shared with other nodes when several sim
// nodes run one loop).
func (n *Node) NodeStat() introspect.NodeStat {
	st := introspect.NodeStat{
		UptimeS: n.loop.Now() - n.startTime,
		Events:  n.stats.RulesFired,
	}
	if p, ok := n.loop.(interface{ Pending() int }); ok {
		st.Queue = p.Pending()
	}
	return st
}

// tableStat maps one table's counters into its sysTable row — the
// single mapping shared by TableStats and the incremental refresh.
func tableStat(name string, tb *table.Table) introspect.TableStat {
	st := tb.Stats()
	return introspect.TableStat{
		Name: name, Tuples: tb.Len(),
		Inserts: st.Inserts, Deletes: st.Deletes, Refreshes: st.Refreshes,
	}
}

// netStat maps one peer's transport accounting into its sysNet row —
// the single mapping shared by NetStats and the incremental refresh.
func netStat(d *transport.DestStats) introspect.NetStat {
	return introspect.NetStat{
		Dest: d.Addr, Sent: d.Sent, Recvd: d.Recvd, Bytes: d.Bytes, Retries: d.Retries,
		Cwnd: d.Cwnd, RTO: d.RTO, Backlog: d.Backlog, BatchFill: d.BatchFill,
		Drops: d.Drops,
	}
}

// KVStats builds the key-value service's sysKV row from the node's
// live tables and strand counters; ok is false on nodes not running
// the kvs rules (no kvStore table). Runs on the node's loop.
func (n *Node) KVStats() (introspect.KVStat, bool) {
	store := n.tables[kvs.StoreTable]
	if store == nil {
		return introspect.KVStat{}, false
	}
	st := introspect.KVStat{Keys: store.Len(), Expiries: store.Stats().Deletes}
	if pt := n.tables[kvs.ParamTable]; pt != nil {
		for _, row := range pt.Scan() {
			st.Replicas = row.Field(1).AsInt()
			st.Quorum = row.Field(2).AsInt()
		}
	}
	if succ := n.tables[kvs.SuccTable]; succ != nil {
		seen := make(map[string]bool, succ.Len())
		for _, row := range succ.Scan() {
			if si := row.Field(2).AsStr(); si != n.addr {
				seen[si] = true
			}
		}
		st.Succs = len(seen)
	}
	if pp := n.tables[kvs.PutPendingTable]; pp != nil {
		st.Pending += pp.Len()
	}
	if gp := n.tables[kvs.GetPendingTable]; gp != nil {
		st.Pending += gp.Len()
	}
	for _, s := range n.allStrands {
		if kvs.RepairRules[s.rule.ID] {
			st.Repairs += s.fires
		}
	}
	return st, true
}

// TableStats reports per-relation counters for every table the node
// maintains, system tables included, sorted by name.
func (n *Node) TableStats() []introspect.TableStat {
	out := make([]introspect.TableStat, 0, len(n.tables))
	for name, tb := range n.tables {
		out = append(out, tableStat(name, tb))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// RuleStats reports per-rule fire counters in build order: strand
// executions for event rules, head emissions for continuous table
// aggregates.
func (n *Node) RuleStats() []introspect.RuleStat {
	out := make([]introspect.RuleStat, 0, len(n.allStrands)+len(n.aggFires))
	for _, s := range n.allStrands {
		out = append(out, introspect.RuleStat{ID: s.rule.ID, Fires: s.fires})
	}
	for _, rf := range n.aggFires {
		out = append(out, introspect.RuleStat{ID: rf.id, Fires: rf.fires})
	}
	return out
}

// PlanStats reports the optimizer's current plan per rule strand, in
// build order. Without the optimizer every rule reports the textual
// plan: order "-", cost 0, no replans.
func (n *Node) PlanStats() []introspect.PlanStat {
	out := make([]introspect.PlanStat, 0, len(n.allStrands))
	for _, s := range n.allStrands {
		out = append(out, introspect.PlanStat{
			Rule: s.rule.ID, Order: s.rule.OrderString(),
			CostEst: s.rule.CostEst, Replans: s.replans,
		})
	}
	return out
}

// NetStats reports per-peer transport accounting and the live state of
// the transport element chain (congestion window, RTO, backlog, batch
// fill), sorted by address.
func (n *Node) NetStats() []introspect.NetStat {
	if n.trans == nil {
		return nil
	}
	per := n.trans.PerDest()
	out := make([]introspect.NetStat, len(per))
	for i := range per {
		out[i] = netStat(&per[i])
	}
	return out
}

// Install compiles OverLog source and grafts it into the running
// dataflow: new tables are created, new rules start executing
// immediately (periodic rules begin ticking, delta rules see future
// deltas, stream rules hear future events), facts are injected, and
// watch() directives attach to the node's trace writer. Installed
// rules may reference any relation the node already maintains —
// including the sys* system tables — so monitoring and debugging
// queries are ordinary OverLog added to a live node.
//
// On error nothing is installed. Call only from the node's event loop
// (in a simulation, between Run calls; on a UDP node, via Do or
// UDPNode.Install).
func (n *Node) Install(src string) error {
	if !n.started || n.stopped {
		return fmt.Errorf("engine: node %s: install on a node that is not running", n.addr)
	}
	prog, err := overlog.Parse(src)
	if err != nil {
		return fmt.Errorf("engine: install on %s: %w", n.addr, err)
	}
	newPlan, delta, err := planner.Extend(n.plan, prog, nil)
	if err != nil {
		return fmt.Errorf("engine: install on %s: %w", n.addr, err)
	}
	// Commit point: instantiate tables first so strand construction can
	// index them, then wire rules and aggregates, then inject facts.
	n.plan = newPlan
	for _, ts := range delta.Tables {
		n.tables[ts.Name] = n.newTable(ts)
		n.tableOrder = append(n.tableOrder, ts.Name)
	}
	// Keep the sweep order sorted so a node that installed its way to a
	// plan sweeps identically to one that started with it.
	sort.Strings(n.tableOrder)
	// Monitoring grafts are the usual first sys* consumer: materialize
	// the system tables before strand construction so joins against
	// them have a table to probe.
	if !n.sysConsumer && planReadsSys(n.plan) {
		n.sysConsumer = true
		n.ensureSysTables()
	}
	// Installed rules are optimized against live statistics — by the time
	// a monitoring query arrives the node's tables hold real data, so its
	// plan can be right from the first firing instead of waiting for a
	// drift-triggered replan.
	for _, r := range delta.Rules {
		rr := r
		if n.opts.Optimizer != nil {
			if nr := n.plan.OptimizeRule(r, n.liveStats(), *n.opts.Optimizer); nr != nil {
				for i, pr := range n.plan.Rules {
					if pr == r {
						n.plan.Rules[i] = nr
						break
					}
				}
				rr = nr
			}
		}
		n.buildStrand(rr)
	}
	for _, ta := range delta.TableAggs {
		n.buildTableAgg(ta)
	}
	n.wireShares()
	if n.opts.TraceWriter != nil {
		for _, name := range delta.Watches {
			n.watchTrace(name)
		}
	}
	for _, f := range delta.Facts {
		t := tupleFromFact(f, n.addr)
		n.loop.Defer(func() {
			if !n.stopped {
				n.deliverLocal(t, DirDerived)
			}
		})
	}
	// The graft may be the node's first sys* consumer: arm the refresh,
	// so the new rules see rows from the next tick on.
	n.scheduleIntrospect()
	return nil
}
