package engine

// Tests for the cost-based query optimizer's engine integration:
// tuple equivalence between textual and optimized plans (including
// shared probe caches), adaptive replanning driven by the
// introspection refresh, and the sysPlan system table.

import (
	"fmt"
	"reflect"
	"testing"

	"p2/internal/eventloop"
	"p2/internal/introspect"
	"p2/internal/overlog"
	"p2/internal/planner"
	"p2/internal/simnet"
	"p2/internal/tuple"
	"p2/internal/val"
)

// startOne builds a single node running src with the given options on
// its own simulated world.
func startOne(t *testing.T, src string, opts Options) (*eventloop.Sim, *Node) {
	t.Helper()
	prog, err := overlog.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	plan, err := planner.Compile(prog, nil)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	loop := eventloop.NewSim()
	cfg := simnet.DefaultConfig()
	cfg.Domains = 1
	net := simnet.New(loop, cfg)
	n := NewNode("a", loop, net, plan, opts)
	if err := n.Start(); err != nil {
		t.Fatalf("start: %v", err)
	}
	return loop, n
}

// diffSrc is a confluent program (head tables keyed on every column,
// infinite TTL, no deletes or aggregates), so any execution order must
// converge to the same table contents. It exercises every optimizer
// transformation at once: A1 is a two-table join with an arithmetic
// assign and a filter (reorder + pushdown), and A1-A3 all open with the
// same probe of link on the same key (probe sharing), each with a
// different residual filter.
const diffSrc = `
	materialize(link, infinity, infinity, keys(1,2)).
	materialize(weight, infinity, infinity, keys(1,2)).
	materialize(outA, infinity, infinity, keys(1,2,3,4)).
	materialize(outB, infinity, infinity, keys(1,2,3)).
	materialize(outC, infinity, infinity, keys(1,2,3)).
	A1 outA@X(X, N, W, S) :- probe@X(X, K), link@X(X, N), weight@X(X, W), S := K + W, W > 1.
	A2 outB@X(X, N, K) :- probe@X(X, K), link@X(X, N), K > 6.
	A3 outC@X(X, N, K) :- probe@X(X, K), link@X(X, N), N > 2.
`

// driveDiff injects the same fact-and-event script into a node:
// some base rows, a burst of probes, a mid-stream table mutation (to
// force shared-cache invalidation), and a second burst.
func driveDiff(loop *eventloop.Sim, n *Node) {
	ins := func(name string, vals ...int64) {
		fs := []val.Value{val.Str("a")}
		for _, v := range vals {
			fs = append(fs, val.Int(v))
		}
		n.InjectTuple(tuple.New(name, fs...))
	}
	for i := int64(1); i <= 4; i++ {
		ins("link", i)
	}
	for _, w := range []int64{0, 2, 5} {
		ins("weight", w)
	}
	for k := int64(5); k <= 9; k++ {
		ins("probe", k)
	}
	loop.Run(1)
	ins("link", 7) // mutate the shared relation between bursts
	for k := int64(10); k <= 12; k++ {
		ins("probe", k)
	}
	loop.Run(1)
}

func TestOptimizedPlanIsTupleEquivalent(t *testing.T) {
	nLoop, naive := startOne(t, diffSrc, Options{Seed: 1, NoJitter: true})
	oLoop, opt := startOne(t, diffSrc, Options{Seed: 1, NoJitter: true,
		Optimizer: &planner.OptimizerConfig{}})
	driveDiff(nLoop, naive)
	driveDiff(oLoop, opt)

	for _, rel := range []string{"outA", "outB", "outC"} {
		want := naive.Table(rel).ScanSorted()
		got := opt.Table(rel).ScanSorted()
		if len(want) == 0 {
			t.Fatalf("%s: empty on the naive node — test proves nothing", rel)
		}
		if !reflect.DeepEqual(renderAll(want), renderAll(got)) {
			t.Fatalf("%s diverged:\n  naive %v\n  opt   %v",
				rel, renderAll(want), renderAll(got))
		}
	}

	// The optimizer node answered the A2/A3 probes from A1's shared
	// cache and pushed filters ahead of joins, so it must have done
	// strictly less probe work for identical output.
	if np, op := naive.Stats().Probes, opt.Stats().Probes; op >= np {
		t.Fatalf("probes: optimized %d >= naive %d", op, np)
	}
}

func renderAll(rows []*tuple.Tuple) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = r.String()
	}
	return out
}

// TestSharedProbeStrandsKeepOwnFilters pins the sharing machinery
// directly: with only NoReorder/NoPushdown left on, strands still share
// the first probe, and each applies its own residual selection.
func TestSharedProbeStrandsKeepOwnFilters(t *testing.T) {
	_, n := startOne(t, diffSrc, Options{Seed: 1, NoJitter: true,
		Optimizer: &planner.OptimizerConfig{NoReorder: true, NoPushdown: true}})
	shared := 0
	for _, group := range n.strands {
		keys := map[string]int{}
		for _, s := range group {
			if s.firstJoin != nil {
				keys[s.shareKey]++
			}
		}
		for _, c := range keys {
			if c >= 2 {
				shared += c
			}
		}
	}
	if shared < 3 {
		t.Fatalf("sharable strands wired = %d, want A1+A2+A3", shared)
	}
}

const replanSrc = `
	materialize(big, infinity, infinity, keys(1,2)).
	materialize(small, infinity, infinity, keys(1,2)).
	materialize(out, infinity, infinity, keys(1,2,3)).
	R1 out@X(X, B, S) :- evt@X(X), big@X(X, B), small@X(X, S).
`

// TestReplanKeepsRuleIdentity is the replan regression test: growing a
// relation far past the cardinality its plan was costed with must swap
// the strand's plan in place on the next introspection refresh — same
// rule ID, monotonic sysRule fire counter, Replans visible in sysPlan.
func TestReplanKeepsRuleIdentity(t *testing.T) {
	// Explicit interval: the test ends by reading sysPlan rows, and
	// optimizer-only ticks don't deliver them.
	loop, n := startOne(t, replanSrc, Options{Seed: 1, NoJitter: true,
		IntrospectInterval: 1, Optimizer: &planner.OptimizerConfig{}})

	planOf := func() introspect.PlanStat {
		t.Helper()
		for _, ps := range n.PlanStats() {
			if ps.Rule == "R1" {
				return ps
			}
		}
		t.Fatal("R1 missing from PlanStats")
		return introspect.PlanStat{}
	}
	firesOf := func() int64 {
		t.Helper()
		for _, rs := range n.RuleStats() {
			if rs.ID == "R1" {
				return rs.Fires
			}
		}
		return -1
	}

	// At start the catalog sees both tables as equals: textual order.
	before := planOf()
	if before.Order != "0,1" || before.Replans != 0 {
		t.Fatalf("start plan = %+v, want order 0,1 with no replans", before)
	}

	// Fire the rule once against small tables.
	n.InjectTuple(tuple.New("small", val.Str("a"), val.Int(1)))
	n.InjectTuple(tuple.New("small", val.Str("a"), val.Int(2)))
	n.InjectTuple(tuple.New("evt", val.Str("a")))
	loop.Run(2)
	if firesOf() != 1 {
		t.Fatalf("fires before replan = %d, want 1", firesOf())
	}

	// Grow big to 140 rows — 4x past the costed basis of 32 — and let
	// the next refresh notice.
	for i := 0; i < 140; i++ {
		n.InjectTuple(tuple.New("big", val.Str("a"), val.Int(int64(i))))
	}
	loop.Run(2)

	after := planOf()
	if after.Replans < 1 {
		t.Fatalf("plan after growth = %+v, want a replan", after)
	}
	if after.Order != "1,0" {
		t.Fatalf("replanned order = %q, want small probed first (1,0)", after.Order)
	}
	if after.Rule != "R1" {
		t.Fatalf("replan changed the rule ID: %q", after.Rule)
	}

	// The swapped strand keeps its identity: the fire counter continues
	// from where it was, and the rule still derives tuples.
	n.InjectTuple(tuple.New("evt", val.Str("a")))
	loop.Run(1)
	if firesOf() != 2 {
		t.Fatalf("fires after replan = %d, want 2 (monotonic across swap)", firesOf())
	}
	if got := n.Table("out").Len(); got != 280 {
		t.Fatalf("out rows = %d, want 140x2", got)
	}

	// And the whole story is queryable from OverLog via sysPlan.
	var row *tuple.Tuple
	for _, r := range n.Table(introspect.PlanRelation).ScanSorted() {
		if r.Field(1).AsStr() == "R1" {
			row = r
		}
	}
	if row == nil {
		t.Fatal("no sysPlan row for R1")
	}
	if row.Field(2).AsStr() != "1,0" || row.Field(4).AsInt() < 1 {
		t.Fatalf("sysPlan row = %v, want order 1,0 and replans >= 1", row)
	}
	if row.Field(3).AsFloat() <= 0 {
		t.Fatalf("sysPlan cost = %v, want > 0", row.Field(3))
	}
}

// TestSysPlanWithoutOptimizer: the relation exists and is queryable
// even when no optimizer is configured — rules just report the textual
// plan markers.
func TestSysPlanWithoutOptimizer(t *testing.T) {
	// Explicit interval: without the optimizer (or a sys* consumer) the
	// demand-driven refresh would never run and the relation would stay
	// empty.
	loop, n := startOne(t, replanSrc, Options{Seed: 1, NoJitter: true,
		IntrospectInterval: 1})
	loop.Run(2)
	rows := n.Table(introspect.PlanRelation).ScanSorted()
	if len(rows) == 0 {
		t.Fatal("sysPlan empty without optimizer")
	}
	for _, r := range rows {
		if r.Field(2).AsStr() != "-" || r.Field(4).AsInt() != 0 {
			t.Fatalf("unoptimized sysPlan row = %v, want order - and 0 replans", r)
		}
	}
}

// TestInstallOptimizesNewRules: rules grafted in at runtime go through
// the optimizer against live statistics immediately.
func TestInstallOptimizesNewRules(t *testing.T) {
	loop, n := startOne(t, replanSrc, Options{Seed: 1, NoJitter: true,
		Optimizer: &planner.OptimizerConfig{}})
	for i := 0; i < 100; i++ {
		n.InjectTuple(tuple.New("big", val.Str("a"), val.Int(int64(i))))
	}
	n.InjectTuple(tuple.New("small", val.Str("a"), val.Int(1)))
	loop.Run(1)
	if err := n.Install(fmt.Sprintf(`
		materialize(out2, infinity, infinity, keys(1,2,3)).
		I1 out2@X(X, B, S) :- evt@X(X), big@X(X, B), small@X(X, S).
	`)); err != nil {
		t.Fatal(err)
	}
	loop.Run(1)
	for _, ps := range n.PlanStats() {
		if ps.Rule == "I1" {
			// Live stats at install time: big is 100x small, so the
			// installed rule probes small first from the start.
			if ps.Order != "1,0" {
				t.Fatalf("installed plan = %+v, want order 1,0", ps)
			}
			return
		}
	}
	t.Fatal("installed rule I1 missing from PlanStats")
}
