package workload

import (
	"fmt"
	"os"
	"testing"

	"p2/internal/harness"
)

// TestKVWorkload drives the open-loop PUT/GET mix against a converged
// 32-node KV ring and checks the report is coherent: nearly everything
// completes, latencies are ordered, and staleness stays marginal on a
// static ring.
func TestKVWorkload(t *testing.T) {
	h := harness.NewChord(harness.Opts{N: 32, Seed: 1, JoinSpacing: 0.1, KV: true})
	defer h.Close()
	h.Run(32*0.1 + 200)
	if rc := h.RingCorrectness(); rc < 1.0 {
		t.Fatalf("ring correctness %.2f before workload", rc)
	}

	rep := RunKV(h, KVOpts{Rate: 10, Duration: 20, Seed: 7})
	issued := rep.PutsIssued + rep.GetsIssued
	if issued < 150 || issued > 250 {
		t.Fatalf("issued %d ops; a rate-10 20s Poisson window should land near 200", issued)
	}
	if rep.PutsIssued == 0 || rep.GetsIssued == 0 {
		t.Fatalf("mix degenerate: %d puts, %d gets", rep.PutsIssued, rep.GetsIssued)
	}
	if cr := rep.CompletionRate(); cr < 0.99 {
		t.Fatalf("completion rate %.3f on a static converged ring", cr)
	}
	if rep.PutP50 > rep.PutP99 || rep.PutP99 > rep.PutP999 {
		t.Fatalf("put percentiles out of order: %v/%v/%v", rep.PutP50, rep.PutP99, rep.PutP999)
	}
	if rep.GetP50 > rep.GetP99 || rep.GetP99 > rep.GetP999 {
		t.Fatalf("get percentiles out of order: %v/%v/%v", rep.GetP50, rep.GetP99, rep.GetP999)
	}
	if rep.PutP50 <= 0 || rep.GetP50 <= 0 {
		t.Fatal("p50 latency is zero; latencies were not measured")
	}
	if sr := rep.StalenessRate(); sr > 0.05 {
		t.Fatalf("staleness rate %.3f on a static ring", sr)
	}
}

// TestKVWorkloadDeterministicAcrossShards pins the KV driver to the
// same bit-identity discipline as the lookup driver: same seed, same
// report — every count, percentile, and staleness tally — at 1 and 4
// shards.
func TestKVWorkloadDeterministicAcrossShards(t *testing.T) {
	run := func(shards int) string {
		h := harness.NewChord(harness.Opts{N: 24, Seed: 3, JoinSpacing: 0.1, Shards: shards, KV: true})
		defer h.Close()
		h.Run(24*0.1 + 120)
		rep := RunKV(h, KVOpts{Rate: 5, Duration: 10, Seed: 11})
		return fmt.Sprintf("%+v", rep)
	}
	a, b := run(1), run(4)
	if a != b {
		t.Fatalf("KV workload report differs across shard counts:\n  shards=1: %s\n  shards=4: %s", a, b)
	}
}

// TestChurnedWorkloadSoak is the churn variant of the soak: the
// open-loop PUT/GET driver runs while EnableChurn keeps killing and
// replacing nodes, and the run must still clear a completion-rate
// floor and stay bit-identical across shard counts. The always-on
// shape is modest (64 nodes); CI's test-scale job sets P2_SCALE_SOAK=1
// for the 1k-node version.
func TestChurnedWorkloadSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("churned soak skipped in -short mode")
	}
	// Session lengths keep the death rate meaningful but survivable:
	// ~3 deaths inside the 64-node window, ~50 inside the 1k one.
	// There are no client-level retries — a lookup that routes into a
	// just-died node is simply lost — so the floor is the single-shot
	// completion rate under active membership turnover.
	n, rate, dur, session := 64, 10.0, 30.0, 600.0
	if os.Getenv("P2_SCALE_SOAK") != "" {
		n, rate, dur, session = 1000, 50.0, 60.0, 1200.0
	}
	run := func(shards int) (KVReport, string) {
		h := harness.NewChord(harness.Opts{
			N: n, Seed: 5, JoinSpacing: 0.05, JoinRamp: n >= 256,
			KV: true, Shards: shards,
		})
		defer h.Close()
		h.Run(h.JoinDeadline() + 120)
		h.StartChurn(session)
		rep := RunKV(h, KVOpts{Rate: rate, Duration: dur, Seed: 9})
		h.StopChurn()
		return rep, fmt.Sprintf("%+v", rep)
	}
	repA, a := run(1)
	_, b := run(4)
	if a != b {
		t.Fatalf("churned KV soak differs across shard counts:\n  shards=1: %s\n  shards=4: %s", a, b)
	}
	if cr := repA.CompletionRate(); cr < 0.85 {
		t.Fatalf("completion rate %.3f under churn (floor 0.85): %s", cr, a)
	}
	t.Logf("n=%d churned soak: %s", n, a)
}
