// Package workload drives open-loop lookup traffic against a Chord
// harness and reports latency percentiles — the measurement side of
// the scale-out campaign (ROADMAP: "an open-loop lookup workload
// driver that models millions of clients issuing requests against the
// overlay with latency-percentile reporting").
//
// Open-loop means arrivals never wait for completions: the driver
// pre-draws a Poisson arrival schedule (the superposition of millions
// of thin clients is a Poisson process, so one aggregate rate models
// any client population) and issues each lookup at its scheduled
// virtual time through the deployment's barrier lane, whether or not
// earlier lookups have returned. That is the workload shape that
// exposes queueing collapse: a closed loop self-throttles when the
// system slows, an open loop keeps arriving and shows the p999.
//
// Determinism: the schedule, requesters, and keys all derive from
// Opts.Seed via the driver's private rng, drawn either up front or
// inside barrier callbacks (which execute in deterministic order, with
// every shard loop quiescent) — so a workload run reports bit-identical
// results at any shard count, same as the harness it drives.
package workload

import (
	"math/rand"
	"sort"

	"p2/internal/harness"
	"p2/internal/id"
)

// Opts configures one open-loop run.
type Opts struct {
	// Rate is the aggregate lookup arrival rate in lookups per virtual
	// second across the whole deployment.
	Rate float64
	// Duration is the arrival window in virtual seconds.
	Duration float64
	// Drain is how long past the window the run keeps simulating so
	// in-flight lookups can finish (default 30 virtual seconds).
	Drain float64
	// Seed drives the arrival schedule, requester and key choices.
	Seed int64
}

// Report summarizes one run. Percentiles are nearest-rank over
// completed lookups; latency is virtual seconds from issue to the
// requester observing lookupResults.
type Report struct {
	Issued    int
	Completed int

	HopP50, HopP99, HopP999             float64
	LatencyP50, LatencyP99, LatencyP999 float64
	MeanHops                            float64
}

// CompletionRate is the fraction of issued lookups that finished.
func (r Report) CompletionRate() float64 {
	if r.Issued == 0 {
		return 0
	}
	return float64(r.Completed) / float64(r.Issued)
}

// Run issues the configured lookup stream against h, advances virtual
// time through the window plus the drain, and reports percentiles.
// Call it from the driver with the harness quiescent (between Run
// calls); it owns the clock until it returns.
func Run(h *harness.Chord, o Opts) Report {
	if o.Drain <= 0 {
		o.Drain = 30
	}
	rng := rand.New(rand.NewSource(o.Seed))

	// Pre-draw the full arrival schedule: exponential inter-arrivals at
	// the aggregate rate. Open loop — nothing about the schedule can
	// depend on how the overlay keeps up.
	var arrivals []float64
	for t := rng.ExpFloat64() / o.Rate; t < o.Duration; t += rng.ExpFloat64() / o.Rate {
		arrivals = append(arrivals, t)
	}

	base := h.Now()
	issued := make([]*harness.LookupResult, 0, len(arrivals))
	for _, off := range arrivals {
		h.D.At(base+off, func() {
			// Requester and key draw inside the barrier callback:
			// callbacks fire in schedule order with all shards
			// quiescent, so the draw sequence — and the live set it
			// picks from — is deterministic at any shard count.
			live := h.LiveAddrs()
			from := live[rng.Intn(len(live))]
			issued = append(issued, h.Lookup(from, id.Random(rng)))
		})
	}
	h.Run(o.Duration + o.Drain)

	rep := Report{Issued: len(issued)}
	var hops, lats []float64
	totalHops := 0
	for _, lr := range issued {
		if !lr.Done {
			continue
		}
		rep.Completed++
		hops = append(hops, float64(lr.Hops))
		lats = append(lats, lr.Latency())
		totalHops += lr.Hops
	}
	if rep.Completed > 0 {
		rep.MeanHops = float64(totalHops) / float64(rep.Completed)
	}
	rep.HopP50, rep.HopP99, rep.HopP999 = percentiles(hops)
	rep.LatencyP50, rep.LatencyP99, rep.LatencyP999 = percentiles(lats)
	return rep
}

// percentiles returns the nearest-rank p50/p99/p999 of samples.
func percentiles(samples []float64) (p50, p99, p999 float64) {
	if len(samples) == 0 {
		return 0, 0, 0
	}
	sort.Float64s(samples)
	at := func(p float64) float64 {
		i := int(p * float64(len(samples)))
		if i >= len(samples) {
			i = len(samples) - 1
		}
		return samples[i]
	}
	return at(0.50), at(0.99), at(0.999)
}
