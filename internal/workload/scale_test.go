package workload

import (
	"fmt"
	"os"
	"runtime"
	"strconv"
	"testing"

	"p2/internal/harness"
	"p2/internal/simnet"
)

// TestScale10k is the scale-out acceptance soak: a 10k-node sharded
// Chord deployment on the transit-stub WAN converges and completes a
// 60-virtual-second open-loop lookup workload, and the process heap
// stays within the interned-value budget. It costs tens of wall
// minutes on one core, so it only runs when asked for: CI's test-scale
// job sets P2_SCALE_SOAK=1, and local probing can size it down with
// P2_SCALE_N (e.g. P2_SCALE_N=1000 go test -run TestScale10k).
func TestScale10k(t *testing.T) {
	if testing.Short() {
		t.Skip("10k-node soak skipped in -short mode (CI: test-scale job)")
	}
	n := 0
	if s := os.Getenv("P2_SCALE_N"); s != "" {
		if v, err := strconv.Atoi(s); err == nil && v > 0 {
			n = v
		}
	}
	if n == 0 {
		if os.Getenv("P2_SCALE_SOAK") == "" {
			t.Skip("10k-node soak needs P2_SCALE_SOAK=1 (CI: test-scale job) or P2_SCALE_N=<n>")
		}
		n = 10000
	}

	wan := simnet.TransitStubWAN(8, 4, 17)
	h := harness.NewChord(harness.Opts{N: n, Seed: 1, JoinSpacing: 0.01,
		JoinRamp: true, Net: &wan})
	defer h.Close()

	// Ramped build (4%/s growth, capped at 100 joins/s) keeps every
	// prefix of the ring converged; the settle window then only has to
	// absorb the tail of in-flight stabilization.
	h.Run(h.JoinDeadline() + 120)
	// Converged means the successor graph is the true ring for (almost)
	// every node; at 10k a handful of stragglers mid-stabilization are
	// tolerated, total wedging is not.
	if rc := h.RingCorrectness(); rc < 0.99 {
		t.Fatalf("ring correctness %.4f after build+settle; deployment did not converge", rc)
	}

	rep := Run(h, Opts{Rate: 100, Duration: 60, Seed: 2})
	if rep.Issued == 0 {
		t.Fatal("workload issued nothing")
	}
	if cr := rep.CompletionRate(); cr < 0.99 {
		t.Fatalf("completion rate %.4f (%d/%d); the overlay lost lookups under open-loop load",
			cr, rep.Completed, rep.Issued)
	}

	var ms runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&ms)
	t.Logf("n=%d issued=%d completed=%.2f%% hops p50/p99/p999 = %.0f/%.0f/%.0f  latency p50/p99/p999 = %.0f/%.0f/%.0f ms",
		n, rep.Issued, 100*rep.CompletionRate(),
		rep.HopP50, rep.HopP99, rep.HopP999,
		rep.LatencyP50*1000, rep.LatencyP99*1000, rep.LatencyP999*1000)
	t.Logf("heap in use %.1f MB (%.1f kB/node)", float64(ms.HeapInuse)/(1<<20), float64(ms.HeapInuse)/float64(n)/1024)

	fmt.Println() // keep test output readable under -v
}
