package workload

// The key-value mix: the same open-loop Poisson discipline as Run,
// but issuing PUT/GET operations through the deployment's KV client
// instead of bare ring lookups — the end-to-end workload the service
// exists for. Requires a harness built with Opts.KV.

import (
	"fmt"
	"math/rand"

	"p2"
	"p2/internal/harness"
)

// KVOpts configures one open-loop PUT/GET run.
type KVOpts struct {
	// Rate is the aggregate operation arrival rate per virtual second.
	Rate float64
	// Duration is the arrival window in virtual seconds.
	Duration float64
	// Drain is how long past the window the run keeps simulating so
	// in-flight operations can finish (default 30 virtual seconds).
	Drain float64
	// Seed drives the arrival schedule, requester, key, and op choices.
	Seed int64
	// PutFraction is the probability an arrival is a PUT (default 0.5).
	PutFraction float64
	// Keys is the size of the key universe ops draw from uniformly
	// (default 64). Smaller universes mean hotter keys and more
	// overwrite/staleness pressure.
	Keys int
}

// KVReport summarizes one run: per-op-type completion and latency
// percentiles, plus the staleness rate of completed GETs — the
// fraction whose result predates the last quorum-acked PUT.
type KVReport struct {
	PutsIssued, PutsCompleted int
	GetsIssued, GetsCompleted int
	StaleGets                 int // completed GETs returning stale data
	Misses                    int // completed GETs finding nothing

	PutP50, PutP99, PutP999 float64 // PUT latency, seconds
	GetP50, GetP99, GetP999 float64 // GET latency, seconds
}

// CompletionRate is the fraction of issued operations that finished.
func (r KVReport) CompletionRate() float64 {
	issued := r.PutsIssued + r.GetsIssued
	if issued == 0 {
		return 0
	}
	return float64(r.PutsCompleted+r.GetsCompleted) / float64(issued)
}

// StalenessRate is the fraction of completed GETs that were stale.
func (r KVReport) StalenessRate() float64 {
	if r.GetsCompleted == 0 {
		return 0
	}
	return float64(r.StaleGets) / float64(r.GetsCompleted)
}

// kvIssue pairs one issued operation with its kind for the tally.
type kvIssue struct {
	op  *p2.KVOp
	put bool
}

// RunKV issues the configured PUT/GET stream against h (built with
// Opts.KV), advances virtual time through the window plus the drain,
// and reports per-op percentiles and the staleness rate. Same
// determinism contract as Run: every draw happens either up front or
// inside a barrier callback, so the report is bit-identical at any
// shard count.
func RunKV(h *harness.Chord, o KVOpts) KVReport {
	if o.Drain <= 0 {
		o.Drain = 30
	}
	if o.PutFraction <= 0 {
		o.PutFraction = 0.5
	}
	if o.Keys <= 0 {
		o.Keys = 64
	}
	rng := rand.New(rand.NewSource(o.Seed))

	var arrivals []float64
	for t := rng.ExpFloat64() / o.Rate; t < o.Duration; t += rng.ExpFloat64() / o.Rate {
		arrivals = append(arrivals, t)
	}

	kv := h.D.KV()
	base := h.Now()
	issued := make([]kvIssue, 0, len(arrivals))
	seq := 0
	for _, off := range arrivals {
		h.D.At(base+off, func() {
			// All draws inside the barrier callback — deterministic at
			// any shard count, same as Run.
			live := h.LiveAddrs()
			from := h.D.Node(live[rng.Intn(len(live))])
			key := fmt.Sprintf("wk/%d/%d", o.Seed, rng.Intn(o.Keys))
			isPut := rng.Float64() < o.PutFraction
			seq++
			if from == nil {
				return // requester churned out between draw and issue
			}
			if isPut {
				if op, err := kv.Put(from, key, fmt.Sprintf("v%d", seq)); err == nil {
					issued = append(issued, kvIssue{op: op, put: true})
				}
			} else {
				if op, err := kv.Get(from, key); err == nil {
					issued = append(issued, kvIssue{op: op})
				}
			}
		})
	}
	h.Run(o.Duration + o.Drain)

	var rep KVReport
	var putLats, getLats []float64
	for _, r := range issued {
		if r.put {
			rep.PutsIssued++
			if r.op.Done {
				rep.PutsCompleted++
				putLats = append(putLats, r.op.Latency())
			}
			continue
		}
		rep.GetsIssued++
		if r.op.Done {
			rep.GetsCompleted++
			getLats = append(getLats, r.op.Latency())
			if r.op.Stale {
				rep.StaleGets++
			}
			if !r.op.Found {
				rep.Misses++
			}
		}
	}
	rep.PutP50, rep.PutP99, rep.PutP999 = percentiles(putLats)
	rep.GetP50, rep.GetP99, rep.GetP999 = percentiles(getLats)
	return rep
}
