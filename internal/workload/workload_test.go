package workload

import (
	"fmt"
	"testing"

	"p2/internal/harness"
	"p2/internal/simnet"
)

// TestOpenLoopWorkload drives a modest open-loop stream against a
// converged 32-node ring and checks the report is coherent: nearly
// everything completes, percentiles are ordered, and hop counts sit in
// the O(log N) band.
func TestOpenLoopWorkload(t *testing.T) {
	h := harness.NewChord(harness.Opts{N: 32, Seed: 1, JoinSpacing: 0.1})
	defer h.Close()
	h.Run(32*0.1 + 200)
	if rc := h.RingCorrectness(); rc < 1.0 {
		t.Fatalf("ring correctness %.2f before workload", rc)
	}

	rep := Run(h, Opts{Rate: 10, Duration: 20, Seed: 7})
	if rep.Issued < 150 || rep.Issued > 250 {
		t.Fatalf("issued %d lookups; a rate-10 20s Poisson window should land near 200", rep.Issued)
	}
	if cr := rep.CompletionRate(); cr < 0.99 {
		t.Fatalf("completion rate %.3f on a static converged ring", cr)
	}
	if rep.HopP50 > rep.HopP99 || rep.HopP99 > rep.HopP999 {
		t.Fatalf("hop percentiles out of order: %v/%v/%v", rep.HopP50, rep.HopP99, rep.HopP999)
	}
	if rep.LatencyP50 > rep.LatencyP99 || rep.LatencyP99 > rep.LatencyP999 {
		t.Fatalf("latency percentiles out of order: %v/%v/%v", rep.LatencyP50, rep.LatencyP99, rep.LatencyP999)
	}
	if rep.LatencyP50 <= 0 {
		t.Fatal("p50 latency is zero; latencies were not measured")
	}
	if rep.MeanHops <= 0 || rep.MeanHops > 10 {
		t.Fatalf("mean hops %.2f outside the plausible band for N=32", rep.MeanHops)
	}
}

// TestOpenLoopDeterministicAcrossShards pins the driver to the same
// bit-identity discipline as the harness: the same seed must produce
// the same report — every count and every percentile — at 1 and 4
// shards, on the WAN topology.
func TestOpenLoopDeterministicAcrossShards(t *testing.T) {
	run := func(shards int) string {
		wan := simnet.TransitStubWAN(3, 3, 5)
		h := harness.NewChord(harness.Opts{N: 24, Seed: 3, JoinSpacing: 0.1, Shards: shards, Net: &wan})
		defer h.Close()
		h.Run(24*0.1 + 60)
		rep := Run(h, Opts{Rate: 5, Duration: 10, Seed: 11})
		return fmt.Sprintf("%+v", rep)
	}
	a, b := run(1), run(4)
	if a != b {
		t.Fatalf("workload report differs across shard counts:\n  shards=1: %s\n  shards=4: %s", a, b)
	}
}
