package trace

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"p2/internal/netif"
)

// closeBuf adapts bytes.Buffer to io.WriteCloser.
type closeBuf struct{ bytes.Buffer }

func (c *closeBuf) Close() error { return nil }

func TestRoundTrip(t *testing.T) {
	var buf closeBuf
	w := NewWriter(&buf)
	w.Record(Send, 0.5, "a", "b", []byte{1, 2, 3})
	w.Record(Recv, 0.75, "a", "b", []byte{1, 2, 3})
	w.Record(Recv, 1.25, "b", "a", nil)
	if w.Len() != 3 {
		t.Fatalf("Len = %d", w.Len())
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	tr, err := Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Version != Version || len(tr.Recs) != 3 {
		t.Fatalf("version=%d recs=%d", tr.Version, len(tr.Recs))
	}
	r := tr.Recs[1]
	if r.Dir != Recv || r.T != 0.75 || r.Src != "a" || r.Dst != "b" || !bytes.Equal(r.Payload, []byte{1, 2, 3}) {
		t.Fatalf("record mismatch: %+v", r)
	}
	if got := tr.Nodes(); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("Nodes = %v", got)
	}
	if tr.End() != 1.25 {
		t.Fatalf("End = %v", tr.End())
	}
}

func TestFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.p2trace")
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w.Record(Recv, 2, "x", "y", []byte("payload"))
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	tr, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Recs) != 1 || string(tr.Recs[0].Payload) != "payload" {
		t.Fatalf("recs = %+v", tr.Recs)
	}
}

func TestRejectsBadHeader(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte("NOTP2X\x00\x01"))); err == nil {
		t.Fatal("bad magic accepted")
	}
	var buf closeBuf
	buf.WriteString(Magic)
	buf.Write([]byte{0x00, 0x63}) // version 99
	if _, err := Read(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("unknown version accepted")
	}
}

func TestRejectsTruncatedRecord(t *testing.T) {
	var buf closeBuf
	w := NewWriter(&buf)
	w.Record(Send, 1, "a", "b", []byte{9, 9})
	w.Close()
	b := buf.Bytes()
	if _, err := Read(bytes.NewReader(b[:len(b)-1])); err == nil {
		t.Fatal("truncated record accepted")
	}
}

// memNet is a minimal synchronous Network for the wrapper test.
type memNet struct{ eps map[string]netif.DeliverFunc }

type memEp struct {
	net  *memNet
	addr string
}

func (m *memNet) Attach(addr string, d netif.DeliverFunc) (netif.Endpoint, error) {
	m.eps[addr] = d
	return &memEp{net: m, addr: addr}, nil
}
func (e *memEp) Send(to string, p []byte) {
	if d, ok := e.net.eps[to]; ok {
		d(e.addr, p)
	}
}
func (e *memEp) LocalAddr() string { return e.addr }
func (e *memEp) MTU() int          { return netif.DefaultMTU }
func (e *memEp) Close()            {}

func TestWrapNetworkRecordsBothDirections(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wire.p2trace")
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	now := 0.0
	inner := &memNet{eps: make(map[string]netif.DeliverFunc)}
	net := WrapNetwork(inner, w, func() float64 { return now })

	var delivered int
	if _, err := net.Attach("b", func(string, []byte) { delivered++ }); err != nil {
		t.Fatal(err)
	}
	a, err := net.Attach("a", func(string, []byte) {})
	if err != nil {
		t.Fatal(err)
	}
	now = 3.5
	a.Send("b", []byte{7})
	if delivered != 1 {
		t.Fatal("wrapper broke delivery")
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	tr, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Recs) != 2 {
		t.Fatalf("recs = %d, want send+recv", len(tr.Recs))
	}
	s, r := tr.Recs[0], tr.Recs[1]
	if s.Dir != Send || s.Src != "a" || s.Dst != "b" || s.T != 3.5 {
		t.Fatalf("send rec: %+v", s)
	}
	if r.Dir != Recv || r.Src != "a" || r.Dst != "b" || len(r.Payload) != 1 || r.Payload[0] != 7 {
		t.Fatalf("recv rec: %+v", r)
	}
	_ = os.Remove(path)
}
