// Package trace records wire-level datagram traces from a live
// deployment to a versioned file and reads them back for offline
// replay. A trace captures every framed datagram a node sent or
// received — direction, the node's clock, source and destination
// addresses, and the exact frame bytes — below the transport's element
// chain, so a replay reproduces precisely what the network delivered,
// retransmissions and all.
//
// File format (all integers big-endian):
//
//	header: | "P2WIRE" | version u16 |
//	record: | dir u8 | t f64 | srcLen u16 | src | dstLen u16 | dst | payLen u32 | payload |
//
// repeated to EOF. Times are seconds on the recording node's own event
// loop clock (which starts near zero at spawn), so replaying a node's
// inbound records at their recorded times through a virtual-time
// simulator reproduces its field schedule.
package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"sync"

	"p2/internal/netif"
)

// Magic opens every trace file, followed by the format version.
const Magic = "P2WIRE"

// Version is the current trace-file format version.
const Version uint16 = 1

// Dir is a record's direction relative to the recording node.
type Dir uint8

// Directions.
const (
	Send Dir = 0 // the node put the datagram on the wire
	Recv Dir = 1 // the network delivered the datagram to the node
)

// String names the direction.
func (d Dir) String() string {
	if d == Send {
		return "send"
	}
	return "recv"
}

// Rec is one recorded datagram.
type Rec struct {
	Dir     Dir
	T       float64 // seconds on the recording node's loop clock
	Src     string
	Dst     string
	Payload []byte
}

// Writer appends records to a trace stream. Safe for concurrent use —
// a deployment's nodes record from their own event-loop goroutines into
// one shared file.
type Writer struct {
	mu  sync.Mutex
	out io.Closer
	bw  *bufio.Writer
	err error
	n   int64
}

// NewWriter starts a trace stream on w, emitting the header.
func NewWriter(w io.WriteCloser) *Writer {
	tw := &Writer{out: w, bw: bufio.NewWriter(w)}
	tw.bw.WriteString(Magic)
	var v [2]byte
	binary.BigEndian.PutUint16(v[:], Version)
	_, tw.err = tw.bw.Write(v[:])
	return tw
}

// Create opens path for writing and starts a trace stream on it.
func Create(path string) (*Writer, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	return NewWriter(f), nil
}

// Record appends one datagram. Errors are sticky and surface at Close.
func (w *Writer) Record(dir Dir, t float64, src, dst string, payload []byte) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return
	}
	var hdr [1 + 8]byte
	hdr[0] = byte(dir)
	binary.BigEndian.PutUint64(hdr[1:9], math.Float64bits(t))
	w.bw.Write(hdr[:])
	w.str(src)
	w.str(dst)
	var plen [4]byte
	binary.BigEndian.PutUint32(plen[:], uint32(len(payload)))
	w.bw.Write(plen[:])
	_, w.err = w.bw.Write(payload)
	w.n++
}

func (w *Writer) str(s string) {
	var l [2]byte
	binary.BigEndian.PutUint16(l[:], uint16(len(s)))
	w.bw.Write(l[:])
	w.bw.WriteString(s)
}

// Len reports records written so far.
func (w *Writer) Len() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.n
}

// Close flushes and closes the stream, returning the first error the
// writer encountered.
func (w *Writer) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if ferr := w.bw.Flush(); w.err == nil {
		w.err = ferr
	}
	if cerr := w.out.Close(); w.err == nil {
		w.err = cerr
	}
	return w.err
}

// Trace is a fully read trace.
type Trace struct {
	Version uint16
	Recs    []Rec
}

// Read parses a trace stream.
func Read(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	hdr := make([]byte, len(Magic)+2)
	if _, err := io.ReadFull(br, hdr); err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	if string(hdr[:len(Magic)]) != Magic {
		return nil, fmt.Errorf("trace: bad magic %q", hdr[:len(Magic)])
	}
	tr := &Trace{Version: binary.BigEndian.Uint16(hdr[len(Magic):])}
	if tr.Version != Version {
		return nil, fmt.Errorf("trace: unsupported version %d (have %d)", tr.Version, Version)
	}
	for {
		var rh [1 + 8]byte
		if _, err := io.ReadFull(br, rh[:]); err == io.EOF {
			return tr, nil
		} else if err != nil {
			return nil, fmt.Errorf("trace: record %d: %w", len(tr.Recs), err)
		}
		rec := Rec{Dir: Dir(rh[0]), T: math.Float64frombits(binary.BigEndian.Uint64(rh[1:9]))}
		var err error
		if rec.Src, err = readStr(br); err != nil {
			return nil, fmt.Errorf("trace: record %d src: %w", len(tr.Recs), err)
		}
		if rec.Dst, err = readStr(br); err != nil {
			return nil, fmt.Errorf("trace: record %d dst: %w", len(tr.Recs), err)
		}
		var plen [4]byte
		if _, err := io.ReadFull(br, plen[:]); err != nil {
			return nil, fmt.Errorf("trace: record %d payload length: %w", len(tr.Recs), err)
		}
		rec.Payload = make([]byte, binary.BigEndian.Uint32(plen[:]))
		if _, err := io.ReadFull(br, rec.Payload); err != nil {
			return nil, fmt.Errorf("trace: record %d payload: %w", len(tr.Recs), err)
		}
		tr.Recs = append(tr.Recs, rec)
	}
}

func readStr(br *bufio.Reader) (string, error) {
	var l [2]byte
	if _, err := io.ReadFull(br, l[:]); err != nil {
		return "", err
	}
	b := make([]byte, binary.BigEndian.Uint16(l[:]))
	if _, err := io.ReadFull(br, b); err != nil {
		return "", err
	}
	return string(b), nil
}

// ReadFile reads a trace file.
func ReadFile(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}

// Nodes returns the distinct recorded endpoints — every address that
// recorded a send or a delivery — in sorted order.
func (tr *Trace) Nodes() []string {
	set := make(map[string]bool)
	for _, r := range tr.Recs {
		switch r.Dir {
		case Send:
			set[r.Src] = true
		case Recv:
			set[r.Dst] = true
		}
	}
	out := make([]string, 0, len(set))
	for a := range set {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}

// End returns the latest timestamp in the trace.
func (tr *Trace) End() float64 {
	var end float64
	for _, r := range tr.Recs {
		if r.T > end {
			end = r.T
		}
	}
	return end
}

// WrapNetwork records every datagram the wrapped network carries for
// one node: sends at Send time, deliveries as they come off the wire,
// both stamped with the node's clock. The wrapper sits directly above
// the physical network and below any fault injection — what it records
// is what actually crossed the wire.
func WrapNetwork(inner netif.Network, w *Writer, clock func() float64) netif.Network {
	return &recNet{inner: inner, w: w, clock: clock}
}

type recNet struct {
	inner netif.Network
	w     *Writer
	clock func() float64
}

func (rn *recNet) Attach(addr string, deliver netif.DeliverFunc) (netif.Endpoint, error) {
	wrapped := func(from string, payload []byte) {
		rn.w.Record(Recv, rn.clock(), from, addr, payload)
		deliver(from, payload)
	}
	ep, err := rn.inner.Attach(addr, wrapped)
	if err != nil {
		return nil, err
	}
	return &recEndpoint{inner: ep, net: rn}, nil
}

type recEndpoint struct {
	inner netif.Endpoint
	net   *recNet
}

func (e *recEndpoint) Send(to string, payload []byte) {
	e.net.w.Record(Send, e.net.clock(), e.inner.LocalAddr(), to, payload)
	e.inner.Send(to, payload)
}

func (e *recEndpoint) LocalAddr() string { return e.inner.LocalAddr() }
func (e *recEndpoint) MTU() int          { return e.inner.MTU() }
func (e *recEndpoint) Close()            { e.inner.Close() }
