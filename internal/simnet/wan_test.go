package simnet

import (
	"fmt"
	"math/rand"
	"testing"

	"p2/internal/eventloop"
	"p2/internal/netif"
)

// TestMinLatencyBoundsMatrix is the lookahead-soundness property at the
// config level: across randomly generated transit-stub topologies,
// MinLatency never exceeds any base matrix entry — the bound a sharded
// coordinator's epochs are built on.
func TestMinLatencyBoundsMatrix(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		rng := rand.New(rand.NewSource(seed))
		cfg := TransitStubWAN(1+rng.Intn(6), 1+rng.Intn(8), seed)
		min := cfg.MinLatency()
		if min <= 0 {
			t.Fatalf("seed %d: MinLatency %g must be positive for sharded runs", seed, min)
		}
		for i, row := range cfg.Matrix {
			for j, v := range row {
				if min > v {
					t.Fatalf("seed %d: MinLatency %g exceeds matrix[%d][%d]=%g", seed, min, i, j, v)
				}
			}
		}
	}
}

// TestMinLatencyBoundsSampledDelays drives real datagrams through a WAN
// net — jitter, queuing draws, transit serialization, access-link
// queueing all active — and checks every sampled one-way delay is at
// least MinLatency. This is the property that keeps a sharded run
// sound: a datagram arriving before the epoch barrier that sent it
// could not be expressed by the barrier exchange.
func TestMinLatencyBoundsSampledDelays(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		cfg := TransitStubWAN(3, 3, seed)
		cfg.Seed = seed
		loop := eventloop.NewSim()
		net := New(loop, cfg)
		min := cfg.MinLatency()

		const nodes = 12
		type rcpt struct {
			from string
			at   float64
		}
		sent := map[string]float64{} // msg id -> send time
		var got []rcpt
		eps := make([]netif.Endpoint, nodes)
		addrs := make([]string, nodes)
		for i := 0; i < nodes; i++ {
			addrs[i] = fmt.Sprintf("w%d:p2", i)
			i := i
			ep, err := net.Attach(addrs[i], func(from string, payload []byte) {
				got = append(got, rcpt{from: string(payload), at: loop.Now()})
			})
			if err != nil {
				t.Fatal(err)
			}
			eps[i] = ep
		}
		rng := rand.New(rand.NewSource(seed))
		msg := 0
		for k := 0; k < 40; k++ {
			at := float64(k) * 0.05
			loop.At(at, func() {
				a, b := rng.Intn(nodes), rng.Intn(nodes)
				if a == b {
					b = (b + 1) % nodes
				}
				id := fmt.Sprintf("m%d", msg)
				msg++
				sent[id] = loop.Now()
				eps[a].Send(addrs[b], []byte(id))
			})
		}
		loop.Run(30)
		if len(got) < 30 {
			t.Fatalf("seed %d: only %d/40 datagrams arrived on a lossless net", seed, len(got))
		}
		for _, r := range got {
			d := r.at - sent[r.from]
			if d < min {
				t.Errorf("seed %d: datagram %s delivered after %.6fs < MinLatency %.6fs", seed, r.from, d, min)
			}
		}
	}
}

// TestBurstLossIsPerNodeDeterministic pins the Gilbert-Elliott
// machinery to the per-node-stream discipline: the same node sending
// the same datagram sequence loses the same datagrams regardless of
// what any other node does in between — the property that keeps burst
// placement identical at every shard count.
func TestBurstLossIsPerNodeDeterministic(t *testing.T) {
	run := func(noise bool) []int64 {
		cfg := DefaultConfig()
		cfg.BurstEnter = 0.05
		cfg.BurstExit = 0.3
		cfg.BurstLoss = 0.8
		loop := eventloop.NewSim()
		net := New(loop, cfg)
		send := func(addr string) netif.Endpoint {
			ep, err := net.Attach(addr, func(string, []byte) {})
			if err != nil {
				t.Fatal(err)
			}
			return ep
		}
		a := send("a:p2")
		b := send("b:p2")
		n := send("noise:p2")
		for i := 0; i < 200; i++ {
			at := float64(i) * 0.01
			loop.At(at, func() {
				a.Send("b:p2", []byte("x"))
				if noise {
					// Interleave unrelated traffic; a's loss draws must not move.
					n.Send("a:p2", []byte("y"))
					b.Send("noise:p2", []byte("z"))
				}
			})
		}
		loop.Run(10)
		return []int64{net.Stats("a:p2").PacketsLost, net.Stats("a:p2").PacketsSent}
	}
	quiet, noisy := run(false), run(true)
	if quiet[0] != noisy[0] || quiet[1] != noisy[1] {
		t.Fatalf("node a's loss pattern moved with unrelated traffic: %v vs %v", quiet, noisy)
	}
	if quiet[0] == 0 {
		t.Fatal("burst loss never fired; the machinery is dead")
	}
}
