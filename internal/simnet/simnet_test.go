package simnet

import (
	"testing"

	"p2/internal/eventloop"
	"p2/internal/netif"
)

// attach registers addr and returns the endpoint plus a pointer to the
// slice of (from, payload) deliveries it has observed.
func attach(t *testing.T, n *Net, addr string) (netif.Endpoint, *[]string) {
	t.Helper()
	var got []string
	ep, err := n.Attach(addr, func(from string, payload []byte) {
		got = append(got, from+":"+string(payload))
	})
	if err != nil {
		t.Fatalf("attach %s: %v", addr, err)
	}
	_ = ep
	// The slice header changes as it grows; capture through a closure.
	return ep, &got
}

func twoNodeNet(t *testing.T, cfg Config) (*eventloop.Sim, *Net, netif.Endpoint, *[]string, netif.Endpoint, *[]string) {
	t.Helper()
	loop := eventloop.NewSim()
	n := New(loop, cfg)
	epA, gotA := attach(t, n, "a")
	epB, gotB := attach(t, n, "b")
	return loop, n, epA, gotA, epB, gotB
}

func TestDeliveryWithLatency(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Domains = 1 // same domain: intra latency
	loop, _, epA, _, _, gotB := twoNodeNet(t, cfg)
	epA.Send("b", []byte("hello"))
	loop.Run(0.001)
	if len(*gotB) != 0 {
		t.Fatal("delivered before latency elapsed")
	}
	loop.Run(1)
	if len(*gotB) != 1 || (*gotB)[0] != "a:hello" {
		t.Fatalf("gotB = %v", *gotB)
	}
}

func TestCrossDomainSlower(t *testing.T) {
	cfg := DefaultConfig()
	loop := eventloop.NewSim()
	n := New(loop, cfg)
	// Find two addrs in same and different domains by probing placement.
	var sameA, sameB, crossB string
	base := "probe0"
	n.Attach(base, func(string, []byte) {})
	baseDomain := n.lookup(base).domain
	for i := 1; i < 100 && (sameB == "" || crossB == ""); i++ {
		addr := "probe" + string(rune('a'+i%26)) + string(rune('0'+i/26))
		n.Attach(addr, func(string, []byte) {})
		if n.lookup(addr).domain == baseDomain && sameB == "" {
			sameB = addr
		} else if n.lookup(addr).domain != baseDomain && crossB == "" {
			crossB = addr
		}
	}
	sameA = base
	if sameB == "" || crossB == "" {
		t.Skip("placement did not produce both cases")
	}
	if n.Latency(sameA, sameB) >= n.Latency(sameA, crossB) {
		t.Fatalf("intra %v should be < inter %v",
			n.Latency(sameA, sameB), n.Latency(sameA, crossB))
	}
	// Latency is a pure function of hashed domain placement, so it is
	// defined (and stable) even for addresses that never attached.
	if got := n.Latency(sameA, "unknown"); got != cfg.IntraLatency && got != cfg.InterLatency+2*cfg.IntraLatency {
		t.Errorf("unknown addr latency %v is off the topology", got)
	}
}

func TestDoubleAttachFails(t *testing.T) {
	loop := eventloop.NewSim()
	n := New(loop, DefaultConfig())
	if _, err := n.Attach("a", func(string, []byte) {}); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Attach("a", func(string, []byte) {}); err == nil {
		t.Fatal("second attach must fail")
	}
}

func TestReattachAfterKill(t *testing.T) {
	loop := eventloop.NewSim()
	n := New(loop, DefaultConfig())
	n.Attach("a", func(string, []byte) {})
	n.Kill("a")
	if n.Alive("a") {
		t.Fatal("killed node reported alive")
	}
	if _, err := n.Attach("a", func(string, []byte) {}); err != nil {
		t.Fatalf("reattach after kill: %v", err)
	}
	if !n.Alive("a") {
		t.Fatal("reattached node should be alive")
	}
	_ = loop
}

func TestKillDropsTraffic(t *testing.T) {
	loop, n, epA, gotA, epB, gotB := twoNodeNet(t, DefaultConfig())
	n.Kill("b")
	epA.Send("b", []byte("x")) // into the void
	loop.Run(1)
	if len(*gotB) != 0 {
		t.Fatal("dead node received traffic")
	}
	// Dead node cannot send either.
	epB.Send("a", []byte("y"))
	loop.Run(2)
	if len(*gotA) != 0 {
		t.Fatal("dead node sent traffic")
	}
	st := n.Stats("a")
	if st.PacketsLost != 1 {
		t.Fatalf("lost = %d, want 1", st.PacketsLost)
	}
}

func TestInFlightToKilledNodeVanishes(t *testing.T) {
	loop, n, epA, _, _, gotB := twoNodeNet(t, DefaultConfig())
	epA.Send("b", []byte("x"))
	// Kill b while the datagram is in flight.
	loop.At(0.0001, func() { n.Kill("b") })
	loop.Run(5)
	if len(*gotB) != 0 {
		t.Fatal("in-flight datagram delivered to dead node")
	}
}

func TestPartition(t *testing.T) {
	loop, n, epA, _, _, gotB := twoNodeNet(t, DefaultConfig())
	n.Partition("a", "b", true)
	epA.Send("b", []byte("x"))
	loop.Run(1)
	if len(*gotB) != 0 {
		t.Fatal("partitioned traffic delivered")
	}
	n.Partition("b", "a", false) // heal, order-insensitive
	epA.Send("b", []byte("y"))
	loop.Run(2)
	if len(*gotB) != 1 {
		t.Fatal("healed partition still cut")
	}
}

func TestUniformLoss(t *testing.T) {
	cfg := DefaultConfig()
	cfg.LossRate = 0.5
	loop, n, epA, _, _, gotB := twoNodeNet(t, cfg)
	for i := 0; i < 1000; i++ {
		epA.Send("b", []byte("x"))
	}
	loop.Run(60)
	delivered := len(*gotB)
	if delivered < 350 || delivered > 650 {
		t.Fatalf("delivered %d of 1000 at 50%% loss", delivered)
	}
	if n.Stats("a").PacketsLost != int64(1000-delivered) {
		t.Fatal("loss accounting mismatch")
	}
}

func TestSerializationDelayQueues(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Domains = 1
	cfg.StubBps = 1000 // 1 kB/s: a 100-byte packet takes 0.1 s to serialize
	loop := eventloop.NewSim()
	n := New(loop, cfg)
	n.Attach("a", func(string, []byte) {})
	var times []float64
	n.Attach("b", func(string, []byte) { times = append(times, loop.Now()) })
	epA := &endpoint{net: n, node: n.lookup("a")}
	payload := make([]byte, 100-cfg.HeaderBytes)
	epA.Send("b", payload)
	epA.Send("b", payload)
	loop.Run(10)
	if len(times) != 2 {
		t.Fatalf("delivered %d", len(times))
	}
	gap := times[1] - times[0]
	if gap < 0.09 || gap > 0.11 {
		t.Fatalf("second packet should queue behind first: gap %v", gap)
	}
}

func TestByteAccounting(t *testing.T) {
	loop, n, epA, _, _, _ := twoNodeNet(t, DefaultConfig())
	epA.Send("b", make([]byte, 72))
	loop.Run(1)
	wantSize := int64(72 + DefaultConfig().HeaderBytes)
	if s := n.Stats("a"); s.BytesSent != wantSize || s.PacketsSent != 1 {
		t.Fatalf("a stats = %+v", s)
	}
	if s := n.Stats("b"); s.BytesReceived != wantSize || s.PacketsRecv != 1 {
		t.Fatalf("b stats = %+v", s)
	}
	tot := n.TotalStats()
	if tot.BytesSent != wantSize || tot.BytesReceived != wantSize {
		t.Fatalf("total = %+v", tot)
	}
	n.ResetStats()
	if n.TotalStats().BytesSent != 0 {
		t.Fatal("reset failed")
	}
	if (n.Stats("missing") != Stats{}) {
		t.Fatal("missing node stats should be zero")
	}
}

func TestPayloadCopied(t *testing.T) {
	loop, _, epA, _, _, gotB := twoNodeNet(t, DefaultConfig())
	buf := []byte("abc")
	epA.Send("b", buf)
	buf[0] = 'X' // sender reuses the buffer
	loop.Run(1)
	if (*gotB)[0] != "a:abc" {
		t.Fatalf("payload aliased: %v", *gotB)
	}
}

func TestEndpointClose(t *testing.T) {
	loop, n, epA, _, _, gotB := twoNodeNet(t, DefaultConfig())
	epA.Close()
	epA.Send("b", []byte("x"))
	loop.Run(1)
	if len(*gotB) != 0 {
		t.Fatal("closed endpoint sent")
	}
	if n.Alive("a") {
		t.Fatal("closed endpoint should be dead")
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	run := func() []string {
		cfg := DefaultConfig()
		cfg.LossRate = 0.3
		loop := eventloop.NewSim()
		n := New(loop, cfg)
		var got []string
		n.Attach("a", func(string, []byte) {})
		n.Attach("b", func(from string, p []byte) { got = append(got, string(p)) })
		ep := &endpoint{net: n, node: n.lookup("a")}
		for i := 0; i < 50; i++ {
			ep.Send("b", []byte{byte(i)})
		}
		loop.Run(10)
		return got
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("non-deterministic: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("non-deterministic delivery order")
		}
	}
}
