// Package simnet is a discrete-event network simulator standing in for
// the paper's Emulab testbed (§5: 10 domain routers, 100 stub nodes,
// 100 ms inter-domain and 2 ms intra-domain latency, 100 Mbps router
// and 10 Mbps stub capacities).
//
// The simulator models, per datagram: serialization delay against the
// sender's access-link capacity (with sender-side queueing), propagation
// latency from the transit-stub topology, optional uniform loss, and
// node death (datagrams to or from dead nodes vanish, as they would
// with a crashed process). Experiments are deterministic given a seed:
// all randomness is drawn from per-node streams derived from
// (Config.Seed, address), so one node's outcomes are independent of how
// other nodes' events interleave.
//
// A Net runs in one of two modes:
//
//   - Single-loop (New): every node shares one eventloop.Sim, exactly
//     the classic arrangement.
//   - Sharded (NewSharded): nodes are partitioned across the shards of
//     an eventloop.ShardedSim by domain (shard = domain mod P), each
//     node's record owned by its shard per the shard-ownership rule.
//     Every datagram — local or remote — is staged in the sending
//     shard's outbox and merged at the next epoch barrier in canonical
//     (arrival time, sender, sender sequence) order before being
//     scheduled on the destination shard. Because the coordinator's
//     lookahead equals the minimum link latency, a datagram's arrival
//     always falls at or beyond the barrier doing the scheduling, so
//     staging never delays delivery; it only fixes a deterministic
//     merge order. That order is independent of the shard count, which
//     is what makes a P-shard run bit-identical to a 1-shard run.
//
// Liveness bookkeeping differs slightly between the modes: the
// single-loop sender short-circuits datagrams to addresses already dead
// or unknown at send time (charging PacketsLost to the sender), while a
// sharded sender cannot peek at another shard's records and instead the
// destination shard discards the datagram at delivery time (charging
// the destination, or a per-shard orphan counter when the address never
// attached). A destination dying while the datagram is in flight is
// charged to the destination in both modes. Totals agree; only
// attribution and increment timing differ.
//
// Byte counters per node feed the maintenance-bandwidth figures.
package simnet

import (
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
	"sort"

	"p2/internal/eventloop"
	"p2/internal/netif"
)

// Config describes the topology and link properties. The zero-ish
// DefaultConfig reproduces the paper's uniform two-tier Emulab model;
// the WAN fields below graduate it to a measured-latency-matrix
// topology with per-link variation — every added effect is modeled
// from sender-owned state only (the sender's per-node rng stream and
// the sender's link clock), which is what keeps a sharded run
// bit-identical at every shard count.
type Config struct {
	Domains      int     // number of stub domains (paper: 10)
	IntraLatency float64 // seconds between nodes in one domain (paper: 2 ms)
	InterLatency float64 // seconds across domains (paper: 100 ms)
	StubBps      float64 // access link capacity in bytes/sec (paper: 10 Mbps)
	LossRate     float64 // uniform datagram loss probability
	Seed         int64   // rng seed; per-node streams derive from (Seed, addr)
	HeaderBytes  int     // per-datagram overhead charged (UDP+IP headers)
	MTU          int     // datagram payload budget endpoints advertise (0: netif.DefaultMTU)

	// Matrix, when non-nil, replaces the uniform two-tier latency model
	// with a measured one-way propagation matrix: Matrix[i][j] is the
	// base delay (seconds) from a node in domain i to a node in domain
	// j, and the diagonal is the intra-domain delay. The domain count
	// becomes len(Matrix), overriding Domains. Every entry must be
	// positive for sharded runs (MinLatency is the conservative
	// lookahead). TransitStubWAN builds one with transit-stub structure.
	Matrix [][]float64

	// Jitter adds per-datagram delay variation: each datagram's
	// propagation grows by U[0, Jitter) times its base latency, drawn
	// from the sender's stream. Additive-only, so the lookahead derived
	// from the base matrix stays sound.
	Jitter float64

	// QueueMean, when positive, adds a stochastic queuing delay to every
	// cross-domain datagram: an exponential draw with this mean,
	// modeling contention at the domain's border router without shared
	// queue state (which would break cross-shard determinism).
	QueueMean float64

	// TransitBps, when positive, charges cross-domain datagrams a
	// backbone serialization delay of size/TransitBps on top of the
	// access-link serialization (paper: 100 Mbps router links).
	TransitBps float64

	// Correlated loss bursts (Gilbert-Elliott), evolved per datagram on
	// the sending node's stream: in the good state a datagram enters the
	// bad state with probability BurstEnter; in the bad state it exits
	// with probability BurstExit and is otherwise lost with probability
	// BurstLoss. Zero BurstEnter disables the machinery (and consumes no
	// draws). Uniform LossRate still applies independently.
	BurstEnter float64
	BurstExit  float64
	BurstLoss  float64
}

// DefaultConfig reproduces the paper's Emulab topology.
func DefaultConfig() Config {
	return Config{
		Domains:      10,
		IntraLatency: 0.002,
		InterLatency: 0.100,
		StubBps:      10e6 / 8, // 10 Mbps
		LossRate:     0,
		Seed:         1,
		HeaderBytes:  28, // IPv4 + UDP
		MTU:          netif.DefaultMTU,
	}
}

// MinLatency returns the smallest one-way propagation delay any
// datagram can experience — the sound conservative lookahead for a
// sharded run, whatever the node-to-shard placement. Jitter and
// queuing delay are strictly additive, and serialization only pushes
// arrivals later, so the minimum base entry is a true lower bound on
// every sampled link delay.
func (c Config) MinLatency() float64 {
	if len(c.Matrix) > 0 {
		min := math.Inf(1)
		for _, row := range c.Matrix {
			for _, v := range row {
				if v < min {
					min = v
				}
			}
		}
		return min
	}
	intra := c.IntraLatency
	inter := c.InterLatency + 2*c.IntraLatency
	if c.Domains <= 1 || intra <= inter {
		return intra
	}
	return inter
}

// domains resolves the effective domain count: the matrix dimension
// when a matrix is set, Domains otherwise (floored at 1).
func (c Config) domains() int {
	if n := len(c.Matrix); n > 0 {
		return n
	}
	if c.Domains <= 0 {
		return 1
	}
	return c.Domains
}

// baseLatency is the one-way base propagation delay between two
// domains — a pure function of the Config, usable from any shard.
func (c Config) baseLatency(da, db int) float64 {
	if len(c.Matrix) > 0 {
		return c.Matrix[da][db]
	}
	if da == db {
		return c.IntraLatency
	}
	return c.InterLatency + 2*c.IntraLatency
}

// TransitStubWAN builds a measured-latency-matrix WAN topology with
// transit-stub structure (GT-ITM style): transits backbone routers,
// each serving stubsPerTransit stub domains. A datagram between stub
// domains climbs its stub's uplink, crosses the backbone between the
// two transit routers, and descends the destination's uplink; the
// seeded generator draws per-link distances so no two links match —
// the realism the uniform two-tier model lacks. The returned Config
// also carries WAN defaults for the dynamic effects: 10% jitter, 2 ms
// mean border-router queuing, 100 Mbps backbone serialization. Loss
// (uniform or bursty) is left off; enable it per experiment.
func TransitStubWAN(transits, stubsPerTransit int, seed int64) Config {
	if transits < 1 {
		transits = 1
	}
	if stubsPerTransit < 1 {
		stubsPerTransit = 1
	}
	rng := rand.New(rand.NewSource(seed))
	// Backbone: symmetric transit-to-transit distances, 10-50 ms.
	tt := make([][]float64, transits)
	for i := range tt {
		tt[i] = make([]float64, transits)
	}
	for i := 0; i < transits; i++ {
		for j := i + 1; j < transits; j++ {
			d := 0.010 + 0.040*rng.Float64()
			tt[i][j], tt[j][i] = d, d
		}
	}
	n := transits * stubsPerTransit
	// Stub uplinks: 2-12 ms to the serving transit router; intra-domain
	// delay 0.5-2 ms.
	up := make([]float64, n)
	intra := make([]float64, n)
	for s := 0; s < n; s++ {
		up[s] = 0.002 + 0.010*rng.Float64()
		intra[s] = 0.0005 + 0.0015*rng.Float64()
	}
	m := make([][]float64, n)
	for a := 0; a < n; a++ {
		m[a] = make([]float64, n)
		for b := 0; b < n; b++ {
			switch {
			case a == b:
				m[a][b] = intra[a]
			case a/stubsPerTransit == b/stubsPerTransit:
				// Sibling stubs: up, around the shared transit router, down.
				m[a][b] = up[a] + 0.001 + up[b]
			default:
				m[a][b] = up[a] + tt[a/stubsPerTransit][b/stubsPerTransit] + up[b]
			}
		}
	}
	return Config{
		Matrix:      m,
		StubBps:     10e6 / 8,
		TransitBps:  100e6 / 8,
		Jitter:      0.10,
		QueueMean:   0.002,
		Seed:        seed,
		HeaderBytes: 28,
		MTU:         netif.DefaultMTU,
	}
}

// Stats aggregates one node's traffic counters.
type Stats struct {
	BytesSent     int64
	BytesReceived int64
	PacketsSent   int64
	PacketsRecv   int64
	PacketsLost   int64
}

// Net is the simulated network. In single-loop mode all methods must
// run on the simulation goroutine. In sharded mode, Attach / Kill /
// Partition / the Stats family are coordinator-only (between epochs),
// while Send on an endpoint runs on the owning node's shard.
type Net struct {
	loop *eventloop.Sim        // single-loop mode (nil when sharded)
	ss   *eventloop.ShardedSim // sharded mode (nil when single-loop)
	cfg  Config

	shards []*shardNet
	// partitioned pairs; key "a|b" with a < b lexically. Mutated by the
	// driver only (coordinator/simulation goroutine); read at send time.
	cuts map[string]bool
	// extraLatency is added to every datagram's propagation delay — the
	// latency-spike fault knob. Mutated by the driver only; read at send
	// time. Always >= 0, so a sharded run stays sound: added delay only
	// pushes arrivals further past the barrier, never inside the epoch.
	extraLatency float64
}

// shardNet is the slice of the network owned by one shard: its node
// records and the outbox of datagrams sent during the current epoch.
// Only the owning shard touches these during an epoch; the coordinator
// drains outboxes at barriers.
type shardNet struct {
	loop     *eventloop.Sim
	nodes    map[string]*node
	outbox   []datagram
	orphaned int64 // datagrams to addresses that never attached
}

type node struct {
	addr     string
	domain   int
	shard    int
	deliver  netif.DeliverFunc
	rng      *rand.Rand // per-node stream: (Seed, addr)-derived
	sendSeq  uint64     // datagrams sent; canonical merge tie-breaker
	linkFree float64    // time the access link next becomes idle
	burstBad bool       // Gilbert-Elliott loss state (sender-side)
	dead     bool
	stats    Stats
}

// datagram is one in-flight cross-barrier message.
type datagram struct {
	arrive  float64
	from    string
	seq     uint64 // sender's sendSeq at send time
	to      string
	dstSh   int
	size    int64
	payload []byte
}

// New creates a simulated network in single-loop mode.
func New(loop *eventloop.Sim, cfg Config) *Net {
	n := newNet(cfg)
	n.loop = loop
	n.shards = []*shardNet{{loop: loop, nodes: make(map[string]*node)}}
	return n
}

// NewSharded creates a simulated network spread across the shards of
// ss. The caller must have built ss with a lookahead no larger than
// cfg.MinLatency() (Lookahead reports the right value); anything larger
// would let a datagram arrive inside the epoch that sent it, which the
// barrier exchange cannot express.
func NewSharded(ss *eventloop.ShardedSim, cfg Config) *Net {
	n := newNet(cfg)
	if la := n.cfg.MinLatency(); la <= 0 {
		panic("simnet: sharded mode requires positive link latencies")
	} else if ss.Lookahead() > la {
		panic(fmt.Sprintf("simnet: lookahead %g exceeds minimum link latency %g", ss.Lookahead(), la))
	}
	n.ss = ss
	for i := 0; i < ss.Shards(); i++ {
		n.shards = append(n.shards, &shardNet{loop: ss.Shard(i), nodes: make(map[string]*node)})
	}
	ss.AddExchanger(n)
	return n
}

func newNet(cfg Config) *Net {
	cfg.Domains = cfg.domains()
	return &Net{cfg: cfg, cuts: make(map[string]bool)}
}

// Lookahead returns the conservative epoch bound for this topology —
// pass NewShardedSim this value when building the coordinator for a
// sharded net.
func (c Config) Lookahead() float64 { return c.MinLatency() }

// Sharded reports whether the net runs across a ShardedSim.
func (n *Net) Sharded() bool { return n.ss != nil }

// DomainOf returns addr's stub domain: a pure function of the address,
// so placement is stable across runs and computable without touching
// any node records — cmd/p2sim previews node→shard placement maps from
// the Config alone.
func (c Config) DomainOf(addr string) int {
	d := c.domains()
	h := fnv.New32a()
	h.Write([]byte(addr))
	return int(h.Sum32()) % d
}

// DomainOf returns addr's stub domain (see Config.DomainOf).
func (n *Net) DomainOf(addr string) int { return n.cfg.DomainOf(addr) }

// ShardOf returns the shard owning addr: whole domains map to shards
// (shard = domain mod P) so intra-domain chatter stays shard-local.
func (n *Net) ShardOf(addr string) int {
	return n.DomainOf(addr) % len(n.shards)
}

// ShardLoop returns the event loop that owns addr — the loop a node at
// that address must schedule all its work on.
func (n *Net) ShardLoop(addr string) *eventloop.Sim {
	return n.shards[n.ShardOf(addr)].loop
}

// nodeSeed derives addr's private rng stream from the master seed.
func nodeSeed(seed int64, addr string) int64 {
	h := fnv.New64a()
	h.Write([]byte(addr))
	return seed ^ int64(h.Sum64())
}

// Attach registers addr. Domain placement hashes the address, so a
// node's location — and, sharded, its shard — is stable across runs.
// In sharded mode Attach is coordinator-only (quiescent shards).
func (n *Net) Attach(addr string, deliver netif.DeliverFunc) (netif.Endpoint, error) {
	sh := n.shards[n.ShardOf(addr)]
	if existing, ok := sh.nodes[addr]; ok && !existing.dead {
		return nil, fmt.Errorf("simnet: %q already attached", addr)
	}
	nd := &node{
		addr:    addr,
		domain:  n.DomainOf(addr),
		shard:   n.ShardOf(addr),
		deliver: deliver,
		rng:     rand.New(rand.NewSource(nodeSeed(n.cfg.Seed, addr))),
	}
	sh.nodes[addr] = nd
	return &endpoint{net: n, node: nd}, nil
}

// lookup finds addr's record, whichever shard owns it.
func (n *Net) lookup(addr string) *node {
	return n.shards[n.ShardOf(addr)].nodes[addr]
}

// Kill marks addr dead: its in-flight and future datagrams vanish.
// Used by the churn generator. Coordinator-only in sharded mode.
func (n *Net) Kill(addr string) {
	if nd := n.lookup(addr); nd != nil {
		nd.dead = true
	}
}

// Alive reports whether addr is attached and not dead.
func (n *Net) Alive(addr string) bool {
	nd := n.lookup(addr)
	return nd != nil && !nd.dead
}

// Partition cuts or heals bidirectional connectivity between a and b.
// Coordinator-only in sharded mode.
func (n *Net) Partition(a, b string, cut bool) {
	key := pairKey(a, b)
	if cut {
		n.cuts[key] = true
	} else {
		delete(n.cuts, key)
	}
}

// SetLossRate changes the uniform datagram loss probability at runtime —
// the loss-burst fault knob. Coordinator-only in sharded mode. The
// change is deterministic across shard counts: loss draws come from
// per-node rng streams and are only consumed while the rate is positive,
// so every node sees the same draw sequence whatever the placement.
func (n *Net) SetLossRate(rate float64) {
	if rate < 0 {
		rate = 0
	}
	n.cfg.LossRate = rate
}

// SetExtraLatency adds secs (clamped at 0) to every datagram's one-way
// delay — the latency-spike fault knob. Coordinator-only in sharded
// mode. Extra delay is always additive, so the conservative lookahead
// derived from the base topology stays sound.
func (n *Net) SetExtraLatency(secs float64) {
	if secs < 0 {
		secs = 0
	}
	n.extraLatency = secs
}

func pairKey(a, b string) string {
	if a > b {
		a, b = b, a
	}
	return a + "|" + b
}

// Latency returns the one-way base propagation delay between two
// addresses — a pure function of the two domains, so a sender can
// compute it without touching the destination shard's records. Jitter
// and queuing draws are added per datagram at send time.
func (n *Net) Latency(a, b string) float64 {
	return n.cfg.baseLatency(n.DomainOf(a), n.DomainOf(b))
}

// Stats returns a copy of addr's counters. Coordinator-only in sharded
// mode.
func (n *Net) Stats(addr string) Stats {
	if nd := n.lookup(addr); nd != nil {
		return nd.stats
	}
	return Stats{}
}

// ResetStats zeroes every node's counters — used between experiment
// warm-up and measurement phases. Coordinator-only in sharded mode.
func (n *Net) ResetStats() {
	for _, sh := range n.shards {
		for _, nd := range sh.nodes {
			nd.stats = Stats{}
		}
		sh.orphaned = 0
	}
}

// TotalStats sums counters across live and dead nodes. Coordinator-only
// in sharded mode.
func (n *Net) TotalStats() Stats {
	var s Stats
	for _, sh := range n.shards {
		for _, nd := range sh.nodes {
			s.BytesSent += nd.stats.BytesSent
			s.BytesReceived += nd.stats.BytesReceived
			s.PacketsSent += nd.stats.PacketsSent
			s.PacketsRecv += nd.stats.PacketsRecv
			s.PacketsLost += nd.stats.PacketsLost
		}
		s.PacketsLost += sh.orphaned
	}
	return s
}

// send models the datagram's journey; called by endpoints on the
// sender's own shard (or the single loop). Everything computed here —
// serialization queueing, latency, the loss draw — reads only
// sender-owned state, so sharded senders never reach across a shard
// boundary.
func (n *Net) send(src *node, to string, payload []byte) {
	if src.dead {
		return
	}
	size := int64(len(payload) + n.cfg.HeaderBytes)
	src.stats.BytesSent += size
	src.stats.PacketsSent++
	src.sendSeq++

	if n.cuts[pairKey(src.addr, to)] {
		src.stats.PacketsLost++
		return
	}
	if n.cfg.LossRate > 0 && src.rng.Float64() < n.cfg.LossRate {
		src.stats.PacketsLost++
		return
	}
	// Correlated loss bursts: evolve the sender's Gilbert-Elliott state,
	// then draw the loss while bad. All draws come from the sender's own
	// stream, so burst placement is independent of event interleaving.
	if n.cfg.BurstEnter > 0 {
		if src.burstBad {
			if src.rng.Float64() < n.cfg.BurstExit {
				src.burstBad = false
			}
		} else if src.rng.Float64() < n.cfg.BurstEnter {
			src.burstBad = true
		}
		if src.burstBad && src.rng.Float64() < n.cfg.BurstLoss {
			src.stats.PacketsLost++
			return
		}
	}

	sh := n.shards[src.shard]
	now := sh.loop.Now()
	// Serialization against the sender's access link, with queueing.
	txTime := 0.0
	if n.cfg.StubBps > 0 {
		txTime = float64(size) / n.cfg.StubBps
	}
	start := now
	if src.linkFree > start {
		start = src.linkFree
	}
	src.linkFree = start + txTime
	base := n.Latency(src.addr, to)
	delay := base
	// WAN effects, all additive so the base-matrix lookahead stays
	// sound, all drawn from sender-owned state so shard counts agree.
	crossDomain := src.domain != n.DomainOf(to)
	if crossDomain && n.cfg.TransitBps > 0 {
		delay += float64(size) / n.cfg.TransitBps
	}
	if n.cfg.Jitter > 0 {
		delay += base * n.cfg.Jitter * src.rng.Float64()
	}
	if crossDomain && n.cfg.QueueMean > 0 {
		delay += n.cfg.QueueMean * src.rng.ExpFloat64()
	}
	arrive := src.linkFree + delay + n.extraLatency

	if n.ss == nil {
		// Single-loop: the sender may inspect the destination directly
		// and short-circuit doomed datagrams at send time.
		dst := n.lookup(to)
		if dst == nil || dst.dead {
			src.stats.PacketsLost++
			return
		}
		from := src.addr
		sh.loop.At(arrive, func() {
			if dst.dead {
				// Died while the datagram was in flight; charge the loss
				// to the destination, exactly as the sharded path does.
				dst.stats.PacketsLost++
				return
			}
			dst.stats.BytesReceived += size
			dst.stats.PacketsRecv++
			dst.deliver(from, payload)
		})
		return
	}
	// Sharded: stage in the sending shard's outbox; the barrier exchange
	// merges and schedules it. arrive >= the next barrier because the
	// lookahead never exceeds any link latency.
	sh.outbox = append(sh.outbox, datagram{
		arrive: arrive, from: src.addr, seq: src.sendSeq,
		to: to, dstSh: n.ShardOf(to), size: size, payload: payload,
	})
}

// Exchange implements eventloop.Exchanger: at each epoch barrier the
// coordinator drains every shard's outbox, merges the datagrams in
// canonical (arrival, sender, sender-sequence) order — an ordering
// computed entirely from sender-deterministic values, hence identical
// whatever the shard count — and schedules each on its destination
// shard. Liveness is judged at delivery time by the owning shard.
func (n *Net) Exchange(now float64) {
	var all []datagram
	for _, sh := range n.shards {
		all = append(all, sh.outbox...)
		for i := range sh.outbox {
			sh.outbox[i] = datagram{}
		}
		sh.outbox = sh.outbox[:0]
	}
	if len(all) == 0 {
		return
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := &all[i], &all[j]
		if a.arrive != b.arrive {
			return a.arrive < b.arrive
		}
		if a.from != b.from {
			return a.from < b.from
		}
		return a.seq < b.seq
	})
	for i := range all {
		d := all[i]
		sh := n.shards[d.dstSh]
		sh.loop.At(d.arrive, func() {
			dst := sh.nodes[d.to]
			if dst == nil {
				sh.orphaned++
				return
			}
			if dst.dead {
				dst.stats.PacketsLost++
				return
			}
			dst.stats.BytesReceived += d.size
			dst.stats.PacketsRecv++
			dst.deliver(d.from, d.payload)
		})
	}
}

type endpoint struct {
	net  *Net
	node *node
}

func (e *endpoint) Send(to string, payload []byte) {
	// Copy the payload: senders may reuse buffers, and a real network
	// would serialize at this boundary.
	p := make([]byte, len(payload))
	copy(p, payload)
	e.net.send(e.node, to, p)
}

func (e *endpoint) LocalAddr() string { return e.node.addr }

func (e *endpoint) MTU() int {
	if e.net.cfg.MTU > 0 {
		return e.net.cfg.MTU
	}
	return netif.DefaultMTU
}

func (e *endpoint) Close() { e.node.dead = true }
