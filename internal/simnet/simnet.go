// Package simnet is a discrete-event network simulator standing in for
// the paper's Emulab testbed (§5: 10 domain routers, 100 stub nodes,
// 100 ms inter-domain and 2 ms intra-domain latency, 100 Mbps router
// and 10 Mbps stub capacities).
//
// The simulator models, per datagram: serialization delay against the
// sender's access-link capacity (with sender-side queueing), propagation
// latency from the transit-stub topology, optional uniform loss, and
// node death (datagrams to or from dead nodes vanish, as they would
// with a crashed process). It runs on the shared virtual-time event
// loop, so experiments are deterministic given a seed.
//
// Byte counters per node feed the maintenance-bandwidth figures.
package simnet

import (
	"fmt"
	"hash/fnv"
	"math/rand"

	"p2/internal/eventloop"
	"p2/internal/netif"
)

// Config describes the topology and link properties.
type Config struct {
	Domains      int     // number of stub domains (paper: 10)
	IntraLatency float64 // seconds between nodes in one domain (paper: 2 ms)
	InterLatency float64 // seconds across domains (paper: 100 ms)
	StubBps      float64 // access link capacity in bytes/sec (paper: 10 Mbps)
	LossRate     float64 // uniform datagram loss probability
	Seed         int64   // rng seed for loss and placement
	HeaderBytes  int     // per-datagram overhead charged (UDP+IP headers)
	MTU          int     // datagram payload budget endpoints advertise (0: netif.DefaultMTU)
}

// DefaultConfig reproduces the paper's Emulab topology.
func DefaultConfig() Config {
	return Config{
		Domains:      10,
		IntraLatency: 0.002,
		InterLatency: 0.100,
		StubBps:      10e6 / 8, // 10 Mbps
		LossRate:     0,
		Seed:         1,
		HeaderBytes:  28, // IPv4 + UDP
		MTU:          netif.DefaultMTU,
	}
}

// Stats aggregates one node's traffic counters.
type Stats struct {
	BytesSent     int64
	BytesReceived int64
	PacketsSent   int64
	PacketsRecv   int64
	PacketsLost   int64
}

// Net is the simulated network. All methods must run on the simulation
// goroutine (they schedule onto the shared event loop).
type Net struct {
	loop *eventloop.Sim
	cfg  Config
	rng  *rand.Rand

	nodes map[string]*node
	// partitioned pairs; key "a|b" with a < b lexically.
	cuts map[string]bool
}

type node struct {
	addr     string
	domain   int
	deliver  netif.DeliverFunc
	linkFree float64 // time the access link next becomes idle
	dead     bool
	stats    Stats
}

// New creates a simulated network on the given loop.
func New(loop *eventloop.Sim, cfg Config) *Net {
	if cfg.Domains <= 0 {
		cfg.Domains = 1
	}
	return &Net{
		loop:  loop,
		cfg:   cfg,
		rng:   rand.New(rand.NewSource(cfg.Seed)),
		nodes: make(map[string]*node),
		cuts:  make(map[string]bool),
	}
}

// Attach registers addr. Domain placement hashes the address, so a
// node's location is stable across runs.
func (n *Net) Attach(addr string, deliver netif.DeliverFunc) (netif.Endpoint, error) {
	if existing, ok := n.nodes[addr]; ok && !existing.dead {
		return nil, fmt.Errorf("simnet: %q already attached", addr)
	}
	h := fnv.New32a()
	h.Write([]byte(addr))
	nd := &node{
		addr:    addr,
		domain:  int(h.Sum32()) % n.cfg.Domains,
		deliver: deliver,
	}
	n.nodes[addr] = nd
	return &endpoint{net: n, node: nd}, nil
}

// Kill marks addr dead: its in-flight and future datagrams vanish.
// Used by the churn generator.
func (n *Net) Kill(addr string) {
	if nd, ok := n.nodes[addr]; ok {
		nd.dead = true
	}
}

// Alive reports whether addr is attached and not dead.
func (n *Net) Alive(addr string) bool {
	nd, ok := n.nodes[addr]
	return ok && !nd.dead
}

// Partition cuts or heals bidirectional connectivity between a and b.
func (n *Net) Partition(a, b string, cut bool) {
	key := pairKey(a, b)
	if cut {
		n.cuts[key] = true
	} else {
		delete(n.cuts, key)
	}
}

func pairKey(a, b string) string {
	if a > b {
		a, b = b, a
	}
	return a + "|" + b
}

// Latency returns the one-way propagation delay between two addresses.
func (n *Net) Latency(a, b string) float64 {
	na, nb := n.nodes[a], n.nodes[b]
	if na == nil || nb == nil {
		return n.cfg.InterLatency
	}
	if na.domain == nb.domain {
		return n.cfg.IntraLatency
	}
	return n.cfg.InterLatency + 2*n.cfg.IntraLatency
}

// Stats returns a copy of addr's counters.
func (n *Net) Stats(addr string) Stats {
	if nd, ok := n.nodes[addr]; ok {
		return nd.stats
	}
	return Stats{}
}

// ResetStats zeroes every node's counters — used between experiment
// warm-up and measurement phases.
func (n *Net) ResetStats() {
	for _, nd := range n.nodes {
		nd.stats = Stats{}
	}
}

// TotalStats sums counters across live and dead nodes.
func (n *Net) TotalStats() Stats {
	var s Stats
	for _, nd := range n.nodes {
		s.BytesSent += nd.stats.BytesSent
		s.BytesReceived += nd.stats.BytesReceived
		s.PacketsSent += nd.stats.PacketsSent
		s.PacketsRecv += nd.stats.PacketsRecv
		s.PacketsLost += nd.stats.PacketsLost
	}
	return s
}

// send models the datagram's journey; called by endpoints.
func (n *Net) send(src *node, to string, payload []byte) {
	if src.dead {
		return
	}
	size := int64(len(payload) + n.cfg.HeaderBytes)
	src.stats.BytesSent += size
	src.stats.PacketsSent++

	dst, ok := n.nodes[to]
	if !ok || dst.dead || n.cuts[pairKey(src.addr, to)] {
		src.stats.PacketsLost++
		return
	}
	if n.cfg.LossRate > 0 && n.rng.Float64() < n.cfg.LossRate {
		src.stats.PacketsLost++
		return
	}

	now := n.loop.Now()
	// Serialization against the sender's access link, with queueing.
	txTime := 0.0
	if n.cfg.StubBps > 0 {
		txTime = float64(size) / n.cfg.StubBps
	}
	start := now
	if src.linkFree > start {
		start = src.linkFree
	}
	src.linkFree = start + txTime
	arrive := src.linkFree + n.Latency(src.addr, to)

	from := src.addr
	n.loop.At(arrive, func() {
		if dst.dead {
			return
		}
		dst.stats.BytesReceived += size
		dst.stats.PacketsRecv++
		dst.deliver(from, payload)
	})
}

type endpoint struct {
	net  *Net
	node *node
}

func (e *endpoint) Send(to string, payload []byte) {
	// Copy the payload: senders may reuse buffers, and a real network
	// would serialize at this boundary.
	p := make([]byte, len(payload))
	copy(p, payload)
	e.net.send(e.node, to, p)
}

func (e *endpoint) LocalAddr() string { return e.node.addr }

func (e *endpoint) MTU() int {
	if e.net.cfg.MTU > 0 {
		return e.net.cfg.MTU
	}
	return netif.DefaultMTU
}

func (e *endpoint) Close() { e.node.dead = true }
