package simnet

import (
	"fmt"
	"testing"

	"p2/internal/eventloop"
)

// shardedNet builds a sharded net with P shards plus one endpoint per
// address, each address's receive trace recorded shard-locally.
func shardedNet(t *testing.T, p int, cfg Config, addrs []string) (*eventloop.ShardedSim, *Net, map[string]interface {
	Send(to string, payload []byte)
}, map[string]*[]string) {
	t.Helper()
	ss := eventloop.NewShardedSim(p, cfg.Lookahead())
	t.Cleanup(ss.Close)
	n := NewSharded(ss, cfg)
	eps := make(map[string]interface {
		Send(to string, payload []byte)
	})
	traces := make(map[string]*[]string)
	for _, a := range addrs {
		a := a
		tr := &[]string{}
		traces[a] = tr
		loop := n.ShardLoop(a)
		ep, err := n.Attach(a, func(from string, payload []byte) {
			*tr = append(*tr, fmt.Sprintf("%.9f %s %s", loop.Now(), from, payload))
		})
		if err != nil {
			t.Fatal(err)
		}
		eps[a] = ep
	}
	return ss, n, eps, traces
}

// TestShardedMatchesSingleShard is the package's core guarantee: the
// same seeded workload, run across 1 shard and across 4, produces
// bit-identical per-node delivery traces and byte counters.
func TestShardedMatchesSingleShard(t *testing.T) {
	cfg := DefaultConfig()
	cfg.LossRate = 0.2 // exercise the per-node loss streams too
	var addrs []string
	for i := 0; i < 12; i++ {
		addrs = append(addrs, fmt.Sprintf("n%d:p2", i))
	}
	run := func(p int) (map[string][]string, Stats) {
		ss, n, eps, traces := shardedNet(t, p, cfg, addrs)
		// Every node streams datagrams to two neighbors on its own
		// cadence; sends originate on the owning shard, as the
		// shard-ownership rule requires.
		for i, a := range addrs {
			i, a := i, a
			loop := n.ShardLoop(a)
			for k := 0; k < 40; k++ {
				k := k
				loop.At(float64(k)*0.017+float64(i)*0.003, func() {
					eps[a].Send(addrs[(i+1)%len(addrs)], []byte(fmt.Sprintf("m%d", k)))
					eps[a].Send(addrs[(i+5)%len(addrs)], []byte(fmt.Sprintf("x%d", k)))
				})
			}
		}
		ss.Run(3)
		got := make(map[string][]string)
		for a, tr := range traces {
			got[a] = *tr
		}
		return got, n.TotalStats()
	}
	t1, s1 := run(1)
	t4, s4 := run(4)
	if s1 != s4 {
		t.Fatalf("stats diverge:\n 1 shard: %+v\n 4 shards: %+v", s1, s4)
	}
	for a := range t1 {
		if len(t1[a]) != len(t4[a]) {
			t.Fatalf("%s: %d vs %d deliveries", a, len(t1[a]), len(t4[a]))
		}
		for i := range t1[a] {
			if t1[a][i] != t4[a][i] {
				t.Fatalf("%s delivery %d: %q vs %q", a, i, t1[a][i], t4[a][i])
			}
		}
	}
}

// TestShardedDeliveryCrossesBarrier checks a datagram between nodes on
// different shards arrives at exactly the modeled latency — staging at
// the barrier must not add delay.
func TestShardedDeliveryCrossesBarrier(t *testing.T) {
	cfg := DefaultConfig()
	cfg.StubBps = 0 // no serialization delay: arrival == send + latency
	// Find two addrs on different shards under 2 shards.
	probeSS := eventloop.NewShardedSim(2, cfg.Lookahead())
	defer probeSS.Close()
	probe := NewSharded(probeSS, cfg)
	a, b := "", ""
	for i := 0; i < 64 && b == ""; i++ {
		addr := fmt.Sprintf("p%d", i)
		if a == "" {
			a = addr
		} else if probe.ShardOf(addr) != probe.ShardOf(a) {
			b = addr
		}
	}
	if b == "" {
		t.Fatal("no cross-shard pair found")
	}
	ss, n, eps, traces := shardedNet(t, 2, cfg, []string{a, b})
	want := n.Latency(a, b)
	n.ShardLoop(a).At(0.0005, func() { eps[a].Send(b, []byte("hi")) })
	ss.Run(1)
	got := *traces[b]
	if len(got) != 1 {
		t.Fatalf("deliveries: %v", got)
	}
	var at float64
	var from, payload string
	fmt.Sscanf(got[0], "%f %s %s", &at, &from, &payload)
	if diff := at - (0.0005 + want); diff < -1e-12 || diff > 1e-12 {
		t.Fatalf("arrived at %.9f, want %.9f", at, 0.0005+want)
	}
}

// TestShardedKillAtBarrier checks coordinator-side kills: datagrams in
// flight toward the victim are counted lost at the destination, and
// totals stay consistent.
func TestShardedKillAtBarrier(t *testing.T) {
	cfg := DefaultConfig()
	addrs := []string{"a:1", "b:2"}
	ss, n, eps, traces := shardedNet(t, 2, cfg, addrs)
	n.ShardLoop("a:1").At(0.001, func() { eps["a:1"].Send("b:2", []byte("doomed")) })
	ss.RunFor(0.002) // send happens; delivery still in flight
	n.Kill("b:2")
	ss.RunFor(1)
	if got := *traces["b:2"]; len(got) != 0 {
		t.Fatalf("dead node received %v", got)
	}
	st := n.TotalStats()
	if st.PacketsSent != 1 || st.PacketsLost != 1 || st.PacketsRecv != 0 {
		t.Fatalf("stats %+v", st)
	}
}

// TestPerNodeLossStreams pins the satellite fix: a node's loss outcomes
// derive from (Seed, addr) alone, so they are identical whether or not
// another node's sends interleave with its own.
func TestPerNodeLossStreams(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Domains = 1
	cfg.LossRate = 0.5
	run := func(withNoise bool) []string {
		loop := eventloop.NewSim()
		n := New(loop, cfg)
		var got []string
		n.Attach("a", func(string, []byte) {})
		n.Attach("b", func(from string, p []byte) {
			if from == "a" {
				got = append(got, string(p))
			}
		})
		n.Attach("c", func(string, []byte) {})
		epA, epC := &endpoint{net: n, node: n.lookup("a")}, &endpoint{net: n, node: n.lookup("c")}
		for i := 0; i < 60; i++ {
			i := i
			loop.At(float64(i)*0.01, func() {
				if withNoise {
					// Interleaved traffic from another sender must not
					// perturb a's own loss pattern.
					epC.Send("b", []byte("noise"))
				}
				epA.Send("b", []byte{byte(i)})
			})
		}
		loop.Run(5)
		return got
	}
	quiet, noisy := run(false), run(true)
	if len(quiet) != len(noisy) {
		t.Fatalf("a's delivery count changed with unrelated traffic: %d vs %d", len(quiet), len(noisy))
	}
	for i := range quiet {
		if quiet[i] != noisy[i] {
			t.Fatalf("a's delivery %d changed with unrelated traffic", i)
		}
	}
}
