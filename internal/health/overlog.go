package health

// The declarative half of the condition engine: an OverLog rule library
// over the sys* tables, installable on any live node with Install. The
// Go evaluator judges conditions; these rules make the judgments (and
// the classified drop counters feeding them) reactive inside the
// language — alarms are tuples, so user programs can join on them,
// ship them to a hub, or trigger repair, the paper's introspection
// story closed into a loop.

// MonitorSource returns the health monitor rule library. Relations it
// materializes (all soft state, fading when the condition clears and
// refreshes stop):
//
//	healthAlarm(@N, Type, Reason)  — conditions currently True
//	deadPeer(@N, Dest)             — peers with PeerDead drops
//	lossyPeer(@N, Dest, Drops)     — peers with RetryExhausted drops
//	dropTotal(@N, sum<Drops>)      — node-wide abandoned-tuple total
//
// Install it next to an application program; the rules only read sys*
// tables the runtime already maintains.
func MonitorSource() string { return monitorSource }

const monitorSource = `
	materialize(healthAlarm, 30, infinity, keys(1, 2)).
	materialize(deadPeer, 30, infinity, keys(1, 2)).
	materialize(lossyPeer, 30, infinity, keys(1, 2)).
	materialize(dropTotal, infinity, 1, keys(1)).

	HM1 healthAlarm@N(N, Ty, R) :-
		sysHealth@N(N, Ty, St, R, S), St == "True".
	HM2 deadPeer@N(N, D) :-
		sysNet@N(N, D, Sn, Rc, By, Rt, W, To, B, F, DR, DC, DD, DO), DD > 0.
	HM3 lossyPeer@N(N, D, DR) :-
		sysNet@N(N, D, Sn, Rc, By, Rt, W, To, B, F, DR, DC, DD, DO), DR > 0.
	HM4 dropTotal@N(N, sum<DR>) :-
		sysNet@N(N, D, Sn, Rc, By, Rt, W, To, B, F, DR, DC, DD, DO).
`
