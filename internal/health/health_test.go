package health

import (
	"strings"
	"testing"

	"p2/internal/overlog"
	"p2/internal/planner"
	"p2/internal/transport"
)

func cond(t *testing.T, conds []Condition, ct ConditionType) Condition {
	t.Helper()
	for _, c := range conds {
		if c.Type == ct {
			return c
		}
	}
	t.Fatalf("condition %s missing from %v", ct, conds)
	return Condition{}
}

func TestConditionsStartUnknown(t *testing.T) {
	e := NewEvaluator(Config{}, 3.0)
	if len(e.Conditions()) != len(ConditionTypes()) {
		t.Fatalf("catalogue size %d", len(e.Conditions()))
	}
	for _, c := range e.Conditions() {
		if c.Status != StatusUnknown || c.LastTransition != 3.0 {
			t.Fatalf("initial condition %+v", c)
		}
	}
}

func TestPartitionedRaisesAndDecays(t *testing.T) {
	e := NewEvaluator(Config{SuspectWindow: 10}, 0)

	// Quiet sample: nothing suspect.
	conds := e.Eval(Sample{Now: 1, Peers: []PeerSample{{Addr: "b"}}})
	if c := cond(t, conds, Partitioned); c.Status != StatusFalse {
		t.Fatalf("quiet overlay Partitioned = %+v", c)
	}

	// Failure drops toward b appear: Partitioned turns True, and the
	// transition is stamped at this eval.
	drops := transport.DropCounts{}
	drops[transport.RetryExhausted] = 3
	conds = e.Eval(Sample{Now: 5, Peers: []PeerSample{{Addr: "b", Drops: drops}}})
	c := cond(t, conds, Partitioned)
	if c.Status != StatusTrue || c.LastTransition != 5 {
		t.Fatalf("Partitioned after drops = %+v", c)
	}
	if !strings.Contains(c.Reason, "b") {
		t.Fatalf("reason does not name the peer: %q", c.Reason)
	}
	if rb := cond(t, conds, RetryBudgetExhausted); rb.Status != StatusTrue {
		t.Fatalf("RetryBudgetExhausted = %+v", rb)
	}
	if cv := cond(t, conds, Converged); cv.Status != StatusFalse {
		t.Fatalf("Converged during partition = %+v", cv)
	}

	// Counters stop advancing: within the window the peer stays
	// suspect, past it the condition decays back to False.
	conds = e.Eval(Sample{Now: 12, Peers: []PeerSample{{Addr: "b", Drops: drops}}})
	if c := cond(t, conds, Partitioned); c.Status != StatusTrue {
		t.Fatalf("still inside suspect window: %+v", c)
	}
	conds = e.Eval(Sample{Now: 16, Peers: []PeerSample{{Addr: "b", Drops: drops}}})
	c = cond(t, conds, Partitioned)
	if c.Status != StatusFalse || c.LastTransition != 16 {
		t.Fatalf("Partitioned after decay = %+v", c)
	}
	if rb := cond(t, conds, RetryBudgetExhausted); rb.Status != StatusFalse {
		t.Fatalf("RetryBudgetExhausted after decay = %+v", rb)
	}
}

func TestLastTransitionStableWithoutChange(t *testing.T) {
	e := NewEvaluator(Config{}, 0)
	e.Eval(Sample{Now: 1})
	first := cond(t, e.Conditions(), Partitioned).LastTransition
	e.Eval(Sample{Now: 2})
	e.Eval(Sample{Now: 3})
	if got := cond(t, e.Conditions(), Partitioned).LastTransition; got != first {
		t.Fatalf("LastTransition moved without a status change: %v -> %v", first, got)
	}
}

func TestChurnStormAndConvergence(t *testing.T) {
	e := NewEvaluator(Config{ChurnRate: 10, ConvergeWindow: 5}, 0)

	// First sample: churn rate unjudgeable, ChurnStorm stays Unknown.
	conds := e.Eval(Sample{Now: 1, Churn: 100})
	if c := cond(t, conds, ChurnStorm); c.Status != StatusUnknown {
		t.Fatalf("first-sample ChurnStorm = %+v", c)
	}

	// 200 deltas over 1 s >> 10/s: storm.
	conds = e.Eval(Sample{Now: 2, Churn: 300})
	if c := cond(t, conds, ChurnStorm); c.Status != StatusTrue {
		t.Fatalf("ChurnStorm under load = %+v", c)
	}
	if c := cond(t, conds, Converged); c.Status == StatusTrue {
		t.Fatalf("Converged during storm = %+v", c)
	}

	// Churn stops: storm clears immediately, Converged turns True only
	// after the tables have been quiet a full ConvergeWindow.
	conds = e.Eval(Sample{Now: 4, Churn: 300})
	if c := cond(t, conds, ChurnStorm); c.Status != StatusFalse {
		t.Fatalf("ChurnStorm after quiet = %+v", c)
	}
	if c := cond(t, conds, Converged); c.Status != StatusFalse {
		t.Fatalf("Converged before window = %+v", c)
	}
	conds = e.Eval(Sample{Now: 8, Churn: 300})
	c := cond(t, conds, Converged)
	if c.Status != StatusTrue || c.LastTransition != 8 {
		t.Fatalf("Converged after quiet window = %+v", c)
	}
}

func TestBacklogSaturated(t *testing.T) {
	e := NewEvaluator(Config{BacklogFraction: 0.5}, 0)
	conds := e.Eval(Sample{Now: 1, QueueCap: 100, Peers: []PeerSample{
		{Addr: "b", Backlog: 10}, {Addr: "c", Backlog: 60},
	}})
	c := cond(t, conds, BacklogSaturated)
	if c.Status != StatusTrue || !strings.Contains(c.Reason, "c") {
		t.Fatalf("BacklogSaturated = %+v", c)
	}
	conds = e.Eval(Sample{Now: 2, QueueCap: 100, Peers: []PeerSample{
		{Addr: "b", Backlog: 10}, {Addr: "c", Backlog: 5},
	}})
	if c := cond(t, conds, BacklogSaturated); c.Status != StatusFalse {
		t.Fatalf("drained backlog = %+v", c)
	}
}

func TestEvalDeterministic(t *testing.T) {
	run := func() []Condition {
		e := NewEvaluator(Config{}, 0)
		drops := transport.DropCounts{}
		drops[transport.PeerDead] = 2
		e.Eval(Sample{Now: 1, Churn: 10, Peers: []PeerSample{{Addr: "b"}}})
		e.Eval(Sample{Now: 2, Churn: 50, Peers: []PeerSample{{Addr: "b", Drops: drops}}})
		e.Eval(Sample{Now: 9, Churn: 50, Peers: []PeerSample{{Addr: "b", Drops: drops}}})
		out := make([]Condition, len(e.Conditions()))
		copy(out, e.Conditions())
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run divergence at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestRollup(t *testing.T) {
	mk := func(addr string, part Status, partAt float64, conv Status) NodeHealth {
		return NodeHealth{Addr: addr, Conditions: []Condition{
			{Type: Converged, Status: conv, LastTransition: 1},
			{Type: Partitioned, Status: part, Reason: "peer x unreachable", LastTransition: partAt},
			{Type: ChurnStorm, Status: StatusFalse},
			{Type: RetryBudgetExhausted, Status: StatusFalse},
			{Type: BacklogSaturated, Status: StatusFalse},
		}}
	}

	roll := Rollup([]NodeHealth{
		mk("a", StatusFalse, 2, StatusTrue),
		mk("b", StatusTrue, 7, StatusFalse),
	})
	p := cond(t, roll, Partitioned)
	if p.Status != StatusTrue || p.LastTransition != 7 || !strings.Contains(p.Reason, "b:") {
		t.Fatalf("rollup Partitioned = %+v", p)
	}
	if c := cond(t, roll, Converged); c.Status != StatusFalse {
		t.Fatalf("rollup Converged = %+v", c)
	}
	if c := cond(t, roll, ChurnStorm); c.Status != StatusFalse {
		t.Fatalf("rollup ChurnStorm = %+v", c)
	}

	healthy := Rollup([]NodeHealth{
		mk("a", StatusFalse, 2, StatusTrue),
		mk("b", StatusFalse, 3, StatusTrue),
	})
	if c := cond(t, healthy, Converged); c.Status != StatusTrue {
		t.Fatalf("all-converged rollup = %+v", c)
	}
	if c := cond(t, healthy, Partitioned); c.Status != StatusFalse {
		t.Fatalf("healthy rollup Partitioned = %+v", c)
	}

	if c := cond(t, Rollup(nil), Partitioned); c.Status != StatusUnknown {
		t.Fatalf("empty rollup = %+v", c)
	}
}

// TestMonitorSourceCompiles plans the rule library against the system
// schemas — the guarantee that Install(MonitorSource()) succeeds on any
// node.
func TestMonitorSourceCompiles(t *testing.T) {
	prog, err := overlog.Parse(MonitorSource())
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if _, err := planner.Compile(prog, nil); err != nil {
		t.Fatalf("plan: %v", err)
	}
}
