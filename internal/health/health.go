// Package health is the operability subsystem: it turns the runtime's
// introspection counters (the sys* tables, the transport's classified
// drop counters) into typed health conditions with Kubernetes-style
// status/reason/lastTransition semantics, and renders them for
// operators — as sysHealth tuples queryable from OverLog, as a
// structured HealthSnapshot, and as Prometheus text metrics.
//
// The evaluator is deliberately deterministic: it consumes only the
// node's own counters and the node's clock, both of which are
// bit-identical across simulator shard counts, so a sharded replay
// produces byte-for-byte the same conditions as a serial one.
package health

import (
	"fmt"
	"sort"
	"strings"

	"p2/internal/transport"
)

// ConditionType names one evaluated condition.
type ConditionType string

// The condition catalogue. Converged is a "good" condition (True is
// healthy); the others assert a problem (True is unhealthy).
const (
	// Converged: the node's application tables have stopped churning
	// and every peer is acknowledging — the overlay has settled.
	Converged ConditionType = "Converged"
	// Partitioned: at least one peer has abandoned tuples (retry budget
	// exhausted or presumed dead) within the suspect window.
	Partitioned ConditionType = "Partitioned"
	// ChurnStorm: application-table delta rate exceeds the configured
	// threshold — membership or state is thrashing.
	ChurnStorm ConditionType = "ChurnStorm"
	// RetryBudgetExhausted: tuples were abandoned after their full
	// retry budget within the suspect window.
	RetryBudgetExhausted ConditionType = "RetryBudgetExhausted"
	// BacklogSaturated: some peer's send backlog is at or past the
	// saturation threshold — the node derives faster than it can ship.
	BacklogSaturated ConditionType = "BacklogSaturated"
	// KVUnderReplicated: the node holds keys but its reachable replica
	// fan-out (itself plus live successors) is below the key-value
	// service's write quorum — new writes routed here cannot reach
	// quorum and held keys are one failure from loss. Unknown on nodes
	// not running the key-value service.
	KVUnderReplicated ConditionType = "KVUnderReplicated"
)

// ConditionTypes returns the catalogue in its canonical (evaluation and
// rendering) order.
func ConditionTypes() []ConditionType {
	return []ConditionType{
		Converged, Partitioned, ChurnStorm, RetryBudgetExhausted, BacklogSaturated,
		KVUnderReplicated,
	}
}

// Status is a condition's ternary state.
type Status string

const (
	StatusUnknown Status = "Unknown" // not enough samples to judge
	StatusTrue    Status = "True"
	StatusFalse   Status = "False"
)

// Gauge renders the status as the Prometheus p2_condition value:
// True=1, False=0, Unknown=-1.
func (s Status) Gauge() float64 {
	switch s {
	case StatusTrue:
		return 1
	case StatusFalse:
		return 0
	}
	return -1
}

// Condition is one evaluated condition: what it asserts, whether it
// currently holds, why, and when it last flipped.
type Condition struct {
	Type           ConditionType
	Status         Status
	Reason         string  // current evidence, updated every evaluation
	LastTransition float64 // node time (seconds) of the last Status change
}

// Config holds the evaluator's thresholds. The zero value resolves to
// the defaults below.
type Config struct {
	// SuspectWindow is how long (seconds) a peer stays suspect after
	// its last abandoned tuple, and how long RetryBudgetExhausted
	// stays raised after the last budget-exhausted drop. Default 10.
	SuspectWindow float64
	// ConvergeWindow is how long (seconds) the application tables must
	// stay delta-free before Converged turns True. Default 5.
	ConvergeWindow float64
	// ChurnRate is the application-table delta rate (inserts+deletes
	// per second, measured between evaluations) above which ChurnStorm
	// raises. Default 50.
	ChurnRate float64
	// BacklogFraction of the transport's QueueCap at which a peer's
	// backlog counts as saturated. Default 0.5.
	BacklogFraction float64
	// BacklogFloor is the absolute backlog that saturates when
	// QueueCap is unbounded (0). Default 256.
	BacklogFloor int
}

// DefaultConfig returns the default thresholds.
func DefaultConfig() Config {
	return Config{
		SuspectWindow:   10,
		ConvergeWindow:  5,
		ChurnRate:       50,
		BacklogFraction: 0.5,
		BacklogFloor:    256,
	}
}

// withDefaults resolves zero fields to their defaults.
func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.SuspectWindow <= 0 {
		c.SuspectWindow = d.SuspectWindow
	}
	if c.ConvergeWindow <= 0 {
		c.ConvergeWindow = d.ConvergeWindow
	}
	if c.ChurnRate <= 0 {
		c.ChurnRate = d.ChurnRate
	}
	if c.BacklogFraction <= 0 {
		c.BacklogFraction = d.BacklogFraction
	}
	if c.BacklogFloor <= 0 {
		c.BacklogFloor = d.BacklogFloor
	}
	return c
}

// PeerSample is one peer's counters at sampling time.
type PeerSample struct {
	Addr    string
	Backlog int // tuples queued behind the congestion window
	Drops   transport.DropCounts
}

// KVSample is the key-value service's state at sampling time —
// mirrored from introspect.KVStat (rather than importing it) to keep
// this package's dependencies flat, the same pattern as HealthStat on
// the introspect side.
type KVSample struct {
	Keys     int   // keys held in kvStore
	Replicas int64 // configured replica factor (0 until derived)
	Quorum   int64 // configured write quorum
	Succs    int   // live distinct successors — reachable replica fan-out
}

// Sample is everything one evaluation consumes. The engine builds it
// from the same counters that feed the sys* tables, on the node's
// event loop.
type Sample struct {
	Now      float64 // node clock, seconds
	Churn    int64   // cumulative inserts+deletes across application tables
	QueueCap int     // transport per-destination backlog bound (0 = unbounded)
	Peers    []PeerSample
	KV       *KVSample // nil on nodes without the key-value service
}

// peerState is the evaluator's per-peer memory: the last observed
// failure-drop total and when it last advanced.
type peerState struct {
	lastFail   int64
	lastFailAt float64
	seen       bool // lastFailAt is meaningful
}

// Evaluator computes the condition catalogue from successive Samples.
// It is single-goroutine state, owned by the node's event loop.
type Evaluator struct {
	cfg   Config
	conds []Condition // canonical order, ConditionTypes()

	evals       int64
	lastEvalAt  float64
	lastChurn   int64
	lastChurnAt float64 // when Churn last advanced
	peers       map[string]*peerState
	lastFailTot int64
	lastFailAt  float64 // when any retry-budget drop was last observed
	failSeen    bool
}

// NewEvaluator builds an evaluator whose conditions start Unknown with
// LastTransition = now.
func NewEvaluator(cfg Config, now float64) *Evaluator {
	e := &Evaluator{
		cfg:         cfg.withDefaults(),
		peers:       make(map[string]*peerState),
		lastChurnAt: now,
	}
	for _, ct := range ConditionTypes() {
		e.conds = append(e.conds, Condition{
			Type: ct, Status: StatusUnknown, Reason: "no samples yet", LastTransition: now,
		})
	}
	return e
}

// Conditions returns the most recently evaluated catalogue, in
// canonical order. The slice is shared; callers must not mutate it.
func (e *Evaluator) Conditions() []Condition { return e.conds }

// set transitions (or just re-reasons) one condition.
func (e *Evaluator) set(ct ConditionType, status Status, reason string, now float64) {
	for i := range e.conds {
		if e.conds[i].Type != ct {
			continue
		}
		if e.conds[i].Status != status {
			e.conds[i].Status = status
			e.conds[i].LastTransition = now
		}
		e.conds[i].Reason = reason
		return
	}
}

// Eval folds one sample into the evaluator and returns the updated
// catalogue (the same slice Conditions returns).
func (e *Evaluator) Eval(s Sample) []Condition {
	now := s.Now
	cfg := e.cfg

	// Track per-peer failure drops (RetryExhausted + PeerDead): a peer
	// is suspect while its failure counter advanced within the suspect
	// window. Healing is decay — once traffic stops being abandoned,
	// the suspicion ages out.
	var suspects []string
	var failTot int64
	for _, p := range s.Peers {
		fails := p.Drops[transport.RetryExhausted] + p.Drops[transport.PeerDead]
		failTot += fails
		ps := e.peers[p.Addr]
		if ps == nil {
			ps = &peerState{}
			e.peers[p.Addr] = ps
		}
		if fails > ps.lastFail {
			ps.lastFail, ps.lastFailAt, ps.seen = fails, now, true
		}
		if ps.seen && now-ps.lastFailAt < cfg.SuspectWindow {
			suspects = append(suspects, p.Addr)
		}
	}
	sort.Strings(suspects)

	// Partitioned.
	if len(suspects) > 0 {
		e.set(Partitioned, StatusTrue,
			fmt.Sprintf("%d peer(s) unreachable: %s", len(suspects), peerList(suspects)), now)
	} else {
		e.set(Partitioned, StatusFalse, "all peers acknowledging", now)
	}

	// RetryBudgetExhausted: raised while abandoned-tuple counters are
	// still advancing (same decay window as Partitioned).
	if failTot > e.lastFailTot {
		e.lastFailTot, e.lastFailAt, e.failSeen = failTot, now, true
	}
	if e.failSeen && now-e.lastFailAt < cfg.SuspectWindow {
		e.set(RetryBudgetExhausted, StatusTrue,
			fmt.Sprintf("%d tuple(s) abandoned after full retry budget", e.lastFailTot), now)
	} else {
		e.set(RetryBudgetExhausted, StatusFalse, "no recent retry-budget drops", now)
	}

	// BacklogSaturated: worst peer against the threshold.
	thresh := cfg.BacklogFloor
	if s.QueueCap > 0 {
		thresh = int(cfg.BacklogFraction * float64(s.QueueCap))
		if thresh < 1 {
			thresh = 1
		}
	}
	worstAddr, worstBacklog := "", 0
	for _, p := range s.Peers {
		if p.Backlog > worstBacklog {
			worstAddr, worstBacklog = p.Addr, p.Backlog
		}
	}
	if worstBacklog >= thresh {
		e.set(BacklogSaturated, StatusTrue,
			fmt.Sprintf("backlog toward %s is %d (threshold %d)", worstAddr, worstBacklog, thresh), now)
	} else {
		e.set(BacklogSaturated, StatusFalse,
			fmt.Sprintf("worst backlog %d below threshold %d", worstBacklog, thresh), now)
	}

	// KVUnderReplicated: the key-value service's replica fan-out (the
	// node plus its live successors) against the write quorum. Pure
	// function of the sample, so sharded and serial runs agree.
	switch {
	case s.KV == nil:
		e.set(KVUnderReplicated, StatusUnknown, "kv service not running", now)
	case s.KV.Replicas == 0:
		e.set(KVUnderReplicated, StatusUnknown, "replication parameters not yet derived", now)
	case s.KV.Keys > 0 && int64(s.KV.Succs+1) < s.KV.Quorum:
		e.set(KVUnderReplicated, StatusTrue,
			fmt.Sprintf("%d key(s) held with replica fan-out %d below quorum %d",
				s.KV.Keys, s.KV.Succs+1, s.KV.Quorum), now)
	default:
		e.set(KVUnderReplicated, StatusFalse,
			fmt.Sprintf("replica fan-out %d of %d meets quorum %d",
				s.KV.Succs+1, s.KV.Replicas, s.KV.Quorum), now)
	}

	// Churn tracking: rate between evaluations, and the time the
	// application tables last produced a delta.
	if s.Churn > e.lastChurn {
		e.lastChurnAt = now
	}
	if e.evals > 0 && now > e.lastEvalAt {
		rate := float64(s.Churn-e.lastChurn) / (now - e.lastEvalAt)
		if rate > cfg.ChurnRate {
			e.set(ChurnStorm, StatusTrue,
				fmt.Sprintf("%.0f table deltas/s exceeds %.0f", rate, cfg.ChurnRate), now)
		} else {
			e.set(ChurnStorm, StatusFalse,
				fmt.Sprintf("%.0f table deltas/s within %.0f", rate, cfg.ChurnRate), now)
		}
	}
	e.lastChurn = s.Churn

	// Converged: tables delta-free for the converge window and no peer
	// suspect. Unknown until the node has been sampled that long.
	quiet := now - e.lastChurnAt
	switch {
	case quiet >= cfg.ConvergeWindow && len(suspects) == 0:
		e.set(Converged, StatusTrue,
			fmt.Sprintf("no table deltas for %.1fs", quiet), now)
	case e.evals == 0 && quiet < cfg.ConvergeWindow:
		// Still warming up: leave Unknown rather than flapping False.
	case len(suspects) > 0:
		e.set(Converged, StatusFalse,
			fmt.Sprintf("%d peer(s) unreachable", len(suspects)), now)
	default:
		e.set(Converged, StatusFalse, "tables still churning", now)
	}

	e.evals++
	e.lastEvalAt = now
	return e.conds
}

// peerList renders up to three suspect addresses.
func peerList(addrs []string) string {
	if len(addrs) > 3 {
		return strings.Join(addrs[:3], ",") + ",…"
	}
	return strings.Join(addrs, ",")
}

// NodeHealth is one node's evaluated catalogue, as HealthSnapshot
// reports it.
type NodeHealth struct {
	Addr       string
	Conditions []Condition
}

// Snapshot is a whole-deployment health capture: every live node's
// catalogue (sorted by address) plus the overlay-wide rollup. On a
// simulated deployment it is a pure function of (seed, program, time),
// identical at every shard count.
type Snapshot struct {
	Time    float64 // deployment clock at capture
	Nodes   []NodeHealth
	Overlay []Condition
}

// Rollup folds per-node conditions into overlay-wide ones. For problem
// conditions (everything but Converged) the overlay condition is True
// if any node raises it; Converged is True only when every node has
// converged. LastTransition is the latest transition among the nodes
// that determine the status, so identical inputs give identical
// rollups — the function is stateless and deterministic.
func Rollup(nodes []NodeHealth) []Condition {
	out := make([]Condition, 0, len(ConditionTypes()))
	for _, ct := range ConditionTypes() {
		var nTrue, nFalse, nUnknown int
		var sinceAll, sinceDecisive float64
		var firstReason string
		for _, nh := range nodes {
			for _, c := range nh.Conditions {
				if c.Type != ct {
					continue
				}
				// A node is decisive when its status alone forces the
				// rollup's: True for problem conditions, False for
				// Converged. The rollup's Since is the latest decisive
				// transition, or the latest transition overall when the
				// status is unanimous.
				decisive := false
				switch c.Status {
				case StatusTrue:
					nTrue++
					decisive = ct != Converged
				case StatusFalse:
					nFalse++
					decisive = ct == Converged
				default:
					nUnknown++
				}
				if c.LastTransition > sinceAll {
					sinceAll = c.LastTransition
				}
				if decisive {
					if firstReason == "" {
						firstReason = fmt.Sprintf("%s: %s", nh.Addr, c.Reason)
					}
					if c.LastTransition > sinceDecisive {
						sinceDecisive = c.LastTransition
					}
				}
			}
		}
		since := sinceAll
		if sinceDecisive > 0 {
			since = sinceDecisive
		}
		c := Condition{Type: ct}
		total := nTrue + nFalse + nUnknown
		switch {
		case total == 0:
			c.Status, c.Reason = StatusUnknown, "no nodes"
		case ct == Converged:
			switch {
			case nFalse > 0:
				c.Status = StatusFalse
				c.Reason = fmt.Sprintf("%d/%d node(s) not converged; %s", nFalse, total, firstReason)
			case nUnknown > 0:
				c.Status, c.Reason = StatusUnknown, fmt.Sprintf("%d/%d node(s) still warming up", nUnknown, total)
			default:
				c.Status, c.Reason = StatusTrue, fmt.Sprintf("all %d node(s) converged", total)
			}
		default:
			switch {
			case nTrue > 0:
				c.Status = StatusTrue
				c.Reason = fmt.Sprintf("%d/%d node(s) report %s; %s", nTrue, total, ct, firstReason)
			case nUnknown == total:
				c.Status, c.Reason = StatusUnknown, "no samples yet"
			default:
				c.Status, c.Reason = StatusFalse, fmt.Sprintf("no node reports %s", ct)
			}
		}
		if c.Status != StatusUnknown {
			c.LastTransition = since
		}
		out = append(out, c)
	}
	return out
}
