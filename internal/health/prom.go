package health

// Prometheus text-exposition rendering (stdlib only). The format is
// simple enough that hand-rolling it beats a client-library dependency:
// one HELP/TYPE header per family, then one series line per node (and
// per cause/type label). Families are always emitted — including
// zero-valued drop causes — so scrapers and alert rules can rely on
// series existing before the first failure.

import (
	"fmt"
	"io"
	"strconv"
	"strings"

	"p2/internal/transport"
)

// NodeMetrics is one node's gauge/counter values at scrape time, as the
// deployment layer collects them from the node's introspection
// counters.
type NodeMetrics struct {
	Addr        string
	UptimeS     float64
	Tuples      int64 // live rows across application tables
	RuleFires   int64 // cumulative strand executions
	Sent        int64 // tuples put on the wire (retransmissions included)
	Recvd       int64 // tuples delivered upward (post-dedup)
	Retransmits int64
	Cwnd        float64 // congestion window summed across peers, datagrams
	Backlog     int64   // tuples queued behind congestion windows, all peers
	Drops       transport.DropCounts
	Conditions  []Condition
}

// family is one metric family's header plus a per-node value.
type family struct {
	name, kind, help string
	value            func(*NodeMetrics) float64
}

var scalarFamilies = []family{
	{"p2_uptime_seconds", "gauge", "Node uptime in seconds (virtual time under simulation).",
		func(m *NodeMetrics) float64 { return m.UptimeS }},
	{"p2_tuples", "gauge", "Live tuples across the node's application tables.",
		func(m *NodeMetrics) float64 { return float64(m.Tuples) }},
	{"p2_rule_fires_total", "counter", "Cumulative rule strand executions.",
		func(m *NodeMetrics) float64 { return float64(m.RuleFires) }},
	{"p2_tuples_sent_total", "counter", "Tuples transmitted, retransmissions included.",
		func(m *NodeMetrics) float64 { return float64(m.Sent) }},
	{"p2_tuples_received_total", "counter", "Tuples delivered upward after deduplication.",
		func(m *NodeMetrics) float64 { return float64(m.Recvd) }},
	{"p2_retransmits_total", "counter", "Tuple retransmissions.",
		func(m *NodeMetrics) float64 { return float64(m.Retransmits) }},
	{"p2_cwnd", "gauge", "Congestion window summed across peers, datagrams.",
		func(m *NodeMetrics) float64 { return m.Cwnd }},
	{"p2_backlog", "gauge", "Tuples queued behind congestion windows, all peers.",
		func(m *NodeMetrics) float64 { return float64(m.Backlog) }},
}

// WriteMetrics renders the nodes in Prometheus text exposition format.
// Callers pass nodes in a deterministic order (the deployment sorts by
// address); the renderer preserves it.
func WriteMetrics(w io.Writer, nodes []NodeMetrics) error {
	var b strings.Builder
	for _, f := range scalarFamilies {
		header(&b, f.name, f.kind, f.help)
		for i := range nodes {
			fmt.Fprintf(&b, "%s{node=\"%s\"} %s\n",
				f.name, escapeLabel(nodes[i].Addr), fnum(f.value(&nodes[i])))
		}
	}

	header(&b, "p2_drops_total", "counter",
		"Tuples abandoned by the transport, classified by cause.")
	for i := range nodes {
		for _, cause := range transport.DropCauses() {
			fmt.Fprintf(&b, "p2_drops_total{node=\"%s\",cause=\"%s\"} %d\n",
				escapeLabel(nodes[i].Addr), cause, nodes[i].Drops[cause])
		}
	}

	header(&b, "p2_condition", "gauge",
		"Health condition status: 1 true, 0 false, -1 unknown.")
	for i := range nodes {
		for _, c := range nodes[i].Conditions {
			fmt.Fprintf(&b, "p2_condition{node=\"%s\",type=\"%s\"} %s\n",
				escapeLabel(nodes[i].Addr), c.Type, fnum(c.Status.Gauge()))
		}
	}

	_, err := io.WriteString(w, b.String())
	return err
}

func header(b *strings.Builder, name, kind, help string) {
	fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, kind)
}

// fnum renders a float the way Prometheus parsers expect (no exponent
// surprises for the integral values that dominate here).
func fnum(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeLabel escapes a label value per the exposition format
// (backslash, double-quote, newline). The plain host:port addresses
// used here never need it, but addresses are operator input.
func escapeLabel(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	r := strings.NewReplacer("\\", `\\`, "\"", `\"`, "\n", `\n`)
	return r.Replace(s)
}
