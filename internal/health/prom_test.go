package health

import (
	"strings"
	"testing"

	"p2/internal/transport"
)

func sampleMetrics() []NodeMetrics {
	drops := transport.DropCounts{}
	drops[transport.RetryExhausted] = 4
	return []NodeMetrics{
		{
			Addr: "127.0.0.1:9001", UptimeS: 12.5, Tuples: 40, RuleFires: 900,
			Sent: 100, Recvd: 95, Retransmits: 3, Cwnd: 6.5, Backlog: 2,
			Drops: drops,
			Conditions: []Condition{
				{Type: Converged, Status: StatusTrue},
				{Type: Partitioned, Status: StatusFalse},
				{Type: ChurnStorm, Status: StatusUnknown},
			},
		},
		{Addr: "127.0.0.1:9002", Conditions: []Condition{{Type: Partitioned, Status: StatusTrue}}},
	}
}

func TestWriteMetricsFormat(t *testing.T) {
	var b strings.Builder
	if err := WriteMetrics(&b, sampleMetrics()); err != nil {
		t.Fatal(err)
	}
	out := b.String()

	for _, want := range []string{
		"# HELP p2_uptime_seconds Node uptime in seconds (virtual time under simulation).",
		"# TYPE p2_uptime_seconds gauge",
		`p2_uptime_seconds{node="127.0.0.1:9001"} 12.5`,
		"# TYPE p2_drops_total counter",
		`p2_drops_total{node="127.0.0.1:9001",cause="RetryExhausted"} 4`,
		`p2_drops_total{node="127.0.0.1:9001",cause="PeerDead"} 0`,
		`p2_drops_total{node="127.0.0.1:9002",cause="SessionClosed"} 0`,
		"# TYPE p2_condition gauge",
		`p2_condition{node="127.0.0.1:9001",type="Converged"} 1`,
		`p2_condition{node="127.0.0.1:9001",type="Partitioned"} 0`,
		`p2_condition{node="127.0.0.1:9001",type="ChurnStorm"} -1`,
		`p2_condition{node="127.0.0.1:9002",type="Partitioned"} 1`,
		`p2_rule_fires_total{node="127.0.0.1:9001"} 900`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("output missing %q", want)
		}
	}

	// Structural validity: every non-comment line is `name{labels} value`
	// or `name value`; every series' family has HELP and TYPE above it.
	assertPrometheusText(t, out)
}

// assertPrometheusText is a minimal exposition-format parser shared
// with the smoke test's expectations: HELP/TYPE comments, series lines,
// balanced quotes, numeric values.
func assertPrometheusText(t *testing.T, out string) {
	t.Helper()
	typed := map[string]bool{}
	for ln, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if line == "" {
			t.Fatalf("line %d: empty", ln+1)
		}
		if strings.HasPrefix(line, "# HELP ") {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			f := strings.Fields(line)
			if len(f) != 4 || (f[3] != "gauge" && f[3] != "counter") {
				t.Fatalf("line %d: bad TYPE %q", ln+1, line)
			}
			typed[f[2]] = true
			continue
		}
		name, rest, val := line, "", ""
		if i := strings.IndexByte(line, '{'); i >= 0 {
			name = line[:i]
			j := strings.LastIndexByte(line, '}')
			if j < i {
				t.Fatalf("line %d: unbalanced braces %q", ln+1, line)
			}
			rest, val = line[i+1:j], strings.TrimSpace(line[j+1:])
			if strings.Count(rest, `"`)%2 != 0 {
				t.Fatalf("line %d: unbalanced quotes %q", ln+1, line)
			}
		} else {
			f := strings.Fields(line)
			if len(f) != 2 {
				t.Fatalf("line %d: bad series %q", ln+1, line)
			}
			name, val = f[0], f[1]
		}
		if !typed[name] {
			t.Fatalf("line %d: series %q before its TYPE", ln+1, name)
		}
		if val == "" || strings.ContainsAny(val, " \t") {
			t.Fatalf("line %d: bad value %q", ln+1, val)
		}
	}
}

func TestEscapeLabel(t *testing.T) {
	if got := escapeLabel("plain:9001"); got != "plain:9001" {
		t.Fatalf("plain = %q", got)
	}
	if got := escapeLabel("a\"b\\c\nd"); got != `a\"b\\c\nd` {
		t.Fatalf("escaped = %q", got)
	}
}
