package scenario

import "testing"

// TestOracleUnmovedByInternerState pins the scenario oracle against the
// one global the interner introduced: process-wide mutable state that
// survives between runs. The first run populates (and possibly
// flushes) intern shards; a bit-identical rerun of the same script —
// same seed, same shard count — must produce a bit-identical Result,
// or interning has leaked into observable behavior. Chord is the spec
// under test because its replace step re-interns node addresses.
func TestOracleUnmovedByInternerState(t *testing.T) {
	sc := Script{
		Seed: 31, Spec: Chord, Nodes: 3, Warmup: 6, Settle: 2,
		Steps: []Step{
			{Op: OpLookups, Node: 0, Count: 2},
			{Op: OpWait, Dur: 2},
			{Op: OpReplace, Node: 1}, // node restarts at the same (interned) address
			{Op: OpWait, Dur: 2},
			{Op: OpLookups, Node: 2, Count: 1},
		},
	}
	first, err := RunSim(sc, 1)
	if err != nil {
		t.Fatalf("first run: %v\n%s", err, sc)
	}
	second, err := RunSim(sc, 1)
	if err != nil {
		t.Fatalf("second run: %v\n%s", err, sc)
	}
	if dv := DiffBitIdentical(first, second); dv != nil {
		t.Fatalf("interner state carried between runs moved the oracle:\n%s\n%v", sc, dv)
	}
	if first.Events == 0 {
		t.Fatal("scenario produced no events; the rerun comparison is vacuous")
	}
}
