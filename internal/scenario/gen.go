package scenario

import "math/rand"

// GenConfig bounds the randomized generator.
type GenConfig struct {
	Spec  Spec
	Nodes int // initial population (default 6)
	Steps int // random steps before the healing tail (default 12)
}

// Generate derives a random — but fully seed-determined — scenario.
// The generator tracks a topology model so the script stays
// meaningful: it only kills nodes that are alive (never node 0, the
// Chord landmark, and never below a two-node floor), only spawns nodes
// that are dead, and only cuts live pairs / heals cut pairs. Every
// generated script ends with a healing tail — all cuts healed, rates
// zeroed (the runner restores those itself), and a settle wait — so
// invariant checks run against a calm topology.
func Generate(seed int64, cfg GenConfig) Script {
	if cfg.Nodes <= 0 {
		cfg.Nodes = 6
	}
	if cfg.Steps <= 0 {
		cfg.Steps = 12
	}
	rng := rand.New(rand.NewSource(seed))
	sc := Script{
		Seed:   seed,
		Spec:   cfg.Spec,
		Nodes:  cfg.Nodes,
		Warmup: 2,
		Settle: 4,
	}
	if cfg.Spec == Chord {
		sc.Warmup = 12 // periodic stabilization needs time to form a ring
		sc.Settle = 15
	}

	live := make([]bool, cfg.Nodes)
	for i := range live {
		live[i] = true
	}
	liveCount := cfg.Nodes
	cuts := make(map[[2]int]bool)

	pick := func(want bool, floor int) int {
		var cand []int
		for i, ok := range live {
			if ok == want && (i != 0 || !want) {
				cand = append(cand, i)
			}
		}
		if len(cand) == 0 || (want && liveCount <= floor) {
			return -1
		}
		return cand[rng.Intn(len(cand))]
	}

	for s := 0; s < cfg.Steps; s++ {
		switch rng.Intn(10) {
		case 0: // kill
			if i := pick(true, 2); i >= 0 {
				sc.Steps = append(sc.Steps, Step{Op: OpKill, Node: i})
				live[i] = false
				liveCount--
			}
		case 1: // spawn something dead back
			if i := pick(false, 0); i >= 0 {
				sc.Steps = append(sc.Steps, Step{Op: OpSpawn, Node: i})
				live[i] = true
				liveCount++
			}
		case 2: // replace a live node in place
			if i := pick(true, 2); i >= 0 {
				sc.Steps = append(sc.Steps, Step{Op: OpReplace, Node: i})
			}
		case 3: // partition a live pair
			a, b := pick(true, 0), pick(true, 0)
			if a >= 0 && b >= 0 && a != b && !cuts[cutKey(a, b)] {
				sc.Steps = append(sc.Steps, Step{Op: OpPartition, Node: a, Peer: b})
				cuts[cutKey(a, b)] = true
			}
		case 4: // heal one existing cut
			for k := range cuts {
				sc.Steps = append(sc.Steps, Step{Op: OpHeal, Node: k[0], Peer: k[1]})
				delete(cuts, k)
				break
			}
		case 5: // loss burst
			sc.Steps = append(sc.Steps, Step{Op: OpLoss,
				Rate: 0.05 + 0.3*rng.Float64(), Dur: 0.5 + rng.Float64()})
		case 6: // latency spike
			sc.Steps = append(sc.Steps, Step{Op: OpLatency,
				Rate: 0.01 + 0.09*rng.Float64(), Dur: 0.5 + rng.Float64()})
		case 7: // lookup batch
			sc.Steps = append(sc.Steps, Step{Op: OpLookups,
				Node: rng.Intn(cfg.Nodes), Count: 1 + rng.Intn(3)})
		case 8: // churn window
			sc.Steps = append(sc.Steps, Step{Op: OpChurn,
				Rate: 4 + 6*rng.Float64(), Dur: 1 + 2*rng.Float64()})
		case 9: // wait
			sc.Steps = append(sc.Steps, Step{Op: OpWait, Dur: 0.5 + 1.5*rng.Float64()})
		}
	}

	// Healing tail: leave the topology calm for the settle phase.
	for k := range cuts {
		sc.Steps = append(sc.Steps, Step{Op: OpHeal, Node: k[0], Peer: k[1]})
	}
	for i, ok := range live {
		if !ok {
			sc.Steps = append(sc.Steps, Step{Op: OpSpawn, Node: i})
		}
	}
	return sc
}

func cutKey(a, b int) [2]int {
	if a > b {
		a, b = b, a
	}
	return [2]int{a, b}
}
