package scenario

import (
	"fmt"
	"sort"

	"p2"
	"p2/internal/engine"
	"p2/internal/eventloop"
	"p2/internal/netif"
	"p2/internal/seed"
	"p2/internal/trace"
	"p2/internal/transport"
	"p2/internal/val"
)

// Replay re-executes a recorded UDP Chord run offline, through the
// virtual-time simulator: each recorded node gets a fresh engine node
// on its own simulated loop, its boot facts are re-injected at time
// zero, and every datagram the wire delivered to it is re-delivered to
// its transport at the recorded clock reading. Outbound sends go
// nowhere — the trace already contains their observed consequences —
// so each node's derived state is reproduced purely from its recorded
// input stream.
//
// addrs is the recorded run's spawn-order address list (Result.Addrs):
// index 0 is the Chord landmark, and the returned digest is normalized
// to these indices in Result.Digest's exact form, so comparing it to
// the live run's Digest is the record/replay conformance check. until
// is the virtual time to run each node to — at least the trace's
// End(), normally the recorded run's total duration.
//
// Replay assumes the recorded scenario had no kills or replaces: a
// trace interleaving two incarnations of one address would replay both
// incarnations' inbound traffic into a single node.
func Replay(tr *trace.Trace, addrs []string, masterSeed int64, until float64) (string, error) {
	if until < tr.End() {
		until = tr.End()
	}
	idx := make(map[string]int, len(addrs))
	for i, a := range addrs {
		idx[a] = i
	}
	plan, err := p2.Compile(p2.ChordSource, nil)
	if err != nil {
		return "", err
	}

	// Group each node's inbound records; the trace is append-ordered
	// per node (one writer per loop), but sort defensively by time.
	inbound := make(map[string][]trace.Rec)
	for _, rec := range tr.Recs {
		if rec.Dir == trace.Recv {
			inbound[rec.Dst] = append(inbound[rec.Dst], rec)
		}
	}

	digest := make([]string, 0, len(addrs))
	for i, addr := range addrs {
		loop := eventloop.NewSim()
		tc := transport.DefaultConfig()
		tc.Epoch = 1 // matches the recorded first incarnation
		n := engine.NewNode(addr, loop, silentNet{}, plan, engine.Options{
			Seed:               seed.For(masterSeed, "node", addr),
			Transport:          &tc,
			IntrospectInterval: -1,
		})
		if err := n.Start(); err != nil {
			return "", fmt.Errorf("scenario: replay node %s: %w", addr, err)
		}
		lm := "-"
		if i != 0 {
			lm = addrs[0]
		}
		n.AddFact("landmark", val.Str(addr), val.Str(lm))
		n.AddFact("join", val.Str(addr), val.Str(addr+"!boot"))

		recs := inbound[addr]
		sort.SliceStable(recs, func(a, b int) bool { return recs[a].T < recs[b].T })
		for _, rec := range recs {
			rec := rec
			loop.At(rec.T, func() { n.Transport().Deliver(rec.Src, rec.Payload) })
		}
		loop.Run(until)

		succ := "?"
		if tb := n.Table("bestSucc"); tb != nil {
			if rows := tb.Scan(); len(rows) == 1 {
				// A successor outside the replayed set (a peer that did
				// not record, e.g. a single-node p2 -record session)
				// renders by raw address; "?" means no successor derived.
				succ = rows[0].Field(2).AsStr()
				if j, ok := idx[succ]; ok {
					succ = fmt.Sprintf("%d", j)
				}
			}
		}
		digest = append(digest, fmt.Sprintf("%d->%s", i, succ))
		n.Stop()
	}
	return join(digest), nil
}

// silentNet is the replay network: deliveries come from the trace, and
// sends vanish (their effects are already recorded).
type silentNet struct{}

func (silentNet) Attach(addr string, _ netif.DeliverFunc) (netif.Endpoint, error) {
	return silentEndpoint{addr: addr}, nil
}

type silentEndpoint struct{ addr string }

func (silentEndpoint) Send(string, []byte) {}

func (e silentEndpoint) LocalAddr() string { return e.addr }
func (silentEndpoint) MTU() int            { return netif.DefaultMTU }
func (silentEndpoint) Close()              {}
