package scenario

import (
	"fmt"
	"strings"
)

// Divergence describes the first difference the oracle found between
// two runs of the same script. Nil means the runs agree.
type Divergence struct {
	Field string // which observation diverged
	A, B  string // the two runtimes' renderings, labeled
}

// Error renders the divergence report.
func (dv *Divergence) Error() string {
	return fmt.Sprintf("scenario divergence in %s:\n  %s\n  %s", dv.Field, dv.A, dv.B)
}

func label(r Result, s string) string { return r.Runtime + ": " + s }

func ints(xs []int) string {
	parts := make([]string, len(xs))
	for i, x := range xs {
		parts[i] = fmt.Sprintf("%d", x)
	}
	return strings.Join(parts, ",")
}

// DiffEquivalent checks runtime-independent agreement: the live set,
// the derived-tuple multiset, the ring digest, and every lookup
// outcome must match. It ignores Events/Bytes/Clock, which only
// simulated runs report — this is the cross-runtime (sim vs UDP)
// oracle.
func DiffEquivalent(a, b Result) *Divergence {
	if ints(a.Live) != ints(b.Live) {
		return &Divergence{Field: "live set", A: label(a, ints(a.Live)), B: label(b, ints(b.Live))}
	}
	if sa, sb := strings.Join(a.Rows, " "), strings.Join(b.Rows, " "); sa != sb {
		return &Divergence{Field: "derived-tuple multiset", A: label(a, sa), B: label(b, sb)}
	}
	if a.Digest != b.Digest {
		return &Divergence{Field: "ring digest", A: label(a, a.Digest), B: label(b, b.Digest)}
	}
	if sa, sb := strings.Join(a.Lookups, " "), strings.Join(b.Lookups, " "); sa != sb {
		return &Divergence{Field: "lookup outcomes", A: label(a, sa), B: label(b, sb)}
	}
	if sa, sb := strings.Join(a.KV, " "), strings.Join(b.KV, " "); sa != sb {
		return &Divergence{Field: "kv op outcomes", A: label(a, sa), B: label(b, sb)}
	}
	if sa, sb := strings.Join(a.KVFinal, " "), strings.Join(b.KVFinal, " "); sa != sb {
		return &Divergence{Field: "kv final reads", A: label(a, sa), B: label(b, sb)}
	}
	return nil
}

// DiffKVEquivalent checks the runtime-independent slice of a ChordKV
// run: live population, per-op KV outcomes, and the final read-backs.
// Ring geometry — the digest, lookup routing, which indices a
// killreplicas step hits — is runtime-RELATIVE across sim and UDP:
// node identifiers hash the transport address, and the two runtimes
// run different address spaces, so the same script forms
// differently-ordered rings. The service-level outcomes above the ring
// are not, provided the script issues its operations on calm phases:
// versions are the client's scripted sequence and values route to
// whatever node owns the key in that runtime's geometry.
func DiffKVEquivalent(a, b Result) *Divergence {
	if la, lb := len(a.Live), len(b.Live); la != lb {
		return &Divergence{Field: "live population",
			A: label(a, fmt.Sprintf("%d", la)), B: label(b, fmt.Sprintf("%d", lb))}
	}
	if sa, sb := strings.Join(a.KV, " "), strings.Join(b.KV, " "); sa != sb {
		return &Divergence{Field: "kv op outcomes", A: label(a, sa), B: label(b, sb)}
	}
	if sa, sb := strings.Join(a.KVFinal, " "), strings.Join(b.KVFinal, " "); sa != sb {
		return &Divergence{Field: "kv final reads", A: label(a, sa), B: label(b, sb)}
	}
	return nil
}

// DiffBitIdentical checks everything DiffEquivalent does plus the
// simulator's exact gauges — event count, wire bytes, final clock.
// This is the shards=1 vs shards=P oracle: the two runs must be
// indistinguishable, bit for bit.
func DiffBitIdentical(a, b Result) *Divergence {
	if dv := DiffEquivalent(a, b); dv != nil {
		return dv
	}
	if a.Events != b.Events {
		return &Divergence{Field: "event count",
			A: label(a, fmt.Sprintf("%d", a.Events)), B: label(b, fmt.Sprintf("%d", b.Events))}
	}
	if a.Bytes != b.Bytes {
		return &Divergence{Field: "wire bytes",
			A: label(a, fmt.Sprintf("%d", a.Bytes)), B: label(b, fmt.Sprintf("%d", b.Bytes))}
	}
	if a.Clock != b.Clock {
		return &Divergence{Field: "final clock",
			A: label(a, fmt.Sprintf("%v", a.Clock)), B: label(b, fmt.Sprintf("%v", b.Clock))}
	}
	return nil
}

// CheckLookups verifies every completed lookup against the chordref
// ground truth captured at issue time — the consistency half of the
// differential oracle. Call it only on runs whose lookups were issued
// on a converged, fault-quiet ring; under active churn or partitions a
// correct implementation may legitimately answer with a stale owner.
func CheckLookups(r Result) error {
	for _, l := range r.Lookups {
		var eid, got, want string
		if _, err := fmt.Sscanf(l, "%s got=%s want=%s", &eid, &got, &want); err != nil {
			return fmt.Errorf("scenario: malformed lookup outcome %q", l)
		}
		if got != want {
			return fmt.Errorf("scenario: %s lookup %s resolved to n%s, ground truth n%s",
				r.Runtime, eid, got, want)
		}
	}
	return nil
}

// CheckKV verifies the KV service's durability contract on a ChordKV
// result: the post-settle read-back of every quorum-acked key returned
// exactly the last acked value at the last acked version — whatever
// kills, partitions, or churn the script put between the write and the
// read. Call it on runs that ended with a calm, re-converged tail.
func CheckKV(r Result) error {
	for _, f := range r.KVFinal {
		var key, got, want string
		if _, err := fmt.Sscanf(f, "%s got=%s want=%s", &key, &got, &want); err != nil {
			return fmt.Errorf("scenario: malformed kv read-back %q", f)
		}
		if got != want {
			return fmt.Errorf("scenario: %s read-back of %s returned %s, last quorum-acked %s",
				r.Runtime, key, got, want)
		}
	}
	return nil
}

// CheckRing verifies the ring invariant on a Chord result: every live
// node has a best successor and it is a live node. Call it only on
// runs that ended with a calm, converged tail.
func CheckRing(r Result) error {
	live := make(map[string]bool, len(r.Live))
	for _, i := range r.Live {
		live[fmt.Sprintf("%d", i)] = true
	}
	for _, ent := range strings.Split(strings.TrimSuffix(r.Digest, ";"), ";") {
		if ent == "" {
			continue
		}
		parts := strings.Split(ent, "->")
		if len(parts) != 2 || !live[parts[1]] {
			return fmt.Errorf("scenario: %s ring entry %q does not point at a live node", r.Runtime, ent)
		}
	}
	return nil
}
