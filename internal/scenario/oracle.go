package scenario

import (
	"fmt"
	"strings"
)

// Divergence describes the first difference the oracle found between
// two runs of the same script. Nil means the runs agree.
type Divergence struct {
	Field string // which observation diverged
	A, B  string // the two runtimes' renderings, labeled
}

// Error renders the divergence report.
func (dv *Divergence) Error() string {
	return fmt.Sprintf("scenario divergence in %s:\n  %s\n  %s", dv.Field, dv.A, dv.B)
}

func label(r Result, s string) string { return r.Runtime + ": " + s }

func ints(xs []int) string {
	parts := make([]string, len(xs))
	for i, x := range xs {
		parts[i] = fmt.Sprintf("%d", x)
	}
	return strings.Join(parts, ",")
}

// DiffEquivalent checks runtime-independent agreement: the live set,
// the derived-tuple multiset, the ring digest, and every lookup
// outcome must match. It ignores Events/Bytes/Clock, which only
// simulated runs report — this is the cross-runtime (sim vs UDP)
// oracle.
func DiffEquivalent(a, b Result) *Divergence {
	if ints(a.Live) != ints(b.Live) {
		return &Divergence{Field: "live set", A: label(a, ints(a.Live)), B: label(b, ints(b.Live))}
	}
	if sa, sb := strings.Join(a.Rows, " "), strings.Join(b.Rows, " "); sa != sb {
		return &Divergence{Field: "derived-tuple multiset", A: label(a, sa), B: label(b, sb)}
	}
	if a.Digest != b.Digest {
		return &Divergence{Field: "ring digest", A: label(a, a.Digest), B: label(b, b.Digest)}
	}
	if sa, sb := strings.Join(a.Lookups, " "), strings.Join(b.Lookups, " "); sa != sb {
		return &Divergence{Field: "lookup outcomes", A: label(a, sa), B: label(b, sb)}
	}
	return nil
}

// DiffBitIdentical checks everything DiffEquivalent does plus the
// simulator's exact gauges — event count, wire bytes, final clock.
// This is the shards=1 vs shards=P oracle: the two runs must be
// indistinguishable, bit for bit.
func DiffBitIdentical(a, b Result) *Divergence {
	if dv := DiffEquivalent(a, b); dv != nil {
		return dv
	}
	if a.Events != b.Events {
		return &Divergence{Field: "event count",
			A: label(a, fmt.Sprintf("%d", a.Events)), B: label(b, fmt.Sprintf("%d", b.Events))}
	}
	if a.Bytes != b.Bytes {
		return &Divergence{Field: "wire bytes",
			A: label(a, fmt.Sprintf("%d", a.Bytes)), B: label(b, fmt.Sprintf("%d", b.Bytes))}
	}
	if a.Clock != b.Clock {
		return &Divergence{Field: "final clock",
			A: label(a, fmt.Sprintf("%v", a.Clock)), B: label(b, fmt.Sprintf("%v", b.Clock))}
	}
	return nil
}

// CheckLookups verifies every completed lookup against the chordref
// ground truth captured at issue time — the consistency half of the
// differential oracle. Call it only on runs whose lookups were issued
// on a converged, fault-quiet ring; under active churn or partitions a
// correct implementation may legitimately answer with a stale owner.
func CheckLookups(r Result) error {
	for _, l := range r.Lookups {
		var eid, got, want string
		if _, err := fmt.Sscanf(l, "%s got=%s want=%s", &eid, &got, &want); err != nil {
			return fmt.Errorf("scenario: malformed lookup outcome %q", l)
		}
		if got != want {
			return fmt.Errorf("scenario: %s lookup %s resolved to n%s, ground truth n%s",
				r.Runtime, eid, got, want)
		}
	}
	return nil
}

// CheckRing verifies the ring invariant on a Chord result: every live
// node has a best successor and it is a live node. Call it only on
// runs that ended with a calm, converged tail.
func CheckRing(r Result) error {
	live := make(map[string]bool, len(r.Live))
	for _, i := range r.Live {
		live[fmt.Sprintf("%d", i)] = true
	}
	for _, ent := range strings.Split(strings.TrimSuffix(r.Digest, ";"), ";") {
		if ent == "" {
			continue
		}
		parts := strings.Split(ent, "->")
		if len(parts) != 2 || !live[parts[1]] {
			return fmt.Errorf("scenario: %s ring entry %q does not point at a live node", r.Runtime, ent)
		}
	}
	return nil
}
