package scenario

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"p2"
	"p2/internal/chordref"
	"p2/internal/id"
	"p2/internal/tuple"
	"p2/internal/udpnet"
	"p2/internal/val"
)

// Result is everything a scenario run observes, normalized to node
// indices so runs with different address spaces (simulated names,
// UDP host:port) compare directly.
type Result struct {
	Runtime string   // "sim/1", "sim/4", "udp" — for reports
	Addrs   []string // index -> address used by this run (spawn basis)
	Live    []int    // node indices live at collection time, ascending
	Rows    []string // sorted derived-tuple multiset (Echo: seen rows)
	Digest  string   // ring digest (Chord: "i->j;" per live node)
	Lookups []string // per-lookup outcomes "eid got=<idx> want=<idx>"
	KV      []string // ChordKV: per-op outcomes, in issue order
	KVFinal []string // ChordKV: post-settle read-back "k<i> got=<v>@<ver> want=<v>@<ver>"
	Events  int      // simulated only: events fired
	Bytes   int64    // simulated only: wire bytes sent
	Clock   float64  // simulated only: final virtual time
}

// echoSpec is the reactive ping/pong overlay (no periodics): injected
// pingEvent rows echo back as seen rows on the requester.
const echoSpec = `
	materialize(seen, infinity, infinity, keys(1,2,3)).
	P1 ping@Y(Y, X, E) :- pingEvent@X(X, Y, E).
	P2 pong@X(X, Y, E) :- ping@Y(Y, X, E).
	P3 seen@X(X, Y, E) :- pong@X(X, Y, E).
`

// runner executes one script against one deployment. All fields are
// guarded by mu where churn callbacks (control-lane goroutine on UDP)
// can touch them.
type runner struct {
	sc    Script
	d     *p2.Deployment
	plan  *p2.Plan
	addrs []string
	idx   map[string]int

	events int // simulated: events fired across every Run call

	mu    sync.Mutex
	nodes []*p2.Handle
	live  []bool
	looks []*lookupRec
	kvops []kvRec
}

// kvRec is one issued KV operation: the step-derived label, the
// key-universe index, and the client op carrying the outcome.
type kvRec struct {
	label string
	key   int
	put   bool
	op    *p2.KVOp
}

// kvDefines compresses the Chord and KV timers for ChordKV scenarios —
// identically on every runtime, so a UDP run (wall-clock seconds)
// converges and re-converges inside a test's patience while the
// simulated runs execute the very same dataflow.
var kvDefines = map[string]p2.Value{
	"tFix":       p2.Int(2),
	"tStabilize": p2.Int(1),
	"tPing":      p2.Int(1),
	"tJoinRetry": p2.Int(3),
	"tRejoinAll": p2.Int(10),
	"tDead":      p2.Int(4),
	"tKvSync":    p2.Int(2),
}

// kvKey renders key-universe index i as the application key every
// runtime uses — a pure function of (seed, index), like lookup keys.
func kvKey(seed int64, i int) string { return fmt.Sprintf("kv/%d/%d", seed, i) }

// run advances the deployment and accumulates the event count (the
// bit-identity gauge on simulated runs). Driver context.
func (r *runner) run(seconds float64) { r.events += r.d.Run(seconds) }

type lookupRec struct {
	eid  string
	got  string // owner address reported by the overlay ("" if never)
	want string // chordref ground truth at issue time
}

// RunSim executes sc on a Simulated deployment with the given shard
// count. Fully deterministic: same script, same Result, at any shard
// count (bit-identical, including Events/Bytes/Clock).
func RunSim(sc Script, shards int) (Result, error) {
	if err := sc.Validate(); err != nil {
		return Result{}, err
	}
	addrs := make([]string, sc.Nodes)
	for i := range addrs {
		addrs[i] = fmt.Sprintf("f%d:p2", i)
	}
	d, err := p2.NewDeployment(p2.Simulated,
		p2.WithSeed(sc.Seed), p2.WithShards(shards),
		p2.WithNodeDefaults(p2.NodeOptions{IntrospectInterval: -1}))
	if err != nil {
		return Result{}, err
	}
	defer d.Close()
	return runOn(sc, d, addrs, fmt.Sprintf("sim/%d", shards))
}

// UDPConfig tunes a UDP scenario run.
type UDPConfig struct {
	// Record, when non-empty, records the run's wire traffic to this
	// trace file (see internal/trace and Replay).
	Record string
}

// RunUDP executes sc over real UDP loopback sockets. The deployment
// always carries the seeded WithFaults layer (zero ambient rates) so
// partitions, loss bursts, and latency spikes work; durations are wall
// clock. Returns the reserved addresses in the Result so a recorded
// run can be replayed.
func RunUDP(sc Script, cfg UDPConfig) (Result, error) {
	if err := sc.Validate(); err != nil {
		return Result{}, err
	}
	addrs := make([]string, sc.Nodes)
	for i := range addrs {
		a, err := udpnet.ReserveAddr()
		if err != nil {
			return Result{}, fmt.Errorf("scenario: reserving UDP addr: %w", err)
		}
		addrs[i] = a
	}
	opts := []p2.Option{
		p2.WithSeed(sc.Seed),
		p2.WithNodeDefaults(p2.NodeOptions{IntrospectInterval: -1}),
		p2.WithFaults(p2.FaultConfig{Seed: sc.Seed}),
	}
	if cfg.Record != "" {
		opts = append(opts, p2.WithRecord(cfg.Record))
	}
	d, err := p2.NewDeployment(p2.UDP, opts...)
	if err != nil {
		return Result{}, err
	}
	defer d.Close()
	return runOn(sc, d, addrs, "udp")
}

// runOn drives the identical Deployment call sequence regardless of
// runtime — the point of the fault lab.
func runOn(sc Script, d *p2.Deployment, addrs []string, label string) (Result, error) {
	r := &runner{
		sc:    sc,
		d:     d,
		addrs: addrs,
		idx:   make(map[string]int, len(addrs)),
		nodes: make([]*p2.Handle, sc.Nodes),
		live:  make([]bool, sc.Nodes),
	}
	for i, a := range addrs {
		r.idx[a] = i
	}
	var err error
	switch sc.Spec {
	case Chord:
		r.plan, err = p2.Compile(p2.ChordSource, nil)
	case ChordKV:
		r.plan, err = p2.CompileMulti(kvDefines, p2.ChordSource, p2.KVSource)
	default:
		r.plan, err = p2.Compile(echoSpec, nil)
	}
	if err != nil {
		return Result{}, err
	}

	for i := 0; i < sc.Nodes; i++ {
		if err := r.boot(i, false); err != nil {
			return Result{}, err
		}
	}
	r.run(sc.Warmup)

	for si, st := range sc.Steps {
		if err := r.exec(si, st); err != nil {
			return Result{}, err
		}
	}
	r.run(sc.Settle)
	final := r.finalReads()
	res, err := r.collect(label)
	res.KVFinal = final
	return res, err
}

// boot spawns (or, when replace is set and the node is live, replaces)
// node i and installs the spec's boot facts and measurement taps.
// Driver or control-lane context.
func (r *runner) boot(i int, replace bool) error {
	addr := r.addrs[i]
	var h *p2.Handle
	var err error
	if replace {
		h, err = r.d.Replace(addr, r.plan)
	} else {
		h, err = r.d.Spawn(addr, r.plan)
	}
	if err != nil {
		return fmt.Errorf("scenario: boot n%d (%s): %w", i, addr, err)
	}
	if r.sc.Spec.chordLike() {
		lm := "-"
		if i != 0 {
			lm = r.addrs[0]
		}
		h.AddFact("landmark", val.Str(addr), val.Str(lm))
		h.AddFact("join", val.Str(addr), val.Str(addr+"!boot"))
		h.Watch("lookupResults", func(ev p2.WatchEvent) {
			if ev.Dir != p2.DirReceived && ev.Dir != p2.DirDerived {
				return
			}
			// lookupResults(R, K, S, SI, E): only the requester counts
			// it, and only the first answer.
			if ev.Node != ev.Tuple.Field(0).AsStr() {
				return
			}
			eid := ev.Tuple.Field(4).AsStr()
			owner := ev.Tuple.Field(3).AsStr()
			r.mu.Lock()
			for _, lr := range r.looks {
				if lr.eid == eid && lr.got == "" {
					lr.got = owner
					break
				}
			}
			r.mu.Unlock()
		})
	}
	r.mu.Lock()
	r.nodes[i] = h
	r.live[i] = true
	r.mu.Unlock()
	return nil
}

// liveAddrs snapshots the model's live addresses in index order.
func (r *runner) liveAddrs() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []string
	for i, ok := range r.live {
		if ok {
			out = append(out, r.addrs[i])
		}
	}
	return out
}

// nextLive returns the first live index at or clockwise after i on the
// index ring (-1 if none).
func (r *runner) nextLive(i int) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	for k := 0; k < r.sc.Nodes; k++ {
		j := (i + k) % r.sc.Nodes
		if r.live[j] {
			return j
		}
	}
	return -1
}

// exec runs one step. Every step is total: a step that does not apply
// to the current topology is a no-op, so shrunk scripts always execute.
func (r *runner) exec(si int, st Step) error {
	switch st.Op {
	case OpSpawn:
		if r.nextIs(st.Node, false) {
			return r.boot(st.Node, false)
		}
	case OpKill:
		if r.nextIs(st.Node, true) {
			r.d.Kill(r.addrs[st.Node])
			r.mu.Lock()
			r.nodes[st.Node], r.live[st.Node] = nil, false
			r.mu.Unlock()
		}
	case OpReplace:
		return r.boot(st.Node, r.nextIs(st.Node, true))
	case OpPartition:
		if st.Node != st.Peer {
			return r.d.Partition(r.addrs[st.Node], r.addrs[st.Peer], true)
		}
	case OpHeal:
		if st.Node != st.Peer {
			return r.d.Partition(r.addrs[st.Node], r.addrs[st.Peer], false)
		}
	case OpLoss:
		if err := r.d.SetLossRate(st.Rate); err != nil {
			return err
		}
		r.run(st.Dur)
		return r.d.SetLossRate(0)
	case OpLatency:
		if err := r.d.SetExtraLatency(st.Rate); err != nil {
			return err
		}
		r.run(st.Dur)
		return r.d.SetExtraLatency(0)
	case OpLookups:
		r.lookups(si, st)
	case OpChurn:
		r.d.EnableChurn(st.Rate, func(dep *p2.Deployment, died string) *p2.Handle {
			// Churned nodes restart at their own address; the model's
			// live set is unchanged, only the handle is new.
			i := r.idx[died]
			if err := r.boot(i, false); err != nil {
				return nil
			}
			r.mu.Lock()
			h := r.nodes[i]
			r.mu.Unlock()
			return h
		}, r.addrs[0])
		r.run(st.Dur)
		r.d.DisableChurn()
	case OpWait:
		r.run(st.Dur)
	case OpPut, OpGet:
		if r.sc.Spec == ChordKV {
			return r.kvBatch(si, st)
		}
	case OpKillReplicas:
		if r.sc.Spec == ChordKV {
			r.killReplicas(st)
		}
	}
	return nil
}

// kvBatch issues st.Count PUTs or GETs from the first live node at or
// after st.Node, over key-universe indices st.Key..st.Key+st.Count-1.
// PUT values derive from (step index, k) alone; versions are the
// client's scripted sequence — both identical on every runtime.
func (r *runner) kvBatch(si int, st Step) error {
	from := r.nextLive(st.Node)
	if from < 0 {
		return nil
	}
	r.mu.Lock()
	h := r.nodes[from]
	r.mu.Unlock()
	for k := 0; k < st.Count; k++ {
		key := kvKey(r.sc.Seed, st.Key+k)
		var op *p2.KVOp
		var err error
		if st.Op == OpPut {
			op, err = h.Put(key, fmt.Sprintf("v%d.%d", si, k))
		} else {
			op, err = h.Get(key)
		}
		if err != nil {
			return fmt.Errorf("scenario: step %d (%s): %w", si, st, err)
		}
		r.mu.Lock()
		r.kvops = append(r.kvops, kvRec{
			label: fmt.Sprintf("s%d.%d", si, k),
			key:   st.Key + k, put: st.Op == OpPut, op: op,
		})
		r.mu.Unlock()
	}
	return nil
}

// killReplicas crash-stops the first st.Count live nodes of key
// st.Key's replica chain — the live addresses in ring order from the
// key, owner first — exactly the nodes the KV fan-out wrote to. Node 0
// is exempt, like the generator's kills and the harness's churn: it is
// the Chord landmark, and a ring whose re-join anchor is dead can stay
// fragmented indefinitely, which is a bootstrap pathology rather than
// the replication behaviour this step exists to test. The chain
// derives from the shared liveness model, so every runtime kills the
// same chain positions (not the same indices: ring order hashes the
// runtime's own address space).
func (r *runner) killReplicas(st Step) {
	key := id.Hash(kvKey(r.sc.Seed, st.Key))
	var chain []string
	for _, a := range r.liveAddrs() {
		if a != r.addrs[0] {
			chain = append(chain, a)
		}
	}
	sort.Slice(chain, func(i, j int) bool {
		return key.Dist(id.Hash(chain[i])).Less(key.Dist(id.Hash(chain[j])))
	})
	if len(chain) > st.Count {
		chain = chain[:st.Count]
	}
	for _, addr := range chain {
		i := r.idx[addr]
		r.d.Kill(addr)
		r.mu.Lock()
		r.nodes[i], r.live[i] = nil, false
		r.mu.Unlock()
	}
}

// finalReads is the post-settle verification phase on ChordKV runs:
// every key with a quorum-acked PUT is read back from the first live
// node, retrying lost requests (operations are single-shot; right
// after faults a request can route into a stale finger and vanish).
// Returns "k<i> got=<v>@<ver> want=<v>@<ver>" per key, ascending.
func (r *runner) finalReads() []string {
	if r.sc.Spec != ChordKV {
		return nil
	}
	// Last quorum-acked value and version per key index.
	type want struct {
		val string
		ver int64
	}
	wants := make(map[int]want)
	r.mu.Lock()
	ops := append([]kvRec(nil), r.kvops...)
	r.mu.Unlock()
	for _, rec := range ops {
		if rec.put && kvDone(rec.op) && rec.op.Ver > wants[rec.key].ver {
			wants[rec.key] = want{val: rec.op.Value, ver: rec.op.Ver}
		}
	}
	keys := make([]int, 0, len(wants))
	for k := range wants {
		keys = append(keys, k)
	}
	sort.Ints(keys)

	got := make(map[int]*p2.KVOp)
	for attempt := 0; attempt < 5 && len(got) < len(keys); attempt++ {
		from := r.nextLive(0)
		if from < 0 {
			break
		}
		r.mu.Lock()
		h := r.nodes[from]
		r.mu.Unlock()
		issued := make(map[int]*p2.KVOp)
		for _, k := range keys {
			if got[k] != nil {
				continue
			}
			if op, err := h.Get(kvKey(r.sc.Seed, k)); err == nil {
				issued[k] = op
			}
		}
		r.run(6)
		for k, op := range issued {
			if kvDone(op) && op.Found {
				got[k] = op
			}
		}
	}

	out := make([]string, 0, len(keys))
	for _, k := range keys {
		w := wants[k]
		g := "?@0"
		if op := got[k]; op != nil {
			g = fmt.Sprintf("%s@%d", op.Value, op.Ver)
		}
		out = append(out, fmt.Sprintf("k%d got=%s want=%s@%d", k, g, w.val, w.ver))
	}
	return out
}

// kvDone reports completion race-free on every runtime: it rides the
// op's completion channel, so a true result orders the op's fields
// before the read even while UDP response callbacks are still firing.
func kvDone(op *p2.KVOp) bool { return op.Wait(time.Millisecond) }

// nextIs reports whether node i's model liveness equals want.
func (r *runner) nextIs(i int, want bool) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.live[i] == want
}

// lookups issues st.Count lookups (Chord) or pings (Echo) from the
// first live node at or after st.Node. Keys and event IDs derive from
// (Seed, step index, k) alone, so every runtime issues the identical
// workload.
func (r *runner) lookups(si int, st Step) {
	from := r.nextLive(st.Node)
	if from < 0 {
		return
	}
	for k := 0; k < st.Count; k++ {
		eid := fmt.Sprintf("s%d.%d", si, k)
		if r.sc.Spec.chordLike() {
			key := id.Hash(fmt.Sprintf("key/%d/%d/%d", r.sc.Seed, si, k))
			rec := &lookupRec{eid: eid, want: chordref.Owner(key, r.liveAddrs())}
			r.mu.Lock()
			r.looks = append(r.looks, rec)
			h := r.nodes[from]
			r.mu.Unlock()
			h.Inject(tuple.New("lookup",
				val.Str(r.addrs[from]), val.MakeID(key), val.Str(r.addrs[from]), val.Str(eid)))
		} else {
			to := r.nextLive(from + 1 + k)
			if to < 0 {
				to = from
			}
			r.mu.Lock()
			h := r.nodes[from]
			r.mu.Unlock()
			h.Inject(tuple.New("pingEvent",
				val.Str(r.addrs[from]), val.Str(r.addrs[to]), val.Str(eid)))
		}
	}
}

// collect gathers the normalized Result from the survivors.
func (r *runner) collect(label string) (Result, error) {
	res := Result{Runtime: label, Addrs: r.addrs}
	r.mu.Lock()
	nodes := append([]*p2.Handle(nil), r.nodes...)
	live := append([]bool(nil), r.live...)
	looks := append([]*lookupRec(nil), r.looks...)
	r.mu.Unlock()

	// The model's live set must agree with the deployment's — the
	// runner-level sanity invariant.
	deployed := make(map[string]bool)
	for _, a := range r.d.Addrs() {
		deployed[a] = true
	}
	for i, ok := range live {
		if ok != deployed[r.addrs[i]] {
			return res, fmt.Errorf("scenario: model/deployment liveness mismatch at n%d (model=%v)", i, ok)
		}
		if ok {
			res.Live = append(res.Live, i)
		}
	}

	ownerIdx := func(addr string) string {
		if j, ok := r.idx[addr]; ok {
			return fmt.Sprintf("%d", j)
		}
		return "?"
	}
	if r.sc.Spec.chordLike() {
		var sb []string
		for i, ok := range live {
			if !ok {
				continue
			}
			succ := "?"
			if rows := nodes[i].Scan("bestSucc"); len(rows) == 1 {
				succ = ownerIdx(rows[0].Field(2).AsStr())
			}
			sb = append(sb, fmt.Sprintf("%d->%s", i, succ))
		}
		res.Digest = join(sb)
		for _, lr := range looks {
			got := "?"
			if lr.got != "" {
				got = ownerIdx(lr.got)
			}
			res.Lookups = append(res.Lookups,
				fmt.Sprintf("%s got=%s want=%s", lr.eid, got, ownerIdx(lr.want)))
		}
		r.mu.Lock()
		kvops := append([]kvRec(nil), r.kvops...)
		r.mu.Unlock()
		for _, rec := range kvops {
			kind, outcome := "get", "lost"
			if rec.put {
				kind = "put"
			}
			if kvDone(rec.op) {
				if rec.put {
					outcome = fmt.Sprintf("acked@%d", rec.op.Ver)
				} else {
					outcome = fmt.Sprintf("%s@%d found=%v stale=%v",
						rec.op.Value, rec.op.Ver, rec.op.Found, rec.op.Stale)
				}
			}
			res.KV = append(res.KV, fmt.Sprintf("%s %s k%d %s", rec.label, kind, rec.key, outcome))
		}
	} else {
		for i, ok := range live {
			if !ok {
				continue
			}
			for _, row := range nodes[i].Scan("seen") {
				res.Rows = append(res.Rows, fmt.Sprintf("%d<-%s:%s",
					i, ownerIdx(row.Field(1).AsStr()), row.Field(2).AsStr()))
			}
		}
		sort.Strings(res.Rows)
	}

	if r.d.Runtime() == p2.Simulated {
		res.Events = r.events
		res.Bytes = r.d.NetTotals().BytesSent
		res.Clock = r.d.Now()
	}
	return res, nil
}

func join(parts []string) string {
	var b []byte
	for _, p := range parts {
		b = append(b, p...)
		b = append(b, ';')
	}
	return string(b)
}
