package scenario

// The KV service's fault-lab acceptance tests:
//
//   - TestKVScenarioConformance: a scripted PUT/GET workload under
//     partition, heal, and churn runs bit-identically on Simulated
//     shards=1 vs shards=4 and multiset-equivalent on real UDP
//     loopback, and every quorum-acked key reads back at its last
//     acked value once the ring re-converges.
//   - TestKVSurvivesReplicaChainKills: killing R-1 nodes of a key's
//     replica chain — owner first — still leaves every acked value
//     readable on both runtimes.

import (
	"testing"

	"p2"
	"p2/internal/udpnet"
)

// kvConformanceScript exercises the service across the fault lab's
// whole vocabulary: writes, a partition and its heal, a churn window,
// overwrites after the churn, and calm-phase reads of everything. GETs
// are issued only on calm topology: whether a request survives an
// active cut depends on the runtime's ring geometry, but calm-phase
// outcomes are runtime-independent. The calm tail (settle + the
// runner's read-back phase) is where the durability contract is
// checked.
func kvConformanceScript() Script {
	return Script{
		Seed: 91, Spec: ChordKV, Nodes: 8, Warmup: 20, Settle: 12,
		Steps: []Step{
			{Op: OpPut, Node: 1, Key: 0, Count: 4}, // k0..k3 = v0.*
			{Op: OpWait, Dur: 8},
			{Op: OpPartition, Node: 2, Peer: 5},
			{Op: OpWait, Dur: 6},
			{Op: OpHeal, Node: 2, Peer: 5},
			{Op: OpWait, Dur: 6},
			{Op: OpChurn, Rate: 6, Dur: 4},
			{Op: OpWait, Dur: 8},
			{Op: OpPut, Node: 4, Key: 2, Count: 2}, // overwrite k2, k3
			{Op: OpWait, Dur: 8},
			{Op: OpGet, Node: 6, Key: 0, Count: 4}, // must see v0.0, v0.1, then the overwrites
			{Op: OpWait, Dur: 6},
		},
	}
}

func TestKVScenarioConformance(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-runtime KV conformance takes a while")
	}
	sc := kvConformanceScript()

	s1, err := RunSim(sc, 1)
	if err != nil {
		t.Fatal(err)
	}
	s4, err := RunSim(sc, 4)
	if err != nil {
		t.Fatal(err)
	}
	if dv := DiffBitIdentical(s1, s4); dv != nil {
		t.Fatalf("sim shards=1 vs 4:\n%s\n%v", sc, dv)
	}
	if len(s1.KV) == 0 || len(s1.KVFinal) == 0 {
		t.Fatalf("scenario issued no KV work: ops=%v final=%v", s1.KV, s1.KVFinal)
	}
	if err := CheckKV(s1); err != nil {
		t.Fatalf("%v\nops: %v", err, s1.KV)
	}

	if _, err := udpnet.ReserveAddr(); err != nil {
		t.Skipf("no loopback UDP: %v", err)
	}
	u, err := RunUDP(sc, UDPConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckKV(u); err != nil {
		t.Fatalf("%v\nops: %v", err, u.KV)
	}
	if dv := DiffKVEquivalent(s1, u); dv != nil {
		t.Fatalf("sim vs udp:\n%s\n%v", sc, dv)
	}
}

// replicaKillScript writes two keys, waits for anti-entropy to fill
// every replica, then crash-stops R-1 nodes of key 0's replica chain
// at once — the owner first (unless it is the landmark), leaving at
// most one of the key's copies alive.
func replicaKillScript() Script {
	return Script{
		Seed: 97, Spec: ChordKV, Nodes: 10, Warmup: 24, Settle: 24,
		Steps: []Step{
			{Op: OpPut, Node: 2, Key: 0, Count: 2},
			{Op: OpWait, Dur: 14}, // tKvSync rounds replicate to all R holders
			{Op: OpKillReplicas, Key: 0, Count: p2.KVReplicas - 1},
			// The kill takes out R-1 consecutive ring nodes, so recovery
			// rides failure detection plus the rejoin anti-entropy, not
			// just one stabilization round.
			{Op: OpWait, Dur: 16},
		},
	}
}

func TestKVSurvivesReplicaChainKills(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-runtime replica-kill scenario takes a while")
	}
	sc := replicaKillScript()

	s1, err := RunSim(sc, 1)
	if err != nil {
		t.Fatal(err)
	}
	s4, err := RunSim(sc, 4)
	if err != nil {
		t.Fatal(err)
	}
	if dv := DiffBitIdentical(s1, s4); dv != nil {
		t.Fatalf("sim shards=1 vs 4:\n%s\n%v", sc, dv)
	}
	if got := len(s1.Live); got != sc.Nodes-(p2.KVReplicas-1) {
		t.Fatalf("killreplicas left %d live nodes, want %d", got, sc.Nodes-(p2.KVReplicas-1))
	}
	if err := CheckKV(s1); err != nil {
		t.Fatalf("%v\nops: %v", err, s1.KV)
	}

	if _, err := udpnet.ReserveAddr(); err != nil {
		t.Skipf("no loopback UDP: %v", err)
	}
	u, err := RunUDP(sc, UDPConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckKV(u); err != nil {
		t.Fatalf("%v\nops: %v", err, u.KV)
	}
	if dv := DiffKVEquivalent(s1, u); dv != nil {
		t.Fatalf("sim vs udp:\n%s\n%v", sc, dv)
	}
}
