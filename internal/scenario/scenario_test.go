package scenario

// The fault lab's standing tests:
//
//   - TestSeededScenarioConformance: one crafted seeded scenario runs
//     bit-identically on Simulated shards=1 vs shards=4 AND
//     multiset-equal on real UDP loopback (the acceptance scenario).
//   - TestRandomizedScenariosBitIdentical: N generated scenarios (seed
//     printed on failure; N and base seed via P2_SCENARIOS /
//     P2_SCENARIO_SEED for the CI fault-lab job) are bit-identical
//     across shard counts.
//   - TestDivergenceCaughtAndShrunk: an intentionally injected
//     divergence (perturbed seed on one side) is caught by the oracle
//     and shrunk to a minimal failing script.
//   - TestReplaceAndChurnDuringPartition: Replace and EnableChurn keep
//     working while a partition is active and after it heals, on both
//     runtimes.
//   - TestRecordedTraceReplaysToSameRingDigest: a wire trace recorded
//     from a live UDP Chord run replays through the virtual-time
//     simulator to the same final ring digest.

import (
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"p2/internal/trace"
	"p2/internal/udpnet"
)

// acceptanceScript is the crafted conformance scenario. Every fault it
// injects resolves deterministically on every runtime: pings either
// complete (live, uncut route — the transport's retries absorb the
// loss burst and latency spike) or can never complete (the n0|n1 cut
// stays up through collection).
func acceptanceScript() Script {
	return Script{
		Seed: 23, Spec: Echo, Nodes: 4, Warmup: 0.5, Settle: 3,
		Steps: []Step{
			{Op: OpLookups, Node: 0, Count: 2}, // s0.0: 0->1, s0.1: 0->2
			{Op: OpWait, Dur: 1.5},
			{Op: OpKill, Node: 2},
			{Op: OpLookups, Node: 2, Count: 1}, // from skips to n3: s3.0: 3->0
			{Op: OpWait, Dur: 1.5},
			{Op: OpPartition, Node: 0, Peer: 1},
			{Op: OpLookups, Node: 0, Count: 1}, // s6.0: 0->1, cut: never completes
			{Op: OpWait, Dur: 1.5},
			{Op: OpLoss, Rate: 0.25, Dur: 1},
			{Op: OpLookups, Node: 1, Count: 1}, // s9.0: 1->3, uncut
			{Op: OpWait, Dur: 1.5},
			{Op: OpLatency, Rate: 0.05, Dur: 1},
			{Op: OpLookups, Node: 3, Count: 1}, // s12.0: 3->0
		},
	}
}

func TestSeededScenarioConformance(t *testing.T) {
	sc := acceptanceScript()
	want := []string{"0<-1:s0.0", "0<-2:s0.1", "1<-3:s9.0", "3<-0:s12.0", "3<-0:s3.0"}

	s1, err := RunSim(sc, 1)
	if err != nil {
		t.Fatal(err)
	}
	s4, err := RunSim(sc, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(s1.Rows, " "); got != strings.Join(want, " ") {
		t.Fatalf("sim/1 multiset = %v, want %v", s1.Rows, want)
	}
	if dv := DiffBitIdentical(s1, s4); dv != nil {
		t.Fatalf("sim shards=1 vs 4:\n%s\n%v", sc, dv)
	}
	if s1.Events == 0 || s1.Bytes == 0 {
		t.Fatalf("scenario too trivial: events=%d bytes=%d", s1.Events, s1.Bytes)
	}

	if _, err := udpnet.ReserveAddr(); err != nil {
		t.Skipf("no loopback UDP: %v", err)
	}
	u, err := RunUDP(sc, UDPConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if dv := DiffEquivalent(s1, u); dv != nil {
		t.Fatalf("sim vs udp:\n%s\n%v", sc, dv)
	}
}

// envInt reads a positive integer knob for the CI fault-lab job.
func envInt(name string, def int64) int64 {
	if s := os.Getenv(name); s != "" {
		if v, err := strconv.ParseInt(s, 10, 64); err == nil && v > 0 {
			return v
		}
	}
	return def
}

func TestRandomizedScenariosBitIdentical(t *testing.T) {
	n := envInt("P2_SCENARIOS", 3)
	base := envInt("P2_SCENARIO_SEED", 1)
	for i := int64(0); i < n; i++ {
		seed := base + i
		spec := Echo
		if i%3 == 2 {
			spec = Chord
		}
		sc := Generate(seed, GenConfig{Spec: spec})
		a, err := RunSim(sc, 1)
		if err != nil {
			t.Fatalf("seed %d: shards=1: %v\n%s", seed, err, sc)
		}
		b, err := RunSim(sc, 4)
		if err != nil {
			t.Fatalf("seed %d: shards=4: %v\n%s", seed, err, sc)
		}
		if dv := DiffBitIdentical(a, b); dv != nil {
			t.Fatalf("seed %d diverged across shard counts:\n%s\n%v", seed, sc, dv)
		}
	}
}

func TestDivergenceCaughtAndShrunk(t *testing.T) {
	// A scenario whose outcome depends on the seed: pings injected into
	// a loss burst heavy and long enough to outlast the transport's
	// whole retry budget, so which pings survive is decided by the loss
	// draws alone. The irrelevant topology steps around it are there
	// for the shrinker to strip.
	sc := Script{
		Seed: 40, Spec: Echo, Nodes: 3, Warmup: 0.5, Settle: 2,
		Steps: []Step{
			{Op: OpWait, Dur: 0.5},
			{Op: OpPartition, Node: 1, Peer: 2},
			{Op: OpHeal, Node: 1, Peer: 2},
			{Op: OpLookups, Node: 0, Count: 2},
			{Op: OpLoss, Rate: 0.9, Dur: 25},
			{Op: OpWait, Dur: 1},
		},
	}
	// The injected fault: one side runs the script's seed, the other a
	// perturbed seed — different loss draws, so the runs must diverge.
	fails := func(s Script) bool {
		a, err := RunSim(s, 1)
		if err != nil {
			t.Fatalf("shrink candidate errored: %v\n%s", err, s)
		}
		p := s
		p.Seed++
		b, err := RunSim(p, 1)
		if err != nil {
			t.Fatalf("shrink candidate errored: %v\n%s", err, p)
		}
		return DiffBitIdentical(a, b) != nil
	}
	if !fails(sc) {
		t.Fatalf("perturbed seed not caught by the oracle:\n%s", sc)
	}
	shrunk, runs := Shrink(sc, fails)
	if !fails(shrunk) {
		t.Fatalf("shrunk script no longer fails:\n%s", shrunk)
	}
	if len(shrunk.Steps) >= len(sc.Steps) {
		t.Fatalf("shrinker removed nothing (%d steps, %d candidate runs):\n%s",
			len(shrunk.Steps), runs, shrunk)
	}
	// The failure needs the loss burst and the traffic under it;
	// everything else should be gone.
	if len(shrunk.Steps) > 2 {
		t.Errorf("expected a <=2-step minimal script, got %d:\n%s", len(shrunk.Steps), shrunk)
	}
	for _, st := range shrunk.Steps {
		if st.Op != OpLoss && st.Op != OpLookups {
			t.Errorf("irrelevant step survived shrinking: %s", st)
		}
	}
}

// replaceChurnScript exercises satellite coverage: Replace while a
// partition is active, a churn window across the heal, on a calm tail.
func replaceChurnScript() Script {
	return Script{
		Seed: 77, Spec: Echo, Nodes: 4, Warmup: 0.5, Settle: 2,
		Steps: []Step{
			{Op: OpPartition, Node: 1, Peer: 2},
			{Op: OpLookups, Node: 0, Count: 2},
			{Op: OpWait, Dur: 1},
			{Op: OpReplace, Node: 1},       // replace mid-partition
			{Op: OpChurn, Rate: 2, Dur: 2}, // churn window spans the heal
			{Op: OpHeal, Node: 1, Peer: 2},
			{Op: OpLookups, Node: 2, Count: 1},
			{Op: OpWait, Dur: 1},
		},
	}
}

func TestReplaceAndChurnDuringPartition(t *testing.T) {
	sc := replaceChurnScript()
	s1, err := RunSim(sc, 1)
	if err != nil {
		t.Fatalf("sim: %v\n%s", err, sc)
	}
	s4, err := RunSim(sc, 4)
	if err != nil {
		t.Fatalf("sim/4: %v\n%s", err, sc)
	}
	if dv := DiffBitIdentical(s1, s4); dv != nil {
		t.Fatalf("replace+churn under partition diverged across shards:\n%s\n%v", sc, dv)
	}
	if len(s1.Live) != 4 {
		t.Fatalf("live set after churned replacements = %v, want all 4", s1.Live)
	}

	if _, err := udpnet.ReserveAddr(); err != nil {
		t.Skipf("no loopback UDP: %v", err)
	}
	u, err := RunUDP(sc, UDPConfig{})
	if err != nil {
		t.Fatalf("udp: %v\n%s", err, sc)
	}
	if len(u.Live) != 4 {
		t.Fatalf("udp live set after churned replacements = %v, want all 4", u.Live)
	}
}

func TestRecordedTraceReplaysToSameRingDigest(t *testing.T) {
	if _, err := udpnet.ReserveAddr(); err != nil {
		t.Skipf("no loopback UDP: %v", err)
	}
	sc := Script{Seed: 11, Spec: Chord, Nodes: 3, Warmup: 6, Settle: 2}
	path := filepath.Join(t.TempDir(), "chord.p2trace")
	live, err := RunUDP(sc, UDPConfig{Record: path})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(live.Digest, "?") || live.Digest == "" {
		t.Fatalf("live ring did not converge: digest %q", live.Digest)
	}
	tr, err := trace.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Recs) == 0 {
		t.Fatal("trace recorded nothing")
	}
	replayed, err := Replay(tr, live.Addrs, sc.Seed, sc.Warmup+sc.Settle+1)
	if err != nil {
		t.Fatal(err)
	}
	if replayed != live.Digest {
		t.Fatalf("replay digest %q != live digest %q (%d recorded datagrams)",
			replayed, live.Digest, len(tr.Recs))
	}
}
