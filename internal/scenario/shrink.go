package scenario

// Shrink minimizes a failing script: given sc for which fails(sc) is
// true, it returns the shortest failing prefix of sc's steps, then
// greedily removes interior steps that are not needed to reproduce the
// failure. fails is re-invoked on each candidate (each invocation is a
// full scenario run, so expect Shrink to cost O(steps) runs). Because
// every step is total, any subsequence of a valid script is valid, so
// the candidates always execute. Also returns how many candidate runs
// were spent.
func Shrink(sc Script, fails func(Script) bool) (Script, int) {
	runs := 0
	try := func(cand Script) bool { runs++; return fails(cand) }

	// Shortest failing prefix: scan lengths from the empty script up.
	best := sc
	for n := 0; n <= len(sc.Steps); n++ {
		cand := sc.WithSteps(sc.Steps[:n])
		if try(cand) {
			best = cand
			break
		}
	}

	// Greedy interior removal, scanning from the back so index shifts
	// never skip a candidate.
	for i := len(best.Steps) - 1; i >= 0; i-- {
		steps := append([]Step(nil), best.Steps[:i]...)
		steps = append(steps, best.Steps[i+1:]...)
		cand := best.WithSteps(steps)
		if try(cand) {
			best = cand
		}
	}
	return best, runs
}
