// Package scenario is the fault lab's deterministic scenario engine: a
// typed, seed-driven script language for fault workloads, a runner that
// executes a script through the public p2.Deployment API identically on
// every runtime (Simulated at any shard count, real UDP loopback), a
// randomized generator with automatic shrinking, and a differential
// oracle that diffs what the runtimes derived.
//
// A Script is data, not code: a seed, an overlay spec, an initial node
// count, and a list of Steps (spawn/kill/replace, partition/heal,
// loss bursts, latency spikes, lookup batches, churn windows, timed
// waits). Scripts render to a stable textual form (String) so a
// divergence report is copy-pasteable into a regression test, and every
// step is total — a step that does not apply to the current topology
// (killing a dead node, healing an uncut pair) is a no-op — so any
// subsequence of a script is itself a valid script, which is what makes
// automatic shrinking sound.
package scenario

import (
	"fmt"
	"strings"
)

// Spec selects the overlay a scenario drives.
type Spec int

// Overlay specs.
const (
	// Echo is a fully reactive ping/pong overlay: no periodics, so the
	// derived-tuple multiset is a pure function of the injected events
	// and the fault schedule — comparable across every runtime.
	Echo Spec = iota
	// Chord is the paper's full Chord DHT: periodic stabilization,
	// ground-truth-checkable lookups, and a ring digest.
	Chord
	// ChordKV is Chord with the replicated key-value service compiled
	// in (p2.KVSource), with the protocol timers compressed identically
	// on every runtime so UDP runs converge in wall-clock seconds. Adds
	// the put/get/killreplicas steps and a post-settle verification
	// phase that reads every quorum-acked key back.
	ChordKV
)

// String names the spec.
func (s Spec) String() string {
	switch s {
	case Chord:
		return "chord"
	case ChordKV:
		return "chordkv"
	}
	return "echo"
}

// chordLike reports whether the spec runs the Chord ring (and so takes
// landmark/join boot facts, lookups, and the ring digest).
func (s Spec) chordLike() bool { return s == Chord || s == ChordKV }

// Op enumerates the typed step kinds.
type Op int

// Step kinds.
const (
	OpSpawn     Op = iota // start node Node (no-op if live)
	OpKill                // crash-stop node Node (no-op if dead)
	OpReplace             // restart node Node at the same address
	OpPartition           // cut Node <-> Peer (no-op if same or already cut)
	OpHeal                // heal Node <-> Peer (no-op if not cut)
	OpLoss                // loss burst: drop rate Rate for Dur seconds
	OpLatency             // latency spike: +Rate seconds per datagram for Dur
	OpLookups             // issue Count lookups (Chord) or pings (Echo) from Node
	OpChurn               // churn window: mean session Rate for Dur seconds
	OpWait                // advance Dur seconds

	// ChordKV-only steps (no-ops on other specs).
	OpPut          // write Count keys (universe indices Key..Key+Count-1) from Node
	OpGet          // read Count keys (universe indices Key..Key+Count-1) from Node
	OpKillReplicas // kill the first Count nodes of key Key's replica chain, owner first (landmark exempt)
)

var opNames = map[Op]string{
	OpSpawn: "spawn", OpKill: "kill", OpReplace: "replace",
	OpPartition: "partition", OpHeal: "heal", OpLoss: "loss",
	OpLatency: "latency", OpLookups: "lookups", OpChurn: "churn",
	OpWait: "wait", OpPut: "put", OpGet: "get", OpKillReplicas: "killreplicas",
}

// String names the op.
func (o Op) String() string { return opNames[o] }

// Step is one scripted action. Which fields matter depends on Op; the
// rest are zero and ignored.
type Step struct {
	Op    Op
	Node  int     // subject node index
	Peer  int     // partition/heal peer index
	Count int     // lookup batch size / KV op batch size / replicas to kill
	Key   int     // KV key-universe index (put/get/killreplicas)
	Rate  float64 // loss probability, added latency, or churn mean session
	Dur   float64 // burst / window / wait duration in seconds
}

// String renders the step in the script's textual form.
func (st Step) String() string {
	switch st.Op {
	case OpSpawn, OpKill, OpReplace:
		return fmt.Sprintf("%s n%d", st.Op, st.Node)
	case OpPartition, OpHeal:
		return fmt.Sprintf("%s n%d n%d", st.Op, st.Node, st.Peer)
	case OpLoss, OpLatency:
		return fmt.Sprintf("%s %.3g for %.3gs", st.Op, st.Rate, st.Dur)
	case OpLookups:
		return fmt.Sprintf("lookups %d from n%d", st.Count, st.Node)
	case OpChurn:
		return fmt.Sprintf("churn mean=%.3gs for %.3gs", st.Rate, st.Dur)
	case OpWait:
		return fmt.Sprintf("wait %.3gs", st.Dur)
	case OpPut, OpGet:
		return fmt.Sprintf("%s %d keys from k%d via n%d", st.Op, st.Count, st.Key, st.Node)
	case OpKillReplicas:
		return fmt.Sprintf("killreplicas %d of k%d", st.Count, st.Key)
	}
	return fmt.Sprintf("op(%d)", int(st.Op))
}

// Script is one complete scenario: everything a run needs to be
// reproduced, on any runtime, from this value alone.
type Script struct {
	Seed   int64   // master seed: deployment seed, fault streams, keys
	Spec   Spec    // overlay under test
	Nodes  int     // nodes spawned before step 0 (indices 0..Nodes-1)
	Warmup float64 // seconds to run after the initial spawns
	Settle float64 // seconds to run after the last step, before collection
	Steps  []Step
}

// String renders the script as the divergence reports print it.
func (sc Script) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "scenario seed=%d spec=%s nodes=%d warmup=%.3gs settle=%.3gs\n",
		sc.Seed, sc.Spec, sc.Nodes, sc.Warmup, sc.Settle)
	for i, st := range sc.Steps {
		fmt.Fprintf(&b, "  %2d: %s\n", i, st)
	}
	return b.String()
}

// WithSteps returns a copy of sc holding exactly the given steps —
// the shrinker's building block.
func (sc Script) WithSteps(steps []Step) Script {
	out := sc
	out.Steps = append([]Step(nil), steps...)
	return out
}

// Validate rejects scripts the runner cannot execute: node indices out
// of range, non-positive initial population, negative durations.
func (sc Script) Validate() error {
	if sc.Nodes < 1 {
		return fmt.Errorf("scenario: Nodes = %d, need >= 1", sc.Nodes)
	}
	if sc.Warmup < 0 || sc.Settle < 0 {
		return fmt.Errorf("scenario: negative warmup/settle")
	}
	for i, st := range sc.Steps {
		if st.Node < 0 || st.Node >= sc.Nodes || st.Peer < 0 || st.Peer >= sc.Nodes {
			return fmt.Errorf("scenario: step %d (%s): node index out of range [0,%d)", i, st, sc.Nodes)
		}
		if st.Dur < 0 || st.Rate < 0 || st.Count < 0 || st.Key < 0 {
			return fmt.Errorf("scenario: step %d (%s): negative field", i, st)
		}
	}
	return nil
}
