package tuple

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"p2/internal/id"
	"p2/internal/val"
)

func mk(name string, vs ...val.Value) *Tuple { return New(name, vs...) }

func TestBasics(t *testing.T) {
	tp := mk("member", val.Str("n1"), val.Str("n2"), val.Int(4))
	if tp.Name() != "member" || tp.Arity() != 3 {
		t.Fatalf("name/arity wrong: %v", tp)
	}
	if tp.Loc() != "n1" {
		t.Errorf("Loc = %q", tp.Loc())
	}
	if tp.Field(2).AsInt() != 4 {
		t.Error("field access")
	}
	if !tp.Field(9).IsNull() || !tp.Field(-1).IsNull() {
		t.Error("out-of-range fields are null")
	}
	if mk("x").Loc() != "" {
		t.Error("empty tuple loc")
	}
}

func TestWithNameSharesFields(t *testing.T) {
	a := mk("succ", val.Str("n1"), val.MakeID(id.Hash("s")))
	b := a.WithName("succEvent")
	if b.Name() != "succEvent" || !b.Field(1).Equal(a.Field(1)) {
		t.Error("WithName must preserve fields")
	}
	if a.Name() != "succ" {
		t.Error("original must be untouched")
	}
}

func TestEqual(t *testing.T) {
	a := mk("t", val.Int(1), val.Str("x"))
	b := mk("t", val.Int(1), val.Str("x"))
	c := mk("t", val.Int(2), val.Str("x"))
	d := mk("u", val.Int(1), val.Str("x"))
	e := mk("t", val.Int(1))
	if !a.Equal(b) {
		t.Error("identical tuples must be equal")
	}
	if a.Equal(c) || a.Equal(d) || a.Equal(e) {
		t.Error("distinct tuples must differ")
	}
}

func TestKey(t *testing.T) {
	a := mk("member", val.Str("n1"), val.Str("peer"), val.Int(5))
	b := mk("member", val.Str("n1"), val.Str("peer"), val.Int(9))
	if a.Key([]int{0, 1}) != b.Key([]int{0, 1}) {
		t.Error("keys over same fields must match")
	}
	if a.Key([]int{0, 2}) == b.Key([]int{0, 2}) {
		t.Error("keys over differing fields must differ")
	}
	// Keys must be injective across adjacent string fields.
	c := mk("t", val.Str("ab"), val.Str("c"))
	d := mk("t", val.Str("a"), val.Str("bc"))
	if c.Key([]int{0, 1}) == d.Key([]int{0, 1}) {
		t.Error("key encoding must be unambiguous")
	}
}

func TestStringRendering(t *testing.T) {
	tp := mk("ping", val.Str("n1"), val.Int(3))
	if got := tp.String(); got != "ping(n1, 3)" {
		t.Errorf("String = %q", got)
	}
}

func randTuple(r *rand.Rand) *Tuple {
	names := []string{"lookup", "succ", "member", "ping", "x"}
	n := r.Intn(6)
	fields := make([]val.Value, n)
	for i := range fields {
		switch r.Intn(5) {
		case 0:
			fields[i] = val.Int(r.Int63())
		case 1:
			fields[i] = val.Str("addr:" + string(rune('a'+r.Intn(26))))
		case 2:
			fields[i] = val.MakeID(id.Random(r))
		case 3:
			fields[i] = val.Bool(r.Intn(2) == 0)
		case 4:
			fields[i] = val.Time(float64(r.Intn(10000)))
		}
	}
	return New(names[r.Intn(len(names))], fields...)
}

type tupleGen struct{ t *Tuple }

func (tupleGen) Generate(r *rand.Rand, size int) reflect.Value {
	return reflect.ValueOf(tupleGen{randTuple(r)})
}

func TestMarshalRoundTrip(t *testing.T) {
	f := func(g tupleGen) bool {
		b := g.t.Marshal()
		if len(b) != g.t.EncodedSize() {
			return false
		}
		got, n, err := Unmarshal(b)
		return err == nil && n == len(b) && got.Equal(g.t)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestUnmarshalErrors(t *testing.T) {
	good := mk("t", val.Int(1)).Marshal()
	for cut := 0; cut < len(good); cut++ {
		if _, _, err := Unmarshal(good[:cut]); err == nil {
			t.Errorf("truncation at %d should fail", cut)
		}
	}
}

func TestMarshalConcatenation(t *testing.T) {
	// Two tuples marshaled back to back decode cleanly in sequence —
	// the property packet payloads rely on.
	a := mk("a", val.Int(1), val.Str("x"))
	b := mk("b", val.MakeID(id.Hash("k")))
	buf := append(a.Marshal(), b.Marshal()...)
	got1, n1, err := Unmarshal(buf)
	if err != nil || !got1.Equal(a) {
		t.Fatalf("first decode: %v %v", got1, err)
	}
	got2, n2, err := Unmarshal(buf[n1:])
	if err != nil || !got2.Equal(b) || n1+n2 != len(buf) {
		t.Fatalf("second decode: %v %v", got2, err)
	}
}

func BenchmarkMarshal(b *testing.B) {
	tp := mk("lookup", val.Str("10.0.0.1:4000"), val.MakeID(id.Hash("k")),
		val.Str("10.0.0.2:4000"), val.Str("evt-12345"))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tp.Marshal()
	}
}

func BenchmarkUnmarshal(b *testing.B) {
	buf := mk("lookup", val.Str("10.0.0.1:4000"), val.MakeID(id.Hash("k")),
		val.Str("10.0.0.2:4000"), val.Str("evt-12345")).Marshal()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Unmarshal(buf)
	}
}
