// Package tuple implements P2's basic unit of data transfer.
//
// A Tuple is a named vector of Values. Tuples are treated as immutable
// once created — dataflow elements pass them by reference, exactly as
// the paper describes (§3.3: "tuples in P2 are completely immutable once
// they are created ... reference-counted and passed between P2 elements
// by reference"; Go's garbage collector plays the reference-count role).
// Anything that needs a modified tuple builds a new one.
package tuple

import (
	"encoding/binary"
	"fmt"
	"strings"

	"p2/internal/val"
)

// Tuple is a named, ordered list of values. By OverLog convention field 0
// is the tuple's location — the address of the node where it lives.
type Tuple struct {
	name   string
	fields []val.Value
}

// New builds a tuple with the given name and fields. The fields slice is
// owned by the tuple afterwards; callers must not mutate it.
func New(name string, fields ...val.Value) *Tuple {
	return &Tuple{name: name, fields: fields}
}

// Name returns the tuple's relation name.
func (t *Tuple) Name() string { return t.name }

// Arity returns the number of fields.
func (t *Tuple) Arity() int { return len(t.fields) }

// Field returns field i, or Null when out of range (a defensive default:
// planner-generated code never indexes out of range, but hand-written
// element graphs may).
func (t *Tuple) Field(i int) val.Value {
	if i < 0 || i >= len(t.fields) {
		return val.Null
	}
	return t.fields[i]
}

// Fields returns the underlying field slice. Treat it as read-only.
func (t *Tuple) Fields() []val.Value { return t.fields }

// Loc returns the tuple's location specifier — field 0 as a string
// address. Returns "" for zero-arity tuples.
func (t *Tuple) Loc() string {
	if len(t.fields) == 0 {
		return ""
	}
	return t.fields[0].AsStr()
}

// WithName returns a copy of t under a different relation name, sharing
// the field storage (safe because tuples are immutable).
func (t *Tuple) WithName(name string) *Tuple {
	return &Tuple{name: name, fields: t.fields}
}

// Equal reports deep equality of name and all fields.
func (t *Tuple) Equal(o *Tuple) bool {
	if t.name != o.name || len(t.fields) != len(o.fields) {
		return false
	}
	for i := range t.fields {
		if !t.fields[i].Equal(o.fields[i]) {
			return false
		}
	}
	return true
}

// Key builds a comparable string key from the given field positions,
// used by table primary keys and secondary indices. Positions out of
// range contribute the null encoding.
func (t *Tuple) Key(positions []int) string {
	return string(t.AppendKey(nil, positions))
}

// AppendKey appends the binary key for the given field positions to b
// and returns the extended buffer. It is the allocation-free form of
// Key: the table probe path renders keys into a reusable scratch buffer
// and looks indices up via map[string(buf)], which Go compiles without
// materializing the string.
func (t *Tuple) AppendKey(b []byte, positions []int) []byte {
	for _, p := range positions {
		b = t.Field(p).AppendBinary(b)
	}
	return b
}

// String renders the tuple as name(field, field, ...).
func (t *Tuple) String() string {
	var sb strings.Builder
	sb.WriteString(t.name)
	sb.WriteByte('(')
	for i, f := range t.fields {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(f.String())
	}
	sb.WriteByte(')')
	return sb.String()
}

// Marshal encodes the tuple: name length, name, field count, fields.
// The encoding is the on-the-wire format and also what the simulator
// charges against link capacity.
func (t *Tuple) Marshal() []byte {
	b := make([]byte, 0, t.EncodedSize())
	var hdr [4]byte
	binary.BigEndian.PutUint16(hdr[:2], uint16(len(t.name)))
	b = append(b, hdr[:2]...)
	b = append(b, t.name...)
	binary.BigEndian.PutUint16(hdr[:2], uint16(len(t.fields)))
	b = append(b, hdr[:2]...)
	for _, f := range t.fields {
		b = f.AppendBinary(b)
	}
	return b
}

// EncodedSize returns the marshaled size in bytes — the figure used for
// bandwidth accounting in the evaluation harness.
func (t *Tuple) EncodedSize() int {
	n := 2 + len(t.name) + 2
	for _, f := range t.fields {
		n += f.EncodedSize()
	}
	return n
}

// Unmarshal decodes one tuple from b, returning the tuple and bytes
// consumed.
func Unmarshal(b []byte) (*Tuple, int, error) {
	if len(b) < 2 {
		return nil, 0, fmt.Errorf("tuple: truncated name length")
	}
	nameLen := int(binary.BigEndian.Uint16(b))
	off := 2
	if len(b) < off+nameLen+2 {
		return nil, 0, fmt.Errorf("tuple: truncated name/arity")
	}
	// Relation names are a small closed set; interning keeps every
	// decoded tuple of a relation pointing at one backing array.
	name := val.InternBytes(b[off : off+nameLen])
	off += nameLen
	arity := int(binary.BigEndian.Uint16(b[off:]))
	off += 2
	fields := make([]val.Value, arity)
	for i := 0; i < arity; i++ {
		v, n, err := val.DecodeValue(b[off:])
		if err != nil {
			return nil, 0, fmt.Errorf("tuple %s field %d: %v", name, i, err)
		}
		fields[i] = v
		off += n
	}
	return &Tuple{name: name, fields: fields}, off, nil
}
