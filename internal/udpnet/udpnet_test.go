package udpnet

import (
	"sync"
	"testing"
	"time"

	"p2/internal/engine"
	"p2/internal/eventloop"
	"p2/internal/overlays"
	"p2/internal/val"
)

func TestRawDatagramExchange(t *testing.T) {
	loop := eventloop.NewReal()
	n := New(loop)

	addrA, err := ReserveAddr()
	if err != nil {
		t.Fatal(err)
	}
	addrB, err := ReserveAddr()
	if err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	var got []string
	epA, err := n.Attach(addrA, func(from string, p []byte) {})
	if err != nil {
		t.Fatal(err)
	}
	defer epA.Close()
	epB, err := n.Attach(addrB, func(from string, p []byte) {
		mu.Lock()
		got = append(got, from+":"+string(p))
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	defer epB.Close()

	go loop.Run()
	defer loop.Stop()

	epA.Send(addrB, []byte("hello"))
	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		done := len(got) > 0
		mu.Unlock()
		if done || time.Now().After(deadline) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 1 || got[0] != addrA+":hello" {
		t.Fatalf("got %v", got)
	}
}

func TestDoubleAttachFails(t *testing.T) {
	loop := eventloop.NewReal()
	n := New(loop)
	addr, err := ReserveAddr()
	if err != nil {
		t.Fatal(err)
	}
	ep, err := n.Attach(addr, func(string, []byte) {})
	if err != nil {
		t.Fatal(err)
	}
	defer ep.Close()
	if _, err := n.Attach(addr, func(string, []byte) {}); err == nil {
		t.Fatal("second attach must fail")
	}
}

func TestCloseThenReattach(t *testing.T) {
	loop := eventloop.NewReal()
	n := New(loop)
	addr, err := ReserveAddr()
	if err != nil {
		t.Fatal(err)
	}
	ep, err := n.Attach(addr, func(string, []byte) {})
	if err != nil {
		t.Fatal(err)
	}
	ep.Close()
	ep.Close()                 // idempotent
	ep.Send(addr, []byte("x")) // silently dropped after close
	ep2, err := n.Attach(addr, func(string, []byte) {})
	if err != nil {
		t.Fatalf("reattach after close: %v", err)
	}
	ep2.Close()
}

func TestLocalAddrResolvesEphemeral(t *testing.T) {
	loop := eventloop.NewReal()
	n := New(loop)
	ep, err := n.Attach("127.0.0.1:0", func(string, []byte) {})
	if err != nil {
		t.Fatal(err)
	}
	defer ep.Close()
	if ep.LocalAddr() == "127.0.0.1:0" || ep.LocalAddr() == "" {
		t.Fatalf("LocalAddr = %q", ep.LocalAddr())
	}
}

// TestPingPongOverRealUDP deploys two full P2 engine nodes — parser,
// planner, dataflow, transport — over actual UDP sockets on loopback
// and verifies round trips complete. This is the deployment-path
// integration test.
func TestPingPongOverRealUDP(t *testing.T) {
	if testing.Short() {
		t.Skip("real sockets")
	}
	plan := overlays.PingPongPlan(nil)

	addrA, err := ReserveAddr()
	if err != nil {
		t.Fatal(err)
	}
	addrB, err := ReserveAddr()
	if err != nil {
		t.Fatal(err)
	}

	mkNode := func(addr string) (*engine.Node, *eventloop.Real) {
		loop := eventloop.NewReal()
		n := engine.NewNode(addr, loop, New(loop), plan, engine.Options{Seed: 1})
		return n, loop
	}
	a, loopA := mkNode(addrA)
	b, loopB := mkNode(addrB)

	var mu sync.Mutex
	rtts := 0
	errs := make(chan error, 2)
	loopA.Post(func() {
		if err := a.Start(); err != nil {
			errs <- err
			return
		}
		a.Watch("rtt", func(ev engine.WatchEvent) {
			if ev.Dir == engine.DirInserted {
				mu.Lock()
				rtts++
				mu.Unlock()
			}
		})
		a.AddFact("pingPeer", val.Str(addrA), val.Str(addrB))
	})
	loopB.Post(func() {
		if err := b.Start(); err != nil {
			errs <- err
		}
	})
	go loopA.Run()
	go loopB.Run()
	defer loopA.Stop()
	defer loopB.Stop()

	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		select {
		case err := <-errs:
			t.Fatal(err)
		default:
		}
		mu.Lock()
		n := rtts
		mu.Unlock()
		if n >= 2 {
			return // at least two round trips measured over real UDP
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("only %d rtt measurements over real UDP", rtts)
}
