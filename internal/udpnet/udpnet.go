// Package udpnet implements netif.Network over real UDP sockets,
// turning the simulated-network P2 node into an actually deployable
// one (the paper's P2 ran over UDP on Emulab).
//
// Each attached endpoint owns one UDP socket. A reader goroutine posts
// inbound datagrams onto the node's wall-clock event loop, preserving
// the single-threaded run-to-completion execution model; everything
// above this package is identical between simulation and deployment.
package udpnet

import (
	"fmt"
	"net"
	"sync"

	"p2/internal/eventloop"
	"p2/internal/netif"
)

// maxDatagram bounds inbound datagram size. P2 tuples are small; 64 kB
// is the UDP maximum.
const maxDatagram = 64 * 1024

// Net attaches UDP endpoints that deliver onto a wall-clock loop.
type Net struct {
	loop *eventloop.Real

	mu       sync.Mutex
	attached map[string]bool
}

// New creates a UDP network bound to the given loop.
func New(loop *eventloop.Real) *Net {
	return &Net{loop: loop, attached: make(map[string]bool)}
}

// Attach binds a UDP socket on addr ("host:port") and starts its
// reader. The delivery callback runs on the loop goroutine.
func (n *Net) Attach(addr string, deliver netif.DeliverFunc) (netif.Endpoint, error) {
	n.mu.Lock()
	if n.attached[addr] {
		n.mu.Unlock()
		return nil, fmt.Errorf("udpnet: %q already attached", addr)
	}
	n.attached[addr] = true
	n.mu.Unlock()

	conn, err := net.ListenPacket("udp", addr)
	if err != nil {
		n.mu.Lock()
		delete(n.attached, addr)
		n.mu.Unlock()
		return nil, fmt.Errorf("udpnet: listen %s: %w", addr, err)
	}
	ep := &endpoint{
		net:   n,
		addr:  addr,
		conn:  conn,
		peers: make(map[string]net.Addr),
	}
	go ep.readLoop(deliver)
	return ep, nil
}

type endpoint struct {
	net  *Net
	addr string
	conn net.PacketConn

	mu     sync.Mutex
	peers  map[string]net.Addr // resolved destination cache
	closed bool
}

func (e *endpoint) readLoop(deliver netif.DeliverFunc) {
	buf := make([]byte, maxDatagram)
	for {
		nr, raddr, err := e.conn.ReadFrom(buf)
		if err != nil {
			return // closed
		}
		payload := make([]byte, nr)
		copy(payload, buf[:nr])
		from := raddr.String()
		e.net.loop.Post(func() { deliver(from, payload) })
	}
}

// Send transmits payload to the named UDP address. Resolution results
// are cached; failures drop the datagram, as UDP would.
func (e *endpoint) Send(to string, payload []byte) {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	dst, ok := e.peers[to]
	e.mu.Unlock()
	if !ok {
		udpAddr, err := net.ResolveUDPAddr("udp", to)
		if err != nil {
			return
		}
		dst = udpAddr
		e.mu.Lock()
		e.peers[to] = dst
		e.mu.Unlock()
	}
	_, _ = e.conn.WriteTo(payload, dst)
}

// LocalAddr returns the actual bound address (resolving a ":0" bind).
func (e *endpoint) LocalAddr() string { return e.conn.LocalAddr().String() }

// MTU advertises the standard Ethernet-path datagram budget. UDP can
// carry more via IP fragmentation, but fragmented datagrams amplify
// loss, so the transport packs batches to the unfragmented size.
func (e *endpoint) MTU() int { return netif.DefaultMTU }

// Close shuts the socket down and stops the reader.
func (e *endpoint) Close() {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return
	}
	e.closed = true
	e.conn.Close()
	e.net.mu.Lock()
	delete(e.net.attached, e.addr)
	e.net.mu.Unlock()
}

// ReserveAddr binds an ephemeral loopback UDP port, records its
// address, and releases it — a helper for tests and examples that need
// concrete node identities before attaching. (A small bind race is
// possible; production deployments configure explicit ports.)
func ReserveAddr() (string, error) {
	conn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		return "", err
	}
	addr := conn.LocalAddr().String()
	conn.Close()
	return addr, nil
}
